package driver_test

import (
	"database/sql"
	"testing"

	_ "github.com/dataspread/dataspread/driver"
)

func TestDriverNamedParameters(t *testing.T) {
	db, err := sql.Open("dataspread", "")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO kv VALUES (:k, :v)",
		sql.Named("v", "one"), sql.Named("k", 1)); err != nil {
		t.Fatal(err)
	}
	var v string
	if err := db.QueryRow("SELECT v FROM kv WHERE k = :k", sql.Named("k", 1)).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v != "one" {
		t.Fatalf("v = %q, want %q", v, "one")
	}
}
