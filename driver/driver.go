// Package driver registers DataSpread with database/sql under the name
// "dataspread", so any Go program can use the engine through the standard
// interfaces:
//
//	import (
//	    "database/sql"
//	    _ "github.com/dataspread/dataspread/driver"
//	)
//
//	db, err := sql.Open("dataspread", "workbook.ds") // or "" / ":memory:"
//	...
//	stmt, err := db.Prepare("SELECT title FROM movies WHERE year > ?")
//	rows, err := stmt.QueryContext(ctx, 1990)
//
// The data source name is a workbook file path ("" or ":memory:" for an
// in-memory instance). All connections of one sql.DB share a single
// embedded instance — the engine serializes writes internally — and the
// instance is closed when the sql.DB is closed. Opening the same workbook
// file from two processes (or two sql.DB values) fails with
// dataspread.ErrConflict: the engine enforces a single writer per file.
//
// Prepared statements use '?' placeholders; arguments bind per execution,
// and point lookups keep their index access paths (the plan is cached by
// statement text, bounds resolve late). Queries stream: rows cross from the
// executor as the scan produces them, and cancelling the context stops the
// scan at its next batch boundary.
package driver

import (
	"context"
	"database/sql"
	driverpkg "database/sql/driver"
	"fmt"
	"io"
	"sync"

	"github.com/dataspread/dataspread"
)

func init() {
	sql.Register("dataspread", &Driver{})
}

// Driver implements database/sql/driver.Driver (and DriverContext) for
// DataSpread.
type Driver struct{}

// Open opens a new connection to the workbook named by the DSN. Prefer
// sql.Open, which goes through OpenConnector and shares one embedded
// instance across the pool.
func (d *Driver) Open(name string) (driverpkg.Conn, error) {
	c, err := d.OpenConnector(name)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector returns a connector for the workbook named by the DSN: a
// file path, or "" / ":memory:" for an in-memory instance.
func (d *Driver) OpenConnector(name string) (driverpkg.Connector, error) {
	return &connector{driver: d, dsn: name}, nil
}

// connector opens the shared embedded instance lazily on first Connect and
// closes it when the pool closes (database/sql calls Close on connectors
// implementing io.Closer).
type connector struct {
	driver *Driver
	dsn    string

	mu     sync.Mutex
	db     *dataspread.DB
	closed bool
}

var _ io.Closer = (*connector)(nil)

func (c *connector) Connect(context.Context) (driverpkg.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, dataspread.ErrClosed
	}
	if c.db == nil {
		if c.dsn == "" || c.dsn == ":memory:" {
			c.db = dataspread.New(dataspread.Options{})
		} else {
			db, err := dataspread.OpenFile(c.dsn, dataspread.Options{})
			if err != nil {
				return nil, err
			}
			c.db = db
		}
	}
	return &conn{db: c.db, c: c.db.Conn()}, nil
}

func (c *connector) Driver() driverpkg.Driver { return c.driver }

func (c *connector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.db != nil {
		return c.db.Close()
	}
	return nil
}

// conn is one pooled connection: a DataSpread session over the shared
// instance.
type conn struct {
	db *dataspread.DB
	c  *dataspread.Conn
}

var (
	_ driverpkg.Conn               = (*conn)(nil)
	_ driverpkg.ConnPrepareContext = (*conn)(nil)
	_ driverpkg.ConnBeginTx        = (*conn)(nil)
	_ driverpkg.ExecerContext      = (*conn)(nil)
	_ driverpkg.QueryerContext     = (*conn)(nil)
)

func (cn *conn) Prepare(query string) (driverpkg.Stmt, error) {
	return cn.PrepareContext(context.Background(), query)
}

func (cn *conn) PrepareContext(_ context.Context, query string) (driverpkg.Stmt, error) {
	s, err := cn.c.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{s: s}, nil
}

// Close releases the session. The shared instance stays open until the
// connector closes.
func (cn *conn) Close() error { return nil }

func (cn *conn) Begin() (driverpkg.Tx, error) {
	return cn.BeginTx(context.Background(), driverpkg.TxOptions{})
}

func (cn *conn) BeginTx(ctx context.Context, opts driverpkg.TxOptions) (driverpkg.Tx, error) {
	if opts.ReadOnly {
		return nil, fmt.Errorf("dataspread driver: read-only transactions are not supported")
	}
	if err := cn.c.Begin(ctx); err != nil {
		return nil, err
	}
	return &tx{c: cn.c}, nil
}

func (cn *conn) ExecContext(ctx context.Context, query string, args []driverpkg.NamedValue) (driverpkg.Result, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	res, err := cn.c.Exec(ctx, query, vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(res.RowsAffected)}, nil
}

func (cn *conn) QueryContext(ctx context.Context, query string, args []driverpkg.NamedValue) (driverpkg.Rows, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := cn.c.Query(ctx, query, vals...)
	if err != nil {
		return nil, err
	}
	return &rows{r: r}, nil
}

// stmt adapts a prepared statement.
type stmt struct {
	s *dataspread.Stmt
}

var (
	_ driverpkg.Stmt             = (*stmt)(nil)
	_ driverpkg.StmtExecContext  = (*stmt)(nil)
	_ driverpkg.StmtQueryContext = (*stmt)(nil)
)

func (s *stmt) Close() error { return nil }

func (s *stmt) NumInput() int { return s.s.NumParams() }

func (s *stmt) Exec(args []driverpkg.Value) (driverpkg.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []driverpkg.NamedValue) (driverpkg.Result, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	res, err := s.s.Exec(ctx, vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(res.RowsAffected)}, nil
}

func (s *stmt) Query(args []driverpkg.Value) (driverpkg.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

func (s *stmt) QueryContext(ctx context.Context, args []driverpkg.NamedValue) (driverpkg.Rows, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := s.s.Query(ctx, vals...)
	if err != nil {
		return nil, err
	}
	return &rows{r: r}, nil
}

// tx adapts the connection's explicit transaction.
type tx struct {
	c *dataspread.Conn
}

func (t *tx) Commit() error   { return t.c.Commit(context.Background()) }
func (t *tx) Rollback() error { return t.c.Rollback(context.Background()) }

// rows adapts a streaming result set.
type rows struct {
	r *dataspread.Rows
}

func (r *rows) Columns() []string { return r.r.Columns() }

func (r *rows) Close() error { return r.r.Close() }

func (r *rows) Next(dest []driverpkg.Value) error {
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	for i, v := range r.r.Values() {
		if i >= len(dest) {
			break
		}
		dest[i] = dataspread.GoValue(v)
	}
	return nil
}

// result reports affected rows; DataSpread has no auto-increment row ids.
type result struct {
	affected int64
}

func (r result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("dataspread driver: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) { return r.affected, nil }

// bindArgs converts database/sql arguments to engine values. sql.Named
// arguments pass through as dataspread.NamedArg and bind against the
// statement's ':name' parameters; plain arguments bind positionally.
func bindArgs(args []driverpkg.NamedValue) ([]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		if a.Name != "" {
			out[i] = dataspread.Named(a.Name, a.Value)
		} else {
			out[i] = a.Value
		}
	}
	return out, nil
}

func namedValues(args []driverpkg.Value) []driverpkg.NamedValue {
	out := make([]driverpkg.NamedValue, len(args))
	for i, v := range args {
		out[i] = driverpkg.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}
