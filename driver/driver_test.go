package driver

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/dataspread/dataspread"
)

func openMem(t *testing.T) *sql.DB {
	t.Helper()
	db, err := sql.Open("dataspread", ":memory:")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestDriverRoundTrip(t *testing.T) {
	db := openMem(t)
	ctx := context.Background()

	if _, err := db.ExecContext(ctx, "CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, year INT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := db.PrepareContext(ctx, "INSERT INTO movies VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	for i := 0; i < 100; i++ {
		if _, err := ins.ExecContext(ctx, i, fmt.Sprintf("movie-%d", i), 1950+i%70); err != nil {
			t.Fatal(err)
		}
	}

	rows, err := db.QueryContext(ctx, "SELECT id, title FROM movies WHERE year > ? ORDER BY id LIMIT 5", 2014)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		var id int64
		var title string
		if err := rows.Scan(&id, &title); err != nil {
			t.Fatal(err)
		}
		if title != fmt.Sprintf("movie-%d", id) {
			t.Fatalf("row mismatch: %d %q", id, title)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("got %d rows, want 5", n)
	}

	// Single-row convenience and NULL handling.
	var title sql.NullString
	err = db.QueryRowContext(ctx, "SELECT title FROM movies WHERE id = ?", 42).Scan(&title)
	if err != nil {
		t.Fatal(err)
	}
	if !title.Valid || title.String != "movie-42" {
		t.Fatalf("QueryRow got %+v", title)
	}
	var count float64
	if err := db.QueryRowContext(ctx, "SELECT COUNT(*) FROM movies").Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("COUNT(*) = %v, want 100", count)
	}

	// The error taxonomy flows through database/sql.
	if _, err := db.ExecContext(ctx, "INSERT INTO movies VALUES (42, 'dup', 2000)"); !errors.Is(err, dataspread.ErrUniqueViolation) {
		t.Fatalf("want ErrUniqueViolation, got %v", err)
	}
}

func TestDriverTransactions(t *testing.T) {
	db := openMem(t)
	ctx := context.Background()
	// Explicit transactions pin one engine session; cap the pool so the tx
	// connection is the one reused.
	db.SetMaxOpenConns(1)

	if _, err := db.ExecContext(ctx, "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	tx, err := db.BeginTx(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecContext(ctx, "INSERT INTO t VALUES (?)", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var n float64
	if err := db.QueryRowContext(ctx, "SELECT COUNT(*) FROM t").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("rolled-back insert visible: count=%v", n)
	}

	tx, err = db.BeginTx(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecContext(ctx, "INSERT INTO t VALUES (?)", 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRowContext(ctx, "SELECT COUNT(*) FROM t").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("committed insert missing: count=%v", n)
	}
}

func TestDriverFileDSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wb.ds")
	ctx := context.Background()

	db, err := sql.Open("dataspread", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, "CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, "INSERT INTO kv VALUES (?, ?)", 1, "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the workbook recovered durably.
	db2, err := sql.Open("dataspread", path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var v string
	if err := db2.QueryRowContext(ctx, "SELECT v FROM kv WHERE k = ?", 1).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v != "alpha" {
		t.Fatalf("recovered v = %q, want alpha", v)
	}
}

func TestDriverContextCancellation(t *testing.T) {
	db := openMem(t)
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, "CREATE TABLE big (id INT PRIMARY KEY, s TEXT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := db.PrepareContext(ctx, "INSERT INTO big VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		if _, err := ins.ExecContext(ctx, i, "payload"); err != nil {
			t.Fatal(err)
		}
	}
	ins.Close()

	cctx, cancel := context.WithCancel(ctx)
	rows, err := db.QueryContext(cctx, "SELECT id FROM big WHERE s LIKE '%pay%'")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("expected a first row")
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}
