module github.com/dataspread/dataspread

go 1.22
