# DataSpread developer targets. CI runs `make verify`, `make apicheck` and
# `make bench`.

GO ?= go

.PHONY: all build test race vet fmt bench fuzz faultcheck verify apicheck lint servecheck

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

verify: fmt vet lint build test faultcheck apicheck

# lint runs go vet plus dslint, the project-specific analyzer suite
# (internal/lint): lockcheck (engine-lock discipline, no parking under the
# lock), errwrap (dberr sentinel wrapping, no discarded durability
# errors), ctxcancel (row loops reach the cancellation poll) and apistable
# (blessed internal imports only). See DESIGN.md "Static analysis".
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dslint

# apicheck diffs the exported surface of the public packages (the root
# `dataspread` package and `driver`) against the committed golden
# api/public.txt — the golden-export-data equivalent of an
# apidiff-against-previous-tag job. After an INTENTIONAL API change,
# re-bless with: go run ./cmd/apicheck -write
apicheck:
	$(GO) run ./cmd/apicheck

# bench is the benchmark smoke target: every testing.B benchmark compiles
# and runs at least once (so benchmark code cannot rot), and cmd/dsbench
# emits the headline results as machine-readable JSON — including the
# prepared-vs-text point-query pair, the FileStore-vs-MmapStore backend
# pairs and the cold-open scaling series.
bench:
	$(GO) test -bench=. -benchtime=1x -run=NONE .
	$(GO) run ./cmd/dsbench -json BENCH_pr9.json

# faultcheck runs the exhaustive single-fault sweep (internal/core): a fixed
# workload is re-run once per mutating filesystem operation with that one
# operation failing (EIO, ENOSPC, torn sector write), asserting classified
# errors, degraded read-only behavior and contiguous-prefix recovery after
# every single injection. See DESIGN.md "Fault injection & degraded mode".
faultcheck:
	$(GO) test ./internal/core -run 'TestSingleFaultSweep|TestTornRootSlotRecovery|TestBothRootSlotsTornRefused|TestBackgroundCheckpoint' -count=1

# servecheck exercises the serving tier (cmd/dataspreadd / internal/server /
# client) end to end under the race detector — handshake/auth, streaming,
# mid-stream typed errors, disconnect cancellation, idle reaping, LRU
# eviction under concurrent streams, admission rejection, graceful-shutdown
# drain, degraded read-only over the wire — then runs a short two-tenant
# mixed read/write smoke load through dsbench -serve.
servecheck:
	$(GO) test -race -count=1 ./internal/wire ./internal/server ./client
	$(GO) run ./cmd/dsbench -serve /tmp/dsbench-servecheck.json
	@rm -f /tmp/dsbench-servecheck.json

# fuzz runs the durability fuzz suites (fixed seeds: the same trials replay
# every run) — WAL truncation/bit-flips, checkpoint kill points, heap-file
# corruption, the shadow-paged root-flip kill points, and the zone-map
# insert/update/delete/checkpoint/reopen interleavings.
fuzz:
	$(GO) test ./internal/core/ -run 'TestCrashRecoveryFuzz|TestCheckpointCrashFuzz|TestHeapCorruptionFuzz|TestRootFlipAtomicKillPoints|TestZoneMapFuzz' -count=1 -v
