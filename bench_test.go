package dataspread

// One benchmark per reproduced experiment (see DESIGN.md §4 and
// EXPERIMENTS.md). The cmd/dsbench harness runs the same workloads as
// parameter sweeps and prints the series the paper's demonstration implies;
// these testing.B benchmarks regenerate each headline comparison in a form
// that `go test -bench=.` can run end to end.

import (
	"fmt"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/dataspread/dataspread/internal/baseline"
	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/datagen"
	"github.com/dataspread/dataspread/internal/index/positional"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/storage/cellstore"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// loadMovies populates the Figure 2a dataset.
func loadMovies(b *testing.B, ds *core.DataSpread, movies int) {
	b.Helper()
	data := datagen.MoviesDataset(movies, 5, 1)
	if _, err := ds.QueryScript(`
		CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, year INT);
		CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
		CREATE TABLE movies2actors (movieid INT, actorid INT);
	`); err != nil {
		b.Fatal(err)
	}
	for _, row := range data.Movies {
		if _, err := ds.DB().Insert("movies", row); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range data.Actors {
		if _, err := ds.DB().Insert("actors", row); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range data.Movies2Actors {
		if _, err := ds.DB().Insert("movies2actors", row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2aDBSQLQuery measures Figure 2a: a DBSQL formula joining three
// tables with RANGEVALUE parameters, spilled into the sheet as a single
// set-at-a-time pass.
func BenchmarkF2aDBSQLQuery(b *testing.B) {
	ds := core.New(core.Options{})
	loadMovies(b, ds, 5000)
	w, _ := ds.SetCell("Sheet1", "B1", "3")
	w()
	w, _ = ds.SetCell("Sheet1", "B2", "1950")
	w()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "B3",
			`=DBSQL("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE(B2) ORDER BY year")`)
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}

// BenchmarkF2bExportImport measures Figure 2b: exporting a sheet range as a
// relational table (schema inference + load + DBTABLE binding).
func BenchmarkF2bExportImport(b *testing.B) {
	grades := datagen.Gradebook(2000, 5, 1)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ds := core.New(core.Options{})
		sh, _ := ds.Book().Sheet("Sheet1")
		sh.SetValues(sheet.Addr(0, 0), grades)
		b.StartTimer()
		if _, err := ds.CreateTableFromRange("Sheet1", fmt.Sprintf("A1:G%d", len(grades)), "grades", core.ExportOptions{PrimaryKey: []string{"student"}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2cTwoWaySync measures Figure 2c: one front-end edit on a bound
// cell propagating to the database and back into a dependent DBSQL summary.
func BenchmarkF2cTwoWaySync(b *testing.B) {
	ds := core.New(core.Options{})
	if _, err := ds.Query("CREATE TABLE inv (sku INT PRIMARY KEY, qty NUMERIC)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := ds.DB().Insert("inv", []sheet.Value{sheet.Number(float64(i)), sheet.Number(100)}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := ds.ImportTable("Sheet1", "A1", "inv"); err != nil {
		b.Fatal(err)
	}
	w, err := ds.SetCell("Sheet1", "E1", `=DBSQL("SELECT SUM(qty) FROM inv")`)
	if err != nil {
		b.Fatal(err)
	}
	w()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "B3", fmt.Sprintf("%d", 100+i%50))
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}

// M1: interaction latency at scale — panning a window over a large bound
// table (DataSpread) vs fetching a window from a naive flat spreadsheet.
func benchmarkM1DataSpread(b *testing.B, rows int) {
	ds := core.New(core.Options{WindowRows: 50, WindowCols: 10, MaterializeAllLimit: 1000})
	if _, err := ds.Query("CREATE TABLE big (id INT PRIMARY KEY, v1 NUMERIC, v2 NUMERIC, v3 NUMERIC)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := ds.DB().Insert("big", []sheet.Value{
			sheet.Number(float64(i)), sheet.Number(float64(i % 97)), sheet.Number(float64(i % 31)), sheet.Number(float64(i % 11)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := ds.ImportTable("Sheet1", "A1", "big"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := sheet.Addr((i*977)%(rows-60), 0)
		if err := ds.ScrollTo("Sheet1", target.String()); err != nil {
			b.Fatal(err)
		}
		if _, err := ds.VisibleValues("Sheet1"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkM1Baseline(b *testing.B, rows int) {
	s := baseline.New()
	s.RecalcOnEdit = false
	grid := datagen.NumericGrid(rows, 4, 1)
	for r, row := range grid {
		for c, v := range row {
			s.SetValue(sheet.Addr(r, c), v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i * 977) % (rows - 60)
		_ = s.Window(sheet.RangeOf(start, 0, start+49, 9))
	}
}

// BenchmarkM1ScaleDataSpread / BenchmarkM1ScaleBaseline sweep sheet size.
func BenchmarkM1ScaleDataSpread(b *testing.B) {
	for _, rows := range []int{10_000, 50_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) { benchmarkM1DataSpread(b, rows) })
	}
}

func BenchmarkM1ScaleBaseline(b *testing.B) {
	for _, rows := range []int{10_000, 50_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) { benchmarkM1Baseline(b, rows) })
	}
}

// M2: the paper's first motivating operation — select students with a score
// above 90 in any assignment — via SQL vs a manual cell scan.
func BenchmarkM2FilterSQL(b *testing.B) {
	ds := core.New(core.Options{})
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(5000, 5, 1))
	rng := fmt.Sprintf("A1:G%d", 5001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Query(fmt.Sprintf("SELECT student FROM RANGETABLE(%s) WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90", rng))
		if err != nil || len(res.Rows) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkM2FilterBaseline(b *testing.B) {
	s := baseline.New()
	s.RecalcOnEdit = false
	grades := datagen.Gradebook(5000, 5, 1)
	for r, row := range grades {
		for c, v := range row {
			s.SetValue(sheet.Addr(r, c), v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.FilterRows(5001, []int{1, 2, 3, 4, 5}, func(v sheet.Value) bool {
			f, ok := v.AsNumber()
			return ok && f > 90
		})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// M3: the paper's second motivating operation — average grade per demographic
// group — as a SQL join+GROUP BY vs per-row lookups.
func BenchmarkM3JoinSQL(b *testing.B) {
	ds := core.New(core.Options{})
	n := 5000
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(n, 5, 1))
	ds.AddSheet("Demo")
	dsh, _ := ds.Book().Sheet("Demo")
	dsh.SetValues(sheet.Addr(0, 0), datagen.Demographics(n, 2))
	q := fmt.Sprintf("SELECT grp, AVG(grade) FROM RANGETABLE(A1:G%d) NATURAL JOIN RANGETABLE(Demo!A1:C%d) GROUP BY grp", n+1, n+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Query(q)
		if err != nil || len(res.Rows) != 3 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

func BenchmarkM3JoinBaseline(b *testing.B) {
	n := 5000
	s := baseline.New()
	s.RecalcOnEdit = false
	grades := datagen.Gradebook(n, 5, 1)
	for r, row := range grades {
		for c, v := range row {
			s.SetValue(sheet.Addr(r, c), v)
		}
	}
	demo := datagen.Demographics(n, 2)
	lookup := make(map[string]string, n)
	for _, row := range demo[1:] {
		lookup[row[0].Str] = row[1].Str
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		avg := s.GroupAverage(n+1, 0, 6, lookup)
		if len(avg) != 3 {
			b.Fatal("bad groups")
		}
	}
}

// M4: continuously appended external data — appending a batch of rows to a
// bound table and keeping the window in sync.
func BenchmarkM4Append(b *testing.B) {
	ds := core.New(core.Options{WindowRows: 50, WindowCols: 5, MaterializeAllLimit: 1000})
	if _, err := ds.Query("CREATE TABLE feed (id INT PRIMARY KEY, v NUMERIC)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		if _, err := ds.DB().Insert("feed", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := ds.ImportTable("Sheet1", "A1", "feed"); err != nil {
		b.Fatal(err)
	}
	next := 20_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.DB().Insert("feed", []sheet.Value{sheet.Number(float64(next)), sheet.Number(float64(next))}); err != nil {
			b.Fatal(err)
		}
		next++
	}
}

// A1: blocks written by ALTER TABLE ADD COLUMN across storage layouts.
func benchmarkA1SchemaChange(b *testing.B, layout sqlexec.Layout) {
	rows := datagen.WideRows(20_000, 10, 1)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ps := pager.NewStore()
		pool := pager.NewBufferPool(ps, 0)
		var store tablestore.Store
		switch layout {
		case sqlexec.LayoutRow:
			store = tablestore.NewRowStore(pool, 10)
		case sqlexec.LayoutColumn:
			store = tablestore.NewColStore(pool, 10)
		default:
			store = tablestore.NewHybridStore(pool, 10, tablestore.WithGroupSize(4))
		}
		for _, r := range rows {
			if _, err := store.Insert(r); err != nil {
				b.Fatal(err)
			}
		}
		ps.ResetStats()
		b.StartTimer()
		if err := store.AddColumn(sheet.Number(0)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(ps.Stats().Writes), "blocks/op")
		b.StartTimer()
	}
}

func BenchmarkA1SchemaChangeRow(b *testing.B)    { benchmarkA1SchemaChange(b, sqlexec.LayoutRow) }
func BenchmarkA1SchemaChangeColumn(b *testing.B) { benchmarkA1SchemaChange(b, sqlexec.LayoutColumn) }
func BenchmarkA1SchemaChangeHybrid(b *testing.B) { benchmarkA1SchemaChange(b, sqlexec.LayoutHybrid) }

// A2: window fetch and middle insertion through the positional index vs a
// dense renumbered slice.
func BenchmarkA2PositionalIndex(b *testing.B) {
	ix := positional.New()
	const n = 500_000
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	if err := ix.BulkLoad(ids); err != nil {
		b.Fatal(err)
	}
	next := uint64(n + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := (i * 7919) % n
		// Fetch a 50-row window, then insert a row in the middle.
		count := 0
		ix.Scan(pos, 50, func(int, uint64) bool { count++; return true })
		if err := ix.InsertAt(pos, next); err != nil {
			b.Fatal(err)
		}
		next++
	}
}

func BenchmarkA2DenseRenumber(b *testing.B) {
	const n = 500_000
	rows := make([]uint64, n)
	for i := range rows {
		rows[i] = uint64(i + 1)
	}
	next := uint64(n + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := (i * 7919) % len(rows)
		end := pos + 50
		if end > len(rows) {
			end = len(rows)
		}
		sum := uint64(0)
		for _, v := range rows[pos:end] {
			sum += v
		}
		// Insert in the middle of a dense array: shift everything after it.
		rows = append(rows, 0)
		copy(rows[pos+1:], rows[pos:])
		rows[pos] = next
		next++
		_ = sum
	}
}

// A3: window fetch over ad-hoc interface data — proximity-blocked store vs
// insertion-ordered flat store (block reads per window).
func benchmarkA3Window(b *testing.B, blocked bool) {
	ps := pager.NewStore()
	pool := pager.NewBufferPool(ps, 0)
	var store sheet.CellStore
	if blocked {
		store = cellstore.NewBlockedStore(pool, cellstore.WithTileCache(4))
	} else {
		store = cellstore.NewFlatStore(pool)
	}
	// 200k cells laid out densely over 20k rows x 10 cols, inserted in
	// column-major order so insertion order differs from window order.
	for c := 0; c < 10; c++ {
		for r := 0; r < 20_000; r++ {
			store.Set(sheet.Addr(r, c), sheet.Cell{Value: sheet.Number(float64(r*10 + c))})
		}
	}
	if bs, ok := store.(*cellstore.BlockedStore); ok {
		if err := bs.DropCache(); err != nil {
			b.Fatal(err)
		}
	}
	ps.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i * 613) % (20_000 - 50)
		n := 0
		store.GetRange(sheet.RangeOf(start, 0, start+49, 9), func(sheet.Address, sheet.Cell) { n++ })
		if n == 0 {
			b.Fatal("empty window")
		}
	}
	b.ReportMetric(float64(ps.Stats().Reads)/float64(b.N), "blockreads/op")
}

func BenchmarkA3InterfaceStorageBlocked(b *testing.B) { benchmarkA3Window(b, true) }
func BenchmarkA3InterfaceStorageFlat(b *testing.B)    { benchmarkA3Window(b, false) }

// A4: visible-first prioritisation — time until the visible window is
// consistent after an edit, with and without a window provider.
func benchmarkA4(b *testing.B, prioritised bool) {
	ds := core.New(core.Options{WindowRows: 25, WindowCols: 4})
	const formulas = 3000
	w, _ := ds.SetCell("Sheet1", "A1", "1")
	w()
	for i := 0; i < formulas; i++ {
		wf, err := ds.SetCell("Sheet1", sheet.Addr(i, 1).String(), "=A1*2")
		if err != nil {
			b.Fatal(err)
		}
		wf()
	}
	ds.Wait()
	if !prioritised {
		ds.Engine().SetVisibleProvider(nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Only the time to return (visible cells consistent) is measured;
		// the background pass is drained outside the timer.
		wait, err := ds.SetCell("Sheet1", "A1", fmt.Sprintf("%d", i+2))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		wait()
		b.StartTimer()
	}
}

func BenchmarkA4PrioritizationVisibleFirst(b *testing.B) { benchmarkA4(b, true) }
func BenchmarkA4PrioritizationFullRecalc(b *testing.B)   { benchmarkA4(b, false) }

// A5: shared computation — one DBSQL range formula vs one VLOOKUP-style
// formula per cell producing the same column.
func BenchmarkA5SharedComputationDBSQL(b *testing.B) {
	ds := core.New(core.Options{})
	if _, err := ds.Query("CREATE TABLE vals (id INT PRIMARY KEY, v NUMERIC)"); err != nil {
		b.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := ds.DB().Insert("vals", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i * 3))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "A1", `=DBSQL("SELECT v FROM vals ORDER BY id")`)
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}

func BenchmarkA5SharedComputationPerCell(b *testing.B) {
	// The per-cell equivalent: the lookup table lives on the sheet and each
	// output cell runs its own VLOOKUP — one evaluation per cell.
	s := baseline.New()
	s.RecalcOnEdit = false
	const n = 2000
	for i := 0; i < n; i++ {
		s.SetValue(sheet.Addr(i, 0), sheet.Number(float64(i)))
		s.SetValue(sheet.Addr(i, 1), sheet.Number(float64(i*3)))
	}
	for i := 0; i < n; i++ {
		if err := s.Set(sheet.Addr(i, 3), fmt.Sprintf("=VLOOKUP(%d, A1:B%d, 2)", i, n)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RecalcAll()
	}
}

// BenchmarkD1DurableAppend measures the cost of durability on the append
// path: the same stream of literal cell edits against an in-memory workbook,
// a file-backed workbook syncing the WAL on every commit, and a file-backed
// workbook batching fsyncs with group commit. The gap between the first two
// is the price of an fsync per edit; group commit buys most of it back.
func BenchmarkD1DurableAppend(b *testing.B) {
	appendCells := func(b *testing.B, ds *core.DataSpread) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			wait, err := ds.SetCell("Sheet1", fmt.Sprintf("A%d", i+1), strconv.Itoa(i))
			if err != nil {
				b.Fatal(err)
			}
			wait()
		}
	}
	b.Run("memory", func(b *testing.B) {
		ds := core.New(core.Options{})
		b.ResetTimer()
		appendCells(b, ds)
	})
	b.Run("file-sync-every-commit", func(b *testing.B) {
		ds, err := core.OpenFile(filepath.Join(b.TempDir(), "book.dsp"), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		b.ResetTimer()
		appendCells(b, ds)
	})
	b.Run("file-group-commit-64", func(b *testing.B) {
		ds, err := core.OpenFile(filepath.Join(b.TempDir(), "book.dsp"), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		ds.WAL().SetGroupCommit(64)
		b.ResetTimer()
		appendCells(b, ds)
	})
	b.Run("mmap-group-commit-64", func(b *testing.B) {
		ds, err := core.OpenFile(filepath.Join(b.TempDir(), "book.dsp"), core.Options{Mmap: true})
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		ds.WAL().SetGroupCommit(64)
		b.ResetTimer()
		appendCells(b, ds)
	})
}

// BenchmarkD2ColdOpen measures recovery cost. With the page-rooted catalog,
// opening a checkpointed workbook attaches to its table pages, so cold-open
// time tracks the *dirty* work since the last checkpoint (the WAL tail) —
// not the total row count. The replay-only variant (no checkpoint) is the
// old O(history) behaviour for contrast.
func BenchmarkD2ColdOpen(b *testing.B) {
	build := func(b *testing.B, rows, tail int) string {
		b.Helper()
		path := filepath.Join(b.TempDir(), "book.dsp")
		ds, err := core.OpenFile(path, core.Options{CheckpointWALBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY, v NUMERIC)"); err != nil {
			b.Fatal(err)
		}
		ds.WAL().SetGroupCommit(1 << 20) // build fast; the bench times the open
		for i := 1; i <= rows; i++ {
			if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d, %d)", i, i*2)); err != nil {
				b.Fatal(err)
			}
		}
		if rows > 0 {
			// Everything before the tail is checkpointed into pages (same
			// condition as cmd/dsbench's cold-open series, so the two
			// harnesses stay comparable).
			if err := ds.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		for i := rows + 1; i <= rows+tail; i++ {
			if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d, %d)", i, i*2)); err != nil {
				b.Fatal(err)
			}
		}
		if err := ds.Close(); err != nil {
			b.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name       string
		rows, tail int
	}{
		{"checkpointed-10k-rows-dirty-0", 10000, 0},
		{"checkpointed-10k-rows-dirty-500", 10000, 500},
		{"checkpointed-20k-rows-dirty-500", 20000, 500},
		{"replay-only-10k-rows", 0, 10000},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			path := build(b, tc.rows, tc.tail)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds, err := core.OpenFile(path, core.Options{CheckpointWALBytes: -1})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := ds.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
