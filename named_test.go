package dataspread_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/dataspread/dataspread"
)

func TestNamedParameters(t *testing.T) {
	db := dataspread.New(dataspread.Options{})
	defer db.Close()
	ctx := context.Background()
	if _, err := db.Exec(ctx, "CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, year INT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO movies VALUES (:id, :title, :year)")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ins.ParamNames(), []string{"id", "title", "year"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ParamNames = %v, want %v", got, want)
	}
	for i, title := range []string{"Heat", "Casino", "Ronin"} {
		// Named arguments bind in any order.
		if _, err := ins.Exec(ctx,
			dataspread.Named("year", 1995+i),
			dataspread.Named("id", i+1),
			dataspread.Named("title", title),
		); err != nil {
			t.Fatal(err)
		}
	}

	// A repeated name binds one slot.
	q, err := db.Prepare("SELECT title FROM movies WHERE year >= :y AND year <= :y")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", q.NumParams())
	}
	rows, err := q.Query(ctx, dataspread.Named("y", 1996))
	if err != nil {
		t.Fatal(err)
	}
	var titles []string
	for rows.Next() {
		var title string
		if err := rows.Scan(&title); err != nil {
			t.Fatal(err)
		}
		titles = append(titles, title)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(titles, []string{"Casino"}) {
		t.Fatalf("titles = %v", titles)
	}

	// Positional values still bind a named statement in slot order.
	res, err := db.Exec(ctx, "SELECT COUNT(*) FROM movies WHERE year >= :lo AND year <= :hi", 1995, 1997)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Num != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}

	// Error cases are ErrParamCount-classified.
	for _, args := range [][]any{
		{dataspread.Named("nope", 1)},                        // unknown name
		{dataspread.Named("y", 1), dataspread.Named("y", 2)}, // bound twice
		{},                            // missing
		{dataspread.Named("y", 1), 2}, // mixed styles
	} {
		if _, err := q.Query(ctx, args...); !errors.Is(err, dataspread.ErrParamCount) {
			t.Errorf("args %v: err = %v, want ErrParamCount", args, err)
		}
	}
}
