package dataspread

import "github.com/dataspread/dataspread/internal/dberr"

// The error taxonomy. Every failure the engine raises wraps one of these
// sentinels, so embedders branch with errors.Is instead of matching message
// strings:
//
//	if _, err := db.Exec(ctx, "INSERT ...", id); errors.Is(err, dataspread.ErrUniqueViolation) {
//	    // handle the duplicate
//	}
//
// Cancellation surfaces as the standard context errors (context.Canceled,
// context.DeadlineExceeded), never as an engine-specific value.
var (
	// ErrTableNotFound: a statement referenced an unknown table.
	ErrTableNotFound = dberr.ErrTableNotFound
	// ErrTableExists: CREATE TABLE without IF NOT EXISTS hit an existing
	// table.
	ErrTableExists = dberr.ErrTableExists
	// ErrColumnNotFound: a statement referenced an unknown column.
	ErrColumnNotFound = dberr.ErrColumnNotFound
	// ErrIndexNotFound: DROP INDEX without IF EXISTS hit a missing index.
	ErrIndexNotFound = dberr.ErrIndexNotFound
	// ErrIndexExists: CREATE INDEX without IF NOT EXISTS hit an existing
	// index.
	ErrIndexExists = dberr.ErrIndexExists
	// ErrUniqueViolation: a duplicate primary key or UNIQUE index value.
	ErrUniqueViolation = dberr.ErrUniqueViolation
	// ErrNotNullViolation: a NULL value for a NOT NULL column.
	ErrNotNullViolation = dberr.ErrNotNullViolation
	// ErrTypeMismatch: a value that cannot be coerced to its column type.
	ErrTypeMismatch = dberr.ErrTypeMismatch
	// ErrConflict: the operation lost to conflicting state — e.g. opening a
	// workbook file another process holds.
	ErrConflict = dberr.ErrConflict
	// ErrTxOpen: BEGIN inside an already-open explicit transaction.
	ErrTxOpen = dberr.ErrTxOpen
	// ErrNoTx: COMMIT or ROLLBACK without an open transaction.
	ErrNoTx = dberr.ErrNoTx
	// ErrParamCount: the bound arguments do not match the statement's '?'
	// placeholders.
	ErrParamCount = dberr.ErrParamCount
	// ErrClosed: use of a closed database, statement or row set.
	ErrClosed = dberr.ErrClosed
	// ErrIO: a storage I/O failure (read, write, fsync, truncate or close
	// on the workbook's files). Every lower-level I/O error the engine
	// surfaces matches it.
	ErrIO = dberr.ErrIO
	// ErrDiskFull: the ENOSPC subclass of ErrIO. errors.Is(err, ErrIO) also
	// holds for every ErrDiskFull.
	ErrDiskFull = dberr.ErrDiskFull
	// ErrReadOnly: a write was rejected because the workbook degraded to
	// read-only after an I/O failure. Reads keep working from committed
	// state; reopening the workbook recovers the committed prefix and
	// clears the condition. Health reports the original cause.
	ErrReadOnly = dberr.ErrReadOnly
	// ErrAuth: a network client's handshake was rejected (unknown tenant,
	// bad token or unsupported protocol version).
	ErrAuth = dberr.ErrAuth
	// ErrOverloaded: admission control rejected a query — the server or
	// tenant is at its in-flight cap and the bounded wait queue is full.
	// The request was not executed; retry after backoff.
	ErrOverloaded = dberr.ErrOverloaded
)
