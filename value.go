package dataspread

import (
	"fmt"
	"math"
	"time"

	"github.com/dataspread/dataspread/internal/sheet"
)

// Value is the engine's dynamically-typed value: NULL (empty), a float64
// number, a string, a boolean or an error value. It is shared with the
// spreadsheet layer, so query results and cell values speak the same type.
//
// Useful methods include String, IsEmpty, AsNumber, AsBool, AsString,
// Equal and Compare.
type Value = sheet.Value

// Null returns the NULL (empty) value.
func Null() Value { return sheet.Empty() }

// Number returns a numeric value.
func Number(f float64) Value { return sheet.Number(f) }

// Text returns a string value.
func Text(s string) Value { return sheet.String_(s) }

// Bool returns a boolean value.
func Bool(b bool) Value { return sheet.Bool_(b) }

// BindValue converts a native Go value to a statement argument. Supported:
// nil, Value, bool, string, []byte (as string), every integer and float
// type, and time.Time (RFC 3339 text). Anything else is an error.
func BindValue(arg any) (Value, error) {
	switch v := arg.(type) {
	case nil:
		return sheet.Empty(), nil
	case Value:
		return v, nil
	case bool:
		return sheet.Bool_(v), nil
	case string:
		return sheet.String_(v), nil
	case []byte:
		return sheet.String_(string(v)), nil
	case float64:
		return sheet.Number(v), nil
	case float32:
		return sheet.Number(float64(v)), nil
	case int:
		return sheet.Number(float64(v)), nil
	case int8:
		return sheet.Number(float64(v)), nil
	case int16:
		return sheet.Number(float64(v)), nil
	case int32:
		return sheet.Number(float64(v)), nil
	case int64:
		return sheet.Number(float64(v)), nil
	case uint:
		return sheet.Number(float64(v)), nil
	case uint8:
		return sheet.Number(float64(v)), nil
	case uint16:
		return sheet.Number(float64(v)), nil
	case uint32:
		return sheet.Number(float64(v)), nil
	case uint64:
		return sheet.Number(float64(v)), nil
	case time.Time:
		return sheet.String_(v.Format(time.RFC3339Nano)), nil
	default:
		return sheet.Empty(), fmt.Errorf("dataspread: cannot bind %T as a statement argument", arg)
	}
}

// BindValues converts a native Go argument list (see BindValue).
func BindValues(args []any) ([]Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := BindValue(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// GoValue converts a Value to its native Go representation: nil, float64,
// string or bool (error values surface as their message string).
func GoValue(v Value) any {
	switch v.Kind {
	case sheet.KindNumber:
		return v.Num
	case sheet.KindString:
		return v.Str
	case sheet.KindBool:
		return v.Bool
	case sheet.KindError:
		return v.Err
	default:
		return nil
	}
}

// ScanValue stores a Value into a caller-supplied destination pointer,
// with the same conversions as Rows.Scan. It is exported so remote result
// sets (package client) scan identically to embedded ones.
func ScanValue(v Value, dest any) error { return scanValue(v, dest) }

// scanValue stores a Value into a caller-supplied destination pointer.
// NULL scans as the destination's zero value (nil for *any and *Value...
// pointees keep Value NULL semantics through IsEmpty).
func scanValue(v Value, dest any) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
	case *any:
		*d = GoValue(v)
	case *string:
		if v.IsEmpty() {
			*d = ""
		} else {
			*d = v.AsString()
		}
	case *float64:
		f, ok := v.AsNumber()
		if !ok && !v.IsEmpty() {
			return fmt.Errorf("dataspread: cannot scan %q into *float64", v.String())
		}
		*d = f
	case *int:
		f, ok := v.AsNumber()
		if !ok && !v.IsEmpty() {
			return fmt.Errorf("dataspread: cannot scan %q into *int", v.String())
		}
		*d = int(math.Round(f))
	case *int64:
		f, ok := v.AsNumber()
		if !ok && !v.IsEmpty() {
			return fmt.Errorf("dataspread: cannot scan %q into *int64", v.String())
		}
		*d = int64(math.Round(f))
	case *bool:
		b, ok := v.AsBool()
		if !ok && !v.IsEmpty() {
			return fmt.Errorf("dataspread: cannot scan %q into *bool", v.String())
		}
		*d = b
	default:
		return fmt.Errorf("dataspread: unsupported scan destination %T", dest)
	}
	return nil
}
