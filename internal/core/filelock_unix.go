//go:build unix

package core

import (
	"errors"
	"fmt"
	"os"
	"syscall"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// lockWorkbookFile enforces the single-writer rule for durable workbooks: an
// exclusive, non-blocking flock on <path>.lock taken before the page heap or
// WAL is opened. Two processes opening the same workbook would otherwise
// interleave WAL appends and corrupt the committed history. The returned
// release closes and removes the lock file.
func lockWorkbookFile(fsys vfs.FS, path string) (release func() error, err error) {
	lockPath := path + ".lock"
	f, err := fsys.OpenFile(lockPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open workbook lock %s: %w", lockPath, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		cerr := f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, errors.Join(fmt.Errorf("core: workbook %s is open in another process (lock %s is held): %w", path, lockPath, dberr.ErrConflict), cerr)
		}
		return nil, errors.Join(fmt.Errorf("core: lock workbook %s: %w", path, err), cerr)
	}
	return func() error {
		// Unlocking happens implicitly on close. The lock file itself is
		// left in place: removing it would let a third opener create a
		// fresh inode and lock it while a second opener still holds (or is
		// about to take) the old one — two "exclusive" owners.
		return f.Close()
	}, nil
}
