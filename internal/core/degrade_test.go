package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// buildMirroredWorkbook creates a workbook whose two root slots both hold the
// same checkpoint root (the adopt stage mirrors), with WAL records above the
// watermark: table seq holds 1..5, rows 4..5 only in the WAL.
func buildMirroredWorkbook(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{CheckpointWALBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY, v NUMERIC)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 1; i <= 5; i++ {
		if i == 4 {
			if err := ds.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d, %d)", i, i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return path
}

// corruptSlotSector overwrites the first sector (512 bytes) of a root slot —
// the granularity a torn sector write destroys, taking the 16-byte slot
// header and the root record with it.
func corruptSlotSector(t *testing.T, path string, slot pager.PageID, mutate func(sector []byte)) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open for surgery: %v", err)
	}
	defer f.Close()
	off := int64(slot) * pager.PageSize
	sector := make([]byte, 512)
	if _, err := f.ReadAt(sector, off); err != nil {
		t.Fatalf("read sector: %v", err)
	}
	mutate(sector)
	if _, err := f.WriteAt(sector, off); err != nil {
		t.Fatalf("write sector: %v", err)
	}
}

// TestTornRootSlotRecovery proves a torn sector-granularity write into either
// root slot never costs data: recovery proceeds from the surviving mirrored
// root (plus the WAL tail), and the open re-registers and re-mirrors the
// destroyed slot so a second, later corruption of the other slot is survivable
// too.
func TestTornRootSlotRecovery(t *testing.T) {
	src := buildMirroredWorkbook(t)
	variants := []struct {
		name   string
		mutate func([]byte)
	}{
		// Garbage over header and record: the slot no longer parses as
		// allocated at all (the Reclaim path).
		{"garbage", func(s []byte) {
			for i := range s {
				s[i] = 0xFF
			}
		}},
		// Zeroed sector: the slot header reads as an empty head page, the
		// root record is gone.
		{"zeros", func(s []byte) {
			for i := range s {
				s[i] = 0
			}
		}},
		// Partial record: slot header intact, one byte of the root record
		// flipped so its CRC fails.
		{"crc", func(s []byte) { s[16+8] ^= 0xA5 }},
	}
	for _, slot := range []pager.PageID{1, 2} {
		for _, v := range variants {
			v := v
			slot := slot
			t.Run(fmt.Sprintf("slot%d_%s", slot, v.name), func(t *testing.T) {
				path := copyWorkbook(t, src, filepath.Join(t.TempDir(), "w"))
				corruptSlotSector(t, path, slot, v.mutate)
				expectSeq(t, path, 5, "after torn slot")
				// The open above must have re-mirrored the current root into
				// the destroyed slot: tearing the OTHER slot now still leaves
				// a valid root.
				other := pager.PageID(3) - slot
				corruptSlotSector(t, path, other, v.mutate)
				expectSeq(t, path, 5, "after tearing the re-mirrored sibling")
			})
		}
	}
}

// TestBothRootSlotsTornRefused: with both roots destroyed but data pages
// present, the file is genuinely corrupt — re-initialising it would silently
// discard data, so the open must refuse with ErrCorrupt.
func TestBothRootSlotsTornRefused(t *testing.T) {
	src := buildMirroredWorkbook(t)
	path := copyWorkbook(t, src, filepath.Join(t.TempDir(), "w"))
	for _, slot := range []pager.PageID{1, 2} {
		corruptSlotSector(t, path, slot, func(s []byte) {
			for i := range s {
				s[i] = 0xFF
			}
		})
	}
	ds, err := OpenFile(path, Options{})
	if err == nil {
		ds.Close()
		t.Fatalf("open succeeded with both root slots torn and data pages present")
	}
	if !errors.Is(err, dberr.ErrCorrupt) {
		t.Fatalf("open = %v, want ErrCorrupt", err)
	}
}

// TestBackgroundCheckpointSyncFailureSurfaces: a durability-class failure (a
// failed fsync) inside a background checkpoint must not vanish in the
// goroutine — Health reports it, the next explicit Checkpoint and the final
// Close surface it, it is never retried behind the caller's back, and the
// WAL keeps every commit safe for the reopen.
func TestBackgroundCheckpointSyncFailureSurfaces(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{FS: ffs, CheckpointWALBytes: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ds.ckptRetryBase = time.Millisecond
	// Fail the next heap fsync: the CREATE below triggers a background
	// checkpoint whose blob sync hits it. The WAL (different suffix) stays
	// healthy.
	ffs.SetFault(vfs.Fault{Kind: vfs.OpSync, PathSuffix: ".dsp", Err: syscall.EIO})
	if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY, v NUMERIC)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var health error
	for {
		if health = ds.Health(); health != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint failure never surfaced through Health")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(health, dberr.ErrIO) || !strings.Contains(health.Error(), "checkpoint") {
		t.Fatalf("Health = %v, want an ErrIO-classified checkpoint failure", health)
	}
	// A failed checkpoint is not a failed commit: the workbook is not
	// poisoned and the WAL still accepts and protects writes.
	if _, err := ds.Query("INSERT INTO seq VALUES (1, 1)"); err != nil {
		t.Fatalf("insert after background checkpoint failure: %v", err)
	}
	// The explicit Checkpoint consumes the recorded failure and fails itself
	// on the latched heap fsync (fsync-gate) — never a silent success.
	if err := ds.Checkpoint(); err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("explicit Checkpoint = %v, want ErrIO", err)
	}
	// Close reports the latched heap state instead of pretending the final
	// flush worked.
	if err := ds.Close(); err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("Close = %v, want ErrIO", err)
	}
	// The WAL carried everything: a clean reopen has the full state.
	expectSeq(t, path, 1, "reopen after failed checkpoints")
}

// TestBackgroundCheckpointTransientRetry: a transient failure (one rejected
// write, no fsync involved) is retried with backoff and the retry succeeds —
// Health stays clean and the checkpoint completes. The retry driver is called
// directly so the single-shot fault deterministically lands in the checkpoint
// and not in a command's own heap writes.
func TestBackgroundCheckpointTransientRetry(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{FS: ffs, CheckpointWALBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ds.ckptRetryBase = time.Millisecond
	if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY, v NUMERIC)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := ds.Query("INSERT INTO seq VALUES (1, 1)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// The checkpoint's first write to the heap fails; the retried attempt
	// succeeds.
	ffs.SetFault(vfs.Fault{Kind: vfs.OpWrite, PathSuffix: ".dsp", Err: syscall.EIO})
	ds.runCheckpointWithRetry(nil)
	if _, _, hit := ffs.Hit(); !hit {
		t.Fatalf("checkpoint never touched the heap; fault did not fire")
	}
	if ds.wal.LogSize() != 0 {
		t.Fatalf("retried checkpoint did not compact the WAL (size %d)", ds.wal.LogSize())
	}
	if err := ds.Health(); err != nil {
		t.Fatalf("Health after successful retry = %v, want nil", err)
	}
	if _, err := ds.Query("INSERT INTO seq VALUES (2, 2)"); err != nil {
		t.Fatalf("insert after retry: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	expectSeq(t, path, 2, "reopen after transient checkpoint retry")
}
