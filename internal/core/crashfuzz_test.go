package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestSingleWriterLock verifies the flock-based single-writer rule: a second
// process-level opener of the same workbook fails with a clear error while
// the first holds the lock, and can open once the first closes.
func TestSingleWriterLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, Options{}); err == nil {
		t.Fatal("second opener acquired the workbook while it was locked")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryFuzz is the randomized crash-recovery seed: a recorded
// WAL is truncated or bit-flipped at arbitrary offsets and recovery must
// always yield a committed prefix — cells A1..Ak hold their committed
// values for some k, every later cell is untouched, and no recovered value
// is ever wrong.
func TestCrashRecoveryFuzz(t *testing.T) {
	const commands = 30
	base := t.TempDir()
	path := filepath.Join(base, "book.dsp")
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= commands; i++ {
		wait, err := ds.SetCell("Sheet1", fmt.Sprintf("A%d", i), fmt.Sprintf("%d", 1000+i))
		if err != nil {
			t.Fatal(err)
		}
		wait()
	}
	ds.Wait()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	pristineWAL, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	pristineHeap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		wal := append([]byte(nil), pristineWAL...)
		var desc string
		if trial%2 == 0 {
			cut := rng.Intn(len(wal) + 1)
			wal = wal[:cut]
			desc = fmt.Sprintf("truncate@%d", cut)
		} else {
			pos := rng.Intn(len(wal))
			bit := byte(1) << uint(rng.Intn(8))
			wal[pos] ^= bit
			desc = fmt.Sprintf("bitflip@%d/%#x", pos, bit)
		}

		dir := filepath.Join(base, fmt.Sprintf("trial%d", trial))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "book.dsp")
		if err := os.WriteFile(p, pristineHeap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPath(p), wal, 0o644); err != nil {
			t.Fatal(err)
		}

		re, err := OpenFile(p, Options{})
		if err != nil {
			t.Fatalf("%s: recovery refused to open: %v", desc, err)
		}
		// Find the recovered prefix length: the first unset cell ends it.
		k := 0
		for i := 1; i <= commands; i++ {
			v, err := re.Get("Sheet1", fmt.Sprintf("A%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if v.IsEmpty() {
				break
			}
			want := fmt.Sprintf("%d", 1000+i)
			if v.String() != want {
				t.Fatalf("%s: A%d = %q, want %q (recovered value corrupted)", desc, i, v.String(), want)
			}
			k = i
		}
		// Prefix property: everything after the first gap must be unset.
		for i := k + 1; i <= commands; i++ {
			v, err := re.Get("Sheet1", fmt.Sprintf("A%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if !v.IsEmpty() {
				t.Fatalf("%s: recovered non-prefix state: A%d set but A%d empty", desc, i, k+1)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
