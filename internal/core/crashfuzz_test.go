package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
)

// TestSingleWriterLock verifies the flock-based single-writer rule: a second
// process-level opener of the same workbook fails with a clear error while
// the first holds the lock, and can open once the first closes.
func TestSingleWriterLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, Options{}); err == nil {
		t.Fatal("second opener acquired the workbook while it was locked")
	} else if !errors.Is(err, dberr.ErrConflict) {
		// The conflict must classify as dberr.ErrConflict even though the
		// lock path joins the close error into the returned error.
		t.Fatalf("second-opener error = %v, want errors.Is dberr.ErrConflict", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryFuzz is the randomized crash-recovery seed: a recorded
// WAL is truncated or bit-flipped at arbitrary offsets and recovery must
// always yield a committed prefix — cells A1..Ak hold their committed
// values for some k, every later cell is untouched, and no recovered value
// is ever wrong.
func TestCrashRecoveryFuzz(t *testing.T) {
	const commands = 30
	base := t.TempDir()
	path := filepath.Join(base, "book.dsp")
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= commands; i++ {
		wait, err := ds.SetCell("Sheet1", fmt.Sprintf("A%d", i), fmt.Sprintf("%d", 1000+i))
		if err != nil {
			t.Fatal(err)
		}
		wait()
	}
	ds.Wait()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	pristineWAL, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	pristineHeap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		wal := append([]byte(nil), pristineWAL...)
		var desc string
		if trial%2 == 0 {
			cut := rng.Intn(len(wal) + 1)
			wal = wal[:cut]
			desc = fmt.Sprintf("truncate@%d", cut)
		} else {
			pos := rng.Intn(len(wal))
			bit := byte(1) << uint(rng.Intn(8))
			wal[pos] ^= bit
			desc = fmt.Sprintf("bitflip@%d/%#x", pos, bit)
		}

		dir := filepath.Join(base, fmt.Sprintf("trial%d", trial))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "book.dsp")
		if err := os.WriteFile(p, pristineHeap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPath(p), wal, 0o644); err != nil {
			t.Fatal(err)
		}

		re, err := OpenFile(p, Options{})
		if err != nil {
			t.Fatalf("%s: recovery refused to open: %v", desc, err)
		}
		// Find the recovered prefix length: the first unset cell ends it.
		k := 0
		for i := 1; i <= commands; i++ {
			v, err := re.Get("Sheet1", fmt.Sprintf("A%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if v.IsEmpty() {
				break
			}
			want := fmt.Sprintf("%d", 1000+i)
			if v.String() != want {
				t.Fatalf("%s: A%d = %q, want %q (recovered value corrupted)", desc, i, v.String(), want)
			}
			k = i
		}
		// Prefix property: everything after the first gap must be unset.
		for i := k + 1; i <= commands; i++ {
			v, err := re.Get("Sheet1", fmt.Sprintf("A%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if !v.IsEmpty() {
				t.Fatalf("%s: recovered non-prefix state: A%d set but A%d empty", desc, i, k+1)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointCrashFuzz fuzzes randomized kill points across the
// checkpoint path. Each trial issues n1 non-idempotent commands (INSERTs),
// checkpoints, issues n2 more, then reconstructs the on-disk state a crash
// would leave at each kill point:
//
//   - K1: during checkpoint, before the snapshot page write — the heap has
//     no snapshot yet, the full WAL survives;
//   - K2: after the snapshot sync, before the log reset — snapshot AND the
//     old WAL coexist, so recovery must not replay records the snapshot
//     already covers (the watermark rule);
//   - K3: after the log reset, before any new command;
//   - K4: a random truncation of the post-checkpoint WAL tail.
//
// In every case recovery must yield exactly a committed prefix — never a
// lost committed command before the kill point, never a duplicated insert,
// never a gap.
func TestCheckpointCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := t.TempDir()
	for trial := 0; trial < 10; trial++ {
		n1 := 3 + rng.Intn(10)
		n2 := 1 + rng.Intn(8)
		dir := filepath.Join(base, fmt.Sprintf("trial%d", trial))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "book.dsp")
		ds, err := OpenFile(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY)"); err != nil {
			t.Fatal(err)
		}
		insert := func(i int) {
			if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d)", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i <= n1; i++ {
			insert(i)
		}
		ds.Wait()
		readBytes := func(p string) []byte {
			b, err := os.ReadFile(p)
			if err != nil {
				if os.IsNotExist(err) {
					return nil
				}
				t.Fatal(err)
			}
			return b
		}
		walPre := readBytes(WALPath(path))
		if err := ds.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		heapPost := readBytes(path)
		for i := n1 + 1; i <= n1+n2; i++ {
			insert(i)
		}
		ds.Wait()
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		heapFinal := readBytes(path)
		walTail := readBytes(WALPath(path))

		// verify reconstructs a crash state and checks the recovered table
		// is exactly the prefix 1..k for some k in [wantMin, wantMax].
		verify := func(desc string, heap, wal []byte, wantMin, wantMax int) {
			vdir := filepath.Join(dir, desc)
			if err := os.MkdirAll(vdir, 0o755); err != nil {
				t.Fatal(err)
			}
			vpath := filepath.Join(vdir, "book.dsp")
			if heap != nil {
				if err := os.WriteFile(vpath, heap, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(WALPath(vpath), wal, 0o644); err != nil {
				t.Fatal(err)
			}
			re, err := OpenFile(vpath, Options{})
			if err != nil {
				t.Fatalf("trial %d %s: recovery refused to open: %v", trial, desc, err)
			}
			defer re.Close()
			if errs := re.RecoveryErrors(); len(errs) != 0 {
				t.Fatalf("trial %d %s: recovery errors (duplicated or broken replay): %v", trial, desc, errs)
			}
			res, err := re.Query("SELECT n FROM seq ORDER BY n")
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, desc, err)
			}
			k := len(res.Rows)
			if k < wantMin || k > wantMax {
				t.Fatalf("trial %d %s: recovered %d rows, want %d..%d", trial, desc, k, wantMin, wantMax)
			}
			for i, row := range res.Rows {
				if int(row[0].Num) != i+1 {
					t.Fatalf("trial %d %s: row %d = %v, want %d (not a committed prefix)", trial, desc, i, row[0], i+1)
				}
			}
		}

		verify("pre-snapshot", nil, walPre, n1, n1)
		verify("pre-reset", heapPost, walPre, n1, n1)
		verify("post-reset", heapPost, nil, n1, n1)
		cut := rng.Intn(len(walTail) + 1)
		verify("tail-truncate", heapFinal, walTail[:cut], n1, n1+n2)
		verify("final", heapFinal, walTail, n1+n2, n1+n2)
	}
}

// TestIndexDDLSurvivesCheckpoint: CREATE INDEX must be part of both the WAL
// (replay) and the checkpoint snapshot, so planner-chosen index paths come
// back after recovery through either route.
func TestIndexDDLSurvivesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.QueryScript(`
		CREATE TABLE m (id INT PRIMARY KEY, g INT);
		INSERT INTO m VALUES (1, 7), (2, 7), (3, 8);
		CREATE INDEX mg ON m (g);`); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck := func(stage string) {
		re, err := OpenFile(path, Options{})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		defer re.Close()
		defs := re.DB().Indexes("m")
		if len(defs) != 1 || defs[0].Name != "mg" {
			t.Fatalf("%s: indexes after recovery = %+v", stage, defs)
		}
		plan, err := re.Query("EXPLAIN SELECT id FROM m WHERE g = 7")
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if text := plan.Rows[0][0].String(); !strings.Contains(text, "index mg point (g)") {
			t.Fatalf("%s: EXPLAIN after recovery = %q", stage, text)
		}
		res, err := re.Query("SELECT id FROM m WHERE g = 7 ORDER BY id")
		if err != nil || len(res.Rows) != 2 {
			t.Fatalf("%s: index query after recovery: %v %v", stage, res, err)
		}
	}
	// Route 1: WAL replay (no checkpoint).
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck("wal-replay")
	// Route 2: checkpoint snapshot.
	ds, err = OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck("snapshot")
}

// TestHeapCorruptionFuzz is the heap-file arm of the crash-fuzz suite: random
// bytes of the page file are flipped and the workbook is reopened. Every
// trial must end in one of three detectable states — the open fails with a
// clear error, recovery reports per-command errors, or a query surfaces a
// checksum/read error — or the recovered data is exactly correct. What can
// never happen is a silent wrong row: every table page is CRC-sealed
// (tablestore), the page catalog and sheet snapshot blobs are CRC-framed,
// and the ping-pong root slots are CRC-protected with a mirrored sibling.
func TestHeapCorruptionFuzz(t *testing.T) {
	const rows = 120
	base := t.TempDir()
	path := filepath.Join(base, "book.dsp")
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY, label TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= rows; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d, 'row-%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A WAL tail on top of the checkpoint, so both recovery routes run.
	for i := rows + 1; i <= rows+10; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d, 'row-%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	ds.Wait()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	pristineHeap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pristineWAL, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	total := rows + 10

	rng := rand.New(rand.NewSource(1337)) // fixed seed: CI replays these trials
	for trial := 0; trial < 50; trial++ {
		heap := append([]byte(nil), pristineHeap...)
		flips := 1 + rng.Intn(3)
		var desc strings.Builder
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(heap))
			bit := byte(1) << uint(rng.Intn(8))
			heap[pos] ^= bit
			fmt.Fprintf(&desc, "flip@%d/%#x ", pos, bit)
		}
		dir := filepath.Join(base, fmt.Sprintf("trial%d", trial))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "book.dsp")
		if err := os.WriteFile(p, heap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPath(p), pristineWAL, 0o644); err != nil {
			t.Fatal(err)
		}

		re, err := OpenFile(p, Options{})
		if err != nil {
			continue // detected at open: acceptable
		}
		func() {
			defer re.Close()
			if len(re.RecoveryErrors()) != 0 {
				return // detected during replay: acceptable
			}
			res, err := re.Query("SELECT n, label FROM seq ORDER BY n")
			if err != nil {
				return // detected at read time (checksum / page error): acceptable
			}
			// No error anywhere: the data must be EXACTLY right.
			if len(res.Rows) != total {
				t.Fatalf("%s: silently served %d rows, want %d", desc.String(), len(res.Rows), total)
			}
			for i, row := range res.Rows {
				wantLabel := fmt.Sprintf("row-%d", i+1)
				if int(row[0].Num) != i+1 || row[1].String() != wantLabel {
					t.Fatalf("%s: silently corrupt row %d = (%v, %q)", desc.String(), i, row[0], row[1].String())
				}
			}
		}()
	}
}
