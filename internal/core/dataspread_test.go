package core

import (
	"fmt"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

func newDS(t *testing.T) *DataSpread {
	t.Helper()
	return New(Options{})
}

func set(t *testing.T, ds *DataSpread, sheetName, addr, input string) {
	t.Helper()
	wait, err := ds.SetCell(sheetName, addr, input)
	if err != nil {
		t.Fatalf("SetCell(%s,%s,%q): %v", sheetName, addr, input, err)
	}
	wait()
}

func get(t *testing.T, ds *DataSpread, sheetName, addr string) sheet.Value {
	t.Helper()
	v, err := ds.Get(sheetName, addr)
	if err != nil {
		t.Fatalf("Get(%s,%s): %v", sheetName, addr, err)
	}
	return v
}

func TestSpreadsheetBasics(t *testing.T) {
	ds := newDS(t)
	set(t, ds, "Sheet1", "A1", "10")
	set(t, ds, "Sheet1", "A2", "32")
	set(t, ds, "Sheet1", "A3", "=A1+A2")
	set(t, ds, "Sheet1", "B1", "hello")
	set(t, ds, "Sheet1", "B2", "TRUE")
	if got := get(t, ds, "Sheet1", "A3"); got.Num != 42 {
		t.Errorf("A3 = %v", got)
	}
	if got := get(t, ds, "Sheet1", "B1"); got.Str != "hello" {
		t.Errorf("B1 = %v", got)
	}
	if got := get(t, ds, "Sheet1", "B2"); got.Kind != sheet.KindBool || !got.Bool {
		t.Errorf("B2 = %v", got)
	}
	// Changing a precedent ripples.
	set(t, ds, "Sheet1", "A1", "100")
	ds.Wait()
	if got := get(t, ds, "Sheet1", "A3"); got.Num != 132 {
		t.Errorf("A3 after edit = %v", got)
	}
	// Clearing a cell.
	set(t, ds, "Sheet1", "B1", "")
	if got := get(t, ds, "Sheet1", "B1"); !got.IsEmpty() {
		t.Errorf("B1 after clear = %v", got)
	}
	// Errors.
	if _, err := ds.SetCell("NoSheet", "A1", "1"); err == nil {
		t.Error("unknown sheet should fail")
	}
	if _, err := ds.SetCell("Sheet1", "notanaddr", "1"); err == nil {
		t.Error("bad address should fail")
	}
	if _, err := ds.Get("Sheet1", "bad!"); err == nil {
		t.Error("bad get address should fail")
	}
	if _, err := ds.GetRange("Sheet1", "A1:"); err == nil {
		t.Error("bad range should fail")
	}
}

func TestDirectSQL(t *testing.T) {
	ds := newDS(t)
	if _, err := ds.QueryScript(`
		CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
		INSERT INTO actors VALUES (1, 'Bogart'), (2, 'Bacall'), (3, 'Hepburn');
	`); err != nil {
		t.Fatal(err)
	}
	res, err := ds.Query("SELECT COUNT(*) FROM actors")
	if err != nil || res.Rows[0][0].Num != 3 {
		t.Fatalf("count = %v, %v", res, err)
	}
	// SQL referencing sheet data: RANGEVALUE.
	set(t, ds, "Sheet1", "B1", "2")
	res, err = ds.Query("SELECT name FROM actors WHERE actorid = RANGEVALUE(B1)")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str != "Bacall" {
		t.Fatalf("RANGEVALUE query = %v, %v", res, err)
	}
	// RANGETABLE over ad-hoc sheet data.
	set(t, ds, "Sheet1", "D1", "actorid")
	set(t, ds, "Sheet1", "E1", "salary")
	set(t, ds, "Sheet1", "D2", "1")
	set(t, ds, "Sheet1", "E2", "100")
	set(t, ds, "Sheet1", "D3", "3")
	set(t, ds, "Sheet1", "E3", "250")
	res, err = ds.Query("SELECT name, salary FROM actors NATURAL JOIN RANGETABLE(D1:E3) ORDER BY salary DESC")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("RANGETABLE query = %v, %v", res, err)
	}
	if res.Rows[0][0].Str != "Hepburn" || res.Rows[0][1].Num != 250 {
		t.Errorf("RANGETABLE join rows = %v", res.Rows)
	}
	// Sheet-qualified range on another sheet.
	ds.AddSheet("Data")
	set(t, ds, "Data", "A1", "7")
	res, err = ds.Query("SELECT RANGEVALUE(Data!A1) * 2")
	if err != nil || res.Rows[0][0].Num != 14 {
		t.Fatalf("sheet-qualified RANGEVALUE = %v, %v", res, err)
	}
}

// TestFeature2ImportExport reproduces the paper's Figure 2b demonstration:
// select a range, create a table from it (schema inferred from headers), and
// have the region replaced by a DBTABLE binding; DBTABLE also imports
// existing tables.
func TestFeature2ImportExport(t *testing.T) {
	ds := newDS(t)
	// Lay out a small gradebook on the sheet.
	rows := [][]string{
		{"id", "name", "score"},
		{"1", "alice", "95"},
		{"2", "bob", "72"},
		{"3", "carol", "88"},
	}
	for r, row := range rows {
		for c, val := range row {
			set(t, ds, "Sheet1", sheet.Addr(r, c).String(), val)
		}
	}
	binding, err := ds.CreateTableFromRange("Sheet1", "A1:C4", "grades", ExportOptions{PrimaryKey: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	if binding == nil || binding.Table != "grades" {
		t.Fatalf("binding = %+v", binding)
	}
	// The table exists in the database with inferred schema.
	tbl, err := ds.DB().Table("grades")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 3 || !tbl.Columns[0].PrimaryKey {
		t.Errorf("schema = %+v", tbl.Columns)
	}
	res, err := ds.Query("SELECT COUNT(*), AVG(score) FROM grades")
	if err != nil || res.Rows[0][0].Num != 3 {
		t.Fatalf("table content = %v, %v", res, err)
	}
	// The sheet region is now a DBTABLE binding showing the same data.
	if got := get(t, ds, "Sheet1", "A1"); got.Str != "id" {
		t.Errorf("header cell = %v", got)
	}
	if got := get(t, ds, "Sheet1", "B2"); got.Str != "alice" {
		t.Errorf("bound cell = %v", got)
	}
	// Import the same table elsewhere via a DBTABLE formula.
	set(t, ds, "Sheet1", "F1", `=DBTABLE("grades")`)
	if got := get(t, ds, "Sheet1", "F1"); got.Str != "id" {
		t.Errorf("imported header = %v", got)
	}
	if got := get(t, ds, "Sheet1", "G3"); got.Str != "bob" {
		t.Errorf("imported cell = %v", got)
	}
	// Sheets are not auto-created: writing to an unknown sheet fails.
	if _, err := ds.SetCell("Sheet2-unused", "A1", "x"); err == nil {
		t.Error("writing to an unknown sheet should fail")
	}
}

// TestFeature1DBSQLQuerying reproduces the paper's Figure 2a demonstration:
// a DBSQL cell formula whose SQL references cells via RANGEVALUE and whose
// result spills into a range of cells, computed in a single pass.
func TestFeature1DBSQLQuerying(t *testing.T) {
	ds := newDS(t)
	if _, err := ds.QueryScript(`
		CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, year INT);
		CREATE TABLE movies2actors (movieid INT, actorid INT);
		CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
		INSERT INTO movies VALUES (1, 'Casablanca', 1942), (2, 'Key Largo', 1948), (3, 'Sabrina', 1954);
		INSERT INTO movies2actors VALUES (1, 10), (2, 10), (2, 11), (3, 12);
		INSERT INTO actors VALUES (10, 'Bogart'), (11, 'Bacall'), (12, 'Hepburn');
	`); err != nil {
		t.Fatal(err)
	}
	// B1 holds the actor id the user is interested in; B2 a year filter.
	set(t, ds, "Sheet1", "B1", "10")
	set(t, ds, "Sheet1", "B2", "1940")
	set(t, ds, "Sheet1", "B3", `=DBSQL("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE(B2) ORDER BY year")`)
	// The result spans B3:C5 (header + two rows).
	if got := get(t, ds, "Sheet1", "B3"); got.Str != "title" {
		t.Errorf("result header = %v", got)
	}
	if got := get(t, ds, "Sheet1", "B4"); got.Str != "Casablanca" {
		t.Errorf("result row 1 = %v", got)
	}
	if got := get(t, ds, "Sheet1", "B5"); got.Str != "Key Largo" {
		t.Errorf("result row 2 = %v", got)
	}
	if got := get(t, ds, "Sheet1", "C5"); got.Num != 1948 {
		t.Errorf("result year = %v", got)
	}
	// Changing the referenced cell re-runs the query and refreshes the
	// spilled range.
	set(t, ds, "Sheet1", "B1", "12")
	ds.Wait()
	if got := get(t, ds, "Sheet1", "B4"); got.Str != "Sabrina" {
		t.Errorf("result after RANGEVALUE change = %v", got)
	}
	// The old second row is cleared (only one movie matches now).
	if got := get(t, ds, "Sheet1", "B5"); !got.IsEmpty() {
		t.Errorf("stale result row should be cleared: %v", got)
	}
	// DBSQL results are read-only.
	if _, err := ds.SetCell("Sheet1", "B4", "Vertigo"); err == nil {
		t.Error("editing a DBSQL result cell should fail")
	}
}

// TestFeature3TwoWaySync reproduces the paper's Figure 2c demonstration:
// edits on a DBTABLE region update the database, and database updates refresh
// both the bound region and dependent DBSQL results.
func TestFeature3TwoWaySync(t *testing.T) {
	ds := newDS(t)
	if _, err := ds.QueryScript(`
		CREATE TABLE inventory (sku INT PRIMARY KEY, item TEXT, qty INT);
		INSERT INTO inventory VALUES (1, 'bolt', 100), (2, 'nut', 200), (3, 'washer', 50);
	`); err != nil {
		t.Fatal(err)
	}
	// Bind the table at A3 (Figure 2c shows the table in A3:B5).
	if _, err := ds.ImportTable("Sheet1", "A3", "inventory"); err != nil {
		t.Fatal(err)
	}
	// A dependent DBSQL summary below it (A10 in the figure).
	set(t, ds, "Sheet1", "A10", `=DBSQL("SELECT SUM(qty) AS total FROM inventory")`)
	if got := get(t, ds, "Sheet1", "A11"); got.Num != 350 {
		t.Fatalf("initial summary = %v", got)
	}
	// An ordinary spreadsheet formula over the bound cells also works.
	set(t, ds, "Sheet1", "E1", "=SUM(C4:C6)")
	if got := get(t, ds, "Sheet1", "E1"); got.Num != 350 {
		t.Fatalf("sheet formula over bound cells = %v", got)
	}

	// 1. Front-end edit: change qty of 'bolt' from 100 to 150 on the sheet.
	//    Layout: header at row 3 (A3:C3), first data row at row 4; qty is
	//    column C.
	set(t, ds, "Sheet1", "C4", "150")
	ds.Wait()
	res, err := ds.Query("SELECT qty FROM inventory WHERE sku = 1")
	if err != nil || res.Rows[0][0].Num != 150 {
		t.Fatalf("database not updated by sheet edit: %v %v", res, err)
	}
	if got := get(t, ds, "Sheet1", "A11"); got.Num != 400 {
		t.Errorf("DBSQL summary not refreshed after sheet edit: %v", got)
	}
	if got := get(t, ds, "Sheet1", "E1"); got.Num != 400 {
		t.Errorf("sheet formula not refreshed after sheet edit: %v", got)
	}

	// 2. Back-end change: a SQL UPDATE refreshes the bound cells.
	if _, err := ds.Query("UPDATE inventory SET qty = 500 WHERE sku = 3"); err != nil {
		t.Fatal(err)
	}
	ds.Wait()
	if got := get(t, ds, "Sheet1", "C6"); got.Num != 500 {
		t.Errorf("bound cell not refreshed by SQL update: %v", got)
	}
	if got := get(t, ds, "Sheet1", "A11"); got.Num != 850 {
		t.Errorf("summary not refreshed by SQL update: %v", got)
	}

	// 3. Back-end insert appends a row to the bound region.
	if _, err := ds.Query("INSERT INTO inventory VALUES (4, 'screw', 10)"); err != nil {
		t.Fatal(err)
	}
	ds.Wait()
	if got := get(t, ds, "Sheet1", "B7"); got.Str != "screw" {
		t.Errorf("inserted row not materialised: %v", got)
	}
	if got := get(t, ds, "Sheet1", "A11"); got.Num != 860 {
		t.Errorf("summary after insert = %v", got)
	}

	// 4. Editing the header row is rejected; editing a key column keeps the
	//    key index consistent.
	if _, err := ds.SetCell("Sheet1", "A3", "newheader"); err == nil {
		t.Error("editing a DBTABLE header should fail")
	}
	set(t, ds, "Sheet1", "A4", "99")
	res, err = ds.Query("SELECT item FROM inventory WHERE sku = 99")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str != "bolt" {
		t.Errorf("key edit not applied: %v %v", res, err)
	}
	// 5. Schema change refreshes the binding with the new column.
	if _, err := ds.Query("ALTER TABLE inventory ADD COLUMN price NUMERIC DEFAULT 1"); err != nil {
		t.Fatal(err)
	}
	ds.Wait()
	if got := get(t, ds, "Sheet1", "D3"); got.Str != "price" {
		t.Errorf("new column header not materialised: %v", got)
	}
	if got := get(t, ds, "Sheet1", "D5"); got.Num != 1 {
		t.Errorf("new column default not materialised: %v", got)
	}
}

func TestWindowedBindingAndPanning(t *testing.T) {
	ds := New(Options{WindowRows: 20, WindowCols: 5, MaterializeAllLimit: 100})
	if _, err := ds.Query("CREATE TABLE big (id INT PRIMARY KEY, val NUMERIC)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := ds.DB().Insert("big", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := ds.ImportTable("Sheet1", "A1", "big")
	if err != nil {
		t.Fatal(err)
	}
	if !b.WindowOnly {
		t.Fatal("a 1000-row table should be window-materialised")
	}
	// Only around one window of rows should be materialised, not 1000.
	sh, _ := ds.Book().Sheet("Sheet1")
	if n := sh.CellCount(); n > 2*20*2+10 {
		t.Errorf("materialised %d cells for a 20-row window", n)
	}
	// The visible window shows the first rows.
	if got := get(t, ds, "Sheet1", "A2"); got.Num != 0 {
		t.Errorf("first data cell = %v", got)
	}
	// Pan to the middle of the table; the window region fills from the
	// database on demand.
	if err := ds.ScrollTo("Sheet1", "A500"); err != nil {
		t.Fatal(err)
	}
	if got := get(t, ds, "Sheet1", "A501"); got.Num != 499 {
		t.Errorf("cell after panning = %v (want id 499)", got)
	}
	vals, err := ds.VisibleValues("Sheet1")
	if err != nil || len(vals) != 20 {
		t.Fatalf("VisibleValues = %d rows, %v", len(vals), err)
	}
	// The window's top row (sheet row 500) shows display position 498,
	// whose id is 498 and value 4980.
	if vals[0][1].Num != 4980 {
		t.Errorf("visible window content = %v", vals[0])
	}
	if ds.Windows().PanCount() == 0 {
		t.Error("pan count should be recorded")
	}
	if err := ds.ScrollTo("NoSheet", "A1"); err == nil {
		t.Error("scrolling an unknown sheet should fail")
	}
}

func TestBlockedCellStoreOption(t *testing.T) {
	ds := New(Options{UseBlockedCellStore: true})
	for i := 0; i < 200; i++ {
		set(t, ds, "Sheet1", sheet.Addr(i, 0).String(), fmt.Sprintf("%d", i))
	}
	set(t, ds, "Sheet1", "B1", "=SUM(A1:A200)")
	if got := get(t, ds, "Sheet1", "B1"); got.Num != 19900 {
		t.Errorf("sum over blocked store = %v", got)
	}
}

func TestCreateTableFromRangeErrorsAndKeepRegion(t *testing.T) {
	ds := newDS(t)
	if _, err := ds.CreateTableFromRange("Sheet1", "A1:B2", "empty", ExportOptions{}); err == nil {
		t.Error("exporting an empty range should fail")
	}
	set(t, ds, "Sheet1", "A1", "x")
	set(t, ds, "Sheet1", "A2", "1")
	if _, err := ds.CreateTableFromRange("Sheet1", "bad", "t", ExportOptions{}); err == nil {
		t.Error("bad range should fail")
	}
	if _, err := ds.CreateTableFromRange("NoSheet", "A1:A2", "t", ExportOptions{}); err == nil {
		t.Error("unknown sheet should fail")
	}
	b, err := ds.CreateTableFromRange("Sheet1", "A1:A2", "kept", ExportOptions{KeepRegion: true})
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Error("KeepRegion should not create a binding")
	}
	// Original cell is still plain user content.
	if got := get(t, ds, "Sheet1", "A1"); got.Str != "x" {
		t.Errorf("KeepRegion original cell = %v", got)
	}
	// Duplicate table name fails.
	if _, err := ds.CreateTableFromRange("Sheet1", "A1:A2", "kept", ExportOptions{KeepRegion: true}); err == nil {
		t.Error("duplicate table export should fail")
	}
	// DBTABLE formula for a missing table fails.
	if _, err := ds.SetCell("Sheet1", "H1", `=DBTABLE("missing")`); err == nil {
		t.Error("DBTABLE of missing table should fail")
	}
	if _, err := ds.SetCell("Sheet1", "H1", `=DBSQL("SELECT * FROM missing")`); err == nil {
		t.Error("DBSQL of missing table should fail")
	}
	if _, err := ds.SetCell("Sheet1", "H1", `=DBSQL()`); err == nil {
		t.Error("DBSQL without arguments should fail")
	}
}

func TestMotivatingExamples(t *testing.T) {
	// The three §1 motivating operations, expressed the DataSpread way.
	ds := newDS(t)
	// Gradebook sheet: 100 students × 5 assignment scores with header.
	set(t, ds, "Sheet1", "A1", "student")
	for c := 0; c < 5; c++ {
		set(t, ds, "Sheet1", sheet.Addr(0, c+1).String(), fmt.Sprintf("a%d", c+1))
	}
	for r := 0; r < 100; r++ {
		set(t, ds, "Sheet1", sheet.Addr(r+1, 0).String(), fmt.Sprintf("s%03d", r))
		for c := 0; c < 5; c++ {
			score := (r*7+c*13)%61 + 40 // 40..100
			set(t, ds, "Sheet1", sheet.Addr(r+1, c+1).String(), fmt.Sprintf("%d", score))
		}
	}
	// Demographics on another sheet.
	ds.AddSheet("Demo")
	set(t, ds, "Demo", "A1", "student")
	set(t, ds, "Demo", "B1", "grp")
	groups := []string{"ug", "ms", "phd"}
	for r := 0; r < 100; r++ {
		set(t, ds, "Demo", sheet.Addr(r+1, 0).String(), fmt.Sprintf("s%03d", r))
		set(t, ds, "Demo", sheet.Addr(r+1, 1).String(), groups[r%3])
	}
	// Op 1: students with > 90 in at least one assignment (no copy-paste).
	res, err := ds.Query(`SELECT student FROM RANGETABLE(A1:F101) WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) == 100 {
		t.Errorf("selection returned %d rows", len(res.Rows))
	}
	// Op 2: average first-assignment score by demographic group (join of
	// the two sheets).
	res, err = ds.Query(`SELECT grp, AVG(a1) FROM RANGETABLE(A1:F101) NATURAL JOIN RANGETABLE(Demo!A1:B101) GROUP BY grp ORDER BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("join+group rows = %d", len(res.Rows))
	}
	// Op 3: continuously appended external data via a bound table.
	if _, err := ds.Query("CREATE TABLE actions (id INT PRIMARY KEY, student TEXT, action TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ImportTable("Sheet1", "H1", "actions"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO actions VALUES (%d, 's%03d', 'submit')", i+1, i)); err != nil {
			t.Fatal(err)
		}
	}
	ds.Wait()
	if got := get(t, ds, "Sheet1", "I6"); got.Str != "s004" {
		t.Errorf("appended external data not visible: %v", got)
	}
}

func TestFormulaOnTopOfDBSQL(t *testing.T) {
	// A regular spreadsheet formula can consume DBSQL results, mixing the
	// two computation models (paper §2.2(a)).
	ds := newDS(t)
	if _, err := ds.QueryScript(`
		CREATE TABLE sales (id INT PRIMARY KEY, amount NUMERIC);
		INSERT INTO sales VALUES (1, 10), (2, 20), (3, 30);
	`); err != nil {
		t.Fatal(err)
	}
	set(t, ds, "Sheet1", "A1", `=DBSQL("SELECT amount FROM sales ORDER BY id")`)
	set(t, ds, "Sheet1", "C1", "=SUM(A2:A4)*2")
	if got := get(t, ds, "Sheet1", "C1"); got.Num != 120 {
		t.Fatalf("formula over DBSQL result = %v", got)
	}
	// A database change flows: DBSQL refresh -> sheet cells -> formula.
	if _, err := ds.Query("UPDATE sales SET amount = 100 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	ds.Wait()
	if got := get(t, ds, "Sheet1", "C1"); got.Num != 300 {
		t.Errorf("formula after DB change = %v", got)
	}
}
