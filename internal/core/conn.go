// Connections: independent SQL sessions over one DataSpread instance. The
// instance's own Query/QueryScript run on a single built-in session guarded
// by cmdMu; a Conn gives an embedder its own session — its own transaction
// state, concurrent with other connections — while mutating statements still
// serialize through cmdMu so the WAL order matches the apply order.

package core

import (
	"context"
	"fmt"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/txn"
)

// Conn is one SQL session over the workbook's embedded database. Conns are
// cheap; create one per goroutine — a single Conn is not safe for concurrent
// use (it carries explicit-transaction state), but any number of Conns may
// run statements concurrently.
type Conn struct {
	ds   *DataSpread
	sess *sqlexec.Session
	// pending buffers this connection's in-transaction mutating statements
	// until COMMIT logs them as one WAL record (guarded by ds.cmdMu).
	pending []txn.Op
}

// NewConn opens an independent SQL session. Positional constructs
// (RANGEVALUE/RANGETABLE) resolve against this workbook's sheets.
func (ds *DataSpread) NewConn() *Conn {
	return &Conn{ds: ds, sess: ds.db.NewSession(&sheetAccessor{ds: ds})}
}

// Prepare parses and analyzes a statement through the shared plan cache.
// The returned statement is immutable and may be executed concurrently from
// any number of connections with different bindings.
func (ds *DataSpread) Prepare(sql string) (*sqlexec.Prepared, error) { return ds.db.Prepare(sql) }

// Prepare parses and analyzes a statement through the shared plan cache.
func (c *Conn) Prepare(sql string) (*sqlexec.Prepared, error) { return c.ds.db.Prepare(sql) }

// QueryContext executes one statement with the given placeholder bindings,
// materialising the result.
func (c *Conn) QueryContext(ctx context.Context, sql string, args ...sheet.Value) (*sqlexec.Result, error) {
	p, err := c.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return c.ExecutePrepared(ctx, p, args...)
}

// ExecutePrepared executes a prepared statement with the given placeholder
// bindings. Read-only statements run without the command mutex (the engine
// guards its storage with a reader/writer lock); mutating statements
// serialize with the instance's other writers and are WAL-logged with their
// bindings — inside an explicit transaction they buffer and reach the WAL
// as one record at COMMIT (nothing is logged on ROLLBACK).
func (c *Conn) ExecutePrepared(ctx context.Context, p *sqlexec.Prepared, args ...sheet.Value) (*sqlexec.Result, error) {
	if !sqlparser.Mutates(p.Statement()) {
		return c.sess.ExecutePreparedContext(ctx, p, args...)
	}
	c.ds.cmdMu.Lock()
	defer c.ds.cmdMu.Unlock()
	if err := c.ds.checkWritable(); err != nil {
		return nil, err
	}
	res, err := c.sess.ExecutePreparedContext(ctx, p, args...)
	if err == nil {
		if lerr := c.ds.logExecuted(p.Statement(), c.sess, &c.pending, p.SQL, args); lerr != nil {
			return res, fmt.Errorf("core: statement applied but not logged: %w", lerr)
		}
	}
	return res, c.ds.notePoison(err)
}

// StreamPrepared executes a prepared SELECT as a streaming row iterator: no
// result materialisation for single-source statements, cancellation through
// ctx, early scan exit on LIMIT or Close.
func (c *Conn) StreamPrepared(ctx context.Context, p *sqlexec.Prepared, args ...sheet.Value) (*sqlexec.Rows, error) {
	if sqlparser.Mutates(p.Statement()) {
		return nil, fmt.Errorf("core: cannot stream a mutating statement; use ExecutePrepared: %w", dberr.ErrUnsupported)
	}
	return c.sess.StreamPrepared(ctx, p, args...)
}

// QueryStream prepares and streams a SELECT statement.
func (c *Conn) QueryStream(ctx context.Context, sql string, args ...sheet.Value) (*sqlexec.Rows, error) {
	p, err := c.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return c.StreamPrepared(ctx, p, args...)
}

// InTransaction reports whether this connection has an explicit transaction
// open.
func (c *Conn) InTransaction() bool { return c.sess.InTransaction() }
