package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

// simulateCrash abandons the instance the way a killed process would: the
// single-writer lock is released (the OS drops flocks when a process dies)
// but nothing is flushed or closed cleanly.
func simulateCrash(t *testing.T, ds *DataSpread) {
	t.Helper()
	if ds.unlock != nil {
		if err := ds.unlock(); err != nil {
			t.Fatal(err)
		}
		ds.unlock = nil
	}
}

func mustAddr(t *testing.T, s string) sheet.Address {
	t.Helper()
	a, err := sheet.ParseAddress(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func openDurable(t *testing.T, path string) *DataSpread {
	t.Helper()
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rerr := range ds.RecoveryErrors() {
		t.Errorf("recovery error: %v", rerr)
	}
	return ds
}

func mustSet(t *testing.T, ds *DataSpread, sheetName, addr, input string) {
	t.Helper()
	wait, err := ds.SetCell(sheetName, addr, input)
	if err != nil {
		t.Fatalf("SetCell(%s,%s,%q): %v", sheetName, addr, input, err)
	}
	wait()
}

func cellString(t *testing.T, ds *DataSpread, sheetName, addr string) string {
	t.Helper()
	v, err := ds.Get(sheetName, addr)
	if err != nil {
		t.Fatal(err)
	}
	return v.String()
}

// TestKillAndReopenRecoversCommittedWrites is the headline crash test: cell
// edits and SQL are committed to the WAL, the process "dies" without a
// checkpoint or clean close, and reopening the file replays everything back.
func TestKillAndReopenRecoversCommittedWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds := openDurable(t, path)
	mustSet(t, ds, "Sheet1", "A1", "10")
	mustSet(t, ds, "Sheet1", "A2", "32")
	mustSet(t, ds, "Sheet1", "A3", "=A1+A2")
	mustSet(t, ds, "Sheet1", "B1", "hello")
	if _, err := ds.QueryScript(`
		CREATE TABLE inv (sku INT PRIMARY KEY, qty NUMERIC);
		INSERT INTO inv VALUES (1, 100);
		INSERT INTO inv VALUES (2, 250);
	`); err != nil {
		t.Fatal(err)
	}
	ds.AddSheet("Extra")
	mustSet(t, ds, "Extra", "C3", "on another sheet")
	ds.Wait()
	// Simulated kill: no Checkpoint, no Close. Commits were synced one by
	// one, so everything must already be on disk.
	simulateCrash(t, ds)

	re := openDurable(t, path)
	defer re.Close()
	if got := cellString(t, re, "Sheet1", "A3"); got != "42" {
		t.Errorf("recovered formula A3 = %q, want 42", got)
	}
	if got := cellString(t, re, "Sheet1", "B1"); got != "hello" {
		t.Errorf("recovered B1 = %q", got)
	}
	if got := cellString(t, re, "Extra", "C3"); got != "on another sheet" {
		t.Errorf("recovered Extra!C3 = %q", got)
	}
	res, err := re.Query("SELECT SUM(qty) FROM inv")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != "350" {
		t.Errorf("recovered SUM(qty) = %q, want 350", got)
	}
	// The recovered formula still recomputes.
	mustSet(t, re, "Sheet1", "A1", "100")
	if got := cellString(t, re, "Sheet1", "A3"); got != "132" {
		t.Errorf("A3 after post-recovery edit = %q, want 132", got)
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds := openDurable(t, path)
	mustSet(t, ds, "Sheet1", "A1", "3.5")
	// A string value that looks numeric: only the typed snapshot codec can
	// preserve its kind (replaying it as raw input would re-type it).
	ds.Engine().SetValue("Sheet1", mustAddr(t, "A2"), sheet.String_("007"))()
	mustSet(t, ds, "Sheet1", "A3", "=A1*2")
	if _, err := ds.QueryScript(`
		CREATE TABLE pets (id INT PRIMARY KEY, name TEXT);
		INSERT INTO pets VALUES (1, 'rex');
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ImportTable("Sheet1", "E1", "pets"); err != nil {
		t.Fatal(err)
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(WALPath(path)); err != nil || info.Size() != 0 {
		t.Fatalf("WAL after checkpoint: %v, size %d", err, info.Size())
	}
	// Post-checkpoint work lands in the WAL tail.
	mustSet(t, ds, "Sheet1", "A4", "after")
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	re := openDurable(t, path)
	defer re.Close()
	if got := cellString(t, re, "Sheet1", "A3"); got != "7" {
		t.Errorf("A3 = %q, want 7", got)
	}
	if v, _ := re.Get("Sheet1", "A2"); v.Kind != sheet.KindString || v.Str != "007" {
		t.Errorf("A2 = %v %q, want the string 007 preserved", v.Kind, v.String())
	}
	if got := cellString(t, re, "Sheet1", "A4"); got != "after" {
		t.Errorf("A4 = %q, want post-checkpoint edit recovered", got)
	}
	// The DBTABLE binding re-materialises from the recovered table.
	if got := cellString(t, re, "Sheet1", "F2"); got != "rex" {
		t.Errorf("bound cell F2 = %q, want rex", got)
	}
	if n := len(re.Interface().Bindings()); n != 1 {
		t.Errorf("recovered %d bindings, want 1", n)
	}
}

func TestReopenTolleratesTornWALTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds := openDurable(t, path)
	mustSet(t, ds, "Sheet1", "A1", "safe")
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a torn frame at the tail.
	f, err := os.OpenFile(WALPath(path), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x07, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openDurable(t, path)
	defer re.Close()
	if got := cellString(t, re, "Sheet1", "A1"); got != "safe" {
		t.Errorf("A1 = %q after torn-tail recovery", got)
	}
	// And the torn bytes were truncated: a fresh reopen sees a clean log.
	mustSet(t, re, "Sheet1", "A2", "more")
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := openDurable(t, path)
	defer re2.Close()
	if got := cellString(t, re2, "Sheet1", "A2"); got != "more" {
		t.Errorf("A2 = %q after second recovery", got)
	}
}

func TestDurableExportImportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds := openDurable(t, path)
	mustSet(t, ds, "Sheet1", "A1", "name")
	mustSet(t, ds, "Sheet1", "B1", "score")
	mustSet(t, ds, "Sheet1", "A2", "ada")
	mustSet(t, ds, "Sheet1", "B2", "99")
	if _, err := ds.CreateTableFromRange("Sheet1", "A1:B2", "scores", ExportOptions{PrimaryKey: []string{"name"}}); err != nil {
		t.Fatal(err)
	}
	ds.Wait()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, path)
	defer re.Close()
	res, err := re.Query("SELECT score FROM scores WHERE name = 'ada'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "99" {
		t.Fatalf("recovered scores table rows = %v", res.Rows)
	}
	if n := len(re.Interface().Bindings()); n != 1 {
		t.Errorf("recovered %d bindings, want 1", n)
	}
}

func TestCheckpointRequiresDurableInstance(t *testing.T) {
	ds := New(Options{})
	if err := ds.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on an in-memory instance should fail")
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("Close on in-memory instance: %v", err)
	}
}

// TestCheckpointCrashBeforeTruncateDoesNotDoubleApply simulates a crash in
// the window between the root flip and the WAL compaction: the WAL still
// holds commands the checkpoint covers, and the LSN watermark must keep
// replay from re-running them (INSERTs are not idempotent).
func TestCheckpointCrashBeforeTruncateDoesNotDoubleApply(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds := openDurable(t, path)
	if _, err := ds.QueryScript(`
		CREATE TABLE t (x INT);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	// The checkpoint's capture, write and flip stages — everything up to
	// but excluding the adopt stage that compacts the WAL.
	ds.Wait()
	st, err := ds.ckptCapture()
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.ckptWrite(st); err != nil {
		t.Fatal(err)
	}
	if err := ds.ckptFlip(st); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, path)
	defer re.Close()
	res, err := re.Query("SELECT COUNT(x) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != "1" {
		t.Errorf("COUNT(x) after crash-window recovery = %s, want 1 (no double apply)", got)
	}
	// Post-recovery commits get LSNs above the watermark, so a further
	// reopen must not skip them.
	if _, err := re.Query("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := openDurable(t, path)
	defer re2.Close()
	res, err = re2.Query("SELECT COUNT(x) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != "2" {
		t.Errorf("COUNT(x) after post-watermark commit = %s, want 2", got)
	}
}

// TestPartiallyFailingScriptIsDurable: each script statement is its own
// transaction, so a script that fails midway has still committed its prefix;
// that prefix must survive a reopen.
func TestPartiallyFailingScriptIsDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds := openDurable(t, path)
	// The script parses whole, so the failure must be at execution time:
	// the third statement references a missing table after the first two
	// have already committed.
	if _, err := ds.QueryScript(`
		CREATE TABLE t (x INT);
		INSERT INTO t VALUES (7);
		INSERT INTO missing VALUES (1);
	`); err == nil {
		t.Fatal("expected the statement on a missing table to error")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Replay re-runs the same script and hits the same deterministic error;
	// that is reported, not fatal.
	if len(re.RecoveryErrors()) == 0 {
		t.Error("expected the failing script replay to be reported")
	}
	res, err := re.Query("SELECT x FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "7" {
		t.Errorf("recovered rows = %v, want the committed prefix [7]", res.Rows)
	}
}
