// Package core is DataSpread's unification layer: the public API that ties
// the spreadsheet front-end (sheets, formulas, windows) to the embedded
// relational engine (catalog, storage, SQL) through the interface manager and
// the compute engine — the architecture of the paper's Figure 1.
//
// A DataSpread instance owns one workbook and one database. Users interact
// with it exactly as the paper describes:
//
//   - ordinary spreadsheet editing (SetCell with literals or formulas),
//   - DBSQL("...") cell formulas that run arbitrary SQL — possibly
//     referencing sheet data via RANGEVALUE/RANGETABLE — and spill their
//     result into the sheet,
//   - DBTABLE("table") cell formulas that two-way bind a region to a
//     relational table,
//   - exporting a sheet range as a new relational table (Figure 2b),
//   - direct SQL over everything (Query), and
//   - window operations (ScrollTo) that drive fetch-on-demand and
//     visible-first computation.
//
// dslint:errdomain
// dslint:vfsonly
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/compute"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/interfacemgr"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/cellstore"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/vfs"
	"github.com/dataspread/dataspread/internal/txn"
	"github.com/dataspread/dataspread/internal/window"
)

// Options configure a DataSpread instance.
type Options struct {
	// Layout selects the relational storage layout (default hybrid).
	Layout sqlexec.Layout
	// GroupSize is the attribute-group size for hybrid tables.
	GroupSize int
	// WindowRows/WindowCols size the visible pane.
	WindowRows int
	WindowCols int
	// UseBlockedCellStore stores ad-hoc sheet cells through the interface
	// storage manager (proximity-blocked, 2-D indexed) instead of a plain
	// map.
	UseBlockedCellStore bool
	// MaterializeAllLimit overrides the row count above which DBTABLE
	// bindings materialise only the visible window.
	MaterializeAllLimit int
	// Workers bounds the relational engine's worker pool for morsel-driven
	// parallel scans, aggregation and joins (0 = GOMAXPROCS, 1 = serial).
	Workers int

	// Durability options, honoured by OpenFile only.
	//
	// Mmap serves the workbook file's read path from a shared memory
	// mapping (pager.OpenMmapStore) instead of pread; platforms without
	// mmap support fall back to the plain FileStore transparently.
	Mmap bool
	// BufferPoolPages overrides the relational buffer pool capacity in
	// pages (nil = default; 0 disables caching — benchmarks use it to
	// expose backend block counts).
	BufferPoolPages *int
	// CheckpointWALBytes is the WAL size that nudges the background
	// checkpointer. 0 selects the default (4 MiB); a negative value
	// disables background checkpointing (explicit Checkpoint still works).
	CheckpointWALBytes int64
	// FS is the filesystem every durable file (page heap, WAL, lock) is
	// opened through. Nil selects the real OS filesystem; fault-injection
	// tests substitute a vfs.FaultFS.
	FS vfs.FS
}

// DataSpread is the unified spreadsheet–database system.
type DataSpread struct {
	book    *sheet.Book
	db      *sqlexec.Database
	engine  *compute.Engine
	windows *window.Manager
	iface   *interfacemgr.Manager
	session *sqlexec.Session
	// pending buffers the default session's in-transaction mutating
	// statements until COMMIT logs them as one WAL record (guarded by
	// cmdMu; see logExecuted).
	pending []txn.Op

	// RANGETABLE scan cache (accessor.go), validated by sheet versions.
	rtMu    sync.Mutex
	rtCache map[string]*rangeTableEntry

	// Durability state (durable.go, checkpointer.go). Nil/zero for
	// in-memory instances. cmdMu serialises each mutating command with its
	// WAL append so the log order always matches the apply order, and so a
	// checkpoint capture cannot interleave with a command that would then
	// be in neither the checkpoint nor the surviving WAL tail.
	cmdMu        sync.Mutex
	backend      pager.Backend
	wal          *txn.Manager
	unlock       func() error // releases the single-writer workbook lock
	replaying    bool
	recoveryErrs []error
	replayedOps  int // commands re-executed by the last OpenFile

	// Checkpoint state. root is the current durable root (guarded by
	// ckptMu together with the whole checkpoint path); the background
	// checkpointer drains on Close.
	ckptMu        sync.Mutex
	root          rootInfo
	ckptThreshold int64
	ckptTrigger   chan struct{}
	ckptStop      chan struct{}
	ckptDone      chan struct{}
	ckptErrMu     sync.Mutex
	ckptErr       error // last background checkpoint failure
	// ckptRetryBase is the first backoff delay after a transient background
	// checkpoint failure (tests shrink it). Zero selects the default.
	ckptRetryBase time.Duration

	// poisonErr, once set, degrades the workbook to read-only: every later
	// mutating command fails with dberr.ErrReadOnly while reads keep being
	// served from the committed in-memory state. Set on the first I/O
	// failure that leaves durability in doubt — a failed WAL append, a
	// storage error during command execution, or a commit-uncertain
	// checkpoint root flip. Cleared only by reopening the workbook.
	poisonMu  sync.Mutex
	poisonErr error
}

// New creates a DataSpread instance with a single sheet named "Sheet1".
func New(opts Options) *DataSpread { return newDataSpread(opts, nil) }

// newDataSpread builds an instance whose relational storage sits on the
// given page backend (nil = fresh in-memory store). OpenFile passes the
// workbook file's backend so table pages live in the file itself.
func newDataSpread(opts Options, backend pager.Backend) *DataSpread {
	var book *sheet.Book
	if opts.UseBlockedCellStore {
		store := pager.NewStore()
		book = sheet.NewBookWithStore(func() sheet.CellStore {
			return cellstore.NewBlockedStore(pager.NewBufferPool(store, 1024))
		})
	} else {
		book = sheet.NewBook()
	}
	db := sqlexec.NewDatabase(sqlexec.Config{
		Layout:          opts.Layout,
		GroupSize:       opts.GroupSize,
		BufferPoolPages: opts.BufferPoolPages,
		Backend:         backend,
		Workers:         opts.Workers,
	})
	engine := compute.New(book)
	windows := window.NewManager(opts.WindowRows, opts.WindowCols)
	engine.SetVisibleProvider(windows.Visible)
	iface := interfacemgr.New(db, book, engine, windows)
	if opts.MaterializeAllLimit > 0 {
		iface.SetMaterializeAllLimit(opts.MaterializeAllLimit)
	}
	ds := &DataSpread{
		book:    book,
		db:      db,
		engine:  engine,
		windows: windows,
		iface:   iface,
	}
	ds.session = db.NewSession(&sheetAccessor{ds: ds})
	iface.SetQueryRunner(func(sql string) (*sqlexec.Result, error) { return ds.session.Query(sql) })
	ds.book.AddSheet("Sheet1") // before any WAL exists; never logged
	return ds
}

// Book returns the workbook.
func (ds *DataSpread) Book() *sheet.Book { return ds.book }

// DB returns the embedded relational engine.
func (ds *DataSpread) DB() *sqlexec.Database { return ds.db }

// Engine returns the compute engine.
func (ds *DataSpread) Engine() *compute.Engine { return ds.engine }

// Windows returns the window manager.
func (ds *DataSpread) Windows() *window.Manager { return ds.windows }

// Interface returns the interface manager.
func (ds *DataSpread) Interface() *interfacemgr.Manager { return ds.iface }

// AddSheet creates (or returns) a sheet with the given name. The error is
// non-nil only when the creation could not be made durable: the sheet exists
// in memory but edits on it would not survive a restart.
func (ds *DataSpread) AddSheet(name string) (*sheet.Sheet, error) {
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	if err := ds.checkWritable(); err != nil {
		return nil, err
	}
	_, known := ds.book.Sheet(name)
	sh := ds.book.AddSheet(name)
	if !known {
		if lerr := ds.logCommand(txn.Op{Kind: txn.OpAddSheet, Detail: name, Args: []string{name}}); lerr != nil {
			return sh, fmt.Errorf("core: sheet created but not logged: %w", lerr)
		}
	}
	return sh, nil
}

// sheetOf resolves a sheet by name, case-insensitively.
func (ds *DataSpread) sheetOf(name string) (*sheet.Sheet, string, error) {
	for _, n := range ds.book.SheetNames() {
		if strings.EqualFold(n, name) {
			sh, _ := ds.book.Sheet(n)
			return sh, n, nil
		}
	}
	return nil, "", fmt.Errorf("core: unknown sheet %q: %w", name, dberr.ErrSheetNotFound)
}

// --- cell-level interaction ---

// SetCell enters user input into a cell, exactly as typing into the grid:
//   - input beginning with "=" is a formula; DBSQL/DBTABLE formulas create
//     bindings through the interface manager, anything else goes to the
//     compute engine;
//   - other input is parsed as a literal (number, boolean, text); if the
//     target cell is bound to a relational table the edit is pushed to the
//     database (two-way sync), otherwise it is ordinary sheet content.
//
// The returned wait function blocks until asynchronous background
// recomputation triggered by the edit has finished; callers that only care
// about the visible window may ignore it.
func (ds *DataSpread) SetCell(sheetName, addr, input string) (wait func(), err error) {
	a, err := sheet.ParseAddress(addr)
	if err != nil {
		return nil, err
	}
	return ds.SetCellAt(sheetName, a, input)
}

// SetCellAt is SetCell with a parsed address.
func (ds *DataSpread) SetCellAt(sheetName string, a sheet.Address, input string) (wait func(), err error) {
	_, canonical, err := ds.sheetOf(sheetName)
	if err != nil {
		return nil, err
	}
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	if err := ds.checkWritable(); err != nil {
		return nil, err
	}
	wait, err = ds.setCellDispatch(canonical, a, input)
	if err != nil {
		return wait, ds.notePoison(err)
	}
	if lerr := ds.logCommand(txn.Op{
		Kind:   txn.OpCellSet,
		Detail: canonical + "!" + a.String(),
		Args:   []string{canonical, a.String(), input},
	}); lerr != nil {
		return wait, fmt.Errorf("core: cell set applied but not logged: %w", lerr)
	}
	return wait, nil
}

// setCellDispatch routes raw cell input exactly as SetCell documents, without
// WAL logging (replay re-enters here via SetCellAt with logging suppressed).
func (ds *DataSpread) setCellDispatch(canonical string, a sheet.Address, input string) (wait func(), err error) {
	noop := func() {}
	trimmed := strings.TrimSpace(input)
	if strings.HasPrefix(trimmed, "=") {
		if name, ok := formulaIsDB(trimmed); ok {
			return noop, ds.setDBFormula(canonical, a, name, trimmed)
		}
		return ds.engine.SetFormula(canonical, a, trimmed)
	}
	v := sheet.ParseLiteral(input)
	// Route edits on bound cells to the database (Feature 3).
	if handled, err := ds.iface.HandleSheetEdit(canonical, a, v); handled {
		return noop, err
	}
	if v.IsEmpty() {
		return ds.engine.ClearCell(canonical, a), nil
	}
	return ds.engine.SetValue(canonical, a, v), nil
}

// SetValues bulk-loads a dense matrix of literal values with its top-left
// corner at topLeft. It is the fast path for imports: values land on the
// sheet directly (no per-cell input parsing, no edit routing to bound
// regions) and are WAL-logged per non-empty cell so durable workbooks
// recover them. Dependent formulas recalculate on their next trigger.
func (ds *DataSpread) SetValues(sheetName, topLeft string, rows [][]sheet.Value) error {
	a, err := sheet.ParseAddress(topLeft)
	if err != nil {
		return err
	}
	sh, canonical, err := ds.sheetOf(sheetName)
	if err != nil {
		return err
	}
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	if err := ds.checkWritable(); err != nil {
		return err
	}
	sh.SetValues(a, rows)
	for r, row := range rows {
		for c, v := range row {
			if v.IsEmpty() {
				continue
			}
			cell := sheet.Addr(a.Row+r, a.Col+c)
			if lerr := ds.logCommand(txn.Op{
				Kind:   txn.OpCellValue,
				Detail: canonical + "!" + cell.String(),
				Args:   []string{canonical, cell.String(), encodeValue(v)},
			}); lerr != nil {
				return fmt.Errorf("core: values applied but not fully logged: %w", lerr)
			}
		}
	}
	return nil
}

// CellCount returns the number of materialised cells of a sheet (windowed
// table bindings keep this far below the bound table's cardinality).
func (ds *DataSpread) CellCount(sheetName string) (int, error) {
	sh, _, err := ds.sheetOf(sheetName)
	if err != nil {
		return 0, err
	}
	return sh.CellCount(), nil
}

// Get returns the current value of a cell.
func (ds *DataSpread) Get(sheetName, addr string) (sheet.Value, error) {
	a, err := sheet.ParseAddress(addr)
	if err != nil {
		return sheet.Empty(), err
	}
	sh, _, err := ds.sheetOf(sheetName)
	if err != nil {
		return sheet.Empty(), err
	}
	return sh.Value(a), nil
}

// GetRange returns the values of a range as a dense matrix.
func (ds *DataSpread) GetRange(sheetName, rng string) ([][]sheet.Value, error) {
	r, err := sheet.ParseRange(rng)
	if err != nil {
		return nil, err
	}
	sh, _, err := ds.sheetOf(sheetName)
	if err != nil {
		return nil, err
	}
	return sh.Values(r), nil
}

// Wait blocks until all background recomputation has finished. Tests and
// benchmarks use it to observe a quiescent state.
func (ds *DataSpread) Wait() { ds.engine.Wait() }

// --- SQL and window operations ---

// Query executes a SQL statement with full access to sheet data through
// RANGEVALUE/RANGETABLE.
func (ds *DataSpread) Query(sql string) (*sqlexec.Result, error) {
	return ds.QueryContext(context.Background(), sql)
}

// QueryContext executes a SQL statement, binding args to its '?'
// placeholders and honouring ctx cancellation at executor batch boundaries.
// Whether the statement reaches the WAL is decided by the parsed statement
// kind (sqlparser.Mutates), not by sniffing the text: leading comments,
// whitespace or exotic spellings cannot misclassify a statement.
func (ds *DataSpread) QueryContext(ctx context.Context, sql string, args ...sheet.Value) (*sqlexec.Result, error) {
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	p, err := ds.db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	if sqlparser.Mutates(p.Statement()) {
		if err := ds.checkWritable(); err != nil {
			return nil, err
		}
	}
	res, err := ds.session.ExecutePreparedContext(ctx, p, args...)
	if err == nil {
		if lerr := ds.logExecuted(p.Statement(), ds.session, &ds.pending, sql, args); lerr != nil {
			return res, fmt.Errorf("core: statement applied but not logged: %w", lerr)
		}
	}
	return res, ds.notePoison(err)
}

// sqlOp encodes a (possibly parameterized) mutating statement as a WAL
// command: the text first, then one encoded value per bound argument, so
// replay re-executes it with identical bindings.
func sqlOp(sql string, args []sheet.Value) txn.Op {
	op := txn.Op{Kind: txn.OpSQL, Detail: sql, Args: make([]string, 0, 1+len(args))}
	op.Args = append(op.Args, sql)
	for _, v := range args {
		op.Args = append(op.Args, encodeValue(v))
	}
	return op
}

// logExecuted routes WAL logging for one successfully executed statement of
// a session. Autocommit mutations log immediately; mutations inside an
// explicit transaction buffer into pending and reach the WAL only at
// COMMIT, as one atomic record. Replay therefore never resurrects
// rolled-back or uncommitted work, and transactions from concurrent
// connections land in the log in commit order instead of interleaving
// statement by statement. Caller holds cmdMu.
func (ds *DataSpread) logExecuted(stmt sqlparser.Statement, sess *sqlexec.Session, pending *[]txn.Op, sql string, args []sheet.Value) error {
	switch stmt.(type) {
	case *sqlparser.BeginStmt:
		*pending = (*pending)[:0]
		return nil
	case *sqlparser.CommitStmt:
		ops := *pending
		*pending = nil
		return ds.logCommands(ops)
	case *sqlparser.RollbackStmt:
		*pending = nil
		return nil
	}
	if !sqlparser.Mutates(stmt) {
		return nil
	}
	if sess.InTransaction() {
		*pending = append(*pending, sqlOp(sql, args))
		return nil
	}
	return ds.logCommand(sqlOp(sql, args))
}

// logCommands appends a batch of user-level commands as one committed WAL
// record (the commit point of an explicit transaction). A no-op for empty
// batches, in-memory instances and during recovery replay.
func (ds *DataSpread) logCommands(ops []txn.Op) error {
	if ds.wal == nil || ds.replaying || len(ops) == 0 {
		return nil
	}
	if err := ds.wal.Run(func(t *txn.Txn) error {
		for _, op := range ops {
			if err := t.Log(op, nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		// The commands are applied in memory but their WAL record did not
		// commit: a reopen would lose them, so the workbook degrades to
		// read-only rather than letting the histories diverge further.
		ds.poison(err)
		return err
	}
	ds.maybeTriggerCheckpoint()
	return nil
}

// QueryScript executes a semicolon-separated SQL script. Each statement is
// its own transaction, so a failing statement does not undo the ones before
// it — a mutating script is therefore logged even on error, and replay
// deterministically re-runs the same committed prefix. Scripts do not
// accept placeholders.
func (ds *DataSpread) QueryScript(sql string) (*sqlexec.Result, error) {
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	stmts, parseErr := sqlparser.ParseMulti(sql)
	if parseErr == nil && sqlparser.AnyMutates(stmts) {
		if err := ds.checkWritable(); err != nil {
			return nil, err
		}
	}
	res, err := ds.session.QueryScript(sql)
	err = ds.notePoison(err)
	if parseErr == nil && sqlparser.AnyMutates(stmts) {
		if lerr := ds.logCommand(txn.Op{Kind: txn.OpSQLScript, Detail: sql, Args: []string{sql}}); lerr != nil {
			lerr = fmt.Errorf("core: script applied but not logged: %w", lerr)
			return res, errors.Join(err, lerr)
		}
	}
	return res, err
}

// ScrollTo moves the visible window of a sheet and refreshes window-bound
// tables (fetch-on-demand panning).
func (ds *DataSpread) ScrollTo(sheetName, topLeft string) error {
	a, err := sheet.ParseAddress(topLeft)
	if err != nil {
		return err
	}
	_, canonical, err := ds.sheetOf(sheetName)
	if err != nil {
		return err
	}
	ds.windows.ScrollTo(canonical, a)
	return ds.iface.OnScroll(canonical)
}

// VisibleValues returns the values of the current window of a sheet.
func (ds *DataSpread) VisibleValues(sheetName string) ([][]sheet.Value, error) {
	sh, canonical, err := ds.sheetOf(sheetName)
	if err != nil {
		return nil, err
	}
	return sh.Values(ds.windows.Window(canonical)), nil
}

// --- import / export (paper Feature 2) ---

// ExportOptions configure CreateTableFromRange.
type ExportOptions struct {
	// PrimaryKey names the column(s) to declare as the primary key.
	PrimaryKey []string
	// KeepRegion, when true, leaves the original cells in place instead of
	// replacing them with a DBTABLE binding.
	KeepRegion bool
}

// CreateTableFromRange exports a sheet range as a new relational table: the
// schema is inferred from the header row and the data (paper Figure 2b), the
// rows are inserted, and — unless KeepRegion is set — the region is replaced
// by a DBTABLE binding so it stays in sync with the database from then on.
func (ds *DataSpread) CreateTableFromRange(sheetName, rng, tableName string, opts ExportOptions) (*interfacemgr.Binding, error) {
	r, err := sheet.ParseRange(rng)
	if err != nil {
		return nil, err
	}
	sh, canonical, err := ds.sheetOf(sheetName)
	if err != nil {
		return nil, err
	}
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	if err := ds.checkWritable(); err != nil {
		return nil, err
	}
	values := sh.Values(r)
	hasData := false
	for _, row := range values {
		for _, v := range row {
			if !v.IsEmpty() {
				hasData = true
				break
			}
		}
	}
	if !hasData {
		return nil, fmt.Errorf("core: range %s has no data to export: %w", rng, dberr.ErrUnsupported)
	}
	cols, data, _ := catalog.InferSchema(values)
	if len(cols) == 0 {
		return nil, fmt.Errorf("core: range %s has no data to export: %w", rng, dberr.ErrUnsupported)
	}
	for i := range cols {
		for _, pk := range opts.PrimaryKey {
			if strings.EqualFold(cols[i].Name, pk) {
				cols[i].PrimaryKey = true
			}
		}
	}
	if err := ds.db.CreateTable(tableName, cols); err != nil {
		return nil, ds.notePoison(err)
	}
	for _, row := range data {
		if _, err := ds.db.Insert(tableName, row); err != nil {
			// Leave the table in place with the rows inserted so far; the
			// caller sees exactly which row failed.
			return nil, ds.notePoison(fmt.Errorf("core: exporting range %s: %w", rng, err))
		}
	}
	logExport := func() error {
		args := []string{canonical, rng, tableName, "0"}
		if opts.KeepRegion {
			args[3] = "1"
		}
		args = append(args, opts.PrimaryKey...)
		return ds.logCommand(txn.Op{
			Kind:   txn.OpExportRange,
			Table:  tableName,
			Detail: canonical + "!" + rng,
			Args:   args,
		})
	}
	if opts.KeepRegion {
		if lerr := logExport(); lerr != nil {
			return nil, fmt.Errorf("core: export applied but not logged: %w", lerr)
		}
		return nil, nil
	}
	// Replace the region with a DBTABLE binding anchored at its top-left.
	sh.ClearRange(r)
	b, err := ds.iface.BindTable(canonical, r.Start, tableName)
	if err != nil {
		return nil, err
	}
	if lerr := logExport(); lerr != nil {
		return b, fmt.Errorf("core: export applied but not logged: %w", lerr)
	}
	return b, nil
}

// ImportTable binds an existing relational table at the given anchor cell
// (DBTABLE import direction).
func (ds *DataSpread) ImportTable(sheetName, anchor, tableName string) (*interfacemgr.Binding, error) {
	a, err := sheet.ParseAddress(anchor)
	if err != nil {
		return nil, err
	}
	_, canonical, err := ds.sheetOf(sheetName)
	if err != nil {
		return nil, err
	}
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	if err := ds.checkWritable(); err != nil {
		return nil, err
	}
	b, err := ds.iface.BindTable(canonical, a, tableName)
	if err != nil {
		return nil, ds.notePoison(err)
	}
	if lerr := ds.logCommand(txn.Op{
		Kind:   txn.OpImportTable,
		Table:  tableName,
		Detail: canonical + "!" + a.String(),
		Args:   []string{canonical, a.String(), tableName},
	}); lerr != nil {
		return b, fmt.Errorf("core: import applied but not logged: %w", lerr)
	}
	return b, nil
}

// --- DBSQL / DBTABLE cell formulas ---

func formulaIsDB(src string) (string, bool) {
	name, ok := isDBFormula(src)
	return name, ok
}

// setDBFormula creates the binding for a DBSQL/DBTABLE formula entered at a
// cell: the formula text is stored in the cell and the result is spilled
// into the region below/right of it.
func (ds *DataSpread) setDBFormula(sheetName string, a sheet.Address, name, src string) error {
	_, args, err := dbFormulaArgs(src)
	if err != nil {
		return err
	}
	if len(args) == 0 {
		return fmt.Errorf("core: %s requires an argument: %w", name, dberr.ErrSyntax)
	}
	switch name {
	case "DBSQL":
		_, err := ds.iface.BindQuery(sheetName, a, args[0])
		return err
	case "DBTABLE":
		_, err := ds.iface.BindTable(sheetName, a, args[0])
		return err
	default:
		return fmt.Errorf("core: unknown database formula %q: %w", name, dberr.ErrSyntax)
	}
}
