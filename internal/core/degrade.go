// Degraded read-only mode.
//
// An I/O failure that leaves durability in doubt — a failed WAL append, a
// storage error while a command was mutating pages, a commit-uncertain
// checkpoint root flip — poisons the workbook: in-memory state may no longer
// match what a reopen would recover, so accepting further writes would let
// the two histories diverge silently. A poisoned workbook keeps serving
// reads from its committed in-memory state and rejects every mutating
// command with dberr.ErrReadOnly until it is reopened (reopen re-derives
// state from disk, so it starts clean).
package core

import (
	"errors"
	"fmt"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// poison degrades the workbook to read-only. The first cause wins; later
// failures (often knock-ons of the first) are ignored.
func (ds *DataSpread) poison(cause error) {
	ds.poisonMu.Lock()
	defer ds.poisonMu.Unlock()
	if ds.poisonErr == nil {
		ds.poisonErr = cause
	}
}

// Degrade forces the workbook into degraded read-only mode as if cause had
// poisoned it: an operational fence (quarantine a suspect workbook without
// closing it) also used by fault harnesses that need a deterministically
// degraded instance.
func (ds *DataSpread) Degrade(cause error) {
	if cause == nil {
		cause = fmt.Errorf("core: administratively fenced: %w", dberr.ErrReadOnly)
	}
	ds.poison(cause)
}

// isPoisoned reports whether the workbook has degraded to read-only.
func (ds *DataSpread) isPoisoned() bool {
	ds.poisonMu.Lock()
	defer ds.poisonMu.Unlock()
	return ds.poisonErr != nil
}

// checkWritable gates every mutating command (caller holds cmdMu, or is the
// checkpoint path). It returns nil on a healthy workbook and an
// ErrReadOnly-classified error naming the original cause on a poisoned one.
func (ds *DataSpread) checkWritable() error {
	ds.poisonMu.Lock()
	perr := ds.poisonErr
	ds.poisonMu.Unlock()
	if perr == nil {
		return nil
	}
	return fmt.Errorf("core: %w after an I/O failure: %w", dberr.ErrReadOnly, perr)
}

// notePoison inspects a command failure: an error classified under
// dberr.ErrIO means a write to the page heap or the WAL failed mid-command,
// so the in-memory and on-disk states can disagree and the workbook is
// poisoned. Other failures (constraint violations, syntax errors) leave it
// healthy. Returns err unchanged for convenient chaining.
func (ds *DataSpread) notePoison(err error) error {
	if err != nil && errors.Is(err, dberr.ErrIO) {
		ds.poison(err)
	}
	return err
}

// isSyncFault reports whether err contains a failed fsync. Sync failures are
// the durability class: the kernel may have dropped the dirty pages they
// covered (fsync-gate), so nothing short of a reopen can re-establish what
// is on disk. Other I/O failures are treated as transient.
func isSyncFault(err error) bool {
	for {
		var oe *vfs.OpError
		if !errors.As(err, &oe) {
			return false
		}
		if oe.Op == vfs.OpSync {
			return true
		}
		err = oe.Err
	}
}

// Health reports the workbook's degradation state: nil while healthy, the
// poisoning cause (classified under ErrReadOnly and ErrIO) once the
// workbook has degraded to read-only, or the last background checkpoint
// failure if one is pending. Unlike Checkpoint and Close, reading Health
// does not consume the recorded checkpoint error.
func (ds *DataSpread) Health() error {
	if err := ds.checkWritable(); err != nil {
		return err
	}
	ds.ckptErrMu.Lock()
	defer ds.ckptErrMu.Unlock()
	if ds.ckptErr != nil {
		return fmt.Errorf("core: background checkpoint failed: %w", ds.ckptErr)
	}
	return nil
}
