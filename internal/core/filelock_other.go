//go:build !unix

package core

import "github.com/dataspread/dataspread/internal/storage/vfs"

// lockWorkbookFile is a no-op on platforms without flock; the single-writer
// rule is enforced only on unix.
func lockWorkbookFile(vfs.FS, string) (func() error, error) {
	return func() error { return nil }, nil
}
