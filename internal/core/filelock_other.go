//go:build !unix

package core

// lockWorkbookFile is a no-op on platforms without flock; the single-writer
// rule is enforced only on unix.
func lockWorkbookFile(string) (func() error, error) {
	return func() error { return nil }, nil
}
