// Durability: a DataSpread workbook backed by a single-file page heap plus a
// write-ahead command log.
//
// The page file is the source of truth for relational state. Table pages are
// allocated from the workbook file through the database's buffer pool, and a
// checkpoint persists the page catalog — schema, per-table page directories,
// index contents — in a CRC-framed blob referenced from one of two
// ping-pong root pages (rootpage.go). The spreadsheet side (sheets, user
// cells, bindings) is small and is snapshotted as a compact command blob
// next to the catalog.
//
// Every mutating core command (cell input, mutating SQL, sheet creation,
// import/export) is still serialized as one committed txn.Record to
// <path>.wal before the call returns; the WAL is the redo log for work since
// the last checkpoint. OpenFile therefore attaches to the existing table and
// index pages — no per-row DML replay — and only re-executes the WAL tail
// above the checkpoint watermark, making recovery O(work since the last
// checkpoint) instead of O(history). Checkpoints run off the write path on a
// background goroutine (checkpointer.go) and are shadow-paged end to end: a
// crash at any point either keeps the old root (plus the full WAL) or the
// new one — never a torn snapshot.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/interfacemgr"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/vfs"
	"github.com/dataspread/dataspread/internal/txn"
)

// WALPath returns the write-ahead log path used for a workbook file.
func WALPath(path string) string { return path + ".wal" }

// OpenFile opens (creating if necessary) a durable workbook: the page heap
// at path and the command log at WALPath(path). Existing relational state is
// attached from the checkpoint root's page catalog, the sheet snapshot is
// applied, and the WAL tail above the checkpoint watermark is replayed;
// individual command failures during replay are collected (RecoveryErrors)
// rather than aborting the open, so a partially torn history still yields a
// usable workbook.
func OpenFile(path string, opts Options) (*DataSpread, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	// Single-writer enforcement: take the workbook's exclusive lock before
	// touching the heap or the WAL, so two processes can never interleave
	// appends on the same files. A held lock fails fast with a clear error.
	unlock, err := lockWorkbookFile(fsys, path)
	if err != nil {
		return nil, err
	}
	var be pager.Backend
	if opts.Mmap {
		be, err = pager.OpenMmapStoreVFS(fsys, path)
	} else {
		be, err = pager.OpenFileStoreVFS(fsys, path)
	}
	if err != nil {
		_ = unlock()
		return nil, err
	}
	fail := func(err error) (*DataSpread, error) {
		return nil, errors.Join(err, be.Close(), unlock())
	}
	// Reserve the two root slots; on a fresh file they are the first pages
	// ever allocated. Reclaim (rather than Allocate) registers a slot whose
	// on-disk header a torn write left as garbage: an unreadable root slot
	// must not brick a file whose sibling slot still holds a valid root.
	type reclaimer interface{ Reclaim(pager.PageID) error }
	for _, slot := range []pager.PageID{rootSlotA, rootSlotB} {
		if be.Exists(slot) {
			continue
		}
		if rc, ok := be.(reclaimer); ok {
			if err := rc.Reclaim(slot); err != nil {
				return fail(fmt.Errorf("core: reclaim root slot %d: %w", slot, err))
			}
			continue
		}
		if id := be.Allocate(); id != slot {
			return fail(fmt.Errorf("core: workbook file reserved page %d for a root slot, want %d: %w", id, slot, dberr.ErrCorrupt))
		}
	}
	root, staleSlot, fresh := loadRoots(be)
	if fresh {
		// No valid root. That is only legitimate for a file that provably
		// holds no committed data: nothing beyond the root slots
		// themselves, each of which is empty (a kill between the slot
		// reservation and the gen-0 root sync on a previous first open) or
		// a torn write of our own root record (rootMagic prefix — a torn
		// *checkpoint* root would be accompanied by blob pages). Anything
		// else — data pages, or a page-1 payload in a foreign/older format
		// — is refused rather than silently re-initialised.
		for _, id := range be.PageIDs() {
			if id != rootSlotA && id != rootSlotB {
				return fail(fmt.Errorf("core: workbook file has data pages but no valid checkpoint root (corrupt root slots or pre-page-catalog format): %w", dberr.ErrCorrupt))
			}
			buf, err := be.ReadPage(id)
			if err != nil {
				return fail(fmt.Errorf("core: read root slot %d: %w", id, err))
			}
			if len(buf) != 0 && !bytes.HasPrefix(buf, rootMagic[:]) {
				return fail(fmt.Errorf("core: workbook file page 1 holds unrecognised data (pre-page-catalog format?); refusing to re-initialise: %w", dberr.ErrCorrupt))
			}
		}
		if err := writeRoot(be, rootSlotA, rootInfo{}); err != nil {
			return fail(err)
		}
		if err := writeRoot(be, rootSlotB, rootInfo{}); err != nil {
			return fail(err)
		}
		// Sync the gen-0 roots before any command can commit: otherwise a
		// power loss could leave durable data-page headers next to
		// never-written root slots, and a reopen would mistake a fully
		// WAL-recoverable workbook for one with corrupt roots.
		if err := be.Sync(); err != nil {
			return fail(err)
		}
	}

	ds := newDataSpread(opts, be)
	ds.backend = be
	ds.unlock = unlock
	ds.root = root
	ds.ckptThreshold = opts.CheckpointWALBytes
	if ds.ckptThreshold == 0 {
		ds.ckptThreshold = defaultCheckpointWALBytes
	}

	// Attach the relational state to its existing pages.
	if root.metaPage != 0 {
		blob, err := be.ReadPage(root.metaPage)
		if err != nil {
			return fail(fmt.Errorf("core: read page catalog: %w", err))
		}
		if err := ds.db.AttachPages(blob); err != nil {
			return fail(fmt.Errorf("core: attach page catalog: %w", err))
		}
	}
	// The zone-map catalog is advisory: an unreadable or corrupt blob (torn
	// write, checksum mismatch, schema drift) degrades to "no page skipping"
	// — summaries rebuild as pages are rewritten — and never fails the open.
	if root.zonePage != 0 {
		if blob, err := be.ReadPage(root.zonePage); err == nil {
			_ = ds.db.AttachZones(blob)
		}
	}
	// Protect the attached pages against in-place overwrite, re-mirror the
	// chosen root into a stale sibling slot (a crash may have left it
	// behind — only the sibling is rewritten, never the slot holding the
	// sole valid root), then sweep pages no root references — the shadow
	// pages of a checkpoint that never committed, or the superseded pages
	// of one that committed but crashed before cleanup.
	dataPages := ds.db.DurablePageIDs()
	ds.db.Pool().SetDurable(dataPages)
	if staleSlot != 0 {
		if err := writeRoot(be, staleSlot, root); err != nil {
			return fail(err)
		}
		if err := be.Sync(); err != nil {
			return fail(err)
		}
	}
	ds.sweepUnreachable(dataPages)

	// Apply the sheet-snapshot commands (cells, sheets, bindings).
	if root.snapPage != 0 {
		blob, err := be.ReadPage(root.snapPage)
		if err != nil {
			return fail(fmt.Errorf("core: read sheet snapshot: %w", err))
		}
		recs, err := txn.DecodeRecords(blob)
		if err != nil {
			return fail(fmt.Errorf("core: decode sheet snapshot: %w", err))
		}
		ds.applyRecords(recs)
	}

	// Replay the WAL tail. Records at or below the watermark are already
	// inside the checkpoint and must not replay (a crash between the root
	// flip and the WAL compaction leaves them behind, and commands like
	// INSERT are not idempotent).
	mgr := txn.NewManager()
	recs, err := mgr.RecoverFileVFS(fsys, WALPath(path))
	if err != nil {
		return fail(err)
	}
	live := recs[:0]
	for _, rec := range recs {
		if rec.LSN > root.watermark {
			live = append(live, rec)
		}
	}
	ds.applyRecords(live)
	mgr.AdvanceLSN(root.watermark)
	ds.wal = mgr
	ds.Wait()
	ds.startCheckpointer()
	return ds, nil
}

// sweepUnreachable frees every allocated page the current root does not
// reach: root slots, catalog/snapshot blobs and table pages are reachable,
// anything else is debris from a crashed or un-cleaned checkpoint.
func (ds *DataSpread) sweepUnreachable(dataPages []pager.PageID) {
	reachable := map[pager.PageID]bool{rootSlotA: true, rootSlotB: true}
	if ds.root.metaPage != 0 {
		reachable[ds.root.metaPage] = true
	}
	if ds.root.snapPage != 0 {
		reachable[ds.root.snapPage] = true
	}
	if ds.root.zonePage != 0 {
		reachable[ds.root.zonePage] = true
	}
	for _, id := range dataPages {
		reachable[id] = true
	}
	for _, id := range ds.backend.PageIDs() {
		if !reachable[id] {
			ds.backend.Free(id)
		}
	}
}

// WAL returns the durable command log manager, or nil for in-memory
// instances. Callers can tune group commit via SetGroupCommit.
func (ds *DataSpread) WAL() *txn.Manager { return ds.wal }

// RecoveryErrors returns the per-command failures encountered while applying
// the snapshot and WAL during OpenFile. Empty on a clean recovery.
func (ds *DataSpread) RecoveryErrors() []error { return ds.recoveryErrs }

// ReplayedCommands returns how many logged commands the last OpenFile had to
// re-execute (sheet snapshot plus WAL tail). After a checkpoint it is small
// and independent of table sizes: tables attach to their pages instead of
// replaying per-row DML.
func (ds *DataSpread) ReplayedCommands() int { return ds.replayedOps }

// Checkpoint writes a full shadow-paged checkpoint and compacts the WAL
// through its watermark. It also drains the background checkpointer: when it
// returns, no checkpoint is in flight. See checkpointer.go for the protocol.
func (ds *DataSpread) Checkpoint() error {
	if ds.backend == nil {
		return fmt.Errorf("core: Checkpoint requires a workbook opened with OpenFile: %w", dberr.ErrUnsupported)
	}
	// Surface (and consume) a pending background checkpoint failure: the
	// caller asking for a checkpoint is the natural observer for it.
	ds.ckptErrMu.Lock()
	prev := ds.ckptErr
	ds.ckptErr = nil
	ds.ckptErrMu.Unlock()
	err := ds.checkpointOnce()
	if prev != nil {
		err = errors.Join(fmt.Errorf("core: earlier background checkpoint failed: %w", prev), err)
	}
	return err
}

// Close drains the background checkpointer, then flushes and closes the WAL
// and the backing file, and releases the workbook's single-writer lock. It
// does not checkpoint; in-memory instances close trivially. A failed
// background checkpoint is surfaced here (once).
func (ds *DataSpread) Close() error {
	ds.stopCheckpointer()
	// Detach the interface manager from the database change feed so closed
	// instances retain no refresh machinery.
	ds.iface.Close()
	ds.ckptErrMu.Lock()
	err := ds.ckptErr
	ds.ckptErr = nil
	ds.ckptErrMu.Unlock()
	if ds.wal != nil {
		if wErr := ds.wal.Close(); err == nil {
			err = wErr
		}
	}
	if ds.backend != nil {
		if cErr := ds.backend.Close(); err == nil {
			err = cErr
		}
	}
	if ds.unlock != nil {
		if uErr := ds.unlock(); err == nil {
			err = uErr
		}
		ds.unlock = nil
	}
	return err
}

// logCommand appends one user-level command to the WAL and nudges the
// background checkpointer when the log has grown past its threshold. It is a
// no-op for in-memory instances and while recovery is replaying history.
func (ds *DataSpread) logCommand(op txn.Op) error {
	if ds.wal == nil || ds.replaying {
		return nil
	}
	if err := ds.wal.Run(func(t *txn.Txn) error { return t.Log(op, nil) }); err != nil {
		// Applied in memory, not durably logged: degrade to read-only (see
		// logCommands).
		ds.poison(err)
		return err
	}
	ds.maybeTriggerCheckpoint()
	return nil
}

// applyRecords re-applies recovered commands in commit order, suppressing
// WAL logging for the duration.
func (ds *DataSpread) applyRecords(recs []txn.Record) {
	ds.replaying = true
	defer func() { ds.replaying = false }()
	for _, rec := range recs {
		for _, op := range rec.Ops {
			ds.replayedOps++
			if err := ds.applyOp(op); err != nil {
				ds.recoveryErrs = append(ds.recoveryErrs,
					fmt.Errorf("core: replay LSN %d %s: %w", rec.LSN, op.Kind, err))
			}
		}
	}
}

func opArgs(op txn.Op, n int) ([]string, error) {
	if len(op.Args) < n {
		return nil, fmt.Errorf("want %d args, have %d: %w", n, len(op.Args), dberr.ErrCorrupt)
	}
	return op.Args, nil
}

// applyOp dispatches one recovered command. Unknown kinds are ignored so
// newer logs degrade gracefully.
func (ds *DataSpread) applyOp(op txn.Op) error {
	switch op.Kind {
	case txn.OpAddSheet:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		_, err = ds.AddSheet(args[0])
		return err
	case txn.OpCellSet:
		args, err := opArgs(op, 3)
		if err != nil {
			return err
		}
		a, err := sheet.ParseAddress(args[1])
		if err != nil {
			return err
		}
		wait, err := ds.SetCellAt(args[0], a, args[2])
		if err != nil {
			return err
		}
		wait()
	case txn.OpCellValue:
		args, err := opArgs(op, 3)
		if err != nil {
			return err
		}
		a, err := sheet.ParseAddress(args[1])
		if err != nil {
			return err
		}
		v, err := decodeValue(args[2])
		if err != nil {
			return err
		}
		_, canonical, err := ds.sheetOf(args[0])
		if err != nil {
			return err
		}
		ds.engine.SetValue(canonical, a, v)()
	case txn.OpSQL:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		// Trailing args encode the '?' placeholder bindings the statement
		// originally executed with.
		params := make([]sheet.Value, 0, len(args)-1)
		for _, enc := range args[1:] {
			v, err := decodeValue(enc)
			if err != nil {
				return err
			}
			params = append(params, v)
		}
		_, err = ds.QueryContext(context.Background(), args[0], params...)
		return err
	case txn.OpSQLScript:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		_, err = ds.QueryScript(args[0])
		return err
	case txn.OpImportTable:
		args, err := opArgs(op, 3)
		if err != nil {
			return err
		}
		_, err = ds.ImportTable(args[0], args[1], args[2])
		return err
	case txn.OpBindQuery:
		args, err := opArgs(op, 3)
		if err != nil {
			return err
		}
		a, err := sheet.ParseAddress(args[1])
		if err != nil {
			return err
		}
		_, err = ds.iface.BindQuery(args[0], a, args[2])
		return err
	case txn.OpExportRange:
		args, err := opArgs(op, 4)
		if err != nil {
			return err
		}
		_, err = ds.CreateTableFromRange(args[0], args[1], args[2], ExportOptions{
			KeepRegion: args[3] == "1",
			PrimaryKey: args[4:],
		})
		return err
	case txn.OpCreateTable:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		cols := make([]catalog.Column, 0, len(args)-1)
		for _, enc := range args[1:] {
			col, err := decodeColumn(enc)
			if err != nil {
				return err
			}
			cols = append(cols, col)
		}
		return ds.db.CreateTable(args[0], cols)
	case txn.OpInsert:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		row := make([]sheet.Value, 0, len(args)-1)
		for _, enc := range args[1:] {
			v, err := decodeValue(enc)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		_, err = ds.db.Insert(args[0], row)
		return err
	}
	return nil
}

// snapshotOps synthesizes the command sequence that reconstructs the
// non-relational half of the workbook: sheets first, then user cells (bound
// regions are skipped — their bindings re-materialise them), then the
// bindings themselves. Tables and indexes are NOT snapshotted as commands:
// they persist through the page catalog (sqlexec.MarshalPages) and attach on
// open.
func (ds *DataSpread) snapshotOps() []txn.Op {
	var ops []txn.Op
	names := ds.book.SheetNames()
	for _, name := range names {
		ops = append(ops, txn.Op{Kind: txn.OpAddSheet, Detail: name, Args: []string{name}})
	}
	for _, name := range names {
		sh, ok := ds.book.Sheet(name)
		if !ok {
			continue
		}
		used, any := sh.UsedRange()
		if !any {
			continue
		}
		sh.ForEachInRange(used, func(a sheet.Address, c sheet.Cell) {
			if c.Origin.Kind != sheet.OriginUser || c.Origin.BindingID != 0 {
				return // re-materialised by the binding snapshot below
			}
			switch {
			case c.IsFormula():
				if _, ok := isDBFormula("=" + c.Formula); ok {
					return // bindings are snapshotted explicitly
				}
				ops = append(ops, txn.Op{
					Kind:   txn.OpCellSet,
					Detail: name + "!" + a.String(),
					Args:   []string{name, a.String(), "=" + c.Formula},
				})
			case !c.Value.IsEmpty():
				ops = append(ops, txn.Op{
					Kind:   txn.OpCellValue,
					Detail: name + "!" + a.String(),
					Args:   []string{name, a.String(), encodeValue(c.Value)},
				})
			}
		})
	}
	for _, b := range ds.iface.Bindings() {
		switch b.Kind {
		case interfacemgr.KindTable:
			ops = append(ops, txn.Op{
				Kind:   txn.OpImportTable,
				Table:  b.Table,
				Detail: b.SheetName + "!" + b.Anchor.String(),
				Args:   []string{b.SheetName, b.Anchor.String(), b.Table},
			})
		case interfacemgr.KindQuery:
			ops = append(ops, txn.Op{
				Kind:   txn.OpBindQuery,
				Detail: b.SheetName + "!" + b.Anchor.String(),
				Args:   []string{b.SheetName, b.Anchor.String(), b.SQL},
			})
		}
	}
	return ops
}

// --- value and column codecs (snapshot/WAL argument strings) ---

// encodeValue renders a Value as a type-tagged string that decodeValue
// restores exactly (ParseLiteral would re-type, e.g. text "42" into a
// number). Floats use strconv's shortest round-trip form.
func encodeValue(v sheet.Value) string {
	switch v.Kind {
	case sheet.KindNumber:
		return "N" + strconv.FormatFloat(v.Num, 'g', -1, 64)
	case sheet.KindString:
		return "S" + v.Str
	case sheet.KindBool:
		if v.Bool {
			return "B1"
		}
		return "B0"
	case sheet.KindError:
		return "X" + v.Err
	default:
		return "E"
	}
}

func decodeValue(s string) (sheet.Value, error) {
	if s == "" {
		return sheet.Empty(), fmt.Errorf("empty value encoding: %w", dberr.ErrCorrupt)
	}
	body := s[1:]
	switch s[0] {
	case 'E':
		return sheet.Empty(), nil
	case 'N':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return sheet.Empty(), fmt.Errorf("bad number encoding %q: %w", s, err)
		}
		return sheet.Number(f), nil
	case 'S':
		return sheet.String_(body), nil
	case 'B':
		return sheet.Bool_(body == "1"), nil
	case 'X':
		return sheet.ErrorValue(body), nil
	default:
		return sheet.Empty(), fmt.Errorf("unknown value encoding %q: %w", s, dberr.ErrCorrupt)
	}
}

// colSep separates column fields; the unit separator never occurs in
// identifiers or type names, and the default value is kept last so SplitN
// tolerates one embedded in a string default.
const colSep = "\x1f"

func encodeColumn(c catalog.Column) string {
	notNull, pk := "0", "0"
	if c.NotNull {
		notNull = "1"
	}
	if c.PrimaryKey {
		pk = "1"
	}
	return strings.Join([]string{c.Name, c.Type.String(), notNull, pk, encodeValue(c.Default)}, colSep)
}

func decodeColumn(s string) (catalog.Column, error) {
	parts := strings.SplitN(s, colSep, 5)
	if len(parts) != 5 {
		return catalog.Column{}, fmt.Errorf("bad column encoding %q: %w", s, dberr.ErrCorrupt)
	}
	def, err := decodeValue(parts[4])
	if err != nil {
		return catalog.Column{}, err
	}
	return catalog.Column{
		Name:       parts[0],
		Type:       catalog.ParseType(parts[1]),
		NotNull:    parts[2] == "1",
		PrimaryKey: parts[3] == "1",
		Default:    def,
	}, nil
}
