// Durability: a DataSpread workbook backed by a single-file page heap plus a
// write-ahead command log.
//
// The design is classic snapshot + logical log. Every mutating core command
// (cell input, mutating SQL, sheet creation, import/export) is serialized as
// one committed txn.Record to <path>.wal before the call returns. Checkpoint
// compacts the current state into a synthesized command log — sheets, tables,
// rows, user cells, bindings — and writes it through the pager into the
// snapshot root page of <path>, then truncates the WAL. OpenFile restores by
// applying the snapshot commands, then replaying the WAL tail (recovering
// from a torn final frame), so all committed work survives a crash.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/interfacemgr"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
	"github.com/dataspread/dataspread/internal/txn"
)

// snapshotRoot is the page holding the checkpoint blob: the first page ever
// allocated in a workbook file.
const snapshotRoot pager.PageID = 1

// WALPath returns the write-ahead log path used for a workbook file.
func WALPath(path string) string { return path + ".wal" }

// OpenFile opens (creating if necessary) a durable workbook: the page heap
// at path and the command log at WALPath(path). Existing state is recovered
// by applying the checkpoint snapshot and replaying the WAL; individual
// command failures during recovery are collected (RecoveryErrors) rather than
// aborting the open, so a partially torn history still yields a usable
// workbook.
func OpenFile(path string, opts Options) (*DataSpread, error) {
	// Single-writer enforcement: take the workbook's exclusive lock before
	// touching the heap or the WAL, so two processes can never interleave
	// appends on the same files. A held lock fails fast with a clear error.
	unlock, err := lockWorkbookFile(path)
	if err != nil {
		return nil, err
	}
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		_ = unlock()
		return nil, err
	}
	ds := New(opts)
	ds.backend = fs
	ds.unlock = unlock
	// watermark is the highest LSN the snapshot covers: WAL records at or
	// below it are already reflected in the snapshot and must not replay
	// (a crash between the snapshot sync and the WAL truncate leaves them
	// behind, and commands like INSERT are not idempotent).
	var watermark uint64
	if fs.Exists(snapshotRoot) {
		blob, err := fs.ReadPage(snapshotRoot)
		if err != nil {
			fs.Close()
			_ = unlock()
			return nil, fmt.Errorf("core: read snapshot: %w", err)
		}
		if len(blob) > 0 {
			recs, err := txn.DecodeRecords(blob)
			if err != nil {
				fs.Close()
				_ = unlock()
				return nil, fmt.Errorf("core: decode snapshot: %w", err)
			}
			for _, rec := range recs {
				if rec.LSN > watermark {
					watermark = rec.LSN
				}
			}
			ds.applyRecords(recs)
		}
	} else if id := fs.Allocate(); id != snapshotRoot {
		fs.Close()
		_ = unlock()
		return nil, fmt.Errorf("core: workbook file reserved page %d for the snapshot, want %d", id, snapshotRoot)
	}
	mgr := txn.NewManager()
	recs, err := mgr.RecoverFile(WALPath(path))
	if err != nil {
		fs.Close()
		_ = unlock()
		return nil, err
	}
	live := recs[:0]
	for _, rec := range recs {
		if rec.LSN > watermark {
			live = append(live, rec)
		}
	}
	ds.applyRecords(live)
	mgr.AdvanceLSN(watermark)
	ds.wal = mgr
	ds.Wait()
	return ds, nil
}

// WAL returns the durable command log manager, or nil for in-memory
// instances. Callers can tune group commit via SetGroupCommit.
func (ds *DataSpread) WAL() *txn.Manager { return ds.wal }

// RecoveryErrors returns the per-command failures encountered while applying
// the snapshot and WAL during OpenFile. Empty on a clean recovery.
func (ds *DataSpread) RecoveryErrors() []error { return ds.recoveryErrs }

// Checkpoint compacts the workbook into the snapshot root page and truncates
// the WAL. The snapshot is written and synced through the pager before the
// log is reset, so a crash between the two steps replays the (now redundant)
// log on top of the snapshot instead of losing work.
func (ds *DataSpread) Checkpoint() error {
	if ds.backend == nil {
		return errors.New("core: Checkpoint requires a workbook opened with OpenFile")
	}
	ds.Wait()
	// Hold the command lock across snapshot + truncate: a command slipping
	// in between would be in neither the snapshot nor the surviving WAL.
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	// The snapshot record's LSN is the recovery watermark: everything
	// committed up to it is inside the snapshot.
	blob := txn.EncodeRecords([]txn.Record{{LSN: ds.wal.LastLSN(), Ops: ds.snapshotOps()}})
	if err := ds.backend.WritePage(snapshotRoot, blob); err != nil {
		return fmt.Errorf("core: write snapshot: %w", err)
	}
	if err := ds.backend.Sync(); err != nil {
		return fmt.Errorf("core: sync snapshot: %w", err)
	}
	return ds.wal.ResetLog()
}

// Close flushes and closes the WAL and the backing file, then releases the
// workbook's single-writer lock. It does not checkpoint; in-memory
// instances close trivially.
func (ds *DataSpread) Close() error {
	var err error
	if ds.wal != nil {
		err = ds.wal.Close()
	}
	if ds.backend != nil {
		if cErr := ds.backend.Close(); err == nil {
			err = cErr
		}
	}
	if ds.unlock != nil {
		if uErr := ds.unlock(); err == nil {
			err = uErr
		}
		ds.unlock = nil
	}
	return err
}

// logCommand appends one user-level command to the WAL. It is a no-op for
// in-memory instances and while recovery is replaying history.
func (ds *DataSpread) logCommand(op txn.Op) error {
	if ds.wal == nil || ds.replaying {
		return nil
	}
	return ds.wal.Run(func(t *txn.Txn) error { return t.Log(op, nil) })
}

// applyRecords re-applies recovered commands in commit order, suppressing
// WAL logging for the duration.
func (ds *DataSpread) applyRecords(recs []txn.Record) {
	ds.replaying = true
	defer func() { ds.replaying = false }()
	for _, rec := range recs {
		for _, op := range rec.Ops {
			if err := ds.applyOp(op); err != nil {
				ds.recoveryErrs = append(ds.recoveryErrs,
					fmt.Errorf("core: replay LSN %d %s: %w", rec.LSN, op.Kind, err))
			}
		}
	}
}

func opArgs(op txn.Op, n int) ([]string, error) {
	if len(op.Args) < n {
		return nil, fmt.Errorf("want %d args, have %d", n, len(op.Args))
	}
	return op.Args, nil
}

// applyOp dispatches one recovered command. Unknown kinds are ignored so
// newer logs degrade gracefully.
func (ds *DataSpread) applyOp(op txn.Op) error {
	switch op.Kind {
	case txn.OpAddSheet:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		_, err = ds.AddSheet(args[0])
		return err
	case txn.OpCellSet:
		args, err := opArgs(op, 3)
		if err != nil {
			return err
		}
		a, err := sheet.ParseAddress(args[1])
		if err != nil {
			return err
		}
		wait, err := ds.SetCellAt(args[0], a, args[2])
		if err != nil {
			return err
		}
		wait()
	case txn.OpCellValue:
		args, err := opArgs(op, 3)
		if err != nil {
			return err
		}
		a, err := sheet.ParseAddress(args[1])
		if err != nil {
			return err
		}
		v, err := decodeValue(args[2])
		if err != nil {
			return err
		}
		_, canonical, err := ds.sheetOf(args[0])
		if err != nil {
			return err
		}
		ds.engine.SetValue(canonical, a, v)()
	case txn.OpSQL:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		_, err = ds.Query(args[0])
		return err
	case txn.OpSQLScript:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		_, err = ds.QueryScript(args[0])
		return err
	case txn.OpImportTable:
		args, err := opArgs(op, 3)
		if err != nil {
			return err
		}
		_, err = ds.ImportTable(args[0], args[1], args[2])
		return err
	case txn.OpBindQuery:
		args, err := opArgs(op, 3)
		if err != nil {
			return err
		}
		a, err := sheet.ParseAddress(args[1])
		if err != nil {
			return err
		}
		_, err = ds.iface.BindQuery(args[0], a, args[2])
		return err
	case txn.OpExportRange:
		args, err := opArgs(op, 4)
		if err != nil {
			return err
		}
		_, err = ds.CreateTableFromRange(args[0], args[1], args[2], ExportOptions{
			KeepRegion: args[3] == "1",
			PrimaryKey: args[4:],
		})
		return err
	case txn.OpCreateTable:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		cols := make([]catalog.Column, 0, len(args)-1)
		for _, enc := range args[1:] {
			col, err := decodeColumn(enc)
			if err != nil {
				return err
			}
			cols = append(cols, col)
		}
		return ds.db.CreateTable(args[0], cols)
	case txn.OpInsert:
		args, err := opArgs(op, 1)
		if err != nil {
			return err
		}
		row := make([]sheet.Value, 0, len(args)-1)
		for _, enc := range args[1:] {
			v, err := decodeValue(enc)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		_, err = ds.db.Insert(args[0], row)
		return err
	}
	return nil
}

// snapshotOps synthesizes the command sequence that reconstructs the current
// workbook: sheets first, then tables with their rows, then user cells
// (bound regions are skipped — their bindings re-materialise them), then the
// bindings themselves.
func (ds *DataSpread) snapshotOps() []txn.Op {
	var ops []txn.Op
	names := ds.book.SheetNames()
	for _, name := range names {
		ops = append(ops, txn.Op{Kind: txn.OpAddSheet, Detail: name, Args: []string{name}})
	}
	for _, t := range ds.db.Tables() {
		args := []string{t.Name}
		for _, c := range t.Columns {
			args = append(args, encodeColumn(c))
		}
		ops = append(ops, txn.Op{Kind: txn.OpCreateTable, Table: t.Name, Args: args})
		_ = ds.db.Scan(t.Name, func(_ tablestore.RowID, row []sheet.Value) bool {
			rowArgs := make([]string, 0, len(row)+1)
			rowArgs = append(rowArgs, t.Name)
			for _, v := range row {
				rowArgs = append(rowArgs, encodeValue(v))
			}
			ops = append(ops, txn.Op{Kind: txn.OpInsert, Table: t.Name, Args: rowArgs})
			return true
		})
	}
	// Secondary indexes replay as their DDL (the trees rebuild from the
	// re-inserted rows above).
	for _, def := range ds.db.AllIndexes() {
		unique := ""
		if def.Unique {
			unique = "UNIQUE "
		}
		stmtText := fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)",
			unique, def.Name, def.Table, strings.Join(def.Columns, ", "))
		ops = append(ops, txn.Op{Kind: txn.OpSQL, Detail: stmtText, Args: []string{stmtText}})
	}
	for _, name := range names {
		sh, ok := ds.book.Sheet(name)
		if !ok {
			continue
		}
		used, any := sh.UsedRange()
		if !any {
			continue
		}
		sh.ForEachInRange(used, func(a sheet.Address, c sheet.Cell) {
			if c.Origin.Kind != sheet.OriginUser || c.Origin.BindingID != 0 {
				return // re-materialised by the binding snapshot below
			}
			switch {
			case c.IsFormula():
				if _, ok := isDBFormula("=" + c.Formula); ok {
					return // bindings are snapshotted explicitly
				}
				ops = append(ops, txn.Op{
					Kind:   txn.OpCellSet,
					Detail: name + "!" + a.String(),
					Args:   []string{name, a.String(), "=" + c.Formula},
				})
			case !c.Value.IsEmpty():
				ops = append(ops, txn.Op{
					Kind:   txn.OpCellValue,
					Detail: name + "!" + a.String(),
					Args:   []string{name, a.String(), encodeValue(c.Value)},
				})
			}
		})
	}
	for _, b := range ds.iface.Bindings() {
		switch b.Kind {
		case interfacemgr.KindTable:
			ops = append(ops, txn.Op{
				Kind:   txn.OpImportTable,
				Table:  b.Table,
				Detail: b.SheetName + "!" + b.Anchor.String(),
				Args:   []string{b.SheetName, b.Anchor.String(), b.Table},
			})
		case interfacemgr.KindQuery:
			ops = append(ops, txn.Op{
				Kind:   txn.OpBindQuery,
				Detail: b.SheetName + "!" + b.Anchor.String(),
				Args:   []string{b.SheetName, b.Anchor.String(), b.SQL},
			})
		}
	}
	return ops
}

// --- value and column codecs (snapshot/WAL argument strings) ---

// encodeValue renders a Value as a type-tagged string that decodeValue
// restores exactly (ParseLiteral would re-type, e.g. text "42" into a
// number). Floats use strconv's shortest round-trip form.
func encodeValue(v sheet.Value) string {
	switch v.Kind {
	case sheet.KindNumber:
		return "N" + strconv.FormatFloat(v.Num, 'g', -1, 64)
	case sheet.KindString:
		return "S" + v.Str
	case sheet.KindBool:
		if v.Bool {
			return "B1"
		}
		return "B0"
	case sheet.KindError:
		return "X" + v.Err
	default:
		return "E"
	}
}

func decodeValue(s string) (sheet.Value, error) {
	if s == "" {
		return sheet.Empty(), fmt.Errorf("empty value encoding")
	}
	body := s[1:]
	switch s[0] {
	case 'E':
		return sheet.Empty(), nil
	case 'N':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return sheet.Empty(), fmt.Errorf("bad number encoding %q: %w", s, err)
		}
		return sheet.Number(f), nil
	case 'S':
		return sheet.String_(body), nil
	case 'B':
		return sheet.Bool_(body == "1"), nil
	case 'X':
		return sheet.ErrorValue(body), nil
	default:
		return sheet.Empty(), fmt.Errorf("unknown value encoding %q", s)
	}
}

// colSep separates column fields; the unit separator never occurs in
// identifiers or type names, and the default value is kept last so SplitN
// tolerates one embedded in a string default.
const colSep = "\x1f"

func encodeColumn(c catalog.Column) string {
	notNull, pk := "0", "0"
	if c.NotNull {
		notNull = "1"
	}
	if c.PrimaryKey {
		pk = "1"
	}
	return strings.Join([]string{c.Name, c.Type.String(), notNull, pk, encodeValue(c.Default)}, colSep)
}

func decodeColumn(s string) (catalog.Column, error) {
	parts := strings.SplitN(s, colSep, 5)
	if len(parts) != 5 {
		return catalog.Column{}, fmt.Errorf("bad column encoding %q", s)
	}
	def, err := decodeValue(parts[4])
	if err != nil {
		return catalog.Column{}, err
	}
	return catalog.Column{
		Name:       parts[0],
		Type:       catalog.ParseType(parts[1]),
		NotNull:    parts[2] == "1",
		PrimaryKey: parts[3] == "1",
		Default:    def,
	}, nil
}
