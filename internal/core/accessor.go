package core

import (
	"fmt"
	"strings"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/formula"
	"github.com/dataspread/dataspread/internal/sheet"
)

// isDBFormula and dbFormulaArgs delegate to the formula package; the thin
// wrappers keep dataspread.go readable.
func isDBFormula(src string) (string, bool) { return formula.IsDBFormula(src) }

func dbFormulaArgs(src string) (string, []string, error) { return formula.DBArgs(src) }

// sheetAccessor implements sqlexec.SheetAccessor over a DataSpread workbook,
// resolving the paper's positional constructs against live sheet data.
type sheetAccessor struct {
	ds *DataSpread
}

// splitRef splits "Sheet2!B2" into sheet and reference parts; an unqualified
// reference resolves against the first sheet of the workbook.
func (sa *sheetAccessor) splitRef(ref string) (*sheet.Sheet, string, error) {
	sheetName := ""
	rest := ref
	if i := strings.Index(ref, "!"); i >= 0 {
		sheetName = ref[:i]
		rest = ref[i+1:]
	}
	if sheetName == "" {
		names := sa.ds.book.SheetNames()
		if len(names) == 0 {
			return nil, "", fmt.Errorf("core: workbook has no sheets: %w", dberr.ErrSheetNotFound)
		}
		sheetName = names[0]
	}
	sh, _, err := sa.ds.sheetOf(sheetName)
	if err != nil {
		return nil, "", err
	}
	return sh, rest, nil
}

// RangeValue implements sqlexec.SheetAccessor.
func (sa *sheetAccessor) RangeValue(ref string) (sheet.Value, error) {
	sh, rest, err := sa.splitRef(ref)
	if err != nil {
		return sheet.Empty(), err
	}
	a, err := sheet.ParseAddress(rest)
	if err != nil {
		return sheet.Empty(), fmt.Errorf("core: RANGEVALUE: %w", err)
	}
	return sh.Value(a), nil
}

// RangeTable implements sqlexec.SheetAccessor: a sheet range becomes a
// relation, with column names taken from the first row when it looks like a
// header (same heuristic as exporting a range to a table). Materialised
// ranges are cached against the sheet's version counter, so the repeated
// RANGETABLE scans of DBSQL recalculation re-read the grid only after a
// cell in the sheet actually changed.
func (sa *sheetAccessor) RangeTable(ref string, headerRow bool) ([]string, [][]sheet.Value, error) {
	sh, rest, err := sa.splitRef(ref)
	if err != nil {
		return nil, nil, err
	}
	r, err := sheet.ParseRange(rest)
	if err != nil {
		return nil, nil, fmt.Errorf("core: RANGETABLE: %w", err)
	}
	key := sh.Name() + "\x00" + rest
	if headerRow {
		key += "\x00h"
	}
	version := sh.Version()
	ds := sa.ds
	ds.rtMu.Lock()
	if e, ok := ds.rtCache[key]; ok && e.version == version {
		names, rows := e.names, e.rows
		ds.rtMu.Unlock()
		// Callers reorder and filter the top-level slice; hand out a copy
		// and keep the cached rows themselves shared read-only.
		return names, append([][]sheet.Value(nil), rows...), nil
	}
	ds.rtMu.Unlock()

	values := sh.Values(r)
	var names []string
	rows := values
	if headerRow {
		var usedHeader bool
		if names, usedHeader = catalog.HeaderNames(values); usedHeader {
			rows = values[1:]
		}
	}
	if names == nil {
		names = make([]string, r.Cols())
		for i := range names {
			names[i] = fmt.Sprintf("col%d", i+1)
		}
	}
	ds.rtMu.Lock()
	if ds.rtCache == nil {
		ds.rtCache = make(map[string]*rangeTableEntry)
	}
	if len(ds.rtCache) >= rangeTableCacheCap {
		for k := range ds.rtCache {
			delete(ds.rtCache, k)
			if len(ds.rtCache) < rangeTableCacheCap {
				break
			}
		}
	}
	ds.rtCache[key] = &rangeTableEntry{version: version, names: names, rows: rows}
	ds.rtMu.Unlock()
	return names, append([][]sheet.Value(nil), rows...), nil
}

// rangeTableCacheCap bounds the number of cached RANGETABLE snapshots.
const rangeTableCacheCap = 16

// rangeTableEntry is one cached RANGETABLE materialisation, valid while the
// sheet's version counter is unchanged.
type rangeTableEntry struct {
	version uint64
	names   []string
	rows    [][]sheet.Value
}
