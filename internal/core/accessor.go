package core

import (
	"fmt"
	"strings"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/formula"
	"github.com/dataspread/dataspread/internal/sheet"
)

// isDBFormula and dbFormulaArgs delegate to the formula package; the thin
// wrappers keep dataspread.go readable.
func isDBFormula(src string) (string, bool) { return formula.IsDBFormula(src) }

func dbFormulaArgs(src string) (string, []string, error) { return formula.DBArgs(src) }

// sheetAccessor implements sqlexec.SheetAccessor over a DataSpread workbook,
// resolving the paper's positional constructs against live sheet data.
type sheetAccessor struct {
	ds *DataSpread
}

// splitRef splits "Sheet2!B2" into sheet and reference parts; an unqualified
// reference resolves against the first sheet of the workbook.
func (sa *sheetAccessor) splitRef(ref string) (*sheet.Sheet, string, error) {
	sheetName := ""
	rest := ref
	if i := strings.Index(ref, "!"); i >= 0 {
		sheetName = ref[:i]
		rest = ref[i+1:]
	}
	if sheetName == "" {
		names := sa.ds.book.SheetNames()
		if len(names) == 0 {
			return nil, "", fmt.Errorf("core: workbook has no sheets")
		}
		sheetName = names[0]
	}
	sh, _, err := sa.ds.sheetOf(sheetName)
	if err != nil {
		return nil, "", err
	}
	return sh, rest, nil
}

// RangeValue implements sqlexec.SheetAccessor.
func (sa *sheetAccessor) RangeValue(ref string) (sheet.Value, error) {
	sh, rest, err := sa.splitRef(ref)
	if err != nil {
		return sheet.Empty(), err
	}
	a, err := sheet.ParseAddress(rest)
	if err != nil {
		return sheet.Empty(), fmt.Errorf("core: RANGEVALUE: %w", err)
	}
	return sh.Value(a), nil
}

// RangeTable implements sqlexec.SheetAccessor: a sheet range becomes a
// relation, with column names taken from the first row when it looks like a
// header (same inference as exporting a range to a table).
func (sa *sheetAccessor) RangeTable(ref string, headerRow bool) ([]string, [][]sheet.Value, error) {
	sh, rest, err := sa.splitRef(ref)
	if err != nil {
		return nil, nil, err
	}
	r, err := sheet.ParseRange(rest)
	if err != nil {
		return nil, nil, fmt.Errorf("core: RANGETABLE: %w", err)
	}
	values := sh.Values(r)
	if !headerRow {
		names := make([]string, r.Cols())
		for i := range names {
			names[i] = fmt.Sprintf("col%d", i+1)
		}
		return names, values, nil
	}
	cols, data, usedHeader := catalog.InferSchema(values)
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	if !usedHeader {
		// The caller asked for a header but the first row does not look
		// like one; fall back to positional names over all rows.
		return names, values, nil
	}
	return names, data, nil
}
