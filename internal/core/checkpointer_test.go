package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/dataspread/dataspread/internal/storage/pager"
)

// copyWorkbook snapshots the heap and WAL of a live workbook into dir,
// returning the copied workbook path — the on-disk state a crash at this
// instant would leave behind.
func copyWorkbook(t *testing.T, src, dir string) string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "book.dsp")
	for _, pair := range [][2]string{{src, dst}, {WALPath(src), WALPath(dst)}} {
		data, err := os.ReadFile(pair[0])
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(pair[1], data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// expectSeq opens a workbook and asserts table seq holds exactly 1..n.
func expectSeq(t *testing.T, path string, n int, desc string) {
	t.Helper()
	re, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatalf("%s: open: %v", desc, err)
	}
	defer re.Close()
	if errs := re.RecoveryErrors(); len(errs) != 0 {
		t.Fatalf("%s: recovery errors: %v", desc, errs)
	}
	res, err := re.Query("SELECT n FROM seq ORDER BY n")
	if err != nil {
		t.Fatalf("%s: %v", desc, err)
	}
	if len(res.Rows) != n {
		t.Fatalf("%s: %d rows, want %d", desc, len(res.Rows), n)
	}
	for i, row := range res.Rows {
		if int(row[0].Num) != i+1 {
			t.Fatalf("%s: row %d = %v, want %d", desc, i, row[0], i+1)
		}
	}
}

// TestReopenAttachesWithoutReplay is the acceptance test for page-rooted
// recovery: after a checkpoint, reopening a workbook with N committed rows
// attaches to the existing table and index pages without replaying per-row
// DML — the replayed-command count is independent of N.
func TestReopenAttachesWithoutReplay(t *testing.T) {
	const n = 400
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.QueryScript(`
		CREATE TABLE seq (n INT PRIMARY KEY, v NUMERIC);
		CREATE INDEX seq_v ON seq (v);`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d, %d)", i, i*3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// The snapshot holds only sheet-level commands (the Sheet1 creation);
	// tables and indexes attach from pages. Anything growing with N here is
	// a regression to replay-based recovery.
	if got := re.ReplayedCommands(); got > 3 {
		t.Errorf("reopen replayed %d commands, want O(1) (attach, not replay)", got)
	}
	res, err := re.Query("SELECT COUNT(n) FROM seq")
	if err != nil || res.Rows[0][0].Num != n {
		t.Fatalf("attached table: %v %v, want %d rows", res, err, n)
	}
	// The secondary index attached too (not rebuilt): the planner uses it.
	plan, err := re.Query("EXPLAIN SELECT n FROM seq WHERE v = 300")
	if err != nil {
		t.Fatal(err)
	}
	if text := plan.Rows[0][0].String(); !strings.Contains(text, "index seq_v") {
		t.Errorf("EXPLAIN after attach = %q, want the secondary index path", text)
	}

	// Contrast: the same history without a checkpoint replays per-row DML.
	path2 := filepath.Join(t.TempDir(), "book2.dsp")
	ds2, err := OpenFile(path2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds2.Query("CREATE TABLE seq (n INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if _, err := ds2.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds2.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenFile(path2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.ReplayedCommands(); got < 50 {
		t.Errorf("un-checkpointed reopen replayed %d commands, want >= 50 (sanity)", got)
	}
}

// TestBackgroundCheckpointRacesWrites drives writes through a workbook whose
// WAL threshold is tiny, so background checkpoints run concurrently with the
// write stream and with readers (this test is part of the -race CI run).
// Everything committed must survive the final reopen, and the replayed
// command count must show that checkpoints actually absorbed most history.
func TestBackgroundCheckpointRacesWrites(t *testing.T) {
	const n = 250
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{CheckpointWALBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // readers race the checkpointer and the writer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ds.Query("SELECT COUNT(n) FROM seq"); err != nil {
				t.Errorf("racing read: %v", err)
				return
			}
		}
	}()
	for i := 1; i <= n; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := ds.Close(); err != nil {
		t.Fatalf("close (includes background checkpoint errors): %v", err)
	}

	re, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Query("SELECT COUNT(n) FROM seq")
	if err != nil || int(res.Rows[0][0].Num) != n {
		t.Fatalf("after racing checkpoints: %v %v, want %d rows", res, err, n)
	}
	if got := re.ReplayedCommands(); got >= n {
		t.Errorf("replayed %d commands; background checkpoints never absorbed the WAL", got)
	}
}

// TestRootFlipAtomicKillPoints freezes the on-disk state at every stage
// boundary of a checkpoint — and with a torn root page — and proves each
// state recovers exactly the committed history: the flip is atomic, so
// recovery sees either the old root plus the full WAL or the new root.
func TestRootFlipAtomicKillPoints(t *testing.T) {
	const n1, n2 = 8, 5
	base := t.TempDir()
	path := filepath.Join(base, "book.dsp")
	ds, err := OpenFile(path, Options{CheckpointWALBytes: -1}) // manual stages only
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n1; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Checkpoint(); err != nil { // generation 1, both slots mirrored
		t.Fatal(err)
	}
	for i := n1 + 1; i <= n1+n2; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	ds.Wait()

	// Run the second checkpoint stage by stage, freezing the files at each
	// kill point.
	st, err := ds.ckptCapture()
	if err != nil {
		t.Fatal(err)
	}
	postCapture := copyWorkbook(t, path, filepath.Join(base, "post-capture"))
	if err := ds.ckptWrite(st); err != nil {
		t.Fatal(err)
	}
	preFlip := copyWorkbook(t, path, filepath.Join(base, "pre-flip"))
	if err := ds.ckptFlip(st); err != nil {
		t.Fatal(err)
	}
	postFlip := copyWorkbook(t, path, filepath.Join(base, "post-flip"))
	if err := ds.ckptAdopt(st); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	final := copyWorkbook(t, path, filepath.Join(base, "final"))

	expectSeq(t, postCapture, n1+n2, "kill post-capture")
	expectSeq(t, preFlip, n1+n2, "kill pre-flip (old root + full WAL)")
	expectSeq(t, postFlip, n1+n2, "kill post-flip (new root, stale WAL skipped)")
	expectSeq(t, final, n1+n2, "clean close")

	// Torn flip: corrupt the slot generation 2 landed in (rootSlotFor(2) =
	// slot B = page 2) on the post-flip image. Recovery must fall back to
	// the generation-1 root and replay the full WAL — same rows, no dupes.
	torn := copyWorkbook(t, postFlip, filepath.Join(base, "torn-root"))
	heap, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		heap[2*4096+20+i] ^= 0xFF // scribble over the root record payload
	}
	if err := os.WriteFile(torn, heap, 0o644); err != nil {
		t.Fatal(err)
	}
	expectSeq(t, torn, n1+n2, "torn root flip (fallback to mirrored sibling)")

	// Both root slots corrupted: the open must refuse with a clear error,
	// never serve a guess.
	dead := copyWorkbook(t, postFlip, filepath.Join(base, "dead-roots"))
	heap, err = os.ReadFile(dead)
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range []int{1, 2} {
		for i := 0; i < 8; i++ {
			heap[slot*4096+20+i] ^= 0xFF
		}
	}
	if err := os.WriteFile(dead, heap, 0o644); err != nil {
		t.Fatal(err)
	}
	if re, err := OpenFile(dead, Options{}); err == nil {
		re.Close()
		t.Fatal("open with both roots corrupt should fail")
	}
}

// TestMmapWorkbookRoundTrip: the mmap read backend serves a durable workbook
// end to end and stays format-compatible with the pread backend.
func TestMmapWorkbookRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.dsp")
	ds, err := OpenFile(path, Options{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.QueryScript(`
		CREATE TABLE seq (n INT PRIMARY KEY);
		INSERT INTO seq VALUES (1), (2), (3);`); err != nil {
		t.Fatal(err)
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 13; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with mmap, then with the plain FileStore: identical state.
	re, err := OpenFile(path, Options{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := re.Query("SELECT COUNT(n) FROM seq")
	if err != nil || int(res.Rows[0][0].Num) != 13 {
		t.Fatalf("mmap reopen: %v %v", res, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	expectSeq(t, path, 13, "pread reopen of an mmap-written workbook")
}

// TestFirstOpenCrashWindowReinitializes: a kill between the root-slot
// reservation and the gen-0 root sync leaves a heap whose only pages are
// empty (or torn) root slots. Reopening must re-initialise it — the file
// provably holds no committed data — instead of refusing it forever.
func TestFirstOpenCrashWindowReinitializes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "book.dsp")
	// Simulate the kill: a heap with slot 1 allocated but never written.
	fs, err := pager.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if id := fs.Allocate(); id != 1 {
		t.Fatalf("allocated %d, want 1", id)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatalf("open after first-open crash window: %v", err)
	}
	if _, err := ds.Query("CREATE TABLE t (x INT)"); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// A heap whose page 1 holds foreign (non-root) bytes must be refused,
	// not silently re-initialised.
	path2 := filepath.Join(dir, "legacy.dsp")
	fs2, err := pager.OpenFileStore(path2)
	if err != nil {
		t.Fatal(err)
	}
	if id := fs2.Allocate(); id != 1 {
		t.Fatalf("allocated %d, want 1", id)
	}
	if err := fs2.WritePage(1, []byte("legacy snapshot blob")); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
	if re, err := OpenFile(path2, Options{}); err == nil {
		re.Close()
		t.Fatal("open silently re-initialised a page with foreign data")
	}
}
