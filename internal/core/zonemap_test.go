package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// zoneFuzzQuery runs one query twice — zone skipping live and forced off —
// and fails on any divergence. Results are rendered to strings so the
// comparison is row-for-row and value-for-value.
func zoneFuzzQuery(t *testing.T, ds *DataSpread, q string) {
	t.Helper()
	render := func() string {
		res, err := ds.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var sb strings.Builder
		for _, row := range res.Rows {
			for _, v := range row {
				sb.WriteString(v.String())
				sb.WriteByte('|')
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	ds.db.SetForceNoSkip(true)
	want := render()
	ds.db.SetForceNoSkip(false)
	got := render()
	if want != got {
		t.Fatalf("%s: pruned scan diverges from unskipped scan:\nskipped:\n%s\nfull:\n%s", q, got, want)
	}
}

// TestZoneMapFuzz drives a fixed-seed random interleaving of inserts,
// updates, deletes, checkpoints and reopens against a durable workbook, and
// after every step asserts the two zone-map invariants: every page summary
// covers its page's decoded contents (ValidateZones), and pruned scans are
// row-for-row identical to forced-unskipped scans.
func TestZoneMapFuzz(t *testing.T) {
	const steps = 60
	rng := rand.New(rand.NewSource(20250808))
	path := filepath.Join(t.TempDir(), "fuzz.dsp")
	ds, err := OpenFile(path, Options{CheckpointWALBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ds.Close() }()
	if _, err := ds.Query("CREATE TABLE f (id NUMERIC PRIMARY KEY, ts NUMERIC, cat TEXT)"); err != nil {
		t.Fatal(err)
	}
	cats := []string{"red", "green", "blue"}
	nextID := 0
	insertBatch := func(n int) {
		vals := make([]string, n)
		for i := range vals {
			ts := nextID
			if rng.Intn(12) == 0 {
				vals[i] = fmt.Sprintf("(%d, NULL, '%s')", nextID, cats[rng.Intn(len(cats))])
			} else {
				vals[i] = fmt.Sprintf("(%d, %d, '%s')", nextID, ts, cats[rng.Intn(len(cats))])
			}
			nextID++
		}
		if _, err := ds.Query("INSERT INTO f VALUES " + strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
	}
	insertBatch(200) // seed enough rows for several sealed pages

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 3:
			insertBatch(1 + rng.Intn(60))
		case op < 5:
			id := rng.Intn(nextID)
			ts := rng.Intn(3 * nextID) // often far outside the page's old zone
			if _, err := ds.Query(fmt.Sprintf("UPDATE f SET ts = %d WHERE id = %d", ts, id)); err != nil {
				t.Fatal(err)
			}
		case op < 7:
			lo := rng.Intn(nextID)
			if _, err := ds.Query(fmt.Sprintf("DELETE FROM f WHERE ts BETWEEN %d AND %d", lo, lo+rng.Intn(25))); err != nil {
				t.Fatal(err)
			}
		case op < 9:
			if err := ds.Checkpoint(); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
		default:
			if err := ds.Close(); err != nil {
				t.Fatalf("step %d: close: %v", step, err)
			}
			ds, err = OpenFile(path, Options{CheckpointWALBytes: -1})
			if err != nil {
				t.Fatalf("step %d: reopen: %v", step, err)
			}
		}
		if err := ds.db.ValidateZones(); err != nil {
			t.Fatalf("step %d: summary does not cover its page: %v", step, err)
		}
		c := rng.Intn(nextID + 10)
		for _, q := range []string{
			fmt.Sprintf("SELECT COUNT(id) FROM f WHERE ts = %d", c),
			fmt.Sprintf("SELECT id, cat FROM f WHERE ts < %d ORDER BY id", rng.Intn(nextID/4+1)),
			fmt.Sprintf("SELECT COUNT(id) FROM f WHERE ts >= %d", c),
			fmt.Sprintf("SELECT id FROM f WHERE ts BETWEEN %d AND %d ORDER BY id", c, c+30),
		} {
			zoneFuzzQuery(t, ds, q)
		}
	}
}

// TestZoneBlobCorruptionDegrades is the fault contract of the advisory zone
// catalog: a corrupted (or garbage) zone-page blob on disk must degrade the
// reopened workbook to "no page skipping" — open succeeds, Health stays nil,
// queries stay correct — and the next checkpoint restores skipping.
func TestZoneBlobCorruptionDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zone.dsp")
	ds, err := OpenFile(path, Options{CheckpointWALBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Query("CREATE TABLE z (id NUMERIC PRIMARY KEY, ts NUMERIC)"); err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < 1000; lo += 100 {
		vals := make([]string, 100)
		for i := range vals {
			vals[i] = fmt.Sprintf("(%d, %d)", lo+i, lo+i)
		}
		if _, err := ds.Query("INSERT INTO z VALUES " + strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Locate the committed root's zone page and stomp it with garbage.
	be, err := pager.OpenFileStoreVFS(vfs.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	root, _, fresh := loadRoots(be)
	if fresh {
		t.Fatal("no valid root after checkpoint")
	}
	if root.zonePage == 0 {
		t.Fatal("checkpoint recorded no zone page")
	}
	if err := be.WritePage(root.zonePage, []byte("this is not a zone catalog")); err != nil {
		t.Fatal(err)
	}
	if err := be.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, Options{CheckpointWALBytes: -1})
	if err != nil {
		t.Fatalf("reopen with corrupt zone blob failed: %v", err)
	}
	defer func() { _ = re.Close() }()
	if herr := re.Health(); herr != nil {
		t.Fatalf("corrupt zone blob poisoned the workbook: %v", herr)
	}
	if errs := re.RecoveryErrors(); len(errs) != 0 {
		t.Fatalf("corrupt zone blob surfaced recovery errors: %v", errs)
	}
	res, err := re.Query("SELECT COUNT(id) FROM z WHERE ts >= 900")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].String(); got != "100" {
		t.Fatalf("query after corrupt zone blob = %s rows, want 100", got)
	}
	// The degraded workbook must not be skipping: the selective scan reads
	// every page.
	re.db.ResetScanStats()
	if _, err := re.Query("SELECT COUNT(id) FROM z WHERE ts = 950"); err != nil {
		t.Fatal(err)
	}
	if _, skipped := re.db.ScanStats(); skipped != 0 {
		t.Fatalf("workbook skipped %d pages from a corrupt zone catalog", skipped)
	}
	// Summaries rebuild as pages are rewritten: touch every row, checkpoint,
	// and the next reopen prunes again.
	if _, err := re.Query("UPDATE z SET ts = ts"); err != nil {
		t.Fatal(err)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenFile(path, Options{CheckpointWALBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re2.Close() }()
	re2.db.ResetScanStats()
	if _, err := re2.Query("SELECT COUNT(id) FROM z WHERE ts = 950"); err != nil {
		t.Fatal(err)
	}
	if _, skipped := re2.db.ScanStats(); skipped == 0 {
		t.Fatal("re-checkpointed workbook prunes nothing")
	}
	if err := re2.db.ValidateZones(); err != nil {
		t.Fatal(err)
	}
}
