package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/storage/vfs"
)

const sweepRows = 10

// sweepOutcome describes one run of the fixed sweep workload.
type sweepOutcome struct {
	created bool   // CREATE TABLE acknowledged
	acked   int    // highest insert acknowledged with a nil error
	err     error  // first surfaced error
	site    string // where it surfaced
}

// runSweepWorkload executes the fixed workload against fsys: open, create a
// table, insert rows 1..6, checkpoint, insert rows 7..10, close. It stops
// issuing commands at the first error; while the workbook is still open it
// checks the degraded-mode contract (writes rejected, reads served) before
// closing.
func runSweepWorkload(t *testing.T, path string, fsys vfs.FS, label string) sweepOutcome {
	t.Helper()
	var out sweepOutcome
	ds, err := OpenFile(path, Options{FS: fsys, CheckpointWALBytes: -1})
	if err != nil {
		out.err, out.site = err, "open"
		return out
	}
	fail := func(site string, err error) bool {
		if err == nil {
			return false
		}
		if out.err == nil {
			out.err, out.site = err, site
		}
		return true
	}
	_, err = ds.Query("CREATE TABLE t (id NUMERIC PRIMARY KEY, v TEXT)")
	if !fail("create", err) {
		out.created = true
		for i := 1; i <= sweepRows; i++ {
			if i == 7 {
				if fail("checkpoint", ds.Checkpoint()) {
					break
				}
			}
			_, err := ds.Query(fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", i, i))
			if fail(fmt.Sprintf("insert-%d", i), err) {
				break
			}
			out.acked = i
		}
	}
	if out.err != nil {
		probeDegraded(t, ds, out, label)
	}
	if cErr := ds.Close(); cErr != nil && out.err == nil {
		out.err, out.site = cErr, "close"
	}
	return out
}

// probeDegraded checks the degraded-mode contract on a workbook that
// surfaced an error and is still open: if it poisoned itself, every write
// must be rejected with ErrReadOnly while reads keep serving the in-memory
// state; if it stayed healthy (a transient failure that rolled up cleanly,
// like a checkpoint that touched nothing durable), Health must be clean.
func probeDegraded(t *testing.T, ds *DataSpread, out sweepOutcome, label string) {
	t.Helper()
	if !ds.isPoisoned() {
		if herr := ds.Health(); herr != nil {
			t.Errorf("%s: healthy workbook Health() = %v, want nil", label, herr)
		}
		return
	}
	herr := ds.Health()
	if herr == nil || !errors.Is(herr, dberr.ErrReadOnly) || !errors.Is(herr, dberr.ErrIO) {
		t.Errorf("%s: poisoned Health() = %v, want ErrReadOnly wrapping ErrIO", label, herr)
	}
	// The write probe must survive statement analysis even when table t was
	// never created, so it creates a fresh table instead of inserting.
	probe := "CREATE TABLE probe_t (x NUMERIC)"
	if out.created {
		probe = "INSERT INTO t VALUES (99, 'probe')"
	}
	if _, err := ds.Query(probe); err == nil || !errors.Is(err, dberr.ErrReadOnly) {
		t.Errorf("%s: write on poisoned workbook = %v, want ErrReadOnly", label, err)
	}
	if out.created {
		res, err := ds.Query("SELECT id FROM t")
		if err != nil {
			t.Errorf("%s: read on poisoned workbook failed: %v", label, err)
		} else if n := len(res.Rows); n < out.acked || n > out.acked+1 {
			// A failed insert may have left one partial in-memory row; it can
			// never have dropped an acknowledged one.
			t.Errorf("%s: poisoned read shows %d rows, want %d..%d", label, n, out.acked, out.acked+1)
		}
	}
}

// verifySweepReopen reopens the workbook on the real filesystem (the fault is
// gone — the "disk" recovered) and asserts the recovery contract: the open
// succeeds, and table t holds exactly a contiguous committed prefix 1..m with
// m >= every acknowledged insert. m may exceed the acknowledged count: a
// commit whose WAL frame reached the file before the failure was never
// acknowledged, but recovering it keeps the prefix property.
func verifySweepReopen(t *testing.T, path string, out sweepOutcome, label string) {
	t.Helper()
	re, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatalf("%s: reopen after fault failed: %v", label, err)
	}
	if errs := re.RecoveryErrors(); len(errs) != 0 {
		t.Errorf("%s: recovery errors on reopen: %v", label, errs)
	}
	res, err := re.Query("SELECT id FROM t ORDER BY id")
	if err != nil {
		// Only legal if the CREATE was never acknowledged (and its WAL frame
		// never reached the file).
		if out.created || !errors.Is(err, dberr.ErrTableNotFound) {
			t.Fatalf("%s: reopen query = %v (created=%v)", label, err, out.created)
		}
	} else {
		m := len(res.Rows)
		if m < out.acked || m > sweepRows {
			t.Fatalf("%s: reopen recovered %d rows, want %d..%d", label, m, out.acked, sweepRows)
		}
		for i, row := range res.Rows {
			if int(row[0].Num) != i+1 {
				t.Fatalf("%s: reopen row %d = %v, want %d (recovered set is not a contiguous prefix)", label, i, row[0], i+1)
			}
		}
	}
	if err := re.Close(); err != nil {
		t.Fatalf("%s: close reopened workbook: %v", label, err)
	}
}

// TestSingleFaultSweep is the exhaustive single-fault sweep: it counts the
// mutating filesystem operations of a fixed workload, then re-runs the
// workload once per operation index k with the k-th operation failing — with
// EIO, with ENOSPC, and as a torn sector-sized write — and asserts the fault
// contract after every single injection:
//
//  1. any surfaced error is classified under dberr.ErrIO (and dberr.ErrDiskFull
//     for ENOSPC), never a raw errno;
//  2. a workbook that poisoned itself rejects writes with ErrReadOnly while
//     still serving reads (probeDegraded), and a failed fsync never turns
//     into a silently successful run (fsync-gate);
//  3. reopening on a healthy filesystem succeeds and recovers exactly a
//     contiguous committed prefix — at least every acknowledged insert, never
//     a gap, never an invented row.
func TestSingleFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is long; skipped with -short")
	}
	// Count run: no fault armed, same workload.
	count := vfs.NewFaultFS(nil)
	base := runSweepWorkload(t, filepath.Join(t.TempDir(), "book.dsp"), count, "count-run")
	if base.err != nil {
		t.Fatalf("count run failed at %s: %v", base.site, base.err)
	}
	if base.acked != sweepRows {
		t.Fatalf("count run acked %d rows, want %d", base.acked, sweepRows)
	}
	n := count.Ops()
	if n < 20 {
		t.Fatalf("count run used %d mutating ops; workload too small for a meaningful sweep", n)
	}
	t.Logf("sweeping %d mutating filesystem ops × 3 fault flavours", n)

	flavours := []struct {
		name  string
		fault vfs.Fault
	}{
		{"eio", vfs.Fault{Err: syscall.EIO}},
		{"enospc", vfs.Fault{Err: syscall.ENOSPC}},
		{"torn", vfs.Fault{Err: syscall.EIO, TornBytes: 512}},
	}
	for _, fl := range flavours {
		fl := fl
		t.Run(fl.name, func(t *testing.T) {
			for k := int64(1); k <= n; k++ {
				label := fmt.Sprintf("%s@op%d", fl.name, k)
				ffs := vfs.NewFaultFS(nil)
				f := fl.fault
				f.Op = k
				ffs.SetFault(f)
				path := filepath.Join(t.TempDir(), "book.dsp")
				out := runSweepWorkload(t, path, ffs, label)
				op, hitPath, hit := ffs.Hit()
				if !hit {
					t.Fatalf("%s: fault never fired (fault run used fewer ops than the count run)", label)
				}
				if out.err != nil {
					if !errors.Is(out.err, dberr.ErrIO) {
						t.Errorf("%s (%s on %s): error at %s not ErrIO-classified: %v", label, op, hitPath, out.site, out.err)
					}
					if fl.name == "enospc" && !errors.Is(out.err, dberr.ErrDiskFull) {
						t.Errorf("%s (%s on %s): ENOSPC at %s not ErrDiskFull-classified: %v", label, op, hitPath, out.site, out.err)
					}
				} else if op == vfs.OpSync {
					// fsync-gate: a failed fsync must never be absorbed into a
					// fully successful run.
					t.Errorf("%s: failed fsync on %s surfaced no error anywhere", label, hitPath)
				}
				verifySweepReopen(t, path, out, label)
			}
		})
	}
}
