// Background shadow-paged checkpoints.
//
// A checkpoint moves durability work off the write path: commands only pay
// for their WAL append, and a background goroutine — nudged whenever the WAL
// grows past a size threshold — periodically captures the workbook and makes
// the page file the source of truth up to a watermark LSN.
//
// The protocol is shadow-paged end to end, in four stages:
//
//	capture  (under cmdMu) flush the buffer pool — copy-on-write relocates
//	         every dirty page that the durable root references to a fresh
//	         page — then serialize the page catalog, the sheet snapshot and
//	         the watermark. Nothing the old root references was touched.
//	write    (off-lock)    write the two blobs to fresh pages and sync.
//	flip     (off-lock)    write the next root — generation+1, watermark,
//	         blob pages — into the ping-pong slot the previous root does
//	         NOT occupy, and sync. This single page write is the commit
//	         point: a crash before it recovers the old root plus the full
//	         WAL; after it, the new root plus the WAL tail above the
//	         watermark.
//	adopt    (post-commit) mirror the root into the sibling slot, promote
//	         the pool's pending protection set to durable (freeing pages
//	         only the old root referenced), release the old blob pages, and
//	         compact the WAL through the watermark — concurrent appends
//	         above it survive.
//
// Writers keep running during write/flip/adopt; only capture excludes them,
// and it performs no fsync. Close and Checkpoint drain the background
// goroutine deterministically.
package core

import (
	"fmt"
	"time"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/txn"
)

// defaultCheckpointWALBytes is the WAL size that triggers a background
// checkpoint when Options.CheckpointWALBytes is zero.
const defaultCheckpointWALBytes = 4 << 20

// Background checkpoint retry policy: a transient failure (anything except a
// failed fsync or a poisoned workbook) is retried with doubling backoff, up
// to ckptRetryMax attempts per trigger.
const (
	ckptRetryMax         = 3
	defaultCkptRetryBase = 50 * time.Millisecond
	ckptRetryCap         = 2 * time.Second
)

// ckptState carries one checkpoint through its stages.
type ckptState struct {
	watermark uint64
	metaBlob  []byte
	snapBlob  []byte
	zoneBlob  []byte
	dataPages []pager.PageID
	metaPage  pager.PageID
	snapPage  pager.PageID
	zonePage  pager.PageID
	prevMeta  pager.PageID
	prevSnap  pager.PageID
	prevZone  pager.PageID
}

// startCheckpointer launches the background goroutine. A negative threshold
// disables it (explicit Checkpoint still works).
func (ds *DataSpread) startCheckpointer() {
	if ds.ckptThreshold < 0 {
		return
	}
	ds.ckptTrigger = make(chan struct{}, 1)
	ds.ckptStop = make(chan struct{})
	ds.ckptDone = make(chan struct{})
	stop, trigger, done := ds.ckptStop, ds.ckptTrigger, ds.ckptDone
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-trigger:
				ds.runCheckpointWithRetry(stop)
			}
		}
	}()
}

// runCheckpointWithRetry drives one triggered background checkpoint to
// success, a permanent failure, or retry exhaustion. Transient failures (a
// rejected write, ENOSPC on an allocation) back off and retry: the condition
// may clear. Durability-class failures — a failed fsync (the kernel may have
// dropped the dirty pages; fsync-gate) or a commit-uncertain root flip — are
// never retried; checkpointOnce has already poisoned the workbook for the
// flip case and the heap's own sync latch refuses retries for the rest.
// The outcome lands in ckptErr, where Health exposes it and the next
// explicit Checkpoint or Close consumes it; a success clears it.
func (ds *DataSpread) runCheckpointWithRetry(stop <-chan struct{}) {
	backoff := ds.ckptRetryBase
	if backoff <= 0 {
		backoff = defaultCkptRetryBase
	}
	var err error
	for attempt := 0; attempt < ckptRetryMax; attempt++ {
		if attempt > 0 {
			select {
			case <-stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > ckptRetryCap {
				backoff = ckptRetryCap
			}
		}
		err = ds.checkpointOnce()
		if err == nil || isSyncFault(err) || ds.isPoisoned() {
			break
		}
	}
	ds.ckptErrMu.Lock()
	ds.ckptErr = err
	ds.ckptErrMu.Unlock()
}

// stopCheckpointer signals the goroutine and waits for any in-flight
// checkpoint to finish. Safe to call twice.
func (ds *DataSpread) stopCheckpointer() {
	ds.ckptErrMu.Lock()
	stop := ds.ckptStop
	ds.ckptStop = nil
	ds.ckptErrMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-ds.ckptDone
}

// maybeTriggerCheckpoint nudges the background goroutine when the WAL has
// outgrown the threshold. Non-blocking: a nudge while a checkpoint runs
// coalesces into the single buffered slot.
func (ds *DataSpread) maybeTriggerCheckpoint() {
	if ds.ckptTrigger == nil || ds.ckptThreshold <= 0 || ds.wal == nil || ds.isPoisoned() {
		return
	}
	if ds.wal.LogSize() < ds.ckptThreshold {
		return
	}
	select {
	case ds.ckptTrigger <- struct{}{}:
	default:
	}
}

// checkpointOnce runs one full checkpoint. ckptMu serialises explicit
// Checkpoint calls with the background goroutine — whichever enters second
// waits, so "Checkpoint returned" always means "no checkpoint in flight".
func (ds *DataSpread) checkpointOnce() error {
	ds.ckptMu.Lock()
	defer ds.ckptMu.Unlock()
	if err := ds.checkWritable(); err != nil {
		return fmt.Errorf("core: checkpoint skipped: %w", err)
	}
	ds.Wait()
	st, err := ds.ckptCapture()
	if err != nil {
		return err
	}
	if err := ds.ckptWrite(st); err != nil {
		ds.ckptAbort(st)
		return err
	}
	if err := ds.ckptFlip(st); err != nil {
		// Commit-uncertain: the new root-slot write may have reached disk
		// even though the sync (or the write itself) reported failure, so
		// the blob pages and captured data pages must NOT be freed or
		// unprotected — a reopen could legitimately choose that root. The
		// scratch pages leak until the next open sweeps them. With two
		// roots both plausibly current and no way to learn which one disk
		// holds, no further write can be known consistent: poison.
		ds.poison(err)
		return err
	}
	return ds.ckptAdopt(st)
}

// ckptCapture is the only stage that excludes writers: it flushes the pool
// (copy-on-write keeps the durable image intact), serializes the catalog and
// sheet snapshot, and records the watermark. No fsync happens here.
func (ds *DataSpread) ckptCapture() (*ckptState, error) {
	ds.cmdMu.Lock()
	defer ds.cmdMu.Unlock()
	if ds.wal == nil {
		return nil, fmt.Errorf("core: checkpoint requires a durable workbook: %w", dberr.ErrUnsupported)
	}
	pool := ds.db.Pool()
	if err := pool.FlushAll(); err != nil {
		return nil, fmt.Errorf("core: checkpoint flush: %w", err)
	}
	st := &ckptState{watermark: ds.wal.LastLSN()}
	st.metaBlob = ds.db.MarshalPages()
	st.zoneBlob = ds.db.MarshalZones()
	st.snapBlob = txn.EncodeRecords([]txn.Record{{LSN: st.watermark, Ops: ds.snapshotOps()}})
	st.dataPages = ds.db.DurablePageIDs()
	pool.BeginCheckpoint(st.dataPages)
	return st, nil
}

// ckptWrite lands the catalog and snapshot blobs on fresh pages and syncs.
// Old state is untouched; a crash here only leaks pages, which the next open
// sweeps.
func (ds *DataSpread) ckptWrite(st *ckptState) error {
	be := ds.backend
	if st.metaPage = be.Allocate(); st.metaPage == pager.InvalidPage {
		return allocErr(be)
	}
	if st.snapPage = be.Allocate(); st.snapPage == pager.InvalidPage {
		return allocErr(be)
	}
	if err := be.WritePage(st.metaPage, st.metaBlob); err != nil {
		return fmt.Errorf("core: write page catalog: %w", err)
	}
	if err := be.WritePage(st.snapPage, st.snapBlob); err != nil {
		return fmt.Errorf("core: write sheet snapshot: %w", err)
	}
	// The zone-map catalog is advisory: a reopen without it just rebuilds
	// summaries lazily. So its page is best-effort — an allocation or write
	// failure drops the blob from this checkpoint instead of failing it.
	// (A latched backend I/O error still surfaces at the Sync below, exactly
	// as it would for the mandatory blobs.)
	if st.zonePage = be.Allocate(); st.zonePage != pager.InvalidPage {
		if err := be.WritePage(st.zonePage, st.zoneBlob); err != nil {
			be.Free(st.zonePage)
			st.zonePage = 0
		}
	} else {
		st.zonePage = 0
	}
	if err := be.Sync(); err != nil {
		return fmt.Errorf("core: sync checkpoint pages: %w", err)
	}
	return nil
}

// ckptFlip atomically commits the checkpoint: one root-slot write plus sync.
func (ds *DataSpread) ckptFlip(st *ckptState) error {
	newRoot := rootInfo{
		gen:       ds.root.gen + 1,
		watermark: st.watermark,
		metaPage:  st.metaPage,
		snapPage:  st.snapPage,
		zonePage:  st.zonePage,
	}
	if err := writeRoot(ds.backend, rootSlotFor(newRoot.gen), newRoot); err != nil {
		return err
	}
	if err := ds.backend.Sync(); err != nil {
		return fmt.Errorf("core: sync root flip: %w", err)
	}
	// Commit point passed: from here on the checkpoint is durable.
	st.prevMeta, st.prevSnap, st.prevZone = ds.root.metaPage, ds.root.snapPage, ds.root.zonePage
	ds.root = newRoot
	return nil
}

// ckptAdopt runs after the commit point: mirror the root into the sibling
// slot (so one later page corruption cannot resurrect the stale root),
// promote the pool's protection set, free the previous blob pages, and
// compact the WAL through the watermark.
func (ds *DataSpread) ckptAdopt(st *ckptState) error {
	var firstErr error
	other := rootSlotA
	if rootSlotFor(ds.root.gen) == rootSlotA {
		other = rootSlotB
	}
	if err := writeRoot(ds.backend, other, ds.root); err != nil {
		firstErr = err
	} else if err := ds.backend.Sync(); err != nil {
		firstErr = fmt.Errorf("core: sync root mirror: %w", err)
	}
	ds.db.Pool().CommitCheckpoint()
	if st.prevMeta != 0 {
		ds.backend.Free(st.prevMeta)
	}
	if st.prevSnap != 0 {
		ds.backend.Free(st.prevSnap)
	}
	if st.prevZone != 0 {
		ds.backend.Free(st.prevZone)
	}
	if err := ds.wal.TruncateThrough(st.watermark); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("core: compact WAL: %w", err)
	}
	return firstErr
}

// allocErr classifies a failed checkpoint page allocation: the backend's
// recorded I/O failure when it has one (a FileStore latches the slot-write
// error), otherwise a broken invariant.
func allocErr(be pager.Backend) error {
	if e, ok := be.(interface{ Err() error }); ok {
		if err := e.Err(); err != nil {
			return fmt.Errorf("core: checkpoint: page allocation failed: %w", err)
		}
	}
	return fmt.Errorf("core: checkpoint: page allocation failed: %w", dberr.ErrInternal)
}

// ckptAbort rolls back a checkpoint that failed before any root-slot write
// was attempted: the pool's pending protections lift and the scratch blob
// pages are freed. It must not run after ckptFlip has started — once a root
// write may have landed, nothing the new root references can be released.
func (ds *DataSpread) ckptAbort(st *ckptState) {
	ds.db.Pool().AbortCheckpoint()
	if st.metaPage != 0 {
		ds.backend.Free(st.metaPage)
	}
	if st.snapPage != 0 {
		ds.backend.Free(st.snapPage)
	}
	if st.zonePage != 0 {
		ds.backend.Free(st.zonePage)
	}
}
