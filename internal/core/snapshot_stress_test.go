package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// TestSnapshotReadersUnderWriterAndCheckpointChurn is the concurrency stress
// for the snapshot-read path: parallel and streaming readers run against a
// durable workbook while a writer churns rows and explicit checkpoints
// relocate pages copy-on-write, all under -race. Every observed row must be
// internally coherent — the writer maintains qty == 2*id in every version it
// ever writes, so a torn or mixed-version row surfaces as a violated
// invariant — and the pool must end with no pinned epochs or retained
// versions once the readers drain.
func TestSnapshotReadersUnderWriterAndCheckpointChurn(t *testing.T) {
	const rows = 6000
	path := filepath.Join(t.TempDir(), "stress.dsp")
	ds, err := OpenFile(path, Options{Workers: 4, CheckpointWALBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	if _, err := ds.Query(`CREATE TABLE t (id NUMBER PRIMARY KEY, qty NUMBER, tag STRING)`); err != nil {
		t.Fatal(err)
	}
	db := ds.DB()
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("t", []sheet.Value{
			sheet.Number(float64(i)), sheet.Number(float64(i * 2)), sheet.String_("x"),
		}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	fail := make(chan error, 16)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}

	// Churn: a writer rewriting rows (tag changes every pass, qty keeps the
	// invariant) and a checkpointer relocating durable pages copy-on-write
	// and freeing superseded blobs while snapshots are pinned.
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := i % rows
			if err := db.Update("t", tablestore.RowID(n+1), []sheet.Value{
				sheet.Number(float64(n)), sheet.Number(float64(n * 2)), sheet.String_(fmt.Sprintf("w%d", i)),
			}); err != nil {
				report(fmt.Errorf("writer: %w", err))
				return
			}
		}
	}()
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := ds.Checkpoint(); err != nil {
				report(fmt.Errorf("checkpoint: %w", err))
				return
			}
		}
	}()

	// Readers: materialising parallel scans + aggregation, plus the
	// lock-free streaming path. Bounded passes; churn stops when they drain.
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			sess := db.NewSession(nil)
			for pass := 0; pass < 8; pass++ {
				res, err := sess.Query(`SELECT id, qty FROM t`)
				if err != nil {
					report(fmt.Errorf("reader: %w", err))
					return
				}
				if len(res.Rows) != rows {
					report(fmt.Errorf("reader saw %d rows, want %d", len(res.Rows), rows))
					return
				}
				for _, row := range res.Rows {
					if row[1].Num != row[0].Num*2 {
						report(fmt.Errorf("torn row: id=%v qty=%v", row[0], row[1]))
						return
					}
				}
				if _, err := sess.Query(`SELECT COUNT(*), SUM(qty) FROM t`); err != nil {
					report(fmt.Errorf("reader agg: %w", err))
					return
				}
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		sess := db.NewSession(nil)
		for pass := 0; pass < 8; pass++ {
			it, err := sess.QueryStream(context.Background(), `SELECT id, qty FROM t`)
			if err != nil {
				report(fmt.Errorf("stream reader: %w", err))
				return
			}
			n := 0
			for it.Next() {
				row := it.Row()
				if row[1].Num != row[0].Num*2 {
					report(fmt.Errorf("stream torn row: id=%v qty=%v", row[0], row[1]))
					it.Close()
					return
				}
				n++
			}
			if err := it.Err(); err != nil {
				report(fmt.Errorf("stream reader: %w", err))
				return
			}
			if n != rows {
				report(fmt.Errorf("stream reader saw %d rows, want %d", n, rows))
				return
			}
		}
	}()

	readers.Wait()
	close(stop)
	churn.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	if pinned, retained := db.EpochStats(); pinned != 0 || retained != 0 {
		t.Fatalf("EpochStats after drain = (%d, %d), want (0, 0)", pinned, retained)
	}
}
