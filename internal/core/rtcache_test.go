package core

import (
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

// TestRangeTableCacheInvalidation verifies the version-stamped RANGETABLE
// cache: repeated queries reuse the materialised snapshot, and any cell edit
// on the sheet invalidates it so the next query sees the new data.
func TestRangeTableCacheInvalidation(t *testing.T) {
	ds := New(Options{})
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), [][]sheet.Value{
		{sheet.String_("name"), sheet.String_("score")},
		{sheet.String_("ada"), sheet.Number(99)},
		{sheet.String_("bob"), sheet.Number(50)},
	})
	const q = "SELECT name FROM RANGETABLE(A1:B3) WHERE score > 90"
	res, err := ds.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "ada" {
		t.Fatalf("initial query rows = %v", res.Rows)
	}
	// Cached re-run.
	if res, err = ds.Query(q); err != nil || len(res.Rows) != 1 {
		t.Fatalf("cached query rows = %v err = %v", res.Rows, err)
	}
	// Edit a cell inside the range: the snapshot must be rebuilt.
	if w, err := ds.SetCell("Sheet1", "B3", "95"); err != nil {
		t.Fatal(err)
	} else {
		w()
	}
	if res, err = ds.Query(q); err != nil {
		t.Fatal(err)
	} else if len(res.Rows) != 2 {
		t.Fatalf("after edit: rows = %v, want ada and bob", res.Rows)
	}
	// Repeated queries must not corrupt the cached snapshot through the
	// executor's in-place filtering.
	for i := 0; i < 3; i++ {
		if res, err = ds.Query(q); err != nil || len(res.Rows) != 2 {
			t.Fatalf("stability run %d: rows = %v err = %v", i, res.Rows, err)
		}
	}
}

// TestDBSQLBindingReuse verifies that re-entering the same DBSQL formula at
// the same cell refreshes the existing binding instead of stacking new ones,
// and that a different formula replaces it.
func TestDBSQLBindingReuse(t *testing.T) {
	ds := New(Options{})
	if _, err := ds.Query("CREATE TABLE v (id INT PRIMARY KEY, x INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Query("INSERT INTO v VALUES (1, 10), (2, 20)"); err != nil {
		t.Fatal(err)
	}
	set := func(formula string) {
		t.Helper()
		w, err := ds.SetCell("Sheet1", "D1", formula)
		if err != nil {
			t.Fatal(err)
		}
		w()
	}
	set(`=DBSQL("SELECT x FROM v ORDER BY id")`)
	set(`=DBSQL("SELECT x FROM v ORDER BY id")`)
	set(`=DBSQL("SELECT x FROM v ORDER BY id")`)
	if n := len(ds.Interface().Bindings()); n != 1 {
		t.Fatalf("re-entered formula left %d bindings, want 1", n)
	}
	if got, _ := ds.Get("Sheet1", "D2"); got.String() != "10" {
		t.Fatalf("spill D2 = %q", got.String())
	}
	// A different query at the same anchor replaces the binding.
	set(`=DBSQL("SELECT id FROM v ORDER BY id")`)
	if n := len(ds.Interface().Bindings()); n != 1 {
		t.Fatalf("replacement left %d bindings, want 1", n)
	}
	if got, _ := ds.Get("Sheet1", "D2"); got.String() != "1" {
		t.Fatalf("replaced spill D2 = %q", got.String())
	}
}
