package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/dataspread/dataspread/internal/storage/pager"
)

// Checkpoint root pages. A workbook file reserves its first two pages as a
// ping-pong pair of root slots. Each slot is a tiny, CRC-protected record
// naming the current checkpoint: a generation number, the WAL watermark the
// checkpoint covers, and the pages holding the page-catalog blob
// (sqlexec.MarshalPages) and the sheet-snapshot blob (txn.EncodeRecords of
// the non-relational commands).
//
// The pair is what makes checkpoints shadow-paged end to end: a checkpoint
// writes all of its content — relocated data pages, catalog blob, snapshot
// blob — to fresh pages, syncs, and only then writes the next root into ONE
// slot and syncs again. That single slot write is the commit point. A crash
// at any moment leaves at least one slot intact: before the flip the old
// root still names the old, untouched pages (plus the full WAL tail); a torn
// flip fails the new slot's CRC and recovery falls back to the other slot.
// After the flip commits, the new root is mirrored into the second slot so
// both name the current checkpoint and a later single-page corruption cannot
// silently resurrect a stale root.
const (
	rootSlotA pager.PageID = 1
	rootSlotB pager.PageID = 2

	rootRecordSize = 52
)

var rootMagic = [8]byte{'D', 'S', 'R', 'O', 'O', 'T', '0', '1'}

// rootInfo is the decoded content of a root slot. The zero value (gen 0, no
// pages) is the state of a fresh workbook before its first checkpoint.
type rootInfo struct {
	gen       uint64
	watermark uint64       // WAL records with LSN <= watermark are inside the checkpoint
	metaPage  pager.PageID // page-catalog blob (0 = none)
	snapPage  pager.PageID // sheet-snapshot blob (0 = none)
	zonePage  pager.PageID // zone-map catalog blob (0 = none; advisory — see sqlexec.AttachZones)
}

// rootSlotFor returns the slot a given generation is written to; successive
// generations alternate so the previous root is never overwritten mid-flip.
func rootSlotFor(gen uint64) pager.PageID {
	if gen%2 == 1 {
		return rootSlotA
	}
	return rootSlotB
}

func encodeRoot(r rootInfo) []byte {
	buf := make([]byte, rootRecordSize)
	copy(buf[0:8], rootMagic[:])
	binary.LittleEndian.PutUint64(buf[8:16], r.gen)
	binary.LittleEndian.PutUint64(buf[16:24], r.watermark)
	binary.LittleEndian.PutUint64(buf[24:32], uint64(r.metaPage))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(r.snapPage))
	binary.LittleEndian.PutUint64(buf[40:48], uint64(r.zonePage))
	binary.LittleEndian.PutUint32(buf[48:52], crc32.ChecksumIEEE(buf[0:48]))
	return buf
}

func decodeRoot(buf []byte) (rootInfo, bool) {
	if len(buf) < rootRecordSize || [8]byte(buf[0:8]) != rootMagic {
		return rootInfo{}, false
	}
	if crc32.ChecksumIEEE(buf[0:48]) != binary.LittleEndian.Uint32(buf[48:52]) {
		return rootInfo{}, false
	}
	return rootInfo{
		gen:       binary.LittleEndian.Uint64(buf[8:16]),
		watermark: binary.LittleEndian.Uint64(buf[16:24]),
		metaPage:  pager.PageID(binary.LittleEndian.Uint64(buf[24:32])),
		snapPage:  pager.PageID(binary.LittleEndian.Uint64(buf[32:40])),
		zonePage:  pager.PageID(binary.LittleEndian.Uint64(buf[40:48])),
	}, true
}

// readRoot loads and validates one root slot; a missing page or failed CRC
// reports !ok rather than an error (the caller decides whether the sibling
// slot can serve).
func readRoot(be pager.Backend, slot pager.PageID) (rootInfo, bool) {
	if !be.Exists(slot) {
		return rootInfo{}, false
	}
	buf, err := be.ReadPage(slot)
	if err != nil {
		return rootInfo{}, false
	}
	return decodeRoot(buf)
}

// dslint:critical
func writeRoot(be pager.Backend, slot pager.PageID, r rootInfo) error {
	if err := be.WritePage(slot, encodeRoot(r)); err != nil {
		return fmt.Errorf("core: write root slot %d: %w", slot, err)
	}
	return nil
}

// loadRoots reads both slots and returns the newest valid root. staleSlot
// names the sibling slot that does NOT hold a valid copy of that root (0
// when both slots agree) — the open path re-mirrors it, and only it: the
// slot holding the sole valid root is never rewritten in place, so a crash
// during the re-mirror can never tear the last good copy. fresh reports
// that neither slot held a valid root (a brand-new workbook file).
func loadRoots(be pager.Backend) (root rootInfo, staleSlot pager.PageID, fresh bool) {
	ra, okA := readRoot(be, rootSlotA)
	rb, okB := readRoot(be, rootSlotB)
	switch {
	case okA && okB && ra.gen == rb.gen:
		return ra, 0, false
	case okA && (!okB || ra.gen > rb.gen):
		return ra, rootSlotB, false
	case okB:
		return rb, rootSlotA, false
	default:
		return rootInfo{}, 0, true
	}
}
