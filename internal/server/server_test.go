package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/dataspread/dataspread"
	"github.com/dataspread/dataspread/client"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/wire"
)

// startServer launches a Server on a loopback listener and returns it with
// its address. The server is shut down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.DataRoot == "" {
		cfg.DataRoot = t.TempDir()
	}
	if cfg.Tenants == nil {
		cfg.Tenants = map[string]string{"t1": "secret1", "t2": "secret2"}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialT(t *testing.T, addr, tenant, token string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, client.Config{Tenant: tenant, Token: token})
	if err != nil {
		t.Fatalf("dial %s as %s: %v", addr, tenant, err)
	}
	return c
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServeEndToEnd(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialT(t, addr, "t1", "secret1")
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()
	ctx := context.Background()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "CREATE TABLE kv (k TEXT, v REAL)"); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare("INSERT INTO kv VALUES (:key, :val)")
	if err != nil {
		t.Fatal(err)
	}
	if got := ins.ParamNames(); len(got) != 2 || got[0] != "key" || got[1] != "val" {
		t.Fatalf("ParamNames = %v", got)
	}
	for i := 0; i < 10; i++ {
		res, err := ins.Exec(ctx, dataspread.Named("val", float64(i)), dataspread.Named("key", fmt.Sprintf("k%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("affected = %d", res.RowsAffected)
		}
	}
	// Positional binding of the same named statement over the wire.
	if _, err := ins.Exec(ctx, "k10", 10.0); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(ctx, "SELECT k, v FROM kv WHERE v >= :min ORDER BY k", dataspread.Named("min", 5))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	var sum float64
	for rows.Next() {
		var k string
		var v float64
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatal(err)
		}
		got = append(got, k)
		sum += v
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || got[0] != "k05" || sum != 5+6+7+8+9+10 {
		t.Fatalf("rows = %v sum = %v", got, sum)
	}

	// Transactions: rollback undoes, commit persists.
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "DELETE FROM kv"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "INSERT INTO kv VALUES ('tx', 99)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	var n int
	rows, err = c.Query(ctx, "SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		if err := rows.Scan(&n); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("count = %d, want 12", n)
	}

	// Typed errors cross the wire.
	if _, err := c.Exec(ctx, "SELECT * FROM no_such_table"); !errors.Is(err, dataspread.ErrTableNotFound) {
		t.Fatalf("err = %v, want ErrTableNotFound", err)
	}
	if _, err := c.Exec(ctx, "INSERT INTO kv VALUES (?)"); !errors.Is(err, dataspread.ErrParamCount) {
		t.Fatalf("err = %v, want ErrParamCount", err)
	}

	// Stats reflect the traffic.
	stats, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	tenants, ok := stats["tenants"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing tenants: %v", stats)
	}
	t1, ok := tenants["t1"].(map[string]any)
	if !ok || t1["execs"].(float64) < 10 || t1["queries"].(float64) < 2 {
		t.Fatalf("t1 stats = %v", t1)
	}
}

func TestAuth(t *testing.T) {
	_, addr := startServer(t, Config{})
	if _, err := client.Dial(addr, client.Config{Tenant: "t1", Token: "wrong"}); !errors.Is(err, dberr.ErrAuth) {
		t.Fatalf("bad token: %v, want ErrAuth", err)
	}
	if _, err := client.Dial(addr, client.Config{Tenant: "nobody", Token: "secret1"}); !errors.Is(err, dberr.ErrAuth) {
		t.Fatalf("unknown tenant: %v, want ErrAuth", err)
	}
	if _, err := client.Dial(addr, client.Config{Tenant: "../../etc/passwd", Token: "x"}); !errors.Is(err, dberr.ErrAuth) {
		t.Fatalf("path-metachar tenant: %v, want ErrAuth", err)
	}
}

// seedBig creates a table with enough bytes that streaming it fills socket
// buffers (so the producer genuinely blocks when the consumer stalls).
func seedBig(t *testing.T, c *client.Client, rows int) {
	t.Helper()
	ctx := context.Background()
	if _, err := c.Exec(ctx, "CREATE TABLE big (id REAL, pad TEXT)"); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 1024)
	ins, err := c.Prepare("INSERT INTO big VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(ctx, float64(i), pad); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestMidStreamErrorFrame is the regression test for the silent-truncation
// bug class: a query that fails after the row header has been delivered
// must terminate the stream with a typed error frame, never a clean DONE.
// Cancellation mid-stream is the deterministic way to inject such a fault.
func TestMidStreamErrorFrame(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dialT(t, addr, "t1", "secret1")
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()
	seedBig(t, c, 8000)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := c.Query(ctx, "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		if n++; n == 50 {
			// Stall so the 8 MB result jams the socket (the server cannot
			// finish), land the cancel mid-stream, give the server's reader
			// a beat to apply it, then drain what remains.
			cancel()
			time.Sleep(150 * time.Millisecond)
		}
	}
	err = rows.Err()
	if err == nil {
		t.Fatalf("stream ended cleanly after %d rows; want a typed mid-stream error", n)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream err = %v, want context.Canceled classification", err)
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("mid-stream err %v did not arrive as a typed error frame", err)
	}
	if err := rows.Close(); err == nil {
		t.Fatal("Close after mid-stream error lost the error")
	}
	// The session survives a canceled query.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnectMidStreamCancels proves a vanished client cancels its query
// promptly: counters drain to zero instead of leaking a goroutine blocked
// on a dead socket.
func TestDisconnectMidStreamCancels(t *testing.T) {
	srv, addr := startServer(t, Config{})
	seeder := dialT(t, addr, "t1", "secret1")
	seedBig(t, seeder, 4000)
	if err := seeder.Close(); err != nil {
		t.Fatal(err)
	}

	// Speak the protocol raw so the disconnect is abrupt: no goodbye, no
	// cancel, just a dead socket mid-stream.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var b wire.Buf
	b.Uvarint(wire.ProtocolVersion)
	b.String("t1")
	b.String("secret1")
	if err := wire.WriteFrame(conn, wire.MsgHello, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if typ, _, err := wire.ReadFrame(br); err != nil || typ != wire.MsgHelloOK {
		t.Fatalf("handshake: %v %v", typ, err)
	}
	b.Reset()
	b.Uvarint(1)
	b.String("SELECT id, pad FROM big")
	if err := wire.WriteFrame(conn, wire.MsgPrepare, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(br); err != nil || typ != wire.MsgPrepareOK {
		t.Fatalf("prepare: %v %v", typ, err)
	}
	b.Reset()
	b.Uvarint(1)
	b.Byte(wire.ExecModeQuery)
	b.Uvarint(0)
	b.Uvarint(0)
	if err := wire.WriteFrame(conn, wire.MsgExecute, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(br); err != nil || typ != wire.MsgRowHeader {
		t.Fatalf("row header: %v %v", typ, err)
	}
	waitFor(t, "query in flight", func() bool { return srv.ActiveQueries() == 1 })
	// Hang up without reading the stream.
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "active queries to drain", func() bool { return srv.ActiveQueries() == 0 })
	waitFor(t, "active sessions to drain", func() bool { return srv.ActiveSessions() == 0 })
}

func TestIdleTimeoutReap(t *testing.T) {
	srv, addr := startServer(t, Config{IdleTimeout: 100 * time.Millisecond})
	c := dialT(t, addr, "t1", "secret1")
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if got := srv.ActiveSessions(); got != 1 {
		t.Fatalf("active sessions = %d", got)
	}
	waitFor(t, "idle session reaped", func() bool { return srv.ActiveSessions() == 0 })
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded on a reaped session")
	}
	if got := srv.Stats().Tenants["t1"].IdleReaps; got != 1 {
		t.Fatalf("idle reaps = %d, want 1", got)
	}
	if err := c.Close(); err != nil {
		_ = err // socket already reaped server-side; close error is expected noise
	}
}

// TestLRUEvictionUnderStreams: with a one-handle pool, a second tenant's
// traffic runs over cap while the first streams (no eviction of a busy
// handle), then evicts the first tenant's handle once it drains — and the
// first tenant's session transparently reopens and re-prepares on its next
// command.
func TestLRUEvictionUnderStreams(t *testing.T) {
	srv, addr := startServer(t, Config{MaxOpenDBs: 1})
	c1 := dialT(t, addr, "t1", "secret1")
	defer func() {
		if err := c1.Close(); err != nil {
			t.Error(err)
		}
	}()
	seedBig(t, c1, 8000)
	q1, err := c1.Prepare("SELECT COUNT(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}

	// t1 streams; its handle holds a reference for the whole stream.
	ctx := context.Background()
	rows, err := c1.Query(ctx, "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	read := 0
	for read < 10 && rows.Next() {
		read++
	}
	if read != 10 {
		t.Fatalf("read %d rows before pause: %v", read, rows.Err())
	}

	// t2 works concurrently: the pool runs over cap rather than evicting
	// the busy t1 handle mid-stream.
	c2 := dialT(t, addr, "t2", "secret2")
	defer func() {
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if _, err := c2.Exec(ctx, "CREATE TABLE other (x REAL)"); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().Tenants["t1"].Evictions != 0 {
		t.Fatal("busy t1 handle was evicted mid-stream")
	}

	// t1 finishes its stream; every delivered row must be intact.
	total := read
	for rows.Next() {
		total++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if total != 8000 {
		t.Fatalf("streamed %d rows, want 8000", total)
	}

	// Now t2's next command can evict t1's drained handle...
	if _, err := c2.Exec(ctx, "INSERT INTO other VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "t1 evicted", func() bool { return srv.Stats().Tenants["t1"].Evictions >= 1 })
	// ...and t1's prepared statement still works: the session rebinds and
	// re-prepares against the reopened workbook.
	rows, err = q1.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for rows.Next() {
		if err := rows.Scan(&n); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 8000 {
		t.Fatalf("post-eviction count = %d, want 8000", n)
	}
}

// TestAdmissionRejection: with a single per-tenant slot and a stalled
// consumer holding it, further traffic for that tenant is rejected with
// ErrOverloaded after the bounded queue wait — while another tenant's lane
// stays open.
func TestAdmissionRejection(t *testing.T) {
	srv, addr := startServer(t, Config{
		TenantInflight: 1,
		TenantQueue:    1,
		QueueWait:      100 * time.Millisecond,
	})
	c1 := dialT(t, addr, "t1", "secret1")
	defer func() {
		if err := c1.Close(); err != nil {
			t.Error(err)
		}
	}()
	seedBig(t, c1, 8000)

	// Hold t1's only slot: start a stream and stop consuming. 8 MB of
	// rows cannot fit in socket buffers, so the server worker stays inside
	// streamQuery with the admission slot held.
	hold := dialT(t, addr, "t1", "secret1")
	rows, err := hold.Query(context.Background(), "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Rows holds the client's command slot: release it (cancel+drain)
		// before closing the connection, or Close would block on the lock.
		if err := rows.Close(); err != nil {
			_ = err // cancellation error is expected here
		}
		if err := hold.Close(); err != nil {
			t.Error(err)
		}
	}()
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	waitFor(t, "slot held", func() bool { return srv.ActiveQueries() == 1 })

	// t1's next query waits its bounded turn, then is rejected typed.
	c1b := dialT(t, addr, "t1", "secret1")
	defer func() {
		if err := c1b.Close(); err != nil {
			t.Error(err)
		}
	}()
	_, err = c1b.Exec(context.Background(), "INSERT INTO big VALUES (9999, 'y')")
	if !errors.Is(err, dataspread.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := srv.Stats().Tenants["t1"].AdmissionRejected; got < 1 {
		t.Fatalf("admission_rejected = %d", got)
	}

	// The noisy tenant saturated its own lane only: t2 proceeds.
	c2 := dialT(t, addr, "t2", "secret2")
	defer func() {
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if _, err := c2.Exec(context.Background(), "CREATE TABLE t2ok (x REAL)"); err != nil {
		t.Fatalf("t2 blocked by t1's overload: %v", err)
	}
}

// TestGracefulShutdownDrain: Shutdown must let an in-flight stream finish —
// every row arrives, then the session ends.
func TestGracefulShutdownDrain(t *testing.T) {
	cfg := Config{DataRoot: t.TempDir(), Tenants: map[string]string{"t1": "secret1"}}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c := dialT(t, ln.Addr().String(), "t1", "secret1")
	seedBig(t, c, 3000)
	rows, err := c.Query(context.Background(), "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	// New connections are refused once draining...
	waitFor(t, "listener closed", func() bool {
		_, derr := client.Dial(ln.Addr().String(), client.Config{Tenant: "t1", Token: "secret1", DialTimeout: 200 * time.Millisecond})
		return derr != nil
	})
	// ...but the in-flight stream completes to the last row.
	total := 1
	for rows.Next() {
		total++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream truncated by shutdown: %v", err)
	}
	if total != 3000 {
		t.Fatalf("streamed %d rows through shutdown, want 3000", total)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := c.Close(); err != nil {
		_ = err // server already gone
	}
}

// TestReadOnlyOverTheWire: a degraded workbook flags read-only at handshake
// and rejects writes with a typed ErrReadOnly while reads keep working.
func TestReadOnlyOverTheWire(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dialT(t, addr, "t1", "secret1")
	if _, err := c.Exec(context.Background(), "CREATE TABLE r (x REAL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(context.Background(), "INSERT INTO r VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	if c.ReadOnly() {
		t.Fatal("healthy tenant flagged read-only")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Degrade the tenant's live handle through the pool.
	e, err := srv.pool.Acquire("t1")
	if err != nil {
		t.Fatal(err)
	}
	e.db.Degrade(fmt.Errorf("test: simulated torn WAL append: %w", dberr.ErrIO))
	srv.pool.Release(e)

	c = dialT(t, addr, "t1", "secret1")
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()
	if !c.ReadOnly() {
		t.Fatal("degraded tenant not flagged read-only at handshake")
	}
	if _, err := c.Exec(context.Background(), "INSERT INTO r VALUES (8)"); !errors.Is(err, dataspread.ErrReadOnly) {
		t.Fatalf("write on degraded tenant: %v, want ErrReadOnly", err)
	}
	rows, err := c.Query(context.Background(), "SELECT COUNT(*) FROM r")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for rows.Next() {
		if err := rows.Scan(&n); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("read on degraded tenant = %d rows, want 1", n)
	}
}

// TestTenantIsolation: two tenants never see each other's tables.
func TestTenantIsolation(t *testing.T) {
	_, addr := startServer(t, Config{})
	c1 := dialT(t, addr, "t1", "secret1")
	c2 := dialT(t, addr, "t2", "secret2")
	defer func() {
		if err := c1.Close(); err != nil {
			t.Error(err)
		}
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	ctx := context.Background()
	if _, err := c1.Exec(ctx, "CREATE TABLE private1 (x REAL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec(ctx, "SELECT * FROM private1"); !errors.Is(err, dataspread.ErrTableNotFound) {
		t.Fatalf("t2 saw t1's table: %v", err)
	}
}
