package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/dataspread/dataspread"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/wire"
)

// A session is one client connection. Two goroutines cooperate per session:
// the reader pulls frames off the socket — delivering MsgCancel out of band
// to the query in flight and everything else to cmdCh — and the worker owns
// all command execution and every write to the socket. Splitting the roles
// is what makes cancellation work: while the worker is blocked streaming row
// batches, the reader is still parked in ReadFrame and sees the cancel (or
// the client's disconnect, which cancels implicitly) immediately.
type session struct {
	srv  *Server
	conn net.Conn
	bw   *bufio.Writer
	// cmdCh carries non-cancel frames from reader to worker; the reader
	// closes it when the socket dies.
	cmdCh    chan frame
	closedCh chan struct{}
	closeOne sync.Once

	// tenant is fixed at handshake.
	tenant string

	// Worker-owned tenant binding. gen is the pool generation dsconn was
	// built against; a mismatch after re-acquire means the handle was
	// LRU-evicted and the session transparently rebinds (new Conn,
	// lazily re-prepared statements).
	dsconn *dataspread.Conn
	gen    uint64
	stmts  map[uint64]*sessStmt
	// txEntry pins the tenant handle while an explicit transaction is open
	// so eviction can never yank a workbook out from under a transaction.
	txEntry *tenantEntry

	// inflight is the cancel func of the command being executed, called by
	// the reader on MsgCancel or disconnect.
	inflightMu sync.Mutex
	inflight   context.CancelFunc
}

type frame struct {
	typ     wire.MsgType
	payload []byte
}

type sessStmt struct {
	sql string
	st  *dataspread.Stmt
	gen uint64
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:      srv,
		conn:     conn,
		bw:       bufio.NewWriter(conn),
		cmdCh:    make(chan frame, 8),
		closedCh: make(chan struct{}),
		stmts:    make(map[uint64]*sessStmt),
	}
}

// forceClose tears the session down immediately: the in-flight query is
// canceled and the socket closed, which unblocks both goroutines.
func (s *session) forceClose() {
	s.cancelInflight()
	s.closeOne.Do(func() {
		close(s.closedCh)
		if err := s.conn.Close(); err != nil {
			_ = err // socket teardown; nothing upstream can act on it
		}
	})
}

func (s *session) cancelInflight() {
	s.inflightMu.Lock()
	cancel := s.inflight
	s.inflightMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (s *session) setInflight(cancel context.CancelFunc) {
	s.inflightMu.Lock()
	s.inflight = cancel
	s.inflightMu.Unlock()
}

// run drives the whole session lifecycle and returns when it is torn down.
func (s *session) run() {
	defer s.forceClose()
	if err := s.handshake(); err != nil {
		// The handshake writes its own error frame; nothing more to say.
		return
	}
	s.srv.metrics.activeSessions.Add(1)
	defer s.srv.metrics.activeSessions.Add(-1)
	defer s.teardown()
	go s.readLoop()
	s.workLoop()
}

// handshake authenticates the connection under a deadline and reports the
// tenant's read-only status in the reply flags.
func (s *session) handshake() error {
	if err := s.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return fmt.Errorf("server: handshake deadline: %w", classifyNetErr(err))
	}
	typ, payload, err := wire.ReadFrame(s.conn)
	if err != nil {
		return fmt.Errorf("server: handshake read: %w", err)
	}
	if err := s.conn.SetReadDeadline(time.Time{}); err != nil {
		return fmt.Errorf("server: clear handshake deadline: %w", classifyNetErr(err))
	}
	if typ != wire.MsgHello {
		return s.fatal(fmt.Errorf("server: expected HELLO, got frame type %#x: %w", typ, dberr.ErrCorrupt))
	}
	r := wire.NewReader(payload)
	version := r.Uvarint()
	tenant := r.String()
	token := r.String()
	if err := r.Err(); err != nil {
		return s.fatal(fmt.Errorf("server: malformed HELLO: %w", err))
	}
	if version != wire.ProtocolVersion {
		return s.fatal(fmt.Errorf("server: protocol version %d not supported (server speaks %d): %w",
			version, wire.ProtocolVersion, dberr.ErrUnsupported))
	}
	if err := s.srv.authenticate(tenant, token); err != nil {
		return s.fatal(err)
	}
	s.tenant = tenant
	// Opening the workbook now both validates it and primes the LRU; its
	// health decides the read-only flag the client sees.
	e, err := s.srv.pool.Acquire(tenant)
	if err != nil {
		return s.fatal(err)
	}
	var flags byte
	if e.db.Health() != nil {
		flags |= wire.FlagReadOnly
	}
	s.srv.pool.Release(e)
	var b wire.Buf
	b.Uvarint(wire.ProtocolVersion)
	b.Byte(flags)
	return s.reply(wire.MsgHelloOK, b.Bytes())
}

// fatal sends err as an error frame and returns it (handshake path: the
// session dies right after).
func (s *session) fatal(err error) error {
	if werr := s.writeError(err); werr != nil {
		return fmt.Errorf("server: reporting handshake failure: %w", werr)
	}
	return err
}

// readLoop pulls frames off the socket until it dies. MsgCancel is applied
// to the in-flight command immediately; everything else is handed to the
// worker. A read error — including the client simply disconnecting — cancels
// the in-flight command so a query whose consumer vanished stops promptly.
func (s *session) readLoop() {
	defer close(s.cmdCh)
	br := bufio.NewReader(s.conn)
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			s.cancelInflight()
			return
		}
		if typ == wire.MsgCancel {
			s.cancelInflight()
			continue
		}
		select {
		case s.cmdCh <- frame{typ, payload}:
		case <-s.closedCh:
			return
		}
	}
}

// workLoop executes commands until the client leaves, the session idles
// out, or the server drains. It is the only goroutine that writes to the
// socket after the handshake.
func (s *session) workLoop() {
	var idleC <-chan time.Time
	var idleTimer *time.Timer
	if d := s.srv.cfg.IdleTimeout; d > 0 {
		idleTimer = time.NewTimer(d)
		defer idleTimer.Stop()
		idleC = idleTimer.C
	}
	for {
		select {
		case cmd, ok := <-s.cmdCh:
			if !ok {
				return // client disconnected
			}
			if idleTimer != nil {
				if !idleTimer.Stop() {
					select {
					case <-idleTimer.C:
					default:
					}
				}
				idleTimer.Reset(s.srv.cfg.IdleTimeout)
			}
			done, err := s.dispatch(cmd)
			if done || err != nil {
				return
			}
		case <-s.srv.drainCh:
			return
		case <-idleC:
			s.srv.metrics.recordIdleReap(s.tenant)
			return
		}
	}
}

// teardown rolls back an abandoned transaction and unpins the tenant.
func (s *session) teardown() {
	if s.txEntry != nil {
		if s.dsconn != nil && s.dsconn.InTransaction() {
			if err := s.dsconn.Rollback(context.Background()); err != nil {
				_ = err // the engine already discarded the tx on its side
			}
		}
		s.srv.pool.Release(s.txEntry)
		s.txEntry = nil
	}
}

// dispatch runs one command frame. done=true ends the session cleanly; a
// non-nil error means the socket is unusable.
func (s *session) dispatch(cmd frame) (done bool, err error) {
	switch cmd.typ {
	case wire.MsgPrepare:
		return false, s.handlePrepare(cmd.payload)
	case wire.MsgExecute:
		return false, s.handleExecute(cmd.payload)
	case wire.MsgCloseStmt:
		return false, s.handleCloseStmt(cmd.payload)
	case wire.MsgBegin, wire.MsgCommit, wire.MsgRollback:
		return false, s.handleTx(cmd.typ)
	case wire.MsgPing:
		return false, s.reply(wire.MsgPong, nil)
	case wire.MsgStats:
		return false, s.handleStats()
	case wire.MsgGoodbye:
		return true, nil
	default:
		return false, s.respondErr(fmt.Errorf("server: unknown frame type %#x: %w", cmd.typ, dberr.ErrUnsupported))
	}
}

// bind acquires the tenant handle for the duration of one command and
// returns the session's Conn, rebinding after an eviction. The returned
// release must always be called.
func (s *session) bind() (*dataspread.Conn, func(), error) {
	e, err := s.srv.pool.Acquire(s.tenant)
	if err != nil {
		return nil, nil, err
	}
	if s.dsconn == nil || s.gen != e.gen {
		// The handle was evicted (or never bound): build a fresh Conn and
		// invalidate prepared handles so they re-prepare lazily. An open
		// transaction pins its entry, so gen can only move between
		// transactions — tx state is never silently dropped here.
		s.dsconn = e.db.Conn()
		s.gen = e.gen
		for _, st := range s.stmts {
			st.st = nil
		}
	}
	return s.dsconn, func() { s.srv.pool.Release(e) }, nil
}

func (s *session) handlePrepare(payload []byte) error {
	r := wire.NewReader(payload)
	id := r.Uvarint()
	sql := r.String()
	if err := r.Err(); err != nil {
		return s.respondErr(fmt.Errorf("server: malformed PREPARE: %w", err))
	}
	conn, release, err := s.bind()
	if err != nil {
		return s.respondErr(err)
	}
	defer release()
	st, err := conn.Prepare(sql)
	if err != nil {
		return s.respondErr(fmt.Errorf("server: prepare: %w", err))
	}
	s.stmts[id] = &sessStmt{sql: sql, st: st, gen: s.gen}
	names := st.ParamNames()
	var b wire.Buf
	b.Uvarint(id)
	b.Uvarint(uint64(st.NumParams()))
	for _, n := range names {
		b.String(n)
	}
	return s.reply(wire.MsgPrepareOK, b.Bytes())
}

func (s *session) handleCloseStmt(payload []byte) error {
	r := wire.NewReader(payload)
	id := r.Uvarint()
	if err := r.Err(); err != nil {
		return s.respondErr(fmt.Errorf("server: malformed CLOSE: %w", err))
	}
	delete(s.stmts, id)
	return s.replyDone(0)
}

// stmtFor resolves a statement id against the current binding, re-preparing
// transparently after an eviction rebind.
func (s *session) stmtFor(conn *dataspread.Conn, id uint64) (*dataspread.Stmt, error) {
	ss, ok := s.stmts[id]
	if !ok {
		return nil, fmt.Errorf("server: unknown statement id %d: %w", id, dberr.ErrUnsupported)
	}
	if ss.st == nil || ss.gen != s.gen {
		st, err := conn.Prepare(ss.sql)
		if err != nil {
			return nil, fmt.Errorf("server: re-prepare after eviction: %w", err)
		}
		ss.st, ss.gen = st, s.gen
	}
	return ss.st.OnConn(conn), nil
}

// decodeArgs parses an EXECUTE frame's positional and named argument
// sections into the public bind surface's arg list.
func decodeArgs(r *wire.Reader) ([]any, error) {
	npos := r.Uvarint()
	if npos > uint64(wire.MaxFrameLen) {
		return nil, fmt.Errorf("server: absurd positional arg count %d: %w", npos, dberr.ErrCorrupt)
	}
	args := make([]any, 0, npos)
	for i := uint64(0); i < npos; i++ {
		args = append(args, r.Value())
	}
	nnamed := r.Uvarint()
	if nnamed > uint64(wire.MaxFrameLen) {
		return nil, fmt.Errorf("server: absurd named arg count %d: %w", nnamed, dberr.ErrCorrupt)
	}
	for i := uint64(0); i < nnamed; i++ {
		name := r.String()
		args = append(args, dataspread.Named(name, r.Value()))
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("server: malformed EXECUTE args: %w", err)
	}
	return args, nil
}

func (s *session) handleExecute(payload []byte) error {
	start := time.Now()
	r := wire.NewReader(payload)
	id := r.Uvarint()
	mode := r.Byte()
	args, err := decodeArgs(r)
	if err != nil {
		return s.respondErr(err)
	}
	class := opWrite
	if mode == wire.ExecModeQuery {
		class = opRead
	}

	// Admission first: a rejected query consumed nothing.
	admit, err := s.srv.adm.Acquire(context.Background(), s.tenant)
	if err != nil {
		s.srv.metrics.recordRejection(s.tenant)
		return s.respondErr(err)
	}
	defer admit()

	conn, release, err := s.bind()
	if err != nil {
		return s.respondErr(err)
	}
	defer release()
	st, err := s.stmtFor(conn, id)
	if err != nil {
		return s.respondErr(err)
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if d := s.srv.cfg.QueryTimeout; d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	s.setInflight(cancel)
	defer func() {
		s.setInflight(nil)
		cancel()
	}()

	s.srv.metrics.activeQueries.Add(1)
	defer s.srv.metrics.activeQueries.Add(-1)

	var werr error
	failed := false
	if mode == wire.ExecModeQuery {
		werr, failed = s.streamQuery(ctx, st, args)
	} else {
		res, xerr := st.Exec(ctx, args...)
		if xerr != nil {
			failed = true
			werr = s.respondErr(fmt.Errorf("server: exec: %w", xerr))
		} else {
			werr = s.replyDone(res.RowsAffected)
		}
	}
	s.srv.metrics.recordOp(s.tenant, class, time.Since(start), failed)
	return werr
}

// streamQuery runs a prepared query and streams its result: one row-header
// frame, row batches of up to wire.RowBatchSize rows, then a done frame. A
// failure after the header has shipped — cancellation, a mid-scan I/O error
// — becomes a typed error frame in the stream, never a silent truncation:
// the client sees exactly the rows produced before the fault plus an error
// that classifies with errors.Is.
func (s *session) streamQuery(ctx context.Context, st *dataspread.Stmt, args []any) (werr error, failed bool) {
	rows, err := st.Query(ctx, args...)
	if err != nil {
		return s.respondErr(fmt.Errorf("server: query: %w", err)), true
	}
	defer func() {
		if cerr := rows.Close(); cerr != nil && werr == nil && !failed {
			werr, failed = s.respondErr(fmt.Errorf("server: closing rows: %w", cerr)), true
		}
	}()
	cols := rows.Columns()
	var b wire.Buf
	b.Uvarint(uint64(len(cols)))
	for _, c := range cols {
		b.String(c)
	}
	if err := s.reply(wire.MsgRowHeader, b.Bytes()); err != nil {
		return err, true
	}
	b.Reset()
	n := 0
	flushBatch := func() error {
		var hdr wire.Buf
		hdr.Uvarint(uint64(n))
		if err := wire.WriteFrame(s.bw, wire.MsgRowBatch, append(hdr.Bytes(), b.Bytes()...)); err != nil {
			return err
		}
		b.Reset()
		n = 0
		return s.flush()
	}
	for rows.Next() {
		for _, v := range rows.Values() {
			b.Value(v)
		}
		if n++; n >= wire.RowBatchSize {
			if err := flushBatch(); err != nil {
				return err, true
			}
		}
	}
	if err := rows.Err(); err != nil {
		// The mid-stream failure path: rows already delivered stand; the
		// error frame terminates the stream with the true cause.
		return s.respondErr(fmt.Errorf("server: streaming: %w", err)), true
	}
	if n > 0 {
		if err := flushBatch(); err != nil {
			return err, true
		}
	}
	return s.replyDone(0), false
}

// handleTx serves BEGIN / COMMIT / ROLLBACK. A successful BEGIN pins the
// tenant handle (an extra pool reference held until the transaction ends)
// so LRU eviction cannot close a workbook with a live transaction.
func (s *session) handleTx(typ wire.MsgType) error {
	conn, release, err := s.bind()
	if err != nil {
		return s.respondErr(err)
	}
	defer release()
	ctx := context.Background()
	switch typ {
	case wire.MsgBegin:
		if err := conn.Begin(ctx); err != nil {
			return s.respondErr(fmt.Errorf("server: begin: %w", err))
		}
		if s.txEntry == nil {
			e, aerr := s.srv.pool.Acquire(s.tenant)
			if aerr != nil {
				// Should be impossible (we hold a ref via bind), but never
				// leave a transaction unpinned.
				if rerr := conn.Rollback(ctx); rerr != nil {
					_ = rerr
				}
				return s.respondErr(fmt.Errorf("server: pinning transaction tenant: %w", aerr))
			}
			s.txEntry = e
		}
	case wire.MsgCommit:
		err = conn.Commit(ctx)
		s.unpinTx()
		if err != nil {
			return s.respondErr(fmt.Errorf("server: commit: %w", err))
		}
	case wire.MsgRollback:
		err = conn.Rollback(ctx)
		s.unpinTx()
		if err != nil {
			return s.respondErr(fmt.Errorf("server: rollback: %w", err))
		}
	}
	return s.replyDone(0)
}

func (s *session) unpinTx() {
	if s.txEntry != nil {
		s.srv.pool.Release(s.txEntry)
		s.txEntry = nil
	}
}

func (s *session) handleStats() error {
	data, err := json.Marshal(s.srv.Stats())
	if err != nil {
		return s.respondErr(fmt.Errorf("server: encoding stats: %w", err))
	}
	return s.reply(wire.MsgStatsReply, data)
}

// reply writes one frame and flushes.
func (s *session) reply(typ wire.MsgType, payload []byte) error {
	if err := wire.WriteFrame(s.bw, typ, payload); err != nil {
		return err
	}
	return s.flush()
}

func (s *session) replyDone(affected int) error {
	var b wire.Buf
	b.Uvarint(uint64(affected))
	return s.reply(wire.MsgDone, b.Bytes())
}

// respondErr ships err to the client as a typed error frame. The session
// survives — command errors are part of the protocol; only transport
// failures (the returned error) kill it.
func (s *session) respondErr(err error) error {
	return s.writeError(err)
}

func (s *session) writeError(err error) error {
	return s.reply(wire.MsgError, wire.EncodeError(err))
}

func (s *session) flush() error {
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("server: flush: %w", classifyNetErr(err))
	}
	return nil
}
