package server

import (
	"container/list"
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"github.com/dataspread/dataspread"
	"github.com/dataspread/dataspread/internal/dberr"
)

// Multi-tenancy is workbook routing: every tenant owns one page file under
// the server's data root (<root>/<tenant>.ds), and the pool keeps an LRU of
// open *dataspread.DB handles so the number of resident workbooks stays
// bounded no matter how many tenants exist. Opening a tenant past the cap
// evicts the least-recently-used handle whose in-flight reference count has
// drained to zero — eviction never interrupts a running query or an open
// transaction (those hold references), and a tenant whose handles are all
// busy simply lets the pool run over cap until references drain. Sessions
// re-acquire their tenant per command and detect eviction through the
// handle generation, transparently reopening the workbook and re-preparing
// their statements, so an evicted tenant's next query just pays a cold open.

// tenantNameRE validates tenant names: they become file names under the
// data root, so path metacharacters are rejected outright.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

type tenantPool struct {
	root string
	opts dataspread.Options
	cap  int
	// onEvict observes evictions (metrics); closeErr is the eviction
	// Close's outcome.
	onEvict func(tenant string, closeErr error)

	mu      sync.Mutex
	entries map[string]*tenantEntry
	lru     *list.List // front = most recently used; values are *tenantEntry
	gen     uint64
}

type tenantEntry struct {
	name string
	db   *dataspread.DB
	// gen identifies this open instance; a session whose cached state was
	// built against an older generation rebinds before using the handle.
	gen  uint64
	refs int
	elem *list.Element
}

func newTenantPool(root string, opts dataspread.Options, capacity int, onEvict func(string, error)) *tenantPool {
	return &tenantPool{
		root:    root,
		opts:    opts,
		cap:     capacity,
		onEvict: onEvict,
		entries: make(map[string]*tenantEntry),
		lru:     list.New(),
	}
}

// Acquire returns the tenant's open handle, opening (and LRU-evicting) as
// needed, with one reference held. Every Acquire must be paired with a
// Release.
func (p *tenantPool) Acquire(tenant string) (*tenantEntry, error) {
	if !tenantNameRE.MatchString(tenant) {
		return nil, fmt.Errorf("server: invalid tenant name %q: %w", tenant, dberr.ErrAuth)
	}
	// An eviction's Close and a re-open of the same tenant can race on the
	// workbook's single-writer file lock; retry conflicts briefly instead
	// of failing the query.
	deadline := time.Now().Add(2 * time.Second)
	for {
		e, err := p.acquireOnce(tenant)
		if err != nil && errors.Is(err, dberr.ErrConflict) && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return e, err
	}
}

func (p *tenantPool) acquireOnce(tenant string) (*tenantEntry, error) {
	p.mu.Lock()
	if e, ok := p.entries[tenant]; ok {
		e.refs++
		p.lru.MoveToFront(e.elem)
		p.mu.Unlock()
		return e, nil
	}
	// Miss: pick an eviction victim while the pool is at cap. Only handles
	// with zero in-flight references are candidates — eviction drains, it
	// never interrupts.
	var victim *tenantEntry
	if len(p.entries) >= p.cap {
		for el := p.lru.Back(); el != nil; el = el.Prev() {
			if cand := el.Value.(*tenantEntry); cand.refs == 0 {
				victim = cand
				break
			}
		}
		if victim != nil {
			// Removed from the map before closing: no new reference can
			// reach the dying handle.
			delete(p.entries, victim.name)
			p.lru.Remove(victim.elem)
		}
	}
	p.mu.Unlock()
	if victim != nil {
		closeErr := victim.db.Close()
		if p.onEvict != nil {
			p.onEvict(victim.name, closeErr)
		}
	}
	db, err := dataspread.OpenFile(filepath.Join(p.root, tenant+".ds"), p.opts)
	if err != nil {
		return nil, fmt.Errorf("server: open tenant %q: %w", tenant, err)
	}
	p.mu.Lock()
	if e, ok := p.entries[tenant]; ok {
		// Lost an open race; adopt the incumbent and drop ours.
		e.refs++
		p.lru.MoveToFront(e.elem)
		p.mu.Unlock()
		if cerr := db.Close(); cerr != nil && p.onEvict != nil {
			p.onEvict(tenant, cerr)
		}
		return e, nil
	}
	p.gen++
	e := &tenantEntry{name: tenant, db: db, gen: p.gen, refs: 1}
	e.elem = p.lru.PushFront(e)
	p.entries[tenant] = e
	p.mu.Unlock()
	return e, nil
}

// Release drops one reference. If the pool ran over cap while every handle
// was busy, the drain that brings a handle back to zero references also
// shrinks the pool back to cap (evicting from the LRU end).
func (p *tenantPool) Release(e *tenantEntry) {
	p.mu.Lock()
	e.refs--
	var victims []*tenantEntry
	for len(p.entries) > p.cap {
		var victim *tenantEntry
		for el := p.lru.Back(); el != nil; el = el.Prev() {
			if cand := el.Value.(*tenantEntry); cand.refs == 0 {
				victim = cand
				break
			}
		}
		if victim == nil {
			break
		}
		delete(p.entries, victim.name)
		p.lru.Remove(victim.elem)
		victims = append(victims, victim)
	}
	p.mu.Unlock()
	for _, v := range victims {
		closeErr := v.db.Close()
		if p.onEvict != nil {
			p.onEvict(v.name, closeErr)
		}
	}
}

// OpenCount reports how many tenant handles are resident.
func (p *tenantPool) OpenCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// CloseAll closes every resident handle (shutdown path; sessions have
// drained).
func (p *tenantPool) CloseAll() error {
	p.mu.Lock()
	var all []*tenantEntry
	for _, e := range p.entries {
		all = append(all, e)
	}
	p.entries = make(map[string]*tenantEntry)
	p.lru.Init()
	p.mu.Unlock()
	var errs []error
	for _, e := range all {
		if err := e.db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: close tenant %q: %w", e.name, err))
		}
	}
	return errors.Join(errs...)
}
