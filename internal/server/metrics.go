package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Server metrics: cheap enough to record on every request, rich enough for
// tail-latency engineering. Latencies are kept per tenant and per operation
// class (read = streamed queries, write = execs) in fixed-size rings, so
// quantiles reflect recent traffic and memory stays bounded no matter how
// long the server runs. Snapshots are taken on demand by the STATS wire
// command and the /admin HTTP endpoint.

// latRingSize is how many recent samples a latency ring retains per class.
const latRingSize = 4096

// opClass is a latency class.
type opClass int

const (
	opRead opClass = iota
	opWrite
)

type metrics struct {
	start          time.Time
	activeSessions atomic.Int64
	activeQueries  atomic.Int64

	mu      sync.Mutex
	tenants map[string]*tenantMetrics
}

type tenantMetrics struct {
	queries   uint64
	execs     uint64
	errors    uint64
	rejected  uint64
	evictions uint64
	idleReaps uint64
	read      latRing
	write     latRing
}

// latRing is a fixed-size ring of recent latency samples in microseconds.
type latRing struct {
	buf [latRingSize]float64
	n   int
}

func (r *latRing) record(d time.Duration) {
	r.buf[r.n%latRingSize] = float64(d.Microseconds())
	r.n++
}

// quantile returns the p-quantile (0..1) of the retained samples, 0 when
// empty.
func (r *latRing) quantile(p float64) float64 {
	n := r.n
	if n > latRingSize {
		n = latRingSize
	}
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, r.buf[:n])
	sort.Float64s(tmp)
	idx := int(p * float64(n-1))
	return tmp[idx]
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), tenants: make(map[string]*tenantMetrics)}
}

func (m *metrics) tenant(name string) *tenantMetrics {
	t, ok := m.tenants[name]
	if !ok {
		t = &tenantMetrics{}
		m.tenants[name] = t
	}
	return t
}

func (m *metrics) recordOp(tenant string, class opClass, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tenant(tenant)
	switch class {
	case opRead:
		t.queries++
		t.read.record(d)
	case opWrite:
		t.execs++
		t.write.record(d)
	}
	if failed {
		t.errors++
	}
}

func (m *metrics) recordRejection(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenant(tenant).rejected++
}

func (m *metrics) recordEviction(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenant(tenant).evictions++
}

func (m *metrics) recordIdleReap(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenant(tenant).idleReaps++
}

// TenantStats is one tenant's metrics snapshot.
type TenantStats struct {
	Queries           uint64  `json:"queries"`
	Execs             uint64  `json:"execs"`
	Errors            uint64  `json:"errors"`
	AdmissionRejected uint64  `json:"admission_rejected"`
	Evictions         uint64  `json:"evictions"`
	IdleReaps         uint64  `json:"idle_reaps"`
	ReadP50Micros     float64 `json:"read_p50_micros"`
	ReadP99Micros     float64 `json:"read_p99_micros"`
	WriteP50Micros    float64 `json:"write_p50_micros"`
	WriteP99Micros    float64 `json:"write_p99_micros"`
	ReadSamplesKept   int     `json:"read_samples_kept"`
	WriteSamplesKept  int     `json:"write_samples_kept"`
	ReadSamplesTotal  int     `json:"read_samples_total"`
	WriteSamplesTotal int     `json:"write_samples_total"`
}

// Stats is the server's metrics snapshot.
type Stats struct {
	UptimeSeconds  float64                `json:"uptime_seconds"`
	ActiveSessions int64                  `json:"active_sessions"`
	ActiveQueries  int64                  `json:"active_queries"`
	OpenTenants    int                    `json:"open_tenants"`
	Tenants        map[string]TenantStats `json:"tenants"`
}

func (m *metrics) snapshot(openTenants int) Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Stats{
		UptimeSeconds:  time.Since(m.start).Seconds(),
		ActiveSessions: m.activeSessions.Load(),
		ActiveQueries:  m.activeQueries.Load(),
		OpenTenants:    openTenants,
		Tenants:        make(map[string]TenantStats, len(m.tenants)),
	}
	for name, t := range m.tenants {
		kept := func(n int) int {
			if n > latRingSize {
				return latRingSize
			}
			return n
		}
		out.Tenants[name] = TenantStats{
			Queries:           t.queries,
			Execs:             t.execs,
			Errors:            t.errors,
			AdmissionRejected: t.rejected,
			Evictions:         t.evictions,
			IdleReaps:         t.idleReaps,
			ReadP50Micros:     t.read.quantile(0.50),
			ReadP99Micros:     t.read.quantile(0.99),
			WriteP50Micros:    t.write.quantile(0.50),
			WriteP99Micros:    t.write.quantile(0.99),
			ReadSamplesKept:   kept(t.read.n),
			WriteSamplesKept:  kept(t.write.n),
			ReadSamplesTotal:  t.read.n,
			WriteSamplesTotal: t.write.n,
		}
	}
	return out
}
