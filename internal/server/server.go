// Package server implements dataspreadd: the multi-tenant network serving
// tier over the embeddable engine. A Server listens on TCP, speaks the
// internal/wire protocol (handshake/auth, prepare, bind+execute with
// streaming row frames, transaction control, cancel, ping, stats) and maps
// each connection onto one session backed by the public dataspread API —
// per-session *dataspread.Conn for transaction state, shared prepared plans,
// streaming *dataspread.Rows with context cancellation.
//
// Tenancy is workbook routing (one page file per tenant under DataRoot, an
// LRU of open handles), admission is a global plus per-tenant in-flight cap
// with bounded wait queues that reject with dberr.ErrOverloaded, and a
// tenant whose workbook degrades (DB.Health) turns read-only over the wire
// instead of taking the process down. See DESIGN.md §Serving Tier.
//
// dslint:errdomain
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/dataspread/dataspread"
	"github.com/dataspread/dataspread/internal/dberr"
)

// Config configures a Server. Zero values take the documented defaults.
type Config struct {
	// DataRoot is the directory holding one workbook file per tenant
	// (<root>/<tenant>.ds). Required.
	DataRoot string
	// Tenants maps tenant names to their bearer tokens. A connection must
	// present the matching token for its tenant; unknown tenants are
	// rejected. Required (an empty map admits nobody).
	Tenants map[string]string
	// Options configure each tenant's embedded DB.
	Options dataspread.Options
	// MaxOpenDBs caps resident tenant handles (default 4); the least
	// recently used drained handle is evicted past the cap.
	MaxOpenDBs int
	// MaxInflight caps concurrently executing queries server-wide
	// (default 64); MaxInflightQueue bounds the wait queue behind it
	// (default MaxInflight).
	MaxInflight      int
	MaxInflightQueue int
	// TenantInflight caps one tenant's concurrently executing queries
	// (default 8); TenantQueue bounds the per-tenant wait queue (default
	// TenantInflight).
	TenantInflight int
	TenantQueue    int
	// QueueWait bounds how long an admitted-to-queue query waits for a
	// slot before rejection (default 1s).
	QueueWait time.Duration
	// IdleTimeout reaps sessions with no traffic for this long (0 = never).
	IdleTimeout time.Duration
	// QueryTimeout bounds each statement's execution (0 = unbounded).
	QueryTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxOpenDBs <= 0 {
		c.MaxOpenDBs = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.MaxInflightQueue <= 0 {
		c.MaxInflightQueue = c.MaxInflight
	}
	if c.TenantInflight <= 0 {
		c.TenantInflight = 8
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = c.TenantInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	return c
}

// Server is one dataspreadd instance.
type Server struct {
	cfg     Config
	pool    *tenantPool
	adm     *admission
	metrics *metrics

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	draining bool
	closed   bool
	// drainCh closes when Shutdown starts: idle sessions exit immediately,
	// busy sessions exit after finishing (and fully streaming) the command
	// in flight.
	drainCh chan struct{}
	wg      sync.WaitGroup
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.DataRoot == "" {
		return nil, fmt.Errorf("server: Config.DataRoot is required: %w", dberr.ErrUnsupported)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		metrics:  newMetrics(),
		adm:      newAdmission(cfg.MaxInflight, cfg.MaxInflightQueue, cfg.TenantInflight, cfg.TenantQueue, cfg.QueueWait),
		sessions: make(map[*session]struct{}),
		drainCh:  make(chan struct{}),
	}
	s.pool = newTenantPool(cfg.DataRoot, cfg.Options, cfg.MaxOpenDBs, func(tenant string, closeErr error) {
		s.metrics.recordEviction(tenant)
		_ = closeErr // surfaced through the next open's recovery, never silently lost on disk
	})
	return s, nil
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, classifyNetErr(err))
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It owns ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		if cerr := ln.Close(); cerr != nil {
			return fmt.Errorf("server: already shut down; closing listener: %w", classifyNetErr(cerr))
		}
		return fmt.Errorf("server: already shut down: %w", dberr.ErrClosed)
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("server: accept: %w", classifyNetErr(err))
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			if cerr := conn.Close(); cerr != nil {
				continue
			}
			continue
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

// Addr returns the listening address (after Serve has installed the
// listener), or nil.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops the server gracefully: the listener closes, idle sessions
// disconnect, and busy sessions finish streaming their in-flight command
// before disconnecting. If ctx expires first, remaining sessions are
// force-canceled (their queries stop at the next cancellation poll) and
// their connections closed. Tenant handles close after the drain either
// way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	ln := s.ln
	s.mu.Unlock()
	var errs []error
	if ln != nil {
		if err := ln.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: close listener: %w", classifyNetErr(err)))
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline expired: force-cancel everything still running.
		s.mu.Lock()
		for sess := range s.sessions {
			sess.forceClose()
		}
		s.mu.Unlock()
		<-done
		errs = append(errs, fmt.Errorf("server: graceful drain cut short: %w", ctx.Err()))
	}
	if err := s.pool.CloseAll(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Stats returns the server's metrics snapshot.
func (s *Server) Stats() Stats { return s.metrics.snapshot(s.pool.OpenCount()) }

// ActiveSessions reports currently connected sessions (for tests asserting
// goroutine hygiene).
func (s *Server) ActiveSessions() int64 { return s.metrics.activeSessions.Load() }

// ActiveQueries reports queries currently executing or streaming.
func (s *Server) ActiveQueries() int64 { return s.metrics.activeQueries.Load() }

// authenticate validates a handshake's tenant and token using a
// constant-time token comparison.
func (s *Server) authenticate(tenant, token string) error {
	want, ok := s.cfg.Tenants[tenant]
	if !ok || !constantTimeEqual(token, want) {
		return fmt.Errorf("server: unknown tenant or bad token: %w", dberr.ErrAuth)
	}
	return nil
}

func constantTimeEqual(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := 0; i < len(a); i++ {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

// classifyNetErr wraps a network failure under dberr.ErrIO (net.ErrClosed
// under dberr.ErrClosed) so server errors classify like engine errors.
func classifyNetErr(err error) error {
	if errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("%v: %w", err, dberr.ErrClosed)
	}
	return fmt.Errorf("%v: %w", err, dberr.ErrIO)
}
