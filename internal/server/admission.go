package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dataspread/dataspread/internal/dberr"
)

// Admission control: a global and a per-tenant cap on in-flight queries,
// each with a bounded wait queue. A query that cannot take a slot
// immediately waits in the queue for at most queueWait; a query arriving at
// a full queue is rejected at once. Rejections carry dberr.ErrOverloaded so
// clients can branch on the class and back off — the request was never
// executed. The tenant cap is acquired before the global cap so one noisy
// tenant saturates its own slice, not every other tenant's queue (the
// Polynesia-style isolation argument: interactive tenants keep making
// progress while an analytical tenant floods its own lane).
type admission struct {
	global    *sem
	queueWait time.Duration

	mu          sync.Mutex
	perTenant   map[string]*sem
	tenantCap   int
	tenantQueue int
}

func newAdmission(globalCap, globalQueue, tenantCap, tenantQueue int, queueWait time.Duration) *admission {
	return &admission{
		global:      newSem(globalCap, globalQueue),
		queueWait:   queueWait,
		perTenant:   make(map[string]*sem),
		tenantCap:   tenantCap,
		tenantQueue: tenantQueue,
	}
}

func (a *admission) tenantSem(tenant string) *sem {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.perTenant[tenant]
	if !ok {
		s = newSem(a.tenantCap, a.tenantQueue)
		a.perTenant[tenant] = s
	}
	return s
}

// Acquire admits one query for the tenant, blocking in the bounded queues
// for at most queueWait. It returns a release closure on success and an
// ErrOverloaded-classified error (or the context's error) on rejection.
func (a *admission) Acquire(ctx context.Context, tenant string) (func(), error) {
	deadline := time.NewTimer(a.queueWait)
	defer deadline.Stop()
	ts := a.tenantSem(tenant)
	if err := ts.acquire(ctx, deadline.C, "tenant"); err != nil {
		return nil, err
	}
	if err := a.global.acquire(ctx, deadline.C, "server"); err != nil {
		ts.release()
		return nil, err
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			a.global.release()
			ts.release()
		})
	}, nil
}

// sem is a counting semaphore with a bounded wait queue.
type sem struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newSem(capacity, queue int) *sem {
	return &sem{slots: make(chan struct{}, capacity), maxQueue: int64(queue)}
}

func (s *sem) acquire(ctx context.Context, deadline <-chan time.Time, scope string) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > s.maxQueue {
		s.queued.Add(-1)
		return fmt.Errorf("server: %s at its in-flight query cap and the wait queue is full: %w", scope, dberr.ErrOverloaded)
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-deadline:
		return fmt.Errorf("server: %s at its in-flight query cap and the queued wait timed out: %w", scope, dberr.ErrOverloaded)
	case <-ctx.Done():
		return fmt.Errorf("server: admission wait canceled: %w", ctx.Err())
	}
}

func (s *sem) release() { <-s.slots }
