package sqlexec

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
	"github.com/dataspread/dataspread/internal/txn"
)

// Result is the outcome of executing a statement: a relation for queries, an
// affected-row count for DML, and neither for DDL / transaction control.
type Result struct {
	Columns  []string
	Rows     [][]sheet.Value
	Affected int
}

// Session executes statements against a database, carrying per-caller state:
// the spreadsheet accessor used to resolve positional constructs and the
// current explicit transaction (if any).
type Session struct {
	db     *Database
	sheets SheetAccessor
	tx     *txn.Txn
}

// NewSession creates a session. sheets may be nil when positional constructs
// are not needed.
func (db *Database) NewSession(sheets SheetAccessor) *Session {
	return &Session{db: db, sheets: sheets}
}

// Query executes a single SQL statement through the prepared-plan cache:
// repeated evaluations of the same text (the DBSQL recalculation pattern)
// skip parsing and analysis entirely.
func (s *Session) Query(sql string) (*Result, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryContext executes a single SQL statement through the prepared-plan
// cache, binding args to the statement's '?' placeholders and honouring ctx
// cancellation at pipeline batch boundaries.
func (s *Session) QueryContext(ctx context.Context, sql string, args ...sheet.Value) (*Result, error) {
	p, err := s.db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecutePreparedContext(ctx, p, args...)
}

// ExecutePrepared runs a prepared statement without parameters.
func (s *Session) ExecutePrepared(p *Prepared) (*Result, error) {
	return s.ExecutePreparedContext(context.Background(), p)
}

// ExecutePreparedContext runs a prepared statement with the given placeholder
// arguments. The argument count must match the statement's placeholder
// count exactly (dberr.ErrParamCount otherwise).
func (s *Session) ExecutePreparedContext(ctx context.Context, p *Prepared, args ...sheet.Value) (*Result, error) {
	env, err := s.execEnv(ctx, p, args)
	if err != nil {
		return nil, err
	}
	if sel, ok := p.stmt.(*sqlparser.SelectStmt); ok && p.sel != nil {
		return s.db.runSelect(sel, p.sel, env)
	}
	return s.executeWith(p.stmt, env)
}

// execEnv validates the bound arguments against the prepared statement and
// builds the per-execution environment.
func (s *Session) execEnv(ctx context.Context, p *Prepared, args []sheet.Value) (*execEnv, error) {
	if len(args) != p.nparams {
		return nil, fmt.Errorf("sqlexec: statement has %d parameter(s), %d bound: %w",
			p.nparams, len(args), dberr.ErrParamCount)
	}
	return &execEnv{sheets: s.sheets, params: args, ctx: ctx}, nil
}

// QueryScript parses and executes a semicolon-separated script, returning the
// result of the last statement. Scripts do not accept placeholders.
func (s *Session) QueryScript(sql string) (*Result, error) {
	stmts, err := sqlparser.ParseMulti(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, stmt := range stmts {
		last, err = s.Execute(stmt)
		if err != nil {
			return nil, err
		}
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// tableSchema builds the relation schema of one named table for binding
// DML predicates and assignments.
func tableSchema(tbl *catalog.Table) []colDesc {
	label := strings.ToLower(tbl.Name)
	cols := make([]colDesc, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = colDesc{table: label, name: strings.ToLower(c.Name)}
	}
	return cols
}

// Execute runs one parsed statement without parameters.
func (s *Session) Execute(stmt sqlparser.Statement) (*Result, error) {
	return s.executeWith(stmt, &execEnv{sheets: s.sheets})
}

// executeWith runs one parsed statement under the given execution
// environment.
func (s *Session) executeWith(stmt sqlparser.Statement, env *execEnv) (*Result, error) {
	switch st := stmt.(type) {
	case *sqlparser.SelectStmt:
		return s.db.executeSelect(st, env)
	case *sqlparser.InsertStmt:
		return s.executeInsert(st, env)
	case *sqlparser.UpdateStmt:
		return s.executeUpdate(st, env)
	case *sqlparser.DeleteStmt:
		return s.executeDelete(st, env)
	case *sqlparser.CreateTableStmt:
		return s.executeCreateTable(st, env)
	case *sqlparser.AlterTableStmt:
		return s.executeAlterTable(st, env)
	case *sqlparser.DropTableStmt:
		return s.executeDropTable(st)
	case *sqlparser.CreateIndexStmt:
		if err := s.db.CreateIndex(st.Name, st.Table, st.Columns, st.Unique, st.IfNotExists); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropIndexStmt:
		if err := s.db.DropIndex(st.Name, st.IfExists); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.ExplainStmt:
		return s.executeExplain(st, env)
	case *sqlparser.BeginStmt:
		if s.tx != nil {
			return nil, fmt.Errorf("sqlexec: %w", dberr.ErrTxOpen)
		}
		s.tx = s.db.txns.Begin()
		return &Result{}, nil
	case *sqlparser.CommitStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("sqlexec: %w", dberr.ErrNoTx)
		}
		err := s.tx.Commit()
		s.tx = nil
		return &Result{}, err
	case *sqlparser.RollbackStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("sqlexec: %w", dberr.ErrNoTx)
		}
		err := s.tx.Rollback()
		s.tx = nil
		return &Result{}, err
	default:
		return nil, fmt.Errorf("sqlexec: unsupported statement %T: %w", stmt, dberr.ErrUnsupported)
	}
}

// dmlAccessPath chooses an index access path for locating the target rows
// of UPDATE/DELETE, or nil for a full scan. Candidate narrowing is only
// safe when no WHERE conjunct can raise an evaluation error: skipping a row
// the index rules out must be indistinguishable from evaluating the WHERE
// to false on it.
func (s *Session) dmlAccessPath(tbl *catalog.Table, where sqlparser.Expr, env *execEnv) *accessPath {
	if where == nil {
		return nil
	}
	conjuncts := sqlparser.SplitConjuncts(where)
	for _, c := range conjuncts {
		if exprCanError(c) {
			return nil
		}
	}
	path := s.db.chooseAccessPath(tbl, tableSchema(tbl), conjuncts, env, noOrder)
	if path == nil || path.kind == pathFull {
		return nil
	}
	return path
}

// scanDMLTargets visits candidate target rows of an UPDATE/DELETE: via the
// index access path when one applies, via a full scan otherwise. The rows
// passed to visit are caller-owned copies. The collection phase runs under
// the database read lock (concurrent sessions may be writing other
// statements); the caller applies its writes after the scan returns.
func (s *Session) scanDMLTargets(tbl *catalog.Table, where sqlparser.Expr, env *execEnv, visit func(id tablestore.RowID, row []sheet.Value) bool) error {
	store, err := s.db.store(tbl.Name)
	if err != nil {
		return err
	}
	path := s.dmlAccessPath(tbl, where, env)
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	if path != nil {
		for _, id := range s.db.collectPathIDsLocked(tbl.Name, path) {
			if err := env.check(); err != nil {
				return err
			}
			row, err := store.Get(id)
			if err != nil {
				if errors.Is(err, tablestore.ErrRowNotFound) {
					continue
				}
				return err
			}
			if !visit(id, row) {
				return nil
			}
		}
		return nil
	}
	var ctxErr error
	err = store.Scan(func(id tablestore.RowID, row []sheet.Value) bool {
		if ctxErr = env.check(); ctxErr != nil {
			return false
		}
		return visit(id, row)
	})
	if err == nil {
		err = ctxErr
	}
	return err
}

// evalConstExpr evaluates an expression with no row context (literals,
// RANGEVALUE, placeholders, arithmetic).
func (s *Session) evalConstExpr(e sqlparser.Expr, env *execEnv) (sheet.Value, error) {
	be, err := compileExpr(e, &compileEnv{noRel: true, sheets: env.sheets})
	if err != nil {
		return sheet.Empty(), err
	}
	return be.eval(env.newRowCtx())
}

func (s *Session) executeInsert(st *sqlparser.InsertStmt, env *execEnv) (*Result, error) {
	tbl, err := s.db.cat.MustGet(st.Table)
	if err != nil {
		return nil, err
	}
	// Map the provided column list (or the full schema) to schema positions.
	targets := make([]int, 0, len(tbl.Columns))
	if len(st.Columns) == 0 {
		for i := range tbl.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, name := range st.Columns {
			idx, ok := tbl.ColumnIndex(name)
			if !ok {
				return nil, fmt.Errorf("sqlexec: unknown column %q in INSERT: %w", name, dberr.ErrColumnNotFound)
			}
			targets = append(targets, idx)
		}
	}
	buildRow := func(vals []sheet.Value) ([]sheet.Value, error) {
		if len(vals) != len(targets) {
			return nil, fmt.Errorf("sqlexec: INSERT expects %d values, got %d: %w", len(targets), len(vals), dberr.ErrParamCount)
		}
		row := make([]sheet.Value, len(tbl.Columns))
		for i, col := range tbl.Columns {
			row[i] = col.Default
		}
		for i, idx := range targets {
			row[idx] = vals[i]
		}
		return row, nil
	}
	affected := 0
	insertOne := func(vals []sheet.Value) error {
		row, err := buildRow(vals)
		if err != nil {
			return err
		}
		if _, err := s.db.insert(st.Table, row, s.tx); err != nil {
			return err
		}
		affected++
		return nil
	}
	if st.Select != nil {
		res, err := s.db.executeSelect(st.Select, env)
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if err := env.check(); err != nil {
				return nil, err
			}
			if err := insertOne(row); err != nil {
				return nil, err
			}
		}
		return &Result{Affected: affected}, nil
	}
	for _, exprRow := range st.Rows {
		vals := make([]sheet.Value, len(exprRow))
		for i, e := range exprRow {
			v, err := s.evalConstExpr(e, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := insertOne(vals); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: affected}, nil
}

func (s *Session) executeUpdate(st *sqlparser.UpdateStmt, env *execEnv) (*Result, error) {
	tbl, err := s.db.cat.MustGet(st.Table)
	if err != nil {
		return nil, err
	}
	// Resolve SET target columns.
	type setTarget struct {
		idx  int
		expr sqlparser.Expr
	}
	var sets []setTarget
	for _, a := range st.Set {
		idx, ok := tbl.ColumnIndex(a.Column)
		if !ok {
			return nil, fmt.Errorf("sqlexec: unknown column %q in UPDATE: %w", a.Column, dberr.ErrColumnNotFound)
		}
		sets = append(sets, setTarget{idx: idx, expr: a.Value})
	}
	cenv := env.compileEnv(tableSchema(tbl))
	var where boundExpr
	if st.Where != nil {
		if where, err = compileExpr(st.Where, cenv); err != nil {
			return nil, err
		}
	}
	setExprs := make([]boundExpr, len(sets))
	for i, set := range sets {
		if setExprs[i], err = compileExpr(set.expr, cenv); err != nil {
			return nil, err
		}
	}
	// Collect matching rows first, then apply, so the scan does not observe
	// its own writes.
	type pending struct {
		id  tablestore.RowID
		row []sheet.Value
	}
	var updates []pending
	ctx := env.newRowCtx()
	err = s.scanDMLTargets(tbl, st.Where, env, func(id tablestore.RowID, row []sheet.Value) bool {
		ctx.row = row
		if where != nil {
			keep, perr := evalBoundPredicate(where, ctx)
			if perr != nil {
				err = perr
				return false
			}
			if !keep {
				return true
			}
		}
		newRow := append([]sheet.Value(nil), row...)
		for i, set := range sets {
			v, eerr := setExprs[i].eval(ctx)
			if eerr != nil {
				err = eerr
				return false
			}
			newRow[set.idx] = v
		}
		updates = append(updates, pending{id: id, row: newRow})
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, u := range updates {
		if err := s.db.update(st.Table, u.id, u.row, s.tx); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(updates)}, nil
}

func (s *Session) executeDelete(st *sqlparser.DeleteStmt, env *execEnv) (*Result, error) {
	tbl, err := s.db.cat.MustGet(st.Table)
	if err != nil {
		return nil, err
	}
	var where boundExpr
	if st.Where != nil {
		if where, err = compileExpr(st.Where, env.compileEnv(tableSchema(tbl))); err != nil {
			return nil, err
		}
	}
	var ids []tablestore.RowID
	ctx := env.newRowCtx()
	err = s.scanDMLTargets(tbl, st.Where, env, func(id tablestore.RowID, row []sheet.Value) bool {
		if where != nil {
			ctx.row = row
			keep, perr := evalBoundPredicate(where, ctx)
			if perr != nil {
				err = perr
				return false
			}
			if !keep {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := env.check(); err != nil {
			return nil, err
		}
		if err := s.db.delete(st.Table, id, s.tx); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(ids)}, nil
}

func (s *Session) executeCreateTable(st *sqlparser.CreateTableStmt, env *execEnv) (*Result, error) {
	if _, exists := s.db.cat.Get(st.Name); exists {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqlexec: table %q: %w", st.Name, dberr.ErrTableExists)
	}
	if st.AsSelect != nil {
		res, err := s.db.executeSelect(st.AsSelect, env)
		if err != nil {
			return nil, err
		}
		cols := make([]catalog.Column, len(res.Columns))
		for i, name := range res.Columns {
			t := catalog.TypeAny
			for _, row := range res.Rows {
				if err := env.check(); err != nil {
					return nil, err
				}
				if i < len(row) && !row[i].IsEmpty() {
					t = catalog.UnifyTypes(t, catalog.InferType(row[i]))
				}
			}
			cols[i] = catalog.Column{Name: name, Type: t}
		}
		if err := s.db.CreateTable(st.Name, cols); err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if err := env.check(); err != nil {
				return nil, err
			}
			padded := make([]sheet.Value, len(cols))
			copy(padded, row)
			if _, err := s.db.insert(st.Name, padded, s.tx); err != nil {
				return nil, err
			}
		}
		if s.tx != nil {
			_ = s.tx.Log(txn.Op{Kind: txn.OpCreateTable, Table: st.Name}, func() error {
				return s.db.DropTable(st.Name)
			})
		}
		return &Result{Affected: len(res.Rows)}, nil
	}
	cols := make([]catalog.Column, len(st.Columns))
	for i, cd := range st.Columns {
		col := catalog.Column{
			Name:       cd.Name,
			Type:       catalog.ParseType(cd.Type),
			PrimaryKey: cd.PrimaryKey,
			NotNull:    cd.NotNull,
		}
		if cd.Default != nil {
			v, err := s.evalConstExpr(cd.Default, env)
			if err != nil {
				return nil, err
			}
			col.Default = v
		}
		cols[i] = col
	}
	if err := s.db.CreateTable(st.Name, cols); err != nil {
		return nil, err
	}
	if s.tx != nil {
		_ = s.tx.Log(txn.Op{Kind: txn.OpCreateTable, Table: st.Name}, func() error {
			return s.db.DropTable(st.Name)
		})
	}
	return &Result{}, nil
}

func (s *Session) executeAlterTable(st *sqlparser.AlterTableStmt, env *execEnv) (*Result, error) {
	switch {
	case st.AddColumn != nil:
		cd := st.AddColumn
		col := catalog.Column{
			Name:       cd.Name,
			Type:       catalog.ParseType(cd.Type),
			PrimaryKey: cd.PrimaryKey,
			NotNull:    cd.NotNull,
		}
		def := sheet.Empty()
		if cd.Default != nil {
			v, err := s.evalConstExpr(cd.Default, env)
			if err != nil {
				return nil, err
			}
			col.Default = v
			def = v
		}
		if err := s.db.addColumn(st.Table, col, def, s.tx); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case st.DropColumn != "":
		if err := s.db.DropColumn(st.Table, st.DropColumn); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case st.RenameColumn != nil:
		if err := s.db.RenameColumn(st.Table, st.RenameColumn[0], st.RenameColumn[1]); err != nil {
			return nil, err
		}
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("sqlexec: empty ALTER TABLE: %w", dberr.ErrSyntax)
	}
}

func (s *Session) executeDropTable(st *sqlparser.DropTableStmt) (*Result, error) {
	if _, exists := s.db.cat.Get(st.Name); !exists {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, catalog.ErrNoTable{Name: st.Name}
	}
	if err := s.db.DropTable(st.Name); err != nil {
		return nil, err
	}
	return &Result{}, nil
}
