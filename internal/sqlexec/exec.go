package sqlexec

import (
	"errors"
	"fmt"
	"strings"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
	"github.com/dataspread/dataspread/internal/txn"
)

// Result is the outcome of executing a statement: a relation for queries, an
// affected-row count for DML, and neither for DDL / transaction control.
type Result struct {
	Columns  []string
	Rows     [][]sheet.Value
	Affected int
}

// Session executes statements against a database, carrying per-caller state:
// the spreadsheet accessor used to resolve positional constructs and the
// current explicit transaction (if any).
type Session struct {
	db     *Database
	sheets SheetAccessor
	tx     *txn.Txn
}

// NewSession creates a session. sheets may be nil when positional constructs
// are not needed.
func (db *Database) NewSession(sheets SheetAccessor) *Session {
	return &Session{db: db, sheets: sheets}
}

// Query executes a single SQL statement through the prepared-plan cache:
// repeated evaluations of the same text (the DBSQL recalculation pattern)
// skip parsing and analysis entirely.
func (s *Session) Query(sql string) (*Result, error) {
	p, err := s.db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecutePrepared(p)
}

// ExecutePrepared runs a prepared statement.
func (s *Session) ExecutePrepared(p *Prepared) (*Result, error) {
	if sel, ok := p.stmt.(*sqlparser.SelectStmt); ok && p.sel != nil {
		return s.db.runSelect(sel, p.sel, s.sheets)
	}
	return s.Execute(p.stmt)
}

// QueryScript parses and executes a semicolon-separated script, returning the
// result of the last statement.
func (s *Session) QueryScript(sql string) (*Result, error) {
	stmts, err := sqlparser.ParseMulti(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, stmt := range stmts {
		last, err = s.Execute(stmt)
		if err != nil {
			return nil, err
		}
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// tableSchema builds the relation schema of one named table for binding
// DML predicates and assignments.
func tableSchema(tbl *catalog.Table) []colDesc {
	label := strings.ToLower(tbl.Name)
	cols := make([]colDesc, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = colDesc{table: label, name: strings.ToLower(c.Name)}
	}
	return cols
}

// Execute runs one parsed statement.
func (s *Session) Execute(stmt sqlparser.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *sqlparser.SelectStmt:
		return s.db.executeSelect(st, s.sheets)
	case *sqlparser.InsertStmt:
		return s.executeInsert(st)
	case *sqlparser.UpdateStmt:
		return s.executeUpdate(st)
	case *sqlparser.DeleteStmt:
		return s.executeDelete(st)
	case *sqlparser.CreateTableStmt:
		return s.executeCreateTable(st)
	case *sqlparser.AlterTableStmt:
		return s.executeAlterTable(st)
	case *sqlparser.DropTableStmt:
		return s.executeDropTable(st)
	case *sqlparser.CreateIndexStmt:
		if err := s.db.CreateIndex(st.Name, st.Table, st.Columns, st.Unique, st.IfNotExists); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropIndexStmt:
		if err := s.db.DropIndex(st.Name, st.IfExists); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.ExplainStmt:
		return s.executeExplain(st)
	case *sqlparser.BeginStmt:
		if s.tx != nil {
			return nil, fmt.Errorf("sqlexec: a transaction is already open")
		}
		s.tx = s.db.txns.Begin()
		return &Result{}, nil
	case *sqlparser.CommitStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("sqlexec: no open transaction")
		}
		err := s.tx.Commit()
		s.tx = nil
		return &Result{}, err
	case *sqlparser.RollbackStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("sqlexec: no open transaction")
		}
		err := s.tx.Rollback()
		s.tx = nil
		return &Result{}, err
	default:
		return nil, fmt.Errorf("sqlexec: unsupported statement %T", stmt)
	}
}

// dmlAccessPath chooses an index access path for locating the target rows
// of UPDATE/DELETE, or nil for a full scan. Candidate narrowing is only
// safe when no WHERE conjunct can raise an evaluation error: skipping a row
// the index rules out must be indistinguishable from evaluating the WHERE
// to false on it.
func (s *Session) dmlAccessPath(tbl *catalog.Table, where sqlparser.Expr) *accessPath {
	if where == nil {
		return nil
	}
	conjuncts := sqlparser.SplitConjuncts(where)
	for _, c := range conjuncts {
		if exprCanError(c) {
			return nil
		}
	}
	path := s.db.chooseAccessPath(tbl, tableSchema(tbl), conjuncts, s.sheets, noOrder)
	if path == nil || path.kind == pathFull {
		return nil
	}
	return path
}

// scanDMLTargets visits candidate target rows of an UPDATE/DELETE: via the
// index access path when one applies, via a full scan otherwise. The rows
// passed to visit are caller-owned copies.
func (s *Session) scanDMLTargets(tbl *catalog.Table, where sqlparser.Expr, visit func(id tablestore.RowID, row []sheet.Value) bool) error {
	if path := s.dmlAccessPath(tbl, where); path != nil {
		for _, id := range s.db.collectPathIDs(tbl.Name, path) {
			row, err := s.db.Get(tbl.Name, id)
			if err != nil {
				if errors.Is(err, tablestore.ErrRowNotFound) {
					continue
				}
				return err
			}
			if !visit(id, row) {
				return nil
			}
		}
		return nil
	}
	return s.db.Scan(tbl.Name, visit)
}

// evalConstExpr evaluates an expression with no row context (literals,
// RANGEVALUE, arithmetic).
func (s *Session) evalConstExpr(e sqlparser.Expr) (sheet.Value, error) {
	be, err := compileExpr(e, &compileEnv{noRel: true, sheets: s.sheets})
	if err != nil {
		return sheet.Empty(), err
	}
	return be.eval(&rowCtx{sheets: s.sheets})
}

func (s *Session) executeInsert(st *sqlparser.InsertStmt) (*Result, error) {
	tbl, err := s.db.cat.MustGet(st.Table)
	if err != nil {
		return nil, err
	}
	// Map the provided column list (or the full schema) to schema positions.
	targets := make([]int, 0, len(tbl.Columns))
	if len(st.Columns) == 0 {
		for i := range tbl.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, name := range st.Columns {
			idx, ok := tbl.ColumnIndex(name)
			if !ok {
				return nil, fmt.Errorf("sqlexec: unknown column %q in INSERT", name)
			}
			targets = append(targets, idx)
		}
	}
	buildRow := func(vals []sheet.Value) ([]sheet.Value, error) {
		if len(vals) != len(targets) {
			return nil, fmt.Errorf("sqlexec: INSERT expects %d values, got %d", len(targets), len(vals))
		}
		row := make([]sheet.Value, len(tbl.Columns))
		for i, col := range tbl.Columns {
			row[i] = col.Default
		}
		for i, idx := range targets {
			row[idx] = vals[i]
		}
		return row, nil
	}
	affected := 0
	insertOne := func(vals []sheet.Value) error {
		row, err := buildRow(vals)
		if err != nil {
			return err
		}
		if _, err := s.db.insert(st.Table, row, s.tx); err != nil {
			return err
		}
		affected++
		return nil
	}
	if st.Select != nil {
		res, err := s.db.executeSelect(st.Select, s.sheets)
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			if err := insertOne(row); err != nil {
				return nil, err
			}
		}
		return &Result{Affected: affected}, nil
	}
	for _, exprRow := range st.Rows {
		vals := make([]sheet.Value, len(exprRow))
		for i, e := range exprRow {
			v, err := s.evalConstExpr(e)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := insertOne(vals); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: affected}, nil
}

func (s *Session) executeUpdate(st *sqlparser.UpdateStmt) (*Result, error) {
	tbl, err := s.db.cat.MustGet(st.Table)
	if err != nil {
		return nil, err
	}
	// Resolve SET target columns.
	type setTarget struct {
		idx  int
		expr sqlparser.Expr
	}
	var sets []setTarget
	for _, a := range st.Set {
		idx, ok := tbl.ColumnIndex(a.Column)
		if !ok {
			return nil, fmt.Errorf("sqlexec: unknown column %q in UPDATE", a.Column)
		}
		sets = append(sets, setTarget{idx: idx, expr: a.Value})
	}
	env := &compileEnv{cols: tableSchema(tbl), sheets: s.sheets}
	var where boundExpr
	if st.Where != nil {
		if where, err = compileExpr(st.Where, env); err != nil {
			return nil, err
		}
	}
	setExprs := make([]boundExpr, len(sets))
	for i, set := range sets {
		if setExprs[i], err = compileExpr(set.expr, env); err != nil {
			return nil, err
		}
	}
	// Collect matching rows first, then apply, so the scan does not observe
	// its own writes.
	type pending struct {
		id  tablestore.RowID
		row []sheet.Value
	}
	var updates []pending
	ctx := &rowCtx{sheets: s.sheets}
	err = s.scanDMLTargets(tbl, st.Where, func(id tablestore.RowID, row []sheet.Value) bool {
		ctx.row = row
		if where != nil {
			keep, perr := evalBoundPredicate(where, ctx)
			if perr != nil {
				err = perr
				return false
			}
			if !keep {
				return true
			}
		}
		newRow := append([]sheet.Value(nil), row...)
		for i, set := range sets {
			v, eerr := setExprs[i].eval(ctx)
			if eerr != nil {
				err = eerr
				return false
			}
			newRow[set.idx] = v
		}
		updates = append(updates, pending{id: id, row: newRow})
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, u := range updates {
		if err := s.db.update(st.Table, u.id, u.row, s.tx); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(updates)}, nil
}

func (s *Session) executeDelete(st *sqlparser.DeleteStmt) (*Result, error) {
	tbl, err := s.db.cat.MustGet(st.Table)
	if err != nil {
		return nil, err
	}
	var where boundExpr
	if st.Where != nil {
		env := &compileEnv{cols: tableSchema(tbl), sheets: s.sheets}
		if where, err = compileExpr(st.Where, env); err != nil {
			return nil, err
		}
	}
	var ids []tablestore.RowID
	ctx := &rowCtx{sheets: s.sheets}
	err = s.scanDMLTargets(tbl, st.Where, func(id tablestore.RowID, row []sheet.Value) bool {
		if where != nil {
			ctx.row = row
			keep, perr := evalBoundPredicate(where, ctx)
			if perr != nil {
				err = perr
				return false
			}
			if !keep {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := s.db.delete(st.Table, id, s.tx); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(ids)}, nil
}

func (s *Session) executeCreateTable(st *sqlparser.CreateTableStmt) (*Result, error) {
	if _, exists := s.db.cat.Get(st.Name); exists {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqlexec: table %q already exists", st.Name)
	}
	if st.AsSelect != nil {
		res, err := s.db.executeSelect(st.AsSelect, s.sheets)
		if err != nil {
			return nil, err
		}
		cols := make([]catalog.Column, len(res.Columns))
		for i, name := range res.Columns {
			t := catalog.TypeAny
			for _, row := range res.Rows {
				if i < len(row) && !row[i].IsEmpty() {
					t = catalog.UnifyTypes(t, catalog.InferType(row[i]))
				}
			}
			cols[i] = catalog.Column{Name: name, Type: t}
		}
		if err := s.db.CreateTable(st.Name, cols); err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			padded := make([]sheet.Value, len(cols))
			copy(padded, row)
			if _, err := s.db.insert(st.Name, padded, s.tx); err != nil {
				return nil, err
			}
		}
		if s.tx != nil {
			_ = s.tx.Log(txn.Op{Kind: txn.OpCreateTable, Table: st.Name}, func() error {
				return s.db.DropTable(st.Name)
			})
		}
		return &Result{Affected: len(res.Rows)}, nil
	}
	cols := make([]catalog.Column, len(st.Columns))
	for i, cd := range st.Columns {
		col := catalog.Column{
			Name:       cd.Name,
			Type:       catalog.ParseType(cd.Type),
			PrimaryKey: cd.PrimaryKey,
			NotNull:    cd.NotNull,
		}
		if cd.Default != nil {
			v, err := s.evalConstExpr(cd.Default)
			if err != nil {
				return nil, err
			}
			col.Default = v
		}
		cols[i] = col
	}
	if err := s.db.CreateTable(st.Name, cols); err != nil {
		return nil, err
	}
	if s.tx != nil {
		_ = s.tx.Log(txn.Op{Kind: txn.OpCreateTable, Table: st.Name}, func() error {
			return s.db.DropTable(st.Name)
		})
	}
	return &Result{}, nil
}

func (s *Session) executeAlterTable(st *sqlparser.AlterTableStmt) (*Result, error) {
	switch {
	case st.AddColumn != nil:
		cd := st.AddColumn
		col := catalog.Column{
			Name:       cd.Name,
			Type:       catalog.ParseType(cd.Type),
			PrimaryKey: cd.PrimaryKey,
			NotNull:    cd.NotNull,
		}
		def := sheet.Empty()
		if cd.Default != nil {
			v, err := s.evalConstExpr(cd.Default)
			if err != nil {
				return nil, err
			}
			col.Default = v
			def = v
		}
		if err := s.db.addColumn(st.Table, col, def, s.tx); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case st.DropColumn != "":
		if err := s.db.DropColumn(st.Table, st.DropColumn); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case st.RenameColumn != nil:
		if err := s.db.RenameColumn(st.Table, st.RenameColumn[0], st.RenameColumn[1]); err != nil {
			return nil, err
		}
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("sqlexec: empty ALTER TABLE")
	}
}

func (s *Session) executeDropTable(st *sqlparser.DropTableStmt) (*Result, error) {
	if _, exists := s.db.cat.Get(st.Name); !exists {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, catalog.ErrNoTable{Name: st.Name}
	}
	if err := s.db.DropTable(st.Name); err != nil {
		return nil, err
	}
	return &Result{}, nil
}
