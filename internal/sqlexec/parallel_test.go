package sqlexec

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// The parallel executor must be output-equivalent to the serial one: every
// query here runs once under SetForceSerial(true) (the golden) and once in
// parallel mode, on identical data, and the results must match row for row.
// Integer-valued data keeps SUM/AVG exact, so the reassociation a parallel
// fold introduces cannot perturb float results.

// parTestRows is comfortably above parMinRows so the parallel fragments
// actually engage.
const parTestRows = parMinRows + 1200

func newParDB(t *testing.T, layout Layout) *Database {
	t.Helper()
	db := NewDatabase(Config{Layout: layout, GroupSize: 2, Workers: 4})
	mustExecP(t, db, `CREATE TABLE items (id NUMBER PRIMARY KEY, grp NUMBER, qty NUMBER, label STRING)`)
	mustExecP(t, db, `CREATE TABLE grps (gid NUMBER PRIMARY KEY, name STRING)`)
	for i := 0; i < parTestRows; i++ {
		if _, err := db.Insert("items", []sheet.Value{
			sheet.Number(float64(i)),
			sheet.Number(float64(i % 37)),
			sheet.Number(float64(i%101 - 50)),
			sheet.String_(fmt.Sprintf("item-%d", i%13)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// More groups than fit one morsel, and a few gids with no items so LEFT
	// JOIN padding differs from the inner join.
	for g := 0; g < 45; g++ {
		if _, err := db.Insert("grps", []sheet.Value{
			sheet.Number(float64(g)), sheet.String_(fmt.Sprintf("group-%d", g)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A handful of deletes so snapshots scan around tombstones.
	for _, id := range []int64{3, 500, 4000} {
		if err := db.Delete("items", mustFindPK(t, db, id)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func mustExecP(t *testing.T, db *Database, sql string) {
	t.Helper()
	if _, err := db.NewSession(nil).Query(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func mustFindPK(t *testing.T, db *Database, id int64) tablestore.RowID {
	t.Helper()
	r, ok, err := db.FindByKey("items", []sheet.Value{sheet.Number(float64(id))})
	if err != nil || !ok {
		t.Fatalf("FindByKey(%d): ok=%v err=%v", id, ok, err)
	}
	return r
}

var parGoldenQueries = []string{
	// Full scan and pushed-predicate scans.
	`SELECT id, grp, qty, label FROM items`,
	`SELECT id, label FROM items WHERE qty > 10`,
	`SELECT id FROM items WHERE label = 'item-7' AND qty <> 0`,
	// Aggregation: implicit single group and explicit GROUP BY with every
	// accumulator kind, HAVING, and expression keys.
	`SELECT COUNT(*), SUM(qty), MIN(qty), MAX(label) FROM items`,
	`SELECT grp, COUNT(*), SUM(qty), AVG(qty), MIN(id), MAX(id) FROM items GROUP BY grp ORDER BY grp`,
	`SELECT grp, COUNT(*) FROM items GROUP BY grp HAVING SUM(qty) > 0 ORDER BY grp`,
	`SELECT grp + 1, COUNT(*) FROM items WHERE id < 5000 GROUP BY grp + 1 ORDER BY 1`,
	// DISTINCT aggregates must fall back to serial and still agree.
	`SELECT COUNT(DISTINCT label) FROM items`,
	// Hash joins: ON equi-key (inner and LEFT, both directions of match
	// skew) and a cross-source residual predicate.
	`SELECT i.id, g.name FROM items i JOIN grps g ON i.grp = g.gid WHERE i.qty > 25 ORDER BY i.id`,
	`SELECT g.gid, i.id FROM grps g LEFT JOIN items i ON g.gid = i.grp AND i.qty > 48 ORDER BY g.gid, i.id`,
	`SELECT COUNT(*) FROM items i JOIN grps g ON i.grp = g.gid AND i.qty <> g.gid`,
	// DISTINCT / ORDER BY / LIMIT downstream of parallel fragments.
	`SELECT DISTINCT label FROM items ORDER BY label`,
	`SELECT id, qty FROM items WHERE qty >= 0 ORDER BY qty, id LIMIT 40 OFFSET 5`,
}

func TestParallelGoldenEquivalence(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			db := newParDB(t, layout)
			sess := db.NewSession(nil)
			for _, q := range parGoldenQueries {
				db.SetForceSerial(true)
				want, err := sess.Query(q)
				if err != nil {
					t.Fatalf("serial %s: %v", q, err)
				}
				db.SetForceSerial(false)
				got, err := sess.Query(q)
				if err != nil {
					t.Fatalf("parallel %s: %v", q, err)
				}
				if !reflect.DeepEqual(want.Columns, got.Columns) {
					t.Fatalf("%s: columns %v != %v", q, got.Columns, want.Columns)
				}
				if !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Fatalf("%s: parallel result diverged from serial (%d vs %d rows)",
						q, len(got.Rows), len(want.Rows))
				}
			}
		})
	}
}

// TestParallelStreamGoldenEquivalence holds the lock-free snapshot streaming
// path to the same standard against the materialising executor.
func TestParallelStreamGoldenEquivalence(t *testing.T) {
	db := newParDB(t, LayoutHybrid)
	sess := db.NewSession(nil)
	for _, q := range []string{
		`SELECT id, qty FROM items WHERE qty > 30`,
		`SELECT label FROM items WHERE grp = 11 LIMIT 17 OFFSET 3`,
		`SELECT id FROM items`,
	} {
		db.SetForceSerial(true)
		want, err := sess.Query(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		db.SetForceSerial(false)
		rows, err := sess.QueryStream(context.Background(), q)
		if err != nil {
			t.Fatalf("stream %s: %v", q, err)
		}
		var got [][]sheet.Value
		for rows.Next() {
			got = append(got, rows.Row())
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("stream %s: %v", q, err)
		}
		if len(got) != len(want.Rows) {
			t.Fatalf("%s: streamed %d rows, want %d", q, len(got), len(want.Rows))
		}
		if !reflect.DeepEqual(want.Rows, got) {
			t.Fatalf("%s: streamed rows diverged from serial result", q)
		}
	}
}

// TestParallelWorkersConfig pins the worker-pool sizing rules.
func TestParallelWorkersConfig(t *testing.T) {
	db := NewDatabase(Config{Workers: 3})
	if got := db.parWorkers(); got != 3 {
		t.Fatalf("parWorkers = %d, want 3", got)
	}
	db.SetForceSerial(true)
	if got := db.parWorkers(); got != 1 {
		t.Fatalf("parWorkers under SetForceSerial = %d, want 1", got)
	}
	db.SetForceSerial(false)
	db.SetWorkers(7)
	if got := db.parWorkers(); got != 7 {
		t.Fatalf("parWorkers after SetWorkers(7) = %d, want 7", got)
	}
	db.SetWorkers(0)
	if got := db.parWorkers(); got != 3 {
		t.Fatalf("parWorkers after SetWorkers(0) = %d, want Config value 3", got)
	}
	if got := NewDatabase(Config{}).parWorkers(); got < 1 {
		t.Fatalf("default parWorkers = %d, want >= 1", got)
	}
}
