package sqlexec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// The streaming SELECT executor. A statement runs as a pipeline of
//
//	scan -> filter -> join -> group -> sort/limit
//
// with three properties the old materialize-everything executor lacked:
//
//   - Predicate pushdown: WHERE conjuncts that reference a single FROM
//     source are evaluated inside that source's scan, before rows are
//     copied out of the storage manager (or, for RANGETABLE and sub-select
//     sources, before rows flow into joins).
//   - Projection pruning: named tables are scanned through ScanCols with
//     only the referenced columns, so column and hybrid layouts never page
//     in blocks of unreferenced attribute groups.
//   - Bound evaluation: every expression is compiled once per execution
//     against its relation schema (see bind.go); per-row evaluation never
//     resolves names and never formats hash keys.

// executeSelect runs a SELECT statement to a materialised Result.
func (db *Database) executeSelect(stmt *sqlparser.SelectStmt, env *execEnv) (*Result, error) {
	return db.runSelect(stmt, analyzeSelect(stmt), env)
}

// runSelect executes a SELECT according to its cached analysis.
func (db *Database) runSelect(stmt *sqlparser.SelectStmt, an *selectAnalysis, env *execEnv) (*Result, error) {
	rel, residual, err := db.buildInput(stmt, an, env)
	if err != nil {
		return nil, err
	}
	// Residual WHERE conjuncts (those spanning sources, or blocked by the
	// nullable side of a LEFT JOIN) filter the joined relation.
	if len(residual) > 0 {
		rel, err = db.filterResidual(rel, residual, env)
		if err != nil {
			return nil, err
		}
	}

	var out *Result
	var sortKeys [][]sheet.Value
	if an.grouped {
		out, sortKeys, err = db.projectGrouped(stmt, rel, env)
	} else {
		out, sortKeys, err = db.projectRows(stmt, rel, env)
	}
	if err != nil {
		return nil, err
	}
	if stmt.Distinct {
		out, sortKeys = distinctRows(out, sortKeys)
	}
	if len(stmt.OrderBy) > 0 && sortKeys != nil {
		// The comparison sort cannot be interrupted mid-way; poll once at
		// the sort boundary so a cancelled query never starts it.
		if err := env.checkNow(); err != nil {
			return nil, err
		}
		sortResult(stmt.OrderBy, out, sortKeys)
	}
	applyLimit(stmt, out)
	return out, nil
}

// filterResidual applies the residual WHERE conjuncts to the joined
// relation.
func (db *Database) filterResidual(rel *relation, residual []sqlparser.Expr, env *execEnv) (*relation, error) {
	preds, err := compilePredicates(residual, rel.cols, env)
	if err != nil {
		return nil, err
	}
	ctx := env.newRowCtx()
	kept := rel.rows[:0]
	for _, row := range rel.rows {
		if err := env.check(); err != nil {
			return nil, err
		}
		ctx.row = row
		keep, err := allPredicates(preds, ctx)
		if err != nil {
			return nil, err
		}
		if keep {
			kept = append(kept, row)
		}
	}
	return &relation{cols: rel.cols, rows: kept}, nil
}

// --- FROM pipeline: sources, pushdown, pruning, scans, joins ---

// srcState is one FROM relation while the input pipeline is being built.
type srcState struct {
	label string
	cols  []colDesc // full schema
	store tablestore.Store
	tbl   *catalog.Table  // catalog entry (named tables)
	rows  [][]sheet.Value // materialised rows (RANGETABLE / sub-select)

	pushed    []sqlparser.Expr // conjuncts evaluated inside this source's scan
	needed    []bool           // referenced columns (named tables)
	allNeeded bool
	path      *accessPath // chosen access path (named tables)

	// zoneBounds are the sargable conjuncts in zone-map form; scans consult
	// them against per-page summaries to drop provably matchless pages.
	zoneBounds []tablestore.ZoneBound
}

func (s *srcState) mark(col int) {
	if s.needed != nil {
		s.needed[col] = true
	}
}

// inputPlan is the planned FROM clause: the sources with their pushed
// conjuncts and chosen access paths, the residual conjuncts, and whether a
// constant WHERE conjunct already emptied the result.
type inputPlan struct {
	srcs     []*srcState
	residual []sqlparser.Expr
	live     bool
}

// buildInput materialises the FROM clause: scans with pushdown, pruning and
// access-path selection, then joins. It returns the joined relation and the
// residual conjuncts.
func (db *Database) buildInput(stmt *sqlparser.SelectStmt, an *selectAnalysis, env *execEnv) (*relation, []sqlparser.Expr, error) {
	plan, err := db.planInput(stmt, an, env)
	if err != nil {
		return nil, nil, err
	}
	if plan.srcs == nil {
		// Table-less SELECT: a single anonymous row.
		rel := &relation{}
		if plan.live {
			rel.rows = [][]sheet.Value{{}}
		}
		return rel, plan.residual, nil
	}
	left, err := db.scanSource(plan.srcs[0], plan.live, env)
	if err != nil {
		return nil, nil, err
	}
	for ji, join := range stmt.Joins {
		right, err := db.scanSource(plan.srcs[ji+1], plan.live, env)
		if err != nil {
			return nil, nil, err
		}
		left, err = db.joinRelations(left, right, join, env)
		if err != nil {
			return nil, nil, err
		}
	}
	return left, plan.residual, nil
}

// planInput resolves the FROM sources, assigns every WHERE conjunct to a
// source or the residual, and chooses each named table's access path.
func (db *Database) planInput(stmt *sqlparser.SelectStmt, an *selectAnalysis, env *execEnv) (*inputPlan, error) {
	// Row-independent, error-free conjuncts are evaluated once per
	// execution; a false or NULL one empties the result. Once one is
	// false, the rest are skipped — WHERE short-circuits left to right.
	// Placeholders resolve against this execution's bound arguments here,
	// so the same cached statement plans fresh bounds every execution.
	live := true
	var nonConst []sqlparser.Expr
	var nonConstPush []bool
	emptyCtx := env.newRowCtx()
	for i, c := range an.conjuncts {
		if !an.constConjuncts[i] {
			nonConst = append(nonConst, c)
			nonConstPush = append(nonConstPush, an.pushable[i])
			continue
		}
		if !live {
			continue
		}
		be, err := compileExpr(c, &compileEnv{sheets: env.sheets})
		if err != nil {
			return nil, err
		}
		ok, err := evalBoundPredicate(be, emptyCtx)
		if err != nil {
			return nil, err
		}
		live = live && ok
	}

	if stmt.From == nil {
		return &inputPlan{live: live, residual: nonConst}, nil
	}

	srcs, err := db.buildSources(stmt, env)
	if err != nil {
		return nil, err
	}

	// Simulate the joined schema over the full source schemas: the final
	// column list, where each column came from, and the join key columns
	// (which count as referenced on both sides).
	accum := append([]colDesc(nil), srcs[0].cols...)
	origin := make([]srcCol, len(accum))
	for i := range accum {
		origin[i] = srcCol{src: 0, col: i}
	}
	for ji, join := range stmt.Joins {
		si := ji + 1
		right := srcs[si]
		var rightKeys []int
		switch {
		case join.Natural:
			for li, lc := range accum {
				for ri, rc := range right.cols {
					if lc.name == rc.name {
						srcs[origin[li].src].mark(origin[li].col)
						right.mark(ri)
						rightKeys = append(rightKeys, ri)
						break
					}
				}
			}
		case len(join.Using) > 0:
			for _, name := range join.Using {
				n := strings.ToLower(name)
				li, err := findColumn(accum, "", n)
				if err != nil {
					return nil, err
				}
				ri, err := findColumn(right.cols, "", n)
				if err != nil {
					return nil, err
				}
				srcs[origin[li].src].mark(origin[li].col)
				right.mark(ri)
				rightKeys = append(rightKeys, ri)
			}
		case join.On != nil:
			combined := append(append([]colDesc(nil), accum...), right.cols...)
			comboOrigin := make([]srcCol, 0, len(origin)+len(right.cols))
			comboOrigin = append(comboOrigin, origin...)
			for ri := range right.cols {
				comboOrigin = append(comboOrigin, srcCol{src: si, col: ri})
			}
			markRefs(join.On, combined, comboOrigin, srcs)
		}
		dropRight := make(map[int]bool, len(rightKeys))
		for _, ri := range rightKeys {
			dropRight[ri] = true
		}
		for ri, rc := range right.cols {
			if dropRight[ri] {
				continue
			}
			accum = append(accum, rc)
			origin = append(origin, srcCol{src: si, col: ri})
		}
	}

	// Mark every column the statement references against the final schema.
	for _, item := range stmt.Columns {
		switch {
		case item.Star && item.TableStar == "":
			for _, s := range srcs {
				s.allNeeded = true
			}
		case item.Star:
			q := strings.ToLower(item.TableStar)
			for i, c := range accum {
				if c.table == q {
					srcs[origin[i].src].mark(origin[i].col)
				}
			}
		default:
			markRefs(item.Expr, accum, origin, srcs)
		}
	}
	for _, g := range stmt.GroupBy {
		markRefs(g, accum, origin, srcs)
	}
	if an.grouped && stmt.Having != nil {
		markRefs(stmt.Having, accum, origin, srcs)
	}
	for _, o := range stmt.OrderBy {
		markRefs(o.Expr, accum, origin, srcs)
	}

	// Assign each non-constant conjunct: pushed into the single source it
	// references when it cannot error and that source is not on the
	// nullable side of a LEFT JOIN, residual otherwise.
	var residual []sqlparser.Expr
	for i, c := range nonConst {
		markRefs(c, accum, origin, srcs)
		src, ok := conjunctSource(c, accum, origin)
		if ok && nonConstPush[i] && (src == 0 || stmt.Joins[src-1].Type != sqlparser.JoinLeft) {
			srcs[src].pushed = append(srcs[src].pushed, c)
		} else {
			residual = append(residual, c)
		}
	}

	// Choose each named table's access path from its pushed conjuncts. The
	// first source may additionally satisfy the statement's ORDER BY from
	// index order — and stop early under a LIMIT — when nothing downstream
	// (joins, residual filters, grouping, DISTINCT) can reorder or drop
	// rows behind the scan's back.
	for i, s := range srcs {
		if s.store == nil || s.tbl == nil {
			continue
		}
		ord := noOrder
		if i == 0 && len(stmt.Joins) == 0 && len(residual) == 0 && !an.grouped && !stmt.Distinct {
			ord = orderRequest(stmt, s)
		}
		s.path = db.chooseAccessPath(s.tbl, s.cols, s.pushed, env, ord)
		// Zone-map bounds come from the same sarg extraction the access path
		// uses; skipping stays valid whichever path wins, because both the
		// full scan and index fetches re-evaluate the pushed conjuncts.
		if !db.forceNoSkip.Load() {
			s.zoneBounds = zoneBoundsOf(extractSargs(s.pushed, s.cols, s.tbl, env))
		}
	}
	return &inputPlan{srcs: srcs, residual: residual, live: live}, nil
}

// orderRequest resolves the leading ORDER BY term against a source: the
// request carries the source column it names (or -1), the direction, and
// the LIMIT+OFFSET row budget that permits an early exit.
func orderRequest(stmt *sqlparser.SelectStmt, s *srcState) orderReq {
	if len(stmt.OrderBy) == 0 {
		return noOrder
	}
	cr, ok := stmt.OrderBy[0].Expr.(*sqlparser.ColumnRef)
	if !ok {
		return noOrder
	}
	col, err := findColumn(s.cols, strings.ToLower(cr.Table), strings.ToLower(cr.Name))
	if err != nil {
		return noOrder
	}
	ord := orderReq{col: col, desc: stmt.OrderBy[0].Desc, multi: len(stmt.OrderBy) > 1}
	if stmt.Limit != nil {
		ord.limit = *stmt.Limit
		if stmt.Offset != nil {
			ord.limit += *stmt.Offset
		}
	}
	return ord
}

// srcCol locates a joined-schema column inside its FROM source.
type srcCol struct {
	src, col int
}

// markRefs marks every column an expression references. Ambiguous names
// mark all candidates, so pruning preserves the ambiguity for the binding
// stage to report; unknown names are left for binding to report too.
func markRefs(e sqlparser.Expr, accum []colDesc, origin []srcCol, srcs []*srcState) {
	walkExpr(e, func(x sqlparser.Expr) {
		cr, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return
		}
		table, name := strings.ToLower(cr.Table), strings.ToLower(cr.Name)
		for i, c := range accum {
			if c.name == name && (table == "" || c.table == table) {
				srcs[origin[i].src].mark(origin[i].col)
			}
		}
	})
}

// conjunctSource resolves every column reference of a conjunct against the
// joined schema and reports the single source they all belong to. It
// returns false when any reference is unknown or ambiguous, or when the
// references span sources.
func conjunctSource(e sqlparser.Expr, accum []colDesc, origin []srcCol) (int, bool) {
	src, ok := -1, true
	walkExpr(e, func(x sqlparser.Expr) {
		cr, isRef := x.(*sqlparser.ColumnRef)
		if !isRef || !ok {
			return
		}
		table, name := strings.ToLower(cr.Table), strings.ToLower(cr.Name)
		found := -1
		for i, c := range accum {
			if c.name == name && (table == "" || c.table == table) {
				if found >= 0 {
					ok = false // ambiguous: leave for the binding stage
					return
				}
				found = i
			}
		}
		if found < 0 {
			ok = false // unknown: leave for the binding stage
			return
		}
		s := origin[found].src
		if src >= 0 && src != s {
			ok = false // spans sources
			return
		}
		src = s
	})
	if src < 0 {
		return 0, false
	}
	return src, ok
}

// buildSources resolves the schema of every FROM relation. RANGETABLE and
// sub-select sources materialise their rows here; named tables are scanned
// later, after pushdown and pruning are decided.
func (db *Database) buildSources(stmt *sqlparser.SelectStmt, env *execEnv) ([]*srcState, error) {
	refs := make([]sqlparser.TableRef, 0, 1+len(stmt.Joins))
	refs = append(refs, stmt.From)
	for _, j := range stmt.Joins {
		refs = append(refs, j.Table)
	}
	srcs := make([]*srcState, len(refs))
	for i, ref := range refs {
		s := &srcState{}
		switch t := ref.(type) {
		case *sqlparser.TableName:
			tbl, err := db.cat.MustGet(t.Name)
			if err != nil {
				return nil, err
			}
			s.label = strings.ToLower(t.Name)
			if t.Alias != "" {
				s.label = strings.ToLower(t.Alias)
			}
			s.tbl = tbl
			for _, c := range tbl.Columns {
				s.cols = append(s.cols, colDesc{table: s.label, name: strings.ToLower(c.Name), src: i})
			}
			if s.store, err = db.store(t.Name); err != nil {
				return nil, err
			}
			s.needed = make([]bool, len(s.cols))
		case *sqlparser.RangeTableRef:
			if env.sheets == nil {
				return nil, fmt.Errorf("sqlexec: RANGETABLE requires a spreadsheet context: %w", dberr.ErrUnsupported)
			}
			names, rows, err := env.sheets.RangeTable(t.Ref, t.HeaderRow)
			if err != nil {
				return nil, err
			}
			s.label = strings.ToLower(t.Alias)
			s.rows = rows
			s.allNeeded = true
			for _, n := range names {
				s.cols = append(s.cols, colDesc{table: s.label, name: strings.ToLower(n), src: i})
			}
		case *sqlparser.SubSelect:
			res, err := db.executeSelect(t.Select, env)
			if err != nil {
				return nil, err
			}
			s.label = strings.ToLower(t.Alias)
			s.rows = res.Rows
			s.allNeeded = true
			for _, n := range res.Columns {
				s.cols = append(s.cols, colDesc{table: s.label, name: strings.ToLower(n), src: i})
			}
		default:
			return nil, fmt.Errorf("sqlexec: unsupported table reference %T: %w", ref, dberr.ErrUnsupported)
		}
		srcs[i] = s
	}
	return srcs, nil
}

// scanSchema resolves the physical column subset projection pruning chose
// for a named-table source: scanCols stays nil only for a full-width scan; a
// source with NO referenced columns (e.g. COUNT(*), or a bare existence
// join) scans with an explicit empty subset so the relation's zero-width
// schema matches its rows.
func (s *srcState) scanSchema() (cols []colDesc, scanCols []int) {
	cols = s.cols
	if s.store == nil || s.allNeeded {
		return cols, nil
	}
	all := true
	for _, n := range s.needed {
		if !n {
			all = false
			break
		}
	}
	if all {
		return cols, nil
	}
	scanCols = []int{}
	cols = []colDesc{}
	for i, n := range s.needed {
		if n {
			scanCols = append(scanCols, i)
			cols = append(cols, s.cols[i])
		}
	}
	return cols, scanCols
}

// scanSource turns one FROM source into a relation: named tables stream
// through ScanCols with only the needed columns and the pushed predicates
// applied before rows are copied; materialised sources are filtered in
// place. live=false short-circuits to an empty relation (a constant WHERE
// conjunct was false). Named-table scans run under the database read lock,
// so concurrent sessions' writes (serialised under the write lock) never
// race the storage structures mid-scan.
func (db *Database) scanSource(s *srcState, live bool, env *execEnv) (*relation, error) {
	cols, scanCols := s.scanSchema()
	rel := &relation{cols: cols}
	if !live {
		return rel, nil
	}
	if s.store == nil && len(s.pushed) == 0 {
		// RANGETABLE / sub-select with nothing pushed: adopt the rows as-is.
		rel.rows = s.rows
		return rel, nil
	}
	// Large full scans of snapshot-capable stores fan out over the worker
	// pool against a pinned epoch instead of scanning under the read lock.
	if prel, handled, err := db.parScanSource(s, cols, scanCols, env); handled || err != nil {
		return prel, err
	}
	var arena valueArena
	err := db.scanSourceEach(s, env, cols, scanCols, func(row []sheet.Value, stable bool) error {
		// Stable rows (materialised sources, index point reads, decoded-page
		// scans) can be retained as-is; scratch-based scan rows need a copy.
		if !stable {
			row = arena.clone(row)
		}
		rel.rows = append(rel.rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// scanSourceEach streams the kept rows of one FROM source — pushed
// predicates applied, pruning decided by (cols, scanCols) from scanSchema —
// to emit. stable reports whether the row survives beyond the callback;
// emit returning an error stops the scan and surfaces that error.
// Named-table iteration runs under the database read lock (predicates are
// compiled — RANGEVALUE folds included — before it is taken), so emit must
// not block on other goroutines: the streaming fast path batches under the
// lock and sends outside it instead of using this helper directly.
func (db *Database) scanSourceEach(s *srcState, env *execEnv, cols []colDesc, scanCols []int, emit func(row []sheet.Value, stable bool) error) error {
	preds, err := compilePredicates(s.pushed, cols, env)
	if err != nil {
		return err
	}
	ctx := env.newRowCtx()
	if s.store == nil {
		// RANGETABLE / sub-select: rows are already materialised.
		for _, row := range s.rows {
			if err := env.check(); err != nil {
				return err
			}
			ctx.row = row
			keep, err := allPredicates(preds, ctx)
			if err != nil {
				return err
			}
			if keep {
				if err := emit(row, true); err != nil {
					return err
				}
			}
		}
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if s.path != nil && s.path.kind != pathFull {
		return db.scanIndexPath(s, preds, ctx, scanCols, env, emit)
	}
	// Full scans with zone-map bounds walk a pruned snapshot of the store:
	// the kept partitions cover exactly the pages a bound could match, and
	// the pushed conjuncts still run on every surviving row, so the output
	// equals the unpruned scan's row for row. (Still under the read lock —
	// this is the serial path; the snapshot is only the pruning vehicle.)
	if len(s.zoneBounds) > 0 {
		if snapper, ok := s.store.(tablestore.Snapshotter); ok {
			snap := snapper.Snapshot()
			if psnap, ok := snap.(tablestore.PrunedSnap); ok {
				defer snap.Release()
				parts, read, skip := psnap.PartitionsPruned(1, scanCols, s.zoneBounds)
				db.pagesRead.Add(int64(read))
				db.pagesSkipped.Add(int64(skip))
				stable := snap.ScanColsStable(scanCols)
				var scanErr error
				for _, part := range parts {
					err := snap.ScanColsRange(part, scanCols, func(_ tablestore.RowID, row []sheet.Value) bool {
						if scanErr = env.check(); scanErr != nil {
							return false
						}
						ctx.row = row
						keep, err := allPredicates(preds, ctx)
						if err != nil {
							scanErr = err
							return false
						}
						if keep {
							if scanErr = emit(row, stable); scanErr != nil {
								return false
							}
						}
						return true
					})
					if err == nil {
						err = scanErr
					}
					if err != nil {
						return err
					}
				}
				return nil
			}
			snap.Release()
		}
	}
	stable := s.store.ScanColsStable(scanCols)
	var scanErr error
	err = s.store.ScanCols(scanCols, func(_ tablestore.RowID, row []sheet.Value) bool {
		if scanErr = env.check(); scanErr != nil {
			return false
		}
		ctx.row = row
		keep, err := allPredicates(preds, ctx)
		if err != nil {
			scanErr = err
			return false
		}
		if keep {
			if scanErr = emit(row, stable); scanErr != nil {
				return false
			}
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	return err
}

// scanIndexPath streams a source through its index access path: candidate
// RowIDs come from the B-tree, candidate rows are point reads of only the
// referenced columns (GetCols), and the pushed conjuncts are re-evaluated on
// every candidate so the kept rows are exactly what the full scan would
// keep. Non-ordered paths emit in RowID order (the full scan's order);
// ordered paths emit in index order and may stop early.
// dslint:requires(engine)
func (db *Database) scanIndexPath(s *srcState, preds []boundExpr, ctx *rowCtx, fetchCols []int, env *execEnv, emit func(row []sheet.Value, stable bool) error) error {
	table := s.tbl.Name
	emitted := 0
	pruner, _ := s.store.(tablestore.Pruner)
	keep := func(id tablestore.RowID) (bool, error) {
		if err := env.check(); err != nil {
			return false, err
		}
		var row []sheet.Value
		var err error
		if pruner != nil && len(s.zoneBounds) > 0 {
			// The page(s) holding the candidate may already prove it cannot
			// match; a skipped candidate is dropped without decoding.
			var zskip bool
			row, zskip, err = pruner.GetColsPruned(id, fetchCols, s.zoneBounds)
			if err == nil && zskip {
				return true, nil
			}
		} else {
			row, err = s.store.GetCols(id, fetchCols)
		}
		if err != nil {
			// The candidate vanished between the index read and the fetch
			// (no snapshot isolation at this level, as with full scans).
			if errors.Is(err, tablestore.ErrRowNotFound) {
				return true, nil
			}
			return false, err
		}
		ctx.row = row
		ok, err := allPredicates(preds, ctx)
		if err != nil {
			return false, err
		}
		if ok {
			if err := emit(row, true); err != nil {
				return false, err
			}
			emitted++
		}
		return true, nil
	}
	if !s.path.ordered {
		for _, id := range db.collectPathIDsLocked(table, s.path) {
			if ok, err := keep(id); err != nil || !ok {
				return err
			}
		}
		return nil
	}
	var walkErr error
	db.walkPathOrdered(table, s.path, func(id tablestore.RowID) bool {
		ok, err := keep(id)
		if err != nil {
			walkErr = err
			return false
		}
		if !ok {
			return false
		}
		return s.path.earlyLimit <= 0 || emitted < s.path.earlyLimit
	})
	return walkErr
}

func compilePredicates(conjuncts []sqlparser.Expr, cols []colDesc, env *execEnv) ([]boundExpr, error) {
	if len(conjuncts) == 0 {
		return nil, nil
	}
	cenv := env.compileEnv(cols)
	preds := make([]boundExpr, len(conjuncts))
	var err error
	for i, c := range conjuncts {
		if preds[i], err = compileExpr(c, cenv); err != nil {
			return nil, err
		}
	}
	return preds, nil
}

func allPredicates(preds []boundExpr, ctx *rowCtx) (bool, error) {
	for _, p := range preds {
		ok, err := evalBoundPredicate(p, ctx)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// --- joins ---

// joinRelations combines two relations according to the join specification.
// Hash joins build a typed-key index over the right side; candidate rows
// are assembled in a reused scratch buffer and only copied when they join.
// Large hash joins fan out over the worker pool: the build side is indexed
// in contiguous partitions and probe workers walk the partition indexes in
// order, reproducing the serial single-index output row for row.
func (db *Database) joinRelations(left, right *relation, join sqlparser.Join, env *execEnv) (*relation, error) {
	// Determine equi-join column pairs for NATURAL / USING joins.
	var leftKeys, rightKeys []int
	switch {
	case join.Natural:
		for li, lc := range left.cols {
			for ri, rc := range right.cols {
				if lc.name == rc.name {
					leftKeys = append(leftKeys, li)
					rightKeys = append(rightKeys, ri)
					break
				}
			}
		}
	case len(join.Using) > 0:
		for _, name := range join.Using {
			n := strings.ToLower(name)
			li, err := left.columnIndex("", n)
			if err != nil {
				return nil, err
			}
			ri, err := right.columnIndex("", n)
			if err != nil {
				return nil, err
			}
			leftKeys = append(leftKeys, li)
			rightKeys = append(rightKeys, ri)
		}
	}

	// For NATURAL / USING joins the shared columns appear once in the
	// output (standard SQL semantics); the right-hand copies are dropped.
	dropRight := make(map[int]bool, len(rightKeys))
	for _, ri := range rightKeys {
		dropRight[ri] = true
	}
	projectRight := func(rrow []sheet.Value) []sheet.Value {
		if len(dropRight) == 0 {
			return rrow
		}
		out := make([]sheet.Value, 0, len(rrow)-len(dropRight))
		for i, v := range rrow {
			if !dropRight[i] {
				out = append(out, v)
			}
		}
		return out
	}
	out := &relation{cols: append([]colDesc(nil), left.cols...)}
	for i, c := range right.cols {
		if !dropRight[i] {
			out.cols = append(out.cols, c)
		}
	}

	pad := make([]sheet.Value, len(right.cols)-len(dropRight))
	leftWidth := len(left.cols)

	switch {
	case len(leftKeys) > 0:
		// Hash join on the shared columns.
		if workers, ok := db.parHashJoinEligible(left, right); ok {
			rows, err := parHashJoinKeyed(left, right, leftKeys, rightKeys, join.Type, pad, projectRight, workers, env)
			if err != nil {
				return nil, err
			}
			out.rows = rows
			return out, nil
		}
		ix := newKeyIndex(len(rightKeys))
		keyBuf := make([]normValue, 0, len(rightKeys))
		for ri, row := range right.rows {
			if err := env.check(); err != nil {
				return nil, err
			}
			keyBuf = normalizeRowKey(keyBuf, row, rightKeys)
			slot, _ := ix.getOrAdd(keyBuf)
			ix.addRow(slot, ri)
		}
		for _, lrow := range left.rows {
			if err := env.check(); err != nil {
				return nil, err
			}
			keyBuf = normalizeRowKey(keyBuf, lrow, leftKeys)
			slot := ix.lookup(keyBuf)
			if slot < 0 {
				if join.Type == sqlparser.JoinLeft {
					out.rows = append(out.rows, concatRows(lrow, pad))
				}
				continue
			}
			for _, ri := range ix.matches(slot) {
				out.rows = append(out.rows, concatRows(lrow, projectRight(right.rows[ri])))
			}
		}
	case join.On != nil:
		// Try to extract equi-join keys from the ON condition for a hash
		// join; otherwise fall back to a nested loop. Either way the ON
		// predicate is compiled once against the combined schema and
		// candidate rows are staged in a reused scratch buffer.
		on, err := compileExpr(join.On, env.compileEnv(out.cols))
		if err != nil {
			return nil, err
		}
		ctx := env.newRowCtx()
		scratch := make([]sheet.Value, len(left.cols)+len(right.cols))
		lk, rk := equiJoinKeys(join.On, left, right)
		if len(lk) > 0 {
			if workers, ok := db.parHashJoinEligible(left, right); ok {
				rows, err := parHashJoinOn(left, right, lk, rk, join, out.cols, pad, workers, env)
				if err != nil {
					return nil, err
				}
				out.rows = rows
				return out, nil
			}
		}
		if len(lk) > 0 {
			ix := newKeyIndex(len(rk))
			keyBuf := make([]normValue, 0, len(rk))
			for ri, row := range right.rows {
				if err := env.check(); err != nil {
					return nil, err
				}
				keyBuf = normalizeRowKey(keyBuf, row, rk)
				slot, _ := ix.getOrAdd(keyBuf)
				ix.addRow(slot, ri)
			}
			for _, lrow := range left.rows {
				if err := env.check(); err != nil {
					return nil, err
				}
				keyBuf = normalizeRowKey(keyBuf, lrow, lk)
				matched := false
				if slot := ix.lookup(keyBuf); slot >= 0 {
					copy(scratch, lrow)
					for _, ri := range ix.matches(slot) {
						copy(scratch[leftWidth:], right.rows[ri])
						ctx.row = scratch
						keep, err := evalBoundPredicate(on, ctx)
						if err != nil {
							return nil, err
						}
						if keep {
							out.rows = append(out.rows, concatRows(lrow, right.rows[ri]))
							matched = true
						}
					}
				}
				if !matched && join.Type == sqlparser.JoinLeft {
					out.rows = append(out.rows, concatRows(lrow, pad))
				}
			}
		} else {
			for _, lrow := range left.rows {
				matched := false
				copy(scratch, lrow)
				for _, rrow := range right.rows {
					if err := env.check(); err != nil {
						return nil, err
					}
					copy(scratch[leftWidth:], rrow)
					ctx.row = scratch
					keep, err := evalBoundPredicate(on, ctx)
					if err != nil {
						return nil, err
					}
					if keep {
						out.rows = append(out.rows, concatRows(lrow, rrow))
						matched = true
					}
				}
				if !matched && join.Type == sqlparser.JoinLeft {
					out.rows = append(out.rows, concatRows(lrow, pad))
				}
			}
		}
	default:
		// Cross join (or inner join without a condition).
		for _, lrow := range left.rows {
			if err := env.check(); err != nil {
				return nil, err
			}
			for _, rrow := range right.rows {
				if err := env.check(); err != nil {
					return nil, err
				}
				out.rows = append(out.rows, concatRows(lrow, rrow))
			}
		}
	}
	return out, nil
}

// equiJoinKeys extracts column index pairs from an ON condition that is a
// conjunction of equality comparisons between a left column and a right
// column. It returns empty slices when the condition has any other shape.
func equiJoinKeys(on sqlparser.Expr, left, right *relation) (lk, rk []int) {
	var conjuncts []sqlparser.Expr
	var collect func(e sqlparser.Expr) bool
	collect = func(e sqlparser.Expr) bool {
		if b, ok := e.(*sqlparser.BinaryExpr); ok {
			if b.Op == "AND" {
				return collect(b.Left) && collect(b.Right)
			}
			if b.Op == "=" {
				conjuncts = append(conjuncts, b)
				return true
			}
		}
		return false
	}
	if !collect(on) {
		return nil, nil
	}
	for _, c := range conjuncts {
		b := c.(*sqlparser.BinaryExpr)
		lcol, lok := b.Left.(*sqlparser.ColumnRef)
		rcol, rok := b.Right.(*sqlparser.ColumnRef)
		if !lok || !rok {
			return nil, nil
		}
		li, lerr := left.columnIndex(lcol.Table, lcol.Name)
		ri, rerr := right.columnIndex(rcol.Table, rcol.Name)
		if lerr == nil && rerr == nil {
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		// Maybe the columns are written in the other order.
		li, lerr = left.columnIndex(rcol.Table, rcol.Name)
		ri, rerr = right.columnIndex(lcol.Table, lcol.Name)
		if lerr == nil && rerr == nil {
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		return nil, nil
	}
	return lk, rk
}

func concatRows(a, b []sheet.Value) []sheet.Value {
	out := make([]sheet.Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// --- projection ---

// expandItems resolves stars into concrete select items and returns the
// output column names.
func expandItems(stmt *sqlparser.SelectStmt, rel *relation) ([]sqlparser.SelectItem, []string) {
	var items []sqlparser.SelectItem
	var names []string
	for _, item := range stmt.Columns {
		if item.Star {
			for _, c := range rel.cols {
				if item.TableStar != "" && c.table != strings.ToLower(item.TableStar) {
					continue
				}
				items = append(items, sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Table: c.table, Name: c.name}})
				names = append(names, c.name)
			}
			continue
		}
		items = append(items, item)
		names = append(names, outputName(item, len(names)))
	}
	return items, names
}

func outputName(item sqlparser.SelectItem, idx int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sqlparser.ColumnRef:
		return strings.ToLower(e.Name)
	case *sqlparser.FuncCall:
		return strings.ToLower(e.Name)
	default:
		return fmt.Sprintf("col%d", idx+1)
	}
}

// orderPlan is the compiled form of one ORDER BY term: either an output
// column (positional reference or output alias) or a bound expression over
// the input row.
type orderPlan struct {
	outCol int // >= 0: key is output column outCol
	expr   boundExpr
}

// buildOrderPlans compiles the ORDER BY terms. A term may reference an
// output position (1-based integer literal), an output alias, or any
// expression over the input schema (compiled in env, which carries the
// aggregate registry in grouped mode).
func buildOrderPlans(stmt *sqlparser.SelectStmt, itemCount int, names []string, rel *relation, env *compileEnv) ([]orderPlan, error) {
	if len(stmt.OrderBy) == 0 {
		return nil, nil
	}
	plans := make([]orderPlan, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		plans[i].outCol = -1
		// Positional reference: ORDER BY 2.
		if lit, ok := o.Expr.(*sqlparser.Literal); ok && lit.Value.IsNumber() {
			idx := int(lit.Value.Num) - 1
			if idx >= 0 && idx < itemCount {
				plans[i].outCol = idx
				continue
			}
		}
		// Output alias reference.
		if cr, ok := o.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			if _, err := findColumn(rel.cols, "", strings.ToLower(cr.Name)); err != nil {
				aliased := false
				for j, name := range names {
					if strings.EqualFold(name, cr.Name) && j < itemCount {
						plans[i].outCol = j
						aliased = true
						break
					}
				}
				if aliased {
					continue
				}
			}
		}
		be, err := compileExpr(o.Expr, env)
		if err != nil {
			return nil, err
		}
		plans[i].expr = be
	}
	return plans, nil
}

// evalOrderKeys computes the sort key vector for one output row into keys,
// which must have len(plans) entries.
func evalOrderKeys(plans []orderPlan, ctx *rowCtx, outRow []sheet.Value, keys []sheet.Value) ([]sheet.Value, error) {
	for i, p := range plans {
		if p.outCol >= 0 {
			if p.outCol < len(outRow) {
				keys[i] = outRow[p.outCol]
			}
			continue
		}
		v, err := p.expr.eval(ctx)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// projectRows projects a non-aggregated SELECT, streaming rows through the
// compiled projection. With ORDER BY ... LIMIT (and no DISTINCT) a top-K
// heap keeps only the surviving rows instead of sorting the full input.
func (db *Database) projectRows(stmt *sqlparser.SelectStmt, rel *relation, env *execEnv) (*Result, [][]sheet.Value, error) {
	items, names := expandItems(stmt, rel)
	cenv := env.compileEnv(rel.cols)
	bound := make([]boundExpr, len(items))
	var err error
	for i, item := range items {
		if bound[i], err = compileExpr(item.Expr, cenv); err != nil {
			return nil, nil, err
		}
	}
	orderPlans, err := buildOrderPlans(stmt, len(items), names, rel, cenv)
	if err != nil {
		return nil, nil, err
	}

	res := &Result{Columns: names}
	var topK *topKHeap
	if len(orderPlans) > 0 && stmt.Limit != nil && !stmt.Distinct {
		k := *stmt.Limit
		if stmt.Offset != nil {
			k += *stmt.Offset
		}
		topK = newTopKHeap(stmt.OrderBy, k)
	}

	ctx := env.newRowCtx()
	var arena valueArena
	var sortKeys [][]sheet.Value
	if topK == nil {
		res.Rows = make([][]sheet.Value, 0, len(rel.rows))
		if orderPlans != nil {
			sortKeys = make([][]sheet.Value, 0, len(rel.rows))
		}
	}
	for seq, row := range rel.rows {
		if err := env.check(); err != nil {
			return nil, nil, err
		}
		ctx.row = row
		out := arena.take(len(bound))
		for i, be := range bound {
			v, err := be.eval(ctx)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
		}
		if orderPlans == nil {
			res.Rows = append(res.Rows, out)
			continue
		}
		keys, err := evalOrderKeys(orderPlans, ctx, out, arena.take(len(orderPlans)))
		if err != nil {
			return nil, nil, err
		}
		if topK != nil {
			topK.offer(out, keys, seq)
			continue
		}
		res.Rows = append(res.Rows, out)
		sortKeys = append(sortKeys, keys)
	}
	if topK != nil {
		// Only the K surviving rows reach the final stable sort.
		rows, keys := topK.finish()
		res.Rows = rows
		return res, keys, nil
	}
	return res, sortKeys, nil
}

// groupState accumulates one GROUP BY group: the representative input row
// (for grouping-column projection) and the aggregate accumulators.
type groupState struct {
	rep    []sheet.Value
	hasRep bool
	accs   []aggState
}

// projectGrouped projects an aggregated SELECT (explicit GROUP BY or
// implicit single-group aggregation) in a single streaming pass: rows are
// hashed to their group by typed keys and folded into per-group aggregate
// accumulators; no group retains its member rows.
func (db *Database) projectGrouped(stmt *sqlparser.SelectStmt, rel *relation, env *execEnv) (*Result, [][]sheet.Value, error) {
	items, names := expandItems(stmt, rel)
	reg := &aggRegistry{}
	cenv := env.compileEnv(rel.cols)
	cenv.aggs = reg
	bound := make([]boundExpr, len(items))
	var err error
	for i, item := range items {
		if bound[i], err = compileExpr(item.Expr, cenv); err != nil {
			return nil, nil, err
		}
	}
	var bHaving boundExpr
	if stmt.Having != nil {
		if bHaving, err = compileExpr(stmt.Having, cenv); err != nil {
			return nil, nil, err
		}
	}
	orderPlans, err := buildOrderPlans(stmt, len(items), names, rel, cenv)
	if err != nil {
		return nil, nil, err
	}
	// GROUP BY expressions evaluate per input row; aggregates inside them
	// are invalid.
	rowEnv := env.compileEnv(rel.cols)
	groupBy := make([]boundExpr, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		if groupBy[i], err = compileExpr(g, rowEnv); err != nil {
			return nil, nil, err
		}
	}

	// Partition rows into groups, folding aggregates as rows stream by.
	// Large inputs fold in parallel — per-worker group hashes merged in
	// partition order — unless a DISTINCT aggregate forces the serial path.
	groups, parallel, err := db.parFoldGroups(stmt, items, rel, reg, env)
	if err != nil {
		return nil, nil, err
	}
	if !parallel {
		newGroup := func() *groupState {
			return &groupState{accs: make([]aggState, len(reg.specs))}
		}
		ctx := env.newRowCtx()
		var ix *keyIndex
		var keyBuf []normValue
		if len(groupBy) == 0 {
			// Implicit single group: aggregates over an empty input still
			// produce one output row (e.g. COUNT(*) = 0).
			groups = append(groups, newGroup())
		} else {
			ix = newKeyIndex(len(groupBy))
			keyBuf = make([]normValue, 0, len(groupBy))
		}
		for _, row := range rel.rows {
			if err := env.check(); err != nil {
				return nil, nil, err
			}
			ctx.row = row
			var g *groupState
			if ix == nil {
				g = groups[0]
			} else {
				keyBuf = keyBuf[:0]
				for _, ge := range groupBy {
					v, err := ge.eval(ctx)
					if err != nil {
						return nil, nil, err
					}
					keyBuf = append(keyBuf, normKeyValue(v))
				}
				slot, added := ix.getOrAdd(keyBuf)
				if added {
					groups = append(groups, newGroup())
				}
				g = groups[slot]
			}
			if !g.hasRep {
				g.rep, g.hasRep = row, true
			}
			for i, sp := range reg.specs {
				if err := sp.update(&g.accs[i], ctx); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	res := &Result{Columns: names}
	var sortKeys [][]sheet.Value
	for _, g := range groups {
		if err := env.check(); err != nil {
			return nil, nil, err
		}
		ctx := env.newRowCtx()
		ctx.row, ctx.aggs = g.rep, make([]sheet.Value, len(reg.specs))
		for i, sp := range reg.specs {
			ctx.aggs[i] = sp.result(&g.accs[i])
		}
		if bHaving != nil {
			keep, err := evalBoundPredicate(bHaving, ctx)
			if err != nil {
				return nil, nil, err
			}
			if !keep {
				continue
			}
		}
		out := make([]sheet.Value, len(bound))
		for i, be := range bound {
			v, err := be.eval(ctx)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
		if orderPlans != nil {
			keys, err := evalOrderKeys(orderPlans, ctx, out, make([]sheet.Value, len(orderPlans)))
			if err != nil {
				return nil, nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	return res, sortKeys, nil
}

// distinctRows deduplicates output rows by typed key, preserving first
// occurrences.
func distinctRows(res *Result, sortKeys [][]sheet.Value) (*Result, [][]sheet.Value) {
	width := 0
	if len(res.Rows) > 0 {
		width = len(res.Rows[0])
	}
	ix := newKeyIndex(width)
	cols := make([]int, width)
	for i := range cols {
		cols[i] = i
	}
	keyBuf := make([]normValue, 0, width)
	outRows := res.Rows[:0:0]
	var outKeys [][]sheet.Value
	for i, row := range res.Rows {
		keyBuf = normalizeRowKey(keyBuf, row, cols)
		if _, added := ix.getOrAdd(keyBuf); !added {
			continue
		}
		outRows = append(outRows, row)
		if sortKeys != nil {
			outKeys = append(outKeys, sortKeys[i])
		}
	}
	res.Rows = outRows
	return res, outKeys
}

// sortResult stable-sorts the output rows by their precomputed keys. Input
// that is already in order — e.g. ORDER BY an insertion-ordered key — is
// detected in one linear pass and left untouched.
func sortResult(orderBy []sqlparser.OrderItem, res *Result, sortKeys [][]sheet.Value) {
	if len(sortKeys) != len(res.Rows) {
		return
	}
	sorted := true
	for i := 1; i < len(sortKeys); i++ {
		if compareOrderKeys(orderBy, sortKeys[i-1], sortKeys[i]) > 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	idx := make([]int, len(res.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return compareOrderKeys(orderBy, sortKeys[idx[a]], sortKeys[idx[b]]) < 0
	})
	newRows := make([][]sheet.Value, len(res.Rows))
	for i, j := range idx {
		newRows[i] = res.Rows[j]
	}
	res.Rows = newRows
}

func applyLimit(stmt *sqlparser.SelectStmt, res *Result) {
	offset := 0
	if stmt.Offset != nil {
		offset = *stmt.Offset
	}
	if offset > len(res.Rows) {
		offset = len(res.Rows)
	}
	res.Rows = res.Rows[offset:]
	if stmt.Limit != nil && *stmt.Limit < len(res.Rows) {
		res.Rows = res.Rows[:*stmt.Limit]
	}
}
