package sqlexec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// executeSelect runs a SELECT statement to a materialised Result.
func (db *Database) executeSelect(stmt *sqlparser.SelectStmt, sheets SheetAccessor) (*Result, error) {
	// 1. FROM and JOINs.
	rel, err := db.buildFrom(stmt, sheets)
	if err != nil {
		return nil, err
	}
	// 2. WHERE.
	if stmt.Where != nil {
		filtered := rel.rows[:0:0]
		for _, row := range rel.rows {
			keep, err := evalPredicate(stmt.Where, &evalCtx{rel: rel, row: row, sheets: sheets})
			if err != nil {
				return nil, err
			}
			if keep {
				filtered = append(filtered, row)
			}
		}
		rel = &relation{cols: rel.cols, rows: filtered}
	}
	// 3. Projection, grouping, ordering.
	hasAgg := stmt.Having != nil && exprHasAggregate(stmt.Having)
	for _, item := range stmt.Columns {
		if !item.Star && exprHasAggregate(item.Expr) {
			hasAgg = true
		}
	}
	for _, o := range stmt.OrderBy {
		if exprHasAggregate(o.Expr) {
			hasAgg = true
		}
	}
	var out *Result
	var sortKeys [][]sheet.Value
	if len(stmt.GroupBy) > 0 || hasAgg {
		out, sortKeys, err = db.projectGrouped(stmt, rel, sheets)
	} else {
		out, sortKeys, err = db.projectRows(stmt, rel, sheets)
	}
	if err != nil {
		return nil, err
	}
	// 4. DISTINCT.
	if stmt.Distinct {
		out, sortKeys = distinctRows(out, sortKeys)
	}
	// 5. ORDER BY.
	if len(stmt.OrderBy) > 0 {
		sortResult(stmt.OrderBy, out, sortKeys)
	}
	// 6. LIMIT / OFFSET.
	applyLimit(stmt, out)
	return out, nil
}

// evalPredicate evaluates a boolean expression; NULL counts as false.
func evalPredicate(e sqlparser.Expr, ctx *evalCtx) (bool, error) {
	v, err := evalExpr(e, ctx)
	if err != nil {
		return false, err
	}
	if isNull(v) {
		return false, nil
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("sqlexec: predicate did not evaluate to a boolean (got %q)", v.String())
	}
	return b, nil
}

// buildFrom materialises the FROM clause including all joins.
func (db *Database) buildFrom(stmt *sqlparser.SelectStmt, sheets SheetAccessor) (*relation, error) {
	if stmt.From == nil {
		// Table-less SELECT: a single anonymous row.
		return &relation{rows: [][]sheet.Value{{}}}, nil
	}
	left, err := db.relationFor(stmt.From, sheets)
	if err != nil {
		return nil, err
	}
	for _, join := range stmt.Joins {
		right, err := db.relationFor(join.Table, sheets)
		if err != nil {
			return nil, err
		}
		left, err = db.joinRelations(left, right, join, sheets)
		if err != nil {
			return nil, err
		}
	}
	return left, nil
}

// relationFor materialises one table reference.
func (db *Database) relationFor(ref sqlparser.TableRef, sheets SheetAccessor) (*relation, error) {
	switch t := ref.(type) {
	case *sqlparser.TableName:
		tbl, err := db.cat.MustGet(t.Name)
		if err != nil {
			return nil, err
		}
		label := strings.ToLower(t.Name)
		if t.Alias != "" {
			label = strings.ToLower(t.Alias)
		}
		rel := &relation{}
		for _, c := range tbl.Columns {
			rel.cols = append(rel.cols, colDesc{table: label, name: strings.ToLower(c.Name)})
		}
		if err := db.scanInto(t.Name, rel); err != nil {
			return nil, err
		}
		return rel, nil
	case *sqlparser.RangeTableRef:
		if sheets == nil {
			return nil, fmt.Errorf("sqlexec: RANGETABLE requires a spreadsheet context")
		}
		names, rows, err := sheets.RangeTable(t.Ref, t.HeaderRow)
		if err != nil {
			return nil, err
		}
		label := strings.ToLower(t.Alias)
		rel := &relation{rows: rows}
		for _, n := range names {
			rel.cols = append(rel.cols, colDesc{table: label, name: strings.ToLower(n)})
		}
		return rel, nil
	case *sqlparser.SubSelect:
		res, err := db.executeSelect(t.Select, sheets)
		if err != nil {
			return nil, err
		}
		label := strings.ToLower(t.Alias)
		rel := &relation{rows: res.Rows}
		for _, n := range res.Columns {
			rel.cols = append(rel.cols, colDesc{table: label, name: strings.ToLower(n)})
		}
		return rel, nil
	default:
		return nil, fmt.Errorf("sqlexec: unsupported table reference %T", ref)
	}
}

// scanInto appends all live tuples of the table to the relation.
func (db *Database) scanInto(table string, rel *relation) error {
	s, err := db.store(table)
	if err != nil {
		return err
	}
	return s.Scan(func(_ tablestore.RowID, row []sheet.Value) bool {
		rel.rows = append(rel.rows, row)
		return true
	})
}

// joinRelations combines two relations according to the join specification.
func (db *Database) joinRelations(left, right *relation, join sqlparser.Join, sheets SheetAccessor) (*relation, error) {
	// Determine equi-join column pairs for NATURAL / USING joins.
	var leftKeys, rightKeys []int
	switch {
	case join.Natural:
		for li, lc := range left.cols {
			for ri, rc := range right.cols {
				if lc.name == rc.name {
					leftKeys = append(leftKeys, li)
					rightKeys = append(rightKeys, ri)
					break
				}
			}
		}
	case len(join.Using) > 0:
		for _, name := range join.Using {
			n := strings.ToLower(name)
			li, err := left.columnIndex("", n)
			if err != nil {
				return nil, err
			}
			ri, err := right.columnIndex("", n)
			if err != nil {
				return nil, err
			}
			leftKeys = append(leftKeys, li)
			rightKeys = append(rightKeys, ri)
		}
	}

	// For NATURAL / USING joins the shared columns appear once in the
	// output (standard SQL semantics); the right-hand copies are dropped.
	dropRight := make(map[int]bool, len(rightKeys))
	for _, ri := range rightKeys {
		dropRight[ri] = true
	}
	projectRight := func(rrow []sheet.Value) []sheet.Value {
		if len(dropRight) == 0 {
			return rrow
		}
		out := make([]sheet.Value, 0, len(rrow)-len(dropRight))
		for i, v := range rrow {
			if !dropRight[i] {
				out = append(out, v)
			}
		}
		return out
	}
	out := &relation{cols: append([]colDesc(nil), left.cols...)}
	for i, c := range right.cols {
		if !dropRight[i] {
			out.cols = append(out.cols, c)
		}
	}

	pad := make([]sheet.Value, len(right.cols)-len(dropRight))

	switch {
	case len(leftKeys) > 0:
		// Hash join on the shared columns.
		index := make(map[string][]int, len(right.rows))
		for ri, row := range right.rows {
			index[hashKey(row, rightKeys)] = append(index[hashKey(row, rightKeys)], ri)
		}
		for _, lrow := range left.rows {
			matches := index[hashKey(lrow, leftKeys)]
			if len(matches) == 0 {
				if join.Type == sqlparser.JoinLeft {
					out.rows = append(out.rows, concatRows(lrow, pad))
				}
				continue
			}
			for _, ri := range matches {
				out.rows = append(out.rows, concatRows(lrow, projectRight(right.rows[ri])))
			}
		}
	case join.On != nil:
		// Try to extract equi-join keys from the ON condition for a hash
		// join; otherwise fall back to a nested loop.
		lk, rk := equiJoinKeys(join.On, left, right)
		if len(lk) > 0 {
			index := make(map[string][]int, len(right.rows))
			for ri, row := range right.rows {
				index[hashKey(row, rk)] = append(index[hashKey(row, rk)], ri)
			}
			for _, lrow := range left.rows {
				matches := index[hashKey(lrow, lk)]
				matched := false
				for _, ri := range matches {
					combined := concatRows(lrow, right.rows[ri])
					keep, err := evalPredicate(join.On, &evalCtx{rel: out, row: combined, sheets: sheets})
					if err != nil {
						return nil, err
					}
					if keep {
						out.rows = append(out.rows, combined)
						matched = true
					}
				}
				if !matched && join.Type == sqlparser.JoinLeft {
					out.rows = append(out.rows, concatRows(lrow, pad))
				}
			}
		} else {
			for _, lrow := range left.rows {
				matched := false
				for _, rrow := range right.rows {
					combined := concatRows(lrow, rrow)
					keep, err := evalPredicate(join.On, &evalCtx{rel: out, row: combined, sheets: sheets})
					if err != nil {
						return nil, err
					}
					if keep {
						out.rows = append(out.rows, combined)
						matched = true
					}
				}
				if !matched && join.Type == sqlparser.JoinLeft {
					out.rows = append(out.rows, concatRows(lrow, pad))
				}
			}
		}
	default:
		// Cross join (or inner join without a condition).
		for _, lrow := range left.rows {
			for _, rrow := range right.rows {
				out.rows = append(out.rows, concatRows(lrow, rrow))
			}
		}
	}
	return out, nil
}

// equiJoinKeys extracts column index pairs from an ON condition that is a
// conjunction of equality comparisons between a left column and a right
// column. It returns empty slices when the condition has any other shape.
func equiJoinKeys(on sqlparser.Expr, left, right *relation) (lk, rk []int) {
	var conjuncts []sqlparser.Expr
	var collect func(e sqlparser.Expr) bool
	collect = func(e sqlparser.Expr) bool {
		if b, ok := e.(*sqlparser.BinaryExpr); ok {
			if b.Op == "AND" {
				return collect(b.Left) && collect(b.Right)
			}
			if b.Op == "=" {
				conjuncts = append(conjuncts, b)
				return true
			}
		}
		return false
	}
	if !collect(on) {
		return nil, nil
	}
	for _, c := range conjuncts {
		b := c.(*sqlparser.BinaryExpr)
		lcol, lok := b.Left.(*sqlparser.ColumnRef)
		rcol, rok := b.Right.(*sqlparser.ColumnRef)
		if !lok || !rok {
			return nil, nil
		}
		li, lerr := left.columnIndex(lcol.Table, lcol.Name)
		ri, rerr := right.columnIndex(rcol.Table, rcol.Name)
		if lerr == nil && rerr == nil {
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		// Maybe the columns are written in the other order.
		li, lerr = left.columnIndex(rcol.Table, rcol.Name)
		ri, rerr = right.columnIndex(lcol.Table, lcol.Name)
		if lerr == nil && rerr == nil {
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		return nil, nil
	}
	return lk, rk
}

func concatRows(a, b []sheet.Value) []sheet.Value {
	out := make([]sheet.Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func hashKey(row []sheet.Value, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		v := sheet.Empty()
		if c < len(row) {
			v = row[c]
		}
		// Normalise numerically equal values and case-insensitive strings
		// the same way Value.Equal does.
		if f, ok := v.AsNumber(); ok && v.Kind != sheet.KindString {
			fmt.Fprintf(&sb, "n:%v|", f)
			continue
		}
		fmt.Fprintf(&sb, "%d:%s|", v.Kind, strings.ToLower(v.String()))
	}
	return sb.String()
}

// --- projection ---

// expandItems resolves stars into concrete select items and returns the
// output column names.
func expandItems(stmt *sqlparser.SelectStmt, rel *relation) ([]sqlparser.SelectItem, []string) {
	var items []sqlparser.SelectItem
	var names []string
	for _, item := range stmt.Columns {
		if item.Star {
			for _, c := range rel.cols {
				if item.TableStar != "" && c.table != strings.ToLower(item.TableStar) {
					continue
				}
				items = append(items, sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Table: c.table, Name: c.name}})
				names = append(names, c.name)
			}
			continue
		}
		items = append(items, item)
		names = append(names, outputName(item, len(names)))
	}
	return items, names
}

func outputName(item sqlparser.SelectItem, idx int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sqlparser.ColumnRef:
		return strings.ToLower(e.Name)
	case *sqlparser.FuncCall:
		return strings.ToLower(e.Name)
	default:
		return fmt.Sprintf("col%d", idx+1)
	}
}

// projectRows projects a non-aggregated SELECT and returns the result plus
// per-row ORDER BY sort keys (evaluated against the input rows).
func (db *Database) projectRows(stmt *sqlparser.SelectStmt, rel *relation, sheets SheetAccessor) (*Result, [][]sheet.Value, error) {
	items, names := expandItems(stmt, rel)
	res := &Result{Columns: names}
	var sortKeys [][]sheet.Value
	for _, row := range rel.rows {
		ctx := &evalCtx{rel: rel, row: row, sheets: sheets}
		out := make([]sheet.Value, len(items))
		for i, item := range items {
			v, err := evalExpr(item.Expr, ctx)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
		if len(stmt.OrderBy) > 0 {
			keys, err := orderKeys(stmt.OrderBy, ctx, res, out)
			if err != nil {
				return nil, nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	return res, sortKeys, nil
}

// projectGrouped projects an aggregated SELECT (explicit GROUP BY or implicit
// single-group aggregation).
func (db *Database) projectGrouped(stmt *sqlparser.SelectStmt, rel *relation, sheets SheetAccessor) (*Result, [][]sheet.Value, error) {
	items, names := expandItems(stmt, rel)
	res := &Result{Columns: names}

	// Partition rows into groups.
	type groupData struct {
		key  []sheet.Value
		rows [][]sheet.Value
	}
	var groups []*groupData
	if len(stmt.GroupBy) == 0 {
		rows := rel.rows
		if rows == nil {
			// Aggregates over an empty input still produce one output row
			// (e.g. COUNT(*) = 0), so the single group must be non-nil.
			rows = [][]sheet.Value{}
		}
		groups = append(groups, &groupData{rows: rows})
	} else {
		byKey := make(map[string]*groupData)
		var order []string
		for _, row := range rel.rows {
			ctx := &evalCtx{rel: rel, row: row, sheets: sheets}
			keyVals := make([]sheet.Value, len(stmt.GroupBy))
			for i, g := range stmt.GroupBy {
				v, err := evalExpr(g, ctx)
				if err != nil {
					return nil, nil, err
				}
				keyVals[i] = v
			}
			k := hashKey(keyVals, allIndexes(len(keyVals)))
			gd, ok := byKey[k]
			if !ok {
				gd = &groupData{key: keyVals}
				byKey[k] = gd
				order = append(order, k)
			}
			gd.rows = append(gd.rows, row)
		}
		for _, k := range order {
			groups = append(groups, byKey[k])
		}
	}

	var sortKeys [][]sheet.Value
	for _, g := range groups {
		// A representative row provides the values of grouping columns.
		var rep []sheet.Value
		if len(g.rows) > 0 {
			rep = g.rows[0]
		}
		ctx := &evalCtx{rel: rel, row: rep, sheets: sheets, group: g.rows}
		if stmt.Having != nil {
			keep, err := evalPredicate(stmt.Having, ctx)
			if err != nil {
				return nil, nil, err
			}
			if !keep {
				continue
			}
		}
		// With no GROUP BY and no input rows, aggregates still produce one
		// output row (e.g. COUNT(*) = 0).
		out := make([]sheet.Value, len(items))
		for i, item := range items {
			v, err := evalExpr(item.Expr, ctx)
			if err != nil {
				return nil, nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
		if len(stmt.OrderBy) > 0 {
			keys, err := orderKeys(stmt.OrderBy, ctx, res, out)
			if err != nil {
				return nil, nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	return res, sortKeys, nil
}

func allIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// orderKeys evaluates ORDER BY expressions for one output row. An ORDER BY
// term may reference an output alias, an output position (1-based integer
// literal), or any expression over the input row.
func orderKeys(orderBy []sqlparser.OrderItem, ctx *evalCtx, res *Result, outRow []sheet.Value) ([]sheet.Value, error) {
	keys := make([]sheet.Value, len(orderBy))
	for i, o := range orderBy {
		// Positional reference: ORDER BY 2.
		if lit, ok := o.Expr.(*sqlparser.Literal); ok && lit.Value.IsNumber() {
			idx := int(lit.Value.Num) - 1
			if idx >= 0 && idx < len(outRow) {
				keys[i] = outRow[idx]
				continue
			}
		}
		// Output alias reference.
		if cr, ok := o.Expr.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			if _, err := ctx.rel.columnIndex("", cr.Name); err != nil {
				for j, name := range res.Columns {
					if strings.EqualFold(name, cr.Name) && j < len(outRow) {
						keys[i] = outRow[j]
						break
					}
				}
				if !keys[i].IsEmpty() {
					continue
				}
			}
		}
		v, err := evalExpr(o.Expr, ctx)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func distinctRows(res *Result, sortKeys [][]sheet.Value) (*Result, [][]sheet.Value) {
	seen := make(map[string]bool, len(res.Rows))
	outRows := res.Rows[:0:0]
	var outKeys [][]sheet.Value
	for i, row := range res.Rows {
		k := hashKey(row, allIndexes(len(row)))
		if seen[k] {
			continue
		}
		seen[k] = true
		outRows = append(outRows, row)
		if sortKeys != nil {
			outKeys = append(outKeys, sortKeys[i])
		}
	}
	res.Rows = outRows
	return res, outKeys
}

func sortResult(orderBy []sqlparser.OrderItem, res *Result, sortKeys [][]sheet.Value) {
	if len(sortKeys) != len(res.Rows) {
		return
	}
	idx := make([]int, len(res.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
		for i, o := range orderBy {
			c := ka[i].Compare(kb[i])
			// NULLs sort last regardless of direction.
			switch {
			case ka[i].IsEmpty() && kb[i].IsEmpty():
				c = 0
			case ka[i].IsEmpty():
				return false
			case kb[i].IsEmpty():
				return true
			}
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	newRows := make([][]sheet.Value, len(res.Rows))
	for i, j := range idx {
		newRows[i] = res.Rows[j]
	}
	res.Rows = newRows
}

func applyLimit(stmt *sqlparser.SelectStmt, res *Result) {
	offset := 0
	if stmt.Offset != nil {
		offset = *stmt.Offset
	}
	if offset > len(res.Rows) {
		offset = len(res.Rows)
	}
	res.Rows = res.Rows[offset:]
	if stmt.Limit != nil && *stmt.Limit < len(res.Rows) {
		res.Rows = res.Rows[:*stmt.Limit]
	}
}
