package sqlexec

import (
	"fmt"
	"math"
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
)

// SheetAccessor resolves the paper's positional constructs against the
// spreadsheet front-end: RANGEVALUE(ref) reads one cell, RANGETABLE(ref)
// exposes a sheet range as a relation. The core package provides the
// implementation; a nil accessor makes positional constructs fail with a
// clear error (e.g. when the engine is used standalone).
type SheetAccessor interface {
	// RangeValue returns the value of a single cell, identified by an
	// optionally sheet-qualified A1 reference such as "B2" or "Sheet2!B2".
	RangeValue(ref string) (sheet.Value, error)
	// RangeTable returns the column names and rows of a sheet range such
	// as "A1:D100" or "Sheet2!A1:D100". When headerRow is true the first
	// row of the range provides the column names.
	RangeTable(ref string, headerRow bool) ([]string, [][]sheet.Value, error)
}

// colDesc identifies one column of an intermediate relation.
type colDesc struct {
	table string // lower-cased table name or alias ("" when anonymous)
	name  string // lower-cased column name
}

// relation is the executor's intermediate result: a schema plus materialised
// rows.
type relation struct {
	cols []colDesc
	rows [][]sheet.Value
}

func (r *relation) columnIndex(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, c := range r.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqlexec: column reference %q is ambiguous", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("sqlexec: unknown column %s.%s", table, name)
		}
		return 0, fmt.Errorf("sqlexec: unknown column %q", name)
	}
	return found, nil
}

// evalCtx carries everything an expression may reference.
type evalCtx struct {
	rel    *relation
	row    []sheet.Value
	sheets SheetAccessor
	// group holds the rows of the current group when evaluating aggregate
	// expressions (nil outside GROUP BY / aggregate evaluation).
	group [][]sheet.Value
}

// isNull is the SQL NULL test over the unified value model.
func isNull(v sheet.Value) bool { return v.IsEmpty() }

// evalExpr evaluates an expression to a value. SQL NULL is represented by
// the empty sheet.Value.
func evalExpr(e sqlparser.Expr, ctx *evalCtx) (sheet.Value, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Value, nil
	case *sqlparser.NullLiteral:
		return sheet.Empty(), nil
	case *sqlparser.ColumnRef:
		if ctx.rel == nil {
			return sheet.Empty(), fmt.Errorf("sqlexec: column %q referenced outside a FROM context", x.Name)
		}
		i, err := ctx.rel.columnIndex(x.Table, x.Name)
		if err != nil {
			return sheet.Empty(), err
		}
		if ctx.row == nil || i >= len(ctx.row) {
			return sheet.Empty(), nil
		}
		return ctx.row[i], nil
	case *sqlparser.RangeValueExpr:
		if ctx.sheets == nil {
			return sheet.Empty(), fmt.Errorf("sqlexec: RANGEVALUE requires a spreadsheet context")
		}
		return ctx.sheets.RangeValue(x.Ref)
	case *sqlparser.UnaryExpr:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		switch x.Op {
		case "-":
			if isNull(v) {
				return sheet.Empty(), nil
			}
			f, ok := v.AsNumber()
			if !ok {
				return sheet.Empty(), fmt.Errorf("sqlexec: cannot negate %q", v.String())
			}
			return sheet.Number(-f), nil
		case "NOT":
			if isNull(v) {
				return sheet.Empty(), nil
			}
			b, ok := v.AsBool()
			if !ok {
				return sheet.Empty(), fmt.Errorf("sqlexec: NOT applied to non-boolean %q", v.String())
			}
			return sheet.Bool_(!b), nil
		}
		return sheet.Empty(), fmt.Errorf("sqlexec: unknown unary operator %q", x.Op)
	case *sqlparser.BinaryExpr:
		return evalBinary(x, ctx)
	case *sqlparser.FuncCall:
		if isAggregateFunc(x.Name) {
			return evalAggregate(x, ctx)
		}
		return evalScalarFunc(x, ctx)
	case *sqlparser.InExpr:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		if isNull(v) {
			return sheet.Empty(), nil
		}
		for _, item := range x.List {
			iv, err := evalExpr(item, ctx)
			if err != nil {
				return sheet.Empty(), err
			}
			if v.Equal(iv) {
				return sheet.Bool_(!x.Not), nil
			}
		}
		return sheet.Bool_(x.Not), nil
	case *sqlparser.IsNullExpr:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		return sheet.Bool_(isNull(v) != x.Not), nil
	case *sqlparser.BetweenExpr:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		lo, err := evalExpr(x.Lo, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		hi, err := evalExpr(x.Hi, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		if isNull(v) || isNull(lo) || isNull(hi) {
			return sheet.Empty(), nil
		}
		in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		return sheet.Bool_(in != x.Not), nil
	case *sqlparser.LikeExpr:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		p, err := evalExpr(x.Pattern, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		if isNull(v) || isNull(p) {
			return sheet.Empty(), nil
		}
		m := likeMatch(v.AsString(), p.AsString())
		return sheet.Bool_(m != x.Not), nil
	case *sqlparser.CaseExpr:
		return evalCase(x, ctx)
	default:
		return sheet.Empty(), fmt.Errorf("sqlexec: unsupported expression %T", e)
	}
}

func evalBinary(x *sqlparser.BinaryExpr, ctx *evalCtx) (sheet.Value, error) {
	// AND/OR get short-circuit evaluation.
	switch x.Op {
	case "AND", "OR":
		l, err := evalExpr(x.Left, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		lb, lok := l.AsBool()
		if x.Op == "AND" && lok && !lb {
			return sheet.Bool_(false), nil
		}
		if x.Op == "OR" && lok && lb {
			return sheet.Bool_(true), nil
		}
		r, err := evalExpr(x.Right, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		rb, rok := r.AsBool()
		if !lok || !rok {
			return sheet.Empty(), nil
		}
		if x.Op == "AND" {
			return sheet.Bool_(lb && rb), nil
		}
		return sheet.Bool_(lb || rb), nil
	}
	l, err := evalExpr(x.Left, ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	r, err := evalExpr(x.Right, ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if isNull(l) || isNull(r) {
			return sheet.Empty(), nil // SQL: comparisons with NULL are unknown
		}
		var res bool
		switch x.Op {
		case "=":
			res = l.Equal(r)
		case "<>":
			res = !l.Equal(r)
		case "<":
			res = l.Compare(r) < 0
		case "<=":
			res = l.Compare(r) <= 0
		case ">":
			res = l.Compare(r) > 0
		case ">=":
			res = l.Compare(r) >= 0
		}
		return sheet.Bool_(res), nil
	case "||":
		if isNull(l) || isNull(r) {
			return sheet.Empty(), nil
		}
		return sheet.String_(l.AsString() + r.AsString()), nil
	case "+", "-", "*", "/", "%":
		if isNull(l) || isNull(r) {
			return sheet.Empty(), nil
		}
		a, okA := l.AsNumber()
		b, okB := r.AsNumber()
		if !okA || !okB {
			return sheet.Empty(), fmt.Errorf("sqlexec: arithmetic on non-numeric values %q, %q", l.String(), r.String())
		}
		switch x.Op {
		case "+":
			return sheet.Number(a + b), nil
		case "-":
			return sheet.Number(a - b), nil
		case "*":
			return sheet.Number(a * b), nil
		case "/":
			if b == 0 {
				return sheet.Empty(), fmt.Errorf("sqlexec: division by zero")
			}
			return sheet.Number(a / b), nil
		case "%":
			if b == 0 {
				return sheet.Empty(), fmt.Errorf("sqlexec: division by zero")
			}
			return sheet.Number(math.Mod(a, b)), nil
		}
	}
	return sheet.Empty(), fmt.Errorf("sqlexec: unknown operator %q", x.Op)
}

func evalCase(x *sqlparser.CaseExpr, ctx *evalCtx) (sheet.Value, error) {
	var operand sheet.Value
	hasOperand := x.Operand != nil
	if hasOperand {
		v, err := evalExpr(x.Operand, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		operand = v
	}
	for _, w := range x.Whens {
		cond, err := evalExpr(w.When, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		matched := false
		if hasOperand {
			matched = operand.Equal(cond)
		} else if b, ok := cond.AsBool(); ok {
			matched = b
		}
		if matched {
			return evalExpr(w.Then, ctx)
		}
	}
	if x.Else != nil {
		return evalExpr(x.Else, ctx)
	}
	return sheet.Empty(), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over runes.
	rs, rp := []rune(s), []rune(pattern)
	// match[i][j]: does rs[:i] match rp[:j]
	prev := make([]bool, len(rp)+1)
	cur := make([]bool, len(rp)+1)
	prev[0] = true
	for j := 1; j <= len(rp); j++ {
		prev[j] = prev[j-1] && rp[j-1] == '%'
	}
	for i := 1; i <= len(rs); i++ {
		cur[0] = false
		for j := 1; j <= len(rp); j++ {
			switch rp[j-1] {
			case '%':
				cur[j] = cur[j-1] || prev[j]
			case '_':
				cur[j] = prev[j-1]
			default:
				cur[j] = prev[j-1] && rs[i-1] == rp[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(rp)]
}

// --- scalar functions ---

func evalScalarFunc(x *sqlparser.FuncCall, ctx *evalCtx) (sheet.Value, error) {
	args := make([]sheet.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := evalExpr(a, ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		args[i] = v
	}
	name := strings.ToUpper(x.Name)
	argn := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlexec: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "UPPER":
		if err := argn(1); err != nil {
			return sheet.Empty(), err
		}
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		return sheet.String_(strings.ToUpper(args[0].AsString())), nil
	case "LOWER":
		if err := argn(1); err != nil {
			return sheet.Empty(), err
		}
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		return sheet.String_(strings.ToLower(args[0].AsString())), nil
	case "LENGTH", "LEN":
		if err := argn(1); err != nil {
			return sheet.Empty(), err
		}
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		return sheet.Number(float64(len([]rune(args[0].AsString())))), nil
	case "ABS":
		if err := argn(1); err != nil {
			return sheet.Empty(), err
		}
		return numericFunc1(args[0], math.Abs)
	case "FLOOR":
		if err := argn(1); err != nil {
			return sheet.Empty(), err
		}
		return numericFunc1(args[0], math.Floor)
	case "CEIL", "CEILING":
		if err := argn(1); err != nil {
			return sheet.Empty(), err
		}
		return numericFunc1(args[0], math.Ceil)
	case "SQRT":
		if err := argn(1); err != nil {
			return sheet.Empty(), err
		}
		return numericFunc1(args[0], math.Sqrt)
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return sheet.Empty(), fmt.Errorf("sqlexec: ROUND expects 1 or 2 arguments")
		}
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		f, ok := args[0].AsNumber()
		if !ok {
			return sheet.Empty(), fmt.Errorf("sqlexec: ROUND of non-numeric value")
		}
		digits := 0.0
		if len(args) == 2 {
			digits, _ = args[1].AsNumber()
		}
		scale := math.Pow(10, digits)
		return sheet.Number(math.Round(f*scale) / scale), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || len(args) > 3 {
			return sheet.Empty(), fmt.Errorf("sqlexec: SUBSTR expects 2 or 3 arguments")
		}
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		s := []rune(args[0].AsString())
		start, _ := args[1].AsNumber()
		i := int(start) - 1 // SQL SUBSTR is 1-based
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			i = len(s)
		}
		j := len(s)
		if len(args) == 3 {
			l, _ := args[2].AsNumber()
			j = i + int(l)
			if j > len(s) {
				j = len(s)
			}
			if j < i {
				j = i
			}
		}
		return sheet.String_(string(s[i:j])), nil
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if !isNull(a) {
				sb.WriteString(a.AsString())
			}
		}
		return sheet.String_(sb.String()), nil
	case "COALESCE":
		for _, a := range args {
			if !isNull(a) {
				return a, nil
			}
		}
		return sheet.Empty(), nil
	case "NULLIF":
		if err := argn(2); err != nil {
			return sheet.Empty(), err
		}
		if args[0].Equal(args[1]) {
			return sheet.Empty(), nil
		}
		return args[0], nil
	default:
		return sheet.Empty(), fmt.Errorf("sqlexec: unknown function %q", name)
	}
}

func numericFunc1(v sheet.Value, fn func(float64) float64) (sheet.Value, error) {
	if isNull(v) {
		return sheet.Empty(), nil
	}
	f, ok := v.AsNumber()
	if !ok {
		return sheet.Empty(), fmt.Errorf("sqlexec: numeric function applied to %q", v.String())
	}
	return sheet.Number(fn(f)), nil
}

// --- aggregates ---

func isAggregateFunc(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// exprHasAggregate reports whether the expression contains an aggregate call.
func exprHasAggregate(e sqlparser.Expr) bool {
	found := false
	walkExpr(e, func(x sqlparser.Expr) {
		if f, ok := x.(*sqlparser.FuncCall); ok && isAggregateFunc(f.Name) {
			found = true
		}
	})
	return found
}

// walkExpr visits every node of an expression tree.
func walkExpr(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		walkExpr(x.Left, fn)
		walkExpr(x.Right, fn)
	case *sqlparser.UnaryExpr:
		walkExpr(x.X, fn)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *sqlparser.InExpr:
		walkExpr(x.X, fn)
		for _, a := range x.List {
			walkExpr(a, fn)
		}
	case *sqlparser.IsNullExpr:
		walkExpr(x.X, fn)
	case *sqlparser.BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *sqlparser.LikeExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Pattern, fn)
	case *sqlparser.CaseExpr:
		walkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			walkExpr(w.When, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(x.Else, fn)
	}
}

// evalAggregate computes an aggregate over the rows of ctx.group.
func evalAggregate(x *sqlparser.FuncCall, ctx *evalCtx) (sheet.Value, error) {
	if ctx.group == nil {
		return sheet.Empty(), fmt.Errorf("sqlexec: aggregate %s used outside an aggregation context", x.Name)
	}
	name := strings.ToUpper(x.Name)
	// COUNT(*) counts rows.
	if x.Star {
		if name != "COUNT" {
			return sheet.Empty(), fmt.Errorf("sqlexec: %s(*) is not valid", name)
		}
		return sheet.Number(float64(len(ctx.group))), nil
	}
	if len(x.Args) != 1 {
		return sheet.Empty(), fmt.Errorf("sqlexec: %s expects exactly one argument", name)
	}
	var vals []sheet.Value
	seen := make(map[string]bool)
	for _, row := range ctx.group {
		rowCtx := &evalCtx{rel: ctx.rel, row: row, sheets: ctx.sheets}
		v, err := evalExpr(x.Args[0], rowCtx)
		if err != nil {
			return sheet.Empty(), err
		}
		if isNull(v) {
			continue // SQL aggregates ignore NULLs
		}
		if x.Distinct {
			k := fmt.Sprintf("%d:%s", v.Kind, strings.ToLower(v.String()))
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch name {
	case "COUNT":
		return sheet.Number(float64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sheet.Empty(), nil
		}
		sum := 0.0
		for _, v := range vals {
			f, ok := v.AsNumber()
			if !ok {
				return sheet.Empty(), fmt.Errorf("sqlexec: %s over non-numeric value %q", name, v.String())
			}
			sum += f
		}
		if name == "AVG" {
			return sheet.Number(sum / float64(len(vals))), nil
		}
		return sheet.Number(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sheet.Empty(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := v.Compare(best)
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sheet.Empty(), fmt.Errorf("sqlexec: unknown aggregate %q", name)
}
