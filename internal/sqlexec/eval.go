package sqlexec

import (
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
)

// SheetAccessor resolves the paper's positional constructs against the
// spreadsheet front-end: RANGEVALUE(ref) reads one cell, RANGETABLE(ref)
// exposes a sheet range as a relation. The core package provides the
// implementation; a nil accessor makes positional constructs fail with a
// clear error (e.g. when the engine is used standalone).
type SheetAccessor interface {
	// RangeValue returns the value of a single cell, identified by an
	// optionally sheet-qualified A1 reference such as "B2" or "Sheet2!B2".
	RangeValue(ref string) (sheet.Value, error)
	// RangeTable returns the column names and rows of a sheet range such
	// as "A1:D100" or "Sheet2!A1:D100". When headerRow is true the first
	// row of the range provides the column names.
	RangeTable(ref string, headerRow bool) ([]string, [][]sheet.Value, error)
}

// colDesc identifies one column of an intermediate relation.
type colDesc struct {
	table string // lower-cased table name or alias ("" when anonymous)
	name  string // lower-cased column name
	src   int    // index of the FROM source the column came from (-1 anonymous)
}

// relation is the executor's intermediate result: a schema plus materialised
// rows.
type relation struct {
	cols []colDesc
	rows [][]sheet.Value
}

func (r *relation) columnIndex(table, name string) (int, error) {
	return findColumn(r.cols, strings.ToLower(table), strings.ToLower(name))
}

// isNull is the SQL NULL test over the unified value model.
func isNull(v sheet.Value) bool { return v.IsEmpty() }

// likeMatch implements SQL LIKE with % (any run) and _ (any single char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over runes.
	rs, rp := []rune(s), []rune(pattern)
	// match[i][j]: does rs[:i] match rp[:j]
	prev := make([]bool, len(rp)+1)
	cur := make([]bool, len(rp)+1)
	prev[0] = true
	for j := 1; j <= len(rp); j++ {
		prev[j] = prev[j-1] && rp[j-1] == '%'
	}
	for i := 1; i <= len(rs); i++ {
		cur[0] = false
		for j := 1; j <= len(rp); j++ {
			switch rp[j-1] {
			case '%':
				cur[j] = cur[j-1] || prev[j]
			case '_':
				cur[j] = prev[j-1]
			default:
				cur[j] = prev[j-1] && rs[i-1] == rp[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(rp)]
}

// --- expression analysis helpers ---

func isAggregateFunc(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// exprHasAggregate reports whether the expression contains an aggregate call.
func exprHasAggregate(e sqlparser.Expr) bool {
	found := false
	walkExpr(e, func(x sqlparser.Expr) {
		if f, ok := x.(*sqlparser.FuncCall); ok && isAggregateFunc(f.Name) {
			found = true
		}
	})
	return found
}

// walkExpr visits every node of an expression tree.
func walkExpr(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		walkExpr(x.Left, fn)
		walkExpr(x.Right, fn)
	case *sqlparser.UnaryExpr:
		walkExpr(x.X, fn)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *sqlparser.InExpr:
		walkExpr(x.X, fn)
		for _, a := range x.List {
			walkExpr(a, fn)
		}
	case *sqlparser.IsNullExpr:
		walkExpr(x.X, fn)
	case *sqlparser.BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *sqlparser.LikeExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Pattern, fn)
	case *sqlparser.CaseExpr:
		walkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			walkExpr(w.When, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(x.Else, fn)
	}
}

// exprColumnFree reports whether the expression references no columns and no
// aggregates — i.e. it is row-independent and can be evaluated once per
// execution (RANGEVALUE parameters are per-execution constants).
func exprColumnFree(e sqlparser.Expr) bool {
	free := true
	walkExpr(e, func(x sqlparser.Expr) {
		switch f := x.(type) {
		case *sqlparser.ColumnRef:
			free = false
		case *sqlparser.FuncCall:
			if isAggregateFunc(f.Name) {
				free = false
			}
		}
	})
	return free
}

// exprCanError reports whether evaluating the expression can fail at
// runtime (division by zero, arithmetic or negation over non-numeric
// values, scalar-function argument errors). Conjuncts that can error are
// never pushed below a join or folded ahead of the WHERE clause: the old
// row-at-a-time evaluator would only have reached them for rows that
// survived the joins and the preceding short-circuiting conjuncts, and
// evaluating them more eagerly would turn previously-succeeding queries
// into errors. Comparisons, boolean connectives, IN/BETWEEN/LIKE/IS NULL,
// CASE, concatenation, literals, column references and RANGEVALUE are
// error-free over every value.
func exprCanError(e sqlparser.Expr) bool {
	can := false
	walkExpr(e, func(x sqlparser.Expr) {
		switch f := x.(type) {
		case *sqlparser.UnaryExpr:
			if f.Op == "-" {
				if lit, ok := f.X.(*sqlparser.Literal); ok && lit.Value.IsNumber() {
					return // a negated numeric literal cannot fail
				}
			}
			can = true // "-" and NOT error on non-coercible values
		case *sqlparser.BinaryExpr:
			switch f.Op {
			case "+", "-", "*", "/", "%":
				can = true
			}
		case *sqlparser.FuncCall:
			can = true // scalar functions validate their arguments
		}
	})
	return can
}
