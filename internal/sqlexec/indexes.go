package sqlexec

import (
	"fmt"
	"strings"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/index/btree"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// Secondary indexes. A secondary index is a B+-tree over the order-preserving
// encoding of one or more columns; because values need not be unique, the
// RowID is appended to every key, so an equality probe becomes a short range
// scan over the value's key prefix. The database maintains every index of a
// table inside the same critical section as the base-table mutation, so a
// reader holding db.mu (or arriving after it is released) always observes
// table and indexes in agreement — including across transaction rollback,
// whose undo actions run through the same Insert/Update/Delete paths.

// IndexDef describes a secondary index for catalog listings and EXPLAIN.
type IndexDef struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// secIndex is a live secondary index: its definition, the resolved column
// positions (kept in sync with schema evolution), and the tree itself.
type secIndex struct {
	def  IndexDef
	cols []int
	tree *btree.Tree
}

// rowKeyPrefix encodes the indexed column values of a row.
func (si *secIndex) rowKeyPrefix(row []sheet.Value) []byte {
	parts := make([][]byte, len(si.cols))
	for i, c := range si.cols {
		parts[i] = encodeKeyValue(row[c])
	}
	return btree.Composite(parts...)
}

// rowKey encodes the full entry key for a row: value prefix plus RowID.
func (si *secIndex) rowKey(row []sheet.Value, id tablestore.RowID) []byte {
	return btree.Composite(si.rowKeyPrefix(row), btree.EncodeUint64(uint64(id)))
}

// hasNull reports whether any indexed column of the row is NULL; unique
// enforcement skips such rows (SQL permits repeated NULLs in unique indexes).
func (si *secIndex) hasNull(row []sheet.Value) bool {
	for _, c := range si.cols {
		if row[c].IsEmpty() {
			return true
		}
	}
	return false
}

// CreateIndex builds a secondary index over existing rows and registers it.
// With ifNotExists set, an existing index of the same name is left untouched.
func (db *Database) CreateIndex(name, table string, columns []string, unique, ifNotExists bool) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("sqlexec: empty index name: %w", dberr.ErrInvalidSchema)
	}
	tbl, err := db.cat.MustGet(table)
	if err != nil {
		return err
	}
	if len(columns) == 0 {
		return fmt.Errorf("sqlexec: index %q must cover at least one column: %w", name, dberr.ErrInvalidSchema)
	}
	si := &secIndex{
		def:  IndexDef{Name: name, Table: tbl.Name, Columns: append([]string(nil), columns...), Unique: unique},
		cols: make([]int, len(columns)),
		tree: btree.New(),
	}
	for i, col := range columns {
		idx, ok := tbl.ColumnIndex(col)
		if !ok {
			return fmt.Errorf("sqlexec: unknown column %q in index %q on table %q: %w", col, name, table, dberr.ErrColumnNotFound)
		}
		si.cols[i] = idx
	}
	s, err := db.store(table)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.indexByName[ikey(name)]; dup {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("sqlexec: index %q: %w", name, dberr.ErrIndexExists)
	}
	// Build under the write lock so no concurrent mutation slips between the
	// backfill scan and registration.
	var buildErr error
	err = s.Scan(func(id tablestore.RowID, row []sheet.Value) bool {
		if unique && !si.hasNull(row) {
			prefix := si.rowKeyPrefix(row)
			if indexPrefixOccupied(si.tree, prefix, 0) {
				buildErr = fmt.Errorf("sqlexec: cannot create unique index %q: duplicate value in table %q: %w", name, table, dberr.ErrUniqueViolation)
				return false
			}
		}
		si.tree.Set(si.rowKey(row, id), uint64(id))
		return true
	})
	if err == nil {
		err = buildErr
	}
	if err != nil {
		return err
	}
	if db.indexByName == nil {
		db.indexByName = make(map[string]*secIndex)
	}
	db.indexByName[ikey(name)] = si
	tk := tkey(table)
	db.secIndexes[tk] = append(db.secIndexes[tk], si)
	db.invalidatePlans()
	return nil
}

// DropIndex removes a secondary index. With ifExists set, a missing index is
// not an error.
func (db *Database) DropIndex(name string, ifExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	si, ok := db.indexByName[ikey(name)]
	if !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("sqlexec: index %q: %w", name, dberr.ErrIndexNotFound)
	}
	delete(db.indexByName, ikey(name))
	db.dropTableIndexLocked(tkey(si.def.Table), si)
	db.invalidatePlans()
	return nil
}

// dslint:requires(engine)
func (db *Database) dropTableIndexLocked(tk string, si *secIndex) {
	list := db.secIndexes[tk]
	for i, other := range list {
		if other == si {
			db.secIndexes[tk] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Indexes lists the secondary indexes of one table.
func (db *Database) Indexes(table string) []IndexDef {
	db.mu.RLock()
	defer db.mu.RUnlock()
	list := db.secIndexes[tkey(table)]
	out := make([]IndexDef, len(list))
	for i, si := range list {
		out[i] = si.def
	}
	return out
}

// AllIndexes lists every secondary index of the database (used by the
// durability layer to snapshot index DDL).
func (db *Database) AllIndexes() []IndexDef {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []IndexDef
	for _, t := range db.cat.List() {
		for _, si := range db.secIndexes[tkey(t.Name)] {
			out = append(out, si.def)
		}
	}
	return out
}

func ikey(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// indexPrefixOccupied reports whether any entry under the value prefix
// belongs to a row other than exclude (0 excludes nothing).
func indexPrefixOccupied(tree *btree.Tree, prefix []byte, exclude tablestore.RowID) bool {
	occupied := false
	tree.AscendRange(prefix, btree.PrefixEnd(prefix), func(_ []byte, val uint64) bool {
		if tablestore.RowID(val) != exclude {
			occupied = true
			return false
		}
		return true
	})
	return occupied
}

// --- maintenance hooks (callers hold db.mu) ---

// secCheckInsertLocked verifies unique constraints for a new row.
// dslint:requires(engine)
func (db *Database) secCheckInsertLocked(table string, row []sheet.Value) error {
	for _, si := range db.secIndexes[tkey(table)] {
		if si.def.Unique && !si.hasNull(row) {
			if indexPrefixOccupied(si.tree, si.rowKeyPrefix(row), 0) {
				return fmt.Errorf("sqlexec: duplicate value for unique index %q in table %q: %w", si.def.Name, table, dberr.ErrUniqueViolation)
			}
		}
	}
	return nil
}

// secInsertLocked adds a row's entries to every index of the table.
// dslint:requires(engine)
func (db *Database) secInsertLocked(table string, row []sheet.Value, id tablestore.RowID) {
	for _, si := range db.secIndexes[tkey(table)] {
		si.tree.Set(si.rowKey(row, id), uint64(id))
	}
}

// secDeleteLocked removes a row's entries from every index of the table.
// dslint:requires(engine)
func (db *Database) secDeleteLocked(table string, row []sheet.Value, id tablestore.RowID) {
	for _, si := range db.secIndexes[tkey(table)] {
		si.tree.Delete(si.rowKey(row, id))
	}
}

// secCheckUpdateLocked verifies unique constraints for a row change.
// dslint:requires(engine)
func (db *Database) secCheckUpdateLocked(table string, old, new []sheet.Value, id tablestore.RowID) error {
	for _, si := range db.secIndexes[tkey(table)] {
		if !si.def.Unique || si.hasNull(new) {
			continue
		}
		newPrefix := si.rowKeyPrefix(new)
		if string(newPrefix) == string(si.rowKeyPrefix(old)) {
			continue
		}
		if indexPrefixOccupied(si.tree, newPrefix, id) {
			return fmt.Errorf("sqlexec: duplicate value for unique index %q in table %q: %w", si.def.Name, table, dberr.ErrUniqueViolation)
		}
	}
	return nil
}

// secUpdateLocked rewrites a row's entries after an update.
// dslint:requires(engine)
func (db *Database) secUpdateLocked(table string, old, new []sheet.Value, id tablestore.RowID) {
	for _, si := range db.secIndexes[tkey(table)] {
		oldKey, newKey := si.rowKey(old, id), si.rowKey(new, id)
		if string(oldKey) == string(newKey) {
			continue
		}
		si.tree.Delete(oldKey)
		si.tree.Set(newKey, uint64(id))
	}
}

// secColumnIndexedLocked reports whether column col of the table appears in
// any secondary index (such columns must be updated through the full Update
// path so entries stay in sync).
// dslint:requires(engine)
func (db *Database) secColumnIndexedLocked(table string, col int) bool {
	for _, si := range db.secIndexes[tkey(table)] {
		for _, c := range si.cols {
			if c == col {
				return true
			}
		}
	}
	return false
}

// secOnDropColumnLocked adjusts indexes after column idx was removed from
// the table: indexes covering the column are dropped (cascade, mirroring the
// storage managers' positional schema), the rest shift their resolved
// positions.
// dslint:requires(engine)
func (db *Database) secOnDropColumnLocked(table string, idx int) {
	tk := tkey(table)
	kept := db.secIndexes[tk][:0]
	for _, si := range db.secIndexes[tk] {
		covers := false
		for i, c := range si.cols {
			if c == idx {
				covers = true
			}
			if c > idx {
				si.cols[i] = c - 1
			}
		}
		if covers {
			delete(db.indexByName, ikey(si.def.Name))
			continue
		}
		kept = append(kept, si)
	}
	db.secIndexes[tk] = kept
}

// secOnRenameColumnLocked renames the column inside index definitions.
// dslint:requires(engine)
func (db *Database) secOnRenameColumnLocked(table, oldName, newName string) {
	for _, si := range db.secIndexes[tkey(table)] {
		for i, c := range si.def.Columns {
			if strings.EqualFold(c, oldName) {
				si.def.Columns[i] = newName
			}
		}
	}
}

// secOnDropTableLocked removes every index of a dropped table.
// dslint:requires(engine)
func (db *Database) secOnDropTableLocked(table string) {
	tk := tkey(table)
	for _, si := range db.secIndexes[tk] {
		delete(db.indexByName, ikey(si.def.Name))
	}
	delete(db.secIndexes, tk)
}
