package sqlexec

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// --- prepared-plan cache ---

func TestPlanCacheHitsAndReuse(t *testing.T) {
	db, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	base := db.PlanCacheStats()
	const q = "SELECT a FROM t WHERE a > 0"
	for i := 0; i < 5; i++ {
		mustExec(t, s, q)
	}
	st := db.PlanCacheStats()
	if st.Hits-base.Hits < 4 {
		t.Fatalf("expected >=4 plan cache hits, got %d (stats %+v)", st.Hits-base.Hits, st)
	}
	if st.Size == 0 {
		t.Fatal("plan cache is empty after repeated queries")
	}
}

// TestPlanCacheInvalidatedOnDDL proves a cached plan never reads a stale
// schema: the same SQL text is re-planned after CREATE/ALTER/DROP and
// observes the new table shape.
func TestPlanCacheInvalidatedOnDDL(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 2)")
	const q = "SELECT * FROM t"
	res := mustExec(t, s, q)
	if len(res.Columns) != 2 || res.Columns[0] != "a" {
		t.Fatalf("before DDL: columns %v", res.Columns)
	}

	// ALTER: the cached SELECT * must see the added column.
	mustExec(t, s, "ALTER TABLE t ADD COLUMN c INT DEFAULT 9")
	res = mustExec(t, s, q)
	if len(res.Columns) != 3 || res.Columns[2] != "c" {
		t.Fatalf("after ADD COLUMN: columns %v", res.Columns)
	}
	if got := res.Rows[0][2]; !got.Equal(sheet.Number(9)) {
		t.Fatalf("after ADD COLUMN: backfill %v", got)
	}

	// DROP + CREATE with swapped column order: the cached plan must bind
	// against the new positions, not the old ones.
	mustExec(t, s, "DROP TABLE t")
	mustExec(t, s, "CREATE TABLE t (b TEXT, a TEXT)")
	mustExec(t, s, "INSERT INTO t VALUES ('bee', 'ay')")
	res = mustExec(t, s, q)
	if len(res.Columns) != 2 || res.Columns[0] != "b" || res.Columns[1] != "a" {
		t.Fatalf("after recreate: columns %v", res.Columns)
	}
	if !res.Rows[0][0].Equal(sheet.String_("bee")) || !res.Rows[0][1].Equal(sheet.String_("ay")) {
		t.Fatalf("after recreate: row %v", res.Rows[0])
	}

	// A projection that no longer resolves must fail, not read stale slots.
	mustExec(t, s, "SELECT a FROM t") // still fine: a exists
	mustExec(t, s, "DROP TABLE t")
	mustExec(t, s, "CREATE TABLE t (z INT)")
	if _, err := s.Query("SELECT a FROM t"); err == nil {
		t.Fatal("SELECT of dropped column should fail after re-CREATE")
	}
}

// --- predicate pushdown semantics ---

func TestPushdownPreservesLeftJoinSemantics(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE l (id INT, v INT)")
	mustExec(t, s, "CREATE TABLE r (id INT, w INT)")
	mustExec(t, s, "INSERT INTO l VALUES (1, 10), (2, 20), (3, 30)")
	mustExec(t, s, "INSERT INTO r VALUES (1, 100), (3, 300)")

	// Predicate on the nullable (right) side must apply after the join:
	// unmatched left rows have NULL w, and NULL comparisons drop them.
	res := mustExec(t, s, "SELECT id, w FROM l LEFT JOIN r USING (id) WHERE w > 99")
	if len(res.Rows) != 2 {
		t.Fatalf("right-side predicate over LEFT JOIN: got %d rows, want 2", len(res.Rows))
	}
	// Predicate on the preserved (left) side pushes below the join and
	// must keep the NULL-extended row for id=2.
	res = mustExec(t, s, "SELECT id, w FROM l LEFT JOIN r USING (id) WHERE v >= 20")
	if len(res.Rows) != 2 {
		t.Fatalf("left-side predicate over LEFT JOIN: got %d rows, want 2", len(res.Rows))
	}
	foundNull := false
	for _, row := range res.Rows {
		if row[0].Equal(sheet.Number(2)) && row[1].IsEmpty() {
			foundNull = true
		}
	}
	if !foundNull {
		t.Fatalf("NULL-extended row for id=2 missing: %v", res.Rows)
	}
}

func TestConstantWhereConjuncts(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2)")
	if res := mustExec(t, s, "SELECT a FROM t WHERE 1 = 2"); len(res.Rows) != 0 {
		t.Fatalf("constant-false WHERE returned %d rows", len(res.Rows))
	}
	if res := mustExec(t, s, "SELECT a FROM t WHERE 1 = 1 AND a > 1"); len(res.Rows) != 1 {
		t.Fatalf("constant-true conjunct broke filtering: %d rows", len(res.Rows))
	}
	if res := mustExec(t, s, "SELECT a FROM t WHERE NULL IS NULL"); len(res.Rows) != 2 {
		t.Fatalf("constant NULL-test WHERE returned %d rows", len(res.Rows))
	}
}

// TestUnreferencedSourceKeepsAlignment covers the zero-needed-columns case:
// a FROM source none of whose columns are referenced must scan a zero-width
// relation, not a full-width one with an empty schema (which would misalign
// every column after the join).
func TestUnreferencedSourceKeepsAlignment(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t1 (a INT, b INT)")
	mustExec(t, s, "CREATE TABLE t2 (x INT, y INT)")
	mustExec(t, s, "INSERT INTO t1 VALUES (111, 222)")
	mustExec(t, s, "INSERT INTO t2 VALUES (7, 8)")
	res := mustExec(t, s, "SELECT x FROM t1 JOIN t2 ON 1 = 1")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(sheet.Number(7)) {
		t.Fatalf("unreferenced-source join: got %v, want [[7]]", res.Rows)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM t1")
	if !res.Rows[0][0].Equal(sheet.Number(1)) {
		t.Fatalf("COUNT(*) over zero-column scan = %v", res.Rows[0][0])
	}
}

// TestErrorCapableConjunctsNotHoisted pins the row-at-a-time error
// semantics: conjuncts that can fail (division etc.) must not be folded
// ahead of short-circuiting AND, and must not be pushed below a join onto
// rows the join would have eliminated.
func TestErrorCapableConjunctsNotHoisted(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t1 (a INT)")
	mustExec(t, s, "CREATE TABLE t2 (flag INT)")
	mustExec(t, s, "INSERT INTO t1 VALUES (1), (0)")

	// Short-circuit: the constant-false left conjunct must prevent the
	// division from ever being evaluated.
	res := mustExec(t, s, "SELECT a FROM t1 WHERE 1 = 2 AND 1/0 = 1")
	if len(res.Rows) != 0 {
		t.Fatalf("short-circuit rows = %v", res.Rows)
	}
	// Pushdown: t2 is empty, so the join produces no rows and 10/t1.a must
	// never be evaluated — including on the a=0 row.
	res = mustExec(t, s, "SELECT a FROM t1 JOIN t2 ON 1 = 1 WHERE flag = 1 AND 10 / a > 1")
	if len(res.Rows) != 0 {
		t.Fatalf("pushdown rows = %v", res.Rows)
	}
	// And when rows do survive, the predicate still works.
	mustExec(t, s, "INSERT INTO t2 VALUES (1)")
	res = mustExec(t, s, "SELECT a FROM t1 WHERE a <> 0 AND 10 / a > 1")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(sheet.Number(1)) {
		t.Fatalf("guarded division rows = %v", res.Rows)
	}
}

// --- projection pruning ---

// TestProjectionPruningReadsFewerBlocks verifies that a narrow projection
// over a column layout touches only the referenced columns' blocks.
func TestProjectionPruningReadsFewerBlocks(t *testing.T) {
	ps := pager.NewStore()
	db := NewDatabase(Config{Layout: LayoutColumn, Backend: ps, BufferPoolPages: new(int)}) // 0 pages: every read hits the store
	s := db.NewSession(nil)
	cols := make([]string, 8)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d INT", i)
	}
	mustExec(t, s, "CREATE TABLE wide ("+strings.Join(cols, ", ")+")")
	for i := 0; i < 2000; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO wide VALUES (%d,%d,%d,%d,%d,%d,%d,%d)", i, i, i, i, i, i, i, i))
	}

	ps.ResetStats()
	res := mustExec(t, s, "SELECT c3 FROM wide WHERE c3 >= 0")
	if len(res.Rows) != 2000 {
		t.Fatalf("narrow scan lost rows: %d", len(res.Rows))
	}
	narrow := ps.Stats().Reads

	ps.ResetStats()
	res = mustExec(t, s, "SELECT * FROM wide")
	if len(res.Rows) != 2000 {
		t.Fatalf("wide scan lost rows: %d", len(res.Rows))
	}
	wide := ps.Stats().Reads

	if narrow == 0 || wide == 0 {
		t.Fatalf("expected block reads, got narrow=%d wide=%d", narrow, wide)
	}
	// One of eight columns referenced: the pruned scan should touch well
	// under half the blocks of the full scan.
	if narrow*2 >= wide {
		t.Fatalf("projection pruning ineffective: narrow=%d wide=%d block reads", narrow, wide)
	}
}

// --- top-K ORDER BY ... LIMIT ---

func TestTopKMatchesFullSort(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (id INT, v INT)")
	// Values with many ties so stability matters.
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, (i*37)%10))
	}
	full := mustExec(t, s, "SELECT id, v FROM t ORDER BY v, id DESC")
	for _, limit := range []int{1, 5, 17, 200, 500} {
		for _, offset := range []int{0, 3, 190} {
			q := fmt.Sprintf("SELECT id, v FROM t ORDER BY v, id DESC LIMIT %d OFFSET %d", limit, offset)
			got := mustExec(t, s, q)
			want := full.Rows
			if offset < len(want) {
				want = want[offset:]
			} else {
				want = nil
			}
			if limit < len(want) {
				want = want[:limit]
			}
			if len(got.Rows) != len(want) {
				t.Fatalf("%s: got %d rows, want %d", q, len(got.Rows), len(want))
			}
			for i := range want {
				for c := range want[i] {
					if !got.Rows[i][c].Equal(want[i][c]) {
						t.Fatalf("%s: row %d col %d: got %v want %v", q, i, c, got.Rows[i][c], want[i][c])
					}
				}
			}
		}
	}
}

func TestTopKStabilityOnTies(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (id INT, v INT)")
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, 7)", i))
	}
	// All keys equal: a stable sort keeps insertion order, so LIMIT 5 must
	// return ids 0..4 exactly.
	res := mustExec(t, s, "SELECT id FROM t ORDER BY v LIMIT 5")
	for i := 0; i < 5; i++ {
		if !res.Rows[i][0].Equal(sheet.Number(float64(i))) {
			t.Fatalf("tie-breaking lost stability: row %d = %v", i, res.Rows[i][0])
		}
	}
}

// --- typed join/group keys: golden tests against the legacy hashKey ---

// legacyHashKey is the string key the executor used before typed keys; it is
// the golden semantics the normalized key must reproduce.
func legacyHashKey(row []sheet.Value, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		v := sheet.Empty()
		if c < len(row) {
			v = row[c]
		}
		if f, ok := v.AsNumber(); ok && v.Kind != sheet.KindString {
			fmt.Fprintf(&sb, "n:%v|", f)
			continue
		}
		fmt.Fprintf(&sb, "%d:%s|", v.Kind, strings.ToLower(v.String()))
	}
	return sb.String()
}

func TestNormKeyMatchesLegacyHashKey(t *testing.T) {
	// Edge values: NULLs, numeric-vs-string equality, case-insensitive
	// strings, booleans, zero, errors. (-0 is deliberately excluded: the
	// legacy string key distinguished -0 from 0, while the typed key
	// follows sheet.Value.Equal, under which they are equal.)
	vals := []sheet.Value{
		sheet.Empty(),
		sheet.Number(0),
		sheet.Number(1),
		sheet.Number(1.5),
		sheet.Number(-3),
		sheet.Number(math.NaN()),
		sheet.Bool_(true),
		sheet.Bool_(false),
		sheet.String_("1"),
		sheet.String_("01"),
		sheet.String_("abc"),
		sheet.String_("ABC"),
		sheet.String_("true"),
		sheet.String_(""),
		sheet.String_(" 1"),
		sheet.ErrorValue("#DIV/0!"),
		sheet.ErrorValue("#REF!"),
	}
	for i, a := range vals {
		for j, b := range vals {
			legacyEq := legacyHashKey([]sheet.Value{a}, []int{0}) == legacyHashKey([]sheet.Value{b}, []int{0})
			typedEq := normKeyValue(a) == normKeyValue(b)
			if legacyEq != typedEq {
				t.Errorf("values %d=%q and %d=%q: legacy equal=%v, typed equal=%v",
					i, a.String(), j, b.String(), legacyEq, typedEq)
			}
		}
	}
}

// TestGroupByNormalizationGolden runs GROUP BY over edge-case keys and
// checks the groups match what the legacy string key would have produced:
// NULL groups with 0 (both coerce to the number 0), "1" stays apart from 1
// (string vs number), and case-insensitive strings group together.
func TestGroupByNormalizationGolden(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE g (k TEXT, v INT)")
	mustExec(t, s, `INSERT INTO g VALUES ('a', 1), ('A', 2), ('b', 4)`)
	res := mustExec(t, s, "SELECT k, COUNT(*) FROM g GROUP BY k")
	if len(res.Rows) != 2 {
		t.Fatalf("case-insensitive grouping: got %d groups, want 2", len(res.Rows))
	}
	// First-seen order: 'a' group (count 2) then 'b' (count 1).
	if !res.Rows[0][1].Equal(sheet.Number(2)) || !res.Rows[1][1].Equal(sheet.Number(1)) {
		t.Fatalf("group counts %v", res.Rows)
	}

	mustExec(t, s, "CREATE TABLE n (k NUMERIC)")
	mustExec(t, s, "INSERT INTO n VALUES (0), (NULL), (1)")
	res = mustExec(t, s, "SELECT COUNT(*) FROM n GROUP BY k")
	// Legacy semantics: NULL coerces to the number 0, so NULL and 0 share
	// a group — 2 groups total.
	if len(res.Rows) != 2 {
		t.Fatalf("NULL/0 grouping: got %d groups, want 2 (legacy hashKey semantics)", len(res.Rows))
	}
}

// TestJoinNormalizationGolden checks hash-join key matching across types:
// numeric-vs-string join keys must match the legacy behavior (1 joins with
// TRUE, not with '1'; strings join case-insensitively).
func TestJoinNormalizationGolden(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE a (k ANY, va INT)")
	mustExec(t, s, "CREATE TABLE b (k ANY, vb INT)")
	mustExec(t, s, `INSERT INTO a VALUES (1, 1), ('x', 2), ('1', 3)`)
	mustExec(t, s, `INSERT INTO b VALUES (TRUE, 10), ('X', 20), (1, 30)`)
	res := mustExec(t, s, "SELECT va, vb FROM a NATURAL JOIN b ORDER BY va, vb")
	// Legacy matches: number 1 (a) joins TRUE and 1 (b, both normalize to
	// n:1); 'x' joins 'X'; string '1' joins nothing (strings never
	// normalize numerically).
	type pair struct{ va, vb float64 }
	want := []pair{{1, 10}, {1, 30}, {2, 20}}
	if len(res.Rows) != len(want) {
		t.Fatalf("join rows %v, want %d matches", res.Rows, len(want))
	}
	for i, w := range want {
		if !res.Rows[i][0].Equal(sheet.Number(w.va)) || !res.Rows[i][1].Equal(sheet.Number(w.vb)) {
			t.Fatalf("join row %d = %v, want %+v", i, res.Rows[i], w)
		}
	}
}

func TestDistinctAggregateNormalization(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE d (v ANY)")
	// Legacy DISTINCT-aggregate key was kind + lower-cased string: 'a'/'A'
	// dedupe, 1 and '1' stay distinct (different kinds).
	mustExec(t, s, `INSERT INTO d VALUES ('a'), ('A'), (1), ('1'), (NULL)`)
	res := mustExec(t, s, "SELECT COUNT(DISTINCT v) FROM d")
	if !res.Rows[0][0].Equal(sheet.Number(3)) {
		t.Fatalf("COUNT(DISTINCT) = %v, want 3 (a/A dedupe; 1 vs '1' distinct; NULL ignored)", res.Rows[0][0])
	}
}

// --- streaming aggregation behavior preserved ---

func TestGroupedEdgeCases(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (k TEXT, v INT)")
	// Aggregates over an empty table still produce one row.
	res := mustExec(t, s, "SELECT COUNT(*), SUM(v), MIN(v) FROM t")
	if len(res.Rows) != 1 {
		t.Fatalf("empty aggregation rows = %d", len(res.Rows))
	}
	if !res.Rows[0][0].Equal(sheet.Number(0)) || !res.Rows[0][1].IsEmpty() || !res.Rows[0][2].IsEmpty() {
		t.Fatalf("empty aggregation = %v", res.Rows[0])
	}
	mustExec(t, s, `INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 5), ('b', NULL)`)
	res = mustExec(t, s, "SELECT k, COUNT(v), AVG(v) FROM t GROUP BY k HAVING COUNT(*) > 1 ORDER BY k")
	if len(res.Rows) != 2 {
		t.Fatalf("grouped rows = %d", len(res.Rows))
	}
	if !res.Rows[0][2].Equal(sheet.Number(2)) { // AVG(1,3)
		t.Fatalf("AVG group a = %v", res.Rows[0][2])
	}
	if !res.Rows[1][1].Equal(sheet.Number(1)) { // COUNT(v) ignores NULL
		t.Fatalf("COUNT group b = %v", res.Rows[1][1])
	}
}

func TestRangeValueFoldedPerExecution(t *testing.T) {
	db, _ := newTestDB(t)
	fs := newFakeSheets()
	s := db.NewSession(fs)
	mustExec(t, s, "CREATE TABLE t (v INT)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2), (3)")
	fs.cells["B1"] = sheet.Number(2)
	const q = "SELECT v FROM t WHERE v > RANGEVALUE(B1)"
	if res := mustExec(t, s, q); len(res.Rows) != 1 {
		t.Fatalf("RANGEVALUE=2: %d rows", len(res.Rows))
	}
	// Same cached plan, new parameter value: the fold must happen per
	// execution, not per prepared plan.
	fs.cells["B1"] = sheet.Number(0)
	if res := mustExec(t, s, q); len(res.Rows) != 3 {
		t.Fatalf("RANGEVALUE=0 after cache: %d rows", len(res.Rows))
	}
}
