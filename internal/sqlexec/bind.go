package sqlexec

import (
	"context"
	"fmt"
	"math"
	"strings"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
)

// Expression compilation. The executor used to walk the parsed AST for every
// row, resolving each column reference by a linear, case-folding name search
// over the relation schema. compileExpr instead binds an expression against
// a fixed schema once per statement execution, producing a boundExpr tree in
// which column references are slot indexes, RANGEVALUE parameters are folded
// to the constants they hold for this execution, and aggregate calls are
// slots into the per-group accumulator results. Per-row evaluation is then a
// direct tree walk with no name resolution and no formatting.

// execEnv is the per-execution context threaded through planning and
// evaluation: the spreadsheet accessor for positional constructs, the
// argument values bound to this execution's '?' placeholders, and the
// caller's context, polled at batch boundaries so a cancelled query stops
// scanning, joining and sorting promptly.
type execEnv struct {
	sheets SheetAccessor
	params []sheet.Value
	ctx    context.Context
	ticks  int
}

// ctxCheckInterval is how many processed rows pass between context polls; a
// power of two keeps the modulo cheap on the per-row path.
const ctxCheckInterval = 1024

// check polls the execution's context every ctxCheckInterval calls. Scan,
// join, sort and projection loops call it once per row.
//
// dslint:poll
func (e *execEnv) check() error {
	if e == nil || e.ctx == nil {
		return nil
	}
	e.ticks++
	if e.ticks%ctxCheckInterval != 0 {
		return nil
	}
	return e.checkNow()
}

// checkNow polls the context unconditionally (stage boundaries).
//
// dslint:poll
func (e *execEnv) checkNow() error {
	if e == nil || e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return e.ctx.Err()
	default:
		return nil
	}
}

// newRowCtx builds an evaluation context carrying this execution's
// spreadsheet accessor and bound parameters.
func (e *execEnv) newRowCtx() *rowCtx {
	if e == nil {
		return &rowCtx{}
	}
	return &rowCtx{sheets: e.sheets, params: e.params}
}

// compileEnv builds a compilation environment over the given schema.
func (e *execEnv) compileEnv(cols []colDesc) *compileEnv {
	var sheets SheetAccessor
	if e != nil {
		sheets = e.sheets
	}
	return &compileEnv{cols: cols, sheets: sheets}
}

// compileEnv is the compilation context: the input schema plus, inside
// grouped projections, the aggregate registry.
type compileEnv struct {
	cols   []colDesc
	noRel  bool // table-less context: column references are errors
	sheets SheetAccessor
	aggs   *aggRegistry // non-nil only in aggregation contexts
	inAgg  bool         // inside an aggregate argument (nested aggregates are invalid)
}

// rowCtx carries everything a bound expression reads at evaluation time.
type rowCtx struct {
	row    []sheet.Value
	sheets SheetAccessor
	params []sheet.Value // '?' placeholder arguments of this execution
	aggs   []sheet.Value // aggregate results of the current group, by spec slot
}

// boundExpr is an expression compiled against a fixed schema.
type boundExpr interface {
	eval(ctx *rowCtx) (sheet.Value, error)
}

// findColumn resolves a (possibly table-qualified) column name against a
// schema, with the same ambiguity and unknown-column errors the executor has
// always produced. table and name must already be lower-cased.
func findColumn(cols []colDesc, table, name string) (int, error) {
	found := -1
	for i, c := range cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqlexec: column reference %q is ambiguous: %w", name, dberr.ErrSyntax)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("sqlexec: unknown column %s.%s: %w", table, name, dberr.ErrColumnNotFound)
		}
		return 0, fmt.Errorf("sqlexec: unknown column %q: %w", name, dberr.ErrColumnNotFound)
	}
	return found, nil
}

// compileExpr binds one expression against the environment's schema.
func compileExpr(e sqlparser.Expr, env *compileEnv) (boundExpr, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return bValue{v: x.Value}, nil
	case *sqlparser.NullLiteral:
		return bValue{v: sheet.Empty()}, nil
	case *sqlparser.ColumnRef:
		if env.noRel {
			return nil, fmt.Errorf("sqlexec: column %q referenced outside a FROM context: %w", x.Name, dberr.ErrSyntax)
		}
		i, err := findColumn(env.cols, strings.ToLower(x.Table), strings.ToLower(x.Name))
		if err != nil {
			return nil, err
		}
		return bCol{idx: i}, nil
	case *sqlparser.Placeholder:
		// Placeholders stay symbolic through compilation and read their
		// argument at evaluation time, so one compiled statement serves
		// every execution's bindings.
		return bParam{idx: x.Index}, nil
	case *sqlparser.RangeValueExpr:
		// RANGEVALUE is row-independent: fold it to the constant it holds
		// for this execution instead of re-reading the sheet per row.
		if env.sheets == nil {
			return nil, fmt.Errorf("sqlexec: RANGEVALUE requires a spreadsheet context: %w", dberr.ErrUnsupported)
		}
		v, err := env.sheets.RangeValue(x.Ref)
		if err != nil {
			return nil, err
		}
		return bValue{v: v}, nil
	case *sqlparser.UnaryExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-", "NOT":
			return &bUnary{op: x.Op, x: sub}, nil
		}
		return nil, fmt.Errorf("sqlexec: unknown unary operator %q: %w", x.Op, dberr.ErrSyntax)
	case *sqlparser.BinaryExpr:
		l, err := compileExpr(x.Left, env)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.Right, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "||", "+", "-", "*", "/", "%":
			return &bBinary{op: x.Op, l: l, r: r}, nil
		}
		return nil, fmt.Errorf("sqlexec: unknown operator %q: %w", x.Op, dberr.ErrSyntax)
	case *sqlparser.FuncCall:
		if isAggregateFunc(x.Name) {
			return compileAggregate(x, env)
		}
		return compileScalarFunc(x, env)
	case *sqlparser.InExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		list := make([]boundExpr, len(x.List))
		for i, item := range x.List {
			if list[i], err = compileExpr(item, env); err != nil {
				return nil, err
			}
		}
		return &bIn{x: sub, list: list, not: x.Not}, nil
	case *sqlparser.IsNullExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		return &bIsNull{x: sub, not: x.Not}, nil
	case *sqlparser.BetweenExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(x.Lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(x.Hi, env)
		if err != nil {
			return nil, err
		}
		return &bBetween{x: sub, lo: lo, hi: hi, not: x.Not}, nil
	case *sqlparser.LikeExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		pat, err := compileExpr(x.Pattern, env)
		if err != nil {
			return nil, err
		}
		return &bLike{x: sub, pattern: pat, not: x.Not}, nil
	case *sqlparser.CaseExpr:
		return compileCase(x, env)
	default:
		return nil, fmt.Errorf("sqlexec: unsupported expression %T: %w", e, dberr.ErrUnsupported)
	}
}

// evalBoundPredicate evaluates a compiled boolean expression; NULL counts as
// false.
func evalBoundPredicate(be boundExpr, ctx *rowCtx) (bool, error) {
	v, err := be.eval(ctx)
	if err != nil {
		return false, err
	}
	if isNull(v) {
		return false, nil
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("sqlexec: predicate did not evaluate to a boolean (got %q): %w", v.String(), dberr.ErrValue)
	}
	return b, nil
}

// --- bound nodes ---

type bValue struct{ v sheet.Value }

func (b bValue) eval(*rowCtx) (sheet.Value, error) { return b.v, nil }

// bParam reads the idx-th bound argument of the current execution.
type bParam struct{ idx int }

func (b bParam) eval(ctx *rowCtx) (sheet.Value, error) {
	if b.idx >= len(ctx.params) {
		return sheet.Empty(), fmt.Errorf("sqlexec: parameter %d is not bound: %w", b.idx+1, dberr.ErrParamCount)
	}
	return ctx.params[b.idx], nil
}

type bCol struct{ idx int }

func (b bCol) eval(ctx *rowCtx) (sheet.Value, error) {
	if ctx.row == nil || b.idx >= len(ctx.row) {
		return sheet.Empty(), nil
	}
	return ctx.row[b.idx], nil
}

type bUnary struct {
	op string
	x  boundExpr
}

func (b *bUnary) eval(ctx *rowCtx) (sheet.Value, error) {
	v, err := b.x.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	switch b.op {
	case "-":
		if isNull(v) {
			return sheet.Empty(), nil
		}
		f, ok := v.AsNumber()
		if !ok {
			return sheet.Empty(), fmt.Errorf("sqlexec: cannot negate %q: %w", v.String(), dberr.ErrValue)
		}
		return sheet.Number(-f), nil
	default: // NOT
		if isNull(v) {
			return sheet.Empty(), nil
		}
		bv, ok := v.AsBool()
		if !ok {
			return sheet.Empty(), fmt.Errorf("sqlexec: NOT applied to non-boolean %q: %w", v.String(), dberr.ErrValue)
		}
		return sheet.Bool_(!bv), nil
	}
}

type bBinary struct {
	op   string
	l, r boundExpr
}

func (b *bBinary) eval(ctx *rowCtx) (sheet.Value, error) {
	// AND/OR get short-circuit evaluation.
	switch b.op {
	case "AND", "OR":
		l, err := b.l.eval(ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		lb, lok := l.AsBool()
		if b.op == "AND" && lok && !lb {
			return sheet.Bool_(false), nil
		}
		if b.op == "OR" && lok && lb {
			return sheet.Bool_(true), nil
		}
		r, err := b.r.eval(ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		rb, rok := r.AsBool()
		if !lok || !rok {
			return sheet.Empty(), nil
		}
		if b.op == "AND" {
			return sheet.Bool_(lb && rb), nil
		}
		return sheet.Bool_(lb || rb), nil
	}
	l, err := b.l.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	r, err := b.r.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	switch b.op {
	case "=", "<>", "<", "<=", ">", ">=":
		if isNull(l) || isNull(r) {
			return sheet.Empty(), nil // SQL: comparisons with NULL are unknown
		}
		var res bool
		switch b.op {
		case "=":
			res = l.Equal(r)
		case "<>":
			res = !l.Equal(r)
		case "<":
			res = l.Compare(r) < 0
		case "<=":
			res = l.Compare(r) <= 0
		case ">":
			res = l.Compare(r) > 0
		case ">=":
			res = l.Compare(r) >= 0
		}
		return sheet.Bool_(res), nil
	case "||":
		if isNull(l) || isNull(r) {
			return sheet.Empty(), nil
		}
		return sheet.String_(l.AsString() + r.AsString()), nil
	default: // arithmetic
		if isNull(l) || isNull(r) {
			return sheet.Empty(), nil
		}
		a, okA := l.AsNumber()
		c, okB := r.AsNumber()
		if !okA || !okB {
			return sheet.Empty(), fmt.Errorf("sqlexec: arithmetic on non-numeric values %q, %q: %w", l.String(), r.String(), dberr.ErrValue)
		}
		switch b.op {
		case "+":
			return sheet.Number(a + c), nil
		case "-":
			return sheet.Number(a - c), nil
		case "*":
			return sheet.Number(a * c), nil
		case "/":
			if c == 0 {
				return sheet.Empty(), fmt.Errorf("sqlexec: division by zero: %w", dberr.ErrValue)
			}
			return sheet.Number(a / c), nil
		default: // %
			if c == 0 {
				return sheet.Empty(), fmt.Errorf("sqlexec: division by zero: %w", dberr.ErrValue)
			}
			return sheet.Number(math.Mod(a, c)), nil
		}
	}
}

type bIn struct {
	x    boundExpr
	list []boundExpr
	not  bool
}

func (b *bIn) eval(ctx *rowCtx) (sheet.Value, error) {
	v, err := b.x.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	if isNull(v) {
		return sheet.Empty(), nil
	}
	for _, item := range b.list {
		iv, err := item.eval(ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		if v.Equal(iv) {
			return sheet.Bool_(!b.not), nil
		}
	}
	return sheet.Bool_(b.not), nil
}

type bIsNull struct {
	x   boundExpr
	not bool
}

func (b *bIsNull) eval(ctx *rowCtx) (sheet.Value, error) {
	v, err := b.x.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	return sheet.Bool_(isNull(v) != b.not), nil
}

type bBetween struct {
	x, lo, hi boundExpr
	not       bool
}

func (b *bBetween) eval(ctx *rowCtx) (sheet.Value, error) {
	v, err := b.x.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	lo, err := b.lo.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	hi, err := b.hi.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	if isNull(v) || isNull(lo) || isNull(hi) {
		return sheet.Empty(), nil
	}
	in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
	return sheet.Bool_(in != b.not), nil
}

type bLike struct {
	x, pattern boundExpr
	not        bool
}

func (b *bLike) eval(ctx *rowCtx) (sheet.Value, error) {
	v, err := b.x.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	p, err := b.pattern.eval(ctx)
	if err != nil {
		return sheet.Empty(), err
	}
	if isNull(v) || isNull(p) {
		return sheet.Empty(), nil
	}
	m := likeMatch(v.AsString(), p.AsString())
	return sheet.Bool_(m != b.not), nil
}

type bCaseWhen struct {
	when, then boundExpr
}

type bCase struct {
	operand boundExpr // nil for searched CASE
	whens   []bCaseWhen
	els     boundExpr // nil when absent
}

func compileCase(x *sqlparser.CaseExpr, env *compileEnv) (boundExpr, error) {
	out := &bCase{}
	var err error
	if x.Operand != nil {
		if out.operand, err = compileExpr(x.Operand, env); err != nil {
			return nil, err
		}
	}
	for _, w := range x.Whens {
		var bw bCaseWhen
		if bw.when, err = compileExpr(w.When, env); err != nil {
			return nil, err
		}
		if bw.then, err = compileExpr(w.Then, env); err != nil {
			return nil, err
		}
		out.whens = append(out.whens, bw)
	}
	if x.Else != nil {
		if out.els, err = compileExpr(x.Else, env); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (b *bCase) eval(ctx *rowCtx) (sheet.Value, error) {
	var operand sheet.Value
	hasOperand := b.operand != nil
	if hasOperand {
		v, err := b.operand.eval(ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		operand = v
	}
	for _, w := range b.whens {
		cond, err := w.when.eval(ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		matched := false
		if hasOperand {
			matched = operand.Equal(cond)
		} else if bv, ok := cond.AsBool(); ok {
			matched = bv
		}
		if matched {
			return w.then.eval(ctx)
		}
	}
	if b.els != nil {
		return b.els.eval(ctx)
	}
	return sheet.Empty(), nil
}

// --- scalar functions ---

type bScalar struct {
	name string // upper-cased
	args []boundExpr
	buf  []sheet.Value // evaluation scratch; bound trees are single-threaded
}

func compileScalarFunc(x *sqlparser.FuncCall, env *compileEnv) (boundExpr, error) {
	name := strings.ToUpper(x.Name)
	args := make([]boundExpr, len(x.Args))
	var err error
	for i, a := range x.Args {
		if args[i], err = compileExpr(a, env); err != nil {
			return nil, err
		}
	}
	fixed := map[string]int{
		"UPPER": 1, "LOWER": 1, "LENGTH": 1, "LEN": 1,
		"ABS": 1, "FLOOR": 1, "CEIL": 1, "CEILING": 1, "SQRT": 1,
		"NULLIF": 2,
	}
	switch {
	case fixed[name] > 0:
		if len(args) != fixed[name] {
			return nil, fmt.Errorf("sqlexec: %s expects %d argument(s), got %d: %w", name, fixed[name], len(args), dberr.ErrSyntax)
		}
	case name == "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return nil, fmt.Errorf("sqlexec: ROUND expects 1 or 2 arguments: %w", dberr.ErrSyntax)
		}
	case name == "SUBSTR" || name == "SUBSTRING":
		if len(args) < 2 || len(args) > 3 {
			return nil, fmt.Errorf("sqlexec: SUBSTR expects 2 or 3 arguments: %w", dberr.ErrSyntax)
		}
	case name == "CONCAT" || name == "COALESCE":
		// variadic
	default:
		return nil, fmt.Errorf("sqlexec: unknown function %q: %w", name, dberr.ErrSyntax)
	}
	return &bScalar{name: name, args: args, buf: make([]sheet.Value, len(args))}, nil
}

func (b *bScalar) eval(ctx *rowCtx) (sheet.Value, error) {
	args := b.buf
	for i, a := range b.args {
		v, err := a.eval(ctx)
		if err != nil {
			return sheet.Empty(), err
		}
		args[i] = v
	}
	switch b.name {
	case "UPPER":
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		return sheet.String_(strings.ToUpper(args[0].AsString())), nil
	case "LOWER":
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		return sheet.String_(strings.ToLower(args[0].AsString())), nil
	case "LENGTH", "LEN":
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		return sheet.Number(float64(len([]rune(args[0].AsString())))), nil
	case "ABS":
		return numericFunc1(args[0], math.Abs)
	case "FLOOR":
		return numericFunc1(args[0], math.Floor)
	case "CEIL", "CEILING":
		return numericFunc1(args[0], math.Ceil)
	case "SQRT":
		return numericFunc1(args[0], math.Sqrt)
	case "ROUND":
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		f, ok := args[0].AsNumber()
		if !ok {
			return sheet.Empty(), fmt.Errorf("sqlexec: ROUND of non-numeric value: %w", dberr.ErrValue)
		}
		digits := 0.0
		if len(args) == 2 {
			digits, _ = args[1].AsNumber()
		}
		scale := math.Pow(10, digits)
		return sheet.Number(math.Round(f*scale) / scale), nil
	case "SUBSTR", "SUBSTRING":
		if isNull(args[0]) {
			return sheet.Empty(), nil
		}
		s := []rune(args[0].AsString())
		start, _ := args[1].AsNumber()
		i := int(start) - 1 // SQL SUBSTR is 1-based
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			i = len(s)
		}
		j := len(s)
		if len(args) == 3 {
			l, _ := args[2].AsNumber()
			j = i + int(l)
			if j > len(s) {
				j = len(s)
			}
			if j < i {
				j = i
			}
		}
		return sheet.String_(string(s[i:j])), nil
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if !isNull(a) {
				sb.WriteString(a.AsString())
			}
		}
		return sheet.String_(sb.String()), nil
	case "COALESCE":
		for _, a := range args {
			if !isNull(a) {
				return a, nil
			}
		}
		return sheet.Empty(), nil
	default: // NULLIF
		if args[0].Equal(args[1]) {
			return sheet.Empty(), nil
		}
		return args[0], nil
	}
}

func numericFunc1(v sheet.Value, fn func(float64) float64) (sheet.Value, error) {
	if isNull(v) {
		return sheet.Empty(), nil
	}
	f, ok := v.AsNumber()
	if !ok {
		return sheet.Empty(), fmt.Errorf("sqlexec: numeric function applied to %q: %w", v.String(), dberr.ErrValue)
	}
	return sheet.Number(fn(f)), nil
}

// --- aggregates ---

// aggRegistry collects the distinct aggregate calls of a grouped projection
// so the executor can accumulate them in one streaming pass per group.
type aggRegistry struct {
	specs []*aggSpec
	index map[*sqlparser.FuncCall]int
}

// aggSpec is one aggregate call: its kind, compiled argument and modifiers.
type aggSpec struct {
	name     string // COUNT, SUM, AVG, MIN or MAX
	arg      boundExpr
	star     bool
	distinct bool
}

// bAggRef reads the accumulated result of aggregate slot from the group
// context.
type bAggRef struct{ slot int }

func (b bAggRef) eval(ctx *rowCtx) (sheet.Value, error) {
	if b.slot >= len(ctx.aggs) {
		return sheet.Empty(), nil
	}
	return ctx.aggs[b.slot], nil
}

// compileAggregate registers an aggregate call and returns the slot
// reference that will read its per-group result.
func compileAggregate(x *sqlparser.FuncCall, env *compileEnv) (boundExpr, error) {
	if env.aggs == nil || env.inAgg {
		return nil, fmt.Errorf("sqlexec: aggregate %s used outside an aggregation context: %w", x.Name, dberr.ErrSyntax)
	}
	if slot, ok := env.aggs.index[x]; ok {
		return bAggRef{slot: slot}, nil
	}
	name := strings.ToUpper(x.Name)
	spec := &aggSpec{name: name, star: x.Star, distinct: x.Distinct}
	if x.Star {
		if name != "COUNT" {
			return nil, fmt.Errorf("sqlexec: %s(*) is not valid: %w", name, dberr.ErrSyntax)
		}
	} else {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("sqlexec: %s expects exactly one argument: %w", name, dberr.ErrSyntax)
		}
		argEnv := *env
		argEnv.inAgg = true
		arg, err := compileExpr(x.Args[0], &argEnv)
		if err != nil {
			return nil, err
		}
		spec.arg = arg
	}
	slot := len(env.aggs.specs)
	env.aggs.specs = append(env.aggs.specs, spec)
	if env.aggs.index == nil {
		env.aggs.index = make(map[*sqlparser.FuncCall]int)
	}
	env.aggs.index[x] = slot
	return bAggRef{slot: slot}, nil
}

// aggState is the running accumulator of one aggregate over one group.
type aggState struct {
	n       int
	sum     float64
	best    sheet.Value
	hasBest bool
	seen    map[normValue]struct{} // DISTINCT filter
}

// update folds one input row into the accumulator. SQL aggregates ignore
// NULL inputs; COUNT(*) counts rows regardless.
func (sp *aggSpec) update(st *aggState, ctx *rowCtx) error {
	if sp.star {
		st.n++
		return nil
	}
	v, err := sp.arg.eval(ctx)
	if err != nil {
		return err
	}
	if isNull(v) {
		return nil
	}
	if sp.distinct {
		k := normDistinctValue(v)
		if st.seen == nil {
			st.seen = make(map[normValue]struct{})
		}
		if _, dup := st.seen[k]; dup {
			return nil
		}
		st.seen[k] = struct{}{}
	}
	switch sp.name {
	case "COUNT":
		st.n++
	case "SUM", "AVG":
		f, ok := v.AsNumber()
		if !ok {
			return fmt.Errorf("sqlexec: %s over non-numeric value %q: %w", sp.name, v.String(), dberr.ErrValue)
		}
		st.sum += f
		st.n++
	default: // MIN, MAX
		if !st.hasBest {
			st.best, st.hasBest = v, true
			return nil
		}
		c := v.Compare(st.best)
		if (sp.name == "MIN" && c < 0) || (sp.name == "MAX" && c > 0) {
			st.best = v
		}
	}
	return nil
}

// result finalizes the accumulator into the aggregate's value. Aggregates
// over no (non-NULL) inputs yield NULL, except COUNT which yields 0.
func (sp *aggSpec) result(st *aggState) sheet.Value {
	switch sp.name {
	case "COUNT":
		return sheet.Number(float64(st.n))
	case "SUM":
		if st.n == 0 {
			return sheet.Empty()
		}
		return sheet.Number(st.sum)
	case "AVG":
		if st.n == 0 {
			return sheet.Empty()
		}
		return sheet.Number(st.sum / float64(st.n))
	default: // MIN, MAX
		if !st.hasBest {
			return sheet.Empty()
		}
		return st.best
	}
}
