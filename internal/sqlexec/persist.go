// Page-catalog persistence: the relational half of a durable workbook.
//
// MarshalPages serialises everything the engine needs to reattach to its
// table pages after a reopen — the schema catalog, each table's storage
// metadata (tablestore.MarshalMeta, physical page ids), the primary-key
// B-tree entries, and every secondary index with its entries. AttachPages
// reverses it: stores are opened over the existing pages (no DML replay) and
// indexes are bulk-loaded from their serialized entries instead of being
// rebuilt by scanning the tables. The blob is CRC-framed so a corrupted
// checkpoint fails the open with a clear error.
package sqlexec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/index/btree"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

var pagesMagic = [8]byte{'D', 'S', 'P', 'G', 'C', 'A', 'T', '2'}

// ErrCorruptPages is returned when a page-catalog blob fails its checksum or
// cannot be decoded.
var ErrCorruptPages = errors.New("sqlexec: corrupt page catalog")

type pagesWriter struct{ buf []byte }

func (w *pagesWriter) uint(v uint64)     { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *pagesWriter) bytes(b []byte)    { w.uint(uint64(len(b))); w.buf = append(w.buf, b...) }
func (w *pagesWriter) str(s string)      { w.bytes([]byte(s)) }
func (w *pagesWriter) val(v sheet.Value) { w.buf = tablestore.AppendValue(w.buf, v) }

type pagesReader struct {
	buf []byte
	pos int
	err error
}

func (r *pagesReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorruptPages, fmt.Sprintf(format, args...))
	}
}

func (r *pagesReader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *pagesReader) count(what string) int {
	n := r.uint()
	if r.err == nil && n > uint64(len(r.buf)-r.pos) {
		r.fail("implausible %s count %d", what, n)
	}
	return int(n)
}

func (r *pagesReader) bytes() []byte {
	n := r.count("byte")
	if r.err != nil {
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *pagesReader) str() string { return string(r.bytes()) }

func (r *pagesReader) val() sheet.Value {
	if r.err != nil {
		return sheet.Empty()
	}
	v, rest, err := tablestore.ReadValue(r.buf[r.pos:])
	if err != nil {
		r.fail("bad value at %d: %v", r.pos, err)
		return sheet.Empty()
	}
	r.pos = len(r.buf) - len(rest)
	return v
}

// treeEntries serialises a B-tree's entries in key order.
func treeEntries(w *pagesWriter, tree *btree.Tree) {
	w.uint(uint64(tree.Len()))
	tree.All(func(key []byte, val uint64) bool {
		w.bytes(key)
		w.uint(val)
		return true
	})
}

// readTree bulk-loads a B-tree from serialized entries (already in key
// order, so inserts are sequential).
func (r *pagesReader) readTree() *btree.Tree {
	tree := btree.New()
	n := r.count("index entry")
	for i := 0; i < n && r.err == nil; i++ {
		key := append([]byte(nil), r.bytes()...)
		tree.Set(key, r.uint())
	}
	return tree
}

// Pool returns the buffer pool the storage managers write through. The
// durability layer drives its checkpoint protocol (FlushAll,
// BeginCheckpoint/CommitCheckpoint) through it.
func (db *Database) Pool() *pager.BufferPool { return db.pool }

// MarshalPages serialises the page catalog: schema, store metadata and index
// contents. Callers must have flushed the pool first so the referenced pages
// hold current bytes.
func (db *Database) MarshalPages() []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	w := &pagesWriter{}
	tables := db.cat.List()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	w.uint(uint64(len(tables)))
	for _, tbl := range tables {
		tk := tkey(tbl.Name)
		s := db.stores[tk]
		w.str(tbl.Name)
		w.str(s.Layout())
		w.uint(uint64(len(tbl.Columns)))
		for _, c := range tbl.Columns {
			w.str(c.Name)
			w.str(c.Type.String())
			var flags byte
			if c.NotNull {
				flags |= 1
			}
			if c.PrimaryKey {
				flags |= 2
			}
			w.uint(uint64(flags))
			w.val(c.Default)
		}
		w.bytes(s.MarshalMeta())
		treeEntries(w, db.pkIndex[tk])
	}
	var indexes []*secIndex
	for _, tbl := range tables {
		indexes = append(indexes, db.secIndexes[tkey(tbl.Name)]...)
	}
	w.uint(uint64(len(indexes)))
	for _, si := range indexes {
		w.str(si.def.Name)
		w.str(si.def.Table)
		var flags byte
		if si.def.Unique {
			flags |= 1
		}
		w.uint(uint64(flags))
		w.uint(uint64(len(si.def.Columns)))
		for _, c := range si.def.Columns {
			w.str(c)
		}
		treeEntries(w, si.tree)
	}

	out := make([]byte, 12, 12+len(w.buf))
	copy(out, pagesMagic[:])
	binary.LittleEndian.PutUint32(out[8:12], crc32.ChecksumIEEE(w.buf))
	return append(out, w.buf...)
}

// AttachPages rebuilds catalog, stores and indexes from a MarshalPages blob,
// attaching to the existing backend pages. It replaces the database's entire
// relational state and is intended for recovery on a freshly constructed
// Database (core.OpenFile), before any sessions run.
func (db *Database) AttachPages(blob []byte) error {
	if len(blob) < 12 || [8]byte(blob[0:8]) != pagesMagic {
		return fmt.Errorf("%w: bad magic", ErrCorruptPages)
	}
	body := blob[12:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(blob[8:12]) {
		return fmt.Errorf("%w: checksum mismatch", ErrCorruptPages)
	}
	r := &pagesReader{buf: body}

	cat := catalog.New()
	stores := make(map[string]tablestore.Store)
	pkIndex := make(map[string]*btree.Tree)
	secIndexes := make(map[string][]*secIndex)
	indexByName := make(map[string]*secIndex)

	nTables := r.count("table")
	for i := 0; i < nTables && r.err == nil; i++ {
		name := r.str()
		layout := r.str()
		ncols := r.count("column")
		cols := make([]catalog.Column, 0, ncols)
		for j := 0; j < ncols && r.err == nil; j++ {
			colName := r.str()
			typ := catalog.ParseType(r.str())
			flags := r.uint()
			def := r.val()
			cols = append(cols, catalog.Column{
				Name:       colName,
				Type:       typ,
				NotNull:    flags&1 != 0,
				PrimaryKey: flags&2 != 0,
				Default:    def,
			})
		}
		meta := r.bytes()
		tree := r.readTree()
		if r.err != nil {
			break
		}
		if _, err := cat.Create(name, cols); err != nil {
			return fmt.Errorf("sqlexec: attach table %q: %w", name, err)
		}
		s, err := tablestore.OpenStore(db.pool, layout, meta)
		if err != nil {
			return fmt.Errorf("sqlexec: attach table %q: %w", name, err)
		}
		if s.ColumnCount() != len(cols) {
			return fmt.Errorf("%w: table %q store has %d columns, catalog has %d",
				ErrCorruptPages, name, s.ColumnCount(), len(cols))
		}
		stores[tkey(name)] = s
		pkIndex[tkey(name)] = tree
	}
	nIndexes := r.count("index")
	for i := 0; i < nIndexes && r.err == nil; i++ {
		name := r.str()
		table := r.str()
		flags := r.uint()
		ncols := r.count("index column")
		colNames := make([]string, 0, ncols)
		for j := 0; j < ncols && r.err == nil; j++ {
			colNames = append(colNames, r.str())
		}
		tree := r.readTree()
		if r.err != nil {
			break
		}
		tbl, err := cat.MustGet(table)
		if err != nil {
			return fmt.Errorf("sqlexec: attach index %q: %w", name, err)
		}
		si := &secIndex{
			def:  IndexDef{Name: name, Table: tbl.Name, Columns: colNames, Unique: flags&1 != 0},
			cols: make([]int, len(colNames)),
			tree: tree,
		}
		for j, cn := range colNames {
			idx, ok := tbl.ColumnIndex(cn)
			if !ok {
				return fmt.Errorf("%w: index %q references missing column %q", ErrCorruptPages, name, cn)
			}
			si.cols[j] = idx
		}
		indexByName[ikey(name)] = si
		tk := tkey(table)
		secIndexes[tk] = append(secIndexes[tk], si)
	}
	if r.err != nil {
		return r.err
	}
	if r.pos != len(body) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptPages, len(body)-r.pos)
	}

	db.mu.Lock()
	db.cat = cat
	db.stores = stores
	db.pkIndex = pkIndex
	db.secIndexes = secIndexes
	db.indexByName = indexByName
	db.dataVers = make(map[string]uint64)
	db.mu.Unlock()
	db.invalidatePlans()
	return nil
}

// DurablePageIDs returns the physical backend pages the relational state
// currently references — every table's data pages — for checkpoint
// reachability and the pool's protection set.
func (db *Database) DurablePageIDs() []pager.PageID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []pager.PageID
	for _, s := range db.stores {
		out = append(out, s.Pages()...)
	}
	return out
}
