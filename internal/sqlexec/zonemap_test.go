package sqlexec

import (
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// Zone-map golden tests: for every query shape and every physical layout,
// the zone-pruned scan must be row-for-row identical to the forced
// unskipped scan (SetForceNoSkip), including after in-place mutations and a
// marshal/attach cycle — and selective predicates must actually skip pages.

// newZoneDB builds a table whose ts column is clustered with insertion order
// (so its page zones are tight and prunable), val is scattered (wide zones),
// and cat is low-NDV text (dictionary-encoded). A sprinkle of NULLs
// exercises the NULL-never-matches rule; ts is deliberately NOT indexed.
func newZoneDB(t *testing.T, layout Layout, backend pager.Backend) (*Database, *Session) {
	t.Helper()
	db := NewDatabase(Config{Layout: layout, Backend: backend})
	s := db.NewSession(newFakeSheets())
	mustExec(t, s, "CREATE TABLE ev (id INT PRIMARY KEY, ts NUMERIC, val NUMERIC, cat TEXT)")
	cats := []string{"alpha", "beta", "gamma", "delta"}
	const n = 2000
	for i := 0; i < n; i++ {
		ts := sheet.Number(float64(i))
		if i%97 == 0 {
			ts = sheet.Empty()
		}
		row := []sheet.Value{
			sheet.Number(float64(i)),
			ts,
			sheet.Number(float64((i * 37) % 1000)),
			sheet.String_(cats[i%len(cats)]),
		}
		if _, err := db.Insert("ev", row); err != nil {
			t.Fatal(err)
		}
	}
	return db, s
}

var zoneQueries = []string{
	"SELECT id FROM ev WHERE ts = 1500",
	"SELECT id FROM ev WHERE ts = -3",
	"SELECT id, val FROM ev WHERE ts < 100",
	"SELECT id FROM ev WHERE ts <= 0",
	"SELECT id FROM ev WHERE ts >= 1900",
	"SELECT id FROM ev WHERE ts > 1995",
	"SELECT id FROM ev WHERE ts BETWEEN 700 AND 750",
	"SELECT COUNT(*) FROM ev WHERE ts > 1000",
	"SELECT id FROM ev WHERE ts IN (5, 500, 1500, 99999)",
	"SELECT id FROM ev WHERE val = 370 AND ts < 200",
	"SELECT cat, COUNT(*) FROM ev WHERE ts < 400 GROUP BY cat ORDER BY cat",
	"SELECT id FROM ev WHERE cat = 'alpha' AND ts BETWEEN 100 AND 140",
	"SELECT id FROM ev WHERE cat = 'gamma'",
	"SELECT SUM(val) FROM ev WHERE ts >= 1800 AND ts < 1900",
}

// runSkippedVsUnskipped executes each query twice — once with zone-map
// skipping live, once with SetForceNoSkip — and fails on any divergence.
func runSkippedVsUnskipped(t *testing.T, db *Database, s *Session, queries []string, when string) {
	t.Helper()
	for _, q := range queries {
		db.SetForceNoSkip(true)
		want := mustExec(t, s, q)
		db.SetForceNoSkip(false)
		got := mustExec(t, s, q)
		if diff := resultsEqual(want, got); diff != "" {
			t.Errorf("%s (%s): pruned scan diverges from unskipped scan: %s", q, when, diff)
		}
	}
}

func TestZoneMapGoldenEquivalence(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			db, s := newZoneDB(t, layout, nil)
			if err := db.ValidateZones(); err != nil {
				t.Fatal(err)
			}
			runSkippedVsUnskipped(t, db, s, zoneQueries, "fresh")

			// A selective predicate over the clustered column must actually
			// drop pages, not just agree with the full scan.
			db.SetForceNoSkip(false)
			db.ResetScanStats()
			mustExec(t, s, "SELECT id FROM ev WHERE ts = 1500")
			read, skipped := db.ScanStats()
			if skipped == 0 {
				t.Errorf("selective scan skipped no pages (read %d)", read)
			}
			if read > skipped {
				t.Errorf("selective scan read %d pages but skipped only %d", read, skipped)
			}

			// EXPLAIN reports the skip ratio for the source.
			plan := mustExec(t, s, "EXPLAIN SELECT id FROM ev WHERE ts = 1500")
			if text := planText(plan); !strings.Contains(text, "zone maps: ") {
				t.Errorf("EXPLAIN lacks zone-map stats: %q", text)
			}
		})
	}
}

// TestZoneMapEquivalenceAfterChurn re-runs the goldens after UPDATE/DELETE
// churn has rewritten and tombstoned sealed pages, then validates every
// surviving summary against its page's decoded contents.
func TestZoneMapEquivalenceAfterChurn(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			db, s := newZoneDB(t, layout, nil)
			mustExec(t, s, "UPDATE ev SET ts = 5000 WHERE id = 123")
			mustExec(t, s, "UPDATE ev SET cat = 'omega' WHERE ts > 1800")
			mustExec(t, s, "DELETE FROM ev WHERE ts BETWEEN 300 AND 400")
			mustExec(t, s, "UPDATE ev SET val = -1 WHERE ts < 50")
			mustExec(t, s, "INSERT INTO ev VALUES (9000, 42.5, 7, 'alpha')")
			if err := db.ValidateZones(); err != nil {
				t.Fatal(err)
			}
			churned := append([]string(nil), zoneQueries...)
			churned = append(churned,
				"SELECT id FROM ev WHERE ts = 5000",
				"SELECT id FROM ev WHERE ts = 350",
				"SELECT id, cat FROM ev WHERE ts = 42.5",
				"SELECT COUNT(*) FROM ev WHERE val < 0",
			)
			runSkippedVsUnskipped(t, db, s, churned, "after churn")
		})
	}
}

// TestZoneMapStaleSummaryRegression is the false-skip regression: an
// in-place rewrite of a sealed page (UPDATE through the pk index, then a
// DELETE) must refresh the page's summary, so a value that moved OUTSIDE the
// old zone is still found by the pruned scan.
func TestZoneMapStaleSummaryRegression(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			db, s := newZoneDB(t, layout, nil)
			// id 700 sits in a sealed page whose ts zone is ~[672, 768).
			// Move its ts far outside that range via the pk point path.
			mustExec(t, s, "UPDATE ev SET ts = 99999 WHERE id = 700")
			if err := db.ValidateZones(); err != nil {
				t.Fatalf("stale summary after UPDATE: %v", err)
			}
			db.SetForceNoSkip(false)
			res := mustExec(t, s, "SELECT id FROM ev WHERE ts = 99999")
			if len(res.Rows) != 1 || res.Rows[0][0].String() != "700" {
				t.Fatalf("pruned scan lost the updated row (stale zone false skip): %v", res.Rows)
			}
			// The old slot value must no longer match anywhere.
			res = mustExec(t, s, "SELECT id FROM ev WHERE ts = 700")
			if len(res.Rows) != 0 {
				t.Fatalf("old value still visible after update: %v", res.Rows)
			}
			// Delete the row; the pruned scan must agree it is gone.
			mustExec(t, s, "DELETE FROM ev WHERE id = 700")
			if err := db.ValidateZones(); err != nil {
				t.Fatalf("stale summary after DELETE: %v", err)
			}
			res = mustExec(t, s, "SELECT id FROM ev WHERE ts = 99999")
			if len(res.Rows) != 0 {
				t.Fatalf("deleted row resurfaced: %v", res.Rows)
			}
		})
	}
}

// TestMarshalAttachZones: a zone catalog marshalled from one database and
// attached to a page-attached twin must prune correctly there — and a
// corrupted blob must degrade to "no skipping", never to wrong results.
func TestMarshalAttachZones(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			backend := pager.NewStore()
			db, s := newZoneDB(t, layout, backend)
			if err := db.Pool().FlushAll(); err != nil {
				t.Fatal(err)
			}
			pagesBlob := db.MarshalPages()
			zonesBlob := db.MarshalZones()

			attach := func(t *testing.T) (*Database, *Session) {
				t.Helper()
				db2 := NewDatabase(Config{Layout: layout, Backend: backend})
				if err := db2.AttachPages(pagesBlob); err != nil {
					t.Fatal(err)
				}
				return db2, db2.NewSession(newFakeSheets())
			}

			db2, s2 := attach(t)
			if err := db2.AttachZones(zonesBlob); err != nil {
				t.Fatal(err)
			}
			if err := db2.ValidateZones(); err != nil {
				t.Fatal(err)
			}
			runSkippedVsUnskipped(t, db2, s2, zoneQueries, "after attach")
			db2.SetForceNoSkip(false)
			db2.ResetScanStats()
			mustExec(t, s2, "SELECT id FROM ev WHERE ts = 1500")
			if _, skipped := db2.ScanStats(); skipped == 0 {
				t.Error("attached zone catalog prunes nothing")
			}

			// Corruption at assorted offsets: AttachZones must error (or, if
			// the flip survives frame+shape validation, summaries must still
			// validate) and queries must stay correct either way.
			for _, pos := range []int{0, 9, len(zonesBlob) / 2, len(zonesBlob) - 1} {
				corrupt := append([]byte(nil), zonesBlob...)
				corrupt[pos] ^= 0x40
				db3, s3 := attach(t)
				if err := db3.AttachZones(corrupt); err == nil {
					if err := db3.ValidateZones(); err != nil {
						t.Fatalf("flip@%d: corrupt blob attached unsound summaries: %v", pos, err)
					}
				}
				db3.SetForceNoSkip(false)
				res := mustExec(t, s3, "SELECT COUNT(*) FROM ev WHERE ts >= 0")
				want := mustExec(t, s, "SELECT COUNT(*) FROM ev WHERE ts >= 0")
				if diff := resultsEqual(want, res); diff != "" {
					t.Fatalf("flip@%d: wrong results after corrupt zone blob: %s", pos, diff)
				}
			}
			// Truncated frame is rejected outright.
			db4, _ := attach(t)
			if err := db4.AttachZones(zonesBlob[:8]); err == nil {
				t.Error("truncated zone blob attached without error")
			}
		})
	}
}

// TestZoneMapParallelEquivalence drives the pruned morsel path: a table past
// the parallel threshold, scanned with multiple workers, must agree with the
// serial unskipped scan and report workers + partitions in EXPLAIN.
func TestZoneMapParallelEquivalence(t *testing.T) {
	db := NewDatabase(Config{Layout: LayoutHybrid, Workers: 4})
	s := db.NewSession(newFakeSheets())
	mustExec(t, s, "CREATE TABLE big (id INT PRIMARY KEY, ts NUMERIC, v NUMERIC)")
	const n = 6000 // past parMinRows
	for i := 0; i < n; i++ {
		if _, err := db.Insert("big", []sheet.Value{
			sheet.Number(float64(i)), sheet.Number(float64(i)), sheet.Number(float64(i % 11)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		"SELECT COUNT(*) FROM big WHERE ts < 500",
		"SELECT SUM(v) FROM big WHERE ts >= 5500",
		"SELECT COUNT(*) FROM big WHERE ts BETWEEN 2000 AND 2100 AND v = 3",
		"SELECT COUNT(*) FROM big WHERE ts = 123456",
	} {
		db.SetForceNoSkip(true)
		want := mustExec(t, s, q)
		db.SetForceNoSkip(false)
		got := mustExec(t, s, q)
		if diff := resultsEqual(want, got); diff != "" {
			t.Errorf("%s: parallel pruned scan diverges: %s", q, diff)
		}
	}
	db.ResetScanStats()
	mustExec(t, s, "SELECT COUNT(*) FROM big WHERE ts < 500")
	if _, skipped := db.ScanStats(); skipped == 0 {
		t.Error("parallel selective scan skipped no pages")
	}
	plan := mustExec(t, s, "EXPLAIN SELECT COUNT(*) FROM big WHERE ts < 500")
	text := planText(plan)
	if !strings.Contains(text, "parallel: 4 workers") || !strings.Contains(text, "partitions") {
		t.Errorf("EXPLAIN lacks parallel scan details: %q", text)
	}
	if !strings.Contains(text, "zone maps: ") {
		t.Errorf("EXPLAIN lacks zone-map stats: %q", text)
	}
}

// TestSetForceNoSkipToggles sanity-checks the switch itself: with skipping
// forced off, a selective scan reports no skipped pages.
func TestSetForceNoSkipToggles(t *testing.T) {
	db, s := newZoneDB(t, LayoutHybrid, nil)
	db.SetForceNoSkip(true)
	db.ResetScanStats()
	mustExec(t, s, "SELECT id FROM ev WHERE ts = 1500")
	if read, skipped := db.ScanStats(); read != 0 || skipped != 0 {
		t.Fatalf("forced-unskipped scan still went through the pruned path (read %d, skipped %d)", read, skipped)
	}
}
