package sqlexec

import (
	"context"
	"errors"
	"fmt"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// Streaming execution. StreamPrepared runs a SELECT on its own goroutine
// and hands rows to the caller through a bounded channel: a single-source
// statement (no joins, grouping, ordering or DISTINCT) streams straight out
// of the storage scan without materialising the result, stopping the scan as
// soon as the consumer goes away (Close / context cancellation) or the LIMIT
// is satisfied. Statements that need the whole input (joins, GROUP BY,
// ORDER BY, DISTINCT) materialise internally — the iterator surface and the
// cancellation behaviour are identical, only the memory profile differs.

// streamBuffer is the row-channel capacity: small enough to keep a slow
// consumer from pinning many rows, large enough to decouple producer and
// consumer scheduling.
const streamBuffer = 64

// errStreamDone is the internal sentinel a row sink returns to stop the
// producer early (LIMIT satisfied); it never escapes to callers.
var errStreamDone = errors.New("sqlexec: stream done")

// Rows is a streaming query result. It is not safe for concurrent use.
// Callers must exhaust it (Next returning false) or Close it; abandoning a
// Rows without either leaks the producer goroutine until the parent context
// fires.
type Rows struct {
	cols   []string
	ch     chan []sheet.Value
	cancel context.CancelFunc
	parent context.Context

	cur    []sheet.Value
	err    error // producer's terminal error; valid once ch is closed
	closed bool
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row, reporting whether one is available. After
// Next returns false, Err distinguishes exhaustion from failure.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	row, ok := <-r.ch
	if !ok {
		r.cur = nil
		return false
	}
	r.cur = row
	return true
}

// Row returns the current row (valid after a true Next; owned by the
// caller).
func (r *Rows) Row() []sheet.Value { return r.cur }

// Err returns the error that terminated iteration, if any. A Close before
// exhaustion is not an error; cancellation of the caller's context is.
func (r *Rows) Err() error {
	if r.err == nil {
		return nil
	}
	if r.closed && errors.Is(r.err, context.Canceled) && (r.parent == nil || r.parent.Err() == nil) {
		// The cancellation was our own Close, not the caller's context.
		return nil
	}
	return r.err
}

// Close stops the query, releases the producer goroutine and discards any
// unread rows. It is idempotent and safe after exhaustion.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cancel()
	// Drain until the producer closes the channel, so Close never leaves a
	// goroutine parked on a send.
	for range r.ch {
	}
	r.cur = nil
	return nil
}

// QueryStream prepares and streams a SELECT statement.
func (s *Session) QueryStream(ctx context.Context, sql string, args ...sheet.Value) (*Rows, error) {
	p, err := s.db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return s.StreamPrepared(ctx, p, args...)
}

// StreamPrepared executes a prepared SELECT, returning a streaming row
// iterator. Planning and binding errors surface here synchronously;
// row-production errors surface through Rows.Err.
func (s *Session) StreamPrepared(ctx context.Context, p *Prepared, args ...sheet.Value) (*Rows, error) {
	sel, ok := p.stmt.(*sqlparser.SelectStmt)
	if !ok || p.sel == nil {
		return nil, fmt.Errorf("sqlexec: cannot stream %T (only SELECT): %w", p.stmt, dberr.ErrUnsupported)
	}
	env, err := s.execEnv(ctx, p, args)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	env.ctx = cctx
	r := &Rows{
		ch:     make(chan []sheet.Value, streamBuffer),
		cancel: cancel,
		parent: ctx,
	}
	headerCh := make(chan []string, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(r.ch)
		err := s.db.streamSelect(sel, p.sel, env,
			func(cols []string) {
				headerCh <- cols
			},
			func(row []sheet.Value) error {
				select {
				case r.ch <- row:
					return nil
				case <-cctx.Done():
					return cctx.Err()
				}
			})
		if err != nil && !errors.Is(err, errStreamDone) {
			r.err = err
		}
	}()
	select {
	case cols := <-headerCh:
		r.cols = cols
		return r, nil
	case <-done:
		// The producer already finished. A fast query may have sent its
		// header and completed before this select ran — both channels ready
		// means Go picks randomly, so drain the header explicitly rather
		// than returning a Rows with nil columns.
		select {
		case cols := <-headerCh:
			r.cols = cols
			return r, nil
		default:
		}
		// No header: the producer failed during planning/binding.
		cancel()
		if r.err != nil {
			return nil, r.err
		}
		return r, nil
	}
}

// streamSelect drives a SELECT to the header/yield sinks. header is called
// exactly once, before the first yield.
// dslint:parks(yield)
func (db *Database) streamSelect(stmt *sqlparser.SelectStmt, an *selectAnalysis, env *execEnv, header func([]string), yield func([]sheet.Value) error) error {
	if stmt.From != nil && len(stmt.Joins) == 0 && !an.grouped && !stmt.Distinct && len(stmt.OrderBy) == 0 {
		return db.streamSimpleSelect(stmt, an, env, header, yield)
	}
	// Blocking shapes (joins, grouping, ordering, DISTINCT, table-less
	// SELECT) need the full input; materialise, then iterate.
	res, err := db.runSelect(stmt, an, env)
	if err != nil {
		return err
	}
	header(res.Columns)
	for _, row := range res.Rows {
		if err := env.check(); err != nil {
			return err
		}
		if err := yield(row); err != nil {
			return err
		}
	}
	return nil
}

// streamFetchBatch is how many candidate rows the streaming fast path
// fetches, filters and projects per database read-lock acquisition. Rows
// are handed to the consumer between acquisitions, so the lock is never
// held while the producer parks on the channel — concurrent writers
// interleave at batch boundaries and a consumer that writes mid-iteration
// cannot deadlock against its own stream.
const streamFetchBatch = 256

// streamSimpleSelect streams scan → filter → project for a single-source
// statement without materialising the result: candidate RowIDs are
// collected first (cheap — ids only, no values), then rows are fetched,
// filtered and projected in read-locked batches and yielded between
// batches. A LIMIT stops after its quota of projected rows.
// dslint:parks(yield)
func (db *Database) streamSimpleSelect(stmt *sqlparser.SelectStmt, an *selectAnalysis, env *execEnv, header func([]string), yield func([]sheet.Value) error) error {
	plan, err := db.planInput(stmt, an, env)
	if err != nil {
		return err
	}
	src := plan.srcs[0]
	cols, scanCols := src.scanSchema()
	rel := &relation{cols: cols}
	items, names := expandItems(stmt, rel)
	cenv := env.compileEnv(cols)
	bound := make([]boundExpr, len(items))
	for i, item := range items {
		if bound[i], err = compileExpr(item.Expr, cenv); err != nil {
			return err
		}
	}
	// Pushed conjuncts filter candidates exactly as the materialised scan
	// would; with a single source the residual holds the conjuncts that
	// could not be pushed (error-capable ones), filtering after them.
	preds, err := compilePredicates(append(append([]sqlparser.Expr(nil), src.pushed...), plan.residual...), cols, env)
	if err != nil {
		return err
	}
	header(names)
	if !plan.live {
		return nil
	}
	offset := 0
	if stmt.Offset != nil {
		offset = *stmt.Offset
	}
	limit := -1
	if stmt.Limit != nil {
		limit = *stmt.Limit
	}
	if limit == 0 {
		return nil
	}

	// Materialised sources (RANGETABLE / sub-select) need no locking: their
	// rows are already private to this execution.
	ctx := env.newRowCtx()
	if src.store == nil {
		skipped, emitted := 0, 0
		for _, row := range src.rows {
			if err := env.check(); err != nil {
				return err
			}
			ctx.row = row
			keep, err := allPredicates(preds, ctx)
			if err != nil {
				return err
			}
			if !keep {
				continue
			}
			if skipped < offset {
				skipped++
				continue
			}
			out := make([]sheet.Value, len(bound))
			for i, be := range bound {
				if out[i], err = be.eval(ctx); err != nil {
					return err
				}
			}
			if err := yield(out); err != nil {
				return err
			}
			emitted++
			if limit >= 0 && emitted >= limit {
				return errStreamDone
			}
		}
		return nil
	}

	// Full scans of snapshot-capable stores stream lock-free: the engine
	// lock is held only while the snapshot pins its epoch, and the scan then
	// reads frozen page versions in one pass — no candidate-id phase, no
	// batch re-locking, and no lock held while the consumer parks on the
	// channel. Writers never wait behind this reader and the reader observes
	// a consistent point-in-time image instead of read-committed batches.
	if src.path == nil || src.path.kind == pathFull {
		if snapper, ok := src.store.(tablestore.Snapshotter); ok {
			return db.streamSnapshotScan(snapper, scanCols, src.zoneBounds, preds, bound, env, ctx, offset, limit, yield)
		}
	}

	// Phase 1: candidate RowIDs. Index paths read the B-tree; full scans
	// enumerate ids through a zero-column scan (no value decoding).
	var ids []tablestore.RowID
	if src.path != nil && src.path.kind != pathFull {
		ids = db.collectPathIDs(src.tbl.Name, src.path)
	} else {
		var ctxErr error
		db.mu.RLock()
		err = src.store.ScanCols([]int{}, func(id tablestore.RowID, _ []sheet.Value) bool {
			if ctxErr = env.check(); ctxErr != nil {
				return false
			}
			ids = append(ids, id)
			return true
		})
		db.mu.RUnlock()
		if err == nil {
			err = ctxErr
		}
		if err != nil {
			return err
		}
	}

	// Phase 2 (non-snapshot stores): fetch + filter + project in read-locked
	// batches, yielding between acquisitions.
	skipped, emitted := 0, 0
	outBatch := make([][]sheet.Value, 0, streamFetchBatch)
	for start := 0; start < len(ids); start += streamFetchBatch {
		end := start + streamFetchBatch
		if end > len(ids) {
			end = len(ids)
		}
		outBatch = outBatch[:0]
		db.mu.RLock()
		for _, id := range ids[start:end] {
			if err = env.check(); err != nil {
				break
			}
			var row []sheet.Value
			if row, err = src.store.GetCols(id, scanCols); err != nil {
				// The candidate vanished between the id collection and the
				// fetch (same read-committed semantics as the full scan).
				if errors.Is(err, tablestore.ErrRowNotFound) {
					err = nil
					continue
				}
				break
			}
			ctx.row = row
			var keep bool
			if keep, err = allPredicates(preds, ctx); err != nil {
				break
			}
			if !keep {
				continue
			}
			if skipped < offset {
				skipped++
				continue
			}
			out := make([]sheet.Value, len(bound))
			for i, be := range bound {
				if out[i], err = be.eval(ctx); err != nil {
					break
				}
			}
			if err != nil {
				break
			}
			outBatch = append(outBatch, out)
			if limit >= 0 && emitted+len(outBatch) >= limit {
				break
			}
		}
		db.mu.RUnlock()
		if err != nil {
			return err
		}
		for _, out := range outBatch {
			if err := env.check(); err != nil {
				return err
			}
			if err := yield(out); err != nil {
				return err
			}
		}
		emitted += len(outBatch)
		if limit >= 0 && emitted >= limit {
			return errStreamDone
		}
	}
	return nil
}

// streamSnapshotScan is the lock-free streaming fast path: it pins a table
// snapshot (the only moment the engine lock is touched) and streams
// filter → project → yield over the frozen pages in a single pass. The scan
// holds no lock, so yielding to a slow consumer parks nothing but this
// goroutine and concurrent writers proceed untouched; superseded page
// versions drain when the snapshot releases its epoch.
// dslint:parks(yield)
func (db *Database) streamSnapshotScan(snapper tablestore.Snapshotter, scanCols []int, bounds []tablestore.ZoneBound, preds, bound []boundExpr, env *execEnv, ctx *rowCtx, offset, limit int, yield func([]sheet.Value) error) error {
	db.mu.RLock()
	snap := snapper.Snapshot()
	db.mu.RUnlock()
	defer snap.Release()
	// Zone-map bounds narrow the scan to partitions a bound could match
	// (usedPrune, not a nil check: an all-skipped scan prunes to zero parts).
	var parts []tablestore.Partition
	usedPrune := false
	if len(bounds) > 0 {
		if psnap, ok := snap.(tablestore.PrunedSnap); ok {
			var read, skip int
			parts, read, skip = psnap.PartitionsPruned(1, scanCols, bounds)
			db.pagesRead.Add(int64(read))
			db.pagesSkipped.Add(int64(skip))
			usedPrune = true
		}
	}
	if !usedPrune {
		parts = snap.Partitions(1)
	}
	skipped, emitted := 0, 0
	var inner error
	for _, part := range parts {
		err := snap.ScanColsRange(part, scanCols, func(_ tablestore.RowID, row []sheet.Value) bool {
			if inner = env.check(); inner != nil {
				return false
			}
			ctx.row = row
			keep, err := allPredicates(preds, ctx)
			if err != nil {
				inner = err
				return false
			}
			if !keep {
				return true
			}
			if skipped < offset {
				skipped++
				return true
			}
			out := make([]sheet.Value, len(bound))
			for i, be := range bound {
				if out[i], inner = be.eval(ctx); inner != nil {
					return false
				}
			}
			if inner = yield(out); inner != nil {
				return false
			}
			emitted++
			if limit >= 0 && emitted >= limit {
				inner = errStreamDone
				return false
			}
			return true
		})
		if err == nil {
			err = inner
		}
		if err != nil {
			return err
		}
	}
	return nil
}
