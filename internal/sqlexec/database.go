// Package sqlexec implements the query processor of DataSpread's embedded
// relational engine: a materialising executor for the SQL dialect of
// internal/sqlparser over the storage managers of internal/storage/tablestore,
// extended with the paper's positional addressing constructs (RANGEVALUE,
// RANGETABLE) resolved against the spreadsheet through a SheetAccessor.
//
// dslint:errdomain
package sqlexec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/index/btree"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
	"github.com/dataspread/dataspread/internal/txn"
)

// Layout selects the physical layout used for newly created tables.
type Layout string

// Available layouts.
const (
	LayoutHybrid Layout = "hybrid"
	LayoutRow    Layout = "row"
	LayoutColumn Layout = "column"
)

// Config configures a Database.
type Config struct {
	// Layout is the physical layout for new tables (default hybrid).
	Layout Layout
	// GroupSize is the attribute-group width for hybrid tables.
	GroupSize int
	// BufferPoolPages is the buffer pool capacity in pages (default 4096;
	// 0 disables caching, which benchmarks use to expose block counts).
	BufferPoolPages *int
	// Backend is the page device table storage sits on (default: a fresh
	// in-memory pager.Store). Pass a pager.FileStore to run the storage
	// managers and their block-touch experiments against real disk I/O.
	Backend pager.Backend
	// Workers bounds the worker pool used for morsel-driven parallel scans,
	// aggregation and joins (0 = GOMAXPROCS). 1 disables parallel execution.
	Workers int
}

// ChangeKind classifies a data-change notification.
type ChangeKind int

// Change kinds delivered to listeners.
const (
	ChangeInsert ChangeKind = iota
	ChangeUpdate
	ChangeDelete
	ChangeSchema
	ChangeDropTable
)

// ChangeEvent notifies listeners (the interface manager) that a table
// changed, so bound spreadsheet regions can be refreshed (paper Feature 3:
// two-way sync).
type ChangeEvent struct {
	Table string
	Kind  ChangeKind
	RowID tablestore.RowID
}

// listener is one registered change listener; the id lets Listen hand back
// a cancel func that removes exactly this registration.
type listener struct {
	id int64
	fn func(ChangeEvent)
}

// Database is the embedded relational engine: catalog, per-table storage,
// primary-key indexes, transactions and change notification. It is safe for
// concurrent use; writes are serialised by an internal mutex.
type Database struct {
	mu           sync.RWMutex // dslint:lock(engine)
	cat          *catalog.Catalog
	stores       map[string]tablestore.Store
	pkIndex      map[string]*btree.Tree
	pageStore    pager.Backend
	pool         *pager.BufferPool
	txns         *txn.Manager
	cfg          Config
	listeners    []listener
	nextListener int64

	// Secondary indexes (indexes.go), maintained under mu together with the
	// base tables, and per-table data version counters bumped on every
	// tuple change (result-level memoization of DBSQL bindings compares
	// them to skip re-execution).
	secIndexes  map[string][]*secIndex
	indexByName map[string]*secIndex
	dataVers    map[string]uint64

	// Prepared-plan cache (plan.go). schemaEpoch advances on every schema
	// definition change — including index DDL, so cached plans re-plan
	// their access paths — lazily invalidating cached statements.
	plans       planCache
	schemaEpoch atomic.Uint64

	// forceFullScan disables index access paths (golden tests and the
	// benchmark baseline compare against forced full scans).
	forceFullScan atomic.Bool

	// forceSerial disables morsel-driven parallel execution (golden tests
	// and benchmark baselines compare parallel plans against the serial
	// executor on identical data).
	forceSerial atomic.Bool

	// workersOverride, when non-zero, replaces cfg.Workers at plan time so
	// benchmarks can sweep worker counts over one loaded dataset.
	workersOverride atomic.Int32

	// forceNoSkip disables zone-map page skipping (golden tests and the
	// benchmark baseline compare skipped scans against forced full reads).
	forceNoSkip atomic.Bool

	// pagesRead / pagesSkipped count the physical pages pruned scans chose to
	// read and proved skippable, across all queries since the last reset.
	pagesRead    atomic.Int64
	pagesSkipped atomic.Int64
}

// NewDatabase creates an empty database.
func NewDatabase(cfg Config) *Database {
	if cfg.Layout == "" {
		cfg.Layout = LayoutHybrid
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = tablestore.DefaultGroupSize
	}
	poolPages := 4096
	if cfg.BufferPoolPages != nil {
		poolPages = *cfg.BufferPoolPages
	}
	var ps pager.Backend = cfg.Backend
	if ps == nil {
		ps = pager.NewStore()
	}
	return &Database{
		cat:         catalog.New(),
		stores:      make(map[string]tablestore.Store),
		pkIndex:     make(map[string]*btree.Tree),
		secIndexes:  make(map[string][]*secIndex),
		indexByName: make(map[string]*secIndex),
		dataVers:    make(map[string]uint64),
		pageStore:   ps,
		pool:        pager.NewBufferPool(ps, poolPages),
		txns:        txn.NewManager(),
		cfg:         cfg,
	}
}

// SchemaEpoch returns the schema definition epoch: it advances on every
// CREATE/ALTER/DROP of tables, columns and indexes.
func (db *Database) SchemaEpoch() uint64 { return db.schemaEpoch.Load() }

// TableDataVersion returns a counter that advances on every tuple change of
// the table (0 for an unknown or untouched table). Together with
// SchemaEpoch it lets callers prove a query's inputs are unchanged.
func (db *Database) TableDataVersion(name string) uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dataVers[tkey(name)]
}

// SetForceFullScan disables (true) or re-enables (false) index access
// paths: with the flag set every scan is a filtered full scan. Golden tests
// and benchmark baselines use it to compare plans on identical data.
func (db *Database) SetForceFullScan(force bool) { db.forceFullScan.Store(force) }

// SetForceSerial disables (true) or re-enables (false) morsel-driven
// parallel execution: with the flag set every scan, aggregation and join
// runs on the calling goroutine. Golden tests and benchmark baselines use it
// to compare the parallel executor against serial output on identical data.
func (db *Database) SetForceSerial(force bool) { db.forceSerial.Store(force) }

// SetWorkers overrides the configured worker-pool width for subsequent
// queries (0 restores Config.Workers). Benchmarks use it to sweep worker
// counts over one loaded dataset.
func (db *Database) SetWorkers(n int) { db.workersOverride.Store(int32(n)) }

// SetForceNoSkip disables (true) or re-enables (false) zone-map page
// skipping: with the flag set every scan reads every page, ignoring the
// per-page summaries. Golden tests and benchmark baselines use it to compare
// skipped scans against full reads on identical data.
func (db *Database) SetForceNoSkip(force bool) { db.forceNoSkip.Store(force) }

// ScanStats reports the zone-map skipping counters: physical pages pruned
// scans read and pages they proved skippable, cumulative since the last
// ResetScanStats. Scans that never consulted zone maps (no sargable bounds,
// or skipping disabled) count toward neither.
func (db *Database) ScanStats() (pagesRead, pagesSkipped int64) {
	return db.pagesRead.Load(), db.pagesSkipped.Load()
}

// ResetScanStats zeroes the zone-map skipping counters.
func (db *Database) ResetScanStats() {
	db.pagesRead.Store(0)
	db.pagesSkipped.Store(0)
}

// Catalog returns the schema catalog.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// TxnManager returns the transaction manager.
func (db *Database) TxnManager() *txn.Manager { return db.txns }

// PagerStats returns block-level I/O statistics for the whole database.
func (db *Database) PagerStats() pager.Stats { return db.pageStore.Stats() }

// EpochStats reports the snapshot-read state of the buffer pool: how many
// reader epochs are pinned and how many superseded page versions are
// retained for them. Both are zero whenever no snapshot reader is active.
func (db *Database) EpochStats() (pinned, retained int) { return db.pool.EpochStats() }

// ResetPagerStats zeroes the block-level counters.
func (db *Database) ResetPagerStats() { db.pageStore.ResetStats() }

// Listen registers a change listener. Listeners are called synchronously
// after each successful data or schema change, in registration order. The
// returned cancel func removes the registration; long-lived embedders must
// call it when done listening or the database retains the closure forever.
// Cancelling twice is harmless.
func (db *Database) Listen(fn func(ChangeEvent)) (cancel func()) {
	db.mu.Lock()
	db.nextListener++
	id := db.nextListener
	db.listeners = append(db.listeners, listener{id: id, fn: fn})
	db.mu.Unlock()
	return func() {
		db.mu.Lock()
		defer db.mu.Unlock()
		for i, l := range db.listeners {
			if l.id == id {
				db.listeners = append(db.listeners[:i], db.listeners[i+1:]...)
				return
			}
		}
	}
}

func (db *Database) notify(ev ChangeEvent) {
	db.mu.RLock()
	ls := make([]listener, len(db.listeners))
	copy(ls, db.listeners)
	db.mu.RUnlock()
	for _, l := range ls {
		l.fn(ev)
	}
}

func tkey(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// newStore builds a table store in the configured layout.
func (db *Database) newStore(columns int) tablestore.Store {
	switch db.cfg.Layout {
	case LayoutRow:
		return tablestore.NewRowStore(db.pool, columns)
	case LayoutColumn:
		return tablestore.NewColStore(db.pool, columns)
	default:
		return tablestore.NewHybridStore(db.pool, columns, tablestore.WithGroupSize(db.cfg.GroupSize))
	}
}

// CreateTable registers a table and its storage.
func (db *Database) CreateTable(name string, cols []catalog.Column) error {
	if _, err := db.cat.Create(name, cols); err != nil {
		return err
	}
	db.mu.Lock()
	db.stores[tkey(name)] = db.newStore(len(cols))
	db.pkIndex[tkey(name)] = btree.New()
	db.mu.Unlock()
	db.invalidatePlans()
	db.notify(ChangeEvent{Table: name, Kind: ChangeSchema})
	return nil
}

// DropTable removes a table, its storage and indexes.
func (db *Database) DropTable(name string) error {
	if err := db.cat.Drop(name); err != nil {
		return err
	}
	db.mu.Lock()
	delete(db.stores, tkey(name))
	delete(db.pkIndex, tkey(name))
	delete(db.dataVers, tkey(name))
	db.secOnDropTableLocked(name)
	db.mu.Unlock()
	db.invalidatePlans()
	db.notify(ChangeEvent{Table: name, Kind: ChangeDropTable})
	return nil
}

// Table returns the table definition.
func (db *Database) Table(name string) (*catalog.Table, error) {
	return db.cat.MustGet(name)
}

// Tables lists all table definitions.
func (db *Database) Tables() []*catalog.Table { return db.cat.List() }

func (db *Database) store(name string) (tablestore.Store, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.stores[tkey(name)]
	if !ok {
		return nil, catalog.ErrNoTable{Name: name}
	}
	return s, nil
}

// RowCount returns the number of live tuples in a table.
func (db *Database) RowCount(name string) (int, error) {
	s, err := db.store(name)
	if err != nil {
		return 0, err
	}
	return s.RowCount(), nil
}

// coerceRow validates a tuple against the table schema, coercing values to
// column types where possible and rejecting NOT NULL violations.
func coerceRow(tbl *catalog.Table, row []sheet.Value) ([]sheet.Value, error) {
	if len(row) != len(tbl.Columns) {
		return nil, fmt.Errorf("sqlexec: table %q expects %d values, got %d: %w", tbl.Name, len(tbl.Columns), len(row), dberr.ErrParamCount)
	}
	out := make([]sheet.Value, len(row))
	for i, col := range tbl.Columns {
		v := row[i]
		if v.IsEmpty() {
			if col.NotNull {
				return nil, fmt.Errorf("sqlexec: column %q of table %q is NOT NULL: %w", col.Name, tbl.Name, dberr.ErrNotNullViolation)
			}
			if !col.Default.IsEmpty() {
				v = col.Default
			}
		}
		cv, ok := col.Type.Coerce(v)
		if !ok {
			return nil, fmt.Errorf("sqlexec: value %q is not valid for column %q (%s): %w", v.String(), col.Name, col.Type, dberr.ErrTypeMismatch)
		}
		out[i] = cv
	}
	return out, nil
}

// pkKey builds the primary-key index key for a tuple, or nil when the table
// has no declared key.
func pkKey(tbl *catalog.Table, row []sheet.Value) []byte {
	pk := tbl.PrimaryKey()
	if len(pk) == 0 {
		return nil
	}
	parts := make([][]byte, 0, len(pk))
	for _, i := range pk {
		parts = append(parts, encodeKeyValue(row[i]))
	}
	return btree.Composite(parts...)
}

// encodeKeyValue encodes one value for use inside an index key. Negative
// zero is normalised to zero so byte equality of keys matches numeric
// equality of the values they encode.
func encodeKeyValue(v sheet.Value) []byte {
	switch v.Kind {
	case sheet.KindNumber:
		f := v.Num
		if f == 0 {
			f = 0
		}
		return btree.Composite([]byte{1}, btree.EncodeFloat64(f))
	case sheet.KindString:
		return btree.Composite([]byte{2}, btree.EncodeString(v.Str))
	case sheet.KindBool:
		if v.Bool {
			return []byte{3, 1}
		}
		return []byte{3, 0}
	default:
		return []byte{0}
	}
}

// Insert validates and appends a tuple, maintaining the primary-key index,
// and returns the new RowID. A duplicate primary key is rejected.
func (db *Database) Insert(table string, row []sheet.Value) (tablestore.RowID, error) {
	return db.insert(table, row, nil)
}

func (db *Database) insert(table string, row []sheet.Value, tx *txn.Txn) (tablestore.RowID, error) {
	tbl, err := db.cat.MustGet(table)
	if err != nil {
		return 0, err
	}
	s, err := db.store(table)
	if err != nil {
		return 0, err
	}
	coerced, err := coerceRow(tbl, row)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	idx := db.pkIndex[tkey(table)]
	key := pkKey(tbl, coerced)
	if key != nil {
		if _, dup := idx.Get(key); dup {
			db.mu.Unlock()
			return 0, fmt.Errorf("sqlexec: duplicate primary key in table %q: %w", table, dberr.ErrUniqueViolation)
		}
	}
	if err := db.secCheckInsertLocked(table, coerced); err != nil {
		db.mu.Unlock()
		return 0, err
	}
	id, err := s.Insert(coerced)
	if err != nil {
		db.mu.Unlock()
		return 0, err
	}
	if key != nil {
		idx.Set(key, uint64(id))
	}
	db.secInsertLocked(table, coerced, id)
	db.dataVers[tkey(table)]++
	db.mu.Unlock()
	if tx != nil {
		_ = tx.Log(txn.Op{Kind: txn.OpInsert, Table: table, Detail: fmt.Sprintf("row %d", id)}, func() error {
			return db.Delete(table, id)
		})
	}
	db.notify(ChangeEvent{Table: table, Kind: ChangeInsert, RowID: id})
	return id, nil
}

// Get returns a tuple by RowID.
func (db *Database) Get(table string, id tablestore.RowID) ([]sheet.Value, error) {
	s, err := db.store(table)
	if err != nil {
		return nil, err
	}
	return s.Get(id)
}

// Update replaces a tuple, keeping the primary-key index in sync.
func (db *Database) Update(table string, id tablestore.RowID, row []sheet.Value) error {
	return db.update(table, id, row, nil)
}

func (db *Database) update(table string, id tablestore.RowID, row []sheet.Value, tx *txn.Txn) error {
	tbl, err := db.cat.MustGet(table)
	if err != nil {
		return err
	}
	s, err := db.store(table)
	if err != nil {
		return err
	}
	coerced, err := coerceRow(tbl, row)
	if err != nil {
		return err
	}
	old, err := s.Get(id)
	if err != nil {
		return err
	}
	db.mu.Lock()
	idx := db.pkIndex[tkey(table)]
	oldKey, newKey := pkKey(tbl, old), pkKey(tbl, coerced)
	if newKey != nil && string(oldKey) != string(newKey) {
		if existing, dup := idx.Get(newKey); dup && existing != uint64(id) {
			db.mu.Unlock()
			return fmt.Errorf("sqlexec: duplicate primary key in table %q: %w", table, dberr.ErrUniqueViolation)
		}
	}
	if err := db.secCheckUpdateLocked(table, old, coerced, id); err != nil {
		db.mu.Unlock()
		return err
	}
	if err := s.Update(id, coerced); err != nil {
		db.mu.Unlock()
		return err
	}
	if oldKey != nil && string(oldKey) != string(newKey) {
		idx.Delete(oldKey)
	}
	if newKey != nil {
		idx.Set(newKey, uint64(id))
	}
	db.secUpdateLocked(table, old, coerced, id)
	db.dataVers[tkey(table)]++
	db.mu.Unlock()
	if tx != nil {
		oldCopy := append([]sheet.Value(nil), old...)
		_ = tx.Log(txn.Op{Kind: txn.OpUpdate, Table: table, Detail: fmt.Sprintf("row %d", id)}, func() error {
			return db.Update(table, id, oldCopy)
		})
	}
	db.notify(ChangeEvent{Table: table, Kind: ChangeUpdate, RowID: id})
	return nil
}

// UpdateColumn updates a single attribute of a tuple.
func (db *Database) UpdateColumn(table string, id tablestore.RowID, col int, v sheet.Value) error {
	tbl, err := db.cat.MustGet(table)
	if err != nil {
		return err
	}
	if col < 0 || col >= len(tbl.Columns) {
		return fmt.Errorf("sqlexec: column index %d out of range for table %q: %w", col, table, dberr.ErrColumnNotFound)
	}
	cv, ok := tbl.Columns[col].Type.Coerce(v)
	if !ok {
		return fmt.Errorf("sqlexec: value %q is not valid for column %q: %w", v.String(), tbl.Columns[col].Name, dberr.ErrTypeMismatch)
	}
	s, err := db.store(table)
	if err != nil {
		return err
	}
	// Primary-key and secondary-indexed columns must go through Update so
	// the indexes stay valid.
	indexed := false
	for _, pkIdx := range tbl.PrimaryKey() {
		if pkIdx == col {
			indexed = true
		}
	}
	if !indexed {
		db.mu.RLock()
		indexed = db.secColumnIndexedLocked(table, col)
		db.mu.RUnlock()
	}
	if indexed {
		row, err := s.Get(id)
		if err != nil {
			return err
		}
		row[col] = cv
		return db.Update(table, id, row)
	}
	db.mu.Lock()
	err = s.UpdateColumn(id, col, cv)
	if err == nil {
		db.dataVers[tkey(table)]++
	}
	db.mu.Unlock()
	if err != nil {
		return err
	}
	db.notify(ChangeEvent{Table: table, Kind: ChangeUpdate, RowID: id})
	return nil
}

// Delete removes a tuple and its index entry.
func (db *Database) Delete(table string, id tablestore.RowID) error {
	return db.delete(table, id, nil)
}

func (db *Database) delete(table string, id tablestore.RowID, tx *txn.Txn) error {
	tbl, err := db.cat.MustGet(table)
	if err != nil {
		return err
	}
	s, err := db.store(table)
	if err != nil {
		return err
	}
	old, err := s.Get(id)
	if err != nil {
		return err
	}
	db.mu.Lock()
	if err := s.Delete(id); err != nil {
		db.mu.Unlock()
		return err
	}
	if key := pkKey(tbl, old); key != nil {
		db.pkIndex[tkey(table)].Delete(key)
	}
	db.secDeleteLocked(table, old, id)
	db.dataVers[tkey(table)]++
	db.mu.Unlock()
	if tx != nil {
		oldCopy := append([]sheet.Value(nil), old...)
		_ = tx.Log(txn.Op{Kind: txn.OpDelete, Table: table, Detail: fmt.Sprintf("row %d", id)}, func() error {
			_, err := db.Insert(table, oldCopy)
			return err
		})
	}
	db.notify(ChangeEvent{Table: table, Kind: ChangeDelete, RowID: id})
	return nil
}

// Scan iterates all live tuples of a table in RowID order.
func (db *Database) Scan(table string, fn func(id tablestore.RowID, row []sheet.Value) bool) error {
	s, err := db.store(table)
	if err != nil {
		return err
	}
	return s.Scan(fn)
}

// FindByKey looks up a tuple by its full primary key value(s).
func (db *Database) FindByKey(table string, key []sheet.Value) (tablestore.RowID, bool, error) {
	tbl, err := db.cat.MustGet(table)
	if err != nil {
		return 0, false, err
	}
	pk := tbl.PrimaryKey()
	if len(pk) == 0 {
		return 0, false, fmt.Errorf("sqlexec: table %q has no primary key: %w", table, dberr.ErrIndexNotFound)
	}
	if len(key) != len(pk) {
		return 0, false, fmt.Errorf("sqlexec: table %q primary key has %d columns, got %d values: %w", table, len(pk), len(key), dberr.ErrParamCount)
	}
	parts := make([][]byte, len(key))
	for i, v := range key {
		parts[i] = encodeKeyValue(v)
	}
	db.mu.RLock()
	idx := db.pkIndex[tkey(table)]
	db.mu.RUnlock()
	id, ok := idx.Get(btree.Composite(parts...))
	return tablestore.RowID(id), ok, nil
}

// AddColumn evolves the schema: catalog first, then the storage backfill.
func (db *Database) AddColumn(table string, col catalog.Column, defaultValue sheet.Value) error {
	return db.addColumn(table, col, defaultValue, nil)
}

func (db *Database) addColumn(table string, col catalog.Column, defaultValue sheet.Value, tx *txn.Txn) error {
	s, err := db.store(table)
	if err != nil {
		return err
	}
	if err := db.cat.AddColumn(table, col); err != nil {
		return err
	}
	db.mu.Lock()
	err = s.AddColumn(defaultValue)
	db.mu.Unlock()
	if err != nil {
		// Roll the catalog back so schema and storage stay consistent.
		_, _ = db.cat.DropColumn(table, col.Name)
		return err
	}
	if tx != nil {
		_ = tx.Log(txn.Op{Kind: txn.OpAddColumn, Table: table, Detail: col.Name}, func() error {
			return db.DropColumn(table, col.Name)
		})
	}
	db.invalidatePlans()
	db.notify(ChangeEvent{Table: table, Kind: ChangeSchema})
	return nil
}

// DropColumn evolves the schema, removing the column from catalog and
// storage.
func (db *Database) DropColumn(table, column string) error {
	s, err := db.store(table)
	if err != nil {
		return err
	}
	idx, err := db.cat.DropColumn(table, column)
	if err != nil {
		return err
	}
	db.mu.Lock()
	err = s.DropColumn(idx)
	if err == nil {
		db.secOnDropColumnLocked(table, idx)
	}
	db.mu.Unlock()
	if err != nil {
		return err
	}
	db.invalidatePlans()
	db.notify(ChangeEvent{Table: table, Kind: ChangeSchema})
	return nil
}

// RenameColumn renames a column (catalog only; storage is positional).
func (db *Database) RenameColumn(table, oldName, newName string) error {
	if err := db.cat.RenameColumn(table, oldName, newName); err != nil {
		return err
	}
	db.mu.Lock()
	db.secOnRenameColumnLocked(table, oldName, newName)
	db.mu.Unlock()
	db.invalidatePlans()
	db.notify(ChangeEvent{Table: table, Kind: ChangeSchema})
	return nil
}
