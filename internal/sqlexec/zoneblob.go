// Zone-map catalog persistence: the advisory half of a durable workbook.
//
// MarshalZones serialises every table's zone-map catalog (per-page column
// summaries) so a reopened workbook skips pages immediately instead of
// rebuilding summaries one page-rewrite at a time. Unlike the page catalog,
// the blob is strictly optional: AttachZones failing — torn write, checksum
// mismatch, shape drift — degrades to "no skipping" and is never an open
// error, because every summary is recomputed by the next rewrite of its page.
package sqlexec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

var zonesMagic = [8]byte{'D', 'S', 'Z', 'N', 'C', 'A', 'T', '1'}

// ErrCorruptZones is returned when a zone-catalog blob fails its checksum or
// cannot be decoded. Callers treat it as "reopen without skipping", not as a
// recovery failure.
var ErrCorruptZones = errors.New("sqlexec: corrupt zone catalog")

// zoneValidator is the per-store testing hook: re-decode every summarised
// page and check the summaries cover the stored values.
type zoneValidator interface {
	ValidateZones() error
}

// MarshalZones serialises the zone-map catalogs of every table whose store
// carries summaries, in the same deterministic table order as MarshalPages.
func (db *Database) MarshalZones() []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	w := &pagesWriter{}
	tables := db.cat.List()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	var entries int
	body := &pagesWriter{}
	for _, tbl := range tables {
		zp, ok := db.stores[tkey(tbl.Name)].(tablestore.ZonePersister)
		if !ok {
			continue
		}
		entries++
		body.str(tbl.Name)
		body.bytes(zp.MarshalZones())
	}
	w.uint(uint64(entries))
	w.buf = append(w.buf, body.buf...)

	out := make([]byte, 12, 12+len(w.buf))
	copy(out, zonesMagic[:])
	binary.LittleEndian.PutUint32(out[8:12], crc32.ChecksumIEEE(w.buf))
	return append(out, w.buf...)
}

// AttachZones reattaches marshalled zone catalogs to the current stores.
// Validation is two-tier: the blob frame (magic, CRC, structure) and each
// store's own shape check against its page lists. Any failure returns an
// error with skipping disabled for the affected stores — never a wrong
// summary — and the database stays fully usable.
func (db *Database) AttachZones(blob []byte) error {
	if len(blob) < 12 || [8]byte(blob[0:8]) != zonesMagic {
		return fmt.Errorf("%w: bad magic", ErrCorruptZones)
	}
	body := blob[12:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(blob[8:12]) {
		return fmt.Errorf("%w: checksum mismatch", ErrCorruptZones)
	}
	r := &pagesReader{buf: body}
	db.mu.Lock()
	defer db.mu.Unlock()
	n := r.count("zone table")
	for i := 0; i < n && r.err == nil; i++ {
		name := r.str()
		payload := r.bytes()
		if r.err != nil {
			break
		}
		s, ok := db.stores[tkey(name)]
		if !ok {
			return fmt.Errorf("%w: zones for unknown table %q", ErrCorruptZones, name)
		}
		zp, ok := s.(tablestore.ZonePersister)
		if !ok {
			continue
		}
		if err := zp.AttachZones(payload); err != nil {
			return fmt.Errorf("%w: table %q: %v", ErrCorruptZones, name, err)
		}
	}
	if r.err != nil {
		return r.err
	}
	if r.pos != len(body) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptZones, len(body)-r.pos)
	}
	return nil
}

// ValidateZones re-decodes every summarised page of every table and checks
// each zone summary covers the page's stored values — the invariant that
// makes skipping equivalence-safe. Fuzz and golden tests call it after churn.
func (db *Database) ValidateZones() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, s := range db.stores {
		zv, ok := s.(zoneValidator)
		if !ok {
			continue
		}
		if err := zv.ValidateZones(); err != nil {
			return fmt.Errorf("sqlexec: table %q: %w", name, err)
		}
	}
	return nil
}
