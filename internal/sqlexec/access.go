package sqlexec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/index/btree"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// Access-path selection. Instead of hard-wiring every named-table scan to a
// filtered full scan, the planner inspects the sargable WHERE conjuncts
// pushed into a source and chooses among:
//
//   - full scan            — stream every tuple through ScanCols;
//   - pk / index point     — equality on every index column resolves to at
//     most a handful of tuples through the B+-tree;
//   - pk / index range     — an equality prefix plus bounds on the next
//     index column becomes one [lo, hi) iteration over the order-preserving
//     key encoding;
//   - index-ordered scan   — ORDER BY <first index column> LIMIT k walks
//     the index in order and stops after k qualifying tuples, eliding the
//     sort entirely.
//
// Index scans return a SUPERSET guarantee rather than exactness: every tuple
// that can satisfy the pushed conjuncts is visited, and the conjuncts are
// re-evaluated on each candidate, so index-path results are row-for-row
// identical to full-scan results (the golden tests in access_test.go prove
// this per layout). Sargability is deliberately conservative: only columns
// declared NUMERIC participate, because the engine's comparison semantics
// for text (case-insensitive) diverge from the byte order of the index
// encoding.

// pathKind classifies an access path.
type pathKind int

// Access-path kinds.
const (
	pathFull pathKind = iota
	pathPoint
	pathRange
	pathInList
)

// accessPath is one chosen access path for a named-table source.
type accessPath struct {
	kind  pathKind
	index *secIndex // nil: the primary-key B-tree serves the path
	// key is the exact PK key of a primary-key point lookup.
	key []byte
	// lo/hi bound the B-tree iteration of range scans and secondary point
	// probes (nil = open end).
	lo, hi []byte
	// probes are the batch keys of an IN-list path: full PK keys when the
	// primary-key tree serves the path, value prefixes (each probed as a
	// short range over the entry-key encoding) for a secondary index.
	probes [][]byte
	// ordered marks a scan that emits tuples in the statement's ORDER BY
	// order; desc walks the index backwards. earlyLimit > 0 stops an
	// ordered scan after that many qualifying tuples.
	ordered    bool
	desc       bool
	earlyLimit int
	// display is the EXPLAIN rendering.
	display string
}

// orderReq describes the ordering a source could satisfy: the source column
// of the leading ORDER BY term, its direction, whether further terms follow,
// and the row budget (LIMIT+OFFSET) that allows an early exit.
type orderReq struct {
	col   int
	desc  bool
	multi bool
	limit int
}

var noOrder = orderReq{col: -1}

// sarg is one sargable constraint: column <op> constant, or column IN a
// folded constant list (op "in", constants in vals).
type sarg struct {
	col  int
	op   string // "=", "<", "<=", ">", ">=", "in"
	val  sheet.Value
	vals []sheet.Value
}

// extractSargs derives sargable constraints from pushed conjuncts. Pushed
// conjuncts are error-free and single-source by construction; constants are
// folded per execution (RANGEVALUE parameters and '?' placeholders
// included, so a prepared statement's bounds resolve late, against the
// arguments of the execution at hand). Only NUMERIC-typed columns yield
// sargs, and range constants must already be numbers — for equality a
// numeric coercion is applied, mirroring Value.Equal.
func extractSargs(pushed []sqlparser.Expr, cols []colDesc, tbl *catalog.Table, env *execEnv) []sarg {
	var out []sarg
	colOf := func(e sqlparser.Expr) int {
		cr, ok := e.(*sqlparser.ColumnRef)
		if !ok {
			return -1
		}
		i, err := findColumn(cols, strings.ToLower(cr.Table), strings.ToLower(cr.Name))
		if err != nil {
			return -1
		}
		return i
	}
	constOf := func(e sqlparser.Expr) (sheet.Value, bool) {
		if !exprColumnFree(e) {
			return sheet.Empty(), false
		}
		be, err := compileExpr(e, &compileEnv{noRel: true, sheets: env.sheets})
		if err != nil {
			return sheet.Empty(), false
		}
		v, err := be.eval(env.newRowCtx())
		if err != nil || v.IsEmpty() {
			return sheet.Empty(), false
		}
		return v, true
	}
	numericCol := func(i int) bool {
		return i >= 0 && i < len(tbl.Columns) && tbl.Columns[i].Type == catalog.TypeNumber
	}
	add := func(col int, op string, v sheet.Value) {
		if !numericCol(col) {
			return
		}
		if op == "=" {
			f, ok := v.AsNumber()
			if !ok {
				return
			}
			v = sheet.Number(f)
		} else if v.Kind != sheet.KindNumber {
			// Compare ranks non-numbers above every number, so a range
			// against a non-numeric constant is not an index range.
			return
		}
		out = append(out, sarg{col: col, op: op, val: v})
	}
	// IN-list point probes: `col IN (c1, c2, ...)` on a NUMERIC column
	// plans as a batch of point lookups. Every list element must fold to a
	// constant; elements that cannot coerce to a number abandon the whole
	// list (conservative: the engine's equality semantics decide matches,
	// and the index path must visit a superset of them).
	inList := func(x *sqlparser.InExpr) {
		if x.Not {
			return
		}
		col := colOf(x.X)
		if !numericCol(col) || len(x.List) == 0 {
			return
		}
		seen := make(map[float64]bool, len(x.List))
		vals := make([]sheet.Value, 0, len(x.List))
		for _, e := range x.List {
			v, ok := constOf(e)
			if !ok {
				return // unfoldable element: no sarg for this conjunct
			}
			f, ok := v.AsNumber()
			if !ok {
				return // a non-numeric member defers to the full predicate
			}
			if f == 0 {
				f = 0 // normalise -0 like encodeKeyValue
			}
			if !seen[f] {
				seen[f] = true
				vals = append(vals, sheet.Number(f))
			}
		}
		out = append(out, sarg{col: col, op: "in", vals: vals})
	}
	flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<="}
	for _, c := range pushed {
		switch x := c.(type) {
		case *sqlparser.BinaryExpr:
			switch x.Op {
			case "=", "<", "<=", ">", ">=":
			default:
				continue
			}
			if col := colOf(x.Left); col >= 0 {
				if v, ok := constOf(x.Right); ok {
					add(col, x.Op, v)
				}
				continue
			}
			if col := colOf(x.Right); col >= 0 {
				if v, ok := constOf(x.Left); ok {
					op := x.Op
					if f, ok := flip[op]; ok {
						op = f
					}
					add(col, op, v)
				}
			}
		case *sqlparser.BetweenExpr:
			if x.Not {
				continue
			}
			col := colOf(x.X)
			if col < 0 {
				continue
			}
			if lo, ok := constOf(x.Lo); ok {
				add(col, ">=", lo)
			}
			if hi, ok := constOf(x.Hi); ok {
				add(col, "<=", hi)
			}
		case *sqlparser.InExpr:
			inList(x)
		}
	}
	return out
}

// zoneBoundsOf converts sargable constraints into the storage layer's
// zone-map bound form. Sarg columns are physical store column indexes (the
// full source schema), which is exactly the space zone summaries live in;
// equality constants are already numerically coerced and range constants are
// numbers by construction.
func zoneBoundsOf(sargs []sarg) []tablestore.ZoneBound {
	var out []tablestore.ZoneBound
	for _, sg := range sargs {
		if sg.op == "in" {
			vals := make([]float64, len(sg.vals))
			for i, v := range sg.vals {
				vals[i] = v.Num
			}
			out = append(out, tablestore.ZoneBound{Col: sg.col, Op: sg.op, Vals: vals})
			continue
		}
		out = append(out, tablestore.ZoneBound{Col: sg.col, Op: sg.op, Val: sg.val.Num})
	}
	return out
}

// chooseAccessPath selects the access path for one named-table source given
// its pushed conjuncts and an optional ordering request. It always returns a
// path; pathFull means "stream the storage manager".
func (db *Database) chooseAccessPath(tbl *catalog.Table, cols []colDesc, pushed []sqlparser.Expr, env *execEnv, ord orderReq) *accessPath {
	full := &accessPath{kind: pathFull, display: "full scan"}
	if db.forceFullScan.Load() {
		full.display = "full scan (forced)"
		return full
	}
	sargs := extractSargs(pushed, cols, tbl, env)

	best, bestScore := full, 0
	consider := func(p *accessPath, score int) {
		if p != nil && score > bestScore {
			best, bestScore = p, score
		}
	}

	// Primary key.
	pk := tbl.PrimaryKey()
	if len(pk) > 0 && pkNumeric(tbl, pk) {
		consider(buildIndexPath(tbl, nil, pk, true, sargs, ord))
	}
	// Secondary indexes.
	db.mu.RLock()
	secs := append([]*secIndex(nil), db.secIndexes[tkey(tbl.Name)]...)
	db.mu.RUnlock()
	for _, si := range secs {
		if !pkNumeric(tbl, si.cols) {
			continue
		}
		consider(buildIndexPath(tbl, si, si.cols, si.def.Unique, sargs, ord))
	}
	return best
}

// pkNumeric reports whether every index column is declared NUMERIC (the
// sargability precondition).
func pkNumeric(tbl *catalog.Table, cols []int) bool {
	for _, c := range cols {
		if c < 0 || c >= len(tbl.Columns) || tbl.Columns[c].Type != catalog.TypeNumber {
			return false
		}
	}
	return true
}

// buildIndexPath matches the sargs and ordering request against one index
// (the PK when si is nil) and returns the best path it supports with a
// selectivity score, or (nil, 0).
func buildIndexPath(tbl *catalog.Table, si *secIndex, idxCols []int, unique bool, sargs []sarg, ord orderReq) (*accessPath, int) {
	name := func() string {
		if si == nil {
			return "pk"
		}
		return "index " + si.def.Name
	}
	colName := func(i int) string { return strings.ToLower(tbl.Columns[idxCols[i]].Name) }

	// Longest equality prefix.
	eqVal := func(col int) (sheet.Value, bool) {
		for _, sg := range sargs {
			if sg.col == col && sg.op == "=" {
				return sg.val, true
			}
		}
		return sheet.Empty(), false
	}
	var prefixParts [][]byte
	var eqNames []string
	eqLen := 0
	for _, c := range idxCols {
		v, ok := eqVal(c)
		if !ok {
			break
		}
		prefixParts = append(prefixParts, encodeKeyValue(v))
		eqNames = append(eqNames, colName(eqLen))
		eqLen++
	}
	prefix := btree.Composite(prefixParts...)

	// Equality on every index column: a point lookup.
	if eqLen == len(idxCols) {
		p := &accessPath{kind: pathPoint, index: si}
		if si == nil {
			p.key = prefix
			p.display = fmt.Sprintf("pk point (%s)", strings.Join(eqNames, ", "))
			return p, 100
		}
		p.lo, p.hi = prefix, btree.PrefixEnd(prefix)
		p.display = fmt.Sprintf("%s point (%s)", name(), strings.Join(eqNames, ", "))
		if unique {
			return p, 90
		}
		return p, 80
	}

	// IN-list point probes: a single-column index whose column carries a
	// folded `IN (c1, c2, ...)` list becomes a batch of point lookups, one
	// per distinct value — the primary-key tree is probed with exact keys,
	// a secondary index with one prefix range per value. Probes are sorted
	// in key order for deterministic iteration; candidates still emit in
	// RowID order (collectPathIDs sorts) so results match the full scan
	// row-for-row.
	if eqLen == 0 && len(idxCols) == 1 {
		for _, sg := range sargs {
			if sg.col != idxCols[0] || sg.op != "in" {
				continue
			}
			probes := make([][]byte, len(sg.vals))
			for i, v := range sg.vals {
				probes[i] = encodeKeyValue(v)
			}
			sort.Slice(probes, func(i, j int) bool {
				return string(probes[i]) < string(probes[j])
			})
			p := &accessPath{kind: pathInList, index: si, probes: probes}
			p.display = fmt.Sprintf("%s in-list (%s, %d probes)", name(), colName(0), len(probes))
			score := 70
			if si == nil {
				score = 78 // exact PK Gets beat secondary prefix ranges
			} else if unique {
				score = 74
			}
			return p, score
		}
	}

	// Bounds on the column after the equality prefix.
	next := idxCols[eqLen]
	var loVal, hiVal *sheet.Value
	var loIncl, hiIncl bool
	for i := range sargs {
		sg := sargs[i]
		if sg.col != next {
			continue
		}
		switch sg.op {
		case ">", ">=":
			incl := sg.op == ">="
			if loVal == nil || tighterLo(*loVal, loIncl, sg.val, incl) {
				loVal, loIncl = &sargs[i].val, incl
			}
		case "<", "<=":
			incl := sg.op == "<="
			if hiVal == nil || tighterHi(*hiVal, hiIncl, sg.val, incl) {
				hiVal, hiIncl = &sargs[i].val, incl
			}
		}
	}

	// Ordering: the scan follows the index order when the leading ORDER BY
	// term is the single index column with no equality pinning it. The
	// index must be single-column: a composite index orders ties on the
	// leading column by the trailing columns, not by the RowID order the
	// stable sort preserves. Within a single-column index, ascending ties
	// emit in RowID order (the entry-key suffix), matching the stable
	// sort; DESC (and trailing ORDER BY terms) additionally require
	// uniqueness, so only the NULL group can tie (handled by the ordered
	// walk, which emits it in ascending RowID order).
	ordered := ord.col >= 0 && eqLen == 0 && len(idxCols) == 1 && idxCols[0] == ord.col
	if ordered && (ord.desc || ord.multi) && !unique {
		ordered = false
	}

	if eqLen == 0 && loVal == nil && hiVal == nil {
		// No usable constraint: only an ordered early-exit walk justifies
		// touching the index at all.
		if !ordered || ord.limit <= 0 {
			return nil, 0
		}
		p := &accessPath{
			kind: pathRange, index: si, ordered: true, desc: ord.desc, earlyLimit: ord.limit,
			display: fmt.Sprintf("%s scan, index-ordered (sort elided, limit %d)", name(), ord.limit),
		}
		return p, 20
	}

	p := &accessPath{kind: pathRange, index: si}
	p.lo, p.hi = rangeBounds(prefix, loVal, loIncl, hiVal, hiIncl)
	score := 40
	if loVal != nil && hiVal != nil {
		score = 60
	}
	if eqLen > 0 {
		score = 60 + eqLen
	}
	if si == nil {
		score += 2 // the PK tree resolves without an entry-key suffix
	}
	desc := ""
	switch {
	case eqLen > 0 && (loVal != nil || hiVal != nil):
		desc = fmt.Sprintf("%s, %s", strings.Join(eqNames, ", "), colName(eqLen))
	case eqLen > 0:
		desc = strings.Join(eqNames, ", ")
	default:
		desc = colName(0)
	}
	p.display = fmt.Sprintf("%s range (%s)", name(), desc)
	if ordered {
		p.ordered, p.desc = true, ord.desc
		if ord.limit > 0 {
			p.earlyLimit = ord.limit
		}
		p.display += ", index-ordered (sort elided)"
		score++
	}
	return p, score
}

// tighterLo reports whether (b, bIncl) is a tighter lower bound than
// (a, aIncl).
func tighterLo(a sheet.Value, aIncl bool, b sheet.Value, bIncl bool) bool {
	if c := b.Compare(a); c != 0 {
		return c > 0
	}
	return aIncl && !bIncl
}

// tighterHi reports whether (b, bIncl) is a tighter upper bound than
// (a, aIncl).
func tighterHi(a sheet.Value, aIncl bool, b sheet.Value, bIncl bool) bool {
	if c := b.Compare(a); c != 0 {
		return c < 0
	}
	return aIncl && !bIncl
}

// rangeBounds converts an equality prefix plus value bounds on the next
// column into [lo, hi) over the key encoding. Inclusive bounds become
// exclusive through PrefixEnd, which covers every entry-key extension
// (composite suffixes and RowID suffixes alike).
func rangeBounds(prefix []byte, loVal *sheet.Value, loIncl bool, hiVal *sheet.Value, hiIncl bool) (lo, hi []byte) {
	switch {
	case loVal != nil && loIncl:
		lo = btree.Composite(prefix, encodeKeyValue(*loVal))
	case loVal != nil:
		lo = btree.PrefixEnd(btree.Composite(prefix, encodeKeyValue(*loVal)))
	case len(prefix) > 0:
		lo = prefix
	}
	switch {
	case hiVal != nil && hiIncl:
		hi = btree.PrefixEnd(btree.Composite(prefix, encodeKeyValue(*hiVal)))
	case hiVal != nil:
		hi = btree.Composite(prefix, encodeKeyValue(*hiVal))
	case len(prefix) > 0:
		hi = btree.PrefixEnd(prefix)
	}
	return lo, hi
}

// numberFloor is the smallest key of any number entry ([tag 1]); keys below
// it (tag 0) encode NULL.
var numberFloor = []byte{1}

// collectPathIDs gathers the candidate RowIDs of a non-ordered path in
// ascending RowID order, so downstream results keep the exact row order a
// full scan would produce.
func (db *Database) collectPathIDs(table string, path *accessPath) []tablestore.RowID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.collectPathIDsLocked(table, path)
}

// collectPathIDsLocked is collectPathIDs for callers already holding the
// database read lock (scan paths that keep the lock across the row fetch).
// dslint:requires(engine)
func (db *Database) collectPathIDsLocked(table string, path *accessPath) []tablestore.RowID {
	var ids []tablestore.RowID
	switch {
	case path.kind == pathInList:
		if path.index == nil {
			if idx := db.pkIndex[tkey(table)]; idx != nil {
				for _, key := range path.probes {
					if id, ok := idx.Get(key); ok {
						ids = append(ids, tablestore.RowID(id))
					}
				}
			}
		} else {
			for _, prefix := range path.probes {
				path.index.tree.AscendRange(prefix, btree.PrefixEnd(prefix), func(_ []byte, val uint64) bool {
					ids = append(ids, tablestore.RowID(val))
					return true
				})
			}
		}
	case path.index == nil && path.kind == pathPoint:
		if idx := db.pkIndex[tkey(table)]; idx != nil {
			if id, ok := idx.Get(path.key); ok {
				ids = append(ids, tablestore.RowID(id))
			}
		}
	case path.index == nil:
		if idx := db.pkIndex[tkey(table)]; idx != nil {
			idx.AscendRange(path.lo, path.hi, func(_ []byte, val uint64) bool {
				ids = append(ids, tablestore.RowID(val))
				return true
			})
		}
	default:
		path.index.tree.AscendRange(path.lo, path.hi, func(_ []byte, val uint64) bool {
			ids = append(ids, tablestore.RowID(val))
			return true
		})
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// walkPathOrdered iterates the candidate RowIDs of an ordered path in index
// order, NULL keys last to match the executor's NULLS LAST collation. fn
// returns false to stop (the early exit of ORDER BY ... LIMIT k). The
// caller must hold the database read lock.
// dslint:requires(engine)
func (db *Database) walkPathOrdered(table string, path *accessPath, fn func(id tablestore.RowID) bool) {
	tree := path.indexTree(db, table)
	if tree == nil {
		return
	}
	emit := func(_ []byte, val uint64) bool { return fn(tablestore.RowID(val)) }
	if path.desc {
		// Non-NULL keys descend; the NULL group sorts last in the
		// executor's collation and — since NULLs are exempt from
		// uniqueness — can hold several rows, whose stable-sort tie order
		// is ascending RowID, i.e. ascending entry-key order.
		lo, hi := path.lo, path.hi
		if lo == nil {
			done := false
			tree.DescendRange(numberFloor, hi, func(k []byte, v uint64) bool {
				if !emit(k, v) {
					done = true
					return false
				}
				return true
			})
			if !done {
				tree.AscendRange(nil, numberFloor, emit)
			}
			return
		}
		tree.DescendRange(lo, hi, emit)
		return
	}
	lo, hi := path.lo, path.hi
	if lo == nil && hi == nil {
		// Open ordered scan: numbers first, then the NULL group, which
		// sorts last under compareOrderKeys regardless of direction.
		done := false
		tree.AscendRange(numberFloor, nil, func(k []byte, v uint64) bool {
			if !emit(k, v) {
				done = true
				return false
			}
			return true
		})
		if !done {
			tree.AscendRange(nil, numberFloor, emit)
		}
		return
	}
	// Bounded ordered scan: NULL keys inside [lo, hi) can only occur with
	// lo == nil, and such rows never satisfy the range conjunct that
	// produced hi, so the predicate re-evaluation drops them before they
	// count against the limit.
	tree.AscendRange(lo, hi, emit)
}

// indexTree resolves the B-tree behind a path (caller holds db.mu).
func (p *accessPath) indexTree(db *Database, table string) *btree.Tree {
	if p.index != nil {
		return p.index.tree
	}
	return db.pkIndex[tkey(table)]
}
