package sqlexec

import (
	"container/heap"
	"container/list"
	"sync"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
)

// Prepared statements and the plan cache. DBSQL recalculation re-runs the
// same SQL text over and over (fresh RANGEVALUE parameters, same statement),
// so Database keeps an LRU of parsed-and-analyzed statements keyed by the
// exact SQL text. Schema definition changes (CREATE/ALTER/DROP) bump an
// epoch that lazily invalidates every cached entry: a prepared plan can
// never execute against analysis derived from a dropped or altered schema.
// Name-to-slot binding itself happens once per execution (late binding), so
// RANGETABLE relations — whose schema lives in the sheet, outside DDL — are
// always bound against their current shape.

// Prepared is a parsed and analyzed statement ready for repeated execution.
// It is immutable after Prepare and safe to share across sessions: bindings
// ('?' arguments, RANGEVALUE reads, access-path bounds) live in the
// per-execution environment, never in the prepared statement.
type Prepared struct {
	// SQL is the exact text the statement was parsed from.
	SQL     string
	stmt    sqlparser.Statement
	sel     *selectAnalysis // non-nil when stmt is a SELECT
	epoch   uint64
	nparams int
	pnames  []string
}

// Statement returns the parsed statement.
func (p *Prepared) Statement() sqlparser.Statement { return p.stmt }

// NumParams returns the number of parameter slots the statement binds ('?'
// placeholders, or distinct ':name' parameters).
func (p *Prepared) NumParams() int { return p.nparams }

// ParamNames returns the parameter names by slot index: lower-cased ':name'
// names for a named statement, empty strings for positional '?' slots. The
// returned slice is shared; callers must not mutate it.
func (p *Prepared) ParamNames() []string { return p.pnames }

// selectAnalysis is the schema-independent logical plan of one SELECT:
// everything derivable from the statement text alone, computed once and
// reused across executions.
type selectAnalysis struct {
	// conjuncts is the WHERE clause split into AND-ed conjuncts, the unit
	// of predicate pushdown.
	conjuncts []sqlparser.Expr
	// constConjuncts marks conjuncts that reference no columns and cannot
	// error: they are evaluated once per execution instead of once per
	// row. Error-capable conjuncts stay per-row so short-circuiting
	// matches the row-at-a-time evaluator.
	constConjuncts []bool
	// pushable marks conjuncts that are safe to evaluate below a join
	// (error-free; see exprCanError).
	pushable []bool
	// grouped is true when the statement aggregates (explicit GROUP BY or
	// any aggregate call in the projection, HAVING or ORDER BY).
	grouped bool
}

// analyzeSelect builds the reusable analysis of a SELECT statement.
func analyzeSelect(stmt *sqlparser.SelectStmt) *selectAnalysis {
	an := &selectAnalysis{conjuncts: sqlparser.SplitConjuncts(stmt.Where)}
	an.constConjuncts = make([]bool, len(an.conjuncts))
	an.pushable = make([]bool, len(an.conjuncts))
	for i, c := range an.conjuncts {
		canError := exprCanError(c)
		an.constConjuncts[i] = exprColumnFree(c) && !canError
		an.pushable[i] = !canError
	}
	hasAgg := stmt.Having != nil && exprHasAggregate(stmt.Having)
	for _, item := range stmt.Columns {
		if !item.Star && exprHasAggregate(item.Expr) {
			hasAgg = true
		}
	}
	for _, o := range stmt.OrderBy {
		if exprHasAggregate(o.Expr) {
			hasAgg = true
		}
	}
	an.grouped = len(stmt.GroupBy) > 0 || hasAgg
	return an
}

// planCacheCap bounds the number of cached prepared statements.
const planCacheCap = 256

// planCache is an LRU of prepared statements keyed by SQL text.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; holds *Prepared
	hits    uint64
	misses  uint64
}

// PlanCacheStats reports the plan cache state for tests and diagnostics.
type PlanCacheStats struct {
	Size   int
	Hits   uint64
	Misses uint64
}

// Prepare parses and analyzes sql, consulting the plan cache. Entries
// prepared under an older schema epoch are discarded and rebuilt.
func (db *Database) Prepare(sql string) (*Prepared, error) {
	epoch := db.schemaEpoch.Load()
	c := &db.plans
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*list.Element)
		c.lru = list.New()
	}
	if el, ok := c.entries[sql]; ok {
		p := el.Value.(*Prepared)
		if p.epoch == epoch {
			c.lru.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			return p, nil
		}
		c.lru.Remove(el)
		delete(c.entries, sql)
	}
	c.misses++
	c.mu.Unlock()

	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	p := &Prepared{SQL: sql, stmt: stmt, epoch: epoch, nparams: sqlparser.NumPlaceholders(stmt), pnames: sqlparser.ParamNames(stmt)}
	if sel, ok := stmt.(*sqlparser.SelectStmt); ok {
		p.sel = analyzeSelect(sel)
	}

	c.mu.Lock()
	if el, ok := c.entries[sql]; ok {
		// Raced with another Prepare; keep the incumbent if it is current.
		if inc := el.Value.(*Prepared); inc.epoch == epoch {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			return inc, nil
		}
		c.lru.Remove(el)
		delete(c.entries, sql)
	}
	c.entries[sql] = c.lru.PushFront(p)
	for len(c.entries) > planCacheCap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*Prepared).SQL)
	}
	c.mu.Unlock()
	return p, nil
}

// PlanCacheStats returns plan cache counters.
func (db *Database) PlanCacheStats() PlanCacheStats {
	c := &db.plans
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Size: len(c.entries), Hits: c.hits, Misses: c.misses}
}

// invalidatePlans marks every cached plan stale. Called on any schema
// definition change (CREATE/ALTER/DROP TABLE and column DDL).
func (db *Database) invalidatePlans() {
	db.schemaEpoch.Add(1)
}

// --- top-K selection for ORDER BY ... LIMIT ---

// topKHeap keeps the k smallest output rows under the ORDER BY comparator
// instead of sorting the full input. Ties are broken by input sequence so
// the surviving rows are exactly the prefix a stable full sort would keep.
type topKHeap struct {
	orderBy []sqlparser.OrderItem
	k       int
	rows    [][]sheet.Value
	keys    [][]sheet.Value
	seq     []int
}

func newTopKHeap(orderBy []sqlparser.OrderItem, k int) *topKHeap {
	return &topKHeap{orderBy: orderBy, k: k}
}

func (h *topKHeap) Len() int { return len(h.rows) }

// Less orders the HEAP by "worst first" (max-heap on the sort order), so the
// root is the row to evict when a better one arrives.
func (h *topKHeap) Less(i, j int) bool {
	if c := compareOrderKeys(h.orderBy, h.keys[i], h.keys[j]); c != 0 {
		return c > 0
	}
	return h.seq[i] > h.seq[j]
}

func (h *topKHeap) Swap(i, j int) {
	h.rows[i], h.rows[j] = h.rows[j], h.rows[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.seq[i], h.seq[j] = h.seq[j], h.seq[i]
}

func (h *topKHeap) Push(x any) {
	e := x.(topKEntry)
	h.rows = append(h.rows, e.row)
	h.keys = append(h.keys, e.keys)
	h.seq = append(h.seq, e.seq)
}

func (h *topKHeap) Pop() any {
	n := len(h.rows) - 1
	e := topKEntry{row: h.rows[n], keys: h.keys[n], seq: h.seq[n]}
	h.rows, h.keys, h.seq = h.rows[:n], h.keys[:n], h.seq[:n]
	return e
}

type topKEntry struct {
	row  []sheet.Value
	keys []sheet.Value
	seq  int
}

// offer adds a candidate row, evicting the current worst once k rows are
// held. It reports whether the row was kept.
func (h *topKHeap) offer(row, keys []sheet.Value, seq int) bool {
	if h.k <= 0 {
		return false
	}
	if len(h.rows) < h.k {
		heap.Push(h, topKEntry{row: row, keys: keys, seq: seq})
		return true
	}
	// Compare against the worst kept row: keep the newcomer only if it
	// sorts strictly before it (sequence breaks ties, preserving the
	// stable-sort prefix).
	if c := compareOrderKeys(h.orderBy, keys, h.keys[0]); c > 0 || (c == 0 && seq > h.seq[0]) {
		return false
	}
	h.rows[0], h.keys[0], h.seq[0] = row, keys, seq
	heap.Fix(h, 0)
	return true
}

// finish returns the kept rows and keys sorted in output order.
func (h *topKHeap) finish() (rows [][]sheet.Value, keys [][]sheet.Value) {
	n := len(h.rows)
	rows = make([][]sheet.Value, n)
	keys = make([][]sheet.Value, n)
	for i := n - 1; i >= 0; i-- {
		e := heap.Pop(h).(topKEntry)
		rows[i], keys[i] = e.row, e.keys
	}
	return rows, keys
}

// compareOrderKeys orders two key vectors under the ORDER BY items with
// NULLs sorting last regardless of direction. It returns -1, 0 or +1.
func compareOrderKeys(orderBy []sqlparser.OrderItem, ka, kb []sheet.Value) int {
	for i, o := range orderBy {
		a, b := ka[i], kb[i]
		switch {
		case a.IsEmpty() && b.IsEmpty():
			continue
		case a.IsEmpty():
			return 1
		case b.IsEmpty():
			return -1
		}
		c := a.Compare(b)
		if c == 0 {
			continue
		}
		if o.Desc {
			return -c
		}
		return c
	}
	return 0
}
