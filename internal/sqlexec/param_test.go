package sqlexec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
)

// Late-bound access paths: a parameterized statement must choose the same
// index paths a literal statement would, with bounds resolved from the
// per-execution arguments, and its results must match the forced full scan
// row for row.

func TestPlaceholderAccessPathsGolden(t *testing.T) {
	ctx := context.Background()
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			db, s := newAccessDB(t, layout)
			cases := []struct {
				sql     string
				args    []sheet.Value
				explain string
			}{
				{"SELECT * FROM items WHERE id = ?", []sheet.Value{sheet.Number(137)}, "pk point (id)"},
				{"SELECT id FROM items WHERE id BETWEEN ? AND ?", []sheet.Value{sheet.Number(100), sheet.Number(120)}, "pk range (id)"},
				{"SELECT id, name FROM items WHERE id >= ?", []sheet.Value{sheet.Number(380)}, "pk range (id)"},
				{"SELECT id, v FROM items WHERE id IN (?, ?, ?)", []sheet.Value{sheet.Number(11), sheet.Number(222), sheet.Number(333)}, "pk in-list (id, 3 probes)"},
				{"SELECT id FROM items WHERE grp = ?", []sheet.Value{sheet.Number(3)}, "index idx_grp point (grp)"},
				// A NULL argument cannot be a sarg: equality with NULL is
				// never true, and the full predicate decides.
				{"SELECT id FROM items WHERE id = ?", []sheet.Value{sheet.Empty()}, ""},
			}
			for _, c := range cases {
				p, err := db.Prepare(c.sql)
				if err != nil {
					t.Fatalf("%s: %v", c.sql, err)
				}
				indexed, err := s.ExecutePreparedContext(ctx, p, c.args...)
				if err != nil {
					t.Fatalf("%s: %v", c.sql, err)
				}
				db.SetForceFullScan(true)
				full, err := s.ExecutePreparedContext(ctx, p, c.args...)
				db.SetForceFullScan(false)
				if err != nil {
					t.Fatalf("%s (full scan): %v", c.sql, err)
				}
				if diff := resultsEqual(indexed, full); diff != "" {
					t.Fatalf("%s: index path diverges from full scan: %s", c.sql, diff)
				}
				if c.explain == "" {
					continue
				}
				expl, err := s.QueryContext(ctx, "EXPLAIN "+c.sql, c.args...)
				if err != nil {
					t.Fatalf("EXPLAIN %s: %v", c.sql, err)
				}
				var lines []string
				for _, row := range expl.Rows {
					lines = append(lines, row[0].String())
				}
				plan := strings.Join(lines, "\n")
				if !strings.Contains(plan, c.explain) {
					t.Fatalf("EXPLAIN %s with args: plan %q does not contain %q", c.sql, plan, c.explain)
				}
			}
		})
	}
}

// The same prepared statement, executed twice with different arguments,
// takes different point paths — the bounds are per-execution, not baked in
// at prepare time.
func TestPlaceholderRebindsPerExecution(t *testing.T) {
	ctx := context.Background()
	db, s := newAccessDB(t, LayoutHybrid)
	const sql = "SELECT name FROM items WHERE id = ?"
	before := db.PlanCacheStats()
	// The Query path re-prepares the same text per call — the literal-SQL
	// miss storm becomes hits because '?' keeps the text stable.
	for _, id := range []float64{3, 250, 399} {
		res, err := s.QueryContext(ctx, sql, sheet.Number(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("id %v: got %d rows", id, len(res.Rows))
		}
	}
	stats := db.PlanCacheStats()
	if misses := stats.Misses - before.Misses; misses != 1 {
		t.Fatalf("parameterized text missed the cache %d times, want 1 (%+v -> %+v)", misses, before, stats)
	}
	if hits := stats.Hits - before.Hits; hits < 2 {
		t.Fatalf("parameterized text hit the cache %d times, want >= 2", hits)
	}
}

func TestPlaceholderParamCountMismatch(t *testing.T) {
	ctx := context.Background()
	db, s := newAccessDB(t, LayoutHybrid)
	p, err := db.Prepare("SELECT id FROM items WHERE id = ? AND grp = ?")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", p.NumParams())
	}
	_, err = s.ExecutePreparedContext(ctx, p, sheet.Number(1))
	if !errors.Is(err, dberr.ErrParamCount) {
		t.Fatalf("want ErrParamCount, got %v", err)
	}
}

// Placeholders in DML: the UPDATE/DELETE target narrowing also resolves
// bounds per execution.
func TestPlaceholderDML(t *testing.T) {
	ctx := context.Background()
	db, s := newAccessDB(t, LayoutHybrid)
	res, err := s.QueryContext(ctx, "UPDATE items SET v = ? WHERE id = ?", sheet.Number(-5), sheet.Number(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("update affected %d, want 1", res.Affected)
	}
	check, err := s.QueryContext(ctx, "SELECT v FROM items WHERE id = ?", sheet.Number(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(check.Rows) != 1 || check.Rows[0][0].String() != "-5" {
		t.Fatalf("update not visible: %v", check.Rows)
	}
	res, err = s.QueryContext(ctx, "DELETE FROM items WHERE id IN (?, ?)", sheet.Number(1), sheet.Number(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("delete affected %d, want 2", res.Affected)
	}
	_ = db
}

// Streamed results must match materialised results for the same statement.
func TestStreamMatchesMaterialized(t *testing.T) {
	ctx := context.Background()
	db, s := newAccessDB(t, LayoutHybrid)
	for _, sql := range []string{
		"SELECT id, name FROM items WHERE grp = ?",
		"SELECT id FROM items WHERE id BETWEEN ? AND ?",
		"SELECT * FROM items WHERE v > ? ORDER BY id LIMIT 7", // falls back to materialised
	} {
		p, err := db.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		args := make([]sheet.Value, p.NumParams())
		for i := range args {
			args[i] = sheet.Number(float64(3 + i*100))
		}
		mat, err := s.ExecutePreparedContext(ctx, p, args...)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := s.StreamPrepared(ctx, p, args...)
		if err != nil {
			t.Fatal(err)
		}
		streamed := &Result{Columns: rows.Columns()}
		for rows.Next() {
			streamed.Rows = append(streamed.Rows, rows.Row())
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		if diff := resultsEqual(mat, streamed); diff != "" {
			t.Fatalf("%s: stream diverges from materialised: %s", sql, diff)
		}
	}
}
