package sqlexec

import (
	"encoding/binary"
	"hash/maphash"
	"math"
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
)

// Typed join/group/distinct keys. The executor used to build hash keys with
// fmt.Fprintf into a strings.Builder, allocating a formatted string per row
// on every hash join, GROUP BY and DISTINCT. normValue is the comparable
// replacement: a normalized struct form of one sheet.Value, composed into
// flat arenas by keyIndex so composite keys never allocate per row.

// normValue is the normalized, comparable form of one sheet.Value used as a
// key component. Two values normalize identically exactly when the legacy
// string hashKey considered them equal.
type normValue struct {
	kind sheet.Kind
	num  float64
	str  string
}

// normKeyValue mirrors the legacy hashKey normalization (which itself
// mirrors sheet.Value.Equal): any value that coerces to a number and is not
// a string keys numerically — so 1, TRUE and the empty cell key as 1, 1 and
// 0 respectively — while strings key case-insensitively. NaN folds to a
// sentinel so all NaNs share one key (float comparison would keep every NaN
// distinct).
func normKeyValue(v sheet.Value) normValue {
	if f, ok := v.AsNumber(); ok && v.Kind != sheet.KindString {
		if math.IsNaN(f) {
			return normValue{kind: sheet.KindNumber, str: "NaN"}
		}
		return normValue{kind: sheet.KindNumber, num: f}
	}
	return normValue{kind: v.Kind, str: strings.ToLower(v.String())}
}

// normDistinctValue is the stricter normalization used by DISTINCT
// aggregates (COUNT(DISTINCT x), ...): values of different kinds never
// collide — matching the legacy "kind:lowered-string" dedup key — but
// numbers and booleans key on their numeric field to avoid formatting.
func normDistinctValue(v sheet.Value) normValue {
	switch v.Kind {
	case sheet.KindNumber:
		if math.IsNaN(v.Num) {
			return normValue{kind: sheet.KindNumber, str: "NaN"}
		}
		return normValue{kind: sheet.KindNumber, num: v.Num}
	case sheet.KindBool:
		if v.Bool {
			return normValue{kind: sheet.KindBool, num: 1}
		}
		return normValue{kind: sheet.KindBool}
	case sheet.KindString:
		return normValue{kind: sheet.KindString, str: strings.ToLower(v.Str)}
	case sheet.KindError:
		return normValue{kind: sheet.KindError, str: strings.ToLower(v.Err)}
	default:
		return normValue{kind: sheet.KindEmpty}
	}
}

// normalizeRowKey fills dst with the normalized key of the given columns of
// row (missing columns key as empty, as the legacy hashKey did).
func normalizeRowKey(dst []normValue, row []sheet.Value, cols []int) []normValue {
	dst = dst[:0]
	for _, c := range cols {
		v := sheet.Empty()
		if c < len(row) {
			v = row[c]
		}
		dst = append(dst, normKeyValue(v))
	}
	return dst
}

// keyIndex is a hash index over composite normalized keys. Key components
// live in one flat arena (arity values per slot), so inserting or probing a
// key allocates nothing beyond amortized arena growth. Slots are numbered in
// first-insertion order, which GROUP BY relies on for deterministic output.
type keyIndex struct {
	arity   int
	seed    maphash.Seed
	arena   []normValue
	rows    [][]int32 // per-slot build-side row lists (hash join)
	buckets map[uint64][]int32
}

func newKeyIndex(arity int) *keyIndex {
	return &keyIndex{
		arity:   arity,
		seed:    maphash.MakeSeed(),
		buckets: make(map[uint64][]int32),
	}
}

// hash folds the key into one maphash sum. Zero is written for the numeric
// field of ±0 so the two (equal under ==) always land in one bucket.
func (ix *keyIndex) hash(key []normValue) uint64 {
	var h maphash.Hash
	h.SetSeed(ix.seed)
	var buf [9]byte
	for _, k := range key {
		n := k.num
		if n == 0 {
			n = 0 // fold -0 into +0
		}
		buf[0] = byte(k.kind)
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(n))
		_, _ = h.Write(buf[:])
		_, _ = h.WriteString(k.str)
		_ = h.WriteByte(0xfe)
	}
	return h.Sum64()
}

func (ix *keyIndex) equalAt(slot int, key []normValue) bool {
	base := slot * ix.arity
	for i, k := range key {
		if ix.arena[base+i] != k {
			return false
		}
	}
	return true
}

// getOrAdd returns the slot holding key, adding a new slot when absent.
func (ix *keyIndex) getOrAdd(key []normValue) (slot int, added bool) {
	h := ix.hash(key)
	for _, si := range ix.buckets[h] {
		if ix.equalAt(int(si), key) {
			return int(si), false
		}
	}
	slot = len(ix.rows)
	ix.arena = append(ix.arena, key...)
	ix.rows = append(ix.rows, nil)
	ix.buckets[h] = append(ix.buckets[h], int32(slot))
	return slot, true
}

// lookup returns the slot holding key, or -1.
func (ix *keyIndex) lookup(key []normValue) int {
	h := ix.hash(key)
	for _, si := range ix.buckets[h] {
		if ix.equalAt(int(si), key) {
			return int(si)
		}
	}
	return -1
}

// addRow appends a build-side row index to a slot's match list.
func (ix *keyIndex) addRow(slot, row int) {
	ix.rows[slot] = append(ix.rows[slot], int32(row))
}

// matches returns the build-side rows recorded for a slot.
func (ix *keyIndex) matches(slot int) []int32 { return ix.rows[slot] }

// size returns the number of distinct keys inserted.
func (ix *keyIndex) size() int { return len(ix.rows) }

// valueArena hands out small []sheet.Value rows carved from chunked backing
// arrays, replacing one heap allocation per row on the scan and projection
// paths with one per few hundred rows.
type valueArena struct {
	buf []sheet.Value
}

// take returns a zeroed slice of n values.
func (a *valueArena) take(n int) []sheet.Value {
	if n == 0 {
		return nil
	}
	if len(a.buf) < n {
		size := 256 * n
		if size < 1024 {
			size = 1024
		}
		a.buf = make([]sheet.Value, size)
	}
	out := a.buf[:n:n]
	a.buf = a.buf[n:]
	return out
}

// clone copies row into arena-backed storage.
func (a *valueArena) clone(row []sheet.Value) []sheet.Value {
	out := a.take(len(row))
	copy(out, row)
	return out
}
