package sqlexec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// Morsel-driven parallel execution. Eligible pipeline fragments — the
// filtered scan of a named table, the fold phase of GROUP BY, and the
// build/probe phases of a hash join — fan out over a bounded worker pool
// sized by Config.Workers (default GOMAXPROCS). The unit of work is a
// morsel: one contiguous partition of the input (a page range of a table
// snapshot, or a row range of a materialised relation). Workers pull morsels
// from a shared atomic cursor, so a worker that finishes early steals the
// remaining work instead of idling behind a skewed partition.
//
// Two invariants keep parallel plans exchangeable with serial ones:
//
//   - Readers never touch the engine lock. A parallel table scan pins a
//     BufferPool epoch through tablestore.Snapshotter (the lock is held only
//     for the Snapshot() call itself), and every morsel then reads frozen
//     page versions with no lock at all — writers never block readers and
//     readers never block writers.
//   - Output is row-for-row identical to the serial executor. Morsel results
//     are concatenated in partition order (= serial scan order); merged
//     GROUP BY groups keep first-appearance order; partitioned hash joins
//     probe the per-partition build indexes in partition order so matches
//     surface in build-row order. SetForceSerial golden tests hold the two
//     executors to byte equality.
//
// Compiled expression trees (boundExpr) carry per-tree scratch buffers, so
// every worker gets its own compile of the predicates/expressions it
// evaluates; the compiles run sequentially in the coordinator because
// compilation itself may fold RANGEVALUE references through the shared
// SheetAccessor.

// parMinRows is the input size below which parallel execution is not worth
// the fan-out overhead and fragments stay serial.
const parMinRows = 4096

// morselsPerWorker is the partition over-split factor: more morsels than
// workers keeps the pool balanced when partitions carry skewed row counts.
const morselsPerWorker = 4

// parWorkers returns the worker-pool size for parallel fragments: 1 when
// parallel execution is disabled (SetForceSerial), else Config.Workers,
// defaulting to GOMAXPROCS.
func (db *Database) parWorkers() int {
	if db.forceSerial.Load() {
		return 1
	}
	w := int(db.workersOverride.Load())
	if w <= 0 {
		w = db.cfg.Workers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// parPoll is a per-worker cancellation poller. execEnv.check counts ticks on
// the shared execEnv and is therefore not safe for concurrent use; each
// worker polls the context through its own counter instead.
type parPoll struct {
	ctx   context.Context
	ticks int
}

// check polls the worker's context every ctxCheckInterval rows.
//
// dslint:poll
func (p *parPoll) check() error {
	if p.ctx == nil {
		return nil
	}
	p.ticks++
	if p.ticks%ctxCheckInterval != 0 {
		return nil
	}
	select {
	case <-p.ctx.Done():
		return p.ctx.Err()
	default:
		return nil
	}
}

// parRun fans fn out over workers goroutines and returns the first error in
// worker order. fn must not touch the engine lock: the callers' fragments
// run concurrently with writers that hold it.
func parRun(workers int, fn func(w int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitRows cuts [0, total) into at most n non-empty contiguous ranges.
func splitRows(total, n int) [][2]int {
	if total <= 0 || n <= 0 {
		return nil
	}
	if n > total {
		n = total
	}
	out := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := total*i/n, total*(i+1)/n
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// --- parallel table scan ---

// parScanSource scans one named-table FROM source through a pinned snapshot
// with the worker pool: morsels are page-range partitions of the snapshot,
// each worker filters its morsels with its own compiled predicate tree, and
// the per-morsel outputs concatenate in partition order (= serial scan
// order). It reports handled=false when the fragment is not eligible —
// small table, index access path, serial mode, or a store without snapshot
// support — and the caller falls back to the locked serial scan.
func (db *Database) parScanSource(s *srcState, cols []colDesc, scanCols []int, env *execEnv) (rel *relation, handled bool, err error) {
	workers := db.parWorkers()
	if workers <= 1 || s.store == nil {
		return nil, false, nil
	}
	if s.path != nil && s.path.kind != pathFull {
		return nil, false, nil
	}
	snapper, ok := s.store.(tablestore.Snapshotter)
	if !ok || s.store.RowCount() < parMinRows {
		return nil, false, nil
	}
	// One predicate compile per worker, sequentially: compilation may fold
	// RANGEVALUE through the shared sheet accessor, and the resulting trees
	// carry per-tree scratch.
	preds := make([][]boundExpr, workers)
	for w := range preds {
		if preds[w], err = compilePredicates(s.pushed, cols, env); err != nil {
			return nil, false, err
		}
	}
	// The engine lock is held only while the snapshot pins its epoch;
	// every page read below runs lock-free against frozen versions.
	db.mu.RLock()
	snap := snapper.Snapshot()
	db.mu.RUnlock()
	defer snap.Release()

	// Zone-map bounds drop provably matchless page ranges before morsel
	// distribution, so skipped pages never reach a worker. usedPrune (not a
	// nil check) gates the fallback: an empty pruned partition list is a
	// valid result — every page was skipped.
	var parts []tablestore.Partition
	usedPrune := false
	if len(s.zoneBounds) > 0 {
		if psnap, ok := snap.(tablestore.PrunedSnap); ok {
			var read, skip int
			parts, read, skip = psnap.PartitionsPruned(workers*morselsPerWorker, scanCols, s.zoneBounds)
			db.pagesRead.Add(int64(read))
			db.pagesSkipped.Add(int64(skip))
			usedPrune = true
		}
	}
	if !usedPrune {
		parts = snap.Partitions(workers * morselsPerWorker)
	}
	if len(parts) == 0 {
		return &relation{cols: cols}, true, nil
	}
	stable := snap.ScanColsStable(scanCols)
	results := make([][][]sheet.Value, len(parts))
	var cursor atomic.Int64
	err = parRun(workers, func(w int) error {
		return scanMorsels(snap, parts, &cursor, scanCols, preds[w], stable, env, results)
	})
	if err != nil {
		return nil, false, err
	}
	rel = &relation{cols: cols}
	total := 0
	for _, rs := range results {
		total += len(rs)
	}
	rel.rows = make([][]sheet.Value, 0, total)
	for _, rs := range results {
		rel.rows = append(rel.rows, rs...)
	}
	return rel, true, nil
}

// scanMorsels is one scan worker: it pulls morsel indexes from the shared
// cursor until the queue drains, filtering each page-range partition into
// its slot of results. It runs concurrently with writers and must never
// acquire the engine lock — the snapshot serves frozen page versions
// without it.
//
// dslint:nolock(engine)
func scanMorsels(snap tablestore.TableSnap, parts []tablestore.Partition, cursor *atomic.Int64, scanCols []int, preds []boundExpr, stable bool, env *execEnv, results [][][]sheet.Value) error {
	ctx := env.newRowCtx()
	poll := parPoll{ctx: envCtx(env)}
	var arena valueArena
	for {
		i := int(cursor.Add(1)) - 1
		if i >= len(parts) {
			return nil
		}
		var out [][]sheet.Value
		var innerErr error
		err := snap.ScanColsRange(parts[i], scanCols, func(_ tablestore.RowID, row []sheet.Value) bool {
			if innerErr = poll.check(); innerErr != nil {
				return false
			}
			ctx.row = row
			keep, err := allPredicates(preds, ctx)
			if err != nil {
				innerErr = err
				return false
			}
			if keep {
				if !stable {
					row = arena.clone(row)
				}
				out = append(out, row)
			}
			return true
		})
		if err == nil {
			err = innerErr
		}
		if err != nil {
			return err
		}
		results[i] = out
	}
}

// envCtx returns the execution's context (nil-safe).
func envCtx(env *execEnv) context.Context {
	if env == nil {
		return nil
	}
	return env.ctx
}

// --- parallel GROUP BY fold ---

// groupCompile is one worker's private compile of a grouped projection: the
// aggregate registry its fold updates and the bound GROUP BY expressions.
type groupCompile struct {
	reg     *aggRegistry
	groupBy []boundExpr
}

// compileGroupWorker reproduces the grouped projection's compile for one
// worker. Compilation is deterministic, so the worker registry's spec slots
// line up with the coordinator's and per-slot accumulators can merge.
func compileGroupWorker(stmt *sqlparser.SelectStmt, items []sqlparser.SelectItem, rel *relation, env *execEnv) (*groupCompile, error) {
	gc := &groupCompile{reg: &aggRegistry{}}
	cenv := env.compileEnv(rel.cols)
	cenv.aggs = gc.reg
	for _, item := range items {
		if _, err := compileExpr(item.Expr, cenv); err != nil {
			return nil, err
		}
	}
	if stmt.Having != nil {
		if _, err := compileExpr(stmt.Having, cenv); err != nil {
			return nil, err
		}
	}
	rowEnv := env.compileEnv(rel.cols)
	gc.groupBy = make([]boundExpr, len(stmt.GroupBy))
	var err error
	for i, g := range stmt.GroupBy {
		if gc.groupBy[i], err = compileExpr(g, rowEnv); err != nil {
			return nil, err
		}
	}
	return gc, nil
}

// parFoldGroups runs the GROUP BY fold phase with the worker pool: each
// worker folds a contiguous row range into its own hash of groups, and the
// per-worker groups merge in partition order — which preserves the serial
// executor's first-appearance group order — with per-slot accumulator
// merging. It reports handled=false when the fragment is not eligible
// (small input, serial mode, or DISTINCT aggregates, whose dedup sets do
// not merge).
func (db *Database) parFoldGroups(stmt *sqlparser.SelectStmt, items []sqlparser.SelectItem, rel *relation, reg *aggRegistry, env *execEnv) (groups []*groupState, handled bool, err error) {
	workers := db.parWorkers()
	if workers <= 1 || len(rel.rows) < parMinRows {
		return nil, false, nil
	}
	for _, sp := range reg.specs {
		if sp.distinct {
			return nil, false, nil
		}
	}
	compiles := make([]*groupCompile, workers)
	for w := range compiles {
		if compiles[w], err = compileGroupWorker(stmt, items, rel, env); err != nil {
			return nil, false, err
		}
		if len(compiles[w].reg.specs) != len(reg.specs) {
			return nil, false, nil
		}
	}

	ranges := splitRows(len(rel.rows), workers)
	type workerFold struct {
		ix     *keyIndex
		groups []*groupState
	}
	folds := make([]workerFold, len(ranges))
	err = parRun(len(ranges), func(w int) error {
		gc := compiles[w]
		fold := &folds[w]
		ctx := env.newRowCtx()
		poll := parPoll{ctx: envCtx(env)}
		var keyBuf []normValue
		if len(gc.groupBy) == 0 {
			fold.groups = append(fold.groups, &groupState{accs: make([]aggState, len(gc.reg.specs))})
		} else {
			fold.ix = newKeyIndex(len(gc.groupBy))
			keyBuf = make([]normValue, 0, len(gc.groupBy))
		}
		for _, row := range rel.rows[ranges[w][0]:ranges[w][1]] {
			if err := poll.check(); err != nil {
				return err
			}
			ctx.row = row
			var cur *groupState
			if fold.ix == nil {
				cur = fold.groups[0]
			} else {
				keyBuf = keyBuf[:0]
				for _, ge := range gc.groupBy {
					v, err := ge.eval(ctx)
					if err != nil {
						return err
					}
					keyBuf = append(keyBuf, normKeyValue(v))
				}
				slot, added := fold.ix.getOrAdd(keyBuf)
				if added {
					fold.groups = append(fold.groups, &groupState{accs: make([]aggState, len(gc.reg.specs))})
				}
				cur = fold.groups[slot]
			}
			if !cur.hasRep {
				cur.rep, cur.hasRep = row, true
			}
			for i, sp := range gc.reg.specs {
				if err := sp.update(&cur.accs[i], ctx); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}

	// Merge per-worker folds in partition order. Contiguous partitions mean
	// first appearance across (worker order, slot order) equals first
	// appearance across the serial row order.
	if len(stmt.GroupBy) == 0 {
		merged := &groupState{accs: make([]aggState, len(reg.specs))}
		for _, fold := range folds {
			mergeGroup(reg, merged, fold.groups[0])
		}
		return []*groupState{merged}, true, nil
	}
	ix := newKeyIndex(len(stmt.GroupBy))
	for _, fold := range folds {
		if fold.ix == nil {
			continue
		}
		for slot, g := range fold.groups {
			key := fold.ix.arena[slot*fold.ix.arity : (slot+1)*fold.ix.arity]
			gslot, added := ix.getOrAdd(key)
			if added {
				groups = append(groups, &groupState{accs: make([]aggState, len(reg.specs))})
			}
			mergeGroup(reg, groups[gslot], g)
		}
	}
	return groups, true, nil
}

// mergeGroup folds one worker-local group into the merged group: the
// representative row of the earliest contributing partition wins (= the
// serial first row of the group) and the accumulators combine per slot.
func mergeGroup(reg *aggRegistry, dst, src *groupState) {
	if !dst.hasRep && src.hasRep {
		dst.rep, dst.hasRep = src.rep, true
	}
	for i, sp := range reg.specs {
		mergeAggState(sp, &dst.accs[i], &src.accs[i])
	}
}

// mergeAggState combines two accumulators of one aggregate. DISTINCT
// accumulators never reach here (parFoldGroups falls back to serial).
func mergeAggState(sp *aggSpec, dst, src *aggState) {
	switch sp.name {
	case "COUNT":
		dst.n += src.n
	case "SUM", "AVG":
		dst.sum += src.sum
		dst.n += src.n
	default: // MIN, MAX
		if !src.hasBest {
			return
		}
		if !dst.hasBest {
			dst.best, dst.hasBest = src.best, true
			return
		}
		c := src.best.Compare(dst.best)
		if (sp.name == "MIN" && c < 0) || (sp.name == "MAX" && c > 0) {
			dst.best = src.best
		}
	}
}

// --- parallel hash join ---

// parBuildIndexes builds the hash-join build side as one keyIndex per
// contiguous partition of the build rows, in parallel. Row indexes stored in
// each partition's index are global build-side row numbers, so probing the
// indexes in partition order yields matches in ascending build-row order —
// exactly the serial single-index match order.
func parBuildIndexes(rows [][]sheet.Value, keys []int, workers int, env *execEnv) ([]*keyIndex, error) {
	ranges := splitRows(len(rows), workers)
	if len(ranges) == 0 {
		return nil, nil
	}
	indexes := make([]*keyIndex, len(ranges))
	err := parRun(len(ranges), func(w int) error {
		poll := parPoll{ctx: envCtx(env)}
		ix := newKeyIndex(len(keys))
		keyBuf := make([]normValue, 0, len(keys))
		for ri := ranges[w][0]; ri < ranges[w][1]; ri++ {
			if err := poll.check(); err != nil {
				return err
			}
			keyBuf = normalizeRowKey(keyBuf, rows[ri], keys)
			slot, _ := ix.getOrAdd(keyBuf)
			ix.addRow(slot, ri)
		}
		indexes[w] = ix
		return nil
	})
	if err != nil {
		return nil, err
	}
	return indexes, nil
}

// probeIndexes walks the partitioned build indexes in partition order,
// appending the global build-row matches for key to dst.
func probeIndexes(indexes []*keyIndex, key []normValue, dst []int32) []int32 {
	for _, ix := range indexes {
		if slot := ix.lookup(key); slot >= 0 {
			dst = append(dst, ix.matches(slot)...)
		}
	}
	return dst
}

// parHashJoinEligible reports whether a hash join is worth fanning out.
func (db *Database) parHashJoinEligible(left, right *relation) (workers int, ok bool) {
	workers = db.parWorkers()
	if workers <= 1 {
		return 0, false
	}
	if len(left.rows) < parMinRows && len(right.rows) < parMinRows {
		return 0, false
	}
	return workers, true
}

// parHashJoinKeyed runs the NATURAL/USING hash join (key equality only, no
// ON predicate) with the worker pool: partitioned build, then parallel
// probe over contiguous left-row ranges whose outputs concatenate in range
// order (= serial left order).
func parHashJoinKeyed(left, right *relation, leftKeys, rightKeys []int, joinType sqlparser.JoinType, pad []sheet.Value, projectRight func([]sheet.Value) []sheet.Value, workers int, env *execEnv) ([][]sheet.Value, error) {
	indexes, err := parBuildIndexes(right.rows, rightKeys, workers, env)
	if err != nil {
		return nil, err
	}
	ranges := splitRows(len(left.rows), workers)
	outs := make([][][]sheet.Value, len(ranges))
	err = parRun(len(ranges), func(w int) error {
		poll := parPoll{ctx: envCtx(env)}
		keyBuf := make([]normValue, 0, len(leftKeys))
		var matchBuf []int32
		var out [][]sheet.Value
		for _, lrow := range left.rows[ranges[w][0]:ranges[w][1]] {
			if err := poll.check(); err != nil {
				return err
			}
			keyBuf = normalizeRowKey(keyBuf, lrow, leftKeys)
			matchBuf = probeIndexes(indexes, keyBuf, matchBuf[:0])
			if len(matchBuf) == 0 {
				if joinType == sqlparser.JoinLeft {
					out = append(out, concatRows(lrow, pad))
				}
				continue
			}
			for _, ri := range matchBuf {
				out = append(out, concatRows(lrow, projectRight(right.rows[ri])))
			}
		}
		outs[w] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows [][]sheet.Value
	for _, o := range outs {
		rows = append(rows, o...)
	}
	return rows, nil
}

// parHashJoinOn runs the equi-key ON hash join with the worker pool. Every
// probe worker evaluates its own compile of the ON predicate against its
// own scratch row, exactly as the serial path does per candidate.
func parHashJoinOn(left, right *relation, lk, rk []int, join sqlparser.Join, outCols []colDesc, pad []sheet.Value, workers int, env *execEnv) ([][]sheet.Value, error) {
	ons := make([]boundExpr, workers)
	var err error
	for w := range ons {
		if ons[w], err = compileExpr(join.On, env.compileEnv(outCols)); err != nil {
			return nil, err
		}
	}
	indexes, err := parBuildIndexes(right.rows, rk, workers, env)
	if err != nil {
		return nil, err
	}
	leftWidth := len(left.cols)
	ranges := splitRows(len(left.rows), workers)
	outs := make([][][]sheet.Value, len(ranges))
	err = parRun(len(ranges), func(w int) error {
		on := ons[w]
		ctx := env.newRowCtx()
		poll := parPoll{ctx: envCtx(env)}
		scratch := make([]sheet.Value, len(left.cols)+len(right.cols))
		keyBuf := make([]normValue, 0, len(lk))
		var matchBuf []int32
		var out [][]sheet.Value
		for _, lrow := range left.rows[ranges[w][0]:ranges[w][1]] {
			if err := poll.check(); err != nil {
				return err
			}
			keyBuf = normalizeRowKey(keyBuf, lrow, lk)
			matchBuf = probeIndexes(indexes, keyBuf, matchBuf[:0])
			matched := false
			if len(matchBuf) > 0 {
				copy(scratch, lrow)
				for _, ri := range matchBuf {
					copy(scratch[leftWidth:], right.rows[ri])
					ctx.row = scratch
					keep, err := evalBoundPredicate(on, ctx)
					if err != nil {
						return err
					}
					if keep {
						out = append(out, concatRows(lrow, right.rows[ri]))
						matched = true
					}
				}
			}
			if !matched && join.Type == sqlparser.JoinLeft {
				out = append(out, concatRows(lrow, pad))
			}
		}
		outs[w] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows [][]sheet.Value
	for _, o := range outs {
		rows = append(rows, o...)
	}
	return rows, nil
}
