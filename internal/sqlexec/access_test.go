package sqlexec

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

// The golden access-path tests: for every query shape and every physical
// layout, the result of the planner-chosen index path must be row-for-row
// identical to the forced full scan, and EXPLAIN must report the expected
// path.

// newAccessDB builds a deterministic test table with a numeric primary key,
// a non-unique secondary index and a text column, inserting rows in a
// shuffled key order so RowID order and key order differ.
func newAccessDB(t *testing.T, layout Layout) (*Database, *Session) {
	t.Helper()
	db := NewDatabase(Config{Layout: layout})
	s := db.NewSession(newFakeSheets())
	mustExec(t, s, "CREATE TABLE items (id INT PRIMARY KEY, grp INT, v NUMERIC, name TEXT)")
	const n = 400
	for i := 0; i < n; i++ {
		// Multiplicative shuffle: ids 0..n-1 in scrambled insertion order.
		id := (i*17 + 5) % n
		row := []sheet.Value{
			sheet.Number(float64(id)),
			sheet.Number(float64(id % 7)),
			sheet.Number(float64(id) / 3),
			sheet.String_(fmt.Sprintf("n%03d", id)),
		}
		if id%25 == 0 {
			row[1] = sheet.Empty() // NULL group
		}
		if _, err := db.Insert("items", row); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, s, "CREATE INDEX idx_grp ON items (grp)")
	return db, s
}

// resultsEqual compares two results exactly: same columns, same rows in the
// same order, same values.
func resultsEqual(a, b *Result) string {
	if strings.Join(a.Columns, ",") != strings.Join(b.Columns, ",") {
		return fmt.Sprintf("columns differ: %v vs %v", a.Columns, b.Columns)
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return fmt.Sprintf("row %d widths differ", i)
		}
		for j := range a.Rows[i] {
			va, vb := a.Rows[i][j], b.Rows[i][j]
			if va.Kind != vb.Kind || va.String() != vb.String() {
				return fmt.Sprintf("row %d col %d differs: %q vs %q", i, j, va.String(), vb.String())
			}
		}
	}
	return ""
}

// goldenQueries maps each query shape to the substring its EXPLAIN must
// report for the items source (empty = no EXPLAIN assertion).
var goldenQueries = []struct {
	sql     string
	explain string
}{
	{"SELECT * FROM items WHERE id = 137", "pk point (id)"},
	{"SELECT id, v FROM items WHERE id = -1", "pk point (id)"},
	{"SELECT id, name FROM items WHERE id = 137 AND v > 0", "pk point (id)"},
	{"SELECT id FROM items WHERE id BETWEEN 100 AND 120", "pk range (id)"},
	{"SELECT id, name FROM items WHERE id >= 380", "pk range (id)"},
	{"SELECT id FROM items WHERE id > 100 AND id <= 110 AND v > 0", "pk range (id)"},
	{"SELECT id FROM items WHERE 100 < id AND 110 >= id", "pk range (id)"},
	{"SELECT id, grp FROM items WHERE grp = 3 AND v > 10", "index idx_grp point (grp)"},
	{"SELECT id FROM items WHERE grp = 3 ORDER BY id", "index idx_grp point (grp)"},
	{"SELECT id FROM items WHERE grp >= 5", "index idx_grp range (grp)"},
	{"SELECT id FROM items ORDER BY id LIMIT 7", "index-ordered"},
	{"SELECT id FROM items ORDER BY id DESC LIMIT 7", "index-ordered"},
	{"SELECT id FROM items ORDER BY id LIMIT 5 OFFSET 3", "index-ordered"},
	{"SELECT id FROM items WHERE v > 50 ORDER BY id LIMIT 9", "index-ordered"},
	{"SELECT id FROM items WHERE id > 200 ORDER BY id LIMIT 5", "pk range (id), index-ordered"},
	{"SELECT id, grp FROM items ORDER BY grp LIMIT 10", "index idx_grp scan, index-ordered"},
	{"SELECT id, v FROM items WHERE id IN (3, 17, 17, 250, 9999)", "pk in-list (id, 4 probes)"},
	{"SELECT id FROM items WHERE id IN (5)", "pk in-list (id, 1 probes)"},
	{"SELECT id, v FROM items WHERE id IN (2, 4, 6) AND v > 0.5", "pk in-list (id, 3 probes)"},
	{"SELECT id, grp FROM items WHERE grp IN (2, 5)", "index idx_grp in-list (grp, 2 probes)"},
	{"SELECT id FROM items WHERE grp IN (1, 3) ORDER BY id", "index idx_grp in-list (grp, 2 probes)"},
	{"SELECT id FROM items WHERE id NOT IN (1, 2)", "full scan"},
	{"SELECT id FROM items WHERE name IN ('n001', 'n002')", "full scan"},
	{"SELECT id FROM items WHERE id IN (1, 'zzz')", "full scan"},
	{"SELECT name FROM items WHERE name = 'n007'", "full scan"},
	{"SELECT id FROM items WHERE grp = 3 OR id = 2", "full scan"},
	{"SELECT COUNT(*) FROM items WHERE id BETWEEN 50 AND 60", "pk range (id)"},
	{"SELECT a.id, b.id FROM items a JOIN items b ON a.id = b.grp WHERE a.id < 20", "pk range (id)"},
	{"SELECT id FROM items WHERE id = 10 OR FALSE", ""},
}

func TestAccessPathGoldenEquivalence(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			db, s := newAccessDB(t, layout)
			for _, q := range goldenQueries {
				db.SetForceFullScan(true)
				want := mustExec(t, s, q.sql)
				db.SetForceFullScan(false)
				got := mustExec(t, s, q.sql)
				if diff := resultsEqual(want, got); diff != "" {
					t.Errorf("%s: index path diverges from full scan: %s", q.sql, diff)
				}
				if q.explain == "" {
					continue
				}
				plan := mustExec(t, s, "EXPLAIN "+q.sql)
				text := planText(plan)
				if !strings.Contains(text, q.explain) {
					t.Errorf("EXPLAIN %s = %q, want substring %q", q.sql, text, q.explain)
				}
			}
		})
	}
}

func planText(res *Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		sb.WriteString(row[0].String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestAccessPathAfterMutations re-checks equivalence after deletes, updates
// (including key-moving updates) and fresh inserts, proving the indexes are
// maintained transactionally with the base table.
func TestAccessPathAfterMutations(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			db, s := newAccessDB(t, layout)
			mustExec(t, s, "DELETE FROM items WHERE id BETWEEN 100 AND 140")
			mustExec(t, s, "UPDATE items SET grp = 99 WHERE id >= 300 AND id < 320")
			mustExec(t, s, "UPDATE items SET id = 1000 WHERE id = 7")
			mustExec(t, s, "INSERT INTO items VALUES (2000, 3, 1.5, 'fresh')")
			// A rolled-back transaction must leave the indexes untouched.
			mustExec(t, s, "BEGIN")
			mustExec(t, s, "INSERT INTO items VALUES (3000, 3, 9, 'ghost')")
			mustExec(t, s, "DELETE FROM items WHERE id = 2000")
			mustExec(t, s, "ROLLBACK")
			for _, sql := range []string{
				"SELECT id FROM items WHERE id = 7",
				"SELECT id FROM items WHERE id = 1000",
				"SELECT id FROM items WHERE id = 3000",
				"SELECT id, name FROM items WHERE id = 2000",
				"SELECT id FROM items WHERE id BETWEEN 90 AND 150",
				"SELECT id FROM items WHERE grp = 99 ORDER BY id",
				"SELECT id FROM items WHERE grp = 3 AND v > 1",
				"SELECT id FROM items ORDER BY id DESC LIMIT 12",
			} {
				db.SetForceFullScan(true)
				want := mustExec(t, s, sql)
				db.SetForceFullScan(false)
				got := mustExec(t, s, sql)
				if diff := resultsEqual(want, got); diff != "" {
					t.Errorf("%s after mutations: %s", sql, diff)
				}
			}
		})
	}
}

// TestDMLAccessPaths checks UPDATE/DELETE locate their targets through the
// index and produce states identical to forced full scans.
func TestDMLAccessPaths(t *testing.T) {
	run := func(force bool) *Result {
		db, s := newAccessDB(t, LayoutHybrid)
		db.SetForceFullScan(force)
		mustExec(t, s, "UPDATE items SET v = -1 WHERE id = 42")
		mustExec(t, s, "UPDATE items SET v = -2 WHERE id BETWEEN 200 AND 210")
		mustExec(t, s, "DELETE FROM items WHERE grp = 5 AND id < 100")
		db.SetForceFullScan(true) // read back identically in both runs
		return mustExec(t, s, "SELECT * FROM items ORDER BY id")
	}
	want, got := run(true), run(false)
	if diff := resultsEqual(want, got); diff != "" {
		t.Fatalf("DML via index path diverges: %s", diff)
	}

	_, s := newAccessDB(t, LayoutHybrid)
	plan := mustExec(t, s, "EXPLAIN UPDATE items SET v = 0 WHERE id = 3")
	if text := planText(plan); !strings.Contains(text, "pk point (id)") {
		t.Fatalf("EXPLAIN UPDATE = %q, want pk point", text)
	}
	plan = mustExec(t, s, "EXPLAIN DELETE FROM items WHERE grp = 2")
	if text := planText(plan); !strings.Contains(text, "index idx_grp point (grp)") {
		t.Fatalf("EXPLAIN DELETE = %q, want index point", text)
	}
	// An error-capable conjunct disables candidate narrowing.
	plan = mustExec(t, s, "EXPLAIN DELETE FROM items WHERE id = 3 AND 1/v > 0")
	if text := planText(plan); !strings.Contains(text, "full scan") {
		t.Fatalf("EXPLAIN DELETE with error-capable WHERE = %q, want full scan", text)
	}
}

// TestUniqueSecondaryIndex checks UNIQUE enforcement on insert and update,
// NULLs exempted.
func TestUniqueSecondaryIndex(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE u (id INT PRIMARY KEY, code INT)")
	mustExec(t, s, "INSERT INTO u VALUES (1, 10), (2, 20), (3, NULL), (4, NULL)")
	mustExec(t, s, "CREATE UNIQUE INDEX ux ON u (code)")
	if _, err := s.Query("INSERT INTO u VALUES (5, 10)"); err == nil {
		t.Fatal("duplicate unique value accepted on insert")
	}
	if _, err := s.Query("UPDATE u SET code = 20 WHERE id = 1"); err == nil {
		t.Fatal("duplicate unique value accepted on update")
	}
	mustExec(t, s, "INSERT INTO u VALUES (6, NULL)") // NULLs repeat freely
	mustExec(t, s, "UPDATE u SET code = 30 WHERE id = 1")
	mustExec(t, s, "INSERT INTO u VALUES (7, 10)") // 10 was freed by the update
	if _, err := s.Query("CREATE UNIQUE INDEX ux2 ON u (id, code)"); err != nil {
		t.Fatalf("composite unique index over distinct rows: %v", err)
	}
	mustExec(t, s, "DROP INDEX ux")
	mustExec(t, s, "INSERT INTO u VALUES (8, 30)") // constraint gone
}

// TestCreateUniqueIndexRejectsDuplicates ensures the backfill build detects
// existing duplicates and registers nothing.
func TestCreateUniqueIndexRejectsDuplicates(t *testing.T) {
	db, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE d (id INT PRIMARY KEY, code INT)")
	mustExec(t, s, "INSERT INTO d VALUES (1, 10), (2, 10)")
	if _, err := s.Query("CREATE UNIQUE INDEX dx ON d (code)"); err == nil {
		t.Fatal("unique index built over duplicate values")
	}
	if got := len(db.Indexes("d")); got != 0 {
		t.Fatalf("failed index build left %d registered indexes", got)
	}
}

// TestIndexDDLBumpsSchemaEpoch is the plan-cache staleness regression: a
// statement prepared before CREATE INDEX must be discarded by the cache
// after it, so the next preparation re-plans its access path.
func TestIndexDDLBumpsSchemaEpoch(t *testing.T) {
	db, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, g INT)")
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i%5))
	}
	const q = "SELECT id FROM t WHERE g = 3"
	p1, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if text := planText(mustExec(t, s, "EXPLAIN "+q)); !strings.Contains(text, "full scan") {
		t.Fatalf("pre-index EXPLAIN = %q, want full scan", text)
	}
	epoch := db.SchemaEpoch()
	mustExec(t, s, "CREATE INDEX tg ON t (g)")
	if db.SchemaEpoch() == epoch {
		t.Fatal("CREATE INDEX did not bump the schema epoch")
	}
	p2, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("plan cache returned the pre-index prepared statement after CREATE INDEX")
	}
	if text := planText(mustExec(t, s, "EXPLAIN "+q)); !strings.Contains(text, "index tg point (g)") {
		t.Fatalf("post-index EXPLAIN = %q, want index point", text)
	}
	res := mustExec(t, s, q)
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
	epoch = db.SchemaEpoch()
	mustExec(t, s, "DROP INDEX tg")
	if db.SchemaEpoch() == epoch {
		t.Fatal("DROP INDEX did not bump the schema epoch")
	}
}

// TestIndexesSurviveSchemaEvolution checks cascade-drop of indexes whose
// column disappears and position fix-ups for the rest.
func TestIndexesSurviveSchemaEvolution(t *testing.T) {
	db, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE e (id INT PRIMARY KEY, a INT, b INT)")
	mustExec(t, s, "INSERT INTO e VALUES (1, 10, 100), (2, 20, 200), (3, 20, 300)")
	mustExec(t, s, "CREATE INDEX ea ON e (a)")
	mustExec(t, s, "CREATE INDEX eb ON e (b)")
	mustExec(t, s, "ALTER TABLE e DROP COLUMN a")
	if got := len(db.Indexes("e")); got != 1 {
		t.Fatalf("after dropping an indexed column: %d indexes, want 1 (cascade)", got)
	}
	// eb's resolved position must have shifted with the schema.
	db.SetForceFullScan(true)
	want := mustExec(t, s, "SELECT id FROM e WHERE b = 200")
	db.SetForceFullScan(false)
	got := mustExec(t, s, "SELECT id FROM e WHERE b = 200")
	if diff := resultsEqual(want, got); diff != "" {
		t.Fatalf("index eb broken after column drop: %s", diff)
	}
	if text := planText(mustExec(t, s, "EXPLAIN SELECT id FROM e WHERE b = 200")); !strings.Contains(text, "index eb point (b)") {
		t.Fatalf("EXPLAIN after drop = %q", text)
	}
	mustExec(t, s, "ALTER TABLE e RENAME COLUMN b TO c")
	defs := db.Indexes("e")
	if len(defs) != 1 || defs[0].Columns[0] != "c" {
		t.Fatalf("rename not reflected in index definition: %+v", defs)
	}
}

// TestOrderedScanTieOrder pins the tie-order contract of sort elision:
// a composite index must NOT serve ORDER BY on its leading column (ties
// there follow the trailing index column, not the stable row order), and a
// unique index walked DESC must emit its NULL group — exempt from
// uniqueness, hence the only possible ties — in ascending RowID order.
func TestOrderedScanTieOrder(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE ct (a INT, b INT)")
	mustExec(t, s, "INSERT INTO ct VALUES (1, 9), (1, 1), (2, 5)")
	mustExec(t, s, "CREATE INDEX cab ON ct (a, b)")
	for _, q := range []string{
		"SELECT a, b FROM ct ORDER BY a LIMIT 1",
		"SELECT a, b FROM ct ORDER BY a LIMIT 2",
	} {
		db := s.db
		db.SetForceFullScan(true)
		want := mustExec(t, s, q)
		db.SetForceFullScan(false)
		got := mustExec(t, s, q)
		if diff := resultsEqual(want, got); diff != "" {
			t.Errorf("%s: composite-index elision broke tie order: %s", q, diff)
		}
	}
	if text := planText(mustExec(t, s, "EXPLAIN SELECT a FROM ct ORDER BY a LIMIT 1")); strings.Contains(text, "index-ordered") {
		t.Errorf("composite index wrongly serves single-term ORDER BY: %q", text)
	}

	mustExec(t, s, "CREATE TABLE un (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO un VALUES (1, NULL), (2, NULL), (3, 5)")
	mustExec(t, s, "CREATE UNIQUE INDEX uv ON un (v)")
	for _, q := range []string{
		"SELECT id FROM un ORDER BY v DESC LIMIT 2",
		"SELECT id FROM un ORDER BY v DESC LIMIT 3",
		"SELECT id FROM un ORDER BY v LIMIT 2",
	} {
		db := s.db
		db.SetForceFullScan(true)
		want := mustExec(t, s, q)
		db.SetForceFullScan(false)
		got := mustExec(t, s, q)
		if diff := resultsEqual(want, got); diff != "" {
			t.Errorf("%s: NULL-group tie order diverges: %s", q, diff)
		}
	}
	if text := planText(mustExec(t, s, "EXPLAIN SELECT id FROM un ORDER BY v DESC LIMIT 2")); !strings.Contains(text, "index-ordered") {
		t.Errorf("unique single-column index should elide the DESC sort: %q", text)
	}
}
