package sqlexec

import (
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// TestMarshalAttachPages: a database serialised with MarshalPages and
// attached over the same backend must answer queries identically — tables,
// primary keys, secondary indexes and unique enforcement included — without
// replaying any DML.
func TestMarshalAttachPages(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutColumn, LayoutHybrid} {
		t.Run(string(layout), func(t *testing.T) {
			backend := pager.NewStore()
			db := NewDatabase(Config{Layout: layout, Backend: backend})
			s := db.NewSession(newFakeSheets())
			mustExec(t, s, "CREATE TABLE acct (id INT PRIMARY KEY, owner TEXT, bal NUMERIC)")
			mustExec(t, s, "CREATE UNIQUE INDEX acct_bal ON acct (bal)")
			for i := 0; i < 300; i++ {
				if _, err := db.Insert("acct", []sheet.Value{
					sheet.Number(float64(i)),
					sheet.String_("own"),
					sheet.Number(float64(i) * 10),
				}); err != nil {
					t.Fatal(err)
				}
			}
			mustExec(t, s, "DELETE FROM acct WHERE id = 7")
			mustExec(t, s, "UPDATE acct SET bal = -1 WHERE id = 9")

			if err := db.Pool().FlushAll(); err != nil {
				t.Fatal(err)
			}
			blob := db.MarshalPages()

			db2 := NewDatabase(Config{Layout: layout, Backend: backend})
			if err := db2.AttachPages(blob); err != nil {
				t.Fatal(err)
			}
			s2 := db2.NewSession(newFakeSheets())
			for _, q := range []string{
				"SELECT COUNT(id) FROM acct",
				"SELECT bal FROM acct WHERE id = 42",
				"SELECT id FROM acct WHERE bal = -1",
				"SELECT id FROM acct WHERE id BETWEEN 100 AND 110",
			} {
				want := mustExec(t, s, q)
				got := mustExec(t, s2, q)
				if diff := resultsEqual(want, got); diff != "" {
					t.Fatalf("%s: %s", q, diff)
				}
			}
			// Access paths must come back as index paths, not rebuilt scans.
			plan := mustExec(t, s2, "EXPLAIN SELECT id FROM acct WHERE bal = 420")
			if text := planText(plan); !strings.Contains(text, "index acct_bal") {
				t.Fatalf("EXPLAIN after attach = %q", text)
			}
			// Unique enforcement survives the attach.
			if _, err := s2.Query("INSERT INTO acct VALUES (9999, 'x', 420)"); err == nil {
				t.Fatal("unique index not enforced after attach")
			}
			// Fresh inserts continue the RowID sequence.
			if _, err := db2.Insert("acct", []sheet.Value{
				sheet.Number(100000), sheet.String_("new"), sheet.Number(-77),
			}); err != nil {
				t.Fatal(err)
			}
			res := mustExec(t, s2, "SELECT owner FROM acct WHERE id = 100000")
			if len(res.Rows) != 1 || res.Rows[0][0].String() != "new" {
				t.Fatalf("post-attach insert not visible: %v", res.Rows)
			}
		})
	}
}

// TestAttachPagesRejectsCorrupt: flipped bits in the catalog blob must fail
// the attach with ErrCorruptPages-wrapped errors, not half-attach.
func TestAttachPagesRejectsCorrupt(t *testing.T) {
	backend := pager.NewStore()
	db := NewDatabase(Config{Backend: backend})
	s := db.NewSession(newFakeSheets())
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2), (3)")
	if err := db.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	blob := db.MarshalPages()
	for _, pos := range []int{0, 9, len(blob) / 2, len(blob) - 1} {
		corrupt := append([]byte(nil), blob...)
		corrupt[pos] ^= 0x40
		db2 := NewDatabase(Config{Backend: backend})
		if err := db2.AttachPages(corrupt); err == nil {
			t.Errorf("flip@%d attached without error", pos)
		}
	}
	if err := NewDatabase(Config{Backend: backend}).AttachPages(blob[:5]); err == nil {
		t.Error("truncated blob attached without error")
	}
}
