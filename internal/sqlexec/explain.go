package sqlexec

import (
	"fmt"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// EXPLAIN. The statement is planned exactly as execution would plan it —
// same pushdown, same access-path selection — but named tables are not
// scanned. RANGETABLE and sub-select sources are still resolved (their
// schema lives in their data), so EXPLAIN of a query over sheet ranges
// needs the same spreadsheet context the query itself would.

// executeExplain renders the plan of the wrapped statement as a one-column
// relation, one line per plan element. Placeholders inside the explained
// statement take the execution's bound arguments, so EXPLAIN of a prepared
// statement shows exactly the access paths those arguments would take.
func (s *Session) executeExplain(st *sqlparser.ExplainStmt, env *execEnv) (*Result, error) {
	var lines []string
	switch inner := st.Stmt.(type) {
	case *sqlparser.SelectStmt:
		var err error
		if lines, err = s.db.explainSelect(inner, env); err != nil {
			return nil, err
		}
	case *sqlparser.UpdateStmt:
		line, err := s.explainDML("update", inner.Table, inner.Where, env)
		if err != nil {
			return nil, err
		}
		lines = []string{line}
	case *sqlparser.DeleteStmt:
		line, err := s.explainDML("delete", inner.Table, inner.Where, env)
		if err != nil {
			return nil, err
		}
		lines = []string{line}
	default:
		lines = []string{fmt.Sprintf("statement %T: no plan", inner)}
	}
	res := &Result{Columns: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, []sheet.Value{sheet.String_(l)})
	}
	return res, nil
}

// explainSelect plans a SELECT and renders one line per FROM source plus a
// residual-filter line when conjuncts survive above the joins.
func (db *Database) explainSelect(stmt *sqlparser.SelectStmt, env *execEnv) ([]string, error) {
	plan, err := db.planInput(stmt, analyzeSelect(stmt), env)
	if err != nil {
		return nil, err
	}
	if plan.srcs == nil {
		return []string{"no table: constant row"}, nil
	}
	var lines []string
	if !plan.live {
		lines = append(lines, "constant WHERE conjunct is false: empty result")
	}
	for _, src := range plan.srcs {
		display := ""
		switch {
		case src.path != nil:
			display = src.path.display
		case src.store == nil && src.tbl == nil:
			display = "materialised source (rangetable/subquery)"
		default:
			display = "full scan"
		}
		if n := len(src.pushed); n > 0 {
			display += fmt.Sprintf(", %d pushed filter(s)", n)
		}
		display += db.explainScanExtras(src)
		lines = append(lines, fmt.Sprintf("%s: %s", src.label, display))
	}
	if n := len(plan.residual); n > 0 {
		lines = append(lines, fmt.Sprintf("residual filter: %d conjunct(s)", n))
	}
	return lines, nil
}

// explainScanExtras renders the physical-scan annotations of one named-table
// source: zone-map page skipping (when sargable bounds reached a store with
// summaries) and, for parallel-eligible full scans, the worker count and the
// morsel partitions the pruned row space splits into.
func (db *Database) explainScanExtras(src *srcState) string {
	if src.store == nil {
		return ""
	}
	_, scanCols := src.scanSchema()
	out := ""
	db.mu.RLock()
	defer db.mu.RUnlock()
	if len(src.zoneBounds) > 0 {
		if pruner, ok := src.store.(tablestore.Pruner); ok {
			total, skipped := pruner.PruneStats(scanCols, src.zoneBounds)
			out += fmt.Sprintf(", zone maps: %d/%d pages skipped", skipped, total)
		}
	}
	if src.path != nil && src.path.kind != pathFull {
		return out
	}
	workers := db.parWorkers()
	snapper, ok := src.store.(tablestore.Snapshotter)
	if workers <= 1 || !ok || src.store.RowCount() < parMinRows {
		return out
	}
	snap := snapper.Snapshot()
	defer snap.Release()
	var parts []tablestore.Partition
	if psnap, isPruned := snap.(tablestore.PrunedSnap); isPruned && len(src.zoneBounds) > 0 {
		parts, _, _ = psnap.PartitionsPruned(workers*morselsPerWorker, scanCols, src.zoneBounds)
	} else {
		parts = snap.Partitions(workers * morselsPerWorker)
	}
	return out + fmt.Sprintf(", parallel: %d workers, %d partitions", workers, len(parts))
}

// explainDML renders the access path UPDATE/DELETE would use to locate
// their target rows.
func (s *Session) explainDML(verb, table string, where sqlparser.Expr, env *execEnv) (string, error) {
	tbl, err := s.db.cat.MustGet(table)
	if err != nil {
		return "", err
	}
	path := s.dmlAccessPath(tbl, where, env)
	if path == nil {
		display := "full scan"
		if s.db.forceFullScan.Load() {
			display = "full scan (forced)"
		}
		return fmt.Sprintf("%s %s: %s", verb, tbl.Name, display), nil
	}
	return fmt.Sprintf("%s %s: %s", verb, tbl.Name, path.display), nil
}
