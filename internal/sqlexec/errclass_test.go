package sqlexec

import (
	"errors"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
)

// TestExecErrorClassification pins the dberr sentinel taxonomy on the
// execution path: evaluation-domain failures, syntax-level analysis failures
// and unsupported features must each round-trip through errors.Is after the
// wrapped-%w conversion of the executor's bare fmt.Errorf sites.
func TestExecErrorClassification(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score NUMERIC)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'a', 10)`)

	cases := []struct {
		sql  string
		want error
	}{
		{`SELECT score / 0 FROM t`, dberr.ErrValue},
		{`SELECT score + name FROM t`, dberr.ErrValue},
		{`SELECT nosuchfunc(score) FROM t`, dberr.ErrSyntax},
		{`SELECT nosuch FROM t`, dberr.ErrColumnNotFound},
	}
	for _, tc := range cases {
		if _, err := s.Query(tc.sql); !errors.Is(err, tc.want) {
			t.Errorf("Query(%q) error = %v, want errors.Is %v", tc.sql, err, tc.want)
		}
	}
}
