package sqlexec

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/sheet"
)

// fakeSheets is a SheetAccessor backed by plain maps, standing in for the
// spreadsheet front-end in engine-level tests.
type fakeSheets struct {
	cells  map[string]sheet.Value
	tables map[string]struct {
		cols []string
		rows [][]sheet.Value
	}
}

func newFakeSheets() *fakeSheets {
	return &fakeSheets{
		cells: map[string]sheet.Value{},
		tables: map[string]struct {
			cols []string
			rows [][]sheet.Value
		}{},
	}
}

func (f *fakeSheets) RangeValue(ref string) (sheet.Value, error) {
	v, ok := f.cells[strings.ToUpper(ref)]
	if !ok {
		return sheet.Empty(), nil
	}
	return v, nil
}

func (f *fakeSheets) RangeTable(ref string, headerRow bool) ([]string, [][]sheet.Value, error) {
	t, ok := f.tables[strings.ToUpper(ref)]
	if !ok {
		return nil, nil, fmt.Errorf("no such range %q", ref)
	}
	return t.cols, t.rows, nil
}

func newTestDB(t *testing.T) (*Database, *Session) {
	t.Helper()
	db := NewDatabase(Config{})
	s := db.NewSession(newFakeSheets())
	return db, s
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func loadStudents(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE students (id INT PRIMARY KEY, name TEXT, grp TEXT, score NUMERIC)`)
	rows := []string{
		"(1, 'alice', 'ug', 95)",
		"(2, 'bob', 'ug', 72)",
		"(3, 'carol', 'ms', 88)",
		"(4, 'dave', 'ms', 61)",
		"(5, 'erin', 'phd', 99)",
		"(6, 'frank', 'phd', 45)",
	}
	mustExec(t, s, "INSERT INTO students VALUES "+strings.Join(rows, ", "))
}

func TestCreateInsertSelectRoundTrip(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	res := mustExec(t, s, "SELECT id, name FROM students WHERE score >= 90 ORDER BY id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Str != "alice" || res.Rows[1][1].Str != "erin" {
		t.Errorf("content = %v", res.Rows)
	}
	if res.Columns[0] != "id" || res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectExpressionsAndAliases(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	res := mustExec(t, s, "SELECT name, score * 2 AS doubled, UPPER(grp) FROM students WHERE id = 1")
	if res.Columns[1] != "doubled" || res.Columns[2] != "upper" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][1].Num != 190 || res.Rows[0][2].Str != "UG" {
		t.Errorf("row = %v", res.Rows[0])
	}
	// Table-less select.
	res = mustExec(t, s, "SELECT 1+2*3, 'a' || 'b', LENGTH('héllo'), COALESCE(NULL, 7)")
	if res.Rows[0][0].Num != 7 || res.Rows[0][1].Str != "ab" || res.Rows[0][2].Num != 5 || res.Rows[0][3].Num != 7 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestSelectPredicates(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM students WHERE grp IN ('ug', 'ms')", 4},
		{"SELECT * FROM students WHERE grp NOT IN ('ug', 'ms')", 2},
		{"SELECT * FROM students WHERE score BETWEEN 60 AND 90", 3},
		{"SELECT * FROM students WHERE name LIKE '%a%'", 4},
		{"SELECT * FROM students WHERE name LIKE '_ob'", 1},
		{"SELECT * FROM students WHERE NOT (score > 50)", 1},
		{"SELECT * FROM students WHERE score > 80 AND grp = 'phd'", 1},
		{"SELECT * FROM students WHERE score > 95 OR grp = 'ug'", 3},
		{"SELECT * FROM students WHERE name IS NULL", 0},
		{"SELECT * FROM students WHERE name IS NOT NULL", 6},
		{"SELECT * FROM students WHERE CASE WHEN score >= 90 THEN TRUE ELSE FALSE END", 2},
	}
	for _, c := range cases {
		res := mustExec(t, s, c.sql)
		if len(res.Rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	res := mustExec(t, s, "SELECT COUNT(*), SUM(score), AVG(score), MIN(score), MAX(score) FROM students")
	row := res.Rows[0]
	if row[0].Num != 6 || row[1].Num != 460 || row[3].Num != 45 || row[4].Num != 99 {
		t.Errorf("aggregates = %v", row)
	}
	if row[2].Num < 76 || row[2].Num > 77 {
		t.Errorf("avg = %v", row[2])
	}
	// The paper's motivating example: average grade by demographic group.
	res = mustExec(t, s, "SELECT grp, AVG(score) AS avg_score, COUNT(*) FROM students GROUP BY grp ORDER BY grp")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].Str != "ms" || res.Rows[0][1].Num != 74.5 {
		t.Errorf("ms group = %v", res.Rows[0])
	}
	if res.Rows[2][0].Str != "ug" || res.Rows[2][2].Num != 2 {
		t.Errorf("ug group = %v", res.Rows[2])
	}
	// HAVING.
	res = mustExec(t, s, "SELECT grp FROM students GROUP BY grp HAVING AVG(score) > 80 ORDER BY grp")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "ug" {
		t.Errorf("having result = %v", res.Rows)
	}
	// COUNT DISTINCT and empty-table aggregates.
	res = mustExec(t, s, "SELECT COUNT(DISTINCT grp) FROM students")
	if res.Rows[0][0].Num != 3 {
		t.Errorf("count distinct = %v", res.Rows[0][0])
	}
	mustExec(t, s, "CREATE TABLE empty_t (x INT)")
	res = mustExec(t, s, "SELECT COUNT(*), SUM(x) FROM empty_t")
	if res.Rows[0][0].Num != 0 || !res.Rows[0][1].IsEmpty() {
		t.Errorf("empty aggregates = %v", res.Rows[0])
	}
}

func TestOrderByLimitOffsetDistinct(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	res := mustExec(t, s, "SELECT name FROM students ORDER BY score DESC LIMIT 2")
	if res.Rows[0][0].Str != "erin" || res.Rows[1][0].Str != "alice" {
		t.Errorf("order desc = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT name FROM students ORDER BY score ASC LIMIT 2 OFFSET 1")
	if res.Rows[0][0].Str != "dave" {
		t.Errorf("offset = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT DISTINCT grp FROM students ORDER BY grp")
	if len(res.Rows) != 3 || res.Rows[0][0].Str != "ms" {
		t.Errorf("distinct = %v", res.Rows)
	}
	// ORDER BY output alias and position.
	res = mustExec(t, s, "SELECT name, score*2 AS d FROM students ORDER BY d DESC LIMIT 1")
	if res.Rows[0][0].Str != "erin" {
		t.Errorf("order by alias = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT name, score FROM students ORDER BY 2 LIMIT 1")
	if res.Rows[0][0].Str != "frank" {
		t.Errorf("order by position = %v", res.Rows)
	}
}

func TestJoins(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	mustExec(t, s, "CREATE TABLE demo (id INT PRIMARY KEY, city TEXT)")
	mustExec(t, s, "INSERT INTO demo VALUES (1, 'urbana'), (2, 'champaign'), (3, 'urbana'), (9, 'nowhere')")

	// Inner join with ON.
	res := mustExec(t, s, `SELECT s.name, d.city FROM students s JOIN demo d ON s.id = d.id ORDER BY s.id`)
	if len(res.Rows) != 3 || res.Rows[0][1].Str != "urbana" {
		t.Errorf("inner join = %v", res.Rows)
	}
	// Left join pads with NULL.
	res = mustExec(t, s, `SELECT s.name, d.city FROM students s LEFT JOIN demo d ON s.id = d.id ORDER BY s.id`)
	if len(res.Rows) != 6 {
		t.Fatalf("left join rows = %d", len(res.Rows))
	}
	if !res.Rows[5][1].IsEmpty() {
		t.Errorf("unmatched left row should have NULL city: %v", res.Rows[5])
	}
	// Natural join (shared column "id").
	res = mustExec(t, s, `SELECT name, city FROM students NATURAL JOIN demo ORDER BY name`)
	if len(res.Rows) != 3 {
		t.Errorf("natural join rows = %d", len(res.Rows))
	}
	// USING.
	res = mustExec(t, s, `SELECT name, city FROM students JOIN demo USING (id) WHERE city = 'urbana'`)
	if len(res.Rows) != 2 {
		t.Errorf("using join rows = %d", len(res.Rows))
	}
	// Cross join.
	res = mustExec(t, s, `SELECT * FROM students, demo`)
	if len(res.Rows) != 24 {
		t.Errorf("cross join rows = %d", len(res.Rows))
	}
	// Join + group by: average score per city.
	res = mustExec(t, s, `SELECT d.city, AVG(s.score) FROM students s JOIN demo d ON s.id = d.id GROUP BY d.city ORDER BY d.city`)
	if len(res.Rows) != 2 || res.Rows[1][0].Str != "urbana" {
		t.Errorf("join+group = %v", res.Rows)
	}
	// Non-equi nested-loop join.
	res = mustExec(t, s, `SELECT COUNT(*) FROM students s JOIN demo d ON s.id < d.id`)
	if res.Rows[0][0].Num != 9 {
		t.Errorf("non-equi join count = %v", res.Rows[0][0])
	}
}

func TestSubqueryInFrom(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	res := mustExec(t, s, `SELECT grp, COUNT(*) FROM (SELECT * FROM students WHERE score > 60) top GROUP BY grp ORDER BY grp`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[2][1].Num != 2 { // ug: alice, bob
		t.Errorf("subquery group = %v", res.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	res := mustExec(t, s, "UPDATE students SET score = score + 10 WHERE grp = 'ug'")
	if res.Affected != 2 {
		t.Errorf("affected = %d", res.Affected)
	}
	res = mustExec(t, s, "SELECT score FROM students WHERE id = 2")
	if res.Rows[0][0].Num != 82 {
		t.Errorf("score = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "DELETE FROM students WHERE score < 60")
	if res.Affected != 1 {
		t.Errorf("delete affected = %d", res.Affected)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM students")
	if res.Rows[0][0].Num != 5 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	// Unconditional delete.
	res = mustExec(t, s, "DELETE FROM students")
	if res.Affected != 5 {
		t.Errorf("unconditional delete affected = %d", res.Affected)
	}
}

func TestInsertVariants(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE t (a INT, b TEXT DEFAULT 'none', c NUMERIC)")
	// Partial column list with default fill.
	mustExec(t, s, "INSERT INTO t (a) VALUES (1)")
	res := mustExec(t, s, "SELECT a, b, c FROM t")
	if res.Rows[0][1].Str != "none" || !res.Rows[0][2].IsEmpty() {
		t.Errorf("defaults = %v", res.Rows[0])
	}
	// INSERT ... SELECT.
	mustExec(t, s, "INSERT INTO t (a, c) VALUES (2, 5), (3, 6)")
	mustExec(t, s, "CREATE TABLE t2 (a INT, b TEXT, c NUMERIC)")
	res = mustExec(t, s, "INSERT INTO t2 SELECT * FROM t WHERE a > 1")
	if res.Affected != 2 {
		t.Errorf("insert-select affected = %d", res.Affected)
	}
	// Errors.
	if _, err := s.Query("INSERT INTO t (a, zzz) VALUES (1, 2)"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := s.Query("INSERT INTO t (a) VALUES (1, 2)"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := s.Query("INSERT INTO missing VALUES (1)"); err == nil {
		t.Error("missing table should fail")
	}
}

func TestPrimaryKeyAndNotNullConstraints(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE u (id INT PRIMARY KEY, name TEXT NOT NULL)")
	mustExec(t, s, "INSERT INTO u VALUES (1, 'a')")
	if _, err := s.Query("INSERT INTO u VALUES (1, 'b')"); err == nil {
		t.Error("duplicate primary key should fail")
	}
	if _, err := s.Query("INSERT INTO u VALUES (2, NULL)"); err == nil {
		t.Error("NOT NULL violation should fail")
	}
	// Updating a key to a duplicate fails; to a fresh value succeeds.
	mustExec(t, s, "INSERT INTO u VALUES (2, 'b')")
	if _, err := s.Query("UPDATE u SET id = 1 WHERE id = 2"); err == nil {
		t.Error("update to duplicate key should fail")
	}
	mustExec(t, s, "UPDATE u SET id = 5 WHERE id = 2")
	res := mustExec(t, s, "SELECT name FROM u WHERE id = 5")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "b" {
		t.Errorf("key update = %v", res.Rows)
	}
	// Type coercion: a numeric string goes into an INT column.
	mustExec(t, s, "INSERT INTO u VALUES ('7', 'c')")
	res = mustExec(t, s, "SELECT id FROM u WHERE name = 'c'")
	if res.Rows[0][0].Kind != sheet.KindNumber {
		t.Error("numeric coercion on insert failed")
	}
	if _, err := s.Query("INSERT INTO u VALUES ('abc', 'd')"); err == nil {
		t.Error("non-numeric value in INT column should fail")
	}
}

func TestSchemaEvolutionSQL(t *testing.T) {
	db, s := newTestDB(t)
	loadStudents(t, s)
	mustExec(t, s, "ALTER TABLE students ADD COLUMN email TEXT DEFAULT 'none'")
	res := mustExec(t, s, "SELECT email FROM students WHERE id = 1")
	if res.Rows[0][0].Str != "none" {
		t.Errorf("backfilled default = %v", res.Rows[0][0])
	}
	mustExec(t, s, "UPDATE students SET email = 'alice@uiuc.edu' WHERE id = 1")
	mustExec(t, s, "ALTER TABLE students RENAME COLUMN email TO contact")
	res = mustExec(t, s, "SELECT contact FROM students WHERE id = 1")
	if res.Rows[0][0].Str != "alice@uiuc.edu" {
		t.Errorf("renamed column = %v", res.Rows[0][0])
	}
	mustExec(t, s, "ALTER TABLE students DROP COLUMN contact")
	if _, err := s.Query("SELECT contact FROM students"); err == nil {
		t.Error("dropped column should be unknown")
	}
	tbl, err := db.Table("students")
	if err != nil || len(tbl.Columns) != 4 {
		t.Errorf("catalog columns = %+v", tbl)
	}
	// CREATE TABLE AS SELECT.
	mustExec(t, s, "CREATE TABLE honor_roll AS SELECT name, score FROM students WHERE score >= 90")
	res = mustExec(t, s, "SELECT COUNT(*) FROM honor_roll")
	if res.Rows[0][0].Num != 2 {
		t.Errorf("CTAS count = %v", res.Rows[0][0])
	}
	// DROP TABLE.
	mustExec(t, s, "DROP TABLE honor_roll")
	if _, err := s.Query("SELECT * FROM honor_roll"); err == nil {
		t.Error("dropped table should be gone")
	}
	mustExec(t, s, "DROP TABLE IF EXISTS honor_roll")
	if _, err := s.Query("DROP TABLE honor_roll"); err == nil {
		t.Error("dropping a missing table without IF EXISTS should fail")
	}
	mustExec(t, s, "CREATE TABLE IF NOT EXISTS students (id INT)")
}

func TestTransactions(t *testing.T) {
	_, s := newTestDB(t)
	loadStudents(t, s)
	// Rollback restores data changes and schema changes together.
	mustExec(t, s, "BEGIN")
	if !s.InTransaction() {
		t.Fatal("should be in a transaction")
	}
	mustExec(t, s, "INSERT INTO students VALUES (7, 'gary', 'ug', 50)")
	mustExec(t, s, "UPDATE students SET score = 0 WHERE id = 1")
	mustExec(t, s, "ALTER TABLE students ADD COLUMN flag BOOLEAN DEFAULT TRUE")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT COUNT(*) FROM students")
	if res.Rows[0][0].Num != 6 {
		t.Errorf("rollback should remove the insert: %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT score FROM students WHERE id = 1")
	if res.Rows[0][0].Num != 95 {
		t.Errorf("rollback should restore the update: %v", res.Rows[0][0])
	}
	if _, err := s.Query("SELECT flag FROM students"); err == nil {
		t.Error("rollback should undo ALTER TABLE ADD COLUMN")
	}
	// Commit keeps changes.
	mustExec(t, s, "BEGIN TRANSACTION")
	mustExec(t, s, "DELETE FROM students WHERE id = 6")
	mustExec(t, s, "COMMIT")
	res = mustExec(t, s, "SELECT COUNT(*) FROM students")
	if res.Rows[0][0].Num != 5 {
		t.Errorf("commit lost the delete: %v", res.Rows[0][0])
	}
	// Transaction control errors.
	if _, err := s.Query("COMMIT"); err == nil {
		t.Error("COMMIT without BEGIN should fail")
	}
	if _, err := s.Query("ROLLBACK"); err == nil {
		t.Error("ROLLBACK without BEGIN should fail")
	}
	mustExec(t, s, "BEGIN")
	if _, err := s.Query("BEGIN"); err == nil {
		t.Error("nested BEGIN should fail")
	}
	mustExec(t, s, "COMMIT")
}

func TestRangeValueAndRangeTable(t *testing.T) {
	db, _ := newTestDB(t)
	sheets := newFakeSheets()
	s := db.NewSession(sheets)
	loadStudentsInto(t, s)

	sheets.cells["B1"] = sheet.Number(3)
	sheets.cells["SHEET2!B2"] = sheet.String_("ms")
	res := mustExec(t, s, "SELECT name FROM students WHERE id = RANGEVALUE(B1)")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "carol" {
		t.Errorf("RANGEVALUE result = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM students WHERE grp = RANGEVALUE(Sheet2!B2)")
	if res.Rows[0][0].Num != 2 {
		t.Errorf("sheet-qualified RANGEVALUE = %v", res.Rows[0][0])
	}

	sheets.tables["A1:B4"] = struct {
		cols []string
		rows [][]sheet.Value
	}{
		cols: []string{"id", "bonus"},
		rows: [][]sheet.Value{
			{sheet.Number(1), sheet.Number(5)},
			{sheet.Number(3), sheet.Number(2)},
			{sheet.Number(9), sheet.Number(1)},
		},
	}
	// The paper's RANGETABLE join: sheet data joined with a stored table.
	res = mustExec(t, s, "SELECT name, bonus FROM students NATURAL JOIN RANGETABLE(A1:B4) ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "alice" || res.Rows[0][1].Num != 5 {
		t.Errorf("RANGETABLE join = %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT SUM(bonus) FROM RANGETABLE(A1:B4)")
	if res.Rows[0][0].Num != 8 {
		t.Errorf("RANGETABLE aggregate = %v", res.Rows[0][0])
	}
	// Without a sheet context positional constructs fail cleanly.
	bare := db.NewSession(nil)
	if _, err := bare.Query("SELECT RANGEVALUE(B1)"); err == nil {
		t.Error("RANGEVALUE without sheets should fail")
	}
	if _, err := bare.Query("SELECT * FROM RANGETABLE(A1:B2)"); err == nil {
		t.Error("RANGETABLE without sheets should fail")
	}
}

func loadStudentsInto(t *testing.T, s *Session) {
	t.Helper()
	loadStudents(t, s)
}

func TestQueryScriptAndErrors(t *testing.T) {
	_, s := newTestDB(t)
	res, err := s.QueryScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2), (3);
		SELECT SUM(a) FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Num != 6 {
		t.Errorf("script result = %v", res.Rows[0][0])
	}
	if _, err := s.QueryScript(""); err != nil {
		t.Error("empty script should succeed")
	}
	bad := []string{
		"SELECT * FROM missing",
		"SELECT zzz FROM t",
		"SELECT a FROM t WHERE zzz = 1",
		"SELECT 1/0",
		"SELECT FROB(a) FROM t",
		"UPDATE missing SET a = 1",
		"UPDATE t SET zzz = 1",
		"DELETE FROM missing",
		"ALTER TABLE missing ADD COLUMN x INT",
		"ALTER TABLE t DROP COLUMN zzz",
		"CREATE TABLE t (a INT)", // duplicate
		"SELECT SUM(a) FROM t GROUP BY zzz",
		"SELECT a, b FROM t",        // unknown column b
		"SELECT COUNT(a, a) FROM t", // aggregate arity
		"SELECT SUM(*) FROM t",
		"SELECT ABS('x') FROM t",
		"SELECT UPPER() FROM t",
	}
	for _, sql := range bad {
		if _, err := s.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
}

func TestAmbiguousColumnsAndQualifiedStar(t *testing.T) {
	_, s := newTestDB(t)
	mustExec(t, s, "CREATE TABLE a (id INT, x INT)")
	mustExec(t, s, "CREATE TABLE b (id INT, y INT)")
	mustExec(t, s, "INSERT INTO a VALUES (1, 10)")
	mustExec(t, s, "INSERT INTO b VALUES (1, 20)")
	if _, err := s.Query("SELECT id FROM a JOIN b ON a.id = b.id"); err == nil {
		t.Error("ambiguous column should fail")
	}
	res := mustExec(t, s, "SELECT a.* FROM a JOIN b ON a.id = b.id")
	if len(res.Columns) != 2 || res.Columns[0] != "id" || res.Columns[1] != "x" {
		t.Errorf("qualified star columns = %v", res.Columns)
	}
	res = mustExec(t, s, "SELECT b.id, a.x, b.y FROM a JOIN b ON a.id = b.id")
	if res.Rows[0][2].Num != 20 {
		t.Errorf("qualified columns = %v", res.Rows[0])
	}
}

func TestChangeNotifications(t *testing.T) {
	db, s := newTestDB(t)
	var events []ChangeEvent
	db.Listen(func(ev ChangeEvent) { events = append(events, ev) })
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	mustExec(t, s, "UPDATE t SET a = 2 WHERE a = 1")
	mustExec(t, s, "DELETE FROM t WHERE a = 2")
	mustExec(t, s, "ALTER TABLE t ADD COLUMN b INT")
	mustExec(t, s, "DROP TABLE t")
	kinds := make(map[ChangeKind]int)
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[ChangeInsert] != 1 || kinds[ChangeUpdate] != 1 || kinds[ChangeDelete] != 1 ||
		kinds[ChangeSchema] != 2 || kinds[ChangeDropTable] != 1 {
		t.Errorf("event kinds = %v", kinds)
	}
}

func TestDatabaseLowLevelAPI(t *testing.T) {
	db, _ := newTestDB(t)
	err := db.CreateTable("kv", []catalog.Column{
		{Name: "k", Type: catalog.TypeText, PrimaryKey: true},
		{Name: "v", Type: catalog.TypeNumber},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := db.Insert("kv", []sheet.Value{sheet.String_("a"), sheet.Number(1)})
	if err != nil {
		t.Fatal(err)
	}
	row, err := db.Get("kv", id)
	if err != nil || row[1].Num != 1 {
		t.Fatalf("Get = %v, %v", row, err)
	}
	if err := db.UpdateColumn("kv", id, 1, sheet.Number(9)); err != nil {
		t.Fatal(err)
	}
	row, _ = db.Get("kv", id)
	if row[1].Num != 9 {
		t.Error("UpdateColumn failed")
	}
	// UpdateColumn on a key column goes through the index.
	if err := db.UpdateColumn("kv", id, 0, sheet.String_("b")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := db.FindByKey("kv", []sheet.Value{sheet.String_("b")})
	if err != nil || !ok || got != id {
		t.Errorf("FindByKey = %v, %v, %v", got, ok, err)
	}
	if _, ok, _ := db.FindByKey("kv", []sheet.Value{sheet.String_("a")}); ok {
		t.Error("old key should be gone")
	}
	n, err := db.RowCount("kv")
	if err != nil || n != 1 {
		t.Errorf("RowCount = %d, %v", n, err)
	}
	if err := db.Delete("kv", id); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.FindByKey("kv", []sheet.Value{sheet.String_("b")}); ok {
		t.Error("key should be removed on delete")
	}
	if len(db.Tables()) != 1 {
		t.Error("Tables() wrong")
	}
	// FindByKey errors.
	if _, _, err := db.FindByKey("missing", nil); err == nil {
		t.Error("FindByKey on missing table should fail")
	}
	_ = db.CreateTable("nopk", []catalog.Column{{Name: "x"}})
	if _, _, err := db.FindByKey("nopk", []sheet.Value{sheet.Number(1)}); err == nil {
		t.Error("FindByKey without a primary key should fail")
	}
	if _, _, err := db.FindByKey("kv", []sheet.Value{sheet.Number(1), sheet.Number(2)}); err == nil {
		t.Error("FindByKey with wrong arity should fail")
	}
	// Pager stats accessible.
	if db.PagerStats().Allocs == 0 {
		t.Error("expected some page allocations")
	}
	db.ResetPagerStats()
	if db.PagerStats().Allocs != 0 {
		t.Error("ResetPagerStats failed")
	}
}

func TestLayoutConfigurations(t *testing.T) {
	for _, layout := range []Layout{LayoutHybrid, LayoutRow, LayoutColumn} {
		db := NewDatabase(Config{Layout: layout, GroupSize: 2})
		s := db.NewSession(nil)
		mustExec(t, s, "CREATE TABLE t (a INT, b TEXT)")
		mustExec(t, s, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
		mustExec(t, s, "ALTER TABLE t ADD COLUMN c NUMERIC DEFAULT 0")
		res := mustExec(t, s, "SELECT SUM(a), COUNT(c) FROM t")
		if res.Rows[0][0].Num != 3 || res.Rows[0][1].Num != 2 {
			t.Errorf("layout %s: result = %v", layout, res.Rows[0])
		}
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "a%c%", true},
		{"abc", "%%%", true},
		{"abc", "_", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}
