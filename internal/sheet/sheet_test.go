package sheet

import (
	"math/rand"
	"sync"
	"testing"
)

func TestMapCellStoreBasic(t *testing.T) {
	s := NewMapCellStore()
	if s.Len() != 0 {
		t.Fatal("new store should be empty")
	}
	a := Addr(2, 3)
	s.Set(a, Cell{Value: Number(7)})
	got, ok := s.Get(a)
	if !ok || got.Value.Num != 7 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatal("Len != 1")
	}
	s.Delete(a)
	if _, ok := s.Get(a); ok {
		t.Fatal("Delete failed")
	}
	// Setting an empty cell removes it.
	s.Set(a, Cell{Value: Number(1)})
	s.Set(a, Cell{})
	if s.Len() != 0 {
		t.Fatal("setting empty cell should delete")
	}
}

func TestMapCellStoreGetRangeBothPaths(t *testing.T) {
	s := NewMapCellStore()
	for r := 0; r < 20; r++ {
		for c := 0; c < 5; c++ {
			s.Set(Addr(r, c), Cell{Value: Number(float64(r*10 + c))})
		}
	}
	count := func(r Range) int {
		n := 0
		s.GetRange(r, func(Address, Cell) { n++ })
		return n
	}
	// Small range (probe path).
	if got := count(RangeOf(0, 0, 2, 2)); got != 9 {
		t.Errorf("small range count = %d, want 9", got)
	}
	// Large range (scan path): covers everything plus empty area.
	if got := count(RangeOf(0, 0, 1000, 1000)); got != 100 {
		t.Errorf("large range count = %d, want 100", got)
	}
}

func TestMapCellStoreBounds(t *testing.T) {
	s := NewMapCellStore()
	if _, ok := s.Bounds(); ok {
		t.Fatal("empty store should have no bounds")
	}
	s.Set(Addr(5, 2), Cell{Value: Number(1)})
	s.Set(Addr(1, 7), Cell{Value: Number(2)})
	b, ok := s.Bounds()
	if !ok || b != RangeOf(1, 2, 5, 7) {
		t.Errorf("Bounds = %+v ok=%v", b, ok)
	}
}

func TestMapCellStoreInsertRows(t *testing.T) {
	s := NewMapCellStore()
	for r := 0; r < 10; r++ {
		s.Set(Addr(r, 0), Cell{Value: Number(float64(r))})
	}
	s.InsertRows(5, 3)
	if c, ok := s.Get(Addr(4, 0)); !ok || c.Value.Num != 4 {
		t.Error("cells above insertion point should not move")
	}
	if _, ok := s.Get(Addr(5, 0)); ok {
		t.Error("insertion band should be empty")
	}
	if c, ok := s.Get(Addr(8, 0)); !ok || c.Value.Num != 5 {
		t.Error("cells below insertion point should shift down")
	}
	// Delete rows 2..4 (count=-3 at row 2): the values 2,3,4 disappear and
	// everything below shifts up by 3, so the empty inserted band lands at
	// rows 2..4 and value 5 lands back at row 5.
	s.InsertRows(2, -3)
	if _, ok := s.Get(Addr(2, 0)); ok {
		t.Error("deleted band should be empty after shift")
	}
	if c, ok := s.Get(Addr(5, 0)); !ok || c.Value.Num != 5 {
		t.Errorf("after delete, row 5 = %+v ok=%v, want 5", c, ok)
	}
}

func TestMapCellStoreInsertCols(t *testing.T) {
	s := NewMapCellStore()
	for c := 0; c < 6; c++ {
		s.Set(Addr(0, c), Cell{Value: Number(float64(c))})
	}
	s.InsertCols(3, 2)
	if c, _ := s.Get(Addr(0, 2)); c.Value.Num != 2 {
		t.Error("left of insertion should not move")
	}
	if _, ok := s.Get(Addr(0, 3)); ok {
		t.Error("insertion band should be empty")
	}
	if c, _ := s.Get(Addr(0, 5)); c.Value.Num != 3 {
		t.Error("right of insertion should shift")
	}
	s.InsertCols(0, -1)
	if c, _ := s.Get(Addr(0, 1)); c.Value.Num != 2 {
		t.Error("column delete wrong")
	}
}

func TestCellPredicates(t *testing.T) {
	if !(Cell{}).IsEmpty() {
		t.Error("zero cell should be empty")
	}
	if (Cell{Value: Number(1)}).IsEmpty() {
		t.Error("cell with value is not empty")
	}
	if (Cell{Origin: Origin{Kind: OriginTable, BindingID: 3}}).IsEmpty() {
		t.Error("cell with origin is not empty")
	}
	if !(Cell{Formula: "SUM(A1:A2)"}).IsFormula() || (Cell{}).IsFormula() {
		t.Error("IsFormula wrong")
	}
}

func TestSheetSetGetClear(t *testing.T) {
	sh := New("s1")
	if sh.Name() != "s1" {
		t.Error("name wrong")
	}
	a := MustParseAddress("B2")
	sh.SetValue(a, Number(10))
	if sh.Value(a).Num != 10 {
		t.Error("SetValue/Value wrong")
	}
	sh.SetCell(a, Cell{Value: Number(3), Formula: "1+2"})
	if got := sh.Get(a); got.Formula != "1+2" || got.Value.Num != 3 {
		t.Errorf("SetCell = %+v", got)
	}
	sh.SetComputedValue(a, Number(99))
	if got := sh.Get(a); got.Formula != "1+2" || got.Value.Num != 99 {
		t.Error("SetComputedValue must preserve formula")
	}
	sh.Clear(a)
	if !sh.Value(a).IsEmpty() {
		t.Error("Clear failed")
	}
	// Invalid addresses are ignored.
	sh.SetValue(Addr(-1, 0), Number(5))
	if sh.CellCount() != 0 {
		t.Error("invalid address should be ignored")
	}
}

func TestSheetValuesMatrix(t *testing.T) {
	sh := New("m")
	r := sh.SetValues(Addr(1, 1), [][]Value{
		{Number(1), Number(2)},
		{Number(3), Empty()},
		{String_("x"), Bool_(true)},
	})
	if r != RangeOf(1, 1, 3, 2) {
		t.Errorf("SetValues range = %v", r)
	}
	got := sh.Values(r)
	if got[0][0].Num != 1 || got[0][1].Num != 2 || got[1][0].Num != 3 {
		t.Error("Values content wrong")
	}
	if !got[1][1].IsEmpty() {
		t.Error("empty slot should stay empty")
	}
	if got[2][0].Str != "x" || got[2][1].Bool != true {
		t.Error("string/bool cells wrong")
	}
	// Overwriting with empty clears.
	sh.SetValues(Addr(1, 1), [][]Value{{Empty()}})
	if !sh.Value(Addr(1, 1)).IsEmpty() {
		t.Error("overwrite with empty should clear")
	}
}

func TestSheetClearRangeAndUsedRange(t *testing.T) {
	sh := New("cr")
	for i := 0; i < 10; i++ {
		sh.SetValue(Addr(i, i), Number(float64(i)))
	}
	ur, ok := sh.UsedRange()
	if !ok || ur != RangeOf(0, 0, 9, 9) {
		t.Errorf("UsedRange = %v ok=%v", ur, ok)
	}
	sh.ClearRange(RangeOf(0, 0, 4, 9))
	if sh.CellCount() != 5 {
		t.Errorf("after ClearRange count = %d, want 5", sh.CellCount())
	}
}

func TestSheetInsertRowsCols(t *testing.T) {
	sh := New("ins")
	sh.SetValue(Addr(5, 5), Number(1))
	sh.InsertRows(0, 2)
	sh.InsertCols(0, 3)
	if sh.Value(Addr(7, 8)).Num != 1 {
		t.Error("insert rows/cols did not shift cell")
	}
}

func TestSheetConcurrentAccess(t *testing.T) {
	sh := New("conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				a := Addr(rng.Intn(100), rng.Intn(20))
				if i%3 == 0 {
					_ = sh.Value(a)
				} else {
					sh.SetValue(a, Number(float64(i)))
				}
			}
		}(g)
	}
	wg.Wait()
	if sh.CellCount() == 0 {
		t.Error("expected some cells after concurrent writes")
	}
}

func TestBookSheets(t *testing.T) {
	b := NewBook()
	s1 := b.AddSheet("Sheet1")
	s2 := b.AddSheet("Sheet2")
	if s1 == nil || s2 == nil {
		t.Fatal("AddSheet returned nil")
	}
	if again := b.AddSheet("Sheet1"); again != s1 {
		t.Error("AddSheet with existing name should return existing sheet")
	}
	names := b.SheetNames()
	if len(names) != 2 || names[0] != "Sheet1" || names[1] != "Sheet2" {
		t.Errorf("SheetNames = %v", names)
	}
	got, ok := b.Sheet("Sheet2")
	if !ok || got != s2 {
		t.Error("Sheet lookup wrong")
	}
	b.RemoveSheet("Sheet1")
	if _, ok := b.Sheet("Sheet1"); ok {
		t.Error("RemoveSheet failed")
	}
	if len(b.SheetNames()) != 1 {
		t.Error("order not updated after removal")
	}
	b.RemoveSheet("nope") // no-op
}

func TestBookWithCustomStore(t *testing.T) {
	calls := 0
	b := NewBookWithStore(func() CellStore { calls++; return NewMapCellStore() })
	b.AddSheet("a")
	b.AddSheet("b")
	if calls != 2 {
		t.Errorf("store factory called %d times, want 2", calls)
	}
}

func TestNewWithStoreNilFallsBack(t *testing.T) {
	sh := NewWithStore("x", nil)
	sh.SetValue(Addr(0, 0), Number(1))
	if sh.Value(Addr(0, 0)).Num != 1 {
		t.Error("nil store fallback broken")
	}
}
