package sheet

import (
	"fmt"
	"sync"
)

// Sheet is a single named grid of cells. It is safe for concurrent use; all
// access is serialised by an internal mutex, which matches the single-writer
// model the paper's compute engine assumes (asynchronous recomputation
// happens on background goroutines that read and write cells).
type Sheet struct {
	mu      sync.RWMutex
	name    string
	store   CellStore
	version uint64
}

// New creates a sheet with the given name backed by a map cell store.
func New(name string) *Sheet {
	return NewWithStore(name, NewMapCellStore())
}

// NewWithStore creates a sheet backed by an arbitrary CellStore, typically
// the interface storage manager's blocked store.
func NewWithStore(name string, store CellStore) *Sheet {
	if store == nil {
		store = NewMapCellStore()
	}
	return &Sheet{name: name, store: store}
}

// Name returns the sheet's name.
func (s *Sheet) Name() string { return s.name }

// Version returns a counter that increases on every mutation of the sheet's
// cells. Consumers (e.g. the RANGETABLE scan cache) use it to validate
// snapshots without watching individual cells.
func (s *Sheet) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Store exposes the underlying cell store (used by benchmarks and the
// interface manager; normal callers use the accessor methods).
func (s *Sheet) Store() CellStore { return s.store }

// Get returns the cell stored at the address; empty cells return the zero
// Cell.
func (s *Sheet) Get(a Address) Cell {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, _ := s.store.Get(a)
	return c
}

// Value returns the current value of the cell at the address.
func (s *Sheet) Value(a Address) Value {
	return s.Get(a).Value
}

// SetCell stores a fully specified cell.
func (s *Sheet) SetCell(a Address, c Cell) {
	if !a.Valid() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	s.store.Set(a, c)
}

// SetValue stores a plain value at the address, clearing any formula.
func (s *Sheet) SetValue(a Address, v Value) {
	s.SetCell(a, Cell{Value: v})
}

// SetCellBatch applies many cell writes under a single lock acquisition and
// version bump. fn receives a setter equivalent to SetCell; the setter must
// not be retained after fn returns. Bulk materialisation (query spills,
// table imports) uses this to avoid per-cell locking.
func (s *Sheet) SetCellBatch(fn func(set func(Address, Cell))) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	fn(func(a Address, c Cell) {
		if a.Valid() {
			s.store.Set(a, c)
		}
	})
}

// SetComputedValue updates only the value of the cell at the address,
// preserving its formula and origin. Used by the compute engine when a
// formula's result changes.
func (s *Sheet) SetComputedValue(a Address, v Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	c, _ := s.store.Get(a)
	c.Value = v
	s.store.Set(a, c)
}

// Clear removes the cell at the address.
func (s *Sheet) Clear(a Address) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	s.store.Delete(a)
}

// ClearRange removes every cell in the range.
func (s *Sheet) ClearRange(r Range) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	var addrs []Address
	s.store.GetRange(r, func(a Address, _ Cell) { addrs = append(addrs, a) })
	for _, a := range addrs {
		s.store.Delete(a)
	}
}

// ForEachInRange invokes fn for every non-empty cell in the range.
func (s *Sheet) ForEachInRange(r Range, fn func(Address, Cell)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.store.GetRange(r, fn)
}

// Values returns the values of a range as a dense row-major matrix, with
// empty values where no cell is stored.
func (s *Sheet) Values(r Range) [][]Value {
	out := make([][]Value, r.Rows())
	for i := range out {
		out[i] = make([]Value, r.Cols())
	}
	s.ForEachInRange(r, func(a Address, c Cell) {
		out[a.Row-r.Start.Row][a.Col-r.Start.Col] = c.Value
	})
	return out
}

// SetValues writes a dense matrix of values with its top-left corner at the
// given address and returns the covered range.
func (s *Sheet) SetValues(topLeft Address, vals [][]Value) Range {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	maxCols := 0
	for ri, row := range vals {
		if len(row) > maxCols {
			maxCols = len(row)
		}
		for ci, v := range row {
			a := Addr(topLeft.Row+ri, topLeft.Col+ci)
			if v.IsEmpty() {
				s.store.Delete(a)
				continue
			}
			c, _ := s.store.Get(a)
			c.Value = v
			c.Formula = ""
			s.store.Set(a, c)
		}
	}
	if len(vals) == 0 || maxCols == 0 {
		return Range{Start: topLeft, End: topLeft}
	}
	return Range{Start: topLeft, End: Addr(topLeft.Row+len(vals)-1, topLeft.Col+maxCols-1)}
}

// CellCount returns the number of non-empty cells on the sheet.
func (s *Sheet) CellCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Len()
}

// UsedRange returns the bounding range of all non-empty cells.
func (s *Sheet) UsedRange() (Range, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Bounds()
}

// InsertRows shifts cells at or below `row` down by count. Negative counts
// delete rows.
func (s *Sheet) InsertRows(row, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	s.store.InsertRows(row, count)
}

// InsertCols shifts cells at or right of `col` right by count. Negative
// counts delete columns.
func (s *Sheet) InsertCols(col, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	s.store.InsertCols(col, count)
}

// String summarises the sheet for debugging.
func (s *Sheet) String() string {
	return fmt.Sprintf("Sheet(%s, %d cells)", s.name, s.CellCount())
}

// Book is a collection of named sheets — the spreadsheet "workbook".
type Book struct {
	mu     sync.RWMutex
	sheets map[string]*Sheet
	order  []string
	// newStore builds the cell store for each newly added sheet, allowing
	// a workbook to be configured to use the interface storage manager.
	newStore func() CellStore
}

// NewBook creates an empty workbook whose sheets use map cell stores.
func NewBook() *Book {
	return NewBookWithStore(func() CellStore { return NewMapCellStore() })
}

// NewBookWithStore creates an empty workbook whose sheets use cell stores
// produced by the given factory.
func NewBookWithStore(factory func() CellStore) *Book {
	return &Book{sheets: make(map[string]*Sheet), newStore: factory}
}

// AddSheet creates and returns a new sheet with the given name. If a sheet
// with the name already exists it is returned unchanged.
func (b *Book) AddSheet(name string) *Sheet {
	b.mu.Lock()
	defer b.mu.Unlock()
	if sh, ok := b.sheets[name]; ok {
		return sh
	}
	sh := NewWithStore(name, b.newStore())
	b.sheets[name] = sh
	b.order = append(b.order, name)
	return sh
}

// Sheet returns the named sheet and whether it exists.
func (b *Book) Sheet(name string) (*Sheet, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	sh, ok := b.sheets[name]
	return sh, ok
}

// SheetNames returns the sheet names in creation order.
func (b *Book) SheetNames() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// RemoveSheet deletes the named sheet.
func (b *Book) RemoveSheet(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.sheets[name]; !ok {
		return
	}
	delete(b.sheets, name)
	for i, n := range b.order {
		if n == name {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}
