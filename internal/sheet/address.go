// Package sheet implements the spreadsheet data model used by DataSpread:
// typed cell values, A1-style addresses and ranges, and sparse sheets backed
// by pluggable cell stores.
//
// Rows and columns are zero-based internally; the textual A1 notation used by
// formulas and by the public API is one-based for rows ("A1" is row 0, col 0).
package sheet

import (
	"fmt"
	"strconv"
	"strings"
)

// Address identifies a single cell position on a sheet. Row and Col are
// zero-based.
type Address struct {
	Row int
	Col int
}

// Addr is a convenience constructor for Address.
func Addr(row, col int) Address { return Address{Row: row, Col: col} }

// String renders the address in A1 notation (e.g. {0,0} -> "A1").
func (a Address) String() string {
	return ColName(a.Col) + strconv.Itoa(a.Row+1)
}

// Valid reports whether the address has non-negative coordinates.
func (a Address) Valid() bool { return a.Row >= 0 && a.Col >= 0 }

// Offset returns the address shifted by the given number of rows and columns.
func (a Address) Offset(dRow, dCol int) Address {
	return Address{Row: a.Row + dRow, Col: a.Col + dCol}
}

// Before reports whether a orders before b in row-major order.
func (a Address) Before(b Address) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// ColName converts a zero-based column number to its spreadsheet letters
// (0 -> "A", 25 -> "Z", 26 -> "AA").
func ColName(col int) string {
	if col < 0 {
		return "#REF"
	}
	var buf [8]byte
	i := len(buf)
	col++
	for col > 0 {
		i--
		col--
		buf[i] = byte('A' + col%26)
		col /= 26
	}
	return string(buf[i:])
}

// ParseColName converts spreadsheet column letters to a zero-based column
// number ("A" -> 0, "AA" -> 26). It returns an error for empty or
// non-alphabetic input.
func ParseColName(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("sheet: empty column name")
	}
	col := 0
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			col = col*26 + int(r-'A') + 1
		case r >= 'a' && r <= 'z':
			col = col*26 + int(r-'a') + 1
		default:
			return 0, fmt.Errorf("sheet: invalid column name %q", s)
		}
	}
	return col - 1, nil
}

// ParseAddress parses an A1-style cell reference such as "B12" or "$C$3".
// Dollar signs (absolute markers) are accepted and ignored; use ParseRef to
// retain them.
func ParseAddress(s string) (Address, error) {
	ref, err := ParseRef(s)
	if err != nil {
		return Address{}, err
	}
	return ref.Address, nil
}

// MustParseAddress is like ParseAddress but panics on error. It is intended
// for tests and literals.
func MustParseAddress(s string) Address {
	a, err := ParseAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Ref is a cell reference as written in a formula: an address plus
// absolute/relative markers for each axis (the "$" prefixes in "$A$1").
type Ref struct {
	Address
	AbsRow bool
	AbsCol bool
}

// String renders the reference in A1 notation including absolute markers.
func (r Ref) String() string {
	var sb strings.Builder
	if r.AbsCol {
		sb.WriteByte('$')
	}
	sb.WriteString(ColName(r.Col))
	if r.AbsRow {
		sb.WriteByte('$')
	}
	sb.WriteString(strconv.Itoa(r.Row + 1))
	return sb.String()
}

// Rebase translates a relative reference that was authored at position `from`
// so that it refers to the analogous cell when evaluated at position `to`.
// Absolute axes are left untouched. This is the semantics of copying a
// formula from one cell to another.
func (r Ref) Rebase(from, to Address) Ref {
	out := r
	if !r.AbsRow {
		out.Row += to.Row - from.Row
	}
	if !r.AbsCol {
		out.Col += to.Col - from.Col
	}
	return out
}

// ParseRef parses an A1-style reference, retaining absolute markers.
func ParseRef(s string) (Ref, error) {
	orig := s
	var ref Ref
	if s == "" {
		return ref, fmt.Errorf("sheet: empty cell reference")
	}
	if s[0] == '$' {
		ref.AbsCol = true
		s = s[1:]
	}
	i := 0
	for i < len(s) && ((s[i] >= 'A' && s[i] <= 'Z') || (s[i] >= 'a' && s[i] <= 'z')) {
		i++
	}
	if i == 0 {
		return ref, fmt.Errorf("sheet: invalid cell reference %q", orig)
	}
	col, err := ParseColName(s[:i])
	if err != nil {
		return ref, fmt.Errorf("sheet: invalid cell reference %q: %w", orig, err)
	}
	ref.Col = col
	s = s[i:]
	if s != "" && s[0] == '$' {
		ref.AbsRow = true
		s = s[1:]
	}
	if s == "" {
		return ref, fmt.Errorf("sheet: invalid cell reference %q: missing row", orig)
	}
	row, err := strconv.Atoi(s)
	if err != nil || row <= 0 {
		return ref, fmt.Errorf("sheet: invalid cell reference %q: bad row", orig)
	}
	ref.Row = row - 1
	return ref, nil
}

// Range is a rectangular region of cells, inclusive of both corners.
type Range struct {
	Start Address
	End   Address
}

// NewRange builds a normalised range from any two corner addresses.
func NewRange(a, b Address) Range {
	r := Range{Start: a, End: b}
	return r.Normalize()
}

// RangeOf builds a normalised range from row/column coordinates.
func RangeOf(r1, c1, r2, c2 int) Range {
	return NewRange(Addr(r1, c1), Addr(r2, c2))
}

// Normalize returns an equivalent range whose Start is the top-left corner
// and End the bottom-right corner.
func (r Range) Normalize() Range {
	if r.Start.Row > r.End.Row {
		r.Start.Row, r.End.Row = r.End.Row, r.Start.Row
	}
	if r.Start.Col > r.End.Col {
		r.Start.Col, r.End.Col = r.End.Col, r.Start.Col
	}
	return r
}

// String renders the range in A1:B2 notation. Single-cell ranges render as a
// single address.
func (r Range) String() string {
	if r.Start == r.End {
		return r.Start.String()
	}
	return r.Start.String() + ":" + r.End.String()
}

// Rows returns the number of rows spanned by the range.
func (r Range) Rows() int { return r.End.Row - r.Start.Row + 1 }

// Cols returns the number of columns spanned by the range.
func (r Range) Cols() int { return r.End.Col - r.Start.Col + 1 }

// Size returns the number of cells in the range.
func (r Range) Size() int { return r.Rows() * r.Cols() }

// Contains reports whether the address lies within the range.
func (r Range) Contains(a Address) bool {
	return a.Row >= r.Start.Row && a.Row <= r.End.Row &&
		a.Col >= r.Start.Col && a.Col <= r.End.Col
}

// Intersects reports whether two ranges share at least one cell.
func (r Range) Intersects(o Range) bool {
	return r.Start.Row <= o.End.Row && o.Start.Row <= r.End.Row &&
		r.Start.Col <= o.End.Col && o.Start.Col <= r.End.Col
}

// Intersection returns the overlapping region of two ranges and whether the
// overlap is non-empty.
func (r Range) Intersection(o Range) (Range, bool) {
	if !r.Intersects(o) {
		return Range{}, false
	}
	out := Range{
		Start: Addr(max(r.Start.Row, o.Start.Row), max(r.Start.Col, o.Start.Col)),
		End:   Addr(min(r.End.Row, o.End.Row), min(r.End.Col, o.End.Col)),
	}
	return out, true
}

// Union returns the smallest range covering both ranges.
func (r Range) Union(o Range) Range {
	return Range{
		Start: Addr(min(r.Start.Row, o.Start.Row), min(r.Start.Col, o.Start.Col)),
		End:   Addr(max(r.End.Row, o.End.Row), max(r.End.Col, o.End.Col)),
	}
}

// Offset returns the range shifted by the given number of rows and columns.
func (r Range) Offset(dRow, dCol int) Range {
	return Range{Start: r.Start.Offset(dRow, dCol), End: r.End.Offset(dRow, dCol)}
}

// Addresses returns every address in the range in row-major order. Intended
// for small ranges; large consumers should use ForEach on a Sheet instead.
func (r Range) Addresses() []Address {
	out := make([]Address, 0, r.Size())
	for row := r.Start.Row; row <= r.End.Row; row++ {
		for col := r.Start.Col; col <= r.End.Col; col++ {
			out = append(out, Addr(row, col))
		}
	}
	return out
}

// ParseRange parses "A1:B10" or a single address "A1" into a normalised
// range.
func ParseRange(s string) (Range, error) {
	parts := strings.SplitN(s, ":", 2)
	start, err := ParseAddress(strings.TrimSpace(parts[0]))
	if err != nil {
		return Range{}, fmt.Errorf("sheet: invalid range %q: %w", s, err)
	}
	if len(parts) == 1 {
		return Range{Start: start, End: start}, nil
	}
	end, err := ParseAddress(strings.TrimSpace(parts[1]))
	if err != nil {
		return Range{}, fmt.Errorf("sheet: invalid range %q: %w", s, err)
	}
	return NewRange(start, end), nil
}

// MustParseRange is like ParseRange but panics on error.
func MustParseRange(s string) Range {
	r, err := ParseRange(s)
	if err != nil {
		panic(err)
	}
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
