package sheet

// Cell is the unit of storage on a sheet. A cell holds a computed Value and,
// when the cell was entered as a formula (input beginning with "="), the
// formula source text. Cells bound to relational data additionally carry an
// origin tag used by the interface manager for two-way synchronisation.
type Cell struct {
	// Value is the current (possibly computed) value of the cell.
	Value Value
	// Formula is the formula source without the leading "=". Empty for
	// plain literal cells.
	Formula string
	// Origin describes where the cell's content came from. Plain user
	// input has OriginUser; cells materialised from a DBTABLE binding or a
	// DBSQL result carry the binding identifier so edits can be routed back
	// to the database.
	Origin Origin
}

// OriginKind classifies how a cell's content was produced.
type OriginKind int

const (
	// OriginUser marks content typed directly by the user (or set via the
	// API) with no database backing.
	OriginUser OriginKind = iota
	// OriginTable marks a cell materialised from a DBTABLE binding; edits
	// are translated to UPDATEs on the bound table.
	OriginTable
	// OriginQuery marks a cell materialised from a DBSQL result; such
	// cells are read-only from the sheet side.
	OriginQuery
)

// Origin ties a cell back to the database object it was materialised from.
type Origin struct {
	Kind OriginKind
	// BindingID identifies the DBTABLE or DBSQL binding in the interface
	// manager. Zero for user cells.
	BindingID int64
}

// IsFormula reports whether the cell was entered as a formula.
func (c Cell) IsFormula() bool { return c.Formula != "" }

// IsEmpty reports whether the cell carries no content at all.
func (c Cell) IsEmpty() bool {
	return c.Value.IsEmpty() && c.Formula == "" && c.Origin == Origin{}
}

// CellStore abstracts the physical storage of a sheet's cells. The default
// implementation is an in-memory map; the interface storage manager
// (internal/storage/cellstore) provides a proximity-blocked, 2-D indexed
// store as described in the paper.
type CellStore interface {
	// Get returns the cell at the address and whether one is stored there.
	Get(a Address) (Cell, bool)
	// Set stores the cell at the address, replacing any previous content.
	Set(a Address, c Cell)
	// Delete removes any cell stored at the address.
	Delete(a Address)
	// GetRange returns all stored (non-empty) cells within the range,
	// invoking fn for each. Iteration order is unspecified.
	GetRange(r Range, fn func(Address, Cell))
	// Len returns the number of stored cells.
	Len() int
	// Bounds returns the smallest range containing every stored cell and
	// false when the store is empty.
	Bounds() (Range, bool)
	// InsertRows shifts all cells at or below `row` down by `count`
	// (count may be negative to delete rows, dropping cells that fall in
	// the deleted band).
	InsertRows(row, count int)
	// InsertCols shifts all cells at or right of `col` right by `count`
	// (count may be negative to delete columns).
	InsertCols(col, count int)
}

// MapCellStore is the simplest CellStore: a Go map keyed by address. It is
// the baseline the paper's interface storage manager is compared against.
type MapCellStore struct {
	cells map[Address]Cell
}

// NewMapCellStore returns an empty map-backed cell store.
func NewMapCellStore() *MapCellStore {
	return &MapCellStore{cells: make(map[Address]Cell)}
}

// Get implements CellStore.
func (m *MapCellStore) Get(a Address) (Cell, bool) {
	c, ok := m.cells[a]
	return c, ok
}

// Set implements CellStore.
func (m *MapCellStore) Set(a Address, c Cell) {
	if c.IsEmpty() {
		delete(m.cells, a)
		return
	}
	m.cells[a] = c
}

// Delete implements CellStore.
func (m *MapCellStore) Delete(a Address) { delete(m.cells, a) }

// GetRange implements CellStore. It scans every stored cell, which is what
// makes the flat map the slow baseline for windowed access on large sheets.
func (m *MapCellStore) GetRange(r Range, fn func(Address, Cell)) {
	// For small ranges on large stores, probing each address directly is
	// cheaper than scanning the whole map; pick whichever touches fewer
	// entries. This mirrors what a reasonable non-indexed implementation
	// would do and keeps the baseline honest.
	if r.Size() < len(m.cells) {
		for row := r.Start.Row; row <= r.End.Row; row++ {
			for col := r.Start.Col; col <= r.End.Col; col++ {
				a := Addr(row, col)
				if c, ok := m.cells[a]; ok {
					fn(a, c)
				}
			}
		}
		return
	}
	for a, c := range m.cells {
		if r.Contains(a) {
			fn(a, c)
		}
	}
}

// Len implements CellStore.
func (m *MapCellStore) Len() int { return len(m.cells) }

// Bounds implements CellStore.
func (m *MapCellStore) Bounds() (Range, bool) {
	if len(m.cells) == 0 {
		return Range{}, false
	}
	first := true
	var b Range
	for a := range m.cells {
		if first {
			b = Range{Start: a, End: a}
			first = false
			continue
		}
		b = b.Union(Range{Start: a, End: a})
	}
	return b, true
}

// InsertRows implements CellStore.
func (m *MapCellStore) InsertRows(row, count int) {
	if count == 0 {
		return
	}
	moved := make(map[Address]Cell)
	for a, c := range m.cells {
		if a.Row < row {
			continue
		}
		delete(m.cells, a)
		if count < 0 && a.Row < row-count {
			continue // cell falls inside the deleted band
		}
		moved[Addr(a.Row+count, a.Col)] = c
	}
	for a, c := range moved {
		m.cells[a] = c
	}
}

// InsertCols implements CellStore.
func (m *MapCellStore) InsertCols(col, count int) {
	if count == 0 {
		return
	}
	moved := make(map[Address]Cell)
	for a, c := range m.cells {
		if a.Col < col {
			continue
		}
		delete(m.cells, a)
		if count < 0 && a.Col < col-count {
			continue
		}
		moved[Addr(a.Row, a.Col+count)] = c
	}
	for a, c := range moved {
		m.cells[a] = c
	}
}
