package sheet

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Empty(), ""},
		{Number(42), "42"},
		{Number(3.5), "3.5"},
		{String_("hello"), "hello"},
		{Bool_(true), "TRUE"},
		{Bool_(false), "FALSE"},
		{ErrDiv0, "#DIV/0!"},
		{Errorf("#BAD(%d)", 3), "#BAD(3)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValuePredicates(t *testing.T) {
	if !Empty().IsEmpty() || Number(1).IsEmpty() {
		t.Error("IsEmpty wrong")
	}
	if !ErrRef.IsError() || Number(1).IsError() {
		t.Error("IsError wrong")
	}
	if !Number(1).IsNumber() || String_("1").IsNumber() {
		t.Error("IsNumber wrong")
	}
}

func TestAsNumberCoercion(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{Number(2.5), 2.5, true},
		{Bool_(true), 1, true},
		{Bool_(false), 0, true},
		{Empty(), 0, true},
		{String_(" 17 "), 17, true},
		{String_("abc"), 0, false},
		{ErrDiv0, 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsNumber()
		if got != c.want || ok != c.ok {
			t.Errorf("AsNumber(%+v) = %v,%v want %v,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestAsBoolCoercion(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
		ok   bool
	}{
		{Bool_(true), true, true},
		{Number(0), false, true},
		{Number(-3), true, true},
		{Empty(), false, true},
		{String_("true"), true, true},
		{String_("FALSE"), false, true},
		{String_("yes"), false, false},
		{ErrNA, false, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsBool()
		if got != c.want || ok != c.ok {
			t.Errorf("AsBool(%+v) = %v,%v want %v,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Number(5).Equal(Number(5)) || Number(5).Equal(Number(6)) {
		t.Error("number equality wrong")
	}
	if !String_("Abc").Equal(String_("abc")) {
		t.Error("string equality should be case-insensitive")
	}
	if !Number(5).Equal(String_("5")) {
		t.Error("cross-kind numeric equality should hold")
	}
	if Number(5).Equal(String_("x")) {
		t.Error("number should not equal non-numeric string")
	}
	if !Empty().Equal(Empty()) {
		t.Error("empty equals empty")
	}
	if !ErrDiv0.Equal(ErrDiv0) || ErrDiv0.Equal(ErrRef) {
		t.Error("error equality wrong")
	}
}

func TestValueCompare(t *testing.T) {
	if Number(1).Compare(Number(2)) != -1 || Number(2).Compare(Number(1)) != 1 || Number(2).Compare(Number(2)) != 0 {
		t.Error("number compare wrong")
	}
	if Number(100).Compare(String_("a")) != -1 {
		t.Error("numbers should sort before strings")
	}
	if String_("zzz").Compare(Bool_(false)) != -1 {
		t.Error("strings should sort before booleans")
	}
	if String_("apple").Compare(String_("Banana")) != -1 {
		t.Error("string compare should be case-insensitive")
	}
	if Bool_(false).Compare(Bool_(true)) != -1 || Bool_(true).Compare(Bool_(true)) != 0 {
		t.Error("bool compare wrong")
	}
}

func TestValueCompareAntisymmetryProperty(t *testing.T) {
	gen := func(seed int64, kind uint8) Value {
		switch kind % 4 {
		case 0:
			return Number(float64(seed % 1000))
		case 1:
			return String_(ColName(int(seed % 100)))
		case 2:
			return Bool_(seed%2 == 0)
		default:
			return Empty()
		}
	}
	f := func(s1, s2 int64, k1, k2 uint8) bool {
		a, b := gen(s1, k1), gen(s2, k2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseLiteral(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Empty()},
		{"  ", Empty()},
		{"42", Number(42)},
		{"-3.25", Number(-3.25)},
		{"1e3", Number(1000)},
		{"TRUE", Bool_(true)},
		{"false", Bool_(false)},
		{"hello world", String_("hello world")},
		{"12abc", String_("12abc")},
	}
	for _, c := range cases {
		got := ParseLiteral(c.in)
		if got.Kind != c.want.Kind || got.String() != c.want.String() {
			t.Errorf("ParseLiteral(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestFromAny(t *testing.T) {
	if v := FromAny(nil); !v.IsEmpty() {
		t.Error("nil should be empty")
	}
	if v := FromAny(7); v.Kind != KindNumber || v.Num != 7 {
		t.Error("int conversion wrong")
	}
	if v := FromAny(int64(9)); v.Num != 9 {
		t.Error("int64 conversion wrong")
	}
	if v := FromAny(2.5); v.Num != 2.5 {
		t.Error("float conversion wrong")
	}
	if v := FromAny("x"); v.Kind != KindString || v.Str != "x" {
		t.Error("string conversion wrong")
	}
	if v := FromAny(true); v.Kind != KindBool || !v.Bool {
		t.Error("bool conversion wrong")
	}
	if v := FromAny(Number(3)); v.Num != 3 {
		t.Error("Value passthrough wrong")
	}
	if v := FromAny(struct{ X int }{1}); v.Kind != KindString {
		t.Error("fallback should stringify")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindEmpty: "empty", KindNumber: "number", KindString: "string",
		KindBool: "bool", KindError: "error", Kind(99): "Kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
