package sheet

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a spreadsheet cell value can take.
// Spreadsheets are dynamically typed: the same column may hold numbers and
// strings, and DataSpread infers relational types from observed values when a
// range is exported to the database.
type Kind int

const (
	// KindEmpty is the value of a cell that has never been set or was cleared.
	KindEmpty Kind = iota
	// KindNumber is a 64-bit floating point value (spreadsheet numerics).
	KindNumber
	// KindString is a text value.
	KindString
	// KindBool is a boolean value.
	KindBool
	// KindError is an evaluation error such as #DIV/0! or #REF!.
	KindError
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindEmpty:
		return "empty"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindError:
		return "error"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed spreadsheet value.
//
// dslint:cell
type Value struct {
	Kind Kind
	Num  float64
	Str  string
	Bool bool
	Err  string
}

// Empty returns the empty value.
func Empty() Value { return Value{Kind: KindEmpty} }

// Number wraps a float64 as a Value.
func Number(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// String_ wraps a string as a Value. The trailing underscore avoids clashing
// with the fmt.Stringer method on Value.
func String_(s string) Value { return Value{Kind: KindString, Str: s} }

// Bool_ wraps a bool as a Value.
func Bool_(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// Errorf builds an error value with a formatted message.
func Errorf(format string, args ...any) Value {
	return Value{Kind: KindError, Err: fmt.Sprintf(format, args...)}
}

// ErrorValue builds an error value from a plain message.
func ErrorValue(msg string) Value { return Value{Kind: KindError, Err: msg} }

// Common spreadsheet error values.
var (
	ErrDiv0  = Value{Kind: KindError, Err: "#DIV/0!"}
	ErrRef   = Value{Kind: KindError, Err: "#REF!"}
	ErrValue = Value{Kind: KindError, Err: "#VALUE!"}
	ErrName  = Value{Kind: KindError, Err: "#NAME?"}
	ErrNA    = Value{Kind: KindError, Err: "#N/A"}
)

// IsEmpty reports whether the value is the empty value.
func (v Value) IsEmpty() bool { return v.Kind == KindEmpty }

// IsError reports whether the value is an error value.
func (v Value) IsError() bool { return v.Kind == KindError }

// IsNumber reports whether the value is numeric.
func (v Value) IsNumber() bool { return v.Kind == KindNumber }

// String renders the value the way a spreadsheet would display it.
func (v Value) String() string {
	switch v.Kind {
	case KindEmpty:
		return ""
	case KindNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	case KindError:
		return v.Err
	default:
		return ""
	}
}

// AsNumber coerces the value to a float64 following spreadsheet rules:
// numbers pass through, booleans become 0/1, numeric-looking strings parse,
// empty cells are 0, and everything else fails.
func (v Value) AsNumber() (float64, bool) {
	switch v.Kind {
	case KindNumber:
		return v.Num, true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	case KindEmpty:
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsBool coerces the value to a boolean following spreadsheet rules: nonzero
// numbers are true, "TRUE"/"FALSE" strings parse case-insensitively, empty is
// false.
func (v Value) AsBool() (bool, bool) {
	switch v.Kind {
	case KindBool:
		return v.Bool, true
	case KindNumber:
		return v.Num != 0, true
	case KindEmpty:
		return false, true
	case KindString:
		switch strings.ToUpper(strings.TrimSpace(v.Str)) {
		case "TRUE":
			return true, true
		case "FALSE":
			return false, true
		}
		return false, false
	default:
		return false, false
	}
}

// AsString renders the value as text; identical to String but provided for
// symmetry with the other coercions.
func (v Value) AsString() string { return v.String() }

// Equal reports spreadsheet equality between two values: numbers compare
// numerically, strings case-insensitively (as Excel's "=" does), booleans and
// errors exactly, and cross-kind comparisons attempt numeric coercion before
// failing.
func (v Value) Equal(o Value) bool {
	if v.Kind == o.Kind {
		switch v.Kind {
		case KindEmpty:
			return true
		case KindNumber:
			return v.Num == o.Num
		case KindString:
			return strings.EqualFold(v.Str, o.Str)
		case KindBool:
			return v.Bool == o.Bool
		case KindError:
			return v.Err == o.Err
		}
	}
	a, okA := v.AsNumber()
	b, okB := o.AsNumber()
	if okA && okB {
		return a == b
	}
	return false
}

// Compare orders two values. Numbers order before strings, strings before
// booleans, mirroring spreadsheet sort semantics. It returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	rank := func(k Kind) int {
		switch k {
		case KindNumber, KindEmpty:
			return 0
		case KindString:
			return 1
		case KindBool:
			return 2
		default:
			return 3
		}
	}
	rv, ro := rank(v.Kind), rank(o.Kind)
	if rv != ro {
		if rv < ro {
			return -1
		}
		return 1
	}
	switch rv {
	case 0:
		a, _ := v.AsNumber()
		b, _ := o.AsNumber()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case 1:
		return strings.Compare(strings.ToLower(v.Str), strings.ToLower(o.Str))
	case 2:
		switch {
		case !v.Bool && o.Bool:
			return -1
		case v.Bool && !o.Bool:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(v.Err, o.Err)
	}
}

// ParseLiteral converts raw user input into a Value using spreadsheet typing
// rules: numeric-looking text becomes a number, TRUE/FALSE become booleans,
// everything else is a string. Empty input is the empty value.
func ParseLiteral(s string) Value {
	t := strings.TrimSpace(s)
	if t == "" {
		return Empty()
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Number(f)
	}
	switch strings.ToUpper(t) {
	case "TRUE":
		return Bool_(true)
	case "FALSE":
		return Bool_(false)
	}
	return String_(s)
}

// FromAny converts a Go value into a sheet Value. Supported inputs are the
// numeric types, string, bool, nil, and Value itself; anything else is
// stringified with fmt.Sprint.
func FromAny(x any) Value {
	switch t := x.(type) {
	case nil:
		return Empty()
	case Value:
		return t
	case float64:
		return Number(t)
	case float32:
		return Number(float64(t))
	case int:
		return Number(float64(t))
	case int32:
		return Number(float64(t))
	case int64:
		return Number(float64(t))
	case uint:
		return Number(float64(t))
	case string:
		return String_(t)
	case bool:
		return Bool_(t)
	default:
		return String_(fmt.Sprint(t))
	}
}
