package sheet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColName(t *testing.T) {
	cases := []struct {
		col  int
		want string
	}{
		{0, "A"}, {1, "B"}, {25, "Z"}, {26, "AA"}, {27, "AB"},
		{51, "AZ"}, {52, "BA"}, {701, "ZZ"}, {702, "AAA"},
	}
	for _, c := range cases {
		if got := ColName(c.col); got != c.want {
			t.Errorf("ColName(%d) = %q, want %q", c.col, got, c.want)
		}
	}
}

func TestColNameNegative(t *testing.T) {
	if got := ColName(-1); got != "#REF" {
		t.Errorf("ColName(-1) = %q, want #REF", got)
	}
}

func TestParseColName(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"A", 0}, {"a", 0}, {"Z", 25}, {"AA", 26}, {"az", 51}, {"ZZ", 701}, {"AAA", 702},
	}
	for _, c := range cases {
		got, err := ParseColName(c.in)
		if err != nil {
			t.Fatalf("ParseColName(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseColName(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseColNameErrors(t *testing.T) {
	for _, in := range []string{"", "1", "A1", "A-B"} {
		if _, err := ParseColName(in); err == nil {
			t.Errorf("ParseColName(%q): expected error", in)
		}
	}
}

func TestColNameRoundTripProperty(t *testing.T) {
	f := func(col uint16) bool {
		c := int(col)
		got, err := ParseColName(ColName(c))
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseAddress(t *testing.T) {
	cases := []struct {
		in   string
		want Address
	}{
		{"A1", Addr(0, 0)},
		{"B12", Addr(11, 1)},
		{"$C$3", Addr(2, 2)},
		{"aa100", Addr(99, 26)},
		{"$D7", Addr(6, 3)},
	}
	for _, c := range cases {
		got, err := ParseAddress(c.in)
		if err != nil {
			t.Fatalf("ParseAddress(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseAddress(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAddressErrors(t *testing.T) {
	for _, in := range []string{"", "1A", "A", "A0", "A-1", "$", "$1", "A1B"} {
		if _, err := ParseAddress(in); err == nil {
			t.Errorf("ParseAddress(%q): expected error", in)
		}
	}
}

func TestAddressStringRoundTrip(t *testing.T) {
	f := func(row, col uint16) bool {
		a := Addr(int(row), int(col))
		back, err := ParseAddress(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefAbsoluteMarkers(t *testing.T) {
	r, err := ParseRef("$B$7")
	if err != nil {
		t.Fatal(err)
	}
	if !r.AbsCol || !r.AbsRow || r.Row != 6 || r.Col != 1 {
		t.Errorf("ParseRef($B$7) = %+v", r)
	}
	if r.String() != "$B$7" {
		t.Errorf("String() = %q, want $B$7", r.String())
	}
	r2, err := ParseRef("B7")
	if err != nil {
		t.Fatal(err)
	}
	if r2.AbsCol || r2.AbsRow {
		t.Errorf("ParseRef(B7) should be relative: %+v", r2)
	}
}

func TestRefRebase(t *testing.T) {
	// A relative reference to A1 authored at B2, evaluated at D5, should
	// point to C4 (same offset: one left, one up).
	r := Ref{Address: Addr(0, 0)}
	got := r.Rebase(Addr(1, 1), Addr(4, 3))
	if got.Address != Addr(3, 2) {
		t.Errorf("Rebase = %v, want C4 (3,2)", got.Address)
	}
	// Absolute axes must not move.
	abs := Ref{Address: Addr(0, 0), AbsRow: true, AbsCol: true}
	got = abs.Rebase(Addr(1, 1), Addr(4, 3))
	if got.Address != Addr(0, 0) {
		t.Errorf("absolute Rebase moved to %v", got.Address)
	}
	// Mixed.
	mixed := Ref{Address: Addr(2, 2), AbsRow: true}
	got = mixed.Rebase(Addr(0, 0), Addr(5, 5))
	if got.Row != 2 || got.Col != 7 {
		t.Errorf("mixed Rebase = %v", got.Address)
	}
}

func TestRangeParseAndString(t *testing.T) {
	r, err := ParseRange("A1:C10")
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != Addr(0, 0) || r.End != Addr(9, 2) {
		t.Errorf("ParseRange = %+v", r)
	}
	if r.String() != "A1:C10" {
		t.Errorf("String = %q", r.String())
	}
	single, err := ParseRange("B2")
	if err != nil {
		t.Fatal(err)
	}
	if single.Start != single.End || single.Start != Addr(1, 1) {
		t.Errorf("single = %+v", single)
	}
	if single.String() != "B2" {
		t.Errorf("single String = %q", single.String())
	}
	// Reversed corners normalise.
	rev, err := ParseRange("C10:A1")
	if err != nil {
		t.Fatal(err)
	}
	if rev != r {
		t.Errorf("reversed range %+v != %+v", rev, r)
	}
}

func TestParseRangeErrors(t *testing.T) {
	for _, in := range []string{"", ":", "A1:", ":B2", "A:B", "A1:B2:C3"} {
		if _, err := ParseRange(in); err == nil {
			t.Errorf("ParseRange(%q): expected error", in)
		}
	}
}

func TestRangeGeometry(t *testing.T) {
	r := RangeOf(1, 1, 3, 4) // B2:E4
	if r.Rows() != 3 || r.Cols() != 4 || r.Size() != 12 {
		t.Errorf("geometry: rows=%d cols=%d size=%d", r.Rows(), r.Cols(), r.Size())
	}
	if !r.Contains(Addr(2, 2)) || r.Contains(Addr(0, 0)) || r.Contains(Addr(4, 1)) {
		t.Error("Contains wrong")
	}
	if len(r.Addresses()) != 12 {
		t.Errorf("Addresses len = %d", len(r.Addresses()))
	}
}

func TestRangeIntersection(t *testing.T) {
	a := RangeOf(0, 0, 5, 5)
	b := RangeOf(3, 3, 8, 8)
	got, ok := a.Intersection(b)
	if !ok || got != RangeOf(3, 3, 5, 5) {
		t.Errorf("Intersection = %+v ok=%v", got, ok)
	}
	c := RangeOf(10, 10, 12, 12)
	if _, ok := a.Intersection(c); ok {
		t.Error("disjoint ranges should not intersect")
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
}

func TestRangeUnionProperty(t *testing.T) {
	f := func(r1, c1, r2, c2, r3, c3, r4, c4 uint8) bool {
		a := RangeOf(int(r1), int(c1), int(r2), int(c2))
		b := RangeOf(int(r3), int(c3), int(r4), int(c4))
		u := a.Union(b)
		// Union contains every corner of both ranges.
		return u.Contains(a.Start) && u.Contains(a.End) && u.Contains(b.Start) && u.Contains(b.End)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeIntersectionSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := RangeOf(rng.Intn(50), rng.Intn(50), rng.Intn(50), rng.Intn(50))
		b := RangeOf(rng.Intn(50), rng.Intn(50), rng.Intn(50), rng.Intn(50))
		inter, ok := a.Intersection(b)
		if !ok {
			continue
		}
		for _, addr := range inter.Addresses() {
			if !a.Contains(addr) || !b.Contains(addr) {
				t.Fatalf("intersection cell %v outside inputs", addr)
			}
		}
	}
}

func TestRangeOffset(t *testing.T) {
	r := RangeOf(1, 1, 2, 2).Offset(3, 4)
	if r != RangeOf(4, 5, 5, 6) {
		t.Errorf("Offset = %+v", r)
	}
}

func TestAddressBefore(t *testing.T) {
	if !Addr(0, 5).Before(Addr(1, 0)) {
		t.Error("row-major order wrong")
	}
	if !Addr(1, 0).Before(Addr(1, 1)) {
		t.Error("col order wrong")
	}
	if Addr(1, 1).Before(Addr(1, 1)) {
		t.Error("equal addresses should not be Before")
	}
}
