package pager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openTempStore(t *testing.T) (*FileStore, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "heap.dsp")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return fs, path
}

func TestFileStoreAllocateReadWrite(t *testing.T) {
	fs, _ := openTempStore(t)
	defer fs.Close()
	id := fs.Allocate()
	if id == InvalidPage {
		t.Fatal("Allocate returned InvalidPage")
	}
	if got, err := fs.ReadPage(id); err != nil || len(got) != 0 {
		t.Fatalf("fresh page = %q, %v", got, err)
	}
	if err := fs.WritePage(id, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Errorf("ReadPage = %q", got)
	}
	if _, err := fs.ReadPage(42); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("missing page err = %v", err)
	}
	if err := fs.WritePage(42, nil); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("missing page write err = %v", err)
	}
	if !fs.Exists(id) || fs.Exists(42) {
		t.Error("Exists misreports")
	}
	st := fs.Stats()
	if st.Allocs != 1 || st.Reads != 2 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFileStoreOversizedPageChains(t *testing.T) {
	fs, _ := openTempStore(t)
	defer fs.Close()
	id := fs.Allocate()
	big := bytes.Repeat([]byte("abcdefgh"), 3*PageSize/8) // 3 pages of payload
	if err := fs.WritePage(id, big); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("oversized round trip: got %d bytes, want %d", len(got), len(big))
	}
	// Multi-block writes are charged like the in-memory Store.
	if w := fs.Stats().Writes; w != uint64(1+len(big)/PageSize) {
		t.Errorf("Writes = %d, want %d", w, 1+len(big)/PageSize)
	}
	// Shrinking releases the continuation slots for reuse.
	if err := fs.WritePage(id, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadPage(id); !bytes.Equal(got, []byte("small")) {
		t.Fatalf("shrunk page = %q", got)
	}
	before := fs.next
	id2 := fs.Allocate()
	if id2 >= before {
		t.Errorf("Allocate = %d: expected a recycled continuation slot below %d", id2, before)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	fs, path := openTempStore(t)
	a := fs.Allocate()
	b := fs.Allocate()
	c := fs.Allocate()
	big := bytes.Repeat([]byte{0xAB}, PageSize+100)
	if err := fs.WritePage(a, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WritePage(b, big); err != nil {
		t.Fatal(err)
	}
	fs.Free(c)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, err := re.ReadPage(a); err != nil || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("page a after reopen = %q, %v", got, err)
	}
	if got, err := re.ReadPage(b); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("page b after reopen: %d bytes, %v", len(got), err)
	}
	if re.Exists(c) {
		t.Error("freed page resurrected after reopen")
	}
	if n := re.PageCount(); n != 2 {
		t.Errorf("PageCount after reopen = %d, want 2", n)
	}
	// The persistent free list hands the freed slot back out.
	if id := re.Allocate(); id != c {
		t.Errorf("Allocate after reopen = %d, want recycled %d", id, c)
	}
}

func TestFileStoreDoubleClose(t *testing.T) {
	fs, _ := openTempStore(t)
	id := fs.Allocate()
	if err := fs.WritePage(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := fs.ReadPage(id); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadPage after Close err = %v", err)
	}
	if err := fs.WritePage(id, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("WritePage after Close err = %v", err)
	}
	if err := fs.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after Close err = %v", err)
	}
	if id := fs.Allocate(); id != InvalidPage {
		t.Errorf("Allocate after Close = %d", id)
	}
}

func TestFileStoreRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-heap")
	if err := os.WriteFile(path, bytes.Repeat([]byte("junk"), PageSize/4), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("OpenFileStore accepted a file with a bad magic")
	}
}

func TestBufferPoolOverFileStore(t *testing.T) {
	fs, _ := openTempStore(t)
	defer fs.Close()
	pool := NewBufferPool(fs, 2)
	a := pool.Allocate()
	b := pool.Allocate()
	c := pool.Allocate()
	for i, id := range []PageID{a, b, c} {
		if err := pool.Put(id, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i, id := range []PageID{a, b, c} {
		got, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte{byte('a' + i)}) {
			t.Errorf("page %d = %q", id, got)
		}
	}
	if st := pool.Stats(); st.Misses == 0 {
		t.Error("expected LRU evictions to force store reads")
	}
}
