package pager

import (
	"errors"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// A failed heap fsync must latch: later Syncs report the first failure
// instead of retrying (fsync-gate), and Close surfaces it once more.
func TestFileStoreFsyncGate(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	fs, err := OpenFileStoreVFS(ffs, filepath.Join(t.TempDir(), "heap.dsp"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	id := fs.Allocate()
	if id == InvalidPage {
		t.Fatalf("allocate failed")
	}
	if err := fs.WritePage(id, []byte("payload")); err != nil {
		t.Fatalf("write page: %v", err)
	}
	ffs.SetFault(vfs.Fault{Kind: vfs.OpSync, Err: syscall.EIO})
	first := fs.Sync()
	if first == nil || !errors.Is(first, dberr.ErrIO) {
		t.Fatalf("faulted Sync = %v, want ErrIO", first)
	}
	// The fault is single-shot, so a retried fsync would succeed at the
	// filesystem level — the latch must fail it anyway.
	second := fs.Sync()
	if second == nil || !errors.Is(second, dberr.ErrIO) {
		t.Fatalf("retried Sync = %v, want latched ErrIO", second)
	}
	if !strings.Contains(second.Error(), "fsync-gate") {
		t.Fatalf("retried Sync = %q, want fsync-gate mention", second)
	}
	if err := fs.Err(); err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("Err() = %v, want latched ErrIO", err)
	}
	cerr := fs.Close()
	if cerr == nil || !errors.Is(cerr, dberr.ErrIO) {
		t.Fatalf("Close = %v, want latched ErrIO", cerr)
	}
	// Reads of committed pages must keep working... but the store is
	// closed now; what matters is the error never silently vanished.
}

// An allocation whose slot write fails must surface through Err and
// AllocatePage as a classified I/O failure.
func TestAllocatePageClassifiesBackendFailure(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	fs, err := OpenFileStoreVFS(ffs, filepath.Join(t.TempDir(), "heap.dsp"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer fs.Close()
	pool := NewBufferPool(fs, 0)
	ffs.SetFault(vfs.Fault{Kind: vfs.OpWrite, Err: syscall.ENOSPC})
	id, aerr := pool.AllocatePage()
	if id != InvalidPage || aerr == nil {
		t.Fatalf("AllocatePage = %d, %v; want InvalidPage and error", id, aerr)
	}
	if !errors.Is(aerr, dberr.ErrIO) || !errors.Is(aerr, dberr.ErrDiskFull) {
		t.Fatalf("AllocatePage error = %v, want ErrIO and ErrDiskFull", aerr)
	}
}

// Reclaim re-registers a reserved slot whose header was destroyed, without
// disturbing live or free slots.
func TestFileStoreReclaim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.dsp")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	a, b := fs.Allocate(), fs.Allocate()
	if a == InvalidPage || b == InvalidPage {
		t.Fatalf("allocate failed")
	}
	// Reclaiming an allocated page is a no-op.
	if err := fs.Reclaim(a); err != nil {
		t.Fatalf("reclaim live: %v", err)
	}
	// Reclaiming a freed page pulls it back out of the free list.
	fs.Free(b)
	if err := fs.Reclaim(b); err != nil {
		t.Fatalf("reclaim freed: %v", err)
	}
	if !fs.Exists(b) {
		t.Fatalf("reclaimed page %d should exist", b)
	}
	// The freed slot must not be handed out again.
	c := fs.Allocate()
	if c == b {
		t.Fatalf("allocate handed out reclaimed page %d", b)
	}
	// Reclaiming past the tail extends the file.
	far := fs.next + 3
	if err := fs.Reclaim(far); err != nil {
		t.Fatalf("reclaim past tail: %v", err)
	}
	if !fs.Exists(far) {
		t.Fatalf("reclaimed tail page %d should exist", far)
	}
	if err := fs.WritePage(far, []byte("x")); err != nil {
		t.Fatalf("write reclaimed page: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Reopen: the reclaimed pages persist as allocated heads.
	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	for _, id := range []PageID{a, b, c, far} {
		if !re.Exists(id) {
			t.Fatalf("page %d lost across reopen", id)
		}
	}
}
