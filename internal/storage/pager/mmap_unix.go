//go:build linux || darwin

package pager

import (
	"errors"
	"fmt"
	"syscall"

	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// MmapStore is a FileStore whose read path copies out of a shared read-only
// memory mapping of the heap file instead of issuing a pread per slot access.
// Writes still go through the file descriptor — MAP_SHARED over the same
// inode keeps the mapping coherent with them through the page cache — so the
// write path, crash-safety story and on-disk format are exactly FileStore's.
// When the file grows past the mapped region the store remaps lazily; if the
// mapping cannot be (re)established it degrades to pread.
type MmapStore struct {
	*FileStore
	data []byte // current mapping; nil when mapping is unavailable
}

// OpenMmapStore opens the single-file page heap at path with the mmap read
// path. The returned store is format-compatible with OpenFileStore: either
// can open a file the other wrote.
func OpenMmapStore(path string) (*MmapStore, error) {
	return OpenMmapStoreVFS(vfs.OS(), path)
}

// OpenMmapStoreVFS opens the mmap-backed page heap through an injectable
// filesystem. The mapping is established from the file descriptor the vfs
// handle exposes; reads served from the mapping bypass the vfs read path,
// but every write, sync and truncate still flows through it.
func OpenMmapStoreVFS(fsys vfs.FS, path string) (*MmapStore, error) {
	fs, err := OpenFileStoreVFS(fsys, path)
	if err != nil {
		return nil, err
	}
	m := &MmapStore{FileStore: fs}
	if err := m.remap(); err != nil {
		return nil, errors.Join(err, fs.Close())
	}
	// All readAt calls happen with fs.mu held, so the remap-on-grow path
	// needs no extra locking.
	fs.readAt = m.mmapReadAt
	return m, nil
}

// remap (re)establishes the mapping at the current file size (caller holds
// fs.mu or is the constructor). A zero-length file maps to nil, which the
// read path treats as "fall back to pread".
func (m *MmapStore) remap() error {
	if m.data != nil {
		if err := syscall.Munmap(m.data); err != nil {
			return fmt.Errorf("pager: munmap: %w", err)
		}
		m.data = nil
	}
	info, err := m.f.Stat()
	if err != nil {
		return fmt.Errorf("pager: stat for mmap: %w", err)
	}
	if info.Size() == 0 {
		return nil
	}
	data, err := syscall.Mmap(int(m.f.Fd()), 0, int(info.Size()),
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("pager: mmap %s: %w", m.f.Name(), err)
	}
	m.data = data
	return nil
}

// mmapReadAt copies from the mapping, remapping once when the requested
// range lies beyond it (the file grew) and falling back to pread when the
// mapping still does not cover it.
func (m *MmapStore) mmapReadAt(b []byte, off int64) (int, error) {
	end := off + int64(len(b))
	if end > int64(len(m.data)) {
		if err := m.remap(); err != nil || end > int64(len(m.data)) {
			return m.f.ReadAt(b, off)
		}
	}
	return copy(b, m.data[off:end]), nil
}

// Close unmaps the file and closes the underlying FileStore.
func (m *MmapStore) Close() error {
	m.mu.Lock()
	data := m.data
	m.data = nil
	if data != nil {
		// Route subsequent reads (there should be none) back to pread.
		m.readAt = m.f.ReadAt
	}
	m.mu.Unlock()
	var err error
	if data != nil {
		if uErr := syscall.Munmap(data); uErr != nil {
			err = fmt.Errorf("pager: munmap: %w", uErr)
		}
	}
	if cErr := m.FileStore.Close(); err == nil {
		err = cErr
	}
	return err
}

var _ Backend = (*MmapStore)(nil)

// MmapSupported reports whether OpenMmapStore uses a real memory mapping on
// this platform (benchmarks annotate their output with it).
const MmapSupported = true
