package pager

import (
	"fmt"
	"sort"
)

// Snapshot epochs.
//
// An epoch is a point-in-time view of every logical page's content, pinned
// by a reader so that scans can proceed without the engine lock while
// writers keep mutating pages. The pool keeps the machinery cheap by
// reusing the copy-on-write discipline it already has: page bytes are never
// mutated in place (Put swaps in a fresh copy, backends return owned
// buffers), so serving an old version is a matter of *retaining* the
// superseded byte slice, not copying live data.
//
// Bookkeeping, all under bp.mu:
//
//   - epoch is a counter; every content change (Put, Free, Allocate)
//     stamps the page with the current value. OpenEpoch returns the
//     current value E and bumps the counter, so every later change stamps
//     strictly greater than E.
//   - a page whose stamp is <= E is unchanged since epoch E was opened:
//     readers at E see the current content.
//   - before a change to a page whose old stamp some pinned epoch still
//     covers, the old bytes are parked in retained[id] keyed by that
//     stamp. GetAt(E, id) picks the retained version with the largest
//     stamp <= E.
//   - ReleaseEpoch unpins and garbage-collects: a retained version is
//     freed as soon as no pinned epoch falls inside its validity window
//     [stamp, nextStamp). When the last reader drains, everything goes.
//
// Retention is memory-only and never blocks or redirects checkpoints:
// write-backs and checkpoint frees operate on physical pages and do not
// change logical content, so they need no epoch interaction.

// retainedVersion is one superseded content version of a logical page.
type retainedVersion struct {
	stamp uint64 // page's epoch stamp while this content was current
	ver   uint64 // versions[id] while this content was current
	data  []byte
}

// OpenEpoch pins a snapshot of every page's current content and returns
// its epoch. The caller must release it with ReleaseEpoch; until then the
// pool retains every page version the epoch can still observe.
func (bp *BufferPool) OpenEpoch() uint64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.pinned == nil {
		bp.pinned = make(map[uint64]int)
	}
	e := bp.epoch
	bp.epoch++
	bp.pinned[e]++
	return e
}

// ReleaseEpoch unpins an epoch returned by OpenEpoch and frees retained
// page versions no remaining reader can observe. Releasing an epoch more
// times than it was opened is a no-op.
func (bp *BufferPool) ReleaseEpoch(e uint64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if n, ok := bp.pinned[e]; ok {
		if n--; n <= 0 {
			delete(bp.pinned, e)
		} else {
			bp.pinned[e] = n
		}
	}
	bp.gcRetainedLocked()
}

// GetAt returns the content and version of a logical page as of epoch e,
// in one pool-lock acquisition so the pair is consistent. The returned
// slice is immutable from the pool's point of view (the pool never mutates
// page bytes in place); callers may decode it after the call returns.
func (bp *BufferPool) GetAt(e uint64, id PageID) ([]byte, uint64, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.pageEpoch[id] <= e {
		// Unchanged since the epoch opened: current content is the
		// snapshot content.
		ver := bp.versions[id]
		if f, ok := bp.frames[id]; ok {
			bp.stats.Hits++
			bp.touch(id, f)
			return f.data, ver, nil
		}
		bp.stats.Misses++
		data, err := bp.store.ReadPage(bp.physLocked(id))
		if err != nil {
			return nil, 0, err
		}
		if bp.capacity > 0 {
			bp.install(id, data)
		}
		return data, ver, nil
	}
	vers := bp.retained[id]
	for i := len(vers) - 1; i >= 0; i-- {
		if vers[i].stamp <= e {
			return vers[i].data, vers[i].ver, nil
		}
	}
	return nil, 0, fmt.Errorf("pager: no retained version of page %d at epoch %d: %w", id, e, ErrPageNotFound)
}

// retainBeforeChangeLocked parks the current content of a page that is
// about to change (Put, Free, recycled Allocate) when a pinned epoch can
// still observe it, and advances the page's epoch stamp (caller holds
// bp.mu; call before bumpVersionLocked so the retained version records the
// pre-change counter).
func (bp *BufferPool) retainBeforeChangeLocked(id PageID) {
	stamp := bp.pageEpoch[id]
	if bp.anyPinnedAtLeastLocked(stamp) {
		var old []byte
		if f, ok := bp.frames[id]; ok {
			// Adopt the frame's slice: Put replaces it with a fresh copy
			// and Free drops the frame, so ownership transfers cleanly.
			old = f.data
		} else if data, err := bp.store.ReadPage(bp.physLocked(id)); err == nil {
			old = data
		}
		if old != nil {
			if bp.retained == nil {
				bp.retained = make(map[PageID][]retainedVersion)
			}
			bp.retained[id] = append(bp.retained[id], retainedVersion{
				stamp: stamp,
				ver:   bp.versions[id],
				data:  old,
			})
		}
	}
	if bp.pageEpoch == nil {
		bp.pageEpoch = make(map[PageID]uint64)
	}
	bp.pageEpoch[id] = bp.epoch
}

// anyPinnedAtLeastLocked reports whether some pinned epoch is >= stamp,
// i.e. a reader can still observe content last changed at that stamp
// (caller holds bp.mu).
func (bp *BufferPool) anyPinnedAtLeastLocked(stamp uint64) bool {
	for e := range bp.pinned {
		if e >= stamp {
			return true
		}
	}
	return false
}

// gcRetainedLocked frees retained versions that no pinned epoch can
// observe: version i of a page is live for epochs in [stamp_i, stamp_i+1)
// — the next retained version's stamp, or the page's current stamp for
// the newest one (caller holds bp.mu).
func (bp *BufferPool) gcRetainedLocked() {
	if len(bp.retained) == 0 {
		return
	}
	if len(bp.pinned) == 0 {
		bp.retained = nil
		return
	}
	pins := make([]uint64, 0, len(bp.pinned))
	for e := range bp.pinned {
		pins = append(pins, e)
	}
	sort.Slice(pins, func(i, j int) bool { return pins[i] < pins[j] })
	for id, vers := range bp.retained {
		kept := vers[:0]
		for i, rv := range vers {
			next := bp.pageEpoch[id]
			if i+1 < len(vers) {
				next = vers[i+1].stamp
			}
			if pinnedInRange(pins, rv.stamp, next) {
				kept = append(kept, rv)
			}
		}
		if len(kept) == 0 {
			delete(bp.retained, id)
		} else {
			bp.retained[id] = kept
		}
	}
}

// pinnedInRange reports whether the sorted pin list has an epoch in
// [lo, hi).
func pinnedInRange(pins []uint64, lo, hi uint64) bool {
	i := sort.Search(len(pins), func(i int) bool { return pins[i] >= lo })
	return i < len(pins) && pins[i] < hi
}

// EpochStats reports the number of pinned reader epochs and retained
// superseded page versions (tests and health probes).
func (bp *BufferPool) EpochStats() (pinned, retained int) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, n := range bp.pinned {
		pinned += n
	}
	for _, vers := range bp.retained {
		retained += len(vers)
	}
	return pinned, retained
}
