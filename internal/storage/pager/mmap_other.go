//go:build !linux && !darwin

package pager

import "github.com/dataspread/dataspread/internal/storage/vfs"

// MmapStore falls back to a plain FileStore on platforms without a wired-up
// mmap syscall surface: same API, pread-backed read path.
type MmapStore struct {
	*FileStore
}

// OpenMmapStore opens the page heap at path. On this platform it is an alias
// for OpenFileStore.
func OpenMmapStore(path string) (*MmapStore, error) {
	fs, err := OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	return &MmapStore{FileStore: fs}, nil
}

// OpenMmapStoreVFS opens the page heap through an injectable filesystem. On
// this platform it is an alias for OpenFileStoreVFS.
func OpenMmapStoreVFS(fsys vfs.FS, path string) (*MmapStore, error) {
	fs, err := OpenFileStoreVFS(fsys, path)
	if err != nil {
		return nil, err
	}
	return &MmapStore{FileStore: fs}, nil
}

var _ Backend = (*MmapStore)(nil)

// MmapSupported reports whether OpenMmapStore uses a real memory mapping on
// this platform.
const MmapSupported = false
