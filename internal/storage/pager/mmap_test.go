package pager

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestMmapStoreRoundTrip exercises the mmap read path against the FileStore
// write path: pages written through the fd must be readable through the
// mapping, including pages allocated after the initial map (file growth) and
// oversized chained pages.
func TestMmapStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.dsp")
	m, err := OpenMmapStore(path)
	if err != nil {
		t.Fatal(err)
	}
	small := []byte("hello mmap")
	big := bytes.Repeat([]byte{0xAB}, 3*PageSize+17)

	p1 := m.Allocate()
	if err := m.WritePage(p1, small); err != nil {
		t.Fatal(err)
	}
	p2 := m.Allocate()
	if err := m.WritePage(p2, big); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		id   PageID
		want []byte
	}{{p1, small}, {p2, big}} {
		got, err := m.ReadPage(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, tc.want) {
			t.Fatalf("page %d: got %d bytes, want %d", tc.id, len(got), len(tc.want))
		}
	}
	// Overwrite in place and re-read: the mapping must observe fd writes.
	if err := m.WritePage(p1, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadPage(p1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "updated" {
		t.Fatalf("after overwrite: %q", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Format compatibility: a plain FileStore opens the same file.
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	got, err = fs.ReadPage(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("FileStore reopen read differs")
	}
}

// TestBufferPoolCopyOnWrite verifies the shadow-paging invariant: once a
// physical page is declared durable, no write-back — flush or eviction —
// overwrites it in place; the logical page relocates and the durable bytes
// stay readable on the backend until CommitCheckpoint frees them.
func TestBufferPoolCopyOnWrite(t *testing.T) {
	store := NewStore()
	bp := NewBufferPool(store, 4)
	id := bp.Allocate()
	v1 := []byte("durable image v1")
	if err := bp.Put(id, v1); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	phys1 := bp.Resolve(id)
	bp.SetDurable([]PageID{phys1})

	// Overwrite and flush: must relocate, not overwrite phys1.
	v2 := []byte("new image v2")
	if err := bp.Put(id, v2); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	phys2 := bp.Resolve(id)
	if phys2 == phys1 {
		t.Fatal("protected page was written in place")
	}
	if raw, err := store.ReadPage(phys1); err != nil || !bytes.Equal(raw, v1) {
		t.Fatalf("durable image torn: %q %v", raw, err)
	}
	if raw, err := store.ReadPage(phys2); err != nil || !bytes.Equal(raw, v2) {
		t.Fatalf("relocated image wrong: %q %v", raw, err)
	}
	// The logical id still reads the newest content through the pool.
	if data, err := bp.Get(id); err != nil || !bytes.Equal(data, v2) {
		t.Fatalf("Get(%d) = %q %v", id, data, err)
	}

	// Checkpoint commit releases the superseded durable page — except that
	// phys1 doubles as the live logical id, so instead of returning to the
	// backend free list (where it could be recycled into a colliding new
	// logical id) it is parked for physical-only reuse and must still exist.
	bp.BeginCheckpoint([]PageID{phys2})
	bp.CommitCheckpoint()
	if !store.Exists(phys1) {
		t.Fatal("superseded page sharing the live logical id must be parked, not freed")
	}
	if !store.Exists(phys2) {
		t.Fatal("new durable page freed at commit")
	}

	// Relocations after BeginCheckpoint must survive that commit (the new
	// root references them) and only die at the *next* commit.
	v3 := []byte("post-capture v3")
	if err := bp.Put(id, v3); err != nil {
		t.Fatal(err)
	}
	bp.BeginCheckpoint([]PageID{phys2}) // capture happens before the flush below
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	phys3 := bp.Resolve(id)
	if phys3 == phys2 {
		t.Fatal("pending page was written in place")
	}
	bp.CommitCheckpoint()
	if !store.Exists(phys2) {
		t.Fatal("page referenced by the committed root was freed early")
	}
	bp.BeginCheckpoint([]PageID{phys3})
	bp.CommitCheckpoint()
	if store.Exists(phys2) {
		t.Fatal("superseded page survived the next commit")
	}
	_ = v3
}

// TestBufferPoolVersions: every content-changing event — Put, Free, and
// Allocate reusing a recycled id — must advance the page version, so decoded
// caches keyed by (id, version) can never serve a stale image.
func TestBufferPoolVersions(t *testing.T) {
	store := NewStore()
	bp := NewBufferPool(store, 4)
	id := bp.Allocate()
	v0 := bp.Version(id)
	if err := bp.Put(id, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if bp.Version(id) == v0 {
		t.Fatal("Put did not bump the version")
	}
	v1 := bp.Version(id)
	bp.Free(id)
	if bp.Version(id) == v1 {
		t.Fatal("Free did not bump the version")
	}
}

// TestBufferPoolFreeProtectedDeferred: freeing a durable page defers the
// backend free until the next checkpoint commit.
func TestBufferPoolFreeProtectedDeferred(t *testing.T) {
	store := NewStore()
	bp := NewBufferPool(store, 4)
	id := bp.Allocate()
	if err := bp.Put(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	phys := bp.Resolve(id)
	bp.SetDurable([]PageID{phys})
	bp.Free(id)
	if !store.Exists(phys) {
		t.Fatal("durable page freed in place")
	}
	bp.BeginCheckpoint(nil)
	bp.CommitCheckpoint()
	if store.Exists(phys) {
		t.Fatal("freed durable page survived the commit")
	}
}

// TestAllocateNeverCollidesWithRelocatedLogicalID is the regression test for
// the physical/logical id-collision corruption: after a relocated page's old
// physical slot is freed at checkpoint commit, FileStore's LIFO free list
// hands it right back — and it must NOT become a new logical page id while
// the relocated page still lives under that id.
func TestAllocateNeverCollidesWithRelocatedLogicalID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.dsp")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	bp := NewBufferPool(fs, 8)
	id := bp.Allocate()
	if err := bp.Put(id, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	physOld := bp.Resolve(id)
	bp.SetDurable([]PageID{physOld})
	// Relocate by writing again; commit a checkpoint so physOld is released.
	if err := bp.Put(id, []byte("precious v2")); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	bp.BeginCheckpoint([]PageID{bp.Resolve(id)})
	bp.CommitCheckpoint()
	// The backend would recycle physOld (== the live logical id) first;
	// Allocate must skip it.
	for i := 0; i < 4; i++ {
		n := bp.Allocate()
		if n == id {
			t.Fatalf("Allocate handed out live logical id %d", id)
		}
	}
	if data, err := bp.Get(id); err != nil || string(data) != "precious v2" {
		t.Fatalf("live page corrupted after id recycling: %q %v", data, err)
	}
	// Parked physical pages are still usable as relocation targets.
	bp.SetDurable([]PageID{bp.Resolve(id)})
	if err := bp.Put(id, []byte("precious v3")); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if data, err := bp.Get(id); err != nil || string(data) != "precious v3" {
		t.Fatalf("relocation onto parked page lost data: %q %v", data, err)
	}
}
