package pager

import (
	"os"
	"path/filepath"
	"testing"
)

// countFDs returns the number of open file descriptors for this process.
// Linux-only introspection (/proc/self/fd); the test skips elsewhere.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot inspect open file descriptors: %v", err)
	}
	return len(ents)
}

// TestOpenFileStoreErrorClosesFile is the regression test for the
// discarded-Close bugs on the OpenFileStore failure paths: an open that fails
// validation (bad magic here) must close the file it opened, so repeated
// failed opens do not leak descriptors.
func TestOpenFileStoreErrorClosesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.heap")
	junk := make([]byte, PageSize)
	copy(junk, "not a page heap")
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}

	before := countFDs(t)
	const attempts = 32
	for i := 0; i < attempts; i++ {
		if _, err := OpenFileStore(path); err == nil {
			t.Fatal("OpenFileStore accepted a file with a bad magic")
		}
	}
	after := countFDs(t)
	if after > before {
		t.Fatalf("file descriptors leaked across %d failed opens: %d -> %d", attempts, before, after)
	}
}
