package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// FileStore is a Backend over a single file laid out as a heap of
// PageSize-byte slots.
//
// Slot 0 is the header:
//
//	[0:8]   magic "DSPGHEAP"
//	[8:12]  format version (little endian uint32, currently 1)
//	[12:20] slot count including the header (uint64)
//	[20:28] free-list head slot (uint64, 0 = empty; informational)
//
// Every other slot starts with a 16-byte slot header:
//
//	[0:4]   payload length in this slot (uint32)
//	[4:12]  next slot in the chain (uint64, 0 = none)
//	[12]    flags: 0 = chain head, 1 = continuation, 2 = free
//	[13:16] reserved
//
// followed by up to PageSize-16 payload bytes. A logical page larger than one
// slot's payload capacity spills into a chain of continuation slots, so
// callers keep the in-memory Store's "oversized pages are multi-block writes"
// semantics. Freed slots are recycled in memory immediately but flagged on
// disk lazily: the pending flags coalesce into one header-write pass at
// Sync/Close, and a slot reused before the flush never writes a free flag at
// all. Recovery scans the slot headers at open to rebuild the free list, so
// the header page being stale is harmless; slots freed after the last flush
// merely leak across a crash (the startup sweep of unreachable pages
// reclaims them) — no live data is at risk.
type FileStore struct {
	mu     sync.Mutex
	f      vfs.File
	next   PageID   // next never-used slot; also the slot count
	free   []PageID // recycled slots, used LIFO
	heads  map[PageID]struct{}
	stats  Stats
	closed bool

	// dirtyFree holds recycled slots whose on-disk flagFree header has not
	// been written yet. Frees are batched: the flags coalesce into one
	// header-write pass at Sync/Close (the checkpoint adopt stage) instead
	// of one full-slot write per free, and a slot reused before the flush
	// never writes its free flag at all.
	dirtyFree map[PageID]struct{}

	// syncErr latches the first fsync failure. Per the fsync-gate rule the
	// kernel may have dropped the dirty pages a failed fsync covered, so a
	// retried fsync that "succeeds" proves nothing — every later Sync and
	// the final Close report this error instead of retrying.
	syncErr error

	// opErr latches the first I/O failure inside an operation whose
	// signature cannot carry it (Allocate, Free). Err exposes it so callers
	// seeing InvalidPage can classify the cause.
	opErr error

	// readAt serves all data reads; it defaults to pread on the file and is
	// replaced by MmapStore with a copy out of a shared mapping. Only called
	// with mu held.
	readAt func(b []byte, off int64) (int, error)
}

const (
	slotHeaderSize = 16
	slotPayload    = PageSize - slotHeaderSize
	fileVersion    = 1

	flagHead         = 0
	flagContinuation = 1
	flagFree         = 2
)

var fileMagic = [8]byte{'D', 'S', 'P', 'G', 'H', 'E', 'A', 'P'}

// ErrClosed is returned when using a FileStore after Close.
var ErrClosed = errors.New("pager: file store is closed")

// OpenFileStore opens (creating if necessary) the single-file page heap at
// path on the real filesystem.
func OpenFileStore(path string) (*FileStore, error) {
	return OpenFileStoreVFS(vfs.OS(), path)
}

// OpenFileStoreVFS opens the page heap through an injectable filesystem.
// Existing files are validated and scanned to rebuild the allocation and
// free-list state.
func OpenFileStoreVFS(fsys vfs.FS, path string) (*FileStore, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	fs := &FileStore{f: f, next: 1, heads: make(map[PageID]struct{})}
	fs.readAt = f.ReadAt
	info, err := f.Stat()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("pager: stat %s: %w", path, err), f.Close())
	}
	if info.Size() == 0 {
		if err := fs.writeHeader(); err != nil {
			return nil, errors.Join(err, f.Close())
		}
		return fs, nil
	}
	if err := fs.load(info.Size()); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return fs, nil
}

// load validates the header and scans slot headers to rebuild in-memory
// state. The slot count is derived from the file size (a torn final slot from
// a crashed extension is dropped); the persistent free flags are
// authoritative for the free list.
func (fs *FileStore) load(size int64) error {
	var hdr [28]byte
	if _, err := fs.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("pager: read header: %w", err)
	}
	if [8]byte(hdr[0:8]) != fileMagic {
		return fmt.Errorf("pager: bad magic %q", hdr[0:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != fileVersion {
		return fmt.Errorf("pager: unsupported format version %d", v)
	}
	fs.next = PageID(size / PageSize)
	if fs.next < 1 {
		fs.next = 1
	}
	for id := PageID(1); id < fs.next; id++ {
		_, _, flags, err := fs.readSlotHeader(id)
		if err != nil {
			return err
		}
		switch flags {
		case flagHead:
			fs.heads[id] = struct{}{}
		case flagFree:
			fs.free = append(fs.free, id)
		}
	}
	return nil
}

func slotOffset(id PageID) int64 { return int64(id) * PageSize }

func (fs *FileStore) readSlotHeader(id PageID) (length uint32, next PageID, flags byte, err error) {
	var buf [slotHeaderSize]byte
	if _, err := fs.readAt(buf[:], slotOffset(id)); err != nil {
		return 0, 0, 0, fmt.Errorf("pager: read slot %d header: %w", id, err)
	}
	return binary.LittleEndian.Uint32(buf[0:4]),
		PageID(binary.LittleEndian.Uint64(buf[4:12])),
		buf[12], nil
}

// writeSlot writes a full slot: header plus zero-padded payload.
func (fs *FileStore) writeSlot(id PageID, flags byte, next PageID, payload []byte) error {
	var buf [PageSize]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:12], uint64(next))
	buf[12] = flags
	copy(buf[slotHeaderSize:], payload)
	if _, err := fs.f.WriteAt(buf[:], slotOffset(id)); err != nil {
		return fmt.Errorf("pager: write slot %d: %w", id, err)
	}
	return nil
}

func (fs *FileStore) writeHeader() error {
	var buf [PageSize]byte
	copy(buf[0:8], fileMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], fileVersion)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(fs.next))
	var freeHead PageID
	if n := len(fs.free); n > 0 {
		freeHead = fs.free[n-1]
	}
	binary.LittleEndian.PutUint64(buf[20:28], uint64(freeHead))
	if _, err := fs.f.WriteAt(buf[:], 0); err != nil {
		return fmt.Errorf("pager: write header: %w", err)
	}
	return nil
}

// allocSlot grabs a slot from the free list or extends the file, without
// touching the public Allocs counter (continuation slots are an internal
// detail of oversized pages).
func (fs *FileStore) allocSlot(flags byte) (PageID, error) {
	var id PageID
	if n := len(fs.free); n > 0 {
		id = fs.free[n-1]
		fs.free = fs.free[:n-1]
		// A pending free flag is moot: the slot header is rewritten below.
		delete(fs.dirtyFree, id)
	} else {
		id = fs.next
		fs.next++
	}
	if err := fs.writeSlot(id, flags, 0, nil); err != nil {
		return InvalidPage, err
	}
	return id, nil
}

// freeSlot recycles one slot in memory and defers the on-disk free flag to
// the next Sync/Close flush. Churny workloads free and promptly reuse slots,
// so flagging eagerly cost one full-slot write per free that the very next
// allocation overwrote; deferring turns a free into a map insert and the
// flush into one 16-byte header write per slot still free at the barrier. A
// crash before the flush leaves the slots flagged live on disk — they leak
// until the startup sweep of unreachable pages reclaims them, but no live
// data is ever at risk.
func (fs *FileStore) freeSlot(id PageID) {
	fs.free = append(fs.free, id)
	if fs.dirtyFree == nil {
		fs.dirtyFree = make(map[PageID]struct{})
	}
	fs.dirtyFree[id] = struct{}{}
}

// writeSlotHeader rewrites just the 16-byte slot header, leaving the payload
// bytes in place (free-flag flushes have no payload to clear).
func (fs *FileStore) writeSlotHeader(id PageID, flags byte, next PageID, length uint32) error {
	var buf [slotHeaderSize]byte
	binary.LittleEndian.PutUint32(buf[0:4], length)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(next))
	buf[12] = flags
	if _, err := fs.f.WriteAt(buf[:], slotOffset(id)); err != nil {
		return fmt.Errorf("pager: write slot %d header: %w", id, err)
	}
	return nil
}

// flushFreeSlots writes the deferred flagFree headers (caller holds mu).
func (fs *FileStore) flushFreeSlots() error {
	for id := range fs.dirtyFree {
		if err := fs.writeSlotHeader(id, flagFree, 0, 0); err != nil {
			return err
		}
		delete(fs.dirtyFree, id)
	}
	return nil
}

// chain returns the continuation slots of a head page, in order.
func (fs *FileStore) chain(id PageID) ([]PageID, error) {
	var out []PageID
	_, next, _, err := fs.readSlotHeader(id)
	if err != nil {
		return nil, err
	}
	for next != InvalidPage {
		if len(out) > int(fs.next) {
			return nil, fmt.Errorf("pager: slot chain cycle at page %d", id)
		}
		out = append(out, next)
		_, n, _, err := fs.readSlotHeader(next)
		if err != nil {
			return nil, err
		}
		next = n
	}
	return out, nil
}

// Allocate reserves a new, empty page and returns its id.
func (fs *FileStore) Allocate() PageID {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return InvalidPage
	}
	id, err := fs.allocSlot(flagHead)
	if err != nil {
		fs.recordOpErr(err)
		return InvalidPage
	}
	fs.heads[id] = struct{}{}
	fs.stats.Allocs++
	return id
}

// recordOpErr latches the first swallowed I/O failure for Err. Callers hold
// mu.
func (fs *FileStore) recordOpErr(err error) {
	if fs.opErr == nil {
		fs.opErr = err
	}
}

// Err returns the first I/O failure recorded by an operation that could not
// report it directly — a failed slot write inside Allocate or Free, or a
// latched fsync failure. Callers that observe InvalidPage from Allocate use
// it to classify the cause.
func (fs *FileStore) Err() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.syncErr != nil {
		return fs.syncErr
	}
	return fs.opErr
}

// Reclaim re-registers slot id as an allocated, empty head page even when
// the on-disk slot header is unreadable garbage — a torn write into a
// reserved slot (a root ping-pong slot) must not brick the file. The slot is
// pulled out of the free list if it landed there, and the file is extended
// if it is beyond the current tail.
func (fs *FileStore) Reclaim(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if id == InvalidPage {
		return fmt.Errorf("pager: cannot reclaim the header slot")
	}
	if _, ok := fs.heads[id]; ok {
		return nil
	}
	for i, fid := range fs.free {
		if fid == id {
			fs.free = append(fs.free[:i], fs.free[i+1:]...)
			delete(fs.dirtyFree, id)
			break
		}
	}
	if err := fs.writeSlot(id, flagHead, 0, nil); err != nil {
		return err
	}
	if id >= fs.next {
		fs.next = id + 1
	}
	fs.heads[id] = struct{}{}
	fs.stats.Allocs++
	return nil
}

// Free releases a page and its overflow chain. Freeing an unknown page is a
// no-op, matching Store.
func (fs *FileStore) Free(id PageID) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return
	}
	if _, ok := fs.heads[id]; !ok {
		return
	}
	tail, err := fs.chain(id)
	if err != nil {
		fs.recordOpErr(err)
		return
	}
	delete(fs.heads, id)
	fs.freeSlot(id)
	for _, c := range tail {
		fs.freeSlot(c)
	}
	fs.stats.Frees++
}

// ReadPage reassembles and returns the page contents.
func (fs *FileStore) ReadPage(id PageID) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	if _, ok := fs.heads[id]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	fs.stats.Reads++
	var out []byte
	cur := id
	for cur != InvalidPage {
		length, next, _, err := fs.readSlotHeader(cur)
		if err != nil {
			return nil, err
		}
		if length > slotPayload {
			return nil, fmt.Errorf("pager: slot %d has invalid payload length %d", cur, length)
		}
		if length > 0 {
			buf := make([]byte, length)
			if _, err := fs.readAt(buf, slotOffset(cur)+slotHeaderSize); err != nil {
				return nil, fmt.Errorf("pager: read slot %d payload: %w", cur, err)
			}
			out = append(out, buf...)
		}
		cur = next
	}
	if out == nil {
		out = []byte{}
	}
	return out, nil
}

// WritePage replaces the page contents, growing or shrinking the overflow
// chain as needed. Continuation slots are written before the head so a crash
// mid-write leaves the old head intact as long as possible.
func (fs *FileStore) WritePage(id PageID, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if _, ok := fs.heads[id]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	// Same multi-block charge as the in-memory Store.
	fs.stats.Writes += uint64(1 + len(data)/PageSize)

	chunks := 1 + (max(len(data), 1)-1)/slotPayload
	old, err := fs.chain(id)
	if err != nil {
		return err
	}
	slots := append([]PageID{id}, old...)
	for len(slots) < chunks {
		c, err := fs.allocSlot(flagContinuation)
		if err != nil {
			return err
		}
		slots = append(slots, c)
	}
	surplus := slots[chunks:]
	slots = slots[:chunks]
	for i := chunks - 1; i >= 0; i-- {
		lo := i * slotPayload
		hi := min(lo+slotPayload, len(data))
		if lo > hi {
			lo = hi
		}
		next := InvalidPage
		if i+1 < chunks {
			next = slots[i+1]
		}
		flags := byte(flagContinuation)
		if i == 0 {
			flags = flagHead
		}
		if err := fs.writeSlot(slots[i], flags, next, data[lo:hi]); err != nil {
			return err
		}
	}
	// Only release surplus slots once the shortened chain is fully
	// written (their free flags land at the next Sync; until then the
	// shortened head no longer references them, so they are merely dead
	// space after a crash).
	for _, extra := range surplus {
		fs.freeSlot(extra)
	}
	return nil
}

// Exists reports whether the page is allocated.
func (fs *FileStore) Exists(id PageID) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.heads[id]
	return ok
}

// PageCount returns the number of allocated (head) pages.
func (fs *FileStore) PageCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.heads)
}

// PageIDs returns the ids of all allocated (head) pages.
func (fs *FileStore) PageIDs() []PageID {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]PageID, 0, len(fs.heads))
	for id := range fs.heads {
		out = append(out, id)
	}
	return out
}

// Sync refreshes the header page and forces everything to stable storage.
// After one fsync failure every later Sync reports that first error without
// retrying: the kernel may already have dropped the dirty pages, so a retry
// that returns nil would be a silent lie about durability.
// dslint:critical
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if fs.syncErr != nil {
		return fmt.Errorf("pager: heap fsync failed earlier, not retrying (fsync-gate): %w", fs.syncErr)
	}
	if err := fs.flushFreeSlots(); err != nil {
		return err
	}
	if err := fs.writeHeader(); err != nil {
		return err
	}
	if err := fs.f.Sync(); err != nil {
		fs.syncErr = err
		return err
	}
	return nil
}

// Close syncs and closes the file. A second Close is a no-op. A latched
// fsync failure skips the final header write and sync (fsync-gate) and is
// reported alongside the close.
// dslint:critical
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	var err error
	if fs.syncErr != nil {
		err = fmt.Errorf("pager: heap fsync failed earlier, not retrying (fsync-gate): %w", fs.syncErr)
	} else {
		err = fs.flushFreeSlots()
		if hErr := fs.writeHeader(); err == nil {
			err = hErr
		}
		if sErr := fs.f.Sync(); sErr != nil {
			fs.syncErr = sErr
			if err == nil {
				err = sErr
			}
		}
	}
	if cErr := fs.f.Close(); err == nil {
		err = cErr
	}
	return err
}

// Stats returns a snapshot of the accumulated statistics.
func (fs *FileStore) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats zeroes the counters.
func (fs *FileStore) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
}

var _ Backend = (*FileStore)(nil)
