// Package pager provides the block-granular storage substrate shared by the
// relational storage managers and the interface storage manager.
//
// The paper reasons about storage efficiency in terms of how many disk blocks
// an operation touches (e.g. "radically reducing the disk blocks that need an
// update during a schema change"). The pager therefore models a disk as a set
// of fixed-size pages and counts every block read and write, and layers an
// LRU buffer pool on top. Benchmarks compare storage layouts by block-touch
// counts as well as wall-clock time.
//
// dslint:vfsonly
package pager

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the logical page capacity in bytes. Storage managers size
// their data blocks around it.
const PageSize = 4096

// PageID identifies a page within a Store. Zero is never a valid page id.
type PageID uint64

// InvalidPage is the zero PageID, used to mark "no page".
const InvalidPage PageID = 0

// ErrPageNotFound is returned when reading a page that was never allocated or
// has been freed.
var ErrPageNotFound = errors.New("pager: page not found")

// Stats counts block-level activity. Reads and Writes count accesses that
// reached the underlying store (i.e. buffer-pool misses and write-backs);
// Hits counts buffer-pool hits that avoided a block read.
type Stats struct {
	Reads  uint64 // block reads from the store
	Writes uint64 // block writes to the store
	Allocs uint64 // pages allocated
	Frees  uint64 // pages freed
	Hits   uint64 // buffer pool hits
	Misses uint64 // buffer pool misses
}

// String formats the statistics compactly for experiment output.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d hits=%d misses=%d",
		s.Reads, s.Writes, s.Allocs, s.Frees, s.Hits, s.Misses)
}

// Sub returns the element-wise difference s - o, used to measure the cost of
// a single operation between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:  s.Reads - o.Reads,
		Writes: s.Writes - o.Writes,
		Allocs: s.Allocs - o.Allocs,
		Frees:  s.Frees - o.Frees,
		Hits:   s.Hits - o.Hits,
		Misses: s.Misses - o.Misses,
	}
}

// BlocksTouched returns the total number of distinct block accesses (reads +
// writes), the paper's primary storage cost metric.
func (s Stats) BlocksTouched() uint64 { return s.Reads + s.Writes }

// Store is an in-memory simulation of a block device: a set of fixed-size
// pages addressed by PageID. All methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	pages map[PageID][]byte
	next  PageID
	stats Stats
}

// NewStore creates an empty page store.
func NewStore() *Store {
	return &Store{pages: make(map[PageID][]byte), next: 1}
}

// Allocate reserves a new, zero-length page and returns its id.
func (s *Store) Allocate() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	s.pages[id] = nil
	s.stats.Allocs++
	return id
}

// Free releases a page. Freeing an unknown page is a no-op.
func (s *Store) Free(id PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pages[id]; ok {
		delete(s.pages, id)
		s.stats.Frees++
	}
}

// Read returns a copy of the page contents.
func (s *Store) Read(id PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	s.stats.Reads++
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Write replaces the page contents. Writing to an unallocated page is an
// error; pages larger than PageSize are accepted (a storage manager that
// overflows a page models a multi-block write and is charged accordingly).
func (s *Store) Write(id PageID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pages[id]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	blocks := uint64(1 + len(data)/PageSize)
	s.stats.Writes += blocks
	cp := make([]byte, len(data))
	copy(cp, data)
	s.pages[id] = cp
	return nil
}

// Exists reports whether the page is allocated.
func (s *Store) Exists(id PageID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pages[id]
	return ok
}

// PageCount returns the number of allocated pages.
func (s *Store) PageCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// PageIDs returns the ids of all allocated pages.
func (s *Store) PageIDs() []PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PageID, 0, len(s.pages))
	for id := range s.pages {
		out = append(out, id)
	}
	return out
}

// Stats returns a snapshot of the accumulated statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters (allocation state is unchanged).
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}
