package pager

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// BufferPool caches page contents in memory with LRU replacement and
// write-back of dirty pages. Storage managers read and write pages through a
// pool so that repeated access to hot blocks (e.g. the visible window) does
// not touch the disk — in-memory (Store) and file-backed (FileStore) devices
// sit behind the same Backend interface.
type BufferPool struct {
	mu       sync.Mutex
	store    Backend
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; stores PageID
	stats    Stats
}

type frame struct {
	data    []byte
	dirty   bool
	pins    int
	lruElem *list.Element
}

// NewBufferPool creates a pool over the store holding at most capacity pages.
// A capacity of zero or less disables caching entirely (every access goes to
// the store), which is useful for isolating raw block counts in benchmarks.
func NewBufferPool(store Backend, capacity int) *BufferPool {
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
	}
}

// Store returns the underlying page device.
func (bp *BufferPool) Store() Backend { return bp.store }

// Allocate creates a new page in the underlying store and caches an empty
// frame for it.
func (bp *BufferPool) Allocate() PageID {
	id := bp.store.Allocate()
	if bp.capacity > 0 {
		bp.mu.Lock()
		bp.install(id, nil)
		bp.mu.Unlock()
	}
	return id
}

// Get returns the contents of a page, reading it from the store on a miss.
// The returned slice is owned by the pool; callers must not retain it across
// other pool calls — copy if needed (Put makes its own copy).
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.touch(id, f)
		return f.data, nil
	}
	bp.stats.Misses++
	data, err := bp.store.ReadPage(id)
	if err != nil {
		return nil, err
	}
	if bp.capacity > 0 {
		bp.install(id, data)
	}
	return data, nil
}

// Put replaces the contents of a page in the pool and marks it dirty. The
// write reaches the store when the page is evicted or flushed.
func (bp *BufferPool) Put(id PageID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.capacity <= 0 {
		return bp.store.WritePage(id, cp)
	}
	if !bp.store.Exists(id) {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	f, ok := bp.frames[id]
	if !ok {
		f = bp.install(id, cp)
	} else {
		f.data = cp
		bp.touch(id, f)
	}
	f.dirty = true
	return nil
}

// Free drops a page from the pool and the store.
func (bp *BufferPool) Free(id PageID) {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		bp.lru.Remove(f.lruElem)
		delete(bp.frames, id)
	}
	bp.mu.Unlock()
	bp.store.Free(id)
}

// Pin marks a page as unevictable until a matching Unpin.
func (bp *BufferPool) Pin(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		f.pins++
	}
}

// Unpin releases a pin taken with Pin.
func (bp *BufferPool) Unpin(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok && f.pins > 0 {
		f.pins--
	}
}

// Flush writes a dirty page back to the store.
func (bp *BufferPool) Flush(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || !f.dirty {
		return nil
	}
	if err := bp.store.WritePage(id, f.data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// FlushAll writes every dirty page back to the store.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if err := bp.store.WritePage(id, f.data); err != nil {
			return err
		}
		f.dirty = false
	}
	return nil
}

// Stats returns pool-level hit/miss counters (block reads/writes are counted
// by the underlying Store).
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// Len returns the number of cached frames.
func (bp *BufferPool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// install adds a frame for id (caller holds bp.mu) evicting as needed.
func (bp *BufferPool) install(id PageID, data []byte) *frame {
	bp.evictIfFull()
	f := &frame{data: data}
	f.lruElem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return f
}

// touch moves a frame to the MRU position (caller holds bp.mu).
func (bp *BufferPool) touch(id PageID, f *frame) {
	_ = id
	bp.lru.MoveToFront(f.lruElem)
}

// evictIfFull evicts the least recently used unpinned frame when at capacity
// (caller holds bp.mu). Dirty victims are written back.
func (bp *BufferPool) evictIfFull() {
	for len(bp.frames) >= bp.capacity && bp.capacity > 0 {
		var victim *list.Element
		for e := bp.lru.Back(); e != nil; e = e.Prev() {
			id := e.Value.(PageID)
			if bp.frames[id].pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything pinned; allow temporary over-capacity
		}
		id := victim.Value.(PageID)
		f := bp.frames[id]
		if f.dirty {
			// A missing page means it was freed underneath us and the data
			// can be dropped. Any other write-back failure (real I/O error
			// on a file backend) must not lose the dirty frame: keep it,
			// let the pool run over capacity, and surface the error on the
			// next explicit Flush/FlushAll.
			if err := bp.store.WritePage(id, f.data); err != nil && !errors.Is(err, ErrPageNotFound) {
				return
			}
		}
		bp.lru.Remove(victim)
		delete(bp.frames, id)
	}
}
