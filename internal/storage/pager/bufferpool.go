package pager

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// BufferPool caches page contents in memory with LRU replacement and
// write-back of dirty pages. Storage managers read and write pages through a
// pool so that repeated access to hot blocks (e.g. the visible window) does
// not touch the disk — in-memory (Store) and file-backed (FileStore) devices
// sit behind the same Backend interface.
//
// The pool is also the copy-on-write layer of the durability design: pages
// that the last durable checkpoint root references ("protected" pages) are
// never overwritten in place. A write-back of a protected page relocates it
// to a freshly allocated backend page and records the move in a forward map,
// so callers keep addressing the page by its original (logical) id while the
// durable image stays intact until the next checkpoint root flip commits the
// move. See BeginCheckpoint/CommitCheckpoint.
type BufferPool struct {
	mu       sync.Mutex
	store    Backend
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; stores PageID
	stats    Stats

	// Copy-on-write state. forward maps a logical page id to its current
	// physical id after one or more relocations; durable holds the physical
	// ids the committed checkpoint root references; pending holds the
	// physical ids a checkpoint in flight has captured (both sets are
	// protected from in-place writes). pendingFree collects superseded or
	// freed protected pages that must survive until the next root flip;
	// freeAtCommit holds the portion safe to free when the in-flight
	// checkpoint commits.
	forward      map[PageID]PageID
	durable      map[PageID]struct{}
	pending      map[PageID]struct{}
	pendingFree  []PageID
	freeAtCommit []PageID
	// reuse parks physical pages that cannot return to the backend free
	// list because their id doubles as a live, relocated LOGICAL id: a
	// backend recycling such an id into a fresh Allocate would collide with
	// the live page. Parked pages stay allocated and serve as relocation
	// targets (physical-only use); unused ones are swept at the next open.
	reuse []PageID

	// versions counts content changes per logical page id — bumped on every
	// Put, Free and Allocate (ids can be recycled by the backend) — so
	// decoded-page caches above the pool can validate entries against
	// backend-level reloads and id reuse, not just writes they performed
	// themselves.
	versions map[PageID]uint64

	// Snapshot-epoch state (epoch.go). epoch counts OpenEpoch calls;
	// pageEpoch stamps each logical page with the epoch current at its last
	// content change; pinned counts readers per open epoch; retained parks
	// superseded page versions that a pinned epoch can still observe.
	epoch     uint64
	pageEpoch map[PageID]uint64
	pinned    map[uint64]int
	retained  map[PageID][]retainedVersion
}

type frame struct {
	data    []byte
	dirty   bool
	pins    int
	lruElem *list.Element
}

// NewBufferPool creates a pool over the store holding at most capacity pages.
// A capacity of zero or less disables caching entirely (every access goes to
// the store), which is useful for isolating raw block counts in benchmarks.
func NewBufferPool(store Backend, capacity int) *BufferPool {
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
		forward:  make(map[PageID]PageID),
		durable:  make(map[PageID]struct{}),
		versions: make(map[PageID]uint64),
	}
}

// Store returns the underlying page device.
func (bp *BufferPool) Store() Backend { return bp.store }

// physLocked translates a logical page id to its current physical id
// (caller holds bp.mu).
func (bp *BufferPool) physLocked(id PageID) PageID {
	if n, ok := bp.forward[id]; ok {
		return n
	}
	return id
}

// Resolve returns the physical backend page currently holding the logical
// page id. Checkpoint metadata must persist physical ids: after a reopen
// there is no forward map.
func (bp *BufferPool) Resolve(id PageID) PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.physLocked(id)
}

// protectedLocked reports whether the physical page is referenced by the
// durable root or by a checkpoint in flight (caller holds bp.mu).
func (bp *BufferPool) protectedLocked(q PageID) bool {
	if _, ok := bp.durable[q]; ok {
		return true
	}
	_, ok := bp.pending[q]
	return ok
}

// scratchPageLocked hands out a physical page for a relocation target:
// parked pages first (they are already allocated and unreferenced), then a
// fresh backend allocation (caller holds bp.mu).
func (bp *BufferPool) scratchPageLocked() PageID {
	if k := len(bp.reuse); k > 0 {
		n := bp.reuse[k-1]
		bp.reuse = bp.reuse[:k-1]
		return n
	}
	return bp.store.Allocate()
}

// writeBackLocked writes page contents to the backend, relocating protected
// pages copy-on-write so the durable checkpoint image is never torn (caller
// holds bp.mu).
func (bp *BufferPool) writeBackLocked(id PageID, data []byte) error {
	q := bp.physLocked(id)
	if !bp.protectedLocked(q) {
		return bp.store.WritePage(q, data)
	}
	n := bp.scratchPageLocked()
	if n == InvalidPage {
		if err := storeErr(bp.store); err != nil {
			return fmt.Errorf("pager: cannot relocate protected page %d: %w", q, err)
		}
		return fmt.Errorf("pager: cannot relocate protected page %d", q)
	}
	// Only adopt the relocation once the copy landed: recording it first
	// would leave the logical page pointing at an empty scratch page if the
	// write fails, silently shadowing the last good copy at q.
	if err := bp.store.WritePage(n, data); err != nil {
		bp.store.Free(n)
		return err
	}
	bp.forward[id] = n
	bp.pendingFree = append(bp.pendingFree, q)
	return nil
}

func (bp *BufferPool) bumpVersionLocked(id PageID) { bp.versions[id]++ }

// Version returns a counter that changes whenever the logical page's content
// can have changed: on Put, Free and Allocate (backends recycle ids).
// Decoded-page caches compare it to detect stale entries.
func (bp *BufferPool) Version(id PageID) uint64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.versions[id]
}

// Allocate creates a new page in the underlying store and caches an empty
// frame for it. An id that doubles as a live relocated logical page is never
// handed out — deleting its forward mapping would silently point the live
// page at the empty newcomer — such ids are parked for physical-only reuse.
func (bp *BufferPool) Allocate() PageID {
	bp.mu.Lock()
	id := bp.store.Allocate()
	for id != InvalidPage {
		if _, conflict := bp.forward[id]; !conflict {
			break
		}
		bp.reuse = append(bp.reuse, id)
		id = bp.store.Allocate()
	}
	if id != InvalidPage {
		bp.retainBeforeChangeLocked(id)
	}
	bp.bumpVersionLocked(id)
	if bp.capacity > 0 && id != InvalidPage {
		bp.install(id, nil)
	}
	bp.mu.Unlock()
	return id
}

// ErrAllocFailed reports a page allocation that the backend refused without
// recording a more specific cause.
var ErrAllocFailed = errors.New("pager: page allocation failed")

// AllocatePage is Allocate with the failure reason: instead of InvalidPage
// it returns the backend's recorded I/O failure (a FileStore latches the
// slot-write error that made Allocate fail), so insert paths can classify
// allocation failures under dberr.ErrIO.
func (bp *BufferPool) AllocatePage() (PageID, error) {
	id := bp.Allocate()
	if id != InvalidPage {
		return id, nil
	}
	if err := storeErr(bp.store); err != nil {
		return InvalidPage, fmt.Errorf("pager: page allocation failed: %w", err)
	}
	return InvalidPage, ErrAllocFailed
}

// storeErr surfaces a backend's sticky internal I/O failure when it exposes
// one (FileStore does; the in-memory Store cannot fail).
func storeErr(store Backend) error {
	if e, ok := store.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// Get returns the contents of a page, reading it from the store on a miss.
// The returned slice is owned by the pool; callers must not retain it across
// other pool calls — copy if needed (Put makes its own copy).
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.touch(id, f)
		return f.data, nil
	}
	bp.stats.Misses++
	data, err := bp.store.ReadPage(bp.physLocked(id))
	if err != nil {
		return nil, err
	}
	if bp.capacity > 0 {
		bp.install(id, data)
	}
	return data, nil
}

// Put replaces the contents of a page in the pool and marks it dirty. The
// write reaches the store when the page is evicted or flushed.
func (bp *BufferPool) Put(id PageID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.retainBeforeChangeLocked(id)
	bp.bumpVersionLocked(id)
	if bp.capacity <= 0 {
		return bp.writeBackLocked(id, cp)
	}
	if !bp.store.Exists(bp.physLocked(id)) {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	f, ok := bp.frames[id]
	if !ok {
		f = bp.install(id, cp)
	} else {
		f.data = cp
		bp.touch(id, f)
	}
	f.dirty = true
	return nil
}

// Free drops a page from the pool and the store. Protected pages (referenced
// by the durable checkpoint root) are only freed once the next root flip
// commits; until then the durable image stays readable.
func (bp *BufferPool) Free(id PageID) {
	bp.mu.Lock()
	bp.retainBeforeChangeLocked(id)
	bp.bumpVersionLocked(id)
	if f, ok := bp.frames[id]; ok {
		bp.lru.Remove(f.lruElem)
		delete(bp.frames, id)
	}
	q := bp.physLocked(id)
	delete(bp.forward, id)
	if bp.protectedLocked(q) {
		bp.pendingFree = append(bp.pendingFree, q)
		bp.mu.Unlock()
		return
	}
	bp.mu.Unlock()
	bp.store.Free(q)
}

// Pin marks a page as unevictable until a matching Unpin.
func (bp *BufferPool) Pin(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		f.pins++
	}
}

// Unpin releases a pin taken with Pin.
func (bp *BufferPool) Unpin(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok && f.pins > 0 {
		f.pins--
	}
}

// Flush writes a dirty page back to the store.
func (bp *BufferPool) Flush(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || !f.dirty {
		return nil
	}
	if err := bp.writeBackLocked(id, f.data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// FlushAll writes every dirty page back to the store.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if err := bp.writeBackLocked(id, f.data); err != nil {
			return err
		}
		f.dirty = false
	}
	return nil
}

// --- checkpoint protocol ---
//
// The durability layer drives the pool through three steps:
//
//  1. SetDurable at open: the physical pages the recovered root references
//     become protected — no in-place overwrite can ever tear them.
//  2. BeginCheckpoint after FlushAll + metadata capture: the captured
//     physical pages join the protected set ("pending"), and previously
//     superseded durable pages move to the free-at-commit list.
//  3. CommitCheckpoint after the root flip is durable: pending becomes the
//     new durable set, and the pages only the old root referenced are
//     returned to the backend. AbortCheckpoint rolls step 2 back without
//     freeing anything the old root can still reach.

// SetDurable declares the physical pages referenced by the recovered
// checkpoint root. Called once at open, before any writes.
func (bp *BufferPool) SetDurable(ids []PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.durable = make(map[PageID]struct{}, len(ids))
	for _, id := range ids {
		bp.durable[id] = struct{}{}
	}
}

// BeginCheckpoint protects the captured physical pages of a checkpoint in
// flight and stages the currently superseded durable pages for release at
// commit. Pages relocated or freed after this call accumulate for the
// *next* checkpoint, since the in-flight root will reference them.
func (bp *BufferPool) BeginCheckpoint(referenced []PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.pending = make(map[PageID]struct{}, len(referenced))
	for _, id := range referenced {
		bp.pending[id] = struct{}{}
	}
	// Append rather than replace: a previous checkpoint that failed after
	// its flip attempt leaves its staged frees behind (neither commit nor
	// abort ran), and they must ride along to this checkpoint's commit
	// instead of leaking until the next open's sweep.
	bp.freeAtCommit = append(bp.freeAtCommit, bp.pendingFree...)
	bp.pendingFree = nil
}

// CommitCheckpoint makes the pending set the durable set and frees the pages
// only the previous root referenced. Call after the new root is synced.
// Pages whose id is still a live relocated logical id are parked instead of
// freed: on the backend free list they would be recycled into a colliding
// logical id (FileStore reuses ids LIFO).
func (bp *BufferPool) CommitCheckpoint() {
	bp.mu.Lock()
	bp.durable = bp.pending
	if bp.durable == nil {
		bp.durable = make(map[PageID]struct{})
	}
	bp.pending = nil
	var toFree []PageID
	for _, q := range bp.freeAtCommit {
		if _, live := bp.forward[q]; live {
			bp.reuse = append(bp.reuse, q)
		} else {
			toFree = append(toFree, q)
		}
	}
	bp.freeAtCommit = nil
	bp.mu.Unlock()
	for _, q := range toFree {
		bp.store.Free(q)
	}
}

// AbortCheckpoint undoes BeginCheckpoint after a failed checkpoint: the
// pending pages lose their protection (they are unreferenced scratch now)
// and the staged frees move back to waiting for a future successful commit.
func (bp *BufferPool) AbortCheckpoint() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.pending = nil
	bp.pendingFree = append(bp.pendingFree, bp.freeAtCommit...)
	bp.freeAtCommit = nil
}

// Stats returns pool-level hit/miss counters (block reads/writes are counted
// by the underlying Store).
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// Len returns the number of cached frames.
func (bp *BufferPool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// install adds a frame for id (caller holds bp.mu) evicting as needed.
func (bp *BufferPool) install(id PageID, data []byte) *frame {
	bp.evictIfFull()
	f := &frame{data: data}
	f.lruElem = bp.lru.PushFront(id)
	bp.frames[id] = f
	return f
}

// touch moves a frame to the MRU position (caller holds bp.mu).
func (bp *BufferPool) touch(id PageID, f *frame) {
	_ = id
	bp.lru.MoveToFront(f.lruElem)
}

// evictIfFull evicts the least recently used unpinned frame when at capacity
// (caller holds bp.mu). Dirty victims are written back.
func (bp *BufferPool) evictIfFull() {
	for len(bp.frames) >= bp.capacity && bp.capacity > 0 {
		var victim *list.Element
		for e := bp.lru.Back(); e != nil; e = e.Prev() {
			id := e.Value.(PageID)
			if bp.frames[id].pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything pinned; allow temporary over-capacity
		}
		id := victim.Value.(PageID)
		f := bp.frames[id]
		if f.dirty {
			// A missing page means it was freed underneath us and the data
			// can be dropped. Any other write-back failure (real I/O error
			// on a file backend) must not lose the dirty frame: keep it,
			// let the pool run over capacity, and surface the error on the
			// next explicit Flush/FlushAll.
			if err := bp.writeBackLocked(id, f.data); err != nil && !errors.Is(err, ErrPageNotFound) {
				return
			}
		}
		bp.lru.Remove(victim)
		delete(bp.frames, id)
	}
}
