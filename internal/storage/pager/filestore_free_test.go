package pager

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// TestFileStoreFreeDefersSlotWrites pins the free-batching contract: Free is
// a pure in-memory operation (no file I/O), the flagFree headers land in one
// batch at the next Sync, and a slot freed and reallocated between barriers
// never has a free flag written at all.
func TestFileStoreFreeDefersSlotWrites(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "heap.dsp")
	fs, err := OpenFileStoreVFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 4; i++ {
		id := fs.Allocate()
		if id == InvalidPage {
			t.Fatal("Allocate failed")
		}
		if err := fs.WritePage(id, bytes.Repeat([]byte{byte('a' + i)}, 64)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	before := ffs.Ops()
	fs.Free(ids[0])
	fs.Free(ids[1])
	if got := ffs.Ops(); got != before {
		t.Fatalf("Free performed %d mutating file operations, want 0", got-before)
	}
	// Until the flush the on-disk headers still read as live.
	for _, id := range ids[:2] {
		if _, _, flags, err := fs.readSlotHeader(id); err != nil || flags == flagFree {
			t.Fatalf("slot %d flags=%d err=%v before flush, want live header", id, flags, err)
		}
	}

	// Free-then-reallocate before the barrier drops the pending flag: the
	// recycled slot must come back from the in-memory free list (LIFO) and
	// must not be flagged free by the flush below.
	re := fs.Allocate()
	if re != ids[1] {
		t.Fatalf("Allocate after Free = %d, want recycled slot %d", re, ids[1])
	}

	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, _, flags, err := fs.readSlotHeader(ids[0]); err != nil || flags != flagFree {
		t.Fatalf("slot %d flags=%d err=%v after Sync, want flagFree", ids[0], flags, err)
	}
	if _, _, flags, err := fs.readSlotHeader(re); err != nil || flags == flagFree {
		t.Fatalf("recycled slot %d flags=%d err=%v after Sync, want live header", re, flags, err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the flushed flags rebuild the free list, so allocation recycles
	// the freed slot instead of growing the file.
	reopened, err := OpenFileStoreVFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Allocate(); got != ids[0] {
		t.Fatalf("Allocate after reopen = %d, want recycled slot %d", got, ids[0])
	}
}

// TestFileStoreCloseFlushesFrees covers the Close barrier: frees deferred
// past the last Sync still reach disk before the file is closed.
func TestFileStoreCloseFlushesFrees(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.dsp")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fs.Allocate(), fs.Allocate()
	if err := fs.WritePage(a, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WritePage(b, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	fs.Free(a)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Exists(a) {
		t.Fatalf("slot %d still live after Free + Close", a)
	}
	if got := reopened.Allocate(); got != a {
		t.Fatalf("Allocate after reopen = %d, want recycled slot %d", got, a)
	}
	if data, err := reopened.ReadPage(b); err != nil || !bytes.Equal(data, []byte("bb")) {
		t.Fatalf("surviving page = %q, %v", data, err)
	}
}
