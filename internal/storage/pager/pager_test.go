package pager

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreAllocateReadWrite(t *testing.T) {
	s := NewStore()
	id := s.Allocate()
	if id == InvalidPage {
		t.Fatal("Allocate returned InvalidPage")
	}
	if err := s.Write(id, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Read = %q", got)
	}
	// Reads return copies: mutating the returned slice must not corrupt
	// the stored page.
	got[0] = 'X'
	again, _ := s.Read(id)
	if !bytes.Equal(again, []byte("hello")) {
		t.Error("Read did not return a copy")
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.Read(42); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("Read missing page err = %v", err)
	}
	if err := s.Write(42, nil); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("Write missing page err = %v", err)
	}
	id := s.Allocate()
	s.Free(id)
	if _, err := s.Read(id); !errors.Is(err, ErrPageNotFound) {
		t.Error("read after free should fail")
	}
	s.Free(id) // double free is a no-op
	if s.Stats().Frees != 1 {
		t.Error("double free should only count once")
	}
}

func TestStoreStats(t *testing.T) {
	s := NewStore()
	a := s.Allocate()
	b := s.Allocate()
	_ = s.Write(a, make([]byte, 100))
	_ = s.Write(b, make([]byte, 100))
	_, _ = s.Read(a)
	st := s.Stats()
	if st.Allocs != 2 || st.Writes != 2 || st.Reads != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if st.BlocksTouched() != 3 {
		t.Errorf("BlocksTouched = %d", st.BlocksTouched())
	}
	before := s.Stats()
	_ = s.Write(a, make([]byte, 50))
	delta := s.Stats().Sub(before)
	if delta.Writes != 1 || delta.Reads != 0 {
		t.Errorf("delta = %+v", delta)
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Error("ResetStats failed")
	}
	if s.PageCount() != 2 {
		t.Errorf("PageCount = %d", s.PageCount())
	}
	if s.Stats().String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestStoreMultiBlockWriteCharged(t *testing.T) {
	s := NewStore()
	id := s.Allocate()
	// A write of 2.5 pages should be charged 3 block writes.
	if err := s.Write(id, make([]byte, PageSize*2+PageSize/2)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Writes; got != 3 {
		t.Errorf("multi-block write charged %d blocks, want 3", got)
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	s := NewStore()
	bp := NewBufferPool(s, 4)
	id := s.Allocate()
	_ = s.Write(id, []byte("abc"))
	s.ResetStats()

	if _, err := bp.Get(id); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(id); err != nil {
		t.Fatal(err)
	}
	st := bp.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("pool stats = %+v", st)
	}
	if s.Stats().Reads != 1 {
		t.Errorf("store reads = %d, want 1 (second access should hit)", s.Stats().Reads)
	}
}

func TestBufferPoolPutFlush(t *testing.T) {
	s := NewStore()
	bp := NewBufferPool(s, 4)
	id := bp.Allocate()
	if err := bp.Put(id, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Dirty data visible through the pool before flush.
	got, err := bp.Get(id)
	if err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Store still has the old (empty) contents until flush.
	raw, _ := s.Read(id)
	if len(raw) != 0 {
		t.Error("write-back happened too early")
	}
	if err := bp.Flush(id); err != nil {
		t.Fatal(err)
	}
	raw, _ = s.Read(id)
	if !bytes.Equal(raw, []byte("v1")) {
		t.Errorf("after flush store = %q", raw)
	}
	// Flushing a clean page is a no-op.
	if err := bp.Flush(id); err != nil {
		t.Fatal(err)
	}
	if err := bp.Put(9999, []byte("x")); err == nil {
		t.Error("Put to unknown page should fail")
	}
}

func TestBufferPoolEviction(t *testing.T) {
	s := NewStore()
	bp := NewBufferPool(s, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i] = bp.Allocate()
		if err := bp.Put(ids[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if bp.Len() > 2 {
		t.Errorf("pool over capacity: %d", bp.Len())
	}
	// The evicted dirty page must have been written back; reading it
	// through the pool must return the written value.
	for i, id := range ids {
		got, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte{byte(i)}) {
			t.Errorf("page %d = %v", i, got)
		}
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	s := NewStore()
	bp := NewBufferPool(s, 1)
	a := bp.Allocate()
	_ = bp.Put(a, []byte("a"))
	bp.Pin(a)
	b := bp.Allocate()
	_ = bp.Put(b, []byte("b"))
	// With a pinned, the pool may exceed capacity rather than evict it.
	got, err := bp.Get(a)
	if err != nil || !bytes.Equal(got, []byte("a")) {
		t.Errorf("pinned page lost: %q %v", got, err)
	}
	bp.Unpin(a)
	bp.Unpin(a) // extra unpin is safe
	bp.Pin(999) // pinning an uncached page is a no-op
}

func TestBufferPoolFlushAllAndFree(t *testing.T) {
	s := NewStore()
	bp := NewBufferPool(s, 8)
	var ids []PageID
	for i := 0; i < 5; i++ {
		id := bp.Allocate()
		_ = bp.Put(id, []byte{byte(i)})
		ids = append(ids, id)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		raw, err := s.Read(id)
		if err != nil || !bytes.Equal(raw, []byte{byte(i)}) {
			t.Errorf("page %d not flushed: %v %v", i, raw, err)
		}
	}
	bp.Free(ids[0])
	if s.Exists(ids[0]) {
		t.Error("Free should release the page in the store")
	}
	if _, err := bp.Get(ids[0]); err == nil {
		t.Error("Get after Free should fail")
	}
}

func TestBufferPoolZeroCapacityPassthrough(t *testing.T) {
	s := NewStore()
	bp := NewBufferPool(s, 0)
	id := bp.Allocate()
	if err := bp.Put(id, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	// With no caching the write must reach the store immediately.
	raw, _ := s.Read(id)
	if !bytes.Equal(raw, []byte("direct")) {
		t.Error("zero-capacity pool should write through")
	}
	if _, err := bp.Get(id); err != nil {
		t.Fatal(err)
	}
	if bp.Len() != 0 {
		t.Error("zero-capacity pool should cache nothing")
	}
}

func TestBufferPoolConcurrent(t *testing.T) {
	s := NewStore()
	bp := NewBufferPool(s, 16)
	ids := make([]PageID, 64)
	for i := range ids {
		ids[i] = bp.Allocate()
		_ = bp.Put(ids[i], []byte{byte(i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(g*31+i)%len(ids)]
				if i%4 == 0 {
					_ = bp.Put(id, []byte{byte(i)})
				} else {
					_, _ = bp.Get(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore()
	f := func(data []byte) bool {
		id := s.Allocate()
		if err := s.Write(id, data); err != nil {
			return false
		}
		got, err := s.Read(id)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBufferPoolRoundTripProperty(t *testing.T) {
	s := NewStore()
	bp := NewBufferPool(s, 3) // tiny pool forces constant eviction
	var ids []PageID
	f := func(data []byte) bool {
		id := bp.Allocate()
		ids = append(ids, id)
		if err := bp.Put(id, data); err != nil {
			return false
		}
		// Read back an older page to churn the LRU, then this one.
		if len(ids) > 2 {
			_, _ = bp.Get(ids[0])
		}
		got, err := bp.Get(id)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
