package pager

import (
	"bytes"
	"fmt"
	"testing"
)

func mustAlloc(t *testing.T, bp *BufferPool) PageID {
	t.Helper()
	id, err := bp.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func getAt(t *testing.T, bp *BufferPool, e uint64, id PageID) []byte {
	t.Helper()
	data, _, err := bp.GetAt(e, id)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestEpochSnapshotSeesSupersededPut(t *testing.T) {
	for _, capacity := range []int{64, 0} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			bp := NewBufferPool(NewStore(), capacity)
			id := mustAlloc(t, bp)
			v1, v2 := []byte("version-one"), []byte("version-two")
			if err := bp.Put(id, v1); err != nil {
				t.Fatal(err)
			}
			e := bp.OpenEpoch()
			if err := bp.Put(id, v2); err != nil {
				t.Fatal(err)
			}
			if got := getAt(t, bp, e, id); !bytes.Equal(got, v1) {
				t.Fatalf("GetAt(e) = %q, want %q", got, v1)
			}
			cur, err := bp.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cur, v2) {
				t.Fatalf("Get = %q, want %q", cur, v2)
			}
			if pinned, retained := bp.EpochStats(); pinned != 1 || retained != 1 {
				t.Fatalf("EpochStats = (%d, %d), want (1, 1)", pinned, retained)
			}
			bp.ReleaseEpoch(e)
			if pinned, retained := bp.EpochStats(); pinned != 0 || retained != 0 {
				t.Fatalf("after release EpochStats = (%d, %d), want (0, 0)", pinned, retained)
			}
		})
	}
}

func TestEpochSnapshotSurvivesFree(t *testing.T) {
	bp := NewBufferPool(NewStore(), 64)
	id := mustAlloc(t, bp)
	v1 := []byte("gone-but-pinned")
	if err := bp.Put(id, v1); err != nil {
		t.Fatal(err)
	}
	e := bp.OpenEpoch()
	bp.Free(id)
	if got := getAt(t, bp, e, id); !bytes.Equal(got, v1) {
		t.Fatalf("GetAt after Free = %q, want %q", got, v1)
	}
	bp.ReleaseEpoch(e)
	if _, retained := bp.EpochStats(); retained != 0 {
		t.Fatalf("retained = %d after last release, want 0", retained)
	}
}

func TestEpochsSeeDistinctVersions(t *testing.T) {
	bp := NewBufferPool(NewStore(), 64)
	id := mustAlloc(t, bp)
	v1, v2, v3 := []byte("v1"), []byte("v2"), []byte("v3")
	if err := bp.Put(id, v1); err != nil {
		t.Fatal(err)
	}
	e1 := bp.OpenEpoch()
	if err := bp.Put(id, v2); err != nil {
		t.Fatal(err)
	}
	e2 := bp.OpenEpoch()
	if err := bp.Put(id, v3); err != nil {
		t.Fatal(err)
	}
	if got := getAt(t, bp, e1, id); !bytes.Equal(got, v1) {
		t.Fatalf("GetAt(e1) = %q, want v1", got)
	}
	if got := getAt(t, bp, e2, id); !bytes.Equal(got, v2) {
		t.Fatalf("GetAt(e2) = %q, want v2", got)
	}
	// Releasing the older epoch frees only the version exclusive to it.
	bp.ReleaseEpoch(e1)
	if _, retained := bp.EpochStats(); retained != 1 {
		t.Fatalf("retained = %d after releasing e1, want 1", retained)
	}
	if got := getAt(t, bp, e2, id); !bytes.Equal(got, v2) {
		t.Fatalf("GetAt(e2) after e1 release = %q, want v2", got)
	}
	bp.ReleaseEpoch(e2)
	if _, retained := bp.EpochStats(); retained != 0 {
		t.Fatalf("retained = %d after releasing all, want 0", retained)
	}
}

func TestEpochVersionCounterMatchesSnapshot(t *testing.T) {
	bp := NewBufferPool(NewStore(), 64)
	id := mustAlloc(t, bp)
	if err := bp.Put(id, []byte("old")); err != nil {
		t.Fatal(err)
	}
	oldVer := bp.Version(id)
	e := bp.OpenEpoch()
	if err := bp.Put(id, []byte("new")); err != nil {
		t.Fatal(err)
	}
	_, ver, err := bp.GetAt(e, id)
	if err != nil {
		t.Fatal(err)
	}
	if ver != oldVer {
		t.Fatalf("snapshot ver = %d, want pre-change %d", ver, oldVer)
	}
	if cur := bp.Version(id); cur == oldVer {
		t.Fatal("current version did not advance past the snapshot's")
	}
	bp.ReleaseEpoch(e)
}

func TestEpochUnchangedPageServedFromCurrent(t *testing.T) {
	bp := NewBufferPool(NewStore(), 64)
	id := mustAlloc(t, bp)
	v := []byte("steady")
	if err := bp.Put(id, v); err != nil {
		t.Fatal(err)
	}
	e := bp.OpenEpoch()
	defer bp.ReleaseEpoch(e)
	if got := getAt(t, bp, e, id); !bytes.Equal(got, v) {
		t.Fatalf("GetAt = %q, want %q", got, v)
	}
	if _, retained := bp.EpochStats(); retained != 0 {
		t.Fatalf("retained = %d for an unchanged page, want 0", retained)
	}
}

func TestNoRetentionWithoutReaders(t *testing.T) {
	bp := NewBufferPool(NewStore(), 64)
	id := mustAlloc(t, bp)
	for i := 0; i < 10; i++ {
		if err := bp.Put(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, retained := bp.EpochStats(); retained != 0 {
		t.Fatalf("retained = %d with no open epochs, want 0", retained)
	}
}

func TestEpochSnapshotAcrossCheckpointProtocol(t *testing.T) {
	// A snapshot opened before a checkpoint must keep reading its frozen
	// content while the checkpoint relocates pages copy-on-write and
	// commits; the superseded physical pages it frees are invisible to the
	// logical snapshot.
	bp := NewBufferPool(NewStore(), 64)
	id := mustAlloc(t, bp)
	v1, v2 := []byte("durable-v1"), []byte("post-ckpt-v2")
	if err := bp.Put(id, v1); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	bp.SetDurable([]PageID{bp.Resolve(id)})
	e := bp.OpenEpoch()
	if err := bp.Put(id, v2); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil { // COW-relocates the protected page
		t.Fatal(err)
	}
	bp.BeginCheckpoint([]PageID{bp.Resolve(id)})
	bp.CommitCheckpoint()
	if got := getAt(t, bp, e, id); !bytes.Equal(got, v1) {
		t.Fatalf("snapshot after checkpoint = %q, want %q", got, v1)
	}
	cur, err := bp.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cur, v2) {
		t.Fatalf("current after checkpoint = %q, want %q", cur, v2)
	}
	bp.ReleaseEpoch(e)
}
