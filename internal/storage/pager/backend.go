package pager

// Backend is the physical page device a BufferPool sits on: a set of
// fixed-size pages addressed by PageID. The in-memory Store models a disk for
// block-count experiments; FileStore is a real single-file heap so the same
// benchmarks can run against actual I/O. Implementations are safe for
// concurrent use.
type Backend interface {
	// Allocate reserves a new, empty page and returns its id.
	Allocate() PageID
	// Free releases a page. Freeing an unknown page is a no-op.
	Free(id PageID)
	// ReadPage returns a copy of the page contents.
	ReadPage(id PageID) ([]byte, error)
	// WritePage replaces the page contents. Data larger than PageSize is
	// accepted and charged as a multi-block write.
	WritePage(id PageID, data []byte) error
	// Exists reports whether the page is allocated.
	Exists(id PageID) bool
	// PageCount returns the number of allocated pages.
	PageCount() int
	// Sync makes all completed writes durable. A no-op for memory backends.
	// dslint:critical
	Sync() error
	// Close releases the backend. Closing twice is a no-op.
	// dslint:critical
	Close() error
	// PageIDs returns the ids of all allocated pages, in no particular
	// order. The durability layer uses it to sweep pages a crashed
	// checkpoint left unreferenced.
	PageIDs() []PageID
	// Stats returns a snapshot of the accumulated block-level statistics.
	Stats() Stats
	// ResetStats zeroes the counters.
	ResetStats()
}

// ReadPage is Read under the Backend interface's name.
func (s *Store) ReadPage(id PageID) ([]byte, error) { return s.Read(id) }

// WritePage is Write under the Backend interface's name.
func (s *Store) WritePage(id PageID, data []byte) error { return s.Write(id, data) }

// Sync is a no-op: the in-memory store has no durability.
func (s *Store) Sync() error { return nil }

// Close is a no-op for the in-memory store.
func (s *Store) Close() error { return nil }

var _ Backend = (*Store)(nil)
