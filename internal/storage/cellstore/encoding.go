// Package cellstore implements the paper's interface storage manager: the
// component that persists spreadsheet data which is *not* part of a
// relational table (ad-hoc values, formulae) as a collection of cells.
//
// Two sheet.CellStore implementations are provided:
//
//   - BlockedStore groups cells by proximity into fixed-size tiles, stores
//     each tile in its own data block (page), and locates blocks for a
//     requested range through a two-dimensional tile index — the design the
//     paper describes. Fetching the visible window touches only the blocks
//     whose tiles overlap the window.
//
//   - FlatStore appends cells to data blocks in insertion order with a
//     per-cell directory, modelling a storage manager with no spatial
//     grouping. It is the baseline the blocked layout is evaluated against
//     (experiment A3).
//
// Both stores persist through a pager.BufferPool so that block reads and
// writes are counted.
package cellstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/dataspread/dataspread/internal/sheet"
)

// cellRecord is the serialised form of one cell: its absolute address plus
// the sheet.Cell contents.
type cellRecord struct {
	addr sheet.Address
	cell sheet.Cell
}

// appendUvarint appends v to dst as a varint.
func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// zigzag encodes a signed int for varint storage.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag reverses zigzag.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeCell appends the serialised record to dst.
func encodeCell(dst []byte, rec cellRecord) []byte {
	dst = appendUvarint(dst, zigzag(int64(rec.addr.Row)))
	dst = appendUvarint(dst, zigzag(int64(rec.addr.Col)))
	v := rec.cell.Value
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case sheet.KindNumber:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Num))
		dst = append(dst, b[:]...)
	case sheet.KindString:
		dst = appendString(dst, v.Str)
	case sheet.KindBool:
		if v.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case sheet.KindError:
		dst = appendString(dst, v.Err)
	}
	dst = appendString(dst, rec.cell.Formula)
	dst = append(dst, byte(rec.cell.Origin.Kind))
	dst = appendUvarint(dst, uint64(rec.cell.Origin.BindingID))
	return dst
}

// decoder walks a byte slice of concatenated cell records.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("cellstore: corrupt varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("cellstore: truncated record at offset %d", d.pos)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if d.pos+n > len(d.buf) {
		return nil, fmt.Errorf("cellstore: truncated record at offset %d", d.pos)
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// decodeCell reads the next record.
func (d *decoder) decodeCell() (cellRecord, error) {
	var rec cellRecord
	r, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	c, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.addr = sheet.Addr(int(unzigzag(r)), int(unzigzag(c)))
	kind, err := d.byte()
	if err != nil {
		return rec, err
	}
	v := sheet.Value{Kind: sheet.Kind(kind)}
	switch v.Kind {
	case sheet.KindNumber:
		b, err := d.bytes(8)
		if err != nil {
			return rec, err
		}
		v.Num = math.Float64frombits(binary.BigEndian.Uint64(b))
	case sheet.KindString:
		if v.Str, err = d.str(); err != nil {
			return rec, err
		}
	case sheet.KindBool:
		b, err := d.byte()
		if err != nil {
			return rec, err
		}
		v.Bool = b != 0
	case sheet.KindError:
		if v.Err, err = d.str(); err != nil {
			return rec, err
		}
	case sheet.KindEmpty:
	default:
		return rec, fmt.Errorf("cellstore: unknown value kind %d", kind)
	}
	rec.cell.Value = v
	if rec.cell.Formula, err = d.str(); err != nil {
		return rec, err
	}
	ok, err := d.byte()
	if err != nil {
		return rec, err
	}
	rec.cell.Origin.Kind = sheet.OriginKind(ok)
	bid, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.cell.Origin.BindingID = int64(bid)
	return rec, nil
}

// encodeBlock serialises a set of cell records into one block image.
func encodeBlock(recs []cellRecord) []byte {
	out := appendUvarint(nil, uint64(len(recs)))
	for _, r := range recs {
		out = encodeCell(out, r)
	}
	return out
}

// decodeBlock parses a block image produced by encodeBlock.
func decodeBlock(buf []byte) ([]cellRecord, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	d := &decoder{buf: buf}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	recs := make([]cellRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		rec, err := d.decodeCell()
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	if !d.done() {
		return nil, fmt.Errorf("cellstore: %d trailing bytes after block", len(buf)-d.pos)
	}
	return recs, nil
}
