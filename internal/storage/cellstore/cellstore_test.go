package cellstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

func newBlocked(opts ...BlockedOption) *BlockedStore {
	return NewBlockedStore(pager.NewBufferPool(pager.NewStore(), 1024), opts...)
}

func newFlat() *FlatStore {
	return NewFlatStore(pager.NewBufferPool(pager.NewStore(), 1024))
}

// stores returns each CellStore implementation under a label so the shared
// conformance tests run against all of them.
func stores() map[string]sheet.CellStore {
	return map[string]sheet.CellStore{
		"map":     sheet.NewMapCellStore(),
		"blocked": newBlocked(),
		"flat":    newFlat(),
	}
}

func TestCellRecordRoundTrip(t *testing.T) {
	recs := []cellRecord{
		{addr: sheet.Addr(0, 0), cell: sheet.Cell{Value: sheet.Number(3.25)}},
		{addr: sheet.Addr(100, 5), cell: sheet.Cell{Value: sheet.String_("héllo, world")}},
		{addr: sheet.Addr(7, 2), cell: sheet.Cell{Value: sheet.Bool_(true), Formula: "AND(A1,B1)"}},
		{addr: sheet.Addr(9, 9), cell: sheet.Cell{Value: sheet.ErrDiv0}},
		{addr: sheet.Addr(1, 1), cell: sheet.Cell{
			Value:   sheet.Number(-7),
			Formula: "SUM(A1:A10)",
			Origin:  sheet.Origin{Kind: sheet.OriginTable, BindingID: 42},
		}},
		{addr: sheet.Addr(2, 3), cell: sheet.Cell{Value: sheet.Empty(), Formula: "DBSQL(\"SELECT 1\")"}},
	}
	buf := encodeBlock(recs)
	got, err := decodeBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].addr != recs[i].addr {
			t.Errorf("rec %d addr = %v", i, got[i].addr)
		}
		if got[i].cell.Formula != recs[i].cell.Formula ||
			got[i].cell.Origin != recs[i].cell.Origin ||
			got[i].cell.Value.Kind != recs[i].cell.Value.Kind ||
			got[i].cell.Value.String() != recs[i].cell.Value.String() {
			t.Errorf("rec %d cell = %+v, want %+v", i, got[i].cell, recs[i].cell)
		}
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	if _, err := decodeBlock([]byte{5}); err == nil {
		t.Error("count with no records should fail")
	}
	good := encodeBlock([]cellRecord{{addr: sheet.Addr(1, 1), cell: sheet.Cell{Value: sheet.Number(1)}}})
	if _, err := decodeBlock(good[:len(good)-3]); err == nil {
		t.Error("truncated block should fail")
	}
	if _, err := decodeBlock(append(good, 0xFF)); err == nil {
		t.Error("trailing bytes should fail")
	}
	if recs, err := decodeBlock(nil); err != nil || len(recs) != 0 {
		t.Error("empty block should decode to nothing")
	}
}

func TestEncodingRoundTripProperty(t *testing.T) {
	f := func(row, col int16, num float64, str string, isStr bool) bool {
		var v sheet.Value
		if isStr {
			v = sheet.String_(str)
		} else {
			v = sheet.Number(num)
		}
		rec := cellRecord{addr: sheet.Addr(int(row), int(col)), cell: sheet.Cell{Value: v, Formula: str}}
		got, err := decodeBlock(encodeBlock([]cellRecord{rec}))
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.addr == rec.addr && g.cell.Formula == rec.cell.Formula &&
			g.cell.Value.Kind == v.Kind && g.cell.Value.String() == v.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Conformance tests shared by every CellStore implementation.

func TestStoreConformanceBasic(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			a := sheet.Addr(3, 4)
			if _, ok := s.Get(a); ok {
				t.Fatal("empty store should miss")
			}
			s.Set(a, sheet.Cell{Value: sheet.Number(1.5), Formula: "3/2"})
			c, ok := s.Get(a)
			if !ok || c.Value.Num != 1.5 || c.Formula != "3/2" {
				t.Fatalf("Get = %+v,%v", c, ok)
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d", s.Len())
			}
			// Overwrite.
			s.Set(a, sheet.Cell{Value: sheet.String_("x")})
			if c, _ := s.Get(a); c.Value.Str != "x" {
				t.Fatal("overwrite failed")
			}
			if s.Len() != 1 {
				t.Fatal("overwrite should not grow")
			}
			// Delete.
			s.Delete(a)
			if _, ok := s.Get(a); ok || s.Len() != 0 {
				t.Fatal("delete failed")
			}
			s.Delete(a) // deleting a missing cell is a no-op
			// Setting an empty cell is a delete.
			s.Set(a, sheet.Cell{Value: sheet.Number(2)})
			s.Set(a, sheet.Cell{})
			if s.Len() != 0 {
				t.Fatal("set-empty should delete")
			}
		})
	}
}

func TestStoreConformanceRangeAndBounds(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			if _, ok := s.Bounds(); ok {
				t.Fatal("empty store should have no bounds")
			}
			for r := 0; r < 50; r++ {
				for c := 0; c < 10; c++ {
					s.Set(sheet.Addr(r, c), sheet.Cell{Value: sheet.Number(float64(r*100 + c))})
				}
			}
			// Window fetch.
			got := make(map[sheet.Address]float64)
			s.GetRange(sheet.RangeOf(10, 2, 19, 5), func(a sheet.Address, c sheet.Cell) {
				got[a] = c.Value.Num
			})
			if len(got) != 40 {
				t.Fatalf("window returned %d cells, want 40", len(got))
			}
			if got[sheet.Addr(10, 2)] != 1002 || got[sheet.Addr(19, 5)] != 1905 {
				t.Fatal("window content wrong")
			}
			b, ok := s.Bounds()
			if !ok || b != sheet.RangeOf(0, 0, 49, 9) {
				t.Fatalf("Bounds = %+v,%v", b, ok)
			}
			if s.Len() != 500 {
				t.Fatalf("Len = %d", s.Len())
			}
		})
	}
}

func TestStoreConformanceInsertRowsCols(t *testing.T) {
	for name, s := range stores() {
		t.Run(name, func(t *testing.T) {
			for r := 0; r < 10; r++ {
				s.Set(sheet.Addr(r, 0), sheet.Cell{Value: sheet.Number(float64(r))})
			}
			s.InsertRows(5, 2)
			if c, ok := s.Get(sheet.Addr(4, 0)); !ok || c.Value.Num != 4 {
				t.Error("rows above insert moved")
			}
			if c, ok := s.Get(sheet.Addr(7, 0)); !ok || c.Value.Num != 5 {
				t.Error("rows below insert did not shift")
			}
			s.InsertRows(0, -1) // delete the first row
			if c, ok := s.Get(sheet.Addr(0, 0)); !ok || c.Value.Num != 1 {
				t.Error("row delete wrong")
			}
			s.Set(sheet.Addr(0, 5), sheet.Cell{Value: sheet.String_("right")})
			s.InsertCols(3, 4)
			if c, ok := s.Get(sheet.Addr(0, 9)); !ok || c.Value.Str != "right" {
				t.Error("column insert did not shift")
			}
			s.InsertCols(9, -1)
			if _, ok := s.Get(sheet.Addr(0, 9)); ok {
				t.Error("column delete should remove the cell")
			}
		})
	}
}

// TestStoresAgainstMapReference drives every store with the same random
// operations and verifies they agree with the plain map store.
func TestStoresAgainstMapReference(t *testing.T) {
	impls := map[string]sheet.CellStore{
		"blocked":       newBlocked(),
		"blocked-small": newBlocked(WithTileSize(4, 4), WithTileCache(2)),
		"flat":          newFlat(),
	}
	for name, s := range impls {
		t.Run(name, func(t *testing.T) {
			ref := sheet.NewMapCellStore()
			rng := rand.New(rand.NewSource(11))
			for op := 0; op < 5000; op++ {
				a := sheet.Addr(rng.Intn(200), rng.Intn(40))
				switch rng.Intn(4) {
				case 0, 1:
					c := sheet.Cell{Value: sheet.Number(float64(op))}
					s.Set(a, c)
					ref.Set(a, c)
				case 2:
					s.Delete(a)
					ref.Delete(a)
				case 3:
					got, ok1 := s.Get(a)
					want, ok2 := ref.Get(a)
					if ok1 != ok2 || (ok1 && got.Value.Num != want.Value.Num) {
						t.Fatalf("op %d: Get(%v) mismatch", op, a)
					}
				}
			}
			if s.Len() != ref.Len() {
				t.Fatalf("Len %d != ref %d", s.Len(), ref.Len())
			}
			// Range fetches agree on random windows.
			for trial := 0; trial < 20; trial++ {
				r := sheet.RangeOf(rng.Intn(200), rng.Intn(40), rng.Intn(200), rng.Intn(40))
				got := map[sheet.Address]float64{}
				want := map[sheet.Address]float64{}
				s.GetRange(r, func(a sheet.Address, c sheet.Cell) { got[a] = c.Value.Num })
				ref.GetRange(r, func(a sheet.Address, c sheet.Cell) { want[a] = c.Value.Num })
				if len(got) != len(want) {
					t.Fatalf("range %v: %d cells vs ref %d", r, len(got), len(want))
				}
				for a, v := range want {
					if got[a] != v {
						t.Fatalf("range %v: cell %v mismatch", r, a)
					}
				}
			}
		})
	}
}

func TestBlockedStorePersistenceAcrossCacheDrop(t *testing.T) {
	b := newBlocked(WithTileSize(8, 8), WithTileCache(4))
	for r := 0; r < 100; r++ {
		b.Set(sheet.Addr(r, r%10), sheet.Cell{Value: sheet.Number(float64(r)), Formula: "F"})
	}
	if err := b.DropCache(); err != nil {
		t.Fatal(err)
	}
	// Everything must be readable back from blocks alone.
	for r := 0; r < 100; r++ {
		c, ok := b.Get(sheet.Addr(r, r%10))
		if !ok || c.Value.Num != float64(r) || c.Formula != "F" {
			t.Fatalf("row %d lost after cache drop: %+v %v", r, c, ok)
		}
	}
	if b.TileCount() == 0 {
		t.Error("expected allocated tiles")
	}
}

func TestBlockedStoreWindowTouchesFewBlocks(t *testing.T) {
	store := pager.NewStore()
	pool := pager.NewBufferPool(store, 0) // no caching: count raw block reads
	b := NewBlockedStore(pool, WithTileSize(32, 8), WithTileCache(1))
	// 2000 rows x 10 cols of data.
	for r := 0; r < 2000; r++ {
		for c := 0; c < 10; c++ {
			b.Set(sheet.Addr(r, c), sheet.Cell{Value: sheet.Number(float64(r))})
		}
	}
	if err := b.DropCache(); err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	n := 0
	b.GetRange(sheet.RangeOf(1000, 0, 1049, 9), func(sheet.Address, sheet.Cell) { n++ })
	if n != 500 {
		t.Fatalf("window returned %d cells", n)
	}
	reads := store.Stats().Reads
	// A 50x10 window over 32x8 tiles overlaps at most 3x3=9 tiles (elastic
	// bound: allow a few more for cache-eviction rereads).
	if reads > 12 {
		t.Errorf("window fetch read %d blocks, expected <= 12", reads)
	}
}

func TestFlatStoreBlockGrowth(t *testing.T) {
	f := newFlat()
	for i := 0; i < flatCellsPerBlock*3+5; i++ {
		f.Set(sheet.Addr(i, 0), sheet.Cell{Value: sheet.Number(float64(i))})
	}
	if f.BlockCount() != 4 {
		t.Errorf("BlockCount = %d, want 4", f.BlockCount())
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Update in place must not allocate a new block.
	f.Set(sheet.Addr(0, 0), sheet.Cell{Value: sheet.Number(999)})
	if f.BlockCount() != 4 {
		t.Error("in-place update should not allocate")
	}
	if c, _ := f.Get(sheet.Addr(0, 0)); c.Value.Num != 999 {
		t.Error("in-place update lost")
	}
}
