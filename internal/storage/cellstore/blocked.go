package cellstore

import (
	"container/list"

	"github.com/dataspread/dataspread/internal/index/grid"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// Default tile geometry: a tile spans 32 rows × 8 columns, roughly the shape
// of data a user sees around the cursor, so one visible window touches a
// handful of blocks.
const (
	DefaultTileRows = 32
	DefaultTileCols = 8
	// defaultTileCache is the number of decoded tiles kept in memory.
	defaultTileCache = 64
)

// BlockedStore is the interface storage manager described in the paper:
// cells are grouped by proximity into tiles, each tile is one data block, and
// a 2-D index maps tile coordinates to blocks. It implements
// sheet.CellStore.
type BlockedStore struct {
	pool      *pager.BufferPool
	index     *grid.Index
	cacheCap  int
	cache     map[grid.TileKey]*tileEntry
	lru       *list.List // of grid.TileKey
	cellCount int
}

type tileEntry struct {
	cells   map[sheet.Address]sheet.Cell
	dirty   bool
	lruElem *list.Element
}

// BlockedOption configures a BlockedStore.
type BlockedOption func(*blockedConfig)

type blockedConfig struct {
	tileRows, tileCols int
	cacheTiles         int
}

// WithTileSize sets the tile geometry (rows × cols of cells per block).
func WithTileSize(rows, cols int) BlockedOption {
	return func(c *blockedConfig) { c.tileRows, c.tileCols = rows, cols }
}

// WithTileCache sets how many decoded tiles are cached in memory.
func WithTileCache(n int) BlockedOption {
	return func(c *blockedConfig) { c.cacheTiles = n }
}

// NewBlockedStore creates a blocked cell store over the buffer pool.
func NewBlockedStore(pool *pager.BufferPool, opts ...BlockedOption) *BlockedStore {
	cfg := blockedConfig{tileRows: DefaultTileRows, tileCols: DefaultTileCols, cacheTiles: defaultTileCache}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.cacheTiles < 1 {
		cfg.cacheTiles = 1
	}
	return &BlockedStore{
		pool:     pool,
		index:    grid.New(cfg.tileRows, cfg.tileCols),
		cacheCap: cfg.cacheTiles,
		cache:    make(map[grid.TileKey]*tileEntry),
		lru:      list.New(),
	}
}

// loadTile returns the decoded tile for the key, reading and decoding its
// block on a cache miss. Returns nil if the tile has no block yet.
func (b *BlockedStore) loadTile(k grid.TileKey) *tileEntry {
	if e, ok := b.cache[k]; ok {
		b.lru.MoveToFront(e.lruElem)
		return e
	}
	pid, ok := b.index.Get(k)
	if !ok {
		return nil
	}
	data, err := b.pool.Get(pager.PageID(pid))
	if err != nil {
		return nil
	}
	recs, err := decodeBlock(data)
	if err != nil {
		return nil
	}
	cells := make(map[sheet.Address]sheet.Cell, len(recs))
	for _, r := range recs {
		cells[r.addr] = r.cell
	}
	e := &tileEntry{cells: cells}
	b.installTile(k, e)
	return e
}

// ensureTile returns the decoded tile, creating an empty one (and its block)
// if needed.
func (b *BlockedStore) ensureTile(k grid.TileKey) *tileEntry {
	if e := b.loadTile(k); e != nil {
		return e
	}
	if _, ok := b.index.Get(k); !ok {
		pid := b.pool.Allocate()
		b.index.Put(k, uint64(pid))
	}
	e := &tileEntry{cells: make(map[sheet.Address]sheet.Cell)}
	b.installTile(k, e)
	return e
}

func (b *BlockedStore) installTile(k grid.TileKey, e *tileEntry) {
	b.evictIfFull()
	e.lruElem = b.lru.PushFront(k)
	b.cache[k] = e
}

func (b *BlockedStore) evictIfFull() {
	for len(b.cache) >= b.cacheCap {
		back := b.lru.Back()
		if back == nil {
			return
		}
		k := back.Value.(grid.TileKey)
		b.writeBack(k, b.cache[k])
		b.lru.Remove(back)
		delete(b.cache, k)
	}
}

// writeBack encodes a dirty tile into its block.
func (b *BlockedStore) writeBack(k grid.TileKey, e *tileEntry) {
	if e == nil || !e.dirty {
		return
	}
	pid, ok := b.index.Get(k)
	if !ok {
		return
	}
	recs := make([]cellRecord, 0, len(e.cells))
	for a, c := range e.cells {
		recs = append(recs, cellRecord{addr: a, cell: c})
	}
	_ = b.pool.Put(pager.PageID(pid), encodeBlock(recs))
	e.dirty = false
}

// Flush writes every dirty cached tile back to its block and flushes the
// buffer pool, so all cell data is durable in the page store.
func (b *BlockedStore) Flush() error {
	for k, e := range b.cache {
		b.writeBack(k, e)
	}
	return b.pool.FlushAll()
}

// DropCache flushes and then discards all decoded tiles, so subsequent reads
// are served from blocks. Benchmarks use this to measure cold-window costs.
func (b *BlockedStore) DropCache() error {
	if err := b.Flush(); err != nil {
		return err
	}
	b.cache = make(map[grid.TileKey]*tileEntry)
	b.lru.Init()
	return nil
}

// TileCount returns the number of allocated tiles (data blocks).
func (b *BlockedStore) TileCount() int { return b.index.Len() }

// Get implements sheet.CellStore.
func (b *BlockedStore) Get(a sheet.Address) (sheet.Cell, bool) {
	e := b.loadTile(b.index.TileFor(a.Row, a.Col))
	if e == nil {
		return sheet.Cell{}, false
	}
	c, ok := e.cells[a]
	return c, ok
}

// Set implements sheet.CellStore.
func (b *BlockedStore) Set(a sheet.Address, c sheet.Cell) {
	if c.IsEmpty() {
		b.Delete(a)
		return
	}
	e := b.ensureTile(b.index.TileFor(a.Row, a.Col))
	if _, existed := e.cells[a]; !existed {
		b.cellCount++
	}
	e.cells[a] = c
	e.dirty = true
}

// Delete implements sheet.CellStore.
func (b *BlockedStore) Delete(a sheet.Address) {
	k := b.index.TileFor(a.Row, a.Col)
	e := b.loadTile(k)
	if e == nil {
		return
	}
	if _, existed := e.cells[a]; existed {
		delete(e.cells, a)
		b.cellCount--
		e.dirty = true
	}
}

// GetRange implements sheet.CellStore. Only tiles overlapping the range are
// read, which is the point of the blocked layout.
func (b *BlockedStore) GetRange(r sheet.Range, fn func(sheet.Address, sheet.Cell)) {
	for _, k := range b.index.TilesInRect(r.Start.Row, r.Start.Col, r.End.Row, r.End.Col) {
		e := b.loadTile(k)
		if e == nil {
			continue
		}
		for a, c := range e.cells {
			if r.Contains(a) {
				fn(a, c)
			}
		}
	}
}

// Len implements sheet.CellStore.
func (b *BlockedStore) Len() int { return b.cellCount }

// Bounds implements sheet.CellStore.
func (b *BlockedStore) Bounds() (sheet.Range, bool) {
	first := true
	var out sheet.Range
	for _, k := range b.index.All() {
		e := b.loadTile(k)
		if e == nil {
			continue
		}
		for a := range e.cells {
			r := sheet.Range{Start: a, End: a}
			if first {
				out = r
				first = false
			} else {
				out = out.Union(r)
			}
		}
	}
	return out, !first
}

// InsertRows implements sheet.CellStore. Shifting rows moves cells across
// tile boundaries, so the store is rebuilt; this is an interface-data
// operation on ad-hoc cells, not the common path for large bound tables
// (those shift through the positional index instead).
func (b *BlockedStore) InsertRows(row, count int) {
	b.rebuild(func(a sheet.Address) (sheet.Address, bool) {
		if a.Row < row {
			return a, true
		}
		if count < 0 && a.Row < row-count {
			return a, false
		}
		return sheet.Addr(a.Row+count, a.Col), true
	})
}

// InsertCols implements sheet.CellStore.
func (b *BlockedStore) InsertCols(col, count int) {
	b.rebuild(func(a sheet.Address) (sheet.Address, bool) {
		if a.Col < col {
			return a, true
		}
		if count < 0 && a.Col < col-count {
			return a, false
		}
		return sheet.Addr(a.Row, a.Col+count), true
	})
}

// rebuild re-tiles the whole store applying the address mapping; cells for
// which keep is false are dropped.
func (b *BlockedStore) rebuild(remap func(sheet.Address) (sheet.Address, bool)) {
	all := make(map[sheet.Address]sheet.Cell, b.cellCount)
	for _, k := range b.index.All() {
		e := b.loadTile(k)
		if e == nil {
			continue
		}
		for a, c := range e.cells {
			if na, keep := remap(a); keep {
				all[na] = c
			}
		}
	}
	// Free old blocks.
	for _, k := range b.index.All() {
		if pid, ok := b.index.Get(k); ok {
			b.pool.Free(pager.PageID(pid))
		}
		b.index.Delete(k)
	}
	b.cache = make(map[grid.TileKey]*tileEntry)
	b.lru.Init()
	b.cellCount = 0
	for a, c := range all {
		b.Set(a, c)
	}
}
