package cellstore

import (
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// flatCellsPerBlock is how many cell records a flat block accepts before a
// new block is started. Chosen so a block of numeric cells roughly fills one
// page.
const flatCellsPerBlock = 128

// FlatStore is the no-spatial-grouping baseline for the interface storage
// manager: cells are appended to data blocks strictly in insertion order and
// located through a per-cell directory. A rectangular window fetch therefore
// touches as many blocks as the insertion order scattered its cells across,
// instead of the few proximity blocks the BlockedStore touches.
// It implements sheet.CellStore.
type FlatStore struct {
	pool *pager.BufferPool
	// dir maps each stored address to the block holding its record.
	dir map[sheet.Address]pager.PageID
	// blocks lists allocated blocks in order; the last one receives new
	// cells until it is full.
	blocks    []pager.PageID
	tailCount int
}

// NewFlatStore creates a flat cell store over the buffer pool.
func NewFlatStore(pool *pager.BufferPool) *FlatStore {
	return &FlatStore{pool: pool, dir: make(map[sheet.Address]pager.PageID)}
}

// BlockCount returns the number of allocated data blocks.
func (f *FlatStore) BlockCount() int { return len(f.blocks) }

// Flush flushes the underlying buffer pool. (Writes in FlatStore are
// write-through to the pool already.)
func (f *FlatStore) Flush() error { return f.pool.FlushAll() }

func (f *FlatStore) readBlock(id pager.PageID) []cellRecord {
	data, err := f.pool.Get(id)
	if err != nil {
		return nil
	}
	recs, err := decodeBlock(data)
	if err != nil {
		return nil
	}
	return recs
}

func (f *FlatStore) writeBlock(id pager.PageID, recs []cellRecord) {
	_ = f.pool.Put(id, encodeBlock(recs))
}

// Get implements sheet.CellStore.
func (f *FlatStore) Get(a sheet.Address) (sheet.Cell, bool) {
	id, ok := f.dir[a]
	if !ok {
		return sheet.Cell{}, false
	}
	for _, rec := range f.readBlock(id) {
		if rec.addr == a {
			return rec.cell, true
		}
	}
	return sheet.Cell{}, false
}

// Set implements sheet.CellStore.
func (f *FlatStore) Set(a sheet.Address, c sheet.Cell) {
	if c.IsEmpty() {
		f.Delete(a)
		return
	}
	if id, ok := f.dir[a]; ok {
		recs := f.readBlock(id)
		for i := range recs {
			if recs[i].addr == a {
				recs[i].cell = c
				f.writeBlock(id, recs)
				return
			}
		}
		// Directory said the cell was here but it is not; fall through to
		// append (should not happen, but stay consistent).
	}
	// Append to the tail block, starting a new one when full.
	if len(f.blocks) == 0 || f.tailCount >= flatCellsPerBlock {
		f.blocks = append(f.blocks, f.pool.Allocate())
		f.tailCount = 0
	}
	tail := f.blocks[len(f.blocks)-1]
	recs := f.readBlock(tail)
	recs = append(recs, cellRecord{addr: a, cell: c})
	f.writeBlock(tail, recs)
	f.dir[a] = tail
	f.tailCount++
}

// Delete implements sheet.CellStore.
func (f *FlatStore) Delete(a sheet.Address) {
	id, ok := f.dir[a]
	if !ok {
		return
	}
	recs := f.readBlock(id)
	for i := range recs {
		if recs[i].addr == a {
			recs = append(recs[:i], recs[i+1:]...)
			f.writeBlock(id, recs)
			break
		}
	}
	delete(f.dir, a)
}

// GetRange implements sheet.CellStore. Every distinct block containing a cell
// of the range must be read.
func (f *FlatStore) GetRange(r sheet.Range, fn func(sheet.Address, sheet.Cell)) {
	// Collect the distinct blocks that hold cells of the range.
	needed := make(map[pager.PageID]bool)
	if r.Size() <= len(f.dir) {
		for row := r.Start.Row; row <= r.End.Row; row++ {
			for col := r.Start.Col; col <= r.End.Col; col++ {
				if id, ok := f.dir[sheet.Addr(row, col)]; ok {
					needed[id] = true
				}
			}
		}
	} else {
		for a, id := range f.dir {
			if r.Contains(a) {
				needed[id] = true
			}
		}
	}
	for id := range needed {
		for _, rec := range f.readBlock(id) {
			if r.Contains(rec.addr) {
				fn(rec.addr, rec.cell)
			}
		}
	}
}

// Len implements sheet.CellStore.
func (f *FlatStore) Len() int { return len(f.dir) }

// Bounds implements sheet.CellStore.
func (f *FlatStore) Bounds() (sheet.Range, bool) {
	first := true
	var out sheet.Range
	for a := range f.dir {
		r := sheet.Range{Start: a, End: a}
		if first {
			out = r
			first = false
		} else {
			out = out.Union(r)
		}
	}
	return out, !first
}

// InsertRows implements sheet.CellStore by rebuilding the store with shifted
// addresses.
func (f *FlatStore) InsertRows(row, count int) {
	f.rebuild(func(a sheet.Address) (sheet.Address, bool) {
		if a.Row < row {
			return a, true
		}
		if count < 0 && a.Row < row-count {
			return a, false
		}
		return sheet.Addr(a.Row+count, a.Col), true
	})
}

// InsertCols implements sheet.CellStore.
func (f *FlatStore) InsertCols(col, count int) {
	f.rebuild(func(a sheet.Address) (sheet.Address, bool) {
		if a.Col < col {
			return a, true
		}
		if count < 0 && a.Col < col-count {
			return a, false
		}
		return sheet.Addr(a.Row, a.Col+count), true
	})
}

func (f *FlatStore) rebuild(remap func(sheet.Address) (sheet.Address, bool)) {
	type kv struct {
		a sheet.Address
		c sheet.Cell
	}
	var all []kv
	seen := make(map[pager.PageID]bool)
	for _, id := range f.blocks {
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, rec := range f.readBlock(id) {
			if _, live := f.dir[rec.addr]; !live {
				continue
			}
			if na, keep := remap(rec.addr); keep {
				all = append(all, kv{na, rec.cell})
			}
		}
		f.pool.Free(id)
	}
	f.blocks = nil
	f.tailCount = 0
	f.dir = make(map[sheet.Address]pager.PageID, len(all))
	for _, e := range all {
		f.Set(e.a, e.c)
	}
}
