// Package vfs is the injectable I/O seam under every durability component.
//
// All file I/O performed by the pager, the WAL and the root-page machinery
// goes through the FS/File interfaces instead of calling *os.File directly.
// Production code uses OS(), a thin passthrough to the os package; fault
// tests substitute a FaultFS that fails the Nth operation, simulates ENOSPC
// or tears a write at sector granularity. Every error a vfs implementation
// returns (other than io.EOF on reads) is wrapped in an *OpError so callers
// classify it with errors.Is under dberr.ErrIO, and ENOSPC additionally
// under dberr.ErrDiskFull.
//
// dslint:errdomain
package vfs

import (
	"errors"
	"io"
	"os"
	"syscall"

	"github.com/dataspread/dataspread/internal/dberr"
)

// Operation names recorded in OpError and matched by fault plans.
const (
	OpOpen     = "open"
	OpRead     = "read"
	OpWrite    = "write"
	OpSeek     = "seek"
	OpSync     = "sync"
	OpTruncate = "truncate"
	OpStat     = "stat"
	OpClose    = "close"
	OpRename   = "rename"
	OpRemove   = "remove"
)

// FS opens and manipulates files by path. Implementations must be safe for
// concurrent use by multiple goroutines.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)

	// Rename atomically replaces newpath with oldpath; it is the commit
	// point of WAL compaction, so its error is a durability signal.
	//
	// dslint:critical
	Rename(oldpath, newpath string) error

	// Remove deletes path. Used only for best-effort cleanup of temp files.
	Remove(path string) error
}

// File is the handle surface the storage layer needs. The write-side methods
// are durability-critical: discarding their errors hides data loss, and
// dslint's errwrap analyzer enforces that they are checked.
type File interface {
	io.Reader
	io.ReaderAt
	io.Seeker

	// Write appends at the current offset.
	//
	// dslint:critical
	Write(p []byte) (int, error)

	// WriteAt writes at an absolute offset.
	//
	// dslint:critical
	WriteAt(p []byte, off int64) (int, error)

	// Sync flushes file contents to stable storage. After a failed Sync the
	// kernel may have dropped the dirty pages, so callers must never retry
	// and report success (the fsync-gate rule).
	//
	// dslint:critical
	Sync() error

	// Truncate resizes the file.
	//
	// dslint:critical
	Truncate(size int64) error

	// Close releases the handle, surfacing any deferred write-back error.
	//
	// dslint:critical
	Close() error

	Stat() (os.FileInfo, error)
	Name() string
	Fd() uintptr
}

// OpError wraps every failure a vfs implementation returns, carrying the
// operation and path for diagnostics and supporting errors.Is
// classification: every OpError matches dberr.ErrIO, and an OpError whose
// cause is ENOSPC also matches dberr.ErrDiskFull.
type OpError struct {
	Op   string
	Path string
	Err  error
}

func (e *OpError) Error() string {
	return "vfs: " + e.Op + " " + e.Path + ": " + e.Err.Error()
}

func (e *OpError) Unwrap() error { return e.Err }

// Is reports sentinel membership without requiring the cause chain to carry
// the dberr sentinels itself.
func (e *OpError) Is(target error) bool {
	switch target {
	case dberr.ErrIO:
		return true
	case dberr.ErrDiskFull:
		return errors.Is(e.Err, syscall.ENOSPC)
	}
	return false
}

// wrapOp boxes err in an *OpError unless it is nil or io.EOF: readers rely
// on comparing io.EOF by equality (the WAL's torn-tail scan), so EOF must
// pass through unwrapped.
func wrapOp(op, path string, err error) error {
	if err == nil || err == io.EOF {
		return err
	}
	return &OpError{Op: op, Path: path, Err: err}
}

// osFS is the production FS: a passthrough to the os package.
type osFS struct{}

var theOSFS FS = osFS{}

// OS returns the production filesystem backed by the os package.
func OS() FS { return theOSFS }

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, wrapOp(OpOpen, path, err)
	}
	return &osFile{f: f}, nil
}

func (osFS) Rename(oldpath, newpath string) error {
	return wrapOp(OpRename, newpath, os.Rename(oldpath, newpath))
}

func (osFS) Remove(path string) error {
	return wrapOp(OpRemove, path, os.Remove(path))
}

// osFile wraps *os.File, boxing every error in an *OpError.
type osFile struct {
	f *os.File
}

func (o *osFile) Read(p []byte) (int, error) {
	n, err := o.f.Read(p)
	return n, wrapOp(OpRead, o.f.Name(), err)
}

func (o *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := o.f.ReadAt(p, off)
	return n, wrapOp(OpRead, o.f.Name(), err)
}

func (o *osFile) Seek(offset int64, whence int) (int64, error) {
	n, err := o.f.Seek(offset, whence)
	return n, wrapOp(OpSeek, o.f.Name(), err)
}

func (o *osFile) Write(p []byte) (int, error) {
	n, err := o.f.Write(p)
	return n, wrapOp(OpWrite, o.f.Name(), err)
}

func (o *osFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := o.f.WriteAt(p, off)
	return n, wrapOp(OpWrite, o.f.Name(), err)
}

func (o *osFile) Sync() error {
	return wrapOp(OpSync, o.f.Name(), o.f.Sync())
}

func (o *osFile) Truncate(size int64) error {
	return wrapOp(OpTruncate, o.f.Name(), o.f.Truncate(size))
}

func (o *osFile) Close() error {
	return wrapOp(OpClose, o.f.Name(), o.f.Close())
}

func (o *osFile) Stat() (os.FileInfo, error) {
	fi, err := o.f.Stat()
	return fi, wrapOp(OpStat, o.f.Name(), err)
}

func (o *osFile) Name() string { return o.f.Name() }

func (o *osFile) Fd() uintptr { return o.f.Fd() }
