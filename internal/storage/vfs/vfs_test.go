package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file.bin")
	fsys := OS()

	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := f.WriteAt([]byte("W"), 0); err != nil {
		t.Fatalf("writeat: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("readat: %v", err)
	}
	if string(buf) != "Wello" {
		t.Fatalf("readat = %q, want Wello", buf)
	}
	fi, err := f.Stat()
	if err != nil || fi.Size() != 11 {
		t.Fatalf("stat = %v, %v; want size 11", fi, err)
	}
	if f.Name() != path {
		t.Fatalf("name = %q, want %q", f.Name(), path)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	other := filepath.Join(dir, "other.bin")
	if err := fsys.Rename(path, other); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := fsys.Remove(other); err != nil {
		t.Fatalf("remove: %v", err)
	}
}

// A read at EOF must return io.EOF unwrapped: the WAL's torn-tail scan
// compares it by equality.
func TestEOFPassesThroughUnwrapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	f, err := OS().OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if _, err := f.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("Read at EOF = %v, want io.EOF by equality", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err != io.EOF {
		t.Fatalf("ReadAt at EOF = %v, want io.EOF by equality", err)
	}
}

func TestOpErrorClassification(t *testing.T) {
	eio := &OpError{Op: OpWrite, Path: "x", Err: syscall.EIO}
	if !errors.Is(eio, dberr.ErrIO) {
		t.Fatalf("EIO OpError should match dberr.ErrIO")
	}
	if errors.Is(eio, dberr.ErrDiskFull) {
		t.Fatalf("EIO OpError must not match dberr.ErrDiskFull")
	}
	enospc := &OpError{Op: OpWrite, Path: "x", Err: syscall.ENOSPC}
	if !errors.Is(enospc, dberr.ErrIO) || !errors.Is(enospc, dberr.ErrDiskFull) {
		t.Fatalf("ENOSPC OpError should match both ErrIO and ErrDiskFull")
	}
	// A real failure from the osFS layer classifies the same way.
	_, err := OS().OpenFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), os.O_RDWR, 0o644)
	if err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("open failure = %v, want ErrIO-classified", err)
	}
}

func TestFaultFSCountsMutatingOpsOnly(t *testing.T) {
	ffs := NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "f")
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // op 1
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("abc")); err != nil { // op 2
		t.Fatalf("write: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err != nil { // uncounted
		t.Fatalf("readat: %v", err)
	}
	if _, err := f.Stat(); err != nil { // uncounted
		t.Fatalf("stat: %v", err)
	}
	if err := f.Sync(); err != nil { // op 3
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil { // op 4
		t.Fatalf("close: %v", err)
	}
	if got := ffs.Ops(); got != 4 {
		t.Fatalf("Ops() = %d, want 4", got)
	}
	if _, _, hit := ffs.Hit(); hit {
		t.Fatalf("no fault armed, but Hit reports one")
	}
}

func TestFaultFSFailsNthOpOnce(t *testing.T) {
	ffs := NewFaultFS(nil)
	ffs.SetFault(Fault{Op: 2, Err: syscall.EIO})
	path := filepath.Join(t.TempDir(), "f")
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // op 1
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("abc")); err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("op 2 write = %v, want injected ErrIO", err)
	}
	op, _, hit := ffs.Hit()
	if !hit || op != OpWrite {
		t.Fatalf("Hit() = %q, %v; want write hit", op, hit)
	}
	// Single-fault model: the next op succeeds.
	if _, err := f.Write([]byte("def")); err != nil {
		t.Fatalf("post-fault write = %v, want nil", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestFaultFSKindAndSuffixTargeting(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.SetFault(Fault{Kind: OpSync, PathSuffix: ".dsp", Err: syscall.EIO})

	wal, err := ffs.OpenFile(filepath.Join(dir, "w.dsp.wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatalf("wal sync should not fault (suffix mismatch): %v", err)
	}
	heap, err := ffs.OpenFile(filepath.Join(dir, "w.dsp"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open heap: %v", err)
	}
	if _, err := heap.Write([]byte("x")); err != nil {
		t.Fatalf("heap write should not fault (kind mismatch): %v", err)
	}
	if err := heap.Sync(); err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("heap sync = %v, want injected ErrIO", err)
	}
	if err := wal.Close(); err != nil {
		t.Fatalf("close wal: %v", err)
	}
	if err := heap.Close(); err != nil {
		t.Fatalf("close heap: %v", err)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	ffs := NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "f")
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ffs.SetFault(Fault{Kind: OpWrite, Err: syscall.EIO, TornBytes: 3})
	n, werr := f.WriteAt([]byte("abcdefgh"), 0)
	if werr == nil || !errors.Is(werr, dberr.ErrIO) {
		t.Fatalf("torn write = %v, want injected ErrIO", werr)
	}
	if n != 3 {
		t.Fatalf("torn write landed %d bytes, want 3", n)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("readfile: %v", rerr)
	}
	if string(got) != "abc" {
		t.Fatalf("file holds %q after torn write, want abc", got)
	}
}
