package vfs

import (
	"os"
	"sync"
)

// Fault is one injected failure. The zero value injects nothing.
//
// Targeting: when Op > 0 the fault fires on exactly the Op-th counted
// mutating operation (1-based) — the single-fault sweep drives this form.
// When Op == 0 and Kind is set, the fault fires on the first operation of
// that kind; PathSuffix further restricts either form to files whose path
// ends with the suffix (so a test can fault the heap file but not the WAL).
// A fault fires at most once per FaultFS (single-fault model).
type Fault struct {
	// Op is the 1-based index of the counted operation to fail (0 = off).
	Op int64
	// Kind restricts the fault to one operation kind (OpWrite, OpSync, ...).
	Kind string
	// PathSuffix restricts the fault to paths ending with this suffix.
	PathSuffix string
	// Err is the error to inject, typically syscall.EIO or syscall.ENOSPC.
	Err error
	// TornBytes, for write faults, lands this prefix of the buffer through
	// the real file before reporting failure — a short (torn) write.
	TornBytes int
}

// FaultFS wraps another FS, counting mutating operations and injecting a
// single planned fault. Reads, seeks and stats are passed through uncounted
// and unfaulted: the sweep targets the write path, where durability lives.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	plan    Fault
	ops     int64
	hit     bool
	hitOp   string
	hitPath string
}

// NewFaultFS wraps inner (the OS filesystem when nil) with no fault armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS()
	}
	return &FaultFS{inner: inner}
}

// SetFault arms the next fault and clears any previous hit.
func (fs *FaultFS) SetFault(f Fault) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.plan = f
	fs.hit = false
	fs.hitOp, fs.hitPath = "", ""
}

// Ops returns the number of counted mutating operations so far.
func (fs *FaultFS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Hit reports whether the armed fault fired, and on what.
func (fs *FaultFS) Hit() (op, path string, ok bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.hitOp, fs.hitPath, fs.hit
}

// step counts one mutating operation and decides whether the armed fault
// fires on it.
func (fs *FaultFS) step(op, path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ops++
	if fs.hit || fs.plan.Err == nil {
		return false
	}
	if fs.plan.PathSuffix != "" && !hasSuffix(path, fs.plan.PathSuffix) {
		return false
	}
	if fs.plan.Kind != "" && fs.plan.Kind != op {
		return false
	}
	if fs.plan.Op > 0 && fs.plan.Op != fs.ops {
		return false
	}
	if fs.plan.Op == 0 && fs.plan.Kind == "" {
		return false
	}
	fs.hit = true
	fs.hitOp, fs.hitPath = op, path
	return true
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

func (fs *FaultFS) injected(op, path string) error {
	fs.mu.Lock()
	err := fs.plan.Err
	fs.mu.Unlock()
	return &OpError{Op: op, Path: path, Err: err}
}

func (fs *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if fs.step(OpOpen, path) {
		return nil, fs.injected(OpOpen, path)
	}
	f, err := fs.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, inner: f, path: path}, nil
}

func (fs *FaultFS) Rename(oldpath, newpath string) error {
	if fs.step(OpRename, newpath) {
		return fs.injected(OpRename, newpath)
	}
	return fs.inner.Rename(oldpath, newpath)
}

func (fs *FaultFS) Remove(path string) error {
	if fs.step(OpRemove, path) {
		return fs.injected(OpRemove, path)
	}
	return fs.inner.Remove(path)
}

// faultFile intercepts the mutating File methods of one open handle.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
}

func (f *faultFile) Read(p []byte) (int, error)              { return f.inner.Read(p) }
func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *faultFile) Seek(off int64, whence int) (int64, error) {
	return f.inner.Seek(off, whence)
}
func (f *faultFile) Stat() (os.FileInfo, error) { return f.inner.Stat() }
func (f *faultFile) Name() string               { return f.inner.Name() }
func (f *faultFile) Fd() uintptr                { return f.inner.Fd() }

func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.step(OpWrite, f.path) {
		return f.tornWrite(p, -1)
	}
	return f.inner.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if f.fs.step(OpWrite, f.path) {
		return f.tornWrite(p, off)
	}
	return f.inner.WriteAt(p, off)
}

// tornWrite lands the configured prefix (if any) through the real file and
// reports the injected failure. off < 0 means a sequential Write.
func (f *faultFile) tornWrite(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	torn := f.fs.plan.TornBytes
	f.fs.mu.Unlock()
	n := 0
	if torn > 0 && torn < len(p) {
		var werr error
		if off < 0 {
			n, werr = f.inner.Write(p[:torn])
		} else {
			n, werr = f.inner.WriteAt(p[:torn], off)
		}
		// The injected error below subsumes any failure of the partial
		// write: the caller sees one short, failed write either way.
		_ = werr
	}
	return n, f.fs.injected(OpWrite, f.path)
}

func (f *faultFile) Sync() error {
	if f.fs.step(OpSync, f.path) {
		// The real fsync is skipped: from the caller's view the data never
		// reached stable storage, and per the fsync-gate rule it must not
		// be retried.
		return f.fs.injected(OpSync, f.path)
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if f.fs.step(OpTruncate, f.path) {
		return f.fs.injected(OpTruncate, f.path)
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error {
	if f.fs.step(OpClose, f.path) {
		// Close the real handle regardless so fault runs never leak fds;
		// the injected error still reaches the caller.
		cerr := f.inner.Close()
		_ = cerr
		return f.fs.injected(OpClose, f.path)
	}
	return f.inner.Close()
}
