package tablestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/dataspread/dataspread/internal/sheet"
)

// ErrPageChecksum is returned when a data page fails its CRC: the page file
// was corrupted outside the engine (media bit flip, partial write). Scans and
// point reads surface it instead of silently decoding garbage rows.
var ErrPageChecksum = errors.New("tablestore: page checksum mismatch (corrupt page)")

// sealPage prepends a CRC32 over the payload. Every tuple/column page is
// sealed before it reaches the pager, so a flipped bit anywhere in the
// payload is detected at decode time rather than surfacing as a wrong value.
func sealPage(payload []byte) []byte {
	out := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// unsealPage validates and strips the CRC header. A zero-length buffer is a
// freshly allocated, never-written page and passes through as empty.
func unsealPage(buf []byte) ([]byte, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: page shorter than its checksum", ErrPageChecksum)
	}
	payload := buf[4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf) {
		return nil, ErrPageChecksum
	}
	return payload, nil
}

// Tuple and value serialisation shared by the physical layouts. Values are
// the unified sheet.Value dynamic type: DataSpread types relational columns
// from observed values (paper §2.2 "Data typing"), so the storage layer keeps
// the dynamic representation and the catalog layer enforces/infers column
// types.

func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func appendValue(dst []byte, v sheet.Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case sheet.KindNumber:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Num))
		dst = append(dst, b[:]...)
	case sheet.KindString:
		dst = appendUvarint(dst, uint64(len(v.Str)))
		dst = append(dst, v.Str...)
	case sheet.KindBool:
		if v.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case sheet.KindError:
		dst = appendUvarint(dst, uint64(len(v.Err)))
		dst = append(dst, v.Err...)
	}
	return dst
}

type valueDecoder struct {
	buf []byte
	pos int
}

func (d *valueDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("tablestore: corrupt varint at %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *valueDecoder) value() (sheet.Value, error) {
	if d.pos >= len(d.buf) {
		return sheet.Value{}, fmt.Errorf("tablestore: truncated value at %d", d.pos)
	}
	kind := sheet.Kind(d.buf[d.pos])
	d.pos++
	v := sheet.Value{Kind: kind}
	switch kind {
	case sheet.KindEmpty:
	case sheet.KindNumber:
		if d.pos+8 > len(d.buf) {
			return v, fmt.Errorf("tablestore: truncated number at %d", d.pos)
		}
		v.Num = math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.pos:]))
		d.pos += 8
	case sheet.KindString, sheet.KindError:
		n, err := d.uvarint()
		if err != nil {
			return v, err
		}
		if d.pos+int(n) > len(d.buf) {
			return v, fmt.Errorf("tablestore: truncated string at %d", d.pos)
		}
		s := string(d.buf[d.pos : d.pos+int(n)])
		d.pos += int(n)
		if kind == sheet.KindString {
			v.Str = s
		} else {
			v.Err = s
		}
	case sheet.KindBool:
		if d.pos >= len(d.buf) {
			return v, fmt.Errorf("tablestore: truncated bool at %d", d.pos)
		}
		v.Bool = d.buf[d.pos] != 0
		d.pos++
	default:
		return v, fmt.Errorf("tablestore: unknown value kind %d", kind)
	}
	return v, nil
}

// encodeTuples serialises a page of tuples: each entry is a RowID followed by
// the tuple's values, the whole page sealed under a CRC. All tuples in one
// page image have the same width.
func encodeTuples(ids []RowID, rows [][]sheet.Value, width int) []byte {
	return sealPage(encodeTuplesPayload(ids, rows, width))
}

func encodeTuplesPayload(ids []RowID, rows [][]sheet.Value, width int) []byte {
	out := appendUvarint(nil, uint64(len(ids)))
	out = appendUvarint(out, uint64(width))
	for i := range ids {
		out = appendUvarint(out, uint64(ids[i]))
		for c := 0; c < width; c++ {
			if c < len(rows[i]) {
				out = appendValue(out, rows[i][c])
			} else {
				out = appendValue(out, sheet.Empty())
			}
		}
	}
	return out
}

// decodeTuples decodes either page vintage, validating the checksum first:
// the v2 container (magic + body CRC) is tried before the legacy bare-CRC
// framing.
func decodeTuples(buf []byte) (ids []RowID, rows [][]sheet.Value, err error) {
	if body, ok := unsealPageV2(buf); ok {
		return decodeTuplesV2(body)
	}
	payload, err := unsealPage(buf)
	if err != nil {
		return nil, nil, err
	}
	if len(payload) == 0 {
		return nil, nil, nil
	}
	d := &valueDecoder{buf: payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	width, err := d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	ids = make([]RowID, 0, n)
	rows = make([][]sheet.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		id, err := d.uvarint()
		if err != nil {
			return nil, nil, err
		}
		row := make([]sheet.Value, width)
		for c := range row {
			if row[c], err = d.value(); err != nil {
				return nil, nil, err
			}
		}
		ids = append(ids, RowID(id))
		rows = append(rows, row)
	}
	return ids, rows, nil
}

// encodeColumn serialises a page of single-column values addressed by dense
// slot offsets within the page, sealed under a CRC.
func encodeColumn(vals []sheet.Value) []byte {
	out := appendUvarint(nil, uint64(len(vals)))
	for _, v := range vals {
		out = appendValue(out, v)
	}
	return sealPage(out)
}

// decodeColumn decodes either page vintage, validating the checksum first
// (see decodeTuples).
func decodeColumn(buf []byte) ([]sheet.Value, error) {
	if body, ok := unsealPageV2(buf); ok {
		return decodeColumnV2(body)
	}
	payload, err := unsealPage(buf)
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, nil
	}
	d := &valueDecoder{buf: payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]sheet.Value, n)
	for i := range out {
		if out[i], err = d.value(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// cloneRow copies a tuple so callers cannot alias stored data.
func cloneRow(row []sheet.Value) []sheet.Value {
	out := make([]sheet.Value, len(row))
	copy(out, row)
	return out
}

// AppendValue appends the storage encoding of one value. The durability
// layer reuses the codec for catalog metadata (column defaults, index keys)
// so every persisted value round-trips through a single format.
func AppendValue(dst []byte, v sheet.Value) []byte { return appendValue(dst, v) }

// ReadValue decodes one value from the front of buf and returns the rest.
func ReadValue(buf []byte) (sheet.Value, []byte, error) {
	d := &valueDecoder{buf: buf}
	v, err := d.value()
	if err != nil {
		return sheet.Value{}, nil, err
	}
	return v, buf[d.pos:], nil
}
