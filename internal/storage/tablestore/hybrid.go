package tablestore

import (
	"fmt"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// DefaultGroupSize is the number of attributes per group when a hybrid table
// is created. Experiment A1 sweeps this parameter: size 1 behaves like a
// column store, size >= #columns behaves like a row store.
const DefaultGroupSize = 4

// HybridStore is the paper's relational storage manager: attributes are
// partitioned into groups, and each group is stored together in its own chain
// of blocks (a "mini row store" per group).
//
//   - Adding an attribute creates a new group, so only the new attribute's
//     backfill blocks are written — schema change cost is independent of the
//     existing table width, "almost as efficient as changes to tuples".
//   - Tuple operations touch one block per group rather than one per column,
//     so point updates stay close to row-store cost.
//
// Rows occupy dense slots in insertion order; deletes are tombstones. RowID n
// lives at slot n-1.
type HybridStore struct {
	pool      *pager.BufferPool
	groups    []attrGroup
	colMap    []colLocation // column index -> location
	deleted   map[RowID]bool
	slotCount int
	nextID    RowID
	rowCount  int
	groupSize int
	cache     decodedCache
}

type attrGroup struct {
	width   int
	rowsPer int // tuples per block for this group (narrow groups pack more)
	pages   []pager.PageID
	zones   []*pageZones // parallel to pages; nil entry = unknown
}

type colLocation struct {
	group  int
	offset int
}

// HybridOption configures a HybridStore.
type HybridOption func(*hybridConfig)

type hybridConfig struct {
	groupSize int
}

// WithGroupSize sets how many of the initial columns are placed per group.
func WithGroupSize(n int) HybridOption {
	return func(c *hybridConfig) { c.groupSize = n }
}

// groupRowsPer sizes a group's blocks so that a block holds roughly
// valuesPerPage values regardless of group width.
func groupRowsPer(width int) int {
	if width < 1 {
		width = 1
	}
	n := valuesPerPage / width
	if n < 1 {
		n = 1
	}
	return n
}

// NewHybridStore creates an empty hybrid store with the given number of
// columns, partitioned into attribute groups.
func NewHybridStore(pool *pager.BufferPool, columns int, opts ...HybridOption) *HybridStore {
	cfg := hybridConfig{groupSize: DefaultGroupSize}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.groupSize < 1 {
		cfg.groupSize = 1
	}
	s := &HybridStore{
		pool:      pool,
		deleted:   make(map[RowID]bool),
		nextID:    1,
		groupSize: cfg.groupSize,
	}
	for start := 0; start < columns; start += cfg.groupSize {
		width := cfg.groupSize
		if start+width > columns {
			width = columns - start
		}
		gi := len(s.groups)
		s.groups = append(s.groups, attrGroup{width: width, rowsPer: groupRowsPer(width)})
		for off := 0; off < width; off++ {
			s.colMap = append(s.colMap, colLocation{group: gi, offset: off})
		}
	}
	return s
}

// Layout implements Store.
func (s *HybridStore) Layout() string { return "hybrid" }

// ColumnCount implements Store.
func (s *HybridStore) ColumnCount() int { return len(s.colMap) }

// RowCount implements Store.
func (s *HybridStore) RowCount() int { return s.rowCount }

// GroupCount returns the number of live (non-empty) attribute groups.
func (s *HybridStore) GroupCount() int {
	n := 0
	for _, g := range s.groups {
		if g.width > 0 {
			n++
		}
	}
	return n
}

// PageCount returns the total number of data blocks across all groups.
func (s *HybridStore) PageCount() int {
	n := 0
	for _, g := range s.groups {
		n += len(g.pages)
	}
	return n
}

func (s *HybridStore) checkID(id RowID) error {
	if id == 0 || id >= s.nextID || s.deleted[id] {
		return fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	return nil
}

// readGroupPage decodes a private copy of a group page for the mutation
// paths, which edit the returned slices in place before writing them back.
func (s *HybridStore) readGroupPage(gi, pi int) ([]RowID, [][]sheet.Value, error) {
	data, err := s.pool.Get(s.groups[gi].pages[pi])
	if err != nil {
		return nil, nil, err
	}
	return decodeTuples(data)
}

// readGroupPageShared returns the cached decoded page for the read-only
// paths; callers must not modify the returned slices.
func (s *HybridStore) readGroupPageShared(gi, pi int) ([]RowID, [][]sheet.Value, error) {
	return s.cache.getTuples(s.pool, s.groups[gi].pages[pi])
}

// writeGroupPage is the single choke point for group-page mutations: every
// rewrite re-encodes the page (v2 container) and replaces its zone summary.
func (s *HybridStore) writeGroupPage(gi, pi int, ids []RowID, rows [][]sheet.Value, width int) error {
	buf, pz := encodeTuplesV2(ids, rows, width)
	if err := s.pool.Put(s.groups[gi].pages[pi], buf); err != nil {
		return err
	}
	s.groups[gi].zones = setZone(s.groups[gi].zones, pi, pz)
	return nil
}

// project extracts the group's attribute values from a full tuple.
func (s *HybridStore) project(row []sheet.Value, gi int) []sheet.Value {
	out := make([]sheet.Value, s.groups[gi].width)
	for col, loc := range s.colMap {
		if loc.group == gi {
			out[loc.offset] = row[col]
		}
	}
	return out
}

// Insert implements Store. One block per group is touched.
func (s *HybridStore) Insert(row []sheet.Value) (RowID, error) {
	if err := checkWidth(row, len(s.colMap)); err != nil {
		return 0, err
	}
	slot := s.slotCount
	id := s.nextID
	for gi := range s.groups {
		g := &s.groups[gi]
		if g.width == 0 {
			continue
		}
		pi := slot / g.rowsPer
		if pi == len(g.pages) {
			pid, err := s.pool.AllocatePage()
			if err != nil {
				return 0, err
			}
			g.pages = append(g.pages, pid)
		}
		ids, rows, err := s.readGroupPage(gi, pi)
		if err != nil {
			return 0, err
		}
		ids = append(ids, id)
		rows = append(rows, s.project(row, gi))
		if err := s.writeGroupPage(gi, pi, ids, rows, g.width); err != nil {
			return 0, err
		}
	}
	s.nextID++
	s.slotCount++
	s.rowCount++
	return id, nil
}

// Get implements Store.
func (s *HybridStore) Get(id RowID) ([]sheet.Value, error) {
	if err := s.checkID(id); err != nil {
		return nil, err
	}
	slot := int(id - 1)
	row := make([]sheet.Value, len(s.colMap))
	for gi := range s.groups {
		g := &s.groups[gi]
		if g.width == 0 {
			continue
		}
		pi, off := slot/g.rowsPer, slot%g.rowsPer
		_, rows, err := s.readGroupPageShared(gi, pi)
		if err != nil {
			return nil, err
		}
		if off >= len(rows) {
			return nil, fmt.Errorf("%w: %d", ErrRowNotFound, id)
		}
		for col, loc := range s.colMap {
			if loc.group == gi {
				row[col] = rows[off][loc.offset]
			}
		}
	}
	return row, nil
}

// GetCols implements Store. Only the blocks of attribute groups that hold a
// requested column are read.
func (s *HybridStore) GetCols(id RowID, cols []int) ([]sheet.Value, error) {
	if cols == nil {
		return s.Get(id)
	}
	if err := s.checkID(id); err != nil {
		return nil, err
	}
	slot := int(id - 1)
	out := make([]sheet.Value, len(cols))
	// One shared page read per distinct group among the requested columns.
	var curGroup, curPage = -1, -1
	var rows [][]sheet.Value
	for j, c := range cols {
		if c < 0 || c >= len(s.colMap) {
			return nil, fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
		loc := s.colMap[c]
		g := &s.groups[loc.group]
		pi, off := slot/g.rowsPer, slot%g.rowsPer
		if loc.group != curGroup || pi != curPage {
			var err error
			if _, rows, err = s.readGroupPageShared(loc.group, pi); err != nil {
				return nil, err
			}
			curGroup, curPage = loc.group, pi
		}
		if off >= len(rows) {
			return nil, fmt.Errorf("%w: %d", ErrRowNotFound, id)
		}
		out[j] = rows[off][loc.offset]
	}
	return out, nil
}

// Update implements Store. One block per group is touched.
func (s *HybridStore) Update(id RowID, row []sheet.Value) error {
	if err := checkWidth(row, len(s.colMap)); err != nil {
		return err
	}
	if err := s.checkID(id); err != nil {
		return err
	}
	slot := int(id - 1)
	for gi := range s.groups {
		g := &s.groups[gi]
		if g.width == 0 {
			continue
		}
		pi, off := slot/g.rowsPer, slot%g.rowsPer
		ids, rows, err := s.readGroupPage(gi, pi)
		if err != nil {
			return err
		}
		if off >= len(rows) {
			return fmt.Errorf("%w: %d", ErrRowNotFound, id)
		}
		rows[off] = s.project(row, gi)
		if err := s.writeGroupPage(gi, pi, ids, rows, g.width); err != nil {
			return err
		}
	}
	return nil
}

// UpdateColumn implements Store. Only the block of the group containing the
// column is touched.
func (s *HybridStore) UpdateColumn(id RowID, col int, v sheet.Value) error {
	if col < 0 || col >= len(s.colMap) {
		return fmt.Errorf("%w: %d", ErrColumnRange, col)
	}
	if err := s.checkID(id); err != nil {
		return err
	}
	loc := s.colMap[col]
	g := &s.groups[loc.group]
	slot := int(id - 1)
	pi, off := slot/g.rowsPer, slot%g.rowsPer
	ids, rows, err := s.readGroupPage(loc.group, pi)
	if err != nil {
		return err
	}
	if off >= len(rows) {
		return fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	rows[off][loc.offset] = v
	return s.writeGroupPage(loc.group, pi, ids, rows, g.width)
}

// Delete implements Store (tombstone).
func (s *HybridStore) Delete(id RowID) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	s.deleted[id] = true
	s.rowCount--
	return nil
}

// Scan implements Store. Each group's blocks are read once per scan: a small
// per-group cursor caches the currently loaded block.
func (s *HybridStore) Scan(fn func(id RowID, row []sheet.Value) bool) error {
	return s.ScanCols(nil, func(id RowID, row []sheet.Value) bool {
		return fn(id, cloneRow(row))
	})
}

// singleGroupScan reports the group whose stored tuples can be passed
// through unchanged — the wanted columns are exactly that group's
// attributes in order — or -1 when the scan spans groups or reorders.
func (s *HybridStore) singleGroupScan(want []int) int {
	if len(want) == 0 {
		return -1
	}
	gi := s.colMap[want[0]].group
	if s.groups[gi].width != len(want) {
		return -1
	}
	for j, c := range want {
		loc := s.colMap[c]
		if loc.group != gi || loc.offset != j {
			return -1
		}
	}
	return gi
}

// ScanColsStable implements Store: a scan served by a single aligned group
// hands out the decoded page rows themselves.
func (s *HybridStore) ScanColsStable(cols []int) bool {
	want := cols
	if want == nil {
		want = make([]int, len(s.colMap))
		for i := range want {
			want[i] = i
		}
	}
	for _, c := range want {
		if c < 0 || c >= len(s.colMap) {
			return false
		}
	}
	return s.singleGroupScan(want) >= 0
}

// ScanCols implements Store. Only the blocks of the attribute groups that
// contain a requested column are read — groups holding only unreferenced
// columns are never paged in.
func (s *HybridStore) ScanCols(cols []int, fn func(id RowID, row []sheet.Value) bool) error {
	want := cols
	if want == nil {
		want = make([]int, len(s.colMap))
		for i := range want {
			want[i] = i
		}
	}
	for _, c := range want {
		if c < 0 || c >= len(s.colMap) {
			return fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
	}
	// Fast path: the wanted columns are exactly one group's tuples, so the
	// decoded rows pass through with no scratch copy at all.
	if gi := s.singleGroupScan(want); gi >= 0 {
		g := &s.groups[gi]
		hasDeleted := len(s.deleted) > 0
		var rows [][]sheet.Value
		var empty []sheet.Value
		cur := -1
		for slot := 0; slot < s.slotCount; slot++ {
			id := RowID(slot + 1)
			if hasDeleted && s.deleted[id] {
				continue
			}
			pi, off := slot/g.rowsPer, slot%g.rowsPer
			if cur != pi {
				var err error
				if _, rows, err = s.readGroupPageShared(gi, pi); err != nil {
					return err
				}
				cur = pi
			}
			row := empty
			if off < len(rows) {
				row = rows[off]
			} else if empty == nil {
				empty = make([]sheet.Value, g.width)
				row = empty
			}
			if !fn(id, row) {
				return nil
			}
		}
		return nil
	}
	// Plan the reads: one cursor per group that holds a requested column,
	// each carrying the (scratch slot, offset-in-group) pairs to copy per
	// tuple.
	type groupCopy struct {
		slot   int // index into the scratch row
		offset int // attribute offset within the group's tuples
	}
	type groupRead struct {
		gi     int
		copies []groupCopy
		pi     int
		rows   [][]sheet.Value
	}
	var reads []*groupRead
	byGroup := make(map[int]*groupRead)
	for j, c := range want {
		if c < 0 || c >= len(s.colMap) {
			return fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
		loc := s.colMap[c]
		gr, ok := byGroup[loc.group]
		if !ok {
			gr = &groupRead{gi: loc.group, pi: -1}
			byGroup[loc.group] = gr
			reads = append(reads, gr)
		}
		gr.copies = append(gr.copies, groupCopy{slot: j, offset: loc.offset})
	}
	scratch := make([]sheet.Value, len(want))
	hasDeleted := len(s.deleted) > 0
	for slot := 0; slot < s.slotCount; slot++ {
		id := RowID(slot + 1)
		if hasDeleted && s.deleted[id] {
			continue
		}
		for _, gr := range reads {
			g := &s.groups[gr.gi]
			pi, off := slot/g.rowsPer, slot%g.rowsPer
			if gr.pi != pi {
				_, rows, err := s.readGroupPageShared(gr.gi, pi)
				if err != nil {
					return err
				}
				gr.pi, gr.rows = pi, rows
			}
			if off >= len(gr.rows) {
				for _, cp := range gr.copies {
					scratch[cp.slot] = sheet.Empty()
				}
				continue
			}
			row := gr.rows[off]
			for _, cp := range gr.copies {
				scratch[cp.slot] = row[cp.offset]
			}
		}
		if !fn(id, scratch) {
			return nil
		}
	}
	return nil
}

// AddColumn implements Store. A new single-attribute group is created and
// backfilled; no existing block is touched, which is the paper's headline
// storage property.
func (s *HybridStore) AddColumn(defaultValue sheet.Value) error {
	gi := len(s.groups)
	g := attrGroup{width: 1, rowsPer: groupRowsPer(1)}
	for base := 0; base < s.slotCount; base += g.rowsPer {
		limit := s.slotCount - base
		if limit > g.rowsPer {
			limit = g.rowsPer
		}
		ids := make([]RowID, limit)
		rows := make([][]sheet.Value, limit)
		for i := 0; i < limit; i++ {
			ids[i] = RowID(base + i + 1)
			rows[i] = []sheet.Value{defaultValue}
		}
		pid, err := s.pool.AllocatePage()
		if err != nil {
			return err
		}
		buf, pz := encodeTuplesV2(ids, rows, 1)
		if err := s.pool.Put(pid, buf); err != nil {
			return err
		}
		g.pages = append(g.pages, pid)
		g.zones = append(g.zones, pz)
	}
	s.groups = append(s.groups, g)
	s.colMap = append(s.colMap, colLocation{group: gi, offset: 0})
	return nil
}

// DropColumn implements Store. Only the blocks of the group containing the
// column are rewritten (or freed outright when the group had a single
// attribute).
func (s *HybridStore) DropColumn(col int) error {
	if col < 0 || col >= len(s.colMap) {
		return fmt.Errorf("%w: %d", ErrColumnRange, col)
	}
	loc := s.colMap[col]
	g := &s.groups[loc.group]
	if g.width == 1 {
		// Whole group disappears; free its blocks.
		for _, pid := range g.pages {
			s.pool.Free(pid)
		}
		g.pages = nil
		g.zones = nil
		g.width = 0
	} else {
		// Rewrite the group's blocks without the dropped attribute.
		newWidth := g.width - 1
		for pi := range g.pages {
			ids, rows, err := s.readGroupPage(loc.group, pi)
			if err != nil {
				return err
			}
			for i := range rows {
				rows[i] = append(rows[i][:loc.offset], rows[i][loc.offset+1:]...)
			}
			if err := s.writeGroupPage(loc.group, pi, ids, rows, newWidth); err != nil {
				return err
			}
		}
		g.width = newWidth
	}
	// Rebuild the column map without the dropped column, shifting offsets
	// of columns that followed it within the same group.
	newMap := make([]colLocation, 0, len(s.colMap)-1)
	for i, l := range s.colMap {
		if i == col {
			continue
		}
		if l.group == loc.group && l.offset > loc.offset {
			l.offset--
		}
		newMap = append(newMap, l)
	}
	s.colMap = newMap
	return nil
}
