package tablestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/dataspread/dataspread/internal/sheet"
)

// v2 page container: zone-mapped, optionally compressed tuple/column pages.
//
// Layout:
//
//	[0:4)  magic "DSZ2"
//	[4:8)  CRC32-IEEE (little-endian) over the body
//	[8:)   body
//
// The legacy (v1) container is a bare CRC32 over the payload with no magic,
// so the decoders try v2 first — magic AND checksum must both hold — and
// fall back to the legacy unseal otherwise. A legacy page whose leading CRC
// happens to spell the magic still decodes (its v2 checksum fails, ~2^-32
// false-positive squared away by the body CRC), and a corrupted page of
// either vintage fails both checks and surfaces ErrPageChecksum.
//
// Tuple body:
//
//	uvarint count, uvarint width
//	count RowIDs as zigzag varint deltas (first absolute)
//	per column: ColZone, then a value vector
//
// Column body:
//
//	uvarint count, ColZone, value vector
//
// A value vector is a tag byte plus one of three encodings, chosen per page
// at encode time:
//
//	vecPlain  each value in the standard appendValue form.
//	vecDelta  integral numerics (|v| <= 2^53, no NaN/Inf/-0) with Empty
//	          holes: presence bitmap, then zigzag varints — first present
//	          value absolute, the rest deltas. Clustered/sorted columns
//	          (ids, timestamps) shrink to a byte or two per row.
//	vecDict   strings with Empty holes and few distinct values: presence
//	          bitmap, entry table in first-seen order, one uvarint code per
//	          present value. Decoding shares one sheet.Value per entry, so
//	          predicate evaluation on low-NDV text compares against the
//	          interned entry values rather than per-row copies.

var zoneMagic = [4]byte{'D', 'S', 'Z', '2'}

const (
	vecPlain byte = 0
	vecDelta byte = 1
	vecDict  byte = 2
)

// maxDeltaInt bounds integral delta encoding to floats exact in int64.
const maxDeltaInt = 1 << 53

func sealPageV2(body []byte) []byte {
	out := make([]byte, 8, 8+len(body))
	copy(out, zoneMagic[:])
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	return append(out, body...)
}

// unsealPageV2 returns the body when buf is a valid v2 page.
func unsealPageV2(buf []byte) ([]byte, bool) {
	if len(buf) < 8 || [4]byte(buf[0:4]) != zoneMagic {
		return nil, false
	}
	body := buf[8:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, false
	}
	return body, true
}

func appendZigzag(dst []byte, v int64) []byte {
	return appendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func (d *valueDecoder) zigzag() (int64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// --- zone serialisation ---

const (
	zfHasNum = 1 << iota
	zfHasCo
	zfHasStr
	zfHasBool
	zfHasErr
	zfHasEmpty
	zfHasNaN
)

const (
	zfMinTrunc = 1 << iota
	zfMaxTrunc
)

func appendFloat(dst []byte, f float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	return append(dst, b[:]...)
}

func appendZone(dst []byte, z *ColZone) []byte {
	var f1, f2 byte
	if z.HasNum {
		f1 |= zfHasNum
	}
	if z.HasCo {
		f1 |= zfHasCo
	}
	if z.HasStr {
		f1 |= zfHasStr
	}
	if z.HasBool {
		f1 |= zfHasBool
	}
	if z.HasErr {
		f1 |= zfHasErr
	}
	if z.HasEmpty {
		f1 |= zfHasEmpty
	}
	if z.HasNaN {
		f1 |= zfHasNaN
	}
	if z.MinTrunc {
		f2 |= zfMinTrunc
	}
	if z.MaxTrunc {
		f2 |= zfMaxTrunc
	}
	dst = append(dst, f1, f2)
	if z.HasNum {
		dst = appendFloat(dst, z.NumMin)
		dst = appendFloat(dst, z.NumMax)
	}
	if z.HasCo {
		dst = appendFloat(dst, z.CoMin)
		dst = appendFloat(dst, z.CoMax)
	}
	if z.HasStr {
		dst = appendUvarint(dst, uint64(len(z.StrMin)))
		dst = append(dst, z.StrMin...)
		dst = appendUvarint(dst, uint64(len(z.StrMax)))
		dst = append(dst, z.StrMax...)
	}
	return dst
}

func (d *valueDecoder) float() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, fmt.Errorf("tablestore: truncated float at %d", d.pos)
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return f, nil
}

func (d *valueDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.buf) {
		return "", fmt.Errorf("tablestore: truncated string at %d", d.pos)
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *valueDecoder) zone() (ColZone, error) {
	var z ColZone
	if d.pos+2 > len(d.buf) {
		return z, fmt.Errorf("tablestore: truncated zone at %d", d.pos)
	}
	f1, f2 := d.buf[d.pos], d.buf[d.pos+1]
	d.pos += 2
	z.HasNum = f1&zfHasNum != 0
	z.HasCo = f1&zfHasCo != 0
	z.HasStr = f1&zfHasStr != 0
	z.HasBool = f1&zfHasBool != 0
	z.HasErr = f1&zfHasErr != 0
	z.HasEmpty = f1&zfHasEmpty != 0
	z.HasNaN = f1&zfHasNaN != 0
	z.MinTrunc = f2&zfMinTrunc != 0
	z.MaxTrunc = f2&zfMaxTrunc != 0
	var err error
	if z.HasNum {
		if z.NumMin, err = d.float(); err != nil {
			return z, err
		}
		if z.NumMax, err = d.float(); err != nil {
			return z, err
		}
	}
	if z.HasCo {
		if z.CoMin, err = d.float(); err != nil {
			return z, err
		}
		if z.CoMax, err = d.float(); err != nil {
			return z, err
		}
	}
	if z.HasStr {
		if z.StrMin, err = d.str(); err != nil {
			return z, err
		}
		if z.StrMax, err = d.str(); err != nil {
			return z, err
		}
	}
	return z, nil
}

// --- value vectors ---

// deltaInt reports whether v participates in integral delta encoding.
func deltaInt(v sheet.Value) (int64, bool) {
	if v.Kind != sheet.KindNumber {
		return 0, false
	}
	f := v.Num
	if math.IsNaN(f) || f != math.Trunc(f) || f < -maxDeltaInt || f > maxDeltaInt {
		return 0, false
	}
	if f == 0 && math.Signbit(f) {
		return 0, false // -0 would round-trip as +0
	}
	return int64(f), true
}

func appendPresence(dst []byte, vals []sheet.Value) []byte {
	nbytes := (len(vals) + 7) / 8
	start := len(dst)
	for i := 0; i < nbytes; i++ {
		dst = append(dst, 0)
	}
	for i, v := range vals {
		if v.Kind != sheet.KindEmpty {
			dst[start+i/8] |= 1 << (i % 8)
		}
	}
	return dst
}

func (d *valueDecoder) presence(count int) ([]byte, error) {
	nbytes := (count + 7) / 8
	if d.pos+nbytes > len(d.buf) {
		return nil, fmt.Errorf("tablestore: truncated presence bitmap at %d", d.pos)
	}
	bm := d.buf[d.pos : d.pos+nbytes]
	d.pos += nbytes
	return bm, nil
}

// appendVector chooses a per-page encoding and appends the tagged vector.
func appendVector(dst []byte, vals []sheet.Value) []byte {
	if body, ok := tryDeltaVector(vals); ok {
		dst = append(dst, vecDelta)
		return append(dst, body...)
	}
	if body, ok := tryDictVector(vals); ok {
		dst = append(dst, vecDict)
		return append(dst, body...)
	}
	dst = append(dst, vecPlain)
	for _, v := range vals {
		dst = appendValue(dst, v)
	}
	return dst
}

// tryDeltaVector encodes integral numerics (Empty holes allowed) as zigzag
// deltas; eligible only when every non-empty value is an exact integer.
func tryDeltaVector(vals []sheet.Value) ([]byte, bool) {
	present := 0
	for _, v := range vals {
		if v.Kind == sheet.KindEmpty {
			continue
		}
		if _, ok := deltaInt(v); !ok {
			return nil, false
		}
		present++
	}
	if present < 2 {
		return nil, false
	}
	out := appendPresence(nil, vals)
	prev, first := int64(0), true
	for _, v := range vals {
		if v.Kind == sheet.KindEmpty {
			continue
		}
		n, _ := deltaInt(v)
		if first {
			out, first = appendZigzag(out, n), false
		} else {
			out = appendZigzag(out, n-prev)
		}
		prev = n
	}
	return out, true
}

// tryDictVector dictionary-encodes low-NDV string columns (Empty holes
// allowed): an entry table in first-seen order plus one code per value.
func tryDictVector(vals []sheet.Value) ([]byte, bool) {
	present := 0
	for _, v := range vals {
		switch v.Kind {
		case sheet.KindEmpty:
		case sheet.KindString:
			present++
		default:
			return nil, false
		}
	}
	if present < 4 {
		return nil, false
	}
	codes := make([]uint64, 0, present)
	index := make(map[string]uint64, 8)
	var entries []string
	for _, v := range vals {
		if v.Kind == sheet.KindEmpty {
			continue
		}
		code, ok := index[v.Str]
		if !ok {
			code = uint64(len(entries))
			index[v.Str] = code
			entries = append(entries, v.Str)
			if len(entries)*2 > present {
				return nil, false // high NDV: dictionary would not pay
			}
		}
		codes = append(codes, code)
	}
	out := appendPresence(nil, vals)
	out = appendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = appendUvarint(out, uint64(len(e)))
		out = append(out, e...)
	}
	for _, c := range codes {
		out = appendUvarint(out, c)
	}
	return out, true
}

// vector decodes one tagged value vector of count values.
func (d *valueDecoder) vector(count int) ([]sheet.Value, error) {
	if d.pos >= len(d.buf) {
		return nil, fmt.Errorf("tablestore: truncated vector tag at %d", d.pos)
	}
	tag := d.buf[d.pos]
	d.pos++
	out := make([]sheet.Value, count)
	switch tag {
	case vecPlain:
		for i := range out {
			var err error
			if out[i], err = d.value(); err != nil {
				return nil, err
			}
		}
	case vecDelta:
		bm, err := d.presence(count)
		if err != nil {
			return nil, err
		}
		prev, first := int64(0), true
		for i := range out {
			if bm[i/8]&(1<<(i%8)) == 0 {
				continue
			}
			delta, err := d.zigzag()
			if err != nil {
				return nil, err
			}
			if first {
				prev, first = delta, false
			} else {
				prev += delta
			}
			out[i] = sheet.Number(float64(prev))
		}
	case vecDict:
		bm, err := d.presence(count)
		if err != nil {
			return nil, err
		}
		ndv, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if ndv > uint64(len(d.buf)-d.pos) {
			return nil, fmt.Errorf("tablestore: implausible dictionary size %d", ndv)
		}
		entries := make([]sheet.Value, ndv)
		for i := range entries {
			s, err := d.str()
			if err != nil {
				return nil, err
			}
			entries[i] = sheet.String_(s)
		}
		for i := range out {
			if bm[i/8]&(1<<(i%8)) == 0 {
				continue
			}
			code, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if code >= ndv {
				return nil, fmt.Errorf("tablestore: dictionary code %d out of range", code)
			}
			out[i] = entries[code]
		}
	default:
		return nil, fmt.Errorf("tablestore: unknown vector tag %d", tag)
	}
	return out, nil
}

// --- page encode/decode ---

// encodeTuplesV2 serialises a tuple page in the v2 container and returns the
// page's zone summary for the store's catalog.
func encodeTuplesV2(ids []RowID, rows [][]sheet.Value, width int) ([]byte, *pageZones) {
	body := appendUvarint(nil, uint64(len(ids)))
	body = appendUvarint(body, uint64(width))
	prev := int64(0)
	for _, id := range ids {
		body = appendZigzag(body, int64(id)-prev)
		prev = int64(id)
	}
	pz := zonesOfTuples(rows[:len(ids)], width)
	col := make([]sheet.Value, len(ids))
	for c := 0; c < width; c++ {
		for i := range col {
			if c < len(rows[i]) {
				col[i] = rows[i][c]
			} else {
				col[i] = sheet.Empty()
			}
		}
		body = appendZone(body, &pz.cols[c])
		body = appendVector(body, col)
	}
	return sealPageV2(body), pz
}

// decodeTuplesV2 reverses encodeTuplesV2 given a verified v2 body.
func decodeTuplesV2(body []byte) ([]RowID, [][]sheet.Value, error) {
	d := &valueDecoder{buf: body}
	n, err := d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	width, err := d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(body)) || width > uint64(len(body)) || n*width > uint64(len(body))*64 {
		return nil, nil, fmt.Errorf("tablestore: implausible tuple page header (%d x %d)", n, width)
	}
	ids := make([]RowID, n)
	prev := int64(0)
	for i := range ids {
		delta, err := d.zigzag()
		if err != nil {
			return nil, nil, err
		}
		prev += delta
		ids[i] = RowID(prev)
	}
	rows := make([][]sheet.Value, n)
	flat := make([]sheet.Value, int(n)*int(width))
	for i := range rows {
		rows[i] = flat[i*int(width) : (i+1)*int(width) : (i+1)*int(width)]
	}
	for c := 0; c < int(width); c++ {
		if _, err := d.zone(); err != nil {
			return nil, nil, err
		}
		col, err := d.vector(int(n))
		if err != nil {
			return nil, nil, err
		}
		for i := range rows {
			rows[i][c] = col[i]
		}
	}
	return ids, rows, nil
}

// encodeColumnV2 serialises a column page in the v2 container and returns the
// page's (single-column) zone summary.
func encodeColumnV2(vals []sheet.Value) ([]byte, *pageZones) {
	z := zoneOf(vals)
	body := appendUvarint(nil, uint64(len(vals)))
	body = appendZone(body, &z)
	body = appendVector(body, vals)
	return sealPageV2(body), &pageZones{cols: []ColZone{z}}
}

// decodeColumnV2 reverses encodeColumnV2 given a verified v2 body.
func decodeColumnV2(body []byte) ([]sheet.Value, error) {
	d := &valueDecoder{buf: body}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(body))*8 {
		return nil, fmt.Errorf("tablestore: implausible column page count %d", n)
	}
	if _, err := d.zone(); err != nil {
		return nil, err
	}
	return d.vector(int(n))
}
