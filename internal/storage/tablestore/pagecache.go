package tablestore

import (
	"sync"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// decodedCacheCap bounds the number of decoded pages one store keeps. At the
// default packing (~64 tuples or ~512 values per block) this covers a few
// hundred thousand rows per table before eviction sets in.
const decodedCacheCap = 4096

// decodedCache memoizes decoded page images so repeated scans of the same
// table do not re-decode every block from its byte form. Entries are shared
// read-only snapshots: only the read paths (Scan/ScanCols/Get) consult the
// cache, while mutators keep decoding private copies they are free to edit
// in place, and every page write or free invalidates the entry. A reader
// holding a decoded snapshot across a concurrent write therefore observes
// the same pre-write image it would have decoded from the buffer pool.
type decodedCache struct {
	mu     sync.Mutex
	tuples map[pager.PageID]tupleEntry
	cols   map[pager.PageID][]sheet.Value
}

type tupleEntry struct {
	ids  []RowID
	rows [][]sheet.Value
}

// getTuples returns the decoded tuple page, decoding and caching on a miss.
func (c *decodedCache) getTuples(pool *pager.BufferPool, id pager.PageID) ([]RowID, [][]sheet.Value, error) {
	c.mu.Lock()
	if e, ok := c.tuples[id]; ok {
		c.mu.Unlock()
		return e.ids, e.rows, nil
	}
	c.mu.Unlock()
	data, err := pool.Get(id)
	if err != nil {
		return nil, nil, err
	}
	ids, rows, err := decodeTuples(data)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	if c.tuples == nil {
		c.tuples = make(map[pager.PageID]tupleEntry)
	}
	c.evictIfFull(len(c.tuples))
	c.tuples[id] = tupleEntry{ids: ids, rows: rows}
	c.mu.Unlock()
	return ids, rows, nil
}

// getColumn returns the decoded column page, decoding and caching on a miss.
func (c *decodedCache) getColumn(pool *pager.BufferPool, id pager.PageID) ([]sheet.Value, error) {
	c.mu.Lock()
	if vals, ok := c.cols[id]; ok {
		c.mu.Unlock()
		return vals, nil
	}
	c.mu.Unlock()
	data, err := pool.Get(id)
	if err != nil {
		return nil, err
	}
	vals, err := decodeColumn(data)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.cols == nil {
		c.cols = make(map[pager.PageID][]sheet.Value)
	}
	c.evictIfFull(len(c.cols))
	c.cols[id] = vals
	c.mu.Unlock()
	return vals, nil
}

// invalidate drops the cached image of a page. Stores call it on every page
// write and free so readers never see post-write stale decodes.
func (c *decodedCache) invalidate(id pager.PageID) {
	c.mu.Lock()
	delete(c.tuples, id)
	delete(c.cols, id)
	c.mu.Unlock()
}

// evictIfFull drops arbitrary entries while the cache is at capacity
// (caller holds c.mu). Scans repopulate in page order, so losing a random
// victim only costs one re-decode.
func (c *decodedCache) evictIfFull(n int) {
	if n < decodedCacheCap {
		return
	}
	for id := range c.tuples {
		delete(c.tuples, id)
		n--
		if n < decodedCacheCap {
			return
		}
	}
	for id := range c.cols {
		delete(c.cols, id)
		n--
		if n < decodedCacheCap {
			return
		}
	}
}
