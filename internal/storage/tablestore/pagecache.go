package tablestore

import (
	"sync"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// decodedCacheCap bounds the number of decoded pages one store keeps. At the
// default packing (~64 tuples or ~512 values per block) this covers a few
// hundred thousand rows per table before eviction sets in.
const decodedCacheCap = 4096

// decodedCacheShards spreads entries over independently locked shards so
// concurrent snapshot readers on different morsels do not serialize on one
// cache mutex. Sixteen shards keeps the per-shard maps small and covers the
// worker counts the executor uses (GOMAXPROCS-bounded).
const decodedCacheShards = 16

// decodedCache memoizes decoded page images so repeated scans of the same
// table do not re-decode every block from its byte form. Entries are shared
// read-only snapshots: only the read paths (Scan/ScanCols/Get) consult the
// cache, while mutators keep decoding private copies they are free to edit
// in place.
//
// Entries are keyed by (page id, BufferPool version): the pool bumps the
// version on *any* content-changing event — local writes through this store,
// a backend-level reload of the id, or the backend recycling the id into a
// fresh allocation — so the cache can never serve a decode of bytes that are
// not the version the caller asked for. Version keying also lets epoch
// snapshot readers (ScanColsRange over a TableSnap) and current-content
// scans share one cache: a superseded page version and its replacement
// occupy distinct entries until eviction.
type decodedCache struct {
	shards [decodedCacheShards]cacheShard
}

type cacheShard struct {
	mu     sync.Mutex
	tuples map[cacheKey]tupleEntry
	cols   map[cacheKey]colEntry
}

type cacheKey struct {
	id  pager.PageID
	ver uint64
}

type tupleEntry struct {
	ids  []RowID
	rows [][]sheet.Value
}

type colEntry struct {
	vals []sheet.Value
}

func (c *decodedCache) shard(id pager.PageID) *cacheShard {
	return &c.shards[uint64(id)%decodedCacheShards]
}

// getTuples returns the decoded tuple page at the pool's current version,
// decoding and caching on a miss. Callers must exclude writers (the engine
// lock) so the version/content pair stays consistent; a write racing the
// two pool calls only causes a harmless re-decode, never a stale hit.
func (c *decodedCache) getTuples(pool *pager.BufferPool, id pager.PageID) ([]RowID, [][]sheet.Value, error) {
	ver := pool.Version(id)
	sh := c.shard(id)
	sh.mu.Lock()
	if e, ok := sh.tuples[cacheKey{id, ver}]; ok {
		sh.mu.Unlock()
		return e.ids, e.rows, nil
	}
	sh.mu.Unlock()
	data, err := pool.Get(id)
	if err != nil {
		return nil, nil, err
	}
	return sh.addTuples(cacheKey{id, ver}, data)
}

// getTuplesAt is getTuples as of a snapshot epoch: the pool hands back the
// (content, version) pair in one atomic step, so this path is safe with no
// engine lock held while writers churn.
func (c *decodedCache) getTuplesAt(pool *pager.BufferPool, epoch uint64, id pager.PageID) ([]RowID, [][]sheet.Value, error) {
	data, ver, err := pool.GetAt(epoch, id)
	if err != nil {
		return nil, nil, err
	}
	sh := c.shard(id)
	sh.mu.Lock()
	if e, ok := sh.tuples[cacheKey{id, ver}]; ok {
		sh.mu.Unlock()
		return e.ids, e.rows, nil
	}
	sh.mu.Unlock()
	return sh.addTuples(cacheKey{id, ver}, data)
}

// addTuples decodes outside the shard lock (concurrent misses may decode
// twice; last write wins, both decodes are identical) and installs the
// entry.
func (sh *cacheShard) addTuples(key cacheKey, data []byte) ([]RowID, [][]sheet.Value, error) {
	ids, rows, err := decodeTuples(data)
	if err != nil {
		return nil, nil, err
	}
	sh.mu.Lock()
	if sh.tuples == nil {
		sh.tuples = make(map[cacheKey]tupleEntry)
	}
	sh.evictIfFull(len(sh.tuples))
	sh.tuples[key] = tupleEntry{ids: ids, rows: rows}
	sh.mu.Unlock()
	return ids, rows, nil
}

// getColumn returns the decoded column page at the pool's current version,
// decoding and caching on a miss.
func (c *decodedCache) getColumn(pool *pager.BufferPool, id pager.PageID) ([]sheet.Value, error) {
	ver := pool.Version(id)
	sh := c.shard(id)
	sh.mu.Lock()
	if e, ok := sh.cols[cacheKey{id, ver}]; ok {
		sh.mu.Unlock()
		return e.vals, nil
	}
	sh.mu.Unlock()
	data, err := pool.Get(id)
	if err != nil {
		return nil, err
	}
	return sh.addColumn(cacheKey{id, ver}, data)
}

// getColumnAt is getColumn as of a snapshot epoch.
func (c *decodedCache) getColumnAt(pool *pager.BufferPool, epoch uint64, id pager.PageID) ([]sheet.Value, error) {
	data, ver, err := pool.GetAt(epoch, id)
	if err != nil {
		return nil, err
	}
	sh := c.shard(id)
	sh.mu.Lock()
	if e, ok := sh.cols[cacheKey{id, ver}]; ok {
		sh.mu.Unlock()
		return e.vals, nil
	}
	sh.mu.Unlock()
	return sh.addColumn(cacheKey{id, ver}, data)
}

func (sh *cacheShard) addColumn(key cacheKey, data []byte) ([]sheet.Value, error) {
	vals, err := decodeColumn(data)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if sh.cols == nil {
		sh.cols = make(map[cacheKey]colEntry)
	}
	sh.evictIfFull(len(sh.cols))
	sh.cols[key] = colEntry{vals: vals}
	sh.mu.Unlock()
	return vals, nil
}

// evictIfFull drops arbitrary entries while the shard is at its share of
// the capacity (caller holds sh.mu). Scans repopulate in page order, so
// losing a random victim only costs one re-decode; superseded page versions
// age out the same way once their snapshot readers drain.
func (sh *cacheShard) evictIfFull(n int) {
	const shardCap = decodedCacheCap / decodedCacheShards
	if n < shardCap {
		return
	}
	for key := range sh.tuples {
		delete(sh.tuples, key)
		n--
		if n < shardCap {
			return
		}
	}
	for key := range sh.cols {
		delete(sh.cols, key)
		n--
		if n < shardCap {
			return
		}
	}
}
