package tablestore

import (
	"sync"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// decodedCacheCap bounds the number of decoded pages one store keeps. At the
// default packing (~64 tuples or ~512 values per block) this covers a few
// hundred thousand rows per table before eviction sets in.
const decodedCacheCap = 4096

// decodedCache memoizes decoded page images so repeated scans of the same
// table do not re-decode every block from its byte form. Entries are shared
// read-only snapshots: only the read paths (Scan/ScanCols/Get) consult the
// cache, while mutators keep decoding private copies they are free to edit
// in place.
//
// Every entry is stamped with the BufferPool's page version at decode time
// and validated against the current version on each hit. The pool bumps the
// version on *any* content-changing event — local writes through this store,
// a backend-level reload of the id, or the backend recycling the id into a
// fresh allocation — so a cache shared with the pool can never serve a
// decode of bytes that are no longer the page's content. (The old design
// invalidated only on this store's own writes, which let a recycled page id
// serve the previous page's decode.)
type decodedCache struct {
	mu     sync.Mutex
	tuples map[pager.PageID]tupleEntry
	cols   map[pager.PageID]colEntry
}

type tupleEntry struct {
	ver  uint64
	ids  []RowID
	rows [][]sheet.Value
}

type colEntry struct {
	ver  uint64
	vals []sheet.Value
}

// getTuples returns the decoded tuple page, decoding and caching on a miss
// or when the pool's page version moved past the cached entry.
func (c *decodedCache) getTuples(pool *pager.BufferPool, id pager.PageID) ([]RowID, [][]sheet.Value, error) {
	// Fetch the version before the page bytes: a write racing in between
	// leaves us caching new content under an old version, which only causes
	// a harmless re-decode — never a stale hit.
	ver := pool.Version(id)
	c.mu.Lock()
	if e, ok := c.tuples[id]; ok && e.ver == ver {
		c.mu.Unlock()
		return e.ids, e.rows, nil
	}
	c.mu.Unlock()
	data, err := pool.Get(id)
	if err != nil {
		return nil, nil, err
	}
	ids, rows, err := decodeTuples(data)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	if c.tuples == nil {
		c.tuples = make(map[pager.PageID]tupleEntry)
	}
	c.evictIfFull(len(c.tuples))
	c.tuples[id] = tupleEntry{ver: ver, ids: ids, rows: rows}
	c.mu.Unlock()
	return ids, rows, nil
}

// getColumn returns the decoded column page, decoding and caching on a miss
// or version change.
func (c *decodedCache) getColumn(pool *pager.BufferPool, id pager.PageID) ([]sheet.Value, error) {
	ver := pool.Version(id)
	c.mu.Lock()
	if e, ok := c.cols[id]; ok && e.ver == ver {
		c.mu.Unlock()
		return e.vals, nil
	}
	c.mu.Unlock()
	data, err := pool.Get(id)
	if err != nil {
		return nil, err
	}
	vals, err := decodeColumn(data)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.cols == nil {
		c.cols = make(map[pager.PageID]colEntry)
	}
	c.evictIfFull(len(c.cols))
	c.cols[id] = colEntry{ver: ver, vals: vals}
	c.mu.Unlock()
	return vals, nil
}

// evictIfFull drops arbitrary entries while the cache is at capacity
// (caller holds c.mu). Scans repopulate in page order, so losing a random
// victim only costs one re-decode.
func (c *decodedCache) evictIfFull(n int) {
	if n < decodedCacheCap {
		return
	}
	for id := range c.tuples {
		delete(c.tuples, id)
		n--
		if n < decodedCacheCap {
			return
		}
	}
	for id := range c.cols {
		delete(c.cols, id)
		n--
		if n < decodedCacheCap {
			return
		}
	}
}
