package tablestore

import (
	"fmt"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

func newStoreOf(layout string, pool *pager.BufferPool, columns int) Store {
	switch layout {
	case "row":
		return NewRowStore(pool, columns)
	case "column":
		return NewColStore(pool, columns)
	default:
		return NewHybridStore(pool, columns, WithGroupSize(2))
	}
}

// TestMetaAttachRoundTrip: for every layout, MarshalMeta + OpenStore over a
// fresh pool on the same backend must see the exact same rows — including
// tombstones, schema evolution and post-attach inserts continuing the RowID
// sequence.
func TestMetaAttachRoundTrip(t *testing.T) {
	for _, layout := range []string{"row", "column", "hybrid"} {
		t.Run(layout, func(t *testing.T) {
			backend := pager.NewStore()
			pool := pager.NewBufferPool(backend, 64)
			s := newStoreOf(layout, pool, 3)
			var kept []RowID
			for i := 0; i < 200; i++ {
				id, err := s.Insert([]sheet.Value{
					sheet.Number(float64(i)),
					sheet.String_(fmt.Sprintf("r%d", i)),
					sheet.Bool_(i%2 == 0),
				})
				if err != nil {
					t.Fatal(err)
				}
				kept = append(kept, id)
			}
			// Tombstones and schema evolution must survive the meta.
			if err := s.Delete(kept[10]); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(kept[190]); err != nil {
				t.Fatal(err)
			}
			if err := s.AddColumn(sheet.Number(7)); err != nil {
				t.Fatal(err)
			}
			if err := s.DropColumn(1); err != nil {
				t.Fatal(err)
			}
			want := map[RowID][]sheet.Value{}
			if err := s.Scan(func(id RowID, row []sheet.Value) bool {
				want[id] = row
				return true
			}); err != nil {
				t.Fatal(err)
			}

			// Everything must be on the backend before a fresh pool attaches.
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			meta := s.MarshalMeta()

			pool2 := pager.NewBufferPool(backend, 64)
			re, err := OpenStore(pool2, s.Layout(), meta)
			if err != nil {
				t.Fatal(err)
			}
			if re.RowCount() != s.RowCount() || re.ColumnCount() != s.ColumnCount() {
				t.Fatalf("attached store: %d rows %d cols, want %d/%d",
					re.RowCount(), re.ColumnCount(), s.RowCount(), s.ColumnCount())
			}
			got := map[RowID][]sheet.Value{}
			if err := re.Scan(func(id RowID, row []sheet.Value) bool {
				got[id] = row
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("attached scan saw %d rows, want %d", len(got), len(want))
			}
			for id, w := range want {
				g, ok := got[id]
				if !ok {
					t.Fatalf("row %d missing after attach", id)
				}
				for c := range w {
					if w[c].Kind != g[c].Kind || w[c].String() != g[c].String() {
						t.Fatalf("row %d col %d: %q vs %q", id, c, w[c].String(), g[c].String())
					}
				}
			}
			// Inserts continue the RowID sequence, never reusing an id.
			id, err := re.Insert(make([]sheet.Value, re.ColumnCount()))
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := want[id]; dup {
				t.Fatalf("post-attach insert reused RowID %d", id)
			}
		})
	}
}

// TestMetaRejectsCorrupt: a bit-flipped or truncated meta blob must fail the
// attach with an error, not build a store over garbage.
func TestMetaRejectsCorrupt(t *testing.T) {
	backend := pager.NewStore()
	pool := pager.NewBufferPool(backend, 16)
	s := NewHybridStore(pool, 4)
	for i := 0; i < 50; i++ {
		if _, err := s.Insert(make([]sheet.Value, 4)); err != nil {
			t.Fatal(err)
		}
	}
	meta := s.MarshalMeta()
	if _, err := OpenStore(pool, "hybrid", meta[:len(meta)/2]); err == nil {
		t.Error("truncated meta attached without error")
	}
	if _, err := OpenStore(pool, "sideways", meta); err == nil {
		t.Error("unknown layout attached without error")
	}
}

// TestDecodedCacheInvalidatesOnPageReuse is the regression test for the
// stale-decode bug: a page freed by one column and recycled by a later
// AddColumn (which writes through pool.Put, not the store's writePage) used
// to keep serving the old column's decode. Version-validated entries must
// re-decode.
func TestDecodedCacheInvalidatesOnPageReuse(t *testing.T) {
	backend := pager.NewStore()
	pool := pager.NewBufferPool(backend, 64)
	s := NewColStore(pool, 2)
	for i := 0; i < 600; i++ { // > valuesPerPage, so real pages exist
		if _, err := s.Insert([]sheet.Value{sheet.Number(float64(i)), sheet.String_("old")}); err != nil {
			t.Fatal(err)
		}
	}
	// Populate the decoded cache for column 1.
	if err := s.ScanCols([]int{1}, func(RowID, []sheet.Value) bool { return true }); err != nil {
		t.Fatal(err)
	}
	// Free column 1's pages, then allocate fresh pages — the in-memory
	// backend recycles nothing, but FileStore does; simulate by dropping
	// and re-adding so the new column's backfill goes through pool.Put.
	if err := s.DropColumn(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddColumn(sheet.String_("new")); err != nil {
		t.Fatal(err)
	}
	seen := ""
	if err := s.ScanCols([]int{1}, func(id RowID, row []sheet.Value) bool {
		seen = row[0].String()
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if seen != "new" {
		t.Fatalf("scan after column churn saw %q, want the backfilled default", seen)
	}

	// The FileStore variant actually recycles page ids, which is the real
	// reuse hazard: run the same churn over a file backend.
	fs, err := pager.OpenFileStore(t.TempDir() + "/heap.dsp")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fpool := pager.NewBufferPool(fs, 64)
	s2 := NewColStore(fpool, 2)
	for i := 0; i < 600; i++ {
		if _, err := s2.Insert([]sheet.Value{sheet.Number(float64(i)), sheet.String_("old")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.ScanCols([]int{1}, func(RowID, []sheet.Value) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := s2.DropColumn(1); err != nil {
		t.Fatal(err)
	}
	if err := s2.AddColumn(sheet.String_("new")); err != nil {
		t.Fatal(err)
	}
	if err := s2.ScanCols([]int{1}, func(id RowID, row []sheet.Value) bool {
		if row[0].String() != "new" {
			t.Fatalf("row %d served stale decode %q after page reuse", id, row[0].String())
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPageChecksumDetectsCorruption: a bit flip inside a sealed tuple page
// surfaces as ErrPageChecksum, never as silently wrong values.
func TestPageChecksumDetectsCorruption(t *testing.T) {
	ids := []RowID{1, 2}
	rows := [][]sheet.Value{{sheet.Number(1)}, {sheet.Number(2)}}
	page := encodeTuples(ids, rows, 1)
	for pos := 0; pos < len(page); pos++ {
		corrupt := append([]byte(nil), page...)
		corrupt[pos] ^= 0x10
		gotIDs, gotRows, err := decodeTuples(corrupt)
		if err == nil {
			// Extremely unlikely CRC collision would be a test bug; any
			// successful decode must at least equal the original.
			if len(gotIDs) != 2 || gotRows[0][0].Num != 1 {
				t.Fatalf("flip@%d decoded silently wrong data", pos)
			}
		}
	}
	col := encodeColumn([]sheet.Value{sheet.String_("x")})
	col[len(col)-1] ^= 0x01
	if _, err := decodeColumn(col); err == nil {
		t.Fatal("corrupt column page decoded without error")
	}
}
