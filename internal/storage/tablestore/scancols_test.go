package tablestore

import (
	"errors"
	"fmt"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

func newScanStores() map[string]Store {
	mk := func() *pager.BufferPool { return pager.NewBufferPool(pager.NewStore(), 64) }
	return map[string]Store{
		"row":    NewRowStore(mk(), 4),
		"column": NewColStore(mk(), 4),
		"hybrid": NewHybridStore(mk(), 4, WithGroupSize(2)),
	}
}

func fillStore(t *testing.T, s Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		row := []sheet.Value{
			sheet.Number(float64(i)),
			sheet.String_(fmt.Sprintf("s%d", i)),
			sheet.Number(float64(i * 10)),
			sheet.Bool_(i%2 == 0),
		}
		if _, err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanColsSubsets(t *testing.T) {
	const n = 1500 // spans several pages in every layout
	for name, s := range newScanStores() {
		t.Run(name, func(t *testing.T) {
			fillStore(t, s, n)
			// Delete a few rows so tombstones are exercised.
			for _, id := range []RowID{1, 700, RowID(n)} {
				if err := s.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			for _, cols := range [][]int{nil, {0}, {2, 0}, {3, 1, 2}, {0, 1, 2, 3}} {
				seen := 0
				err := s.ScanCols(cols, func(id RowID, row []sheet.Value) bool {
					seen++
					i := int(id - 1)
					want := []sheet.Value{
						sheet.Number(float64(i)),
						sheet.String_(fmt.Sprintf("s%d", i)),
						sheet.Number(float64(i * 10)),
						sheet.Bool_(i%2 == 0),
					}
					cs := cols
					if cs == nil {
						cs = []int{0, 1, 2, 3}
					}
					if len(row) != len(cs) {
						t.Fatalf("cols %v: row width %d", cols, len(row))
					}
					for j, c := range cs {
						if !row[j].Equal(want[c]) {
							t.Fatalf("cols %v row %d: col %d = %v, want %v", cols, id, c, row[j], want[c])
						}
					}
					return true
				})
				if err != nil {
					t.Fatalf("cols %v: %v", cols, err)
				}
				if seen != n-3 {
					t.Fatalf("cols %v: saw %d rows, want %d", cols, seen, n-3)
				}
			}
			// Early stop.
			count := 0
			_ = s.ScanCols([]int{0}, func(RowID, []sheet.Value) bool {
				count++
				return count < 10
			})
			if count != 10 {
				t.Fatalf("early stop: %d", count)
			}
			// Out-of-range column.
			if err := s.ScanCols([]int{4}, func(RowID, []sheet.Value) bool { return true }); !errors.Is(err, ErrColumnRange) {
				t.Fatalf("out-of-range col: %v", err)
			}
		})
	}
}

// TestScanColsStableContract verifies that rows from a stable scan remain
// valid after the scan, and that layouts only claim stability when they
// deliver it.
func TestScanColsStableContract(t *testing.T) {
	for name, s := range newScanStores() {
		t.Run(name, func(t *testing.T) {
			fillStore(t, s, 600)
			for _, cols := range [][]int{nil, {0}, {0, 1}, {2, 3}} {
				if !s.ScanColsStable(cols) {
					continue
				}
				var rows [][]sheet.Value
				var ids []RowID
				if err := s.ScanCols(cols, func(id RowID, row []sheet.Value) bool {
					rows = append(rows, row)
					ids = append(ids, id)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				cs := cols
				if cs == nil {
					cs = []int{0, 1, 2, 3}
				}
				for k, id := range ids {
					i := int(id - 1)
					if !rows[k][0].Equal(sheet.Number(float64(i))) && cs[0] == 0 {
						t.Fatalf("stable cols %v: retained row %d corrupted: %v", cols, id, rows[k])
					}
				}
			}
		})
	}
	// Hybrid with aligned single group must be stable; spanning groups not.
	pool := pager.NewBufferPool(pager.NewStore(), 64)
	h := NewHybridStore(pool, 4, WithGroupSize(2))
	if !h.ScanColsStable([]int{0, 1}) {
		t.Fatal("aligned first group should be stable")
	}
	if h.ScanColsStable([]int{1, 2}) {
		t.Fatal("group-spanning scan cannot be stable")
	}
	if h.ScanColsStable([]int{1, 0}) {
		t.Fatal("reordered scan cannot be stable")
	}
}

// TestScanSeesWrites verifies the decoded-page cache is invalidated by every
// mutation path: scans after updates, deletes and schema changes observe the
// new state.
func TestScanSeesWrites(t *testing.T) {
	for name, s := range newScanStores() {
		t.Run(name, func(t *testing.T) {
			fillStore(t, s, 300)
			// Warm the decoded cache.
			_ = s.ScanCols(nil, func(RowID, []sheet.Value) bool { return true })

			if err := s.Update(5, []sheet.Value{sheet.Number(-5), sheet.String_("upd"), sheet.Number(0), sheet.Bool_(false)}); err != nil {
				t.Fatal(err)
			}
			if err := s.UpdateColumn(6, 2, sheet.Number(-66)); err != nil {
				t.Fatal(err)
			}
			got := map[RowID][]sheet.Value{}
			_ = s.ScanCols(nil, func(id RowID, row []sheet.Value) bool {
				if id == 5 || id == 6 {
					got[id] = append([]sheet.Value(nil), row...)
				}
				return true
			})
			if !got[5][1].Equal(sheet.String_("upd")) {
				t.Fatalf("update invisible to scan: %v", got[5])
			}
			if !got[6][2].Equal(sheet.Number(-66)) {
				t.Fatalf("column update invisible to scan: %v", got[6])
			}

			if err := s.AddColumn(sheet.Number(7)); err != nil {
				t.Fatal(err)
			}
			var width int
			_ = s.ScanCols(nil, func(_ RowID, row []sheet.Value) bool {
				width = len(row)
				if !row[4].Equal(sheet.Number(7)) {
					t.Fatalf("backfill invisible: %v", row)
				}
				return false
			})
			if width != 5 {
				t.Fatalf("width after AddColumn = %d", width)
			}

			if err := s.DropColumn(1); err != nil {
				t.Fatal(err)
			}
			_ = s.ScanCols(nil, func(id RowID, row []sheet.Value) bool {
				if len(row) != 4 {
					t.Fatalf("width after DropColumn = %d", len(row))
				}
				if id == 7 && !row[1].Equal(sheet.Number(60)) {
					t.Fatalf("post-drop row mismatch: %v", row)
				}
				return true
			})
			_ = name
		})
	}
}
