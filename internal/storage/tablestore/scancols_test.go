package tablestore

import (
	"errors"
	"fmt"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

func newScanStores() map[string]Store {
	mk := func() *pager.BufferPool { return pager.NewBufferPool(pager.NewStore(), 64) }
	return map[string]Store{
		"row":    NewRowStore(mk(), 4),
		"column": NewColStore(mk(), 4),
		"hybrid": NewHybridStore(mk(), 4, WithGroupSize(2)),
	}
}

func fillStore(t *testing.T, s Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		row := []sheet.Value{
			sheet.Number(float64(i)),
			sheet.String_(fmt.Sprintf("s%d", i)),
			sheet.Number(float64(i * 10)),
			sheet.Bool_(i%2 == 0),
		}
		if _, err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanColsSubsets(t *testing.T) {
	const n = 1500 // spans several pages in every layout
	for name, s := range newScanStores() {
		t.Run(name, func(t *testing.T) {
			fillStore(t, s, n)
			// Delete a few rows so tombstones are exercised.
			for _, id := range []RowID{1, 700, RowID(n)} {
				if err := s.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			for _, cols := range [][]int{nil, {0}, {2, 0}, {3, 1, 2}, {0, 1, 2, 3}} {
				seen := 0
				err := s.ScanCols(cols, func(id RowID, row []sheet.Value) bool {
					seen++
					i := int(id - 1)
					want := []sheet.Value{
						sheet.Number(float64(i)),
						sheet.String_(fmt.Sprintf("s%d", i)),
						sheet.Number(float64(i * 10)),
						sheet.Bool_(i%2 == 0),
					}
					cs := cols
					if cs == nil {
						cs = []int{0, 1, 2, 3}
					}
					if len(row) != len(cs) {
						t.Fatalf("cols %v: row width %d", cols, len(row))
					}
					for j, c := range cs {
						if !row[j].Equal(want[c]) {
							t.Fatalf("cols %v row %d: col %d = %v, want %v", cols, id, c, row[j], want[c])
						}
					}
					return true
				})
				if err != nil {
					t.Fatalf("cols %v: %v", cols, err)
				}
				if seen != n-3 {
					t.Fatalf("cols %v: saw %d rows, want %d", cols, seen, n-3)
				}
			}
			// Early stop.
			count := 0
			_ = s.ScanCols([]int{0}, func(RowID, []sheet.Value) bool {
				count++
				return count < 10
			})
			if count != 10 {
				t.Fatalf("early stop: %d", count)
			}
			// Out-of-range column.
			if err := s.ScanCols([]int{4}, func(RowID, []sheet.Value) bool { return true }); !errors.Is(err, ErrColumnRange) {
				t.Fatalf("out-of-range col: %v", err)
			}
		})
	}
}

// TestScanColsStableContract verifies that rows from a stable scan remain
// valid after the scan, and that layouts only claim stability when they
// deliver it.
func TestScanColsStableContract(t *testing.T) {
	for name, s := range newScanStores() {
		t.Run(name, func(t *testing.T) {
			fillStore(t, s, 600)
			for _, cols := range [][]int{nil, {0}, {0, 1}, {2, 3}} {
				if !s.ScanColsStable(cols) {
					continue
				}
				var rows [][]sheet.Value
				var ids []RowID
				if err := s.ScanCols(cols, func(id RowID, row []sheet.Value) bool {
					rows = append(rows, row)
					ids = append(ids, id)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				cs := cols
				if cs == nil {
					cs = []int{0, 1, 2, 3}
				}
				for k, id := range ids {
					i := int(id - 1)
					if !rows[k][0].Equal(sheet.Number(float64(i))) && cs[0] == 0 {
						t.Fatalf("stable cols %v: retained row %d corrupted: %v", cols, id, rows[k])
					}
				}
			}
		})
	}
	// Hybrid with aligned single group must be stable; spanning groups not.
	pool := pager.NewBufferPool(pager.NewStore(), 64)
	h := NewHybridStore(pool, 4, WithGroupSize(2))
	if !h.ScanColsStable([]int{0, 1}) {
		t.Fatal("aligned first group should be stable")
	}
	if h.ScanColsStable([]int{1, 2}) {
		t.Fatal("group-spanning scan cannot be stable")
	}
	if h.ScanColsStable([]int{1, 0}) {
		t.Fatal("reordered scan cannot be stable")
	}
}

// TestScanSeesWrites verifies the decoded-page cache is invalidated by every
// mutation path: scans after updates, deletes and schema changes observe the
// new state.
func TestScanSeesWrites(t *testing.T) {
	for name, s := range newScanStores() {
		t.Run(name, func(t *testing.T) {
			fillStore(t, s, 300)
			// Warm the decoded cache.
			_ = s.ScanCols(nil, func(RowID, []sheet.Value) bool { return true })

			if err := s.Update(5, []sheet.Value{sheet.Number(-5), sheet.String_("upd"), sheet.Number(0), sheet.Bool_(false)}); err != nil {
				t.Fatal(err)
			}
			if err := s.UpdateColumn(6, 2, sheet.Number(-66)); err != nil {
				t.Fatal(err)
			}
			got := map[RowID][]sheet.Value{}
			_ = s.ScanCols(nil, func(id RowID, row []sheet.Value) bool {
				if id == 5 || id == 6 {
					got[id] = append([]sheet.Value(nil), row...)
				}
				return true
			})
			if !got[5][1].Equal(sheet.String_("upd")) {
				t.Fatalf("update invisible to scan: %v", got[5])
			}
			if !got[6][2].Equal(sheet.Number(-66)) {
				t.Fatalf("column update invisible to scan: %v", got[6])
			}

			if err := s.AddColumn(sheet.Number(7)); err != nil {
				t.Fatal(err)
			}
			var width int
			_ = s.ScanCols(nil, func(_ RowID, row []sheet.Value) bool {
				width = len(row)
				if !row[4].Equal(sheet.Number(7)) {
					t.Fatalf("backfill invisible: %v", row)
				}
				return false
			})
			if width != 5 {
				t.Fatalf("width after AddColumn = %d", width)
			}

			if err := s.DropColumn(1); err != nil {
				t.Fatal(err)
			}
			_ = s.ScanCols(nil, func(id RowID, row []sheet.Value) bool {
				if len(row) != 4 {
					t.Fatalf("width after DropColumn = %d", len(row))
				}
				if id == 7 && !row[1].Equal(sheet.Number(60)) {
					t.Fatalf("post-drop row mismatch: %v", row)
				}
				return true
			})
			_ = name
		})
	}
}

// TestGetCols checks the point read against Get on every layout: the subset
// values must match the full tuple, missing rows must error, and deleted
// rows must be invisible.
func TestGetCols(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(pool *pager.BufferPool) Store
	}{
		{"row", func(p *pager.BufferPool) Store { return NewRowStore(p, 5) }},
		{"column", func(p *pager.BufferPool) Store { return NewColStore(p, 5) }},
		{"hybrid", func(p *pager.BufferPool) Store { return NewHybridStore(p, 5, WithGroupSize(2)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pool := pager.NewBufferPool(pager.NewStore(), 64)
			s := tc.mk(pool)
			const n = 700 // spans multiple pages in every layout
			for i := 0; i < n; i++ {
				row := make([]sheet.Value, 5)
				for c := range row {
					row[c] = sheet.Number(float64(i*10 + c))
				}
				if _, err := s.Insert(row); err != nil {
					t.Fatal(err)
				}
			}
			for _, id := range []RowID{1, 63, 64, 65, 512, 700} {
				full, err := s.Get(id)
				if err != nil {
					t.Fatal(err)
				}
				for _, cols := range [][]int{nil, {0}, {4, 1}, {2, 2}, {}} {
					got, err := s.GetCols(id, cols)
					if err != nil {
						t.Fatalf("GetCols(%d, %v): %v", id, cols, err)
					}
					want := full
					if cols != nil {
						want = make([]sheet.Value, len(cols))
						for j, c := range cols {
							want[j] = full[c]
						}
					}
					if len(got) != len(want) {
						t.Fatalf("GetCols(%d, %v) width %d want %d", id, cols, len(got), len(want))
					}
					for j := range want {
						if !got[j].Equal(want[j]) {
							t.Fatalf("GetCols(%d, %v)[%d] = %v want %v", id, cols, j, got[j], want[j])
						}
					}
				}
			}
			if _, err := s.GetCols(3, []int{9}); err == nil {
				t.Fatal("out-of-range column accepted")
			}
			if err := s.Delete(42); err != nil {
				t.Fatal(err)
			}
			if _, err := s.GetCols(42, []int{0}); err == nil {
				t.Fatal("deleted row visible through GetCols")
			}
			if _, err := s.GetCols(RowID(n+5), []int{0}); err == nil {
				t.Fatal("missing row visible through GetCols")
			}
		})
	}
}
