package tablestore

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

type snapRow struct {
	id  RowID
	row []sheet.Value
}

func collectScan(t *testing.T, scan func(fn func(RowID, []sheet.Value) bool) error) []snapRow {
	t.Helper()
	var out []snapRow
	if err := scan(func(id RowID, row []sheet.Value) bool {
		out = append(out, snapRow{id: id, row: cloneRow(row)})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func snapStores() map[string]struct {
	pool  *pager.BufferPool
	store Store
} {
	out := make(map[string]struct {
		pool  *pager.BufferPool
		store Store
	})
	add := func(name string, mk func(p *pager.BufferPool) Store) {
		p := pager.NewBufferPool(pager.NewStore(), 256)
		out[name] = struct {
			pool  *pager.BufferPool
			store Store
		}{p, mk(p)}
	}
	add("row", func(p *pager.BufferPool) Store { return NewRowStore(p, 4) })
	add("column", func(p *pager.BufferPool) Store { return NewColStore(p, 4) })
	add("hybrid", func(p *pager.BufferPool) Store { return NewHybridStore(p, 4, WithGroupSize(2)) })
	return out
}

// TestSnapshotFrozenUnderMutation pins a snapshot, mutates the live store
// heavily (updates, deletes, inserts, a schema change), and asserts the
// snapshot still scans exactly the pre-mutation contents while the live
// store sees the new state. Releasing the last snapshot must drop every
// retained page version.
func TestSnapshotFrozenUnderMutation(t *testing.T) {
	const n = 1500
	for name, tc := range snapStores() {
		t.Run(name, func(t *testing.T) {
			s, pool := tc.store, tc.pool
			fillStore(t, s, n)
			for _, id := range []RowID{2, 800} {
				if err := s.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			before := collectScan(t, func(fn func(RowID, []sheet.Value) bool) error {
				return s.ScanCols(nil, fn)
			})

			snap := s.(Snapshotter).Snapshot()
			defer snap.Release()
			if snap.RowCount() != n-2 {
				t.Fatalf("snap.RowCount = %d, want %d", snap.RowCount(), n-2)
			}

			// Mutate everything the snapshot might observe.
			for i := 0; i < n; i += 3 {
				id := RowID(i + 1)
				if id == 2 || id == 800 {
					continue
				}
				if err := s.Update(id, []sheet.Value{
					sheet.Number(-1), sheet.String_("mutated"), sheet.Number(-2), sheet.Bool_(false),
				}); err != nil {
					t.Fatal(err)
				}
			}
			for _, id := range []RowID{10, 20, 30} {
				if err := s.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 200; i++ {
				if _, err := s.Insert([]sheet.Value{
					sheet.Number(float64(n + i)), sheet.String_("new"), sheet.Number(0), sheet.Bool_(true),
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.DropColumn(3); err != nil {
				t.Fatal(err)
			}

			after := collectScan(t, func(fn func(RowID, []sheet.Value) bool) error {
				return snap.ScanColsRange(snap.Partitions(1)[0], nil, fn)
			})
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("snapshot scan diverged from pre-mutation scan: %d vs %d rows", len(before), len(after))
			}

			snap.Release()
			if pinned, retained := pool.EpochStats(); pinned != 0 || retained != 0 {
				t.Fatalf("after release EpochStats = (%d, %d), want (0, 0)", pinned, retained)
			}
		})
	}
}

// TestSnapshotPartitionsReproduceSerialOrder asserts that concatenating
// per-partition scans in partition order equals the serial full scan, for
// several worker counts and projections.
func TestSnapshotPartitionsReproduceSerialOrder(t *testing.T) {
	const n = 2100
	for name, tc := range snapStores() {
		t.Run(name, func(t *testing.T) {
			s := tc.store
			fillStore(t, s, n)
			for _, id := range []RowID{1, 500, 1200, RowID(n)} {
				if err := s.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			snap := s.(Snapshotter).Snapshot()
			defer snap.Release()
			for _, cols := range [][]int{nil, {0}, {2, 0}, {1, 3}} {
				serial := collectScan(t, func(fn func(RowID, []sheet.Value) bool) error {
					return snap.ScanColsRange(Partition{Lo: 0, Hi: 1 << 30}, cols, fn)
				})
				for _, workers := range []int{1, 2, 4, 7, 64} {
					parts := snap.Partitions(workers)
					if len(parts) == 0 || len(parts) > workers {
						t.Fatalf("Partitions(%d) returned %d parts", workers, len(parts))
					}
					var merged []snapRow
					for _, p := range parts {
						merged = append(merged, collectScan(t, func(fn func(RowID, []sheet.Value) bool) error {
							return snap.ScanColsRange(p, cols, fn)
						})...)
					}
					if !reflect.DeepEqual(serial, merged) {
						t.Fatalf("cols %v workers %d: partitioned scan diverged (%d vs %d rows)",
							cols, workers, len(serial), len(merged))
					}
				}
			}
		})
	}
}

// TestSnapshotConcurrentPartitionScans drives all partitions of one
// snapshot from concurrent goroutines while a writer churns the live store,
// asserting every partition sees frozen data (run with -race to catch
// unsynchronized access).
func TestSnapshotConcurrentPartitionScans(t *testing.T) {
	const n = 1200
	for name, tc := range snapStores() {
		t.Run(name, func(t *testing.T) {
			s := tc.store
			fillStore(t, s, n)
			snap := s.(Snapshotter).Snapshot()
			defer snap.Release()

			stop := make(chan struct{})
			writerDone := make(chan error, 1)
			go func() {
				defer close(writerDone)
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					id := RowID(i%n + 1)
					err := s.Update(id, []sheet.Value{
						sheet.Number(float64(-i)), sheet.String_("churn"),
						sheet.Number(float64(i)), sheet.Bool_(i%2 == 0),
					})
					if err != nil {
						writerDone <- err
						return
					}
					i++
				}
			}()

			parts := snap.Partitions(4)
			errs := make(chan error, 2*len(parts))
			for _, p := range parts {
				go func(p Partition) {
					errs <- snap.ScanColsRange(p, []int{1, 0}, func(id RowID, row []sheet.Value) bool {
						i := int(id - 1)
						if got := row[0]; !got.Equal(sheet.String_(fmt.Sprintf("s%d", i))) {
							errs <- fmt.Errorf("row %d saw churned value %v", id, got)
							return false
						}
						return true
					})
				}(p)
			}
			for range parts {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			if err := <-writerDone; err != nil {
				t.Fatal(err)
			}
		})
	}
}
