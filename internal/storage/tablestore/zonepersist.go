package tablestore

import "fmt"

// Zone-map catalog persistence. Zone summaries are derivable — any page
// rewrite recomputes them — but recomputing at open time would mean decoding
// every page of every table, exactly the cost skipping exists to avoid. So
// checkpoints carry a per-table zone blob and reopen reattaches it.
//
// The blob is strictly advisory: AttachZones validates shape against the
// store's page lists and rejects the whole payload on any mismatch, leaving
// the store with no summaries (= no skipping), never with wrong ones.

// ZonePersister is the optional capability to externalise and reattach a
// store's zone-map catalog, type-asserted by the engine's checkpoint path.
type ZonePersister interface {
	// MarshalZones serialises the store's current zone catalog.
	MarshalZones() []byte
	// AttachZones replaces the store's zone catalog with a previously
	// marshalled one. On any validation error the catalog is left empty and
	// the error returned; the store remains fully usable without skipping.
	AttachZones(data []byte) error
}

const (
	zoneLayoutRow    = 'r'
	zoneLayoutCol    = 'c'
	zoneLayoutHybrid = 'h'
)

// appendZoneList serialises one page chain's summaries: count, then per page
// a presence byte and, when present, the column zones.
func appendZoneList(dst []byte, zs []*pageZones) []byte {
	dst = appendUvarint(dst, uint64(len(zs)))
	for _, pz := range zs {
		if pz == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = appendUvarint(dst, uint64(len(pz.cols)))
		for i := range pz.cols {
			dst = appendZone(dst, &pz.cols[i])
		}
	}
	return dst
}

// zoneList decodes one page chain's summaries, rejecting lists longer than
// the chain they describe.
func (d *valueDecoder) zoneList(nPages int, what string) ([]*pageZones, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(nPages) {
		return nil, fmt.Errorf("tablestore: zone blob lists %d pages for %s, store has %d", n, what, nPages)
	}
	if n == 0 {
		return nil, nil
	}
	zs := make([]*pageZones, n)
	for i := range zs {
		if d.pos >= len(d.buf) {
			return nil, fmt.Errorf("tablestore: truncated zone list at %d", d.pos)
		}
		present := d.buf[d.pos]
		d.pos++
		if present == 0 {
			continue
		}
		ncols, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		// Each serialised zone is at least 2 flag bytes.
		if ncols > uint64(len(d.buf)-d.pos)/2 {
			return nil, fmt.Errorf("tablestore: implausible zone column count %d at %d", ncols, d.pos)
		}
		pz := &pageZones{cols: make([]ColZone, ncols)}
		for c := range pz.cols {
			z, err := d.zone()
			if err != nil {
				return nil, err
			}
			pz.cols[c] = z
		}
		zs[i] = pz
	}
	return zs, nil
}

// MarshalZones implements ZonePersister.
func (s *RowStore) MarshalZones() []byte {
	dst := []byte{zoneLayoutRow}
	return appendZoneList(dst, s.zones)
}

// AttachZones implements ZonePersister.
func (s *RowStore) AttachZones(data []byte) error {
	s.zones = nil
	if len(data) == 0 || data[0] != zoneLayoutRow {
		return fmt.Errorf("tablestore: zone blob layout mismatch for row store")
	}
	d := &valueDecoder{buf: data, pos: 1}
	zs, err := d.zoneList(len(s.pages), "row store")
	if err != nil {
		return err
	}
	if d.pos != len(data) {
		return fmt.Errorf("tablestore: %d trailing bytes in row zone blob", len(data)-d.pos)
	}
	s.zones = zs
	return nil
}

// MarshalZones implements ZonePersister.
func (s *ColStore) MarshalZones() []byte {
	dst := []byte{zoneLayoutCol}
	dst = appendUvarint(dst, uint64(len(s.cols)))
	for c := range s.cols {
		dst = appendZoneList(dst, s.cols[c].zones)
	}
	return dst
}

// AttachZones implements ZonePersister.
func (s *ColStore) AttachZones(data []byte) error {
	for c := range s.cols {
		s.cols[c].zones = nil
	}
	if len(data) == 0 || data[0] != zoneLayoutCol {
		return fmt.Errorf("tablestore: zone blob layout mismatch for column store")
	}
	d := &valueDecoder{buf: data, pos: 1}
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	if n != uint64(len(s.cols)) {
		return fmt.Errorf("tablestore: zone blob has %d columns, store has %d", n, len(s.cols))
	}
	fresh := make([][]*pageZones, len(s.cols))
	for c := range s.cols {
		if fresh[c], err = d.zoneList(len(s.cols[c].pages), fmt.Sprintf("column %d", c)); err != nil {
			return err
		}
	}
	if d.pos != len(data) {
		return fmt.Errorf("tablestore: %d trailing bytes in column zone blob", len(data)-d.pos)
	}
	for c := range s.cols {
		s.cols[c].zones = fresh[c]
	}
	return nil
}

// MarshalZones implements ZonePersister.
func (s *HybridStore) MarshalZones() []byte {
	dst := []byte{zoneLayoutHybrid}
	dst = appendUvarint(dst, uint64(len(s.groups)))
	for gi := range s.groups {
		dst = appendZoneList(dst, s.groups[gi].zones)
	}
	return dst
}

// AttachZones implements ZonePersister.
func (s *HybridStore) AttachZones(data []byte) error {
	for gi := range s.groups {
		s.groups[gi].zones = nil
	}
	if len(data) == 0 || data[0] != zoneLayoutHybrid {
		return fmt.Errorf("tablestore: zone blob layout mismatch for hybrid store")
	}
	d := &valueDecoder{buf: data, pos: 1}
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	if n != uint64(len(s.groups)) {
		return fmt.Errorf("tablestore: zone blob has %d groups, store has %d", n, len(s.groups))
	}
	fresh := make([][]*pageZones, len(s.groups))
	for gi := range s.groups {
		if fresh[gi], err = d.zoneList(len(s.groups[gi].pages), fmt.Sprintf("group %d", gi)); err != nil {
			return err
		}
	}
	if d.pos != len(data) {
		return fmt.Errorf("tablestore: %d trailing bytes in hybrid zone blob", len(data)-d.pos)
	}
	for gi := range s.groups {
		s.groups[gi].zones = fresh[gi]
	}
	return nil
}

var (
	_ ZonePersister = (*RowStore)(nil)
	_ ZonePersister = (*ColStore)(nil)
	_ ZonePersister = (*HybridStore)(nil)
)
