package tablestore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// newStores builds one store of each layout with the given column count over
// its own pager, returning stores keyed by layout name along with the page
// stores for block accounting.
func newStores(columns int) (map[string]Store, map[string]*pager.Store) {
	stores := make(map[string]Store)
	pagers := make(map[string]*pager.Store)
	{
		ps := pager.NewStore()
		stores["row"] = NewRowStore(pager.NewBufferPool(ps, 0), columns)
		pagers["row"] = ps
	}
	{
		ps := pager.NewStore()
		stores["column"] = NewColStore(pager.NewBufferPool(ps, 0), columns)
		pagers["column"] = ps
	}
	{
		ps := pager.NewStore()
		stores["hybrid"] = NewHybridStore(pager.NewBufferPool(ps, 0), columns, WithGroupSize(3))
		pagers["hybrid"] = ps
	}
	return stores, pagers
}

func row(vals ...any) []sheet.Value {
	out := make([]sheet.Value, len(vals))
	for i, v := range vals {
		out[i] = sheet.FromAny(v)
	}
	return out
}

func TestTupleCodecRoundTrip(t *testing.T) {
	ids := []RowID{1, 5, 9}
	rows := [][]sheet.Value{
		row(1.5, "alice", true),
		row(nil, "bob", false),
		row(-3, "", true),
	}
	gotIDs, gotRows, err := decodeTuples(encodeTuples(ids, rows, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 3 || gotIDs[1] != 5 {
		t.Fatalf("ids = %v", gotIDs)
	}
	for i := range rows {
		for c := range rows[i] {
			if gotRows[i][c].Kind != rows[i][c].Kind || gotRows[i][c].String() != rows[i][c].String() {
				t.Errorf("row %d col %d = %+v, want %+v", i, c, gotRows[i][c], rows[i][c])
			}
		}
	}
	// Empty buffer decodes to nothing.
	if ids, rows, err := decodeTuples(nil); err != nil || ids != nil || rows != nil {
		t.Error("empty decode wrong")
	}
	// Corrupt data errors.
	if _, _, err := decodeTuples([]byte{9, 9, 9}); err == nil {
		t.Error("corrupt decode should fail")
	}
}

func TestColumnCodecRoundTrip(t *testing.T) {
	vals := []sheet.Value{sheet.Number(1), sheet.String_("x"), sheet.Bool_(true), sheet.Empty(), sheet.ErrNA}
	got, err := decodeColumn(encodeColumn(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range vals {
		if got[i].Kind != vals[i].Kind || got[i].String() != vals[i].String() {
			t.Errorf("val %d = %+v", i, got[i])
		}
	}
	if vals, err := decodeColumn(nil); err != nil || vals != nil {
		t.Error("empty column decode wrong")
	}
}

func TestStoreConformanceCRUD(t *testing.T) {
	stores, _ := newStores(3)
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			if s.Layout() != name {
				t.Errorf("Layout = %q", s.Layout())
			}
			if s.ColumnCount() != 3 || s.RowCount() != 0 {
				t.Fatal("initial counts wrong")
			}
			id1, err := s.Insert(row(1, "a", true))
			if err != nil {
				t.Fatal(err)
			}
			id2, err := s.Insert(row(2, "b", false))
			if err != nil {
				t.Fatal(err)
			}
			if id1 == id2 {
				t.Fatal("row ids must be unique")
			}
			got, err := s.Get(id1)
			if err != nil || got[0].Num != 1 || got[1].Str != "a" || got[2].Bool != true {
				t.Fatalf("Get(id1) = %v, %v", got, err)
			}
			// Width mismatch rejected.
			if _, err := s.Insert(row(1, 2)); err == nil {
				t.Error("short tuple should be rejected")
			}
			if err := s.Update(id1, row(1, 2)); err == nil {
				t.Error("short update should be rejected")
			}
			// Update.
			if err := s.Update(id2, row(20, "bb", true)); err != nil {
				t.Fatal(err)
			}
			got, _ = s.Get(id2)
			if got[0].Num != 20 || got[1].Str != "bb" {
				t.Error("Update content wrong")
			}
			// UpdateColumn.
			if err := s.UpdateColumn(id2, 1, sheet.String_("cc")); err != nil {
				t.Fatal(err)
			}
			got, _ = s.Get(id2)
			if got[1].Str != "cc" || got[0].Num != 20 {
				t.Error("UpdateColumn wrong")
			}
			if err := s.UpdateColumn(id2, 99, sheet.Number(1)); !errors.Is(err, ErrColumnRange) {
				t.Error("out-of-range column should fail")
			}
			// Delete.
			if err := s.Delete(id1); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(id1); !errors.Is(err, ErrRowNotFound) {
				t.Error("deleted row should not be gettable")
			}
			if err := s.Delete(id1); !errors.Is(err, ErrRowNotFound) {
				t.Error("double delete should fail")
			}
			if err := s.Update(id1, row(0, "", false)); !errors.Is(err, ErrRowNotFound) {
				t.Error("update of deleted row should fail")
			}
			if s.RowCount() != 1 {
				t.Errorf("RowCount = %d", s.RowCount())
			}
			// Unknown ids.
			if _, err := s.Get(RowID(999)); !errors.Is(err, ErrRowNotFound) {
				t.Error("unknown id should fail")
			}
		})
	}
}

func TestStoreConformanceScan(t *testing.T) {
	stores, _ := newStores(2)
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			const n = 500
			for i := 0; i < n; i++ {
				if _, err := s.Insert(row(i, fmt.Sprintf("r%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Delete every 10th row.
			deleted := 0
			for i := 0; i < n; i += 10 {
				if err := s.Delete(RowID(i + 1)); err != nil {
					t.Fatal(err)
				}
				deleted++
			}
			var seen []RowID
			prev := RowID(0)
			err := s.Scan(func(id RowID, r []sheet.Value) bool {
				if id <= prev {
					t.Fatalf("scan not in RowID order: %d after %d", id, prev)
				}
				prev = id
				if r[0].Num != float64(id-1) {
					t.Fatalf("row %d content wrong: %v", id, r[0])
				}
				seen = append(seen, id)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != n-deleted {
				t.Errorf("scan visited %d rows, want %d", len(seen), n-deleted)
			}
			// Early termination.
			count := 0
			_ = s.Scan(func(RowID, []sheet.Value) bool { count++; return count < 5 })
			if count != 5 {
				t.Errorf("early stop visited %d", count)
			}
		})
	}
}

func TestStoreConformanceSchemaChange(t *testing.T) {
	stores, _ := newStores(3)
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 200; i++ {
				_, _ = s.Insert(row(i, "x", i*2))
			}
			if err := s.AddColumn(sheet.String_("new")); err != nil {
				t.Fatal(err)
			}
			if s.ColumnCount() != 4 {
				t.Fatalf("ColumnCount = %d", s.ColumnCount())
			}
			got, err := s.Get(RowID(50))
			if err != nil || len(got) != 4 || got[3].Str != "new" {
				t.Fatalf("backfill wrong: %v %v", got, err)
			}
			// New inserts carry the new column.
			id, err := s.Insert(row(999, "y", 0, "fresh"))
			if err != nil {
				t.Fatal(err)
			}
			got, _ = s.Get(id)
			if got[3].Str != "fresh" {
				t.Error("insert after AddColumn wrong")
			}
			// Update a value in the new column.
			if err := s.UpdateColumn(RowID(10), 3, sheet.Number(77)); err != nil {
				t.Fatal(err)
			}
			got, _ = s.Get(RowID(10))
			if got[3].Num != 77 {
				t.Error("update of new column wrong")
			}
			// Drop the middle column.
			if err := s.DropColumn(1); err != nil {
				t.Fatal(err)
			}
			if s.ColumnCount() != 3 {
				t.Fatalf("after drop ColumnCount = %d", s.ColumnCount())
			}
			got, _ = s.Get(RowID(10))
			if got[0].Num != 9 || got[1].Num != 18 || got[2].Num != 77 {
				t.Errorf("after drop row = %v", got)
			}
			// Scan still works and has the right width.
			_ = s.Scan(func(id RowID, r []sheet.Value) bool {
				if len(r) != 3 {
					t.Fatalf("scan row width = %d", len(r))
				}
				return id < 20
			})
			if err := s.DropColumn(99); !errors.Is(err, ErrColumnRange) {
				t.Error("drop out of range should fail")
			}
		})
	}
}

// TestStoresAgainstReference runs randomized operations on all layouts and a
// simple in-memory reference, verifying they always agree.
func TestStoresAgainstReference(t *testing.T) {
	stores, _ := newStores(2)
	type refRow struct {
		vals []sheet.Value
		live bool
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			ref := make(map[RowID]*refRow)
			width := 2
			rng := rand.New(rand.NewSource(5))
			var ids []RowID
			for op := 0; op < 3000; op++ {
				switch r := rng.Intn(10); {
				case r < 4: // insert
					vals := make([]sheet.Value, width)
					for c := range vals {
						vals[c] = sheet.Number(float64(rng.Intn(1000)))
					}
					id, err := s.Insert(vals)
					if err != nil {
						t.Fatal(err)
					}
					ref[id] = &refRow{vals: cloneRow(vals), live: true}
					ids = append(ids, id)
				case r < 6 && len(ids) > 0: // update
					id := ids[rng.Intn(len(ids))]
					vals := make([]sheet.Value, width)
					for c := range vals {
						vals[c] = sheet.Number(float64(rng.Intn(1000)))
					}
					err := s.Update(id, vals)
					if ref[id].live {
						if err != nil {
							t.Fatalf("op %d: update live row failed: %v", op, err)
						}
						ref[id].vals = cloneRow(vals)
					} else if err == nil {
						t.Fatalf("op %d: update of deleted row succeeded", op)
					}
				case r < 7 && len(ids) > 0: // delete
					id := ids[rng.Intn(len(ids))]
					err := s.Delete(id)
					if ref[id].live != (err == nil) {
						t.Fatalf("op %d: delete mismatch", op)
					}
					ref[id].live = false
				case r < 9 && len(ids) > 0: // point read
					id := ids[rng.Intn(len(ids))]
					got, err := s.Get(id)
					if ref[id].live {
						if err != nil {
							t.Fatalf("op %d: get failed: %v", op, err)
						}
						for c := range got {
							if got[c].Num != ref[id].vals[c].Num {
								t.Fatalf("op %d: content mismatch", op)
							}
						}
					} else if err == nil {
						t.Fatalf("op %d: get of deleted row succeeded", op)
					}
				case len(ids) > 0: // occasionally add a column
					if width < 6 && rng.Intn(20) == 0 {
						def := sheet.Number(float64(width) * 100)
						if err := s.AddColumn(def); err != nil {
							t.Fatal(err)
						}
						for _, rr := range ref {
							rr.vals = append(rr.vals, def)
						}
						width++
					}
				}
			}
			// Final scan agrees with reference.
			live := 0
			for _, rr := range ref {
				if rr.live {
					live++
				}
			}
			seen := 0
			_ = s.Scan(func(id RowID, r []sheet.Value) bool {
				rr, ok := ref[id]
				if !ok || !rr.live {
					t.Fatalf("scan returned unexpected row %d", id)
				}
				for c := range r {
					if r[c].Num != rr.vals[c].Num {
						t.Fatalf("scan row %d col %d mismatch", id, c)
					}
				}
				seen++
				return true
			})
			if seen != live {
				t.Fatalf("scan saw %d rows, want %d", seen, live)
			}
			if s.RowCount() != live {
				t.Fatalf("RowCount = %d, want %d", s.RowCount(), live)
			}
		})
	}
}

// TestSchemaChangeBlockCosts verifies the paper's central storage claim as a
// *shape*: adding a column to a populated table touches O(table) blocks in a
// row store but only O(new column) blocks in the hybrid and column layouts,
// while a point update touches fewer blocks in hybrid than in a pure column
// store.
func TestSchemaChangeBlockCosts(t *testing.T) {
	const rows = 5000
	const cols = 12
	stores, pagers := newStores(cols)
	vals := make([]sheet.Value, cols)
	for name, s := range stores {
		for i := 0; i < rows; i++ {
			for c := range vals {
				vals[c] = sheet.Number(float64(i*cols + c))
			}
			if _, err := s.Insert(vals); err != nil {
				t.Fatalf("%s insert: %v", name, err)
			}
		}
		pagers[name].ResetStats()
	}
	// Schema change cost.
	addCost := map[string]uint64{}
	for name, s := range stores {
		if err := s.AddColumn(sheet.Number(0)); err != nil {
			t.Fatal(err)
		}
		addCost[name] = pagers[name].Stats().Writes
		pagers[name].ResetStats()
	}
	if addCost["row"] < 4*addCost["hybrid"] {
		t.Errorf("row-store schema change (%d writes) should cost much more than hybrid (%d writes)",
			addCost["row"], addCost["hybrid"])
	}
	if addCost["hybrid"] > 2*addCost["column"] {
		t.Errorf("hybrid schema change (%d writes) should be close to column store (%d writes)",
			addCost["hybrid"], addCost["column"])
	}
	// Point full-row update cost.
	updCost := map[string]uint64{}
	for name, s := range stores {
		pagers[name].ResetStats()
		wide := make([]sheet.Value, cols+1)
		for c := range wide {
			wide[c] = sheet.Number(1)
		}
		if err := s.Update(RowID(rows/2), wide); err != nil {
			t.Fatal(err)
		}
		updCost[name] = pagers[name].Stats().BlocksTouched()
	}
	if updCost["column"] < 2*updCost["hybrid"] {
		t.Errorf("column-store row update (%d blocks) should cost much more than hybrid (%d blocks)",
			updCost["column"], updCost["hybrid"])
	}
	if updCost["row"] > updCost["hybrid"] {
		t.Errorf("row-store row update (%d blocks) should not cost more than hybrid (%d blocks)",
			updCost["row"], updCost["hybrid"])
	}
}

func TestHybridGroupSizeAblation(t *testing.T) {
	// Group size 1 must behave like a column store for updates (one block
	// per column) and like it for schema changes; a huge group size must
	// behave like a row store for schema changes.
	ps1 := pager.NewStore()
	s1 := NewHybridStore(pager.NewBufferPool(ps1, 0), 8, WithGroupSize(1))
	psAll := pager.NewStore()
	sAll := NewHybridStore(pager.NewBufferPool(psAll, 0), 8, WithGroupSize(100))
	if s1.GroupCount() != 8 || sAll.GroupCount() != 1 {
		t.Fatalf("GroupCounts = %d, %d", s1.GroupCount(), sAll.GroupCount())
	}
	vals := make([]sheet.Value, 8)
	for i := range vals {
		vals[i] = sheet.Number(float64(i))
	}
	for i := 0; i < 1000; i++ {
		_, _ = s1.Insert(vals)
		_, _ = sAll.Insert(vals)
	}
	ps1.ResetStats()
	psAll.ResetStats()
	_ = s1.AddColumn(sheet.Empty())
	_ = sAll.AddColumn(sheet.Empty())
	// Both create a fresh group, so schema change cost is similar; but a
	// full-row update differs sharply.
	ps1.ResetStats()
	psAll.ResetStats()
	wide := append(cloneRow(vals), sheet.Empty())
	_ = s1.Update(500, wide)
	_ = sAll.Update(500, wide)
	if ps1.Stats().BlocksTouched() <= psAll.Stats().BlocksTouched() {
		t.Errorf("group-size-1 update (%d blocks) should cost more than single-group update (%d blocks)",
			ps1.Stats().BlocksTouched(), psAll.Stats().BlocksTouched())
	}
}

func TestHybridDropColumnWithinGroup(t *testing.T) {
	ps := pager.NewStore()
	s := NewHybridStore(pager.NewBufferPool(ps, 0), 4, WithGroupSize(4))
	for i := 0; i < 100; i++ {
		_, _ = s.Insert(row(i, i*2, i*3, i*4))
	}
	if err := s.DropColumn(1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Num != 49 || got[1].Num != 147 || got[2].Num != 196 {
		t.Errorf("after in-group drop row = %v", got)
	}
	// Dropping the only column of its group frees it.
	if err := s.AddColumn(sheet.Number(9)); err != nil {
		t.Fatal(err)
	}
	newCol := s.ColumnCount() - 1
	if err := s.DropColumn(newCol); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(50)
	if len(got) != 3 {
		t.Errorf("after dropping new column width = %d", len(got))
	}
}

func TestRowStorePageGrowth(t *testing.T) {
	ps := pager.NewStore()
	s := NewRowStore(pager.NewBufferPool(ps, 0), 1)
	for i := 0; i < rowsPerPage*2+1; i++ {
		_, _ = s.Insert(row(i))
	}
	if s.PageCount() != 3 {
		t.Errorf("PageCount = %d, want 3", s.PageCount())
	}
}

func TestColStorePageAccounting(t *testing.T) {
	ps := pager.NewStore()
	s := NewColStore(pager.NewBufferPool(ps, 0), 3)
	for i := 0; i < 100; i++ {
		_, _ = s.Insert(row(i, i, i))
	}
	if s.PageCount() != 3 {
		t.Errorf("PageCount = %d, want 3 (one page per column)", s.PageCount())
	}
	if err := s.DropColumn(0); err != nil {
		t.Fatal(err)
	}
	if s.PageCount() != 2 || s.ColumnCount() != 2 {
		t.Error("DropColumn should free the column's pages")
	}
	got, _ := s.Get(10)
	if len(got) != 2 || got[0].Num != 9 {
		t.Errorf("after drop row = %v", got)
	}
}
