package tablestore

import (
	"math"
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
)

// Zone maps: per-page, per-column value summaries for data skipping.
//
// Every sealed v2 tuple/column page carries one ColZone per stored column,
// computed by the codec at encode time. The stores mirror those summaries in
// an in-memory catalog parallel to their page lists (rebuilt on every page
// write, persisted in the checkpoint zone blob), and the scan paths consult
// them against the executor's pushed sargable conjuncts: a page whose zone
// proves that NO row can satisfy a conjunct is dropped without being paged in
// or decoded.
//
// Correctness rests on the engine's comparison semantics (sheet.Value):
//
//   - NULL (KindEmpty) never satisfies any comparison — evalBoundPredicate
//     treats NULL as false — so empty values never block a skip, and slots
//     beyond a page's stored values (which scan as Empty) are skippable for
//     free.
//   - Equality coerces across kinds through AsNumber: the string "5", the
//     boolean TRUE and the number 1 all equal numeric constants. ColZone
//     therefore tracks a separate coercion range [CoMin, CoMax] over every
//     value that AsNumber accepts, and `=` skips only outside that range.
//   - Range comparisons use Value.Compare, which ranks every string, bool
//     and error ABOVE every number without coercing. A page holding any such
//     value can always satisfy `>`/`>=` against a numeric constant, so those
//     skips require the kind flags to be clear.
//   - NaN compares equal to every number under Value.Compare (neither less
//     nor greater), so a NaN satisfies `<=` and `>=` against any constant:
//     HasNaN blocks those skips. A NaN-valued bound (e.g. `col = 'nan'`,
//     whose sarg coerces to NaN while string rows "nan" still match by
//     case-insensitive equality) never skips at all.
//
// Summaries are exact at encode time and recomputed wholesale on every page
// rewrite — the mutation paths all decode-modify-reencode a full page, so a
// zone can never understate its page (the stale-skip hazard). Tombstone
// deletes never touch the page: the zone stays a valid superset of the
// surviving rows, and skipping remains sound (it can only drop rows that
// would not have matched).

// zoneStrPrefix is the stored length of text min/max prefixes.
const zoneStrPrefix = 16

// ZoneBound is one sargable conjunct handed to the pruning layer: column
// <op> numeric constant, or column IN a numeric list (op "in", constants in
// Vals). Col is the physical table column index. Bounds mirror the
// executor's sarg extraction, which only produces them for NUMBER-declared
// columns with numeric (or numerically coerced) constants.
type ZoneBound struct {
	Col  int
	Op   string // "=", "<", "<=", ">", ">=", "in"
	Val  float64
	Vals []float64
}

// ColZone summarises every value one page stores for one column.
type ColZone struct {
	// HasNum with [NumMin, NumMax] covers the non-NaN numeric values.
	HasNum         bool
	NumMin, NumMax float64
	// HasCo with [CoMin, CoMax] covers the AsNumber coercions that equality
	// can match: non-NaN numbers, booleans as 0/1, and numeric-parsing
	// strings (excluding NaN parses — NaN equals nothing).
	HasCo        bool
	CoMin, CoMax float64
	// HasStr with [StrMin, StrMax] bounds the case-folded prefixes
	// (zoneStrPrefix bytes) of the stored strings; the Trunc flags record
	// that the extreme entry was cut. Text sargs do not exist yet (text
	// columns are not sargable), so these prefixes are carried for a future
	// collation-aware skip path and checked by the fuzz suite, but never
	// consulted for skipping.
	HasStr             bool
	StrMin, StrMax     string
	MinTrunc, MaxTrunc bool
	// Kind flags for the rank-based comparison rules above.
	HasBool, HasErr, HasEmpty, HasNaN bool
}

// add widens the zone to cover one value.
func (z *ColZone) add(v sheet.Value) {
	switch v.Kind {
	case sheet.KindEmpty:
		z.HasEmpty = true
	case sheet.KindNumber:
		if math.IsNaN(v.Num) {
			z.HasNaN = true
			return
		}
		if !z.HasNum {
			z.HasNum, z.NumMin, z.NumMax = true, v.Num, v.Num
		} else {
			z.NumMin = math.Min(z.NumMin, v.Num)
			z.NumMax = math.Max(z.NumMax, v.Num)
		}
		z.addCo(v.Num)
	case sheet.KindString:
		z.addStr(v.Str)
		z.HasStr = true
		if f, ok := v.AsNumber(); ok && !math.IsNaN(f) {
			z.addCo(f)
		}
	case sheet.KindBool:
		z.HasBool = true
		if v.Bool {
			z.addCo(1)
		} else {
			z.addCo(0)
		}
	case sheet.KindError:
		z.HasErr = true
	}
}

func (z *ColZone) addCo(f float64) {
	if !z.HasCo {
		z.HasCo, z.CoMin, z.CoMax = true, f, f
		return
	}
	z.CoMin = math.Min(z.CoMin, f)
	z.CoMax = math.Max(z.CoMax, f)
}

func (z *ColZone) addStr(s string) {
	p := strings.ToLower(s)
	trunc := false
	if len(p) > zoneStrPrefix {
		p, trunc = p[:zoneStrPrefix], true
	}
	if !z.HasStr {
		z.StrMin, z.StrMax = p, p
		z.MinTrunc, z.MaxTrunc = trunc, trunc
		return
	}
	if p < z.StrMin {
		z.StrMin, z.MinTrunc = p, trunc
	}
	if p > z.StrMax {
		z.StrMax, z.MaxTrunc = p, trunc
	}
}

// covers reports whether the zone accounts for v — the invariant the fuzz
// suite asserts for every stored value of every summarised page.
func (z *ColZone) covers(v sheet.Value) bool {
	switch v.Kind {
	case sheet.KindEmpty:
		return z.HasEmpty
	case sheet.KindNumber:
		if math.IsNaN(v.Num) {
			return z.HasNaN
		}
		return z.HasNum && v.Num >= z.NumMin && v.Num <= z.NumMax &&
			z.HasCo && v.Num >= z.CoMin && v.Num <= z.CoMax
	case sheet.KindString:
		if !z.HasStr {
			return false
		}
		p := strings.ToLower(v.Str)
		if len(p) > zoneStrPrefix {
			p = p[:zoneStrPrefix]
		}
		if p < z.StrMin || p > z.StrMax {
			return false
		}
		if f, ok := v.AsNumber(); ok && !math.IsNaN(f) {
			return z.HasCo && f >= z.CoMin && f <= z.CoMax
		}
		return true
	case sheet.KindBool:
		f := 0.0
		if v.Bool {
			f = 1
		}
		return z.HasBool && z.HasCo && f >= z.CoMin && f <= z.CoMax
	case sheet.KindError:
		return z.HasErr
	}
	return false
}

// skips reports whether no value the zone covers can satisfy `col <op> c`.
func (z *ColZone) skips(op string, c float64) bool {
	if math.IsNaN(c) {
		// A NaN bound reaches here only through equality against a string
		// like 'nan', which still matches string rows case-insensitively.
		return false
	}
	switch op {
	case "=":
		return !z.HasCo || c < z.CoMin || c > z.CoMax
	case "<":
		return !z.HasNum || z.NumMin >= c
	case "<=":
		if z.HasNaN {
			return false
		}
		return !z.HasNum || z.NumMin > c
	case ">":
		if z.HasStr || z.HasBool || z.HasErr {
			return false
		}
		return !z.HasNum || z.NumMax <= c
	case ">=":
		if z.HasStr || z.HasBool || z.HasErr || z.HasNaN {
			return false
		}
		return !z.HasNum || z.NumMax < c
	}
	return false
}

// Skips reports whether the bound proves no row of the page can match.
func (z *ColZone) Skips(b ZoneBound) bool {
	if z == nil {
		return false
	}
	if b.Op == "in" {
		if len(b.Vals) == 0 {
			return false
		}
		for _, v := range b.Vals {
			if !z.skips("=", v) {
				return false
			}
		}
		return true
	}
	return z.skips(b.Op, b.Val)
}

// pageZones is one page's summary: one ColZone per stored column (physical
// columns for the row layout, group offsets for hybrid, a single entry for
// column pages). Instances are immutable after construction — writers
// replace whole pointers in the catalogs, so snapshots can share them by
// copying the pointer slices.
type pageZones struct {
	cols []ColZone
}

// zoneOf summarises one column page's values.
func zoneOf(vals []sheet.Value) ColZone {
	var z ColZone
	for _, v := range vals {
		z.add(v)
	}
	return z
}

// zonesOfTuples summarises a tuple page column by column.
func zonesOfTuples(rows [][]sheet.Value, width int) *pageZones {
	pz := &pageZones{cols: make([]ColZone, width)}
	for _, row := range rows {
		for c := 0; c < width; c++ {
			if c < len(row) {
				pz.cols[c].add(row[c])
			} else {
				pz.cols[c].add(sheet.Empty())
			}
		}
	}
	return pz
}

// setZone records a page's summary at index pi, growing the catalog to fit.
// Catalog slices stay parallel to their page lists; a nil entry means
// "unknown — never skip".
func setZone(zones []*pageZones, pi int, pz *pageZones) []*pageZones {
	for len(zones) <= pi {
		zones = append(zones, nil)
	}
	zones[pi] = pz
	return zones
}

// --- interval arithmetic over Partition runs ---
//
// Pruning works in the layout's partition space (page indexes for the row
// layout, slots for column/hybrid): each bound yields merged skippable
// intervals at its own page granularity, the intervals union across bounds,
// and the complement is the list of kept runs a pruned scan visits.

// skipIntervalsFor walks page indexes [0, nPages) covering `per` units each,
// clipped to [0, total), and returns the merged intervals of units whose
// pages the callback marks skippable.
func skipIntervalsFor(nPages, per, total int, skip func(pi int) bool) []Partition {
	var out []Partition
	for pi := 0; pi < nPages && pi*per < total; pi++ {
		if !skip(pi) {
			continue
		}
		lo, hi := pi*per, (pi+1)*per
		if hi > total {
			hi = total
		}
		if n := len(out); n > 0 && out[n-1].Hi == lo {
			out[n-1].Hi = hi
		} else {
			out = append(out, Partition{Lo: lo, Hi: hi})
		}
	}
	return out
}

// unionParts merges two sorted, disjoint interval lists into their sorted,
// disjoint union.
func unionParts(a, b []Partition) []Partition {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Partition, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next Partition
		if j >= len(b) || (i < len(a) && a[i].Lo <= b[j].Lo) {
			next = a[i]
			i++
		} else {
			next = b[j]
			j++
		}
		if n := len(out); n > 0 && next.Lo <= out[n-1].Hi {
			if next.Hi > out[n-1].Hi {
				out[n-1].Hi = next.Hi
			}
			continue
		}
		out = append(out, next)
	}
	return out
}

// complementParts returns the kept runs of [0, total) once the sorted,
// disjoint skip intervals are removed.
func complementParts(total int, skip []Partition) []Partition {
	if total <= 0 {
		return nil
	}
	var out []Partition
	lo := 0
	for _, p := range skip {
		if p.Lo > lo {
			out = append(out, Partition{Lo: lo, Hi: p.Lo})
		}
		if p.Hi > lo {
			lo = p.Hi
		}
	}
	if lo < total {
		out = append(out, Partition{Lo: lo, Hi: total})
	}
	return out
}

// splitRuns chops kept runs into roughly n same-sized partitions for morsel
// distribution. Partitions never span a skipped gap, so a few more than n
// pieces can result; the morsel cursor handles any count.
func splitRuns(runs []Partition, n int) []Partition {
	total := 0
	for _, r := range runs {
		total += r.Hi - r.Lo
	}
	if total == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	target := (total + n - 1) / n
	out := make([]Partition, 0, n+len(runs))
	for _, r := range runs {
		for lo := r.Lo; lo < r.Hi; lo += target {
			hi := lo + target
			if hi > r.Hi {
				hi = r.Hi
			}
			out = append(out, Partition{Lo: lo, Hi: hi})
		}
	}
	return out
}

// overlapCount reports how many page indexes in [0, nPages), each covering
// `per` units, intersect the sorted kept runs.
func overlapCount(runs []Partition, per, nPages int) int {
	count, last := 0, -1
	for _, r := range runs {
		if r.Hi <= r.Lo {
			continue
		}
		lo, hi := r.Lo/per, (r.Hi-1)/per
		if hi >= nPages {
			hi = nPages - 1
		}
		if lo <= last {
			lo = last + 1
		}
		if hi >= lo {
			count += hi - lo + 1
			last = hi
		}
	}
	return count
}
