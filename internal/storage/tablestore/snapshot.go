package tablestore

import (
	"fmt"
	"sync"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// Table snapshots: lock-free point-in-time reads over a pinned pool epoch.
//
// Snapshot() pins a BufferPool epoch and captures the store's structural
// state (page lists, column map, tombstones, row counts) by value. The
// returned TableSnap then serves scans with NO external synchronization:
// page content as of the epoch comes from BufferPool.GetAt, which retains
// superseded versions until the last pinned reader drains, and the captured
// structure is private to the snapshot. Writers mutating the live store —
// inserts, deletes, schema changes, even a DROP TABLE — cannot change what
// the snapshot observes.
//
// Snapshot() itself must be called with writers excluded (the engine lock,
// at least read-held) because it reads the store's mutable fields; every
// method on the returned TableSnap is safe without any lock.
//
// Scans are partitionable for morsel-driven parallelism: Partitions(n)
// splits the row space into up to n contiguous ranges such that running
// ScanColsRange over the partitions in order yields exactly the rows, in
// exactly the order, a full ScanCols would. Partition bounds are in
// layout-defined units (page indexes for the row layout, slots for the
// column and hybrid layouts); callers treat them as opaque.

// Partition is one contiguous range of a snapshot's row space, [Lo, Hi) in
// units the layout defines. Obtain partitions from TableSnap.Partitions and
// pass them back to ScanColsRange unchanged.
type Partition struct {
	Lo, Hi int
}

// TableSnap is an immutable point-in-time view of one table.
type TableSnap interface {
	// RowCount returns the number of live rows at snapshot time.
	RowCount() int
	// ColumnCount returns the table width at snapshot time.
	ColumnCount() int
	// Partitions splits the snapshot into at most n non-empty contiguous
	// ranges covering every row; concatenating ScanColsRange outputs in
	// partition order reproduces the serial scan order exactly.
	Partitions(n int) []Partition
	// ScanColsRange is ScanCols restricted to one partition. cols == nil
	// scans all columns. Distinct partitions may be scanned concurrently
	// from different goroutines.
	// dslint:perrow
	ScanColsRange(p Partition, cols []int, fn func(id RowID, row []sheet.Value) bool) error
	// ScanColsStable reports whether ScanColsRange hands out stable rows
	// (safe to retain) or a reused scratch row, mirroring
	// Store.ScanColsStable.
	ScanColsStable(cols []int) bool
	// Release unpins the snapshot's epoch; superseded page versions it held
	// become collectable. Idempotent. Callers must not use the snapshot
	// after Release.
	Release()
}

// Snapshotter is implemented by layouts that can serve lock-free snapshot
// scans. It is deliberately separate from Store so existing implementations
// and fakes keep compiling; executors type-assert and fall back to locked
// scans when absent.
type Snapshotter interface {
	// Snapshot pins the current state. Call with writers excluded; use the
	// returned TableSnap without any lock; Release when done.
	Snapshot() TableSnap
}

// epochPin funnels the release-once discipline shared by all snapshots.
type epochPin struct {
	pool    *pager.BufferPool
	epoch   uint64
	release sync.Once
}

func (p *epochPin) Release() {
	p.release.Do(func() { p.pool.ReleaseEpoch(p.epoch) })
}

// splitRange cuts [0, total) into at most n non-empty contiguous pieces.
func splitRange(total, n int) []Partition {
	if total <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	parts := make([]Partition, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := total*i/n, total*(i+1)/n
		if hi > lo {
			parts = append(parts, Partition{Lo: lo, Hi: hi})
		}
	}
	return parts
}

// --- row layout ---

type rowSnap struct {
	epochPin
	cache    *decodedCache
	width    int
	pages    []pager.PageID
	zones    []*pageZones
	rowCount int
}

// Snapshot implements Snapshotter.
func (s *RowStore) Snapshot() TableSnap {
	snap := &rowSnap{
		epochPin: epochPin{pool: s.pool, epoch: s.pool.OpenEpoch()},
		cache:    &s.cache,
		width:    s.width,
		pages:    append([]pager.PageID(nil), s.pages...),
		zones:    cloneZones(s.zones),
		rowCount: s.rowCount,
	}
	return snap
}

func (s *rowSnap) RowCount() int    { return s.rowCount }
func (s *rowSnap) ColumnCount() int { return s.width }

// Partitions splits by page index: pages enumerate rows in scan order.
func (s *rowSnap) Partitions(n int) []Partition { return splitRange(len(s.pages), n) }

func (s *rowSnap) ScanColsStable(cols []int) bool { return cols == nil }

func (s *rowSnap) ScanColsRange(p Partition, cols []int, fn func(id RowID, row []sheet.Value) bool) error {
	for _, c := range cols {
		if c < 0 || c >= s.width {
			return fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
	}
	var scratch []sheet.Value
	if cols != nil {
		scratch = make([]sheet.Value, len(cols))
	}
	for pi := p.Lo; pi < p.Hi && pi < len(s.pages); pi++ {
		ids, rows, err := s.cache.getTuplesAt(s.pool, s.epoch, s.pages[pi])
		if err != nil {
			return err
		}
		for i, id := range ids {
			row := rows[i]
			if cols != nil {
				for j, c := range cols {
					if c < len(row) {
						scratch[j] = row[c]
					} else {
						scratch[j] = sheet.Empty()
					}
				}
				row = scratch
			}
			if !fn(id, row) {
				return nil
			}
		}
	}
	return nil
}

// --- column layout ---

type colSnap struct {
	epochPin
	cache     *decodedCache
	cols      []colPages
	deleted   map[RowID]bool
	slotCount int
	rowCount  int
}

// Snapshot implements Snapshotter.
func (s *ColStore) Snapshot() TableSnap {
	snap := &colSnap{
		epochPin: epochPin{pool: s.pool, epoch: s.pool.OpenEpoch()},
		cache:    &s.cache,
		// The outer slice is deep-copied: DropColumn splices it in place.
		// The inner page-id slices are append-only, so sharing their
		// backing arrays up to the captured length is safe.
		cols:      append([]colPages(nil), s.cols...),
		deleted:   cloneDeleted(s.deleted),
		slotCount: s.slotCount,
		rowCount:  s.rowCount,
	}
	// Zone slices are NOT append-only — writeColPage replaces entries in
	// place — so each column's zones must be copied, unlike its page ids.
	for c := range snap.cols {
		snap.cols[c].zones = cloneZones(snap.cols[c].zones)
	}
	return snap
}

func (s *colSnap) RowCount() int    { return s.rowCount }
func (s *colSnap) ColumnCount() int { return len(s.cols) }

// Partitions splits by slot.
func (s *colSnap) Partitions(n int) []Partition { return splitRange(s.slotCount, n) }

func (s *colSnap) ScanColsStable([]int) bool { return false }

func (s *colSnap) ScanColsRange(p Partition, cols []int, fn func(id RowID, row []sheet.Value) bool) error {
	want := cols
	if want == nil {
		want = make([]int, len(s.cols))
		for i := range want {
			want[i] = i
		}
	}
	for _, c := range want {
		if c < 0 || c >= len(s.cols) {
			return fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
	}
	lo, hi := p.Lo, p.Hi
	if hi > s.slotCount {
		hi = s.slotCount
	}
	scratch := make([]sheet.Value, len(want))
	chunk := make([][]sheet.Value, len(want))
	hasDeleted := len(s.deleted) > 0
	for base := lo - lo%valuesPerPage; base < hi; base += valuesPerPage {
		pi := base / valuesPerPage
		for j, c := range want {
			vals, err := s.cache.getColumnAt(s.pool, s.epoch, s.cols[c].pages[pi])
			if err != nil {
				return err
			}
			chunk[j] = vals
		}
		start, end := base, base+valuesPerPage
		if start < lo {
			start = lo
		}
		if end > hi {
			end = hi
		}
		for slot := start; slot < end; slot++ {
			id := RowID(slot + 1)
			if hasDeleted && s.deleted[id] {
				continue
			}
			off := slot - base
			for j := range want {
				if off < len(chunk[j]) {
					scratch[j] = chunk[j][off]
				} else {
					scratch[j] = sheet.Empty()
				}
			}
			if !fn(id, scratch) {
				return nil
			}
		}
	}
	return nil
}

// --- hybrid layout ---

type hybridSnap struct {
	epochPin
	cache     *decodedCache
	groups    []attrGroup
	colMap    []colLocation
	deleted   map[RowID]bool
	slotCount int
	rowCount  int
}

// Snapshot implements Snapshotter.
func (s *HybridStore) Snapshot() TableSnap {
	snap := &hybridSnap{
		epochPin: epochPin{pool: s.pool, epoch: s.pool.OpenEpoch()},
		cache:    &s.cache,
		// groups entries are mutated in place by DropColumn (width/pages),
		// so the slice of structs is deep-copied; page-id slices within are
		// append-only and share safely.
		groups:    append([]attrGroup(nil), s.groups...),
		colMap:    append([]colLocation(nil), s.colMap...),
		deleted:   cloneDeleted(s.deleted),
		slotCount: s.slotCount,
		rowCount:  s.rowCount,
	}
	// Zone slices are NOT append-only — writeGroupPage replaces entries in
	// place — so each group's zones must be copied, unlike its page ids.
	for gi := range snap.groups {
		snap.groups[gi].zones = cloneZones(snap.groups[gi].zones)
	}
	return snap
}

func (s *hybridSnap) RowCount() int    { return s.rowCount }
func (s *hybridSnap) ColumnCount() int { return len(s.colMap) }

// Partitions splits by slot.
func (s *hybridSnap) Partitions(n int) []Partition { return splitRange(s.slotCount, n) }

// singleGroupScan mirrors HybridStore.singleGroupScan over the captured
// structure.
func (s *hybridSnap) singleGroupScan(want []int) int {
	if len(want) == 0 {
		return -1
	}
	gi := s.colMap[want[0]].group
	if s.groups[gi].width != len(want) {
		return -1
	}
	for j, c := range want {
		loc := s.colMap[c]
		if loc.group != gi || loc.offset != j {
			return -1
		}
	}
	return gi
}

func (s *hybridSnap) ScanColsStable(cols []int) bool {
	want := cols
	if want == nil {
		want = make([]int, len(s.colMap))
		for i := range want {
			want[i] = i
		}
	}
	for _, c := range want {
		if c < 0 || c >= len(s.colMap) {
			return false
		}
	}
	return s.singleGroupScan(want) >= 0
}

func (s *hybridSnap) ScanColsRange(p Partition, cols []int, fn func(id RowID, row []sheet.Value) bool) error {
	want := cols
	if want == nil {
		want = make([]int, len(s.colMap))
		for i := range want {
			want[i] = i
		}
	}
	for _, c := range want {
		if c < 0 || c >= len(s.colMap) {
			return fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
	}
	lo, hi := p.Lo, p.Hi
	if hi > s.slotCount {
		hi = s.slotCount
	}
	hasDeleted := len(s.deleted) > 0
	// Fast path: one aligned group, rows pass through unchanged.
	if gi := s.singleGroupScan(want); gi >= 0 {
		g := &s.groups[gi]
		var rows [][]sheet.Value
		var empty []sheet.Value
		cur := -1
		for slot := lo; slot < hi; slot++ {
			id := RowID(slot + 1)
			if hasDeleted && s.deleted[id] {
				continue
			}
			pi, off := slot/g.rowsPer, slot%g.rowsPer
			if cur != pi {
				var err error
				if _, rows, err = s.cache.getTuplesAt(s.pool, s.epoch, g.pages[pi]); err != nil {
					return err
				}
				cur = pi
			}
			row := empty
			if off < len(rows) {
				row = rows[off]
			} else if empty == nil {
				empty = make([]sheet.Value, g.width)
				row = empty
			}
			if !fn(id, row) {
				return nil
			}
		}
		return nil
	}
	// General path: one cursor per group that holds a requested column.
	type groupCopy struct {
		slot   int
		offset int
	}
	type groupRead struct {
		gi     int
		copies []groupCopy
		pi     int
		rows   [][]sheet.Value
	}
	var reads []*groupRead
	byGroup := make(map[int]*groupRead)
	for j, c := range want {
		loc := s.colMap[c]
		gr, ok := byGroup[loc.group]
		if !ok {
			gr = &groupRead{gi: loc.group, pi: -1}
			byGroup[loc.group] = gr
			reads = append(reads, gr)
		}
		gr.copies = append(gr.copies, groupCopy{slot: j, offset: loc.offset})
	}
	scratch := make([]sheet.Value, len(want))
	for slot := lo; slot < hi; slot++ {
		id := RowID(slot + 1)
		if hasDeleted && s.deleted[id] {
			continue
		}
		for _, gr := range reads {
			g := &s.groups[gr.gi]
			pi, off := slot/g.rowsPer, slot%g.rowsPer
			if gr.pi != pi {
				_, rows, err := s.cache.getTuplesAt(s.pool, s.epoch, g.pages[pi])
				if err != nil {
					return err
				}
				gr.pi, gr.rows = pi, rows
			}
			if off >= len(gr.rows) {
				for _, cp := range gr.copies {
					scratch[cp.slot] = sheet.Empty()
				}
				continue
			}
			row := gr.rows[off]
			for _, cp := range gr.copies {
				scratch[cp.slot] = row[cp.offset]
			}
		}
		if !fn(id, scratch) {
			return nil
		}
	}
	return nil
}

// cloneZones copies a zone pointer slice; the pointed-to pageZones are
// immutable after construction, so sharing them is safe.
func cloneZones(zs []*pageZones) []*pageZones {
	if len(zs) == 0 {
		return nil
	}
	return append([]*pageZones(nil), zs...)
}

// cloneDeleted copies a tombstone set; nil and empty collapse to nil so the
// scan paths' hasDeleted check stays cheap.
func cloneDeleted(m map[RowID]bool) map[RowID]bool {
	if len(m) == 0 {
		return nil
	}
	out := make(map[RowID]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

var (
	_ Snapshotter = (*RowStore)(nil)
	_ Snapshotter = (*ColStore)(nil)
	_ Snapshotter = (*HybridStore)(nil)
)
