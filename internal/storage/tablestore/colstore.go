package tablestore

import (
	"fmt"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// ColStore stores each attribute in its own chain of blocks. Schema changes
// touch only the affected column's blocks, but tuple-granular operations
// (insert, full-row update, point read) touch one block per column. It is the
// other extreme the hybrid layout interpolates between.
//
// Rows occupy dense slots in insertion order; deletes are tombstones. RowID n
// lives at slot n-1.
type ColStore struct {
	pool      *pager.BufferPool
	cols      []colPages
	deleted   map[RowID]bool
	slotCount int
	nextID    RowID
	rowCount  int
	cache     decodedCache
}

type colPages struct {
	pages []pager.PageID
	zones []*pageZones // parallel to pages; nil entry = unknown
}

// NewColStore creates an empty column store with the given number of columns.
func NewColStore(pool *pager.BufferPool, columns int) *ColStore {
	return &ColStore{
		pool:    pool,
		cols:    make([]colPages, columns),
		deleted: make(map[RowID]bool),
		nextID:  1,
	}
}

// Layout implements Store.
func (s *ColStore) Layout() string { return "column" }

// ColumnCount implements Store.
func (s *ColStore) ColumnCount() int { return len(s.cols) }

// RowCount implements Store.
func (s *ColStore) RowCount() int { return s.rowCount }

// PageCount returns the total number of data blocks across all columns.
func (s *ColStore) PageCount() int {
	n := 0
	for _, c := range s.cols {
		n += len(c.pages)
	}
	return n
}

// readColPage decodes a private copy of a column page for the mutation
// paths, which edit the returned slice in place before writing it back.
func (s *ColStore) readColPage(col, pi int) ([]sheet.Value, error) {
	data, err := s.pool.Get(s.cols[col].pages[pi])
	if err != nil {
		return nil, err
	}
	return decodeColumn(data)
}

// readColPageShared returns the cached decoded page for the read-only paths;
// callers must not modify the returned slice.
func (s *ColStore) readColPageShared(col, pi int) ([]sheet.Value, error) {
	return s.cache.getColumn(s.pool, s.cols[col].pages[pi])
}

// writeColPage is the single choke point for column-page mutations: every
// rewrite re-encodes the page (v2 container) and replaces its zone summary.
func (s *ColStore) writeColPage(col, pi int, vals []sheet.Value) error {
	buf, pz := encodeColumnV2(vals)
	if err := s.pool.Put(s.cols[col].pages[pi], buf); err != nil {
		return err
	}
	s.cols[col].zones = setZone(s.cols[col].zones, pi, pz)
	return nil
}

func (s *ColStore) checkID(id RowID) error {
	if id == 0 || id >= s.nextID || s.deleted[id] {
		return fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	return nil
}

// Insert implements Store. One block per column is touched.
func (s *ColStore) Insert(row []sheet.Value) (RowID, error) {
	if err := checkWidth(row, len(s.cols)); err != nil {
		return 0, err
	}
	slot := s.slotCount
	pi := slot / valuesPerPage
	for c := range s.cols {
		if pi == len(s.cols[c].pages) {
			pid, err := s.pool.AllocatePage()
			if err != nil {
				return 0, err
			}
			s.cols[c].pages = append(s.cols[c].pages, pid)
		}
		vals, err := s.readColPage(c, pi)
		if err != nil {
			return 0, err
		}
		vals = append(vals, row[c])
		if err := s.writeColPage(c, pi, vals); err != nil {
			return 0, err
		}
	}
	id := s.nextID
	s.nextID++
	s.slotCount++
	s.rowCount++
	return id, nil
}

// Get implements Store.
func (s *ColStore) Get(id RowID) ([]sheet.Value, error) {
	if err := s.checkID(id); err != nil {
		return nil, err
	}
	slot := int(id - 1)
	pi, off := slot/valuesPerPage, slot%valuesPerPage
	row := make([]sheet.Value, len(s.cols))
	for c := range s.cols {
		vals, err := s.readColPageShared(c, pi)
		if err != nil {
			return nil, err
		}
		if off < len(vals) {
			row[c] = vals[off]
		}
	}
	return row, nil
}

// GetCols implements Store. Only the requested columns' blocks are read.
func (s *ColStore) GetCols(id RowID, cols []int) ([]sheet.Value, error) {
	if cols == nil {
		return s.Get(id)
	}
	if err := s.checkID(id); err != nil {
		return nil, err
	}
	slot := int(id - 1)
	pi, off := slot/valuesPerPage, slot%valuesPerPage
	out := make([]sheet.Value, len(cols))
	for j, c := range cols {
		if c < 0 || c >= len(s.cols) {
			return nil, fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
		vals, err := s.readColPageShared(c, pi)
		if err != nil {
			return nil, err
		}
		if off < len(vals) {
			out[j] = vals[off]
		}
	}
	return out, nil
}

// Update implements Store. One block per column is touched.
func (s *ColStore) Update(id RowID, row []sheet.Value) error {
	if err := checkWidth(row, len(s.cols)); err != nil {
		return err
	}
	if err := s.checkID(id); err != nil {
		return err
	}
	slot := int(id - 1)
	pi, off := slot/valuesPerPage, slot%valuesPerPage
	for c := range s.cols {
		vals, err := s.readColPage(c, pi)
		if err != nil {
			return err
		}
		if off >= len(vals) {
			return fmt.Errorf("%w: %d", ErrRowNotFound, id)
		}
		vals[off] = row[c]
		if err := s.writeColPage(c, pi, vals); err != nil {
			return err
		}
	}
	return nil
}

// UpdateColumn implements Store. Only the affected column's block is touched.
func (s *ColStore) UpdateColumn(id RowID, col int, v sheet.Value) error {
	if col < 0 || col >= len(s.cols) {
		return fmt.Errorf("%w: %d", ErrColumnRange, col)
	}
	if err := s.checkID(id); err != nil {
		return err
	}
	slot := int(id - 1)
	pi, off := slot/valuesPerPage, slot%valuesPerPage
	vals, err := s.readColPage(col, pi)
	if err != nil {
		return err
	}
	if off >= len(vals) {
		return fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	vals[off] = v
	return s.writeColPage(col, pi, vals)
}

// Delete implements Store (tombstone).
func (s *ColStore) Delete(id RowID) error {
	if err := s.checkID(id); err != nil {
		return err
	}
	s.deleted[id] = true
	s.rowCount--
	return nil
}

// Scan implements Store. Pages are visited chunk-wise so each block is read
// once per scan.
func (s *ColStore) Scan(fn func(id RowID, row []sheet.Value) bool) error {
	return s.ScanCols(nil, func(id RowID, row []sheet.Value) bool {
		return fn(id, cloneRow(row))
	})
}

// ScanColsStable implements Store: column layouts always assemble tuples in
// a reused scratch row.
func (s *ColStore) ScanColsStable([]int) bool { return false }

// ScanCols implements Store. Only the blocks of the requested columns are
// read — the pure-column layout prunes I/O at attribute granularity.
func (s *ColStore) ScanCols(cols []int, fn func(id RowID, row []sheet.Value) bool) error {
	want := cols
	if want == nil {
		want = make([]int, len(s.cols))
		for i := range want {
			want[i] = i
		}
	}
	for _, c := range want {
		if c < 0 || c >= len(s.cols) {
			return fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
	}
	scratch := make([]sheet.Value, len(want))
	chunk := make([][]sheet.Value, len(want))
	for base := 0; base < s.slotCount; base += valuesPerPage {
		pi := base / valuesPerPage
		for j, c := range want {
			vals, err := s.readColPageShared(c, pi)
			if err != nil {
				return err
			}
			chunk[j] = vals
		}
		limit := s.slotCount - base
		if limit > valuesPerPage {
			limit = valuesPerPage
		}
		hasDeleted := len(s.deleted) > 0
		for off := 0; off < limit; off++ {
			id := RowID(base + off + 1)
			if hasDeleted && s.deleted[id] {
				continue
			}
			for j := range want {
				if off < len(chunk[j]) {
					scratch[j] = chunk[j][off]
				} else {
					scratch[j] = sheet.Empty()
				}
			}
			if !fn(id, scratch) {
				return nil
			}
		}
	}
	return nil
}

// AddColumn implements Store. Only the new column's blocks are written; no
// existing block is touched.
func (s *ColStore) AddColumn(defaultValue sheet.Value) error {
	var cp colPages
	for base := 0; base < s.slotCount; base += valuesPerPage {
		limit := s.slotCount - base
		if limit > valuesPerPage {
			limit = valuesPerPage
		}
		vals := make([]sheet.Value, limit)
		for i := range vals {
			vals[i] = defaultValue
		}
		pid, err := s.pool.AllocatePage()
		if err != nil {
			return err
		}
		buf, pz := encodeColumnV2(vals)
		if err := s.pool.Put(pid, buf); err != nil {
			return err
		}
		cp.pages = append(cp.pages, pid)
		cp.zones = append(cp.zones, pz)
	}
	s.cols = append(s.cols, cp)
	return nil
}

// DropColumn implements Store. The column's blocks are freed; nothing else is
// touched.
func (s *ColStore) DropColumn(col int) error {
	if col < 0 || col >= len(s.cols) {
		return fmt.Errorf("%w: %d", ErrColumnRange, col)
	}
	for _, pid := range s.cols[col].pages {
		s.pool.Free(pid)
	}
	s.cols = append(s.cols[:col], s.cols[col+1:]...)
	return nil
}
