package tablestore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/dataspread/dataspread/internal/storage/pager"
)

// Store metadata persistence. A store's pages hold the tuples; its *meta* —
// page lists, row directory, counters, tombstones — lived only in memory
// until PR 4, which is why a reopened workbook had to rebuild tables by
// replaying DML history. MarshalMeta serialises that state compactly (page
// ids resolved through the BufferPool's forward map to their physical
// backend ids) and OpenStore reattaches a store to existing pages in
// O(meta), not O(history).
//
// Encodings are uvarint-based, one self-describing blob per store, with a
// per-layout version byte so formats can evolve independently.

const (
	rowMetaVersion    = 1
	colMetaVersion    = 1
	hybridMetaVersion = 1
)

type metaWriter struct{ buf []byte }

func (w *metaWriter) uint(v uint64) { w.buf = appendUvarint(w.buf, v) }
func (w *metaWriter) pages(pool *pager.BufferPool, ids []pager.PageID) {
	w.uint(uint64(len(ids)))
	for _, id := range ids {
		w.uint(uint64(pool.Resolve(id)))
	}
}

type metaReader struct {
	buf []byte
	pos int
	err error
}

func (r *metaReader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("tablestore: corrupt store meta at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *metaReader) count(what string) (int, bool) {
	n := r.uint()
	if r.err != nil {
		return 0, false
	}
	// A count can never exceed the remaining bytes (every element is at
	// least one byte); reject it before allocating.
	if n > uint64(len(r.buf)-r.pos) {
		r.err = fmt.Errorf("tablestore: implausible %s count %d in store meta", what, n)
		return 0, false
	}
	return int(n), true
}

func (r *metaReader) pageList() []pager.PageID {
	n, ok := r.count("page")
	if !ok {
		return nil
	}
	out := make([]pager.PageID, n)
	for i := range out {
		out[i] = pager.PageID(r.uint())
	}
	return out
}

func sortedRowIDs(m map[RowID]bool) []RowID {
	out := make([]RowID, 0, len(m))
	for id, dead := range m {
		if dead {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OpenStore attaches a store of the named layout to the pages its marshalled
// meta references. The pool must sit on the backend that owns those pages.
func OpenStore(pool *pager.BufferPool, layout string, meta []byte) (Store, error) {
	switch layout {
	case "row":
		return OpenRowStore(pool, meta)
	case "column":
		return OpenColStore(pool, meta)
	case "hybrid":
		return OpenHybridStore(pool, meta)
	default:
		return nil, fmt.Errorf("tablestore: unknown layout %q", layout)
	}
}

// --- RowStore ---

// MarshalMeta implements Store.
func (s *RowStore) MarshalMeta() []byte {
	w := &metaWriter{}
	w.uint(rowMetaVersion)
	w.uint(uint64(s.width))
	w.uint(uint64(s.nextID))
	w.uint(uint64(s.rowCount))
	w.uint(uint64(s.tailCount))
	w.pages(s.pool, s.pages)
	// The row directory, sorted by RowID for deterministic output.
	ids := make([]RowID, 0, len(s.dir))
	for id := range s.dir {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.uint(uint64(len(ids)))
	for _, id := range ids {
		w.uint(uint64(id))
		w.uint(uint64(s.dir[id]))
	}
	return w.buf
}

// OpenRowStore attaches a RowStore to existing pages.
func OpenRowStore(pool *pager.BufferPool, meta []byte) (*RowStore, error) {
	r := &metaReader{buf: meta}
	if v := r.uint(); r.err == nil && v != rowMetaVersion {
		return nil, fmt.Errorf("tablestore: unsupported row meta version %d", v)
	}
	s := &RowStore{
		pool:  pool,
		width: int(r.uint()),
	}
	s.nextID = RowID(r.uint())
	s.rowCount = int(r.uint())
	s.tailCount = int(r.uint())
	s.pages = r.pageList()
	n, ok := r.count("row-directory")
	if !ok {
		return nil, r.err
	}
	s.dir = make(map[RowID]int, n)
	for i := 0; i < n; i++ {
		id := RowID(r.uint())
		pi := int(r.uint())
		if r.err == nil && pi >= len(s.pages) {
			return nil, fmt.Errorf("tablestore: row %d maps to missing page index %d", id, pi)
		}
		s.dir[id] = pi
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// Pages implements Store.
func (s *RowStore) Pages() []pager.PageID { return resolveAll(s.pool, s.pages) }

// --- ColStore ---

// MarshalMeta implements Store.
func (s *ColStore) MarshalMeta() []byte {
	w := &metaWriter{}
	w.uint(colMetaVersion)
	w.uint(uint64(s.slotCount))
	w.uint(uint64(s.nextID))
	w.uint(uint64(s.rowCount))
	w.uint(uint64(len(s.cols)))
	for _, c := range s.cols {
		w.pages(s.pool, c.pages)
	}
	dead := sortedRowIDs(s.deleted)
	w.uint(uint64(len(dead)))
	for _, id := range dead {
		w.uint(uint64(id))
	}
	return w.buf
}

// OpenColStore attaches a ColStore to existing pages.
func OpenColStore(pool *pager.BufferPool, meta []byte) (*ColStore, error) {
	r := &metaReader{buf: meta}
	if v := r.uint(); r.err == nil && v != colMetaVersion {
		return nil, fmt.Errorf("tablestore: unsupported column meta version %d", v)
	}
	s := &ColStore{pool: pool, deleted: make(map[RowID]bool)}
	s.slotCount = int(r.uint())
	s.nextID = RowID(r.uint())
	s.rowCount = int(r.uint())
	ncols, ok := r.count("column")
	if !ok {
		return nil, r.err
	}
	s.cols = make([]colPages, ncols)
	for i := range s.cols {
		s.cols[i].pages = r.pageList()
	}
	ndead, ok := r.count("tombstone")
	if !ok {
		return nil, r.err
	}
	for i := 0; i < ndead; i++ {
		s.deleted[RowID(r.uint())] = true
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// Pages implements Store.
func (s *ColStore) Pages() []pager.PageID {
	var all []pager.PageID
	for _, c := range s.cols {
		all = append(all, c.pages...)
	}
	return resolveAll(s.pool, all)
}

// --- HybridStore ---

// MarshalMeta implements Store.
func (s *HybridStore) MarshalMeta() []byte {
	w := &metaWriter{}
	w.uint(hybridMetaVersion)
	w.uint(uint64(s.groupSize))
	w.uint(uint64(s.slotCount))
	w.uint(uint64(s.nextID))
	w.uint(uint64(s.rowCount))
	w.uint(uint64(len(s.groups)))
	for _, g := range s.groups {
		w.uint(uint64(g.width))
		w.uint(uint64(g.rowsPer))
		w.pages(s.pool, g.pages)
	}
	w.uint(uint64(len(s.colMap)))
	for _, loc := range s.colMap {
		w.uint(uint64(loc.group))
		w.uint(uint64(loc.offset))
	}
	dead := sortedRowIDs(s.deleted)
	w.uint(uint64(len(dead)))
	for _, id := range dead {
		w.uint(uint64(id))
	}
	return w.buf
}

// OpenHybridStore attaches a HybridStore to existing pages.
func OpenHybridStore(pool *pager.BufferPool, meta []byte) (*HybridStore, error) {
	r := &metaReader{buf: meta}
	if v := r.uint(); r.err == nil && v != hybridMetaVersion {
		return nil, fmt.Errorf("tablestore: unsupported hybrid meta version %d", v)
	}
	s := &HybridStore{pool: pool, deleted: make(map[RowID]bool)}
	s.groupSize = int(r.uint())
	s.slotCount = int(r.uint())
	s.nextID = RowID(r.uint())
	s.rowCount = int(r.uint())
	ngroups, ok := r.count("group")
	if !ok {
		return nil, r.err
	}
	s.groups = make([]attrGroup, ngroups)
	for i := range s.groups {
		s.groups[i].width = int(r.uint())
		s.groups[i].rowsPer = int(r.uint())
		if r.err == nil && s.groups[i].width > 0 && s.groups[i].rowsPer < 1 {
			return nil, fmt.Errorf("tablestore: group %d has invalid rowsPer", i)
		}
		s.groups[i].pages = r.pageList()
	}
	ncols, ok := r.count("column-map")
	if !ok {
		return nil, r.err
	}
	s.colMap = make([]colLocation, ncols)
	for i := range s.colMap {
		s.colMap[i].group = int(r.uint())
		s.colMap[i].offset = int(r.uint())
		if r.err == nil && s.colMap[i].group >= len(s.groups) {
			return nil, fmt.Errorf("tablestore: column %d maps to missing group %d", i, s.colMap[i].group)
		}
	}
	ndead, ok := r.count("tombstone")
	if !ok {
		return nil, r.err
	}
	for i := 0; i < ndead; i++ {
		s.deleted[RowID(r.uint())] = true
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// Pages implements Store.
func (s *HybridStore) Pages() []pager.PageID {
	var all []pager.PageID
	for _, g := range s.groups {
		all = append(all, g.pages...)
	}
	return resolveAll(s.pool, all)
}

func resolveAll(pool *pager.BufferPool, ids []pager.PageID) []pager.PageID {
	out := make([]pager.PageID, len(ids))
	for i, id := range ids {
		out[i] = pool.Resolve(id)
	}
	return out
}
