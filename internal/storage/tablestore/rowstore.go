package tablestore

import (
	"fmt"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// RowStore stores tuples in slotted pages, each page holding up to
// rowsPerPage complete tuples. This is the conventional layout of a row
// oriented relational engine: point operations touch a single block, but any
// schema change must rewrite every block of the table.
type RowStore struct {
	pool      *pager.BufferPool
	width     int
	pages     []pager.PageID
	zones     []*pageZones  // parallel to pages; nil entry = unknown
	dir       map[RowID]int // RowID -> index into pages
	tailCount int
	nextID    RowID
	rowCount  int
	cache     decodedCache
}

// NewRowStore creates an empty row store with the given number of columns.
func NewRowStore(pool *pager.BufferPool, columns int) *RowStore {
	return &RowStore{pool: pool, width: columns, dir: make(map[RowID]int), nextID: 1}
}

// Layout implements Store.
func (s *RowStore) Layout() string { return "row" }

// ColumnCount implements Store.
func (s *RowStore) ColumnCount() int { return s.width }

// RowCount implements Store.
func (s *RowStore) RowCount() int { return s.rowCount }

// PageCount returns the number of data blocks used by the table.
func (s *RowStore) PageCount() int { return len(s.pages) }

// readPage decodes a private copy of a page for the mutation paths, which
// edit the returned slices in place before writing them back.
func (s *RowStore) readPage(idx int) ([]RowID, [][]sheet.Value, error) {
	data, err := s.pool.Get(s.pages[idx])
	if err != nil {
		return nil, nil, err
	}
	return decodeTuples(data)
}

// readPageShared returns the cached decoded page for the read-only paths;
// callers must not modify the returned slices.
func (s *RowStore) readPageShared(idx int) ([]RowID, [][]sheet.Value, error) {
	return s.cache.getTuples(s.pool, s.pages[idx])
}

// writePage is the single choke point for page mutations: every rewrite
// re-encodes the page (v2 container) and replaces its zone summary, so the
// catalog is exact after any insert/update/delete/schema change.
func (s *RowStore) writePage(idx int, ids []RowID, rows [][]sheet.Value) error {
	buf, pz := encodeTuplesV2(ids, rows, s.width)
	if err := s.pool.Put(s.pages[idx], buf); err != nil {
		return err
	}
	s.zones = setZone(s.zones, idx, pz)
	return nil
}

// Insert implements Store.
func (s *RowStore) Insert(row []sheet.Value) (RowID, error) {
	if err := checkWidth(row, s.width); err != nil {
		return 0, err
	}
	if len(s.pages) == 0 || s.tailCount >= rowsPerPage {
		pid, err := s.pool.AllocatePage()
		if err != nil {
			return 0, err
		}
		s.pages = append(s.pages, pid)
		s.tailCount = 0
	}
	tail := len(s.pages) - 1
	ids, rows, err := s.readPage(tail)
	if err != nil {
		return 0, err
	}
	id := s.nextID
	s.nextID++
	ids = append(ids, id)
	rows = append(rows, cloneRow(row))
	if err := s.writePage(tail, ids, rows); err != nil {
		return 0, err
	}
	s.dir[id] = tail
	s.tailCount++
	s.rowCount++
	return id, nil
}

// Get implements Store.
func (s *RowStore) Get(id RowID) ([]sheet.Value, error) {
	pi, ok := s.dir[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	ids, rows, err := s.readPageShared(pi)
	if err != nil {
		return nil, err
	}
	for i, rid := range ids {
		if rid == id {
			return cloneRow(rows[i]), nil
		}
	}
	return nil, fmt.Errorf("%w: %d", ErrRowNotFound, id)
}

// GetCols implements Store. Row layouts decode the whole tuple regardless;
// the column subset only narrows what is copied out.
func (s *RowStore) GetCols(id RowID, cols []int) ([]sheet.Value, error) {
	if cols == nil {
		return s.Get(id)
	}
	for _, c := range cols {
		if c < 0 || c >= s.width {
			return nil, fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
	}
	pi, ok := s.dir[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	ids, rows, err := s.readPageShared(pi)
	if err != nil {
		return nil, err
	}
	for i, rid := range ids {
		if rid != id {
			continue
		}
		row := rows[i]
		out := make([]sheet.Value, len(cols))
		for j, c := range cols {
			if c < len(row) {
				out[j] = row[c]
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrRowNotFound, id)
}

// Update implements Store.
func (s *RowStore) Update(id RowID, row []sheet.Value) error {
	if err := checkWidth(row, s.width); err != nil {
		return err
	}
	pi, ok := s.dir[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	ids, rows, err := s.readPage(pi)
	if err != nil {
		return err
	}
	for i, rid := range ids {
		if rid == id {
			rows[i] = cloneRow(row)
			return s.writePage(pi, ids, rows)
		}
	}
	return fmt.Errorf("%w: %d", ErrRowNotFound, id)
}

// UpdateColumn implements Store.
func (s *RowStore) UpdateColumn(id RowID, col int, v sheet.Value) error {
	if col < 0 || col >= s.width {
		return fmt.Errorf("%w: %d", ErrColumnRange, col)
	}
	pi, ok := s.dir[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	ids, rows, err := s.readPage(pi)
	if err != nil {
		return err
	}
	for i, rid := range ids {
		if rid == id {
			rows[i][col] = v
			return s.writePage(pi, ids, rows)
		}
	}
	return fmt.Errorf("%w: %d", ErrRowNotFound, id)
}

// Delete implements Store.
func (s *RowStore) Delete(id RowID) error {
	pi, ok := s.dir[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrRowNotFound, id)
	}
	ids, rows, err := s.readPage(pi)
	if err != nil {
		return err
	}
	for i, rid := range ids {
		if rid == id {
			ids = append(ids[:i], ids[i+1:]...)
			rows = append(rows[:i], rows[i+1:]...)
			if err := s.writePage(pi, ids, rows); err != nil {
				return err
			}
			delete(s.dir, id)
			s.rowCount--
			if pi == len(s.pages)-1 && s.tailCount > 0 {
				s.tailCount--
			}
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrRowNotFound, id)
}

// Scan implements Store.
func (s *RowStore) Scan(fn func(id RowID, row []sheet.Value) bool) error {
	return s.ScanCols(nil, func(id RowID, row []sheet.Value) bool {
		return fn(id, cloneRow(row))
	})
}

// ScanColsStable implements Store: full-width scans hand out the decoded
// page rows themselves.
func (s *RowStore) ScanColsStable(cols []int) bool { return cols == nil }

// ScanCols implements Store. Row layouts decode whole tuples regardless, so
// the column subset only narrows what is copied into the scratch row.
func (s *RowStore) ScanCols(cols []int, fn func(id RowID, row []sheet.Value) bool) error {
	for _, c := range cols {
		if c < 0 || c >= s.width {
			return fmt.Errorf("%w: %d", ErrColumnRange, c)
		}
	}
	var scratch []sheet.Value
	if cols != nil {
		scratch = make([]sheet.Value, len(cols))
	}
	for pi := range s.pages {
		ids, rows, err := s.readPageShared(pi)
		if err != nil {
			return err
		}
		for i, id := range ids {
			row := rows[i]
			if cols != nil {
				for j, c := range cols {
					if c < len(row) {
						scratch[j] = row[c]
					} else {
						scratch[j] = sheet.Empty()
					}
				}
				row = scratch
			}
			if !fn(id, row) {
				return nil
			}
		}
	}
	return nil
}

// AddColumn implements Store. Every page of the table is rewritten — the
// cost the hybrid layout avoids.
func (s *RowStore) AddColumn(defaultValue sheet.Value) error {
	s.width++
	for pi := range s.pages {
		ids, rows, err := s.readPage(pi)
		if err != nil {
			return err
		}
		for i := range rows {
			rows[i] = append(rows[i], defaultValue)
		}
		if err := s.writePage(pi, ids, rows); err != nil {
			return err
		}
	}
	return nil
}

// DropColumn implements Store. Every page of the table is rewritten.
func (s *RowStore) DropColumn(col int) error {
	if col < 0 || col >= s.width {
		return fmt.Errorf("%w: %d", ErrColumnRange, col)
	}
	s.width--
	for pi := range s.pages {
		ids, rows, err := s.readPage(pi)
		if err != nil {
			return err
		}
		for i := range rows {
			rows[i] = append(rows[i][:col], rows[i][col+1:]...)
		}
		if err := s.writePage(pi, ids, rows); err != nil {
			return err
		}
	}
	return nil
}
