// Package tablestore implements the relational storage manager. Three
// physical layouts are provided behind one interface:
//
//   - RowStore: classic N-ary (slotted-page) row storage. Tuple operations
//     touch one block; a schema change rewrites every block.
//   - ColStore: pure column storage. A schema change touches only the new
//     column's blocks, but a tuple insert or full-row update touches one
//     block per column.
//   - HybridStore: the paper's design — columns are organised into
//     attribute groups, each group stored together. Schema changes add a new
//     group (touching only the new column's blocks, like a column store)
//     while tuple operations touch one block per group (close to a row
//     store). This is what makes "schema change … almost as efficient as
//     changes to tuples" (paper §2.2) while keeping tuple updates cheap.
//
// All layouts persist through a pager.BufferPool so experiments can compare
// block-touch counts (experiment A1).
package tablestore

import (
	"errors"
	"fmt"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// RowID identifies a tuple within a table store. RowIDs are assigned by
// Insert, start at 1, and are never reused.
//
// dslint:row
type RowID uint64

// ErrRowNotFound is returned for operations on missing or deleted rows.
var ErrRowNotFound = errors.New("tablestore: row not found")

// ErrColumnRange is returned when a column index is out of range.
var ErrColumnRange = errors.New("tablestore: column index out of range")

// Store is the interface shared by all physical layouts. Implementations are
// not safe for concurrent mutation; the database layer serialises access.
type Store interface {
	// Insert appends a tuple and returns its RowID. The tuple must have
	// exactly ColumnCount values.
	Insert(row []sheet.Value) (RowID, error)
	// Get returns a copy of the tuple.
	Get(id RowID) ([]sheet.Value, error)
	// GetCols returns a copy of the tuple materializing only the columns
	// listed in cols (nil means all columns, in schema order): row[i] holds
	// the value of column cols[i]. Layouts that store columns apart —
	// ColStore, HybridStore — only page in blocks that hold a requested
	// column, which is what makes index scans cheap: the access-path layer
	// fetches candidate rows by RowID with exactly the referenced columns.
	GetCols(id RowID, cols []int) ([]sheet.Value, error)
	// Update replaces the tuple. The tuple must have ColumnCount values.
	Update(id RowID, row []sheet.Value) error
	// UpdateColumn replaces a single attribute of the tuple.
	UpdateColumn(id RowID, col int, v sheet.Value) error
	// Delete removes the tuple.
	Delete(id RowID) error
	// Scan calls fn for every live tuple in RowID order; it stops early if
	// fn returns false. The row passed to fn is owned by the caller.
	// dslint:perrow
	Scan(fn func(id RowID, row []sheet.Value) bool) error
	// ScanCols is the streaming scan used by the query executor: fn is
	// called for every live tuple in RowID order, materializing only the
	// columns listed in cols (nil means all columns, in schema order), so
	// layouts that store columns apart — ColStore, HybridStore — never page
	// in blocks of unreferenced columns. row[i] holds the value of column
	// cols[i]. Unless ScanColsStable(cols) reports true, the row slice is
	// reused between calls: fn must copy any value it retains. fn must
	// never modify the slice contents.
	// dslint:perrow
	ScanCols(cols []int, fn func(id RowID, row []sheet.Value) bool) error
	// ScanColsStable reports whether the rows a ScanCols(cols, ...) call
	// passes to fn remain valid after fn returns — they alias immutable
	// decoded page snapshots rather than a reused scratch buffer — letting
	// callers retain them without a copy.
	ScanColsStable(cols []int) bool
	// AddColumn appends an attribute to the schema, backfilling existing
	// tuples with the default value.
	AddColumn(defaultValue sheet.Value) error
	// DropColumn removes the attribute at index col.
	DropColumn(col int) error
	// ColumnCount returns the current number of attributes.
	ColumnCount() int
	// RowCount returns the number of live tuples.
	RowCount() int
	// Layout returns a short name of the physical layout ("row",
	// "column", "hybrid") for diagnostics and experiments.
	Layout() string
	// MarshalMeta serialises the store's page directory — page lists,
	// counters, tombstones — with page ids resolved to their physical
	// backend ids. OpenStore(pool, Layout(), meta) attaches a store to the
	// same pages without replaying any history (meta.go).
	MarshalMeta() []byte
	// Pages returns the physical backend pages the store currently
	// references, for checkpoint reachability and protection sets.
	Pages() []pager.PageID
}

// rowsPerPage / valuesPerPage control how many entries are packed per block.
// They approximate PageSize for typical numeric tuples; the pager charges
// oversized blocks as multiple writes so wide text rows are still accounted
// for.
const (
	rowsPerPage   = 64
	valuesPerPage = 512
)

// checkWidth validates tuple width against the schema.
func checkWidth(row []sheet.Value, want int) error {
	if len(row) != want {
		return fmt.Errorf("tablestore: tuple has %d values, schema has %d columns", len(row), want)
	}
	return nil
}
