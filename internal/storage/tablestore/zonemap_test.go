package tablestore

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

// valuesEqual compares two values bit-exactly: NaN equals NaN, -0 is
// distinguished from +0, and every other kind compares by payload.
func valuesEqual(a, b sheet.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case sheet.KindNumber:
		return math.Float64bits(a.Num) == math.Float64bits(b.Num)
	case sheet.KindString:
		return a.Str == b.Str
	case sheet.KindBool:
		return a.Bool == b.Bool
	case sheet.KindError:
		return a.Err == b.Err
	}
	return true
}

// edgeValues is the pool of codec-hostile values: float specials, integral
// extremes around the delta-encoding cutoff, coercible and long strings.
func edgeValues() []sheet.Value {
	long := ""
	for i := 0; i < 40; i++ {
		long += "x"
	}
	return []sheet.Value{
		sheet.Empty(),
		sheet.Number(0),
		sheet.Number(math.Copysign(0, -1)),
		sheet.Number(1),
		sheet.Number(-5.5),
		sheet.Number(1e300),
		sheet.Number(math.NaN()),
		sheet.Number(math.Inf(1)),
		sheet.Number(math.Inf(-1)),
		sheet.Number(1 << 53),
		sheet.Number(-(1 << 53)),
		sheet.Number((1 << 53) - 1),
		sheet.String_(""),
		sheet.String_("abc"),
		sheet.String_("5"),
		sheet.String_("nan"),
		sheet.String_("ZEBRA"),
		sheet.String_(long),
		sheet.Bool_(true),
		sheet.Bool_(false),
		sheet.ErrorValue("#DIV/0!"),
	}
}

// TestTupleV2RoundTrip seals tuple pages of codec-hostile values and checks
// the dual-path decoder restores ids and every value bit-exactly.
func TestTupleV2RoundTrip(t *testing.T) {
	pool := edgeValues()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		width := 1 + rng.Intn(5)
		ids := make([]RowID, n)
		rows := make([][]sheet.Value, n)
		next := RowID(1 + rng.Intn(10))
		for i := range ids {
			ids[i] = next
			next += RowID(1 + rng.Intn(5))
			rows[i] = make([]sheet.Value, width)
			for c := range rows[i] {
				rows[i][c] = pool[rng.Intn(len(pool))]
			}
		}
		buf, pz := encodeTuplesV2(ids, rows, width)
		if len(pz.cols) != width {
			t.Fatalf("trial %d: %d zone columns, want %d", trial, len(pz.cols), width)
		}
		gotIDs, gotRows, err := decodeTuples(buf)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(gotIDs) != n {
			t.Fatalf("trial %d: %d rows back, want %d", trial, len(gotIDs), n)
		}
		for i := range ids {
			if gotIDs[i] != ids[i] {
				t.Fatalf("trial %d row %d: id %d, want %d", trial, i, gotIDs[i], ids[i])
			}
			for c := 0; c < width; c++ {
				if !valuesEqual(gotRows[i][c], rows[i][c]) {
					t.Fatalf("trial %d row %d col %d: %v, want %v", trial, i, c, gotRows[i][c], rows[i][c])
				}
				if !pz.cols[c].covers(rows[i][c]) {
					t.Fatalf("trial %d row %d col %d: zone does not cover %v", trial, i, c, rows[i][c])
				}
			}
		}
	}
}

// TestTupleV2ShortRows: rows narrower than the page width must round-trip
// with Empty padding, and the padding must be covered by the zones.
func TestTupleV2ShortRows(t *testing.T) {
	ids := []RowID{3, 9}
	rows := [][]sheet.Value{
		{sheet.Number(1)},
		{sheet.Number(2), sheet.String_("b"), sheet.Number(3)},
	}
	buf, pz := encodeTuplesV2(ids, rows, 3)
	_, got, err := decodeTuples(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !valuesEqual(got[0][1], sheet.Empty()) || !valuesEqual(got[0][2], sheet.Empty()) {
		t.Fatalf("short row not Empty-padded: %v", got[0])
	}
	if !pz.cols[1].HasEmpty || !pz.cols[2].HasEmpty {
		t.Fatal("zone of a padded column must record HasEmpty")
	}
}

// TestColumnV2VectorEncodings drives each vector codec — delta (clustered
// integers, with and without NULL holes), dictionary (low-NDV text) and the
// plain fallback — through a full round trip.
func TestColumnV2VectorEncodings(t *testing.T) {
	cases := map[string][]sheet.Value{}

	clustered := make([]sheet.Value, valuesPerPage)
	for i := range clustered {
		clustered[i] = sheet.Number(float64(1000 + i))
	}
	cases["delta"] = clustered

	holes := append([]sheet.Value(nil), clustered...)
	for i := 0; i < len(holes); i += 7 {
		holes[i] = sheet.Empty()
	}
	cases["delta-with-nulls"] = holes

	dict := make([]sheet.Value, valuesPerPage)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := range dict {
		dict[i] = sheet.String_(words[i%len(words)])
	}
	cases["dict"] = dict

	mixed := make([]sheet.Value, 100)
	pool := edgeValues()
	for i := range mixed {
		mixed[i] = pool[i%len(pool)]
	}
	cases["plain"] = mixed

	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			buf, pz := encodeColumnV2(vals)
			got, err := decodeColumn(buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(vals) {
				t.Fatalf("%d values back, want %d", len(got), len(vals))
			}
			for i := range vals {
				if !valuesEqual(got[i], vals[i]) {
					t.Fatalf("value %d: %v, want %v", i, got[i], vals[i])
				}
				if !pz.cols[0].covers(vals[i]) {
					t.Fatalf("zone does not cover value %d (%v)", i, vals[i])
				}
			}
		})
	}

	// The compressed encodings must actually be smaller than the legacy
	// per-value codec for their target shapes.
	for _, name := range []string{"delta", "dict"} {
		v2, _ := encodeColumnV2(cases[name])
		legacy := encodeColumn(cases[name])
		if len(v2) >= len(legacy) {
			t.Errorf("%s page: v2 %d bytes >= legacy %d bytes", name, len(v2), len(legacy))
		}
	}
}

// TestLegacyPagesStillDecode: pages written by the pre-v2 codec must decode
// through the same entry points (mixed-format files after an upgrade).
func TestLegacyPagesStillDecode(t *testing.T) {
	ids := []RowID{1, 2, 5}
	rows := [][]sheet.Value{
		{sheet.Number(1), sheet.String_("a")},
		{sheet.Number(2), sheet.Empty()},
		{sheet.Number(3), sheet.Bool_(true)},
	}
	gotIDs, gotRows, err := decodeTuples(encodeTuples(ids, rows, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 3 || gotIDs[2] != 5 || !valuesEqual(gotRows[2][1], sheet.Bool_(true)) {
		t.Fatalf("legacy tuple page mis-decoded: %v %v", gotIDs, gotRows)
	}
	vals := []sheet.Value{sheet.Number(7), sheet.String_("x")}
	got, err := decodeColumn(encodeColumn(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !valuesEqual(got[0], sheet.Number(7)) {
		t.Fatalf("legacy column page mis-decoded: %v", got)
	}
}

// TestV2RejectsCorruption: flipped bits anywhere in a sealed v2 page must
// fail the CRC (or, for legacy-coincidence bytes, the legacy decoder) rather
// than decode silently wrong.
func TestV2RejectsCorruption(t *testing.T) {
	vals := make([]sheet.Value, 100)
	for i := range vals {
		vals[i] = sheet.Number(float64(i))
	}
	buf, _ := encodeColumnV2(vals)
	for pos := 0; pos < len(buf); pos += 3 {
		corrupt := append([]byte(nil), buf...)
		corrupt[pos] ^= 0x10
		got, err := decodeColumn(corrupt)
		if err != nil {
			continue
		}
		// A flip that still decodes must have produced the same values (the
		// flip landed in a byte both decoders ignore — there are none today,
		// but the invariant we need is only "never silently wrong").
		if len(got) != len(vals) {
			t.Fatalf("flip@%d: decoded %d values from corrupt page", pos, len(got))
		}
		for i := range vals {
			if !valuesEqual(got[i], vals[i]) {
				t.Fatalf("flip@%d: silently wrong value %d: %v", pos, i, got[i])
			}
		}
	}
}

// modelMatches replicates the executor's bound-predicate semantics
// (evalBoundPredicate + sheet.Value.Compare): NULL never matches, equality
// coerces via AsNumber (booleans as 0/1), range comparisons rank NaN equal to
// every number and strings/bools/errors above every number.
func modelMatches(v sheet.Value, op string, c float64) bool {
	if v.Kind == sheet.KindEmpty {
		return false
	}
	if op == "=" {
		var f float64
		switch v.Kind {
		case sheet.KindNumber:
			f = v.Num
		case sheet.KindBool:
			if v.Bool {
				f = 1
			}
		case sheet.KindString:
			var ok bool
			if f, ok = v.AsNumber(); !ok {
				return false
			}
		default:
			return false
		}
		return f == c
	}
	var cmp int
	switch {
	case v.Kind == sheet.KindNumber && math.IsNaN(v.Num):
		cmp = 0
	case v.Kind == sheet.KindNumber:
		switch {
		case v.Num < c:
			cmp = -1
		case v.Num > c:
			cmp = 1
		}
	default:
		cmp = 1 // strings, bools, errors rank above every number
	}
	switch op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	return false
}

// TestZoneSkipsSoundness is the core safety property: whenever a zone claims
// a page is skippable for a bound, no value the page stores may satisfy that
// bound under the engine's comparison semantics.
func TestZoneSkipsSoundness(t *testing.T) {
	pool := edgeValues()
	consts := []float64{-10, -5.5, math.Copysign(0, -1), 0, 0.5, 1, 2, 1e300, math.Inf(1), math.Inf(-1), 1 << 53}
	ops := []string{"=", "<", "<=", ">", ">="}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		vals := make([]sheet.Value, n)
		for i := range vals {
			vals[i] = pool[rng.Intn(len(pool))]
		}
		z := zoneOf(vals)
		for i := range vals {
			if !z.covers(vals[i]) {
				t.Fatalf("trial %d: zone does not cover %v", trial, vals[i])
			}
		}
		for _, op := range ops {
			for _, c := range consts {
				if !z.skips(op, c) {
					continue
				}
				for _, v := range vals {
					if modelMatches(v, op, c) {
						t.Fatalf("trial %d: zone skips %q %v but value %v matches (vals %v)",
							trial, op, c, v, vals)
					}
				}
			}
		}
		// An in-list bound skips only when every member would skip.
		b := ZoneBound{Op: "in", Vals: []float64{consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]}}
		if z.Skips(b) {
			for _, v := range vals {
				for _, c := range b.Vals {
					if modelMatches(v, "=", c) {
						t.Fatalf("trial %d: in-list skip dropped matching value %v = %v", trial, v, c)
					}
				}
			}
		}
	}
	// A NaN bound (col = 'nan') must never skip: string rows "nan" still
	// match by case-insensitive equality even though the coercion is NaN.
	z := zoneOf([]sheet.Value{sheet.String_("NaN")})
	if z.skips("=", math.NaN()) {
		t.Fatal("NaN bound skipped a page holding the string \"NaN\"")
	}
}

// TestIntervalMath pins the partition arithmetic the pruned scans are built
// on: skip-run construction, union, complement, splitting and page counting.
func TestIntervalMath(t *testing.T) {
	// Pages of 10 units over 95 total; pages 1, 2 and 6 skippable.
	skip := skipIntervalsFor(10, 10, 95, func(pi int) bool { return pi == 1 || pi == 2 || pi == 6 })
	want := []Partition{{Lo: 10, Hi: 30}, {Lo: 60, Hi: 70}}
	if fmt.Sprint(skip) != fmt.Sprint(want) {
		t.Fatalf("skipIntervalsFor = %v, want %v", skip, want)
	}
	u := unionParts(skip, []Partition{{Lo: 25, Hi: 40}, {Lo: 90, Hi: 95}})
	wantU := []Partition{{Lo: 10, Hi: 40}, {Lo: 60, Hi: 70}, {Lo: 90, Hi: 95}}
	if fmt.Sprint(u) != fmt.Sprint(wantU) {
		t.Fatalf("unionParts = %v, want %v", u, wantU)
	}
	kept := complementParts(95, u)
	wantK := []Partition{{Lo: 0, Hi: 10}, {Lo: 40, Hi: 60}, {Lo: 70, Hi: 90}}
	if fmt.Sprint(kept) != fmt.Sprint(wantK) {
		t.Fatalf("complementParts = %v, want %v", kept, wantK)
	}
	total := 0
	for _, p := range splitRuns(kept, 4) {
		if p.Hi <= p.Lo {
			t.Fatalf("splitRuns produced empty partition %v", p)
		}
		total += p.Hi - p.Lo
	}
	if total != 50 {
		t.Fatalf("splitRuns covers %d units, want 50", total)
	}
	// Kept runs touch pages 0, 4, 5, 7 and 8.
	if got := overlapCount(kept, 10, 10); got != 5 {
		t.Fatalf("overlapCount = %d, want 5", got)
	}
}
