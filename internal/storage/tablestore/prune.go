package tablestore

import (
	"fmt"

	"github.com/dataspread/dataspread/internal/sheet"
)

// Page-level data skipping. Pruner and PrunedSnap are optional capabilities
// — deliberately separate from Store and TableSnap, mirroring Snapshotter —
// that the executor type-asserts; absence (a fake, a store without zone
// maps) degrades to reading every page, never to wrong results. A skip is
// taken only when a page's zone summary PROVES no stored value can satisfy a
// pushed conjunct, so pruned and unpruned scans are row-for-row identical.

// Pruner is the store-level skipping capability, served under the engine
// lock like any other Store call.
type Pruner interface {
	// PruneStats reports how many physical pages a ScanCols over cols
	// (nil = all columns) would touch, and how many of those the given
	// bounds prove skippable. Used by EXPLAIN and the benchmarks.
	PruneStats(cols []int, bounds []ZoneBound) (total, skipped int)
	// GetColsPruned is GetCols that first consults the zone maps of the
	// page(s) holding id: when a bound proves the row cannot match, it
	// reports skipped=true without paging in or decoding anything.
	GetColsPruned(id RowID, cols []int, bounds []ZoneBound) (row []sheet.Value, skipped bool, err error)
}

// PrunedSnap is the snapshot-level skipping capability: Partitions with the
// skippable page ranges already removed, so parallel workers never see them.
type PrunedSnap interface {
	// PartitionsPruned is Partitions(n) minus the ranges the bounds prove
	// empty of matches. cols (nil = all) names the columns the scan will
	// read, for page accounting only. Returns the partitions plus the
	// physical page counts the pruned scan will read and has skipped.
	PartitionsPruned(n int, cols []int, bounds []ZoneBound) (parts []Partition, pagesRead, pagesSkipped int)
}

// --- row layout (page-index space) ---

// rowPageSkips reports whether any bound proves page pi matchless.
func rowPageSkips(zones []*pageZones, pi int, bounds []ZoneBound) bool {
	if pi >= len(zones) || zones[pi] == nil {
		return false
	}
	pz := zones[pi]
	for i := range bounds {
		b := &bounds[i]
		if b.Col >= 0 && b.Col < len(pz.cols) && pz.cols[b.Col].Skips(*b) {
			return true
		}
	}
	return false
}

func rowKeptPages(zones []*pageZones, nPages int, bounds []ZoneBound) []Partition {
	skip := skipIntervalsFor(nPages, 1, nPages, func(pi int) bool {
		return rowPageSkips(zones, pi, bounds)
	})
	return complementParts(nPages, skip)
}

// PruneStats implements Pruner.
func (s *RowStore) PruneStats(cols []int, bounds []ZoneBound) (total, skipped int) {
	total = len(s.pages)
	if len(bounds) == 0 {
		return total, 0
	}
	kept := rowKeptPages(s.zones, total, bounds)
	read := 0
	for _, p := range kept {
		read += p.Hi - p.Lo
	}
	return total, total - read
}

// GetColsPruned implements Pruner.
func (s *RowStore) GetColsPruned(id RowID, cols []int, bounds []ZoneBound) ([]sheet.Value, bool, error) {
	if pi, ok := s.dir[id]; ok && rowPageSkips(s.zones, pi, bounds) {
		return nil, true, nil
	}
	row, err := s.GetCols(id, cols)
	return row, false, err
}

// PartitionsPruned implements PrunedSnap. Row partitions are page indexes,
// so kept runs translate directly.
func (s *rowSnap) PartitionsPruned(n int, cols []int, bounds []ZoneBound) ([]Partition, int, int) {
	kept := rowKeptPages(s.zones, len(s.pages), bounds)
	read := 0
	for _, p := range kept {
		read += p.Hi - p.Lo
	}
	return splitRuns(kept, n), read, len(s.pages) - read
}

// --- column layout (slot space, uniform valuesPerPage granularity) ---

// colChunkSkips reports whether any bound proves slot chunk ci matchless.
func colChunkSkips(cols []colPages, ci int, bounds []ZoneBound) bool {
	for i := range bounds {
		b := &bounds[i]
		if b.Col < 0 || b.Col >= len(cols) {
			continue
		}
		zs := cols[b.Col].zones
		if ci < len(zs) && zs[ci] != nil && len(zs[ci].cols) == 1 && zs[ci].cols[0].Skips(*b) {
			return true
		}
	}
	return false
}

func colKeptRuns(cols []colPages, slotCount int, bounds []ZoneBound) []Partition {
	nChunks := (slotCount + valuesPerPage - 1) / valuesPerPage
	skip := skipIntervalsFor(nChunks, valuesPerPage, slotCount, func(ci int) bool {
		return colChunkSkips(cols, ci, bounds)
	})
	return complementParts(slotCount, skip)
}

// colPageStats converts kept slot runs into physical page counts over the
// wanted columns.
func colPageStats(kept []Partition, slotCount, wantCols int) (total, read int) {
	nChunks := (slotCount + valuesPerPage - 1) / valuesPerPage
	readChunks := overlapCount(kept, valuesPerPage, nChunks)
	return nChunks * wantCols, readChunks * wantCols
}

// PruneStats implements Pruner.
func (s *ColStore) PruneStats(cols []int, bounds []ZoneBound) (total, skipped int) {
	want := len(cols)
	if cols == nil {
		want = len(s.cols)
	}
	if len(bounds) == 0 {
		nChunks := (s.slotCount + valuesPerPage - 1) / valuesPerPage
		return nChunks * want, 0
	}
	kept := colKeptRuns(s.cols, s.slotCount, bounds)
	total, read := colPageStats(kept, s.slotCount, want)
	return total, total - read
}

// GetColsPruned implements Pruner.
func (s *ColStore) GetColsPruned(id RowID, cols []int, bounds []ZoneBound) ([]sheet.Value, bool, error) {
	if id > 0 && id < s.nextID {
		if ci := int(id-1) / valuesPerPage; colChunkSkips(s.cols, ci, bounds) {
			return nil, true, nil
		}
	}
	row, err := s.GetCols(id, cols)
	return row, false, err
}

// PartitionsPruned implements PrunedSnap.
func (s *colSnap) PartitionsPruned(n int, cols []int, bounds []ZoneBound) ([]Partition, int, int) {
	want := len(cols)
	if cols == nil {
		want = len(s.cols)
	}
	kept := colKeptRuns(s.cols, s.slotCount, bounds)
	total, read := colPageStats(kept, s.slotCount, want)
	return splitRuns(kept, n), read, total - read
}

// --- hybrid layout (slot space, per-group granularity) ---

// hybridSkipRuns unions each bound's skippable slot intervals; bounds land
// on different groups with different rows-per-page, so intervals are
// computed per bound and merged.
func hybridSkipRuns(groups []attrGroup, colMap []colLocation, slotCount int, bounds []ZoneBound) []Partition {
	var skip []Partition
	for i := range bounds {
		b := &bounds[i]
		if b.Col < 0 || b.Col >= len(colMap) {
			continue
		}
		loc := colMap[b.Col]
		g := &groups[loc.group]
		if g.width == 0 || g.rowsPer <= 0 {
			continue
		}
		cur := skipIntervalsFor(len(g.zones), g.rowsPer, slotCount, func(pi int) bool {
			pz := g.zones[pi]
			return pz != nil && loc.offset < len(pz.cols) && pz.cols[loc.offset].Skips(*b)
		})
		skip = unionParts(skip, cur)
	}
	return skip
}

// hybridPageStats accumulates page counts over the distinct groups serving
// the wanted columns.
func hybridPageStats(groups []attrGroup, colMap []colLocation, kept []Partition, slotCount int, cols []int) (total, read int) {
	wantGroups := make(map[int]bool)
	if cols == nil {
		for _, loc := range colMap {
			wantGroups[loc.group] = true
		}
	} else {
		for _, c := range cols {
			if c >= 0 && c < len(colMap) {
				wantGroups[colMap[c].group] = true
			}
		}
	}
	for gi := range wantGroups {
		g := &groups[gi]
		if g.width == 0 || g.rowsPer <= 0 {
			continue
		}
		n := (slotCount + g.rowsPer - 1) / g.rowsPer
		if n > len(g.pages) {
			n = len(g.pages)
		}
		total += n
		read += overlapCount(kept, g.rowsPer, n)
	}
	return total, read
}

// PruneStats implements Pruner.
func (s *HybridStore) PruneStats(cols []int, bounds []ZoneBound) (total, skipped int) {
	var kept []Partition
	if len(bounds) == 0 {
		kept = complementParts(s.slotCount, nil)
	} else {
		kept = complementParts(s.slotCount, hybridSkipRuns(s.groups, s.colMap, s.slotCount, bounds))
	}
	total, read := hybridPageStats(s.groups, s.colMap, kept, s.slotCount, cols)
	return total, total - read
}

// GetColsPruned implements Pruner.
func (s *HybridStore) GetColsPruned(id RowID, cols []int, bounds []ZoneBound) ([]sheet.Value, bool, error) {
	if id > 0 && id < s.nextID {
		slot := int(id - 1)
		for i := range bounds {
			b := &bounds[i]
			if b.Col < 0 || b.Col >= len(s.colMap) {
				continue
			}
			loc := s.colMap[b.Col]
			g := &s.groups[loc.group]
			if g.width == 0 || g.rowsPer <= 0 {
				continue
			}
			pi := slot / g.rowsPer
			if pi < len(g.zones) && g.zones[pi] != nil && loc.offset < len(g.zones[pi].cols) &&
				g.zones[pi].cols[loc.offset].Skips(*b) {
				return nil, true, nil
			}
		}
	}
	row, err := s.GetCols(id, cols)
	return row, false, err
}

// PartitionsPruned implements PrunedSnap.
func (s *hybridSnap) PartitionsPruned(n int, cols []int, bounds []ZoneBound) ([]Partition, int, int) {
	kept := complementParts(s.slotCount, hybridSkipRuns(s.groups, s.colMap, s.slotCount, bounds))
	total, read := hybridPageStats(s.groups, s.colMap, kept, s.slotCount, cols)
	return splitRuns(kept, n), read, total - read
}

// --- zone validation (fuzz/test support) ---

// ValidateZones re-decodes every summarised page and checks that its catalog
// zone covers every stored value — the invariant that makes skipping safe.
func (s *RowStore) ValidateZones() error {
	for pi := range s.pages {
		if pi >= len(s.zones) || s.zones[pi] == nil {
			continue
		}
		_, rows, err := s.readPage(pi)
		if err != nil {
			return err
		}
		if err := validateTuplZones(s.zones[pi], rows, s.width, "row", pi); err != nil {
			return err
		}
	}
	return nil
}

// ValidateZones re-decodes every summarised column page (see RowStore).
func (s *ColStore) ValidateZones() error {
	for c := range s.cols {
		for pi := range s.cols[c].pages {
			zs := s.cols[c].zones
			if pi >= len(zs) || zs[pi] == nil {
				continue
			}
			vals, err := s.readColPage(c, pi)
			if err != nil {
				return err
			}
			if len(zs[pi].cols) != 1 {
				return fmt.Errorf("tablestore: column %d page %d zone has %d columns", c, pi, len(zs[pi].cols))
			}
			z := &zs[pi].cols[0]
			for off, v := range vals {
				if !z.covers(v) {
					return fmt.Errorf("tablestore: column %d page %d slot %d: zone does not cover %v", c, pi, off, v)
				}
			}
		}
	}
	return nil
}

// ValidateZones re-decodes every summarised group page (see RowStore).
func (s *HybridStore) ValidateZones() error {
	for gi := range s.groups {
		g := &s.groups[gi]
		for pi := range g.pages {
			if pi >= len(g.zones) || g.zones[pi] == nil {
				continue
			}
			_, rows, err := s.readGroupPage(gi, pi)
			if err != nil {
				return err
			}
			if err := validateTuplZones(g.zones[pi], rows, g.width, fmt.Sprintf("group %d", gi), pi); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateTuplZones(pz *pageZones, rows [][]sheet.Value, width int, what string, pi int) error {
	if len(pz.cols) != width {
		return fmt.Errorf("tablestore: %s page %d zone has %d columns, want %d", what, pi, len(pz.cols), width)
	}
	for i, row := range rows {
		for c := 0; c < width; c++ {
			v := sheet.Empty()
			if c < len(row) {
				v = row[c]
			}
			if !pz.cols[c].covers(v) {
				return fmt.Errorf("tablestore: %s page %d row %d col %d: zone does not cover %v", what, pi, i, c, v)
			}
		}
	}
	return nil
}

var (
	_ Pruner = (*RowStore)(nil)
	_ Pruner = (*ColStore)(nil)
	_ Pruner = (*HybridStore)(nil)

	_ PrunedSnap = (*rowSnap)(nil)
	_ PrunedSnap = (*colSnap)(nil)
	_ PrunedSnap = (*hybridSnap)(nil)
)
