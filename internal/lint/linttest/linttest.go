// Package linttest runs analyzers over fixture trees and checks their
// diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest. A fixture is a directory
// loaded as a synthetic module; every diagnostic must be expected by a
// want comment on the same line, and every want comment must be matched
// by a diagnostic. `//lint:ignore` suppressions apply exactly as in
// production runs, so fixtures can prove suppression behavior too.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/lint"
)

// ModulePath is the synthetic module path fixture trees are loaded under.
const ModulePath = "example.com/fixture"

// Run loads the fixture tree at dir, executes the analyzers, and reports
// any mismatch between diagnostics and want comments as test failures.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	mod, err := lint.LoadDir(dir, ModulePath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := lint.Run(mod, analyzers)
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", dir, err)
	}
	wants := collectWants(t, mod)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// A want is one expected diagnostic: a regexp anchored to a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants extracts `// want "re" ["re" ...]` comments from every
// fixture file.
func collectWants(t *testing.T, mod *lint.Module) []want {
	t.Helper()
	var wants []want
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWant(t, mod, c)...)
				}
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, mod *lint.Module, c *ast.Comment) []want {
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
	if !ok {
		return nil
	}
	pos := mod.Fset.Position(c.Pos())
	var wants []want
	for _, m := range quotedRE.FindAllStringSubmatch(rest, -1) {
		re, err := regexp.Compile(unescape(m[1]))
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
		}
		wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
	}
	if len(wants) == 0 {
		t.Fatalf("%s:%d: want comment without a quoted regexp", pos.Filename, pos.Line)
	}
	return wants
}

// unescape undoes the \" and \\ escapes allowed inside a quoted want.
func unescape(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return strings.ReplaceAll(s, `\\`, `\`)
}

var _ = fmt.Sprintf
