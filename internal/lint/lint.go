// Package lint is DataSpread's project-specific static-analysis framework:
// a golang.org/x/tools/go/analysis-shaped API built entirely on the standard
// library (go/ast, go/build, go/types), so the analyzer suite runs with no
// module downloads. cmd/dslint drives the four project analyzers
// (lockcheck, errwrap, ctxcancel, apistable) over the whole repository;
// `make lint` and CI fail on any finding.
//
// The framework loads the module once (load.go), type-checks every non-test
// package with the source importer, builds a module-wide table of
// `// dslint:` annotations (annotations.go), runs each analyzer over each
// package, and filters findings through `//lint:ignore` suppressions with
// mandatory justification text (run.go).
//
// # Annotation grammar
//
// Annotations are comment directives bound to the declaration they document:
//
//	// dslint:lock(engine)      on a mutex field: this is THE engine lock.
//	// dslint:locks(engine)     on a func: it acquires the engine lock
//	//                          itself (calling it with the lock held is a
//	//                          self-deadlock).
//	// dslint:requires(engine)  on a func or interface method: it touches
//	//                          engine-guarded state and must only be called
//	//                          with the engine lock held (or from another
//	//                          requires/locks function).
//	// dslint:parks             on a func: it may block on another goroutine
//	//                          (channel send/receive, consumer handoff).
//	// dslint:parks(p, q)       on a func: its func-typed parameters p and q
//	//                          may park when called.
//	// dslint:polls             on a func: it polls the execution context
//	//                          internally (satisfies ctxcancel in a loop).
//	// dslint:critical          on a func or method: its error result is on
//	//                          the durability path and must never be
//	//                          discarded.
//	// dslint:errdomain         in a package comment: every error built in
//	//                          this package must wrap (%w) a cause or a
//	//                          dberr sentinel.
//
// Suppressions use the staticcheck-style form, justification mandatory:
//
//	//lint:ignore <analyzer> <justification>
//
// placed on the flagged line or the line above it. A suppression without
// justification text is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named analysis and its entry point, mirroring
// the x/tools analysis.Analyzer surface that matters here.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant it enforces.
	Doc string
	// Run analyzes one package and reports findings through the Pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass connects one analyzer run to one package of the loaded module.
type Pass struct {
	Analyzer *Analyzer
	Mod      *Module
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the module-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Mod.Fset }

// Files returns the package's parsed (non-test) files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type-checker results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// TypesPkg returns the package's type object.
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// Ann returns the module-wide annotation table.
func (p *Pass) Ann() *Annotations { return p.Mod.Ann }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Mod.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// CalleeOf resolves the called function or method object of a call
// expression, through plain identifiers, selector expressions and
// parenthesised forms. It returns nil for calls through function values
// whose declaration cannot be resolved statically (the identifier then
// names a variable, which is still returned as its object so callers can
// match func-typed parameters).
func (p *Pass) CalleeOf(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.ObjectOf(fun)
	case *ast.SelectorExpr:
		if sel, ok := p.Pkg.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Func.
		return p.ObjectOf(fun.Sel)
	}
	return nil
}
