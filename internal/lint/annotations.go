package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// A Directive is one parsed `// dslint:name(args)` annotation.
type Directive struct {
	Name string
	Args []string
	Pos  token.Pos
}

// HasArg reports whether the directive carries the given argument.
func (d Directive) HasArg(arg string) bool {
	for _, a := range d.Args {
		if a == arg {
			return true
		}
	}
	return false
}

// Annotations is the module-wide table of dslint annotations, keyed by the
// annotated object (functions, methods — including interface methods —
// and struct fields) or, for package-comment directives, by package path.
type Annotations struct {
	obj map[types.Object][]Directive
	pkg map[string][]Directive
}

// Obj returns the directives attached to obj.
func (a *Annotations) Obj(obj types.Object) []Directive {
	if a == nil || obj == nil {
		return nil
	}
	return a.obj[obj]
}

// Directive returns the first directive with the given name attached to
// obj.
func (a *Annotations) Directive(obj types.Object, name string) (Directive, bool) {
	for _, d := range a.Obj(obj) {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Has reports whether obj carries the named directive; with arg non-empty
// the directive must also carry that argument.
func (a *Annotations) Has(obj types.Object, name, arg string) bool {
	d, ok := a.Directive(obj, name)
	if !ok {
		return false
	}
	return arg == "" || d.HasArg(arg)
}

// Objects returns every annotated object carrying the named directive
// (and, with arg non-empty, that argument). The order is unspecified.
func (a *Annotations) Objects(name, arg string) []types.Object {
	if a == nil {
		return nil
	}
	var out []types.Object
	for obj, ds := range a.obj {
		for _, d := range ds {
			if d.Name == name && (arg == "" || d.HasArg(arg)) {
				out = append(out, obj)
				break
			}
		}
	}
	return out
}

// PkgHas reports whether the package's package comment carries the named
// directive.
func (a *Annotations) PkgHas(pkgPath, name string) bool {
	if a == nil {
		return false
	}
	for _, d := range a.pkg[pkgPath] {
		if d.Name == name {
			return true
		}
	}
	return false
}

var directiveRE = regexp.MustCompile(`dslint:([a-zA-Z]+)(?:\(([^)]*)\))?`)

// isDirectiveComment reports whether the comment IS a directive line —
// `//dslint:...` or `// dslint:...` with exactly one space — as opposed to
// prose or indented doc examples that merely mention a directive.
func isDirectiveComment(c *ast.Comment) bool {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return false
	}
	text = strings.TrimPrefix(text, " ")
	return strings.HasPrefix(text, "dslint:")
}

// parseDirectives extracts dslint directives from a comment group. Only
// comments that start with a directive count; mentioning `dslint:` in
// documentation prose binds nothing.
func parseDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		if !isDirectiveComment(c) {
			continue
		}
		for _, m := range directiveRE.FindAllStringSubmatchIndex(c.Text, -1) {
			d := Directive{
				Name: c.Text[m[2]:m[3]],
				Pos:  c.Pos() + token.Pos(m[0]),
			}
			if m[4] >= 0 {
				for _, a := range strings.FieldsFunc(c.Text[m[4]:m[5]], func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					d.Args = append(d.Args, a)
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// collectAnnotations scans every package's declarations for dslint
// directives and binds them to the declared objects.
func collectAnnotations(mod *Module) *Annotations {
	ann := &Annotations{
		obj: map[types.Object][]Directive{},
		pkg: map[string][]Directive{},
	}
	bind := func(info *types.Info, id *ast.Ident, ds []Directive) {
		if id == nil || len(ds) == 0 {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			ann.obj[obj] = append(ann.obj[obj], ds...)
		}
	}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			if ds := parseDirectives(file.Doc); len(ds) > 0 {
				ann.pkg[pkg.PkgPath] = append(ann.pkg[pkg.PkgPath], ds...)
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					bind(pkg.Info, d.Name, parseDirectives(d.Doc))
				case *ast.GenDecl:
					declDs := parseDirectives(d.Doc)
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.ValueSpec:
							ds := append(declDs, parseDirectives(s.Doc)...)
							ds = append(ds, parseDirectives(s.Comment)...)
							for _, name := range s.Names {
								bind(pkg.Info, name, ds)
							}
						case *ast.TypeSpec:
							ds := append(declDs, parseDirectives(s.Doc)...)
							bind(pkg.Info, s.Name, ds)
							bindFields(pkg.Info, s.Type, ann)
						}
					}
				}
			}
		}
	}
	return ann
}

// bindFields walks a type expression and binds field and interface-method
// directives: struct fields (e.g. the engine lock mutex) and interface
// methods (e.g. tablestore.Store operations that require the engine lock).
func bindFields(info *types.Info, expr ast.Expr, ann *Annotations) {
	ast.Inspect(expr, func(n ast.Node) bool {
		f, ok := n.(*ast.Field)
		if !ok {
			return true
		}
		ds := append(parseDirectives(f.Doc), parseDirectives(f.Comment)...)
		if len(ds) == 0 {
			return true
		}
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				ann.obj[obj] = append(ann.obj[obj], ds...)
			}
		}
		return true
	})
}
