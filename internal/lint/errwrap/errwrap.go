// Package errwrap enforces the engine's error-classification and
// durability-error invariants:
//
//  1. In packages whose package comment carries `// dslint:errdomain`
//     (catalog, sqlexec, core, txn and the public surface), every error
//     constructed with fmt.Errorf must wrap a cause or a dberr sentinel
//     with %w, and function-local errors.New is a finding — classified
//     failures must stay programmatically testable with errors.Is, not
//     collapse into opaque strings. Package-level sentinel declarations
//     are exempt (they ARE the sentinels).
//  2. Everywhere: the error result of a durability-critical call — a
//     Sync or Close on an *os.File, or any function or method annotated
//     `// dslint:critical` (backend sync/close, WAL append, root-slot
//     writes, the vfs.File mutating operations) — must never be discarded:
//     not dropped as a bare statement, not assigned to the blank
//     identifier, not deferred away.
//  3. In packages whose package comment carries `// dslint:vfsonly`
//     (pager, txn, core — everything on the durability path), file I/O
//     must go through the injectable storage/vfs layer: direct calls to
//     the os package's file entry points and direct *os.File references
//     are findings, because a FaultFS cannot intercept them and the
//     fault-sweep guarantees silently stop covering that code. Flag
//     constants (os.O_RDWR) and os.FileMode remain legal.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"github.com/dataspread/dataspread/internal/lint"
)

// Analyzer is the errwrap analysis.
var Analyzer = &lint.Analyzer{
	Name: "errwrap",
	Doc:  "errdomain packages must wrap causes/sentinels with %w; durability-critical Sync/Close/append errors must never be discarded",
	Run:  run,
}

func run(pass *lint.Pass) error {
	errdomain := pass.Ann().PkgHas(pass.Pkg.PkgPath, "errdomain")
	vfsonly := pass.Ann().PkgHas(pass.Pkg.PkgPath, "vfsonly")
	for _, file := range pass.Files() {
		if vfsonly {
			checkRawOS(pass, file)
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDiscards(pass, fd.Body)
			if errdomain {
				checkWrapping(pass, fd.Body)
			}
		}
	}
	return nil
}

// rawOSFuncs are the os package entry points that open, create or mutate
// files directly, bypassing the injectable vfs layer.
var rawOSFuncs = map[string]bool{
	"OpenFile": true, "Open": true, "Create": true, "CreateTemp": true,
	"Rename": true, "Remove": true, "RemoveAll": true, "Truncate": true,
	"WriteFile": true, "ReadFile": true, "NewFile": true,
}

// checkRawOS flags direct os file I/O and *os.File references in a
// `dslint:vfsonly` package (rule 3): durability-path code must reach the
// filesystem only through storage/vfs so a FaultFS intercepts every
// operation. os flag constants and os.FileMode are not file I/O and pass.
func checkRawOS(pass *lint.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
			return true
		}
		switch o := obj.(type) {
		case *types.Func:
			if rawOSFuncs[o.Name()] {
				pass.Reportf(sel.Pos(), "direct os.%s in a vfsonly package: go through storage/vfs (vfs.FS) so fault injection covers this operation", o.Name())
			}
		case *types.TypeName:
			if o.Name() == "File" {
				pass.Reportf(sel.Pos(), "direct os.File reference in a vfsonly package: use vfs.File so fault injection covers this handle")
			}
		}
		return true
	})
}

// checkWrapping flags fmt.Errorf without %w and function-local errors.New
// inside one function body (rule 1; only called in errdomain packages).
func checkWrapping(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleePath(pass, call) {
		case "fmt.Errorf":
			if format, ok := stringArg(pass, call, 0); ok && !strings.Contains(format, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w: wrap the underlying cause or a dberr sentinel so errors.Is can classify the failure")
			}
		case "errors.New":
			pass.Reportf(call.Pos(), "function-local errors.New: classified failures must wrap a dberr sentinel (fmt.Errorf with %%w); declare package-level sentinels instead")
		}
		return true
	})
}

// calleePath returns "pkg.Func" for a package-qualified call, or "".
func calleePath(pass *lint.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return ""
}

// stringArg resolves call argument i to its constant string value.
func stringArg(pass *lint.Pass, call *ast.CallExpr, i int) (string, bool) {
	if len(call.Args) <= i {
		return "", false
	}
	tv, ok := pass.TypesInfo().Types[call.Args[i]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkDiscards flags discarded error results of durability-critical calls
// (rule 2).
func checkDiscards(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				reportIfCritical(pass, call, "discarded as a statement")
			}
		case *ast.DeferStmt:
			reportIfCritical(pass, s.Call, "discarded by defer")
		case *ast.GoStmt:
			reportIfCritical(pass, s.Call, "discarded by go")
		case *ast.AssignStmt:
			// A single call on the right with its error result position
			// assigned to the blank identifier.
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			errIdx := criticalErrIndex(pass, call)
			if errIdx < 0 {
				return true
			}
			if len(s.Lhs) == 1 && errIdx == 0 {
				if isBlank(s.Lhs[0]) {
					report(pass, call, "assigned to _")
				}
			} else if errIdx < len(s.Lhs) && isBlank(s.Lhs[errIdx]) {
				report(pass, call, "assigned to _")
			}
		}
		return true
	})
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// reportIfCritical reports when the call is durability-critical and
// returns an error at all.
func reportIfCritical(pass *lint.Pass, call *ast.CallExpr, how string) {
	if criticalErrIndex(pass, call) >= 0 {
		report(pass, call, how)
	}
}

func report(pass *lint.Pass, call *ast.CallExpr, how string) {
	name := "call"
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name = sel.Sel.Name
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		name = id.Name
	}
	pass.Reportf(call.Pos(), "error result of durability-critical %s %s: check it, join it into the returned error, or suppress with a justified //lint:ignore", name, how)
}

// criticalErrIndex returns the result index of the error value when call
// targets a durability-critical function, -1 otherwise.
func criticalErrIndex(pass *lint.Pass, call *ast.CallExpr) int {
	obj := pass.CalleeOf(call)
	if obj == nil {
		return -1
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return -1
	}
	if !pass.Ann().Has(obj, "critical", "") && !isOSFileSyncClose(fn) {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}

// isOSFileSyncClose reports whether fn is (*os.File).Sync or
// (*os.File).Close — always durability-critical, no annotation needed.
func isOSFileSyncClose(fn *types.Func) bool {
	if fn.Name() != "Sync" && fn.Name() != "Close" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

var _ = token.NoPos
