package errwrap_test

import (
	"testing"

	"github.com/dataspread/dataspread/internal/lint/errwrap"
	"github.com/dataspread/dataspread/internal/lint/linttest"
)

func TestErrwrap(t *testing.T) {
	linttest.Run(t, "testdata/wrap", errwrap.Analyzer)
}
