// Package plain has no errdomain directive: bare fmt.Errorf is fine here,
// but durability-critical discards are still findings everywhere.
package plain

import (
	"fmt"
	"os"
)

func fine() error {
	return fmt.Errorf("plain: not a classified failure")
}

// syncAll flushes the heap file; its error is the caller's durability
// signal.
//
// dslint:critical
func syncAll(f *os.File) error {
	return f.Sync()
}

func badDiscards(f *os.File) {
	f.Sync()        // want "error result of durability-critical Sync discarded as a statement"
	_ = f.Close()   // want "error result of durability-critical Close assigned to _"
	defer f.Close() // want "error result of durability-critical Close discarded by defer"
	_ = syncAll(f)  // want "error result of durability-critical syncAll assigned to _"
	go syncAll(f)   // want "error result of durability-critical syncAll discarded by go"
}

func goodChecks(f *os.File) error {
	if err := syncAll(f); err != nil {
		return err
	}
	return f.Close()
}
