// Package wrap is the errwrap fixture for the errdomain rules: classified
// failures must wrap a sentinel or cause with %w, and ad-hoc opaque errors
// are findings.
//
// dslint:errdomain
package wrap

import (
	"errors"
	"fmt"
)

// ErrMissing is a package-level sentinel: declaring it with errors.New is
// the one legitimate place for an unwrapped error.
var ErrMissing = errors.New("wrap: missing")

func lookup(name string) error {
	if name == "" {
		return fmt.Errorf("wrap: empty name") // want "fmt.Errorf without %w"
	}
	return fmt.Errorf("wrap: %q: %w", name, ErrMissing)
}

func adHoc() error {
	return errors.New("wrap: something went wrong") // want "function-local errors.New"
}

func wrapped(err error) error {
	return fmt.Errorf("wrap: during save: %w", err)
}

func suppressed() error {
	//lint:ignore errwrap fixture: message is a debug aid, never classified by callers
	return fmt.Errorf("wrap: debug detail only")
}
