// Package rawio is the errwrap fixture for the vfsonly rule: inside a
// vfsonly package every file operation must go through the injectable vfs
// layer; direct os file I/O and *os.File references are findings, while os
// flag constants and os.FileMode stay legal.
//
// dslint:vfsonly
package rawio

import "os"

type holder struct {
	f *os.File // want "direct os.File reference in a vfsonly package"
}

func open(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, os.FileMode(0o644)) // want "direct os.OpenFile in a vfsonly package"
	if err != nil {
		return err
	}
	return f.Close()
}

func shuffle(a, b string) error {
	if err := os.Rename(a, b); err != nil { // want "direct os.Rename in a vfsonly package"
		return err
	}
	return os.Remove(a) // want "direct os.Remove in a vfsonly package"
}

func slurp(path string) ([]byte, error) {
	return os.ReadFile(path) // want "direct os.ReadFile in a vfsonly package"
}

// flagsOnly proves the non-findings: flag constants, FileMode values and
// non-file os helpers are legal in a vfsonly package.
func flagsOnly() (int, os.FileMode, bool) {
	return os.O_RDWR | os.O_CREATE, os.FileMode(0o600), os.IsNotExist(nil)
}

func suppressed(path string) ([]byte, error) {
	//lint:ignore errwrap fixture: read-only diagnostics dump, not on the durability path
	return os.ReadFile(path)
}
