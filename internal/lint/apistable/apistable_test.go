package apistable_test

import (
	"testing"

	"github.com/dataspread/dataspread/internal/lint/apistable"
	"github.com/dataspread/dataspread/internal/lint/linttest"
)

func TestApistable(t *testing.T) {
	linttest.Run(t, "testdata/imports", apistable.New(map[string][]string{
		"": {"internal/api"},
	}))
}
