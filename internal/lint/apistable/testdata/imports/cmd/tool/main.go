// Command tool has no blessed internals at all: it must go through the
// public surface.
package main

import (
	"example.com/fixture/internal/api" // want "cmd/tool imports internal/api outside the blessed entry points"
)

func main() { _ = api.Name() }
